#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/core/rntrajrec.h"
#include "src/serve/micro_batcher.h"
#include "src/serve/recovery_service.h"
#include "src/serve/roadnet_cache.h"
#include "src/serve/workload.h"
#include "src/sim/presets.h"

namespace rntraj {
namespace {

using serve::MicroBatcher;
using serve::MicroBatcherConfig;
using serve::QueuedRequest;

QueuedRequest MakeQueued(uint64_t id) {
  QueuedRequest q;
  q.id = id;
  return q;
}

// ----- MicroBatcher ----------------------------------------------------------

TEST(MicroBatcherTest, CoalescesQueuedRequestsIntoOneBatch) {
  MicroBatcherConfig cfg;
  cfg.max_batch_size = 16;
  cfg.max_batch_delay_us = 0;  // dispatch whatever is queued
  MicroBatcher batcher(cfg);
  for (uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(batcher.Push(MakeQueued(i)));
  auto batch = batcher.PopBatch();
  EXPECT_EQ(batch.size(), 8u);
  EXPECT_EQ(batcher.depth(), 0u);
}

TEST(MicroBatcherTest, RespectsMaxBatchSize) {
  MicroBatcherConfig cfg;
  cfg.max_batch_size = 4;
  cfg.max_batch_delay_us = 0;
  MicroBatcher batcher(cfg);
  for (uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(batcher.Push(MakeQueued(i)));
  EXPECT_EQ(batcher.PopBatch().size(), 4u);
  EXPECT_EQ(batcher.PopBatch().size(), 4u);
  EXPECT_EQ(batcher.PopBatch().size(), 2u);
}

TEST(MicroBatcherTest, DeadlineDispatchesPartialBatch) {
  MicroBatcherConfig cfg;
  cfg.max_batch_size = 64;
  cfg.max_batch_delay_us = 20000;  // 20 ms
  MicroBatcher batcher(cfg);
  ASSERT_TRUE(batcher.Push(MakeQueued(0)));
  const auto t0 = std::chrono::steady_clock::now();
  auto batch = batcher.PopBatch();  // must not wait for 64 requests
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(batch.size(), 1u);
  // Dispatched by deadline: strictly bounded, not an indefinite block (wide
  // margin for scheduler noise).
  EXPECT_LT(waited_ms, 2000.0);
}

TEST(MicroBatcherTest, ConcurrentProducersLoseNothing) {
  MicroBatcherConfig cfg;
  cfg.max_batch_size = 7;
  cfg.max_batch_delay_us = 200;
  MicroBatcher batcher(cfg);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;

  std::set<uint64_t> received;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (true) {
      auto batch = batcher.PopBatch();
      if (batch.empty()) break;
      for (auto& q : batch) received.insert(q.id);
    }
    done = true;
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&batcher, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(batcher.Push(
            MakeQueued(static_cast<uint64_t>(p) * kPerProducer + i)));
      }
    });
  }
  for (auto& t : producers) t.join();
  batcher.Shutdown();
  consumer.join();
  ASSERT_TRUE(done.load());
  // Every id delivered exactly once (set dedups; size proves no loss).
  EXPECT_EQ(received.size(),
            static_cast<size_t>(kProducers) * kPerProducer);
}

TEST(MicroBatcherTest, ShutdownDrainsThenUnblocks) {
  MicroBatcherConfig cfg;
  cfg.max_batch_size = 100;
  cfg.max_batch_delay_us = 0;
  MicroBatcher batcher(cfg);
  ASSERT_TRUE(batcher.Push(MakeQueued(1)));
  batcher.Shutdown();
  EXPECT_FALSE(batcher.Push(MakeQueued(2)));  // admissions closed
  EXPECT_EQ(batcher.PopBatch().size(), 1u);   // queued work still drains
  EXPECT_TRUE(batcher.PopBatch().empty());    // then consumers unblock empty
}

TEST(MicroBatcherTest, ShedsLoadBeyondQueueDepth) {
  MicroBatcherConfig cfg;
  cfg.max_queue_depth = 3;
  MicroBatcher batcher(cfg);
  for (uint64_t i = 0; i < 3; ++i) ASSERT_TRUE(batcher.Push(MakeQueued(i)));
  EXPECT_FALSE(batcher.Push(MakeQueued(99)));
}

// ----- ValidateRequest edge cases --------------------------------------------

/// Minimal structurally-valid request: two points on a three-slot grid.
serve::RecoveryRequest MakeValidRequest() {
  serve::RecoveryRequest req;
  req.input.points.push_back({{0.0, 0.0}, 0.0});
  req.input.points.push_back({{100.0, 100.0}, 8.0});
  req.target_times = {0.0, 4.0, 8.0};
  req.input_indices = {0, 2};
  return req;
}

std::string RejectionOf(const serve::RecoveryRequest& req) {
  std::string error;
  EXPECT_FALSE(serve::ValidateRequest(req, &error));
  EXPECT_FALSE(error.empty());
  return error;
}

TEST(ValidateRequestTest, AcceptsMinimalValidRequest) {
  std::string error;
  EXPECT_TRUE(serve::ValidateRequest(MakeValidRequest(), &error)) << error;
}

TEST(ValidateRequestTest, AcceptsSinglePointInput) {
  serve::RecoveryRequest req = MakeValidRequest();
  req.input.points.resize(1);
  req.input_indices = {0};
  std::string error;
  EXPECT_TRUE(serve::ValidateRequest(req, &error)) << error;
}

TEST(ValidateRequestTest, RejectsNonFinitePointCoordinates) {
  for (double bad : {std::nan(""), std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()}) {
    serve::RecoveryRequest req = MakeValidRequest();
    req.input.points[1].pos.x = bad;
    RejectionOf(req);
    req = MakeValidRequest();
    req.input.points[0].pos.y = bad;
    RejectionOf(req);
  }
}

TEST(ValidateRequestTest, RejectsNonFiniteTimes) {
  for (double bad : {std::nan(""), std::numeric_limits<double>::infinity()}) {
    serve::RecoveryRequest req = MakeValidRequest();
    req.input.points[1].t = bad;
    RejectionOf(req);
    req = MakeValidRequest();
    req.target_times[2] = bad;
    RejectionOf(req);
  }
  // NaN must not slip through the ordering checks (NaN <= x is false, so a
  // naive monotonicity scan would accept it).
  serve::RecoveryRequest req = MakeValidRequest();
  req.target_times[1] = std::nan("");
  EXPECT_NE(RejectionOf(req).find("finite"), std::string::npos);
}

TEST(ValidateRequestTest, RejectsDuplicateTimestamps) {
  serve::RecoveryRequest req = MakeValidRequest();
  req.target_times[1] = req.target_times[0];  // duplicate grid slot
  RejectionOf(req);
  req = MakeValidRequest();
  req.input.points[1].t = req.input.points[0].t;  // duplicate observation
  RejectionOf(req);
  req = MakeValidRequest();
  req.input.points[1].t = -1.0;  // decreasing is just as dead
  RejectionOf(req);
}

TEST(ValidateRequestTest, RejectsOutOfRangeInputIndices) {
  serve::RecoveryRequest req = MakeValidRequest();
  req.input_indices = {-1, 2};  // negative slot
  RejectionOf(req);
  req = MakeValidRequest();
  req.input_indices = {0, 3};  // one past the grid
  RejectionOf(req);
  req = MakeValidRequest();
  req.input_indices = {1, 1};  // not strictly increasing
  RejectionOf(req);
  req = MakeValidRequest();
  req.input_indices = {0};  // misaligned with the points
  RejectionOf(req);
}

TEST(ValidateRequestTest, RejectsEmptyInputOrGrid) {
  serve::RecoveryRequest req = MakeValidRequest();
  req.input.points.clear();
  req.input_indices.clear();
  RejectionOf(req);
  req = MakeValidRequest();
  req.target_times.clear();
  RejectionOf(req);
}

// ----- Shared dataset fixture ------------------------------------------------

class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig cfg = ChengduConfig(BenchScale::kTiny);
    cfg.num_train = 6;
    cfg.num_val = 2;
    cfg.num_test = 6;
    cfg.sim.len_rho = 24;
    dataset_ = BuildDataset(cfg).release();
    ctx_ = new ModelContext(ModelContext::FromDataset(*dataset_));
  }
  static void TearDownTestSuite() {
    delete ctx_;
    delete dataset_;
    dataset_ = nullptr;
    ctx_ = nullptr;
  }

  static RnTrajRecConfig SmallConfig() {
    RnTrajRecConfig cfg;
    cfg.dim = 16;
    cfg.delta = 250.0;
    cfg.max_subgraph_nodes = 16;
    cfg.gridgnn.gnn_layers = 1;
    cfg.gridgnn.heads = 2;
    cfg.gpsformer.blocks = 1;
    cfg.gpsformer.heads = 2;
    cfg.gpsformer.grl.heads = 2;
    cfg.Sync();
    return cfg;
  }

  static Dataset* dataset_;
  static ModelContext* ctx_;
};

Dataset* ServeFixture::dataset_ = nullptr;
ModelContext* ServeFixture::ctx_ = nullptr;

// ----- CellCandidateCache ----------------------------------------------------

TEST_F(ServeFixture, CellCacheIsExact) {
  serve::CellCandidateCache cache(&dataset_->roadnet(), &dataset_->rtree(),
                                  &dataset_->grid(), {250.0, 100.0});
  Rng rng(11);
  const BBox& b = dataset_->roadnet().bounds();
  for (int trial = 0; trial < 200; ++trial) {
    const Vec2 p{rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)};
    const double radius = trial % 2 == 0 ? 250.0 : 100.0;
    auto cached = cache.WithinRadius(p, radius);
    auto direct =
        SegmentsWithinRadius(dataset_->roadnet(), dataset_->rtree(), p, radius);
    ASSERT_EQ(cached.size(), direct.size()) << "trial " << trial;
    for (size_t i = 0; i < cached.size(); ++i) {
      EXPECT_EQ(cached[i].seg_id, direct[i].seg_id);
      EXPECT_DOUBLE_EQ(cached[i].projection.distance,
                       direct[i].projection.distance);
    }
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses + stats.fallbacks, 0);
}

TEST_F(ServeFixture, CellCacheUnknownRadiusFallsBack) {
  serve::CellCandidateCache cache(&dataset_->roadnet(), &dataset_->rtree(),
                                  &dataset_->grid(), {250.0});
  const BBox& b = dataset_->roadnet().bounds();
  const Vec2 p{0.5 * (b.min_x + b.max_x), 0.5 * (b.min_y + b.max_y)};
  auto cached = cache.WithinRadius(p, 123.0);  // not a configured radius
  auto direct =
      SegmentsWithinRadius(dataset_->roadnet(), dataset_->rtree(), p, 123.0);
  EXPECT_EQ(cached.size(), direct.size());
  EXPECT_GE(cache.stats().fallbacks, 1);
}

TEST_F(ServeFixture, CellCacheEvictsAtCapacity) {
  serve::RoadnetCacheConfig ccfg;
  ccfg.capacity = 8;
  ccfg.shards = 2;
  serve::CellCandidateCache cache(&dataset_->roadnet(), &dataset_->rtree(),
                                  &dataset_->grid(), {250.0}, ccfg);
  Rng rng(13);
  const BBox& b = dataset_->roadnet().bounds();
  for (int trial = 0; trial < 100; ++trial) {
    const Vec2 p{rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)};
    cache.WithinRadius(p, 250.0);
  }
  EXPECT_LE(cache.stats().entries, 8);
  EXPECT_GT(cache.stats().misses, 8);  // churned well past capacity
}

TEST_F(ServeFixture, PrefetchWarmsTheCache) {
  serve::CellCandidateCache cache(&dataset_->roadnet(), &dataset_->rtree(),
                                  &dataset_->grid(), {250.0});
  std::vector<Vec2> points;
  for (const auto& p : dataset_->test()[0].input.points) points.push_back(p.pos);
  cache.Prefetch(points, 250.0);
  const auto before = cache.stats();
  EXPECT_GT(before.entries, 0);
  for (const Vec2& p : points) cache.WithinRadius(p, 250.0);
  const auto after = cache.stats();
  EXPECT_EQ(after.misses, before.misses);  // all served from prefetched cells
  EXPECT_GT(after.hits, before.hits);
}

// ----- NetworkDistance LRU ---------------------------------------------------

TEST_F(ServeFixture, DijkstraRowCacheEvictsUnderCap) {
  NetworkDistance nd(&dataset_->roadnet(), /*max_cached_rows=*/2);
  NetworkDistance reference(&dataset_->roadnet());
  const int n = dataset_->roadnet().num_segments();
  ASSERT_GE(n, 4);
  for (int src = 0; src < 4; ++src) {
    for (int dst = 0; dst < n; dst += std::max(1, n / 7)) {
      EXPECT_EQ(nd.StartToStart(src, dst), reference.StartToStart(src, dst));
    }
  }
  EXPECT_LE(nd.cached_rows(), 2);
  EXPECT_GE(nd.row_misses(), 4);
  // Re-query an evicted source: still correct after recompute.
  EXPECT_EQ(nd.StartToStart(0, n - 1), reference.StartToStart(0, n - 1));
}

// ----- RecoveryService -------------------------------------------------------

TEST_F(ServeFixture, ServiceMatchesSequentialInference) {
  SeedGlobalRng(51);
  RnTrajRec model(SmallConfig(), *ctx_);
  model.SetTrainingMode(false);
  model.BeginInference();

  // Sequential single-request reference, before any cache is installed.
  std::vector<MatchedTrajectory> reference;
  for (const auto& s : dataset_->test()) {
    serve::RecoveryRequest req = serve::RequestFromSample(s);
    TrajectorySample eph = MakeEphemeralSample(
        std::move(req.input), std::move(req.input_indices), req.target_times);
    reference.push_back(model.Recover(eph));
  }

  serve::RecoveryServiceConfig scfg;
  scfg.num_sessions = 2;
  scfg.batcher.max_batch_size = 4;
  scfg.batcher.max_batch_delay_us = 500;
  const RnTrajRecConfig& mcfg = model.config();
  scfg.cache_radii = {mcfg.delta, mcfg.decoder.mask_radius,
                      mcfg.decoder.spatial_prior_radius};
  scfg.prefetch_radii = {mcfg.delta};
  serve::RecoveryService service(&model, *ctx_, scfg);

  std::vector<std::future<serve::RecoveryResponse>> futures;
  for (const auto& s : dataset_->test()) {
    futures.push_back(service.Submit(serve::RequestFromSample(s)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    serve::RecoveryResponse resp = futures[i].get();
    ASSERT_TRUE(resp.ok) << resp.error;
    ASSERT_EQ(resp.recovered.size(), reference[i].size());
    for (int j = 0; j < reference[i].size(); ++j) {
      EXPECT_EQ(resp.recovered.points[j].seg_id, reference[i].points[j].seg_id)
          << "request " << i << " step " << j;
      EXPECT_NEAR(resp.recovered.points[j].ratio, reference[i].points[j].ratio,
                  1e-5);
    }
  }
  const auto stats = service.Stats();
  EXPECT_EQ(stats.completed, static_cast<int64_t>(dataset_->test().size()));
  EXPECT_EQ(stats.rejected, 0);
}

TEST_F(ServeFixture, ServiceRecoverNowMatchesSubmit) {
  SeedGlobalRng(52);
  RnTrajRec model(SmallConfig(), *ctx_);
  serve::RecoveryServiceConfig scfg;
  scfg.num_sessions = 1;
  serve::RecoveryService service(&model, *ctx_, scfg);

  const auto& s = dataset_->test()[1];
  serve::RecoveryResponse now = service.RecoverNow(serve::RequestFromSample(s));
  ASSERT_TRUE(now.ok) << now.error;
  serve::RecoveryResponse queued =
      service.Submit(serve::RequestFromSample(s)).get();
  ASSERT_TRUE(queued.ok) << queued.error;
  ASSERT_EQ(now.recovered.size(), queued.recovered.size());
  for (int j = 0; j < now.recovered.size(); ++j) {
    EXPECT_EQ(now.recovered.points[j].seg_id, queued.recovered.points[j].seg_id);
    EXPECT_NEAR(now.recovered.points[j].ratio, queued.recovered.points[j].ratio,
                1e-5);
  }
}

TEST_F(ServeFixture, BatchedForwardServiceMatchesPerRequestService) {
  // The micro-batch path runs one padded encoder pass per coalesced batch
  // (batched_forward, the default); answers must be identical to the
  // per-request-forward configuration. This is the serve layer of the
  // batched-GAT equivalence chain (op gradcheck -> GatLayer -> GRL ->
  // GpsFormer -> here): each coalesced batch runs ONE block-diagonal GAT
  // pass over every request's sub-graphs.
  SeedGlobalRng(54);
  RnTrajRec model(SmallConfig(), *ctx_);
  model.SetTrainingMode(false);
  model.BeginInference();

  // Mixed target lengths inside one micro-batch: every other request keeps
  // only a prefix of its recovery grid, so the batched decoder's lanes
  // finish at different steps (early-finish compaction on the serve path).
  std::vector<serve::RecoveryRequest> requests;
  for (size_t i = 0; i < dataset_->test().size(); ++i) {
    serve::RecoveryRequest req = serve::RequestFromSample(dataset_->test()[i]);
    if (i % 2 == 1) {
      const int keep = std::max<int>(2, static_cast<int>(req.target_times.size()) / (1 + static_cast<int>(i) % 3));
      req.target_times.resize(keep);
      RawTrajectory input;
      std::vector<int> indices;
      for (size_t k = 0; k < req.input_indices.size(); ++k) {
        if (req.input_indices[k] < keep) {
          input.points.push_back(req.input.points[k]);
          indices.push_back(req.input_indices[k]);
        }
      }
      req.input = std::move(input);
      req.input_indices = std::move(indices);
    }
    requests.push_back(std::move(req));
  }

  const auto run = [&](bool batched) {
    serve::RecoveryServiceConfig scfg;
    scfg.num_sessions = 1;
    scfg.batcher.max_batch_size = 4;
    scfg.batcher.max_batch_delay_us = 500;
    scfg.batched_forward = batched;
    scfg.warm_model = false;  // already warmed above
    serve::RecoveryService service(&model, *ctx_, scfg);
    std::vector<std::future<serve::RecoveryResponse>> futures;
    for (const auto& req : requests) {
      futures.push_back(service.Submit(req));  // Submit copies its argument
    }
    std::vector<serve::RecoveryResponse> out;
    for (auto& f : futures) out.push_back(f.get());
    return out;
  };

  const auto per_request = run(false);
  const auto batched = run(true);
  ASSERT_EQ(per_request.size(), batched.size());
  for (size_t i = 0; i < batched.size(); ++i) {
    ASSERT_TRUE(per_request[i].ok) << per_request[i].error;
    ASSERT_TRUE(batched[i].ok) << batched[i].error;
    ASSERT_EQ(batched[i].recovered.size(), per_request[i].recovered.size());
    for (int j = 0; j < per_request[i].recovered.size(); ++j) {
      EXPECT_EQ(batched[i].recovered.points[j].seg_id,
                per_request[i].recovered.points[j].seg_id)
          << "request " << i << " step " << j;
      EXPECT_NEAR(batched[i].recovered.points[j].ratio,
                  per_request[i].recovered.points[j].ratio, 1e-6)
          << "request " << i << " step " << j;
    }
  }
}

TEST_F(ServeFixture, ServiceRejectsMalformedRequests) {
  SeedGlobalRng(53);
  RnTrajRec model(SmallConfig(), *ctx_);
  serve::RecoveryServiceConfig scfg;
  scfg.num_sessions = 1;
  serve::RecoveryService service(&model, *ctx_, scfg);

  serve::RecoveryRequest empty;
  serve::RecoveryResponse resp = service.Submit(std::move(empty)).get();
  EXPECT_FALSE(resp.ok);
  EXPECT_FALSE(resp.error.empty());

  serve::RecoveryRequest bad = serve::RequestFromSample(dataset_->test()[0]);
  bad.input_indices.pop_back();  // misaligned
  resp = service.RecoverNow(std::move(bad));
  EXPECT_FALSE(resp.ok);

  // Non-finite timestamps must be rejected before they can reach the
  // interpolator (NaN defeats ordering comparisons).
  serve::RecoveryRequest nan_req = serve::RequestFromSample(dataset_->test()[0]);
  nan_req.target_times[1] = std::nan("");
  resp = service.RecoverNow(std::move(nan_req));
  EXPECT_FALSE(resp.ok);
}

TEST_F(ServeFixture, WorkloadGeneratorIsDeterministicAndOrdered) {
  auto a = serve::PoissonWorkload(dataset_->test(), 32, 100.0, 9);
  auto b = serve::PoissonWorkload(dataset_->test(), 32, 100.0, 9);
  ASSERT_EQ(a.size(), 32u);
  double prev = -1.0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_GT(a[i].arrival_s, prev);
    prev = a[i].arrival_s;
    EXPECT_EQ(a[i].sample_index, static_cast<int>(i % dataset_->test().size()));
  }
}

}  // namespace
}  // namespace rntraj
