// Fault-injection chaos suite for the serving subsystem (PR 6).
//
// Proves the robustness contract under each injected fault — forwards that
// throw, sessions that stall, deadlines that expire — plus their
// combination:
//   * the service never crashes or hangs (every test is future-resolution
//     bounded; ctest adds a per-test timeout as the backstop);
//   * every submitted future resolves exactly once with a classified
//     response;
//   * a fault poisons only its own request's lane — non-faulted requests in
//     the same micro-batch still return answers equivalent to sequential
//     inference;
//   * the degradation ladder routes overload to the Linear+HMM fallback
//     (responses flagged `degraded`) and returns to OK after faults clear;
//   * Submit racing Shutdown always receives a response, never a dangling
//     future (the TSan job runs this file too).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/two_stage.h"
#include "src/common/random.h"
#include "src/core/rntrajrec.h"
#include "src/fleet/process.h"
#include "src/fleet/router.h"
#include "src/serve/fault_injector.h"
#include "src/serve/recovery_service.h"
#include "src/serve/service_policy.h"
#include "src/serve/workload.h"
#include "src/sim/presets.h"

namespace rntraj {
namespace {

using serve::FaultInjector;
using serve::FaultInjectorConfig;
using serve::PolicyState;
using serve::RecoveryResponse;
using serve::ResponseKind;
using serve::ServicePolicy;
using serve::ServicePolicyConfig;

constexpr auto kFutureTimeout = std::chrono::seconds(60);

/// get() with a hang guard: a future that never resolves is the exact bug
/// this suite exists to catch, so fail the test instead of wedging the job.
RecoveryResponse GetOrDie(std::future<RecoveryResponse>& f) {
  EXPECT_EQ(f.wait_for(kFutureTimeout), std::future_status::ready)
      << "future did not resolve: a submitted request was dropped or wedged";
  return f.get();
}

// ----- ServicePolicy (the ladder in isolation) -------------------------------

ServicePolicyConfig LadderConfig() {
  ServicePolicyConfig cfg;
  cfg.enabled = true;
  cfg.window = 8;
  cfg.min_window_fill = 2;
  return cfg;
}

TEST(ServicePolicyTest, DepthEscalatesRungByRungWithHysteresis) {
  ServicePolicy policy(LadderConfig(), /*max_queue_depth=*/100);
  EXPECT_EQ(policy.state(), PolicyState::kOk);

  policy.ObserveDepth(49);  // under the 0.50 enter watermark
  EXPECT_EQ(policy.state(), PolicyState::kOk);
  policy.ObserveDepth(55);
  EXPECT_EQ(policy.state(), PolicyState::kDegraded);
  // Hysteresis: dropping into the band (exit is 0.20) must NOT flap back.
  policy.ObserveDepth(35);
  EXPECT_EQ(policy.state(), PolicyState::kDegraded);
  policy.ObserveDepth(88);  // over the 0.85 shed watermark
  EXPECT_EQ(policy.state(), PolicyState::kShedding);
  // Shed exit is 0.50; one rung at a time on the way down.
  policy.ObserveDepth(60);
  EXPECT_EQ(policy.state(), PolicyState::kShedding);
  policy.ObserveDepth(40);
  EXPECT_EQ(policy.state(), PolicyState::kDegraded);
  policy.ObserveDepth(10);
  EXPECT_EQ(policy.state(), PolicyState::kOk);

  const auto st = policy.Snapshot();
  EXPECT_EQ(st.entered_degraded, 1);
  EXPECT_EQ(st.entered_shedding, 1);
}

TEST(ServicePolicyTest, MissRateTripsAndRecentGoodTrafficRecovers) {
  ServicePolicy policy(LadderConfig(), /*max_queue_depth=*/100);
  // One early miss is below min_window_fill: no escalation on a cold window.
  policy.RecordOutcome(true);
  EXPECT_EQ(policy.state(), PolicyState::kOk);
  policy.RecordOutcome(true);  // 2/2 missed >= 0.20 with the window filled
  EXPECT_EQ(policy.state(), PolicyState::kDegraded);
  // Recovery needs the misses to age out of the window (size 8): after 8
  // consecutive in-deadline outcomes the rate is 0 and depth is already low.
  for (int i = 0; i < 7; ++i) {
    policy.RecordOutcome(false);
    EXPECT_EQ(policy.state(), PolicyState::kDegraded) << "aged out too early";
  }
  policy.RecordOutcome(false);
  EXPECT_EQ(policy.state(), PolicyState::kOk);
}

TEST(ServicePolicyTest, DirectCliffArrivalJumpsToShedding) {
  ServicePolicy policy(LadderConfig(), /*max_queue_depth=*/10);
  policy.ObserveDepth(10);
  EXPECT_EQ(policy.state(), PolicyState::kShedding);
  const auto st = policy.Snapshot();
  EXPECT_EQ(st.entered_degraded, 1);  // both rungs counted on the jump
  EXPECT_EQ(st.entered_shedding, 1);
}

TEST(ServicePolicyTest, DisabledLadderNeverMoves) {
  ServicePolicyConfig cfg;  // enabled = false
  ServicePolicy policy(cfg, 10);
  policy.ObserveDepth(10);
  for (int i = 0; i < 16; ++i) policy.RecordOutcome(true);
  EXPECT_EQ(policy.state(), PolicyState::kOk);
}

// ----- FaultInjector ---------------------------------------------------------

TEST(FaultInjectorTest, DecisionsAreDeterministicPerId) {
  FaultInjectorConfig cfg;
  cfg.seed = 11;
  cfg.expire_probability = 0.5;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  int fired = 0;
  for (uint64_t id = 0; id < 64; ++id) {
    EXPECT_EQ(a.ShouldExpire(id), b.ShouldExpire(id)) << "id " << id;
    if (a.ShouldExpire(id)) ++fired;
  }
  // ~50% fire rate: both classes must be populated (the chaos tests rely on
  // partially-faulted batches existing).
  EXPECT_GT(fired, 8);
  EXPECT_LT(fired, 56);
}

TEST(FaultInjectorTest, ProbabilityEndpointsAreExact) {
  FaultInjectorConfig all;
  all.throw_probability = 1.0;
  FaultInjector always(all);
  for (uint64_t id = 0; id < 16; ++id) {
    EXPECT_THROW(always.OnForward(id), serve::FaultInjected);
  }
  FaultInjectorConfig none;  // all probabilities 0
  FaultInjector never(none);
  for (uint64_t id = 0; id < 16; ++id) {
    EXPECT_NO_THROW(never.OnForward(id));
    EXPECT_FALSE(never.ShouldExpire(id));
  }
}

TEST(FaultInjectorTest, FaultBudgetClearsTheFault) {
  FaultInjectorConfig cfg;
  cfg.throw_probability = 1.0;
  cfg.max_faults = 3;
  FaultInjector inj(cfg);
  int thrown = 0;
  for (uint64_t id = 0; id < 32; ++id) {
    try {
      inj.OnForward(id);
    } catch (const serve::FaultInjected&) {
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 3);
  EXPECT_EQ(inj.faults_injected(), 3);
  // The fault has cleared: the injector stays quiet forever after.
  EXPECT_NO_THROW(inj.OnForward(999));
}

// ----- Chaos fixture ---------------------------------------------------------

class ServeChaosFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig cfg = ChengduConfig(BenchScale::kTiny);
    cfg.num_train = 4;
    cfg.num_val = 2;
    cfg.num_test = 8;
    cfg.sim.len_rho = 24;
    dataset_ = BuildDataset(cfg).release();
    ctx_ = new ModelContext(ModelContext::FromDataset(*dataset_));
    SeedGlobalRng(61);
    model_ = new RnTrajRec(SmallConfig(), *ctx_);
    model_->SetTrainingMode(false);
    model_->BeginInference();
    // Sequential per-sample reference answers, computed before any service
    // (and any cache) touches the model.
    for (const auto& s : dataset_->test()) {
      serve::RecoveryRequest req = serve::RequestFromSample(s);
      TrajectorySample eph = MakeEphemeralSample(
          std::move(req.input), std::move(req.input_indices),
          req.target_times);
      reference_->push_back(model_->Recover(eph));
    }
  }
  static void TearDownTestSuite() {
    delete model_;
    delete ctx_;
    delete dataset_;
    delete reference_;
    model_ = nullptr;
    ctx_ = nullptr;
    dataset_ = nullptr;
    reference_ = nullptr;
  }

  static RnTrajRecConfig SmallConfig() {
    RnTrajRecConfig cfg;
    cfg.dim = 16;
    cfg.delta = 250.0;
    cfg.max_subgraph_nodes = 16;
    cfg.gridgnn.gnn_layers = 1;
    cfg.gridgnn.heads = 2;
    cfg.gpsformer.blocks = 1;
    cfg.gpsformer.heads = 2;
    cfg.gpsformer.grl.heads = 2;
    cfg.Sync();
    return cfg;
  }

  static serve::RecoveryServiceConfig BaseServiceConfig() {
    serve::RecoveryServiceConfig scfg;
    scfg.num_sessions = 2;
    scfg.batcher.max_batch_size = 8;
    scfg.batcher.max_batch_delay_us = 500;
    scfg.warm_model = false;  // warmed in SetUpTestSuite
    return scfg;
  }

  /// Expects `resp` to match the sequential reference for test sample `i`
  /// (same segments; ratios within float rounding of the batched path).
  static void ExpectMatchesReference(const RecoveryResponse& resp, size_t i) {
    const MatchedTrajectory& ref = (*reference_)[i];
    ASSERT_EQ(resp.recovered.size(), ref.size()) << "request " << i;
    for (int j = 0; j < ref.size(); ++j) {
      EXPECT_EQ(resp.recovered.points[j].seg_id, ref.points[j].seg_id)
          << "request " << i << " step " << j;
      EXPECT_NEAR(resp.recovered.points[j].ratio, ref.points[j].ratio, 1e-5)
          << "request " << i << " step " << j;
    }
  }

  static Dataset* dataset_;
  static ModelContext* ctx_;
  static RnTrajRec* model_;
  static std::vector<MatchedTrajectory>* reference_;
};

Dataset* ServeChaosFixture::dataset_ = nullptr;
ModelContext* ServeChaosFixture::ctx_ = nullptr;
RnTrajRec* ServeChaosFixture::model_ = nullptr;
std::vector<MatchedTrajectory>* ServeChaosFixture::reference_ =
    new std::vector<MatchedTrajectory>();

// ----- Fault: forwards throw -------------------------------------------------

TEST_F(ServeChaosFixture, ThrowPoisonsOnlyItsLaneOthersMatchReference) {
  serve::RecoveryServiceConfig scfg = BaseServiceConfig();
  scfg.num_sessions = 1;  // everything rides shared micro-batches
  scfg.fault.seed = 11;
  scfg.fault.throw_probability = 0.5;
  serve::RecoveryService service(model_, *ctx_, scfg);

  std::vector<std::future<RecoveryResponse>> futures;
  for (const auto& s : dataset_->test()) {
    futures.push_back(service.Submit(serve::RequestFromSample(s)));
  }
  int faulted = 0;
  int answered = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    RecoveryResponse resp = GetOrDie(futures[i]);
    if (resp.ok) {
      ++answered;
      EXPECT_EQ(resp.kind, ResponseKind::kOk);
      // The same micro-batch carried throwing lanes; survivors must still
      // be equivalent to sequential inference.
      ExpectMatchesReference(resp, i);
    } else {
      ++faulted;
      EXPECT_EQ(resp.kind, ResponseKind::kInternalError);
      EXPECT_NE(resp.error.find("injected"), std::string::npos) << resp.error;
    }
  }
  // seed 11 at p=0.5 over ids 0..7 produces both classes (deterministic).
  EXPECT_GT(faulted, 0);
  EXPECT_GT(answered, 0);
  ASSERT_NE(service.fault_injector(), nullptr);
  EXPECT_GT(service.fault_injector()->faults_injected(), 0);

  const auto stats = service.Stats();
  EXPECT_EQ(stats.ok, answered);
  EXPECT_EQ(stats.internal_error, faulted);
  EXPECT_EQ(stats.completed, static_cast<int64_t>(futures.size()));
  EXPECT_GT(stats.faults, 0);
}

TEST_F(ServeChaosFixture, EveryForwardThrowingNeverKillsAWorker) {
  serve::RecoveryServiceConfig scfg = BaseServiceConfig();
  scfg.fault.throw_probability = 1.0;
  serve::RecoveryService service(model_, *ctx_, scfg);

  // Two full waves: workers must survive the first wave of throws to be
  // alive for the second.
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<std::future<RecoveryResponse>> futures;
    for (const auto& s : dataset_->test()) {
      futures.push_back(service.Submit(serve::RequestFromSample(s)));
    }
    for (auto& f : futures) {
      RecoveryResponse resp = GetOrDie(f);
      EXPECT_FALSE(resp.ok);
      EXPECT_EQ(resp.kind, ResponseKind::kInternalError);
    }
  }
  const auto stats = service.Stats();
  EXPECT_EQ(stats.internal_error,
            static_cast<int64_t>(2 * dataset_->test().size()));
  EXPECT_EQ(stats.ok, 0);
}

// ----- Fault: deadlines expire -----------------------------------------------

TEST_F(ServeChaosFixture, ExpiredRequestsAreEvictedAtDequeueNotForwarded) {
  serve::RecoveryServiceConfig scfg = BaseServiceConfig();
  // A generous coalescing delay: requests sit in the forming batch long
  // past their microscopic budget, so the batcher's dequeue eviction (not
  // the session's dispatch check) answers them.
  scfg.num_sessions = 1;
  scfg.batcher.max_batch_delay_us = 20000;
  serve::RecoveryService service(model_, *ctx_, scfg);

  std::vector<std::future<RecoveryResponse>> futures;
  for (const auto& s : dataset_->test()) {
    serve::RecoveryRequest req = serve::RequestFromSample(s);
    req.deadline_ms = 0.001;  // expired ~immediately
    futures.push_back(service.Submit(std::move(req)));
  }
  for (auto& f : futures) {
    RecoveryResponse resp = GetOrDie(f);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.kind, ResponseKind::kDeadlineMissed);
  }
  const auto stats = service.Stats();
  EXPECT_EQ(stats.deadline_missed,
            static_cast<int64_t>(dataset_->test().size()));
  EXPECT_EQ(stats.ok, 0);
}

TEST_F(ServeChaosFixture, InjectedDeadlineExpiryIsCountedAndHarmless) {
  serve::RecoveryServiceConfig scfg = BaseServiceConfig();
  scfg.fault.seed = 7;
  scfg.fault.expire_probability = 0.5;
  serve::RecoveryService service(model_, *ctx_, scfg);

  std::vector<std::future<RecoveryResponse>> futures;
  for (const auto& s : dataset_->test()) {
    futures.push_back(service.Submit(serve::RequestFromSample(s)));
  }
  int missed = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    RecoveryResponse resp = GetOrDie(futures[i]);
    if (resp.kind == ResponseKind::kDeadlineMissed) {
      ++missed;
      EXPECT_FALSE(resp.ok);
    } else {
      ASSERT_TRUE(resp.ok) << resp.error;
      ExpectMatchesReference(resp, i);
    }
  }
  EXPECT_GT(missed, 0);
  EXPECT_EQ(service.Stats().deadline_missed, missed);
}

// ----- Fault: sessions stall -------------------------------------------------

TEST_F(ServeChaosFixture, StalledSessionMissesDeadlinesButNeverHangs) {
  serve::RecoveryServiceConfig scfg = BaseServiceConfig();
  scfg.num_sessions = 1;
  scfg.fault.stall_probability = 1.0;
  scfg.fault.stall_ms = 30;
  serve::RecoveryService service(model_, *ctx_, scfg);

  std::vector<std::future<RecoveryResponse>> futures;
  for (const auto& s : dataset_->test()) {
    serve::RecoveryRequest req = serve::RequestFromSample(s);
    req.deadline_ms = 10.0;  // tighter than the stall
    futures.push_back(service.Submit(std::move(req)));
  }
  for (auto& f : futures) {
    RecoveryResponse resp = GetOrDie(f);
    // Either evicted in queue behind the stalled batch or caught by the
    // session's dispatch/post-forward budget checks — never a hang, never
    // delivered late as a success.
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.kind, ResponseKind::kDeadlineMissed);
  }
}

// ----- Degradation ladder end to end -----------------------------------------

TEST_F(ServeChaosFixture, LadderDegradesUnderMissesThenRecoversToOk) {
  serve::RecoveryServiceConfig scfg = BaseServiceConfig();
  scfg.num_sessions = 1;
  scfg.policy = LadderConfig();  // window 8, min fill 2
  // Stalls wedge the (only) session so deadlines miss; the budget models
  // the fault clearing after 4 stalled batches.
  scfg.fault.stall_probability = 1.0;
  scfg.fault.stall_ms = 40;
  scfg.fault.max_faults = 4;
  serve::RecoveryService service(model_, *ctx_, scfg);

  const auto submit_one = [&](size_t sample, double deadline_ms) {
    serve::RecoveryRequest req =
        serve::RequestFromSample(dataset_->test()[sample]);
    req.deadline_ms = deadline_ms;
    auto f = service.Submit(std::move(req));
    return GetOrDie(f);
  };

  // Phase 1 — the fault is live: serial requests with budgets tighter than
  // the stall miss their deadlines and trip the ladder.
  int missed = 0;
  for (int i = 0; i < 4; ++i) {
    const RecoveryResponse resp = submit_one(i % dataset_->test().size(), 15.0);
    if (resp.kind == ResponseKind::kDeadlineMissed) ++missed;
  }
  EXPECT_GE(missed, 2);
  EXPECT_EQ(service.Stats().policy_state, PolicyState::kDegraded);
  EXPECT_GE(service.Stats().policy_entered_degraded, 1);

  // Phase 2 — the fault has cleared (budget spent) but the ladder is still
  // DEGRADED: requests are answered by the Linear+HMM fallback, flagged,
  // in budget, and matching the fallback reference exactly (it is
  // deterministic).
  LinearHmmModel fallback_ref(*ctx_, scfg.fallback_hmm);
  bool saw_degraded = false;
  int recovery_rounds = 0;
  while (service.Stats().policy_state != PolicyState::kOk) {
    ASSERT_LT(recovery_rounds, 64) << "ladder never returned to OK";
    const size_t sample = recovery_rounds++ % dataset_->test().size();
    const RecoveryResponse resp = submit_one(sample, 5000.0);
    ASSERT_TRUE(resp.ok) << resp.error;
    if (resp.degraded) {
      saw_degraded = true;
      serve::RecoveryRequest req =
          serve::RequestFromSample(dataset_->test()[sample]);
      TrajectorySample eph = MakeEphemeralSample(
          std::move(req.input), std::move(req.input_indices),
          req.target_times);
      const MatchedTrajectory expect = fallback_ref.Recover(eph);
      ASSERT_EQ(resp.recovered.size(), expect.size());
      for (int j = 0; j < expect.size(); ++j) {
        EXPECT_EQ(resp.recovered.points[j].seg_id, expect.points[j].seg_id);
        EXPECT_DOUBLE_EQ(resp.recovered.points[j].ratio,
                         expect.points[j].ratio);
      }
    }
  }
  EXPECT_TRUE(saw_degraded);

  // Phase 3 — recovered: full-model answers again, not flagged.
  const size_t sample = 0;
  const RecoveryResponse resp = submit_one(sample, 5000.0);
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_FALSE(resp.degraded);
  ExpectMatchesReference(resp, sample);

  const auto stats = service.Stats();
  EXPECT_GT(stats.degraded, 0);
  EXPECT_GT(stats.ok, 0);
  EXPECT_EQ(stats.policy_state, PolicyState::kOk);
}

// ----- Combined chaos --------------------------------------------------------

TEST_F(ServeChaosFixture, CombinedChaosEveryFutureResolvesAndCountsAddUp) {
  serve::RecoveryServiceConfig scfg = BaseServiceConfig();
  scfg.policy = LadderConfig();
  scfg.fault.seed = 23;
  scfg.fault.throw_probability = 0.25;
  scfg.fault.stall_probability = 0.25;
  scfg.fault.stall_ms = 10;
  scfg.fault.expire_probability = 0.15;
  serve::RecoveryService service(model_, *ctx_, scfg);

  constexpr int kWaves = 6;
  std::vector<std::future<RecoveryResponse>> futures;
  for (int wave = 0; wave < kWaves; ++wave) {
    for (const auto& s : dataset_->test()) {
      serve::RecoveryRequest req = serve::RequestFromSample(s);
      req.deadline_ms = 200.0;
      futures.push_back(service.Submit(std::move(req)));
    }
    // One malformed request per wave: validation must stay lane-isolated
    // under chaos too.
    serve::RecoveryRequest bad;
    futures.push_back(service.Submit(std::move(bad)));
  }
  int64_t resolved = 0;
  for (auto& f : futures) {
    const RecoveryResponse resp = GetOrDie(f);
    ++resolved;
    if (resp.ok) {
      EXPECT_EQ(resp.kind, ResponseKind::kOk);
    }
  }
  EXPECT_EQ(resolved, static_cast<int64_t>(futures.size()));

  const auto stats = service.Stats();
  EXPECT_EQ(stats.submitted, static_cast<int64_t>(futures.size()));
  // Every submission is accounted for exactly once across the breakdown.
  EXPECT_EQ(stats.completed + stats.shed, stats.submitted);
  EXPECT_EQ(stats.ok + stats.degraded + stats.validation_error +
                stats.deadline_missed + stats.internal_error,
            stats.completed);
  EXPECT_EQ(stats.validation_error, kWaves);

  // The exported metrics snapshot carries the same conservation law: the
  // outcome counters partition serve.submitted exactly (the PR 7 acceptance
  // invariant, checked on the machine-readable export rather than the
  // ServeStats view).
  const obs::MetricsSnapshot snap = service.Metrics();
  const auto counter = [&](const char* name) {
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? int64_t{0} : it->second;
  };
  EXPECT_EQ(counter("serve.submitted"), stats.submitted);
  EXPECT_EQ(counter("serve.ok") + counter("serve.degraded") +
                counter("serve.validation_error") +
                counter("serve.deadline_missed") +
                counter("serve.internal_error") + counter("serve.shed"),
            counter("serve.submitted"));
  // And the JSON export carries those exact counts verbatim.
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"serve.submitted\":" +
                      std::to_string(counter("serve.submitted"))),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"serve.ok\":" + std::to_string(counter("serve.ok"))),
            std::string::npos)
      << json;
}

// ----- Tracing under chaos ---------------------------------------------------

TEST_F(ServeChaosFixture, EvictedAtDequeueRequestCarriesAWellFormedTrace) {
  // Trace every request, then force the nastiest lifecycle for a span tree:
  // expiry in queue, answered by the batcher's dequeue eviction — the
  // request never reaches a session, so the trace must be finished by the
  // eviction path (queue span closed, eviction event stamped, root closed).
  serve::RecoveryServiceConfig scfg = BaseServiceConfig();
  scfg.num_sessions = 1;
  scfg.batcher.max_batch_delay_us = 20000;
  scfg.trace.sample_rate = 1.0;
  serve::RecoveryService service(model_, *ctx_, scfg);

  std::vector<std::future<RecoveryResponse>> futures;
  for (const auto& s : dataset_->test()) {
    serve::RecoveryRequest req = serve::RequestFromSample(s);
    req.deadline_ms = 0.001;  // expired ~immediately
    futures.push_back(service.Submit(std::move(req)));
  }
  int traced = 0;
  for (auto& f : futures) {
    RecoveryResponse resp = GetOrDie(f);
    EXPECT_EQ(resp.kind, ResponseKind::kDeadlineMissed);
    ASSERT_NE(resp.trace, nullptr);
    ++traced;
    std::string why;
    EXPECT_TRUE(resp.trace->WellFormed(&why)) << why;
    EXPECT_STREQ(resp.trace->outcome(), "deadline_missed");
    // The span tree records the lifecycle: a queue wait under the root and
    // the eviction event, no dispatch/forward (it never reached a session).
    EXPECT_GE(resp.trace->SpanIndex("queue"), 0);
    EXPECT_EQ(resp.trace->SpanIndex("dispatch"), -1);
    EXPECT_EQ(resp.trace->SpanIndex("forward"), -1);
    bool evicted_event = false;
    for (const auto& ev : resp.trace->events()) {
      if (std::string(ev.name) == "evicted-at-dequeue") evicted_event = true;
    }
    EXPECT_TRUE(evicted_event);
    EXPECT_FALSE(resp.trace->ToJson().empty());
  }
  EXPECT_EQ(traced, static_cast<int>(futures.size()));
  ASSERT_NE(service.tracer(), nullptr);
  EXPECT_EQ(service.tracer()->sampled(), traced);
}

TEST_F(ServeChaosFixture, TracedOkRequestRecordsTheFullPipeline) {
  serve::RecoveryServiceConfig scfg = BaseServiceConfig();
  scfg.trace.sample_rate = 1.0;
  serve::RecoveryService service(model_, *ctx_, scfg);

  std::vector<std::future<RecoveryResponse>> futures;
  for (const auto& s : dataset_->test()) {
    futures.push_back(service.Submit(serve::RequestFromSample(s)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    RecoveryResponse resp = GetOrDie(futures[i]);
    ASSERT_TRUE(resp.ok) << resp.error;
    ExpectMatchesReference(resp, i);
    ASSERT_NE(resp.trace, nullptr);
    std::string why;
    EXPECT_TRUE(resp.trace->WellFormed(&why)) << why;
    EXPECT_STREQ(resp.trace->outcome(), "ok");
    // The full lifecycle: queue wait, dispatch, the forward (with its
    // encode/decode split synthesised from stage capture), respond.
    for (const char* span :
         {"queue", "dispatch", "forward", "forward.encode", "forward.decode",
          "respond"}) {
      EXPECT_GE(resp.trace->SpanIndex(span), 0) << span;
    }
    EXPECT_GT(resp.trace->batch_size(), 0);
    EXPECT_GE(resp.trace->session_id(), 0);
  }
}

// ----- Shutdown hardening ----------------------------------------------------

TEST_F(ServeChaosFixture, SubmitRacingShutdownAlwaysGetsAResponse) {
  // Hammer Submit from several producers while Shutdown lands mid-stream.
  // Every future must resolve — answered or shed — with no hang, no broken
  // promise, no leak (the ASan job watches) and no race (the TSan job).
  for (int round = 0; round < 3; ++round) {
    serve::RecoveryServiceConfig scfg = BaseServiceConfig();
    serve::RecoveryService service(model_, *ctx_, scfg);

    constexpr int kProducers = 4;
    constexpr int kPerProducer = 40;
    std::vector<std::vector<std::future<RecoveryResponse>>> futures(
        kProducers);
    std::vector<std::thread> producers;
    std::atomic<int> started{0};
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        started.fetch_add(1);
        for (int i = 0; i < kPerProducer; ++i) {
          futures[p].push_back(service.Submit(
              serve::RequestFromSample(dataset_->test()[i % 4])));
        }
      });
    }
    while (started.load() < kProducers) std::this_thread::yield();
    // Land Shutdown in the middle of the submission storm.
    std::this_thread::sleep_for(std::chrono::milliseconds(2 * round));
    service.Shutdown();
    for (auto& t : producers) t.join();

    int64_t answered = 0;
    int64_t refused = 0;
    for (auto& lane : futures) {
      for (auto& f : lane) {
        const RecoveryResponse resp = GetOrDie(f);
        if (resp.ok) {
          ++answered;
        } else {
          ++refused;
          EXPECT_EQ(resp.kind, ResponseKind::kShed);
        }
      }
    }
    EXPECT_EQ(answered + refused,
              static_cast<int64_t>(kProducers) * kPerProducer);
    const auto stats = service.Stats();
    EXPECT_EQ(stats.completed + stats.shed, stats.submitted);
  }
}

TEST_F(ServeChaosFixture, ShutdownResolvesEverythingQueuedBehindAStall) {
  // Requests queued behind a stalled session when Shutdown lands must all
  // still resolve: the drain contract covers wedged workers.
  serve::RecoveryServiceConfig scfg = BaseServiceConfig();
  scfg.num_sessions = 1;
  scfg.batcher.max_batch_size = 2;  // many batches -> many stalls
  scfg.fault.stall_probability = 1.0;
  scfg.fault.stall_ms = 20;
  serve::RecoveryService service(model_, *ctx_, scfg);

  std::vector<std::future<RecoveryResponse>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(service.Submit(
        serve::RequestFromSample(dataset_->test()[i % 4])));
  }
  service.Shutdown();  // returns only once the queue is drained
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "Shutdown returned with an unresolved future";
    const RecoveryResponse resp = f.get();
    EXPECT_TRUE(resp.ok || resp.kind == ResponseKind::kShed) << resp.error;
  }
}

// ----- Hot swap (PR 9) -------------------------------------------------------

TEST_F(ServeChaosFixture, HotSwapUnderChaosDropsNothingAndNeverBlendsModels) {
  serve::RecoveryServiceConfig scfg = BaseServiceConfig();
  scfg.fault.seed = 17;
  scfg.fault.throw_probability = 0.15;
  serve::RecoveryService service(model_, *ctx_, scfg);

  // A replacement generation with different weights, plus its own
  // sequential reference answers — computed before the service (and its
  // caches) touches the model, exactly like the fixture's v0 reference.
  SeedGlobalRng(71);
  auto next = std::make_shared<RnTrajRec>(SmallConfig(), *ctx_);
  next->SetTrainingMode(false);
  next->BeginInference();
  std::vector<MatchedTrajectory> next_reference;
  for (const auto& s : dataset_->test()) {
    serve::RecoveryRequest req = serve::RequestFromSample(s);
    TrajectorySample eph = MakeEphemeralSample(
        std::move(req.input), std::move(req.input_indices), req.target_times);
    next_reference.push_back(next->Recover(eph));
  }

  // Open-loop load: waves in flight when the swap lands, waves after it.
  constexpr int kWaves = 3;
  std::vector<std::future<RecoveryResponse>> before, after;
  for (int w = 0; w < kWaves; ++w) {
    for (const auto& s : dataset_->test()) {
      before.push_back(service.Submit(serve::RequestFromSample(s)));
    }
  }
  std::string err;
  ASSERT_TRUE(service.SwapModel(next, &err)) << err;
  EXPECT_EQ(service.model_version(), 1u);
  for (int w = 0; w < kWaves; ++w) {
    for (const auto& s : dataset_->test()) {
      after.push_back(service.Submit(serve::RequestFromSample(s)));
    }
  }

  const auto check = [&](std::vector<std::future<RecoveryResponse>>& futures,
                         bool submitted_after_swap) {
    for (size_t i = 0; i < futures.size(); ++i) {
      // Zero dropped futures: every one resolves, across the flip.
      RecoveryResponse resp = GetOrDie(futures[i]);
      ASSERT_LE(resp.model_version, 1u);
      if (submitted_after_swap) {
        // Dispatched strictly after the flip: must be the new generation.
        EXPECT_EQ(resp.model_version, 1u);
      }
      if (!resp.ok) {  // injected throw — isolated to its lane as ever
        EXPECT_EQ(resp.kind, ResponseKind::kInternalError);
        continue;
      }
      // Whole-model answers only: the answer must match the stamped
      // generation's sequential reference exactly — never a blend of old
      // and new weights.
      const size_t sample = i % dataset_->test().size();
      const MatchedTrajectory& ref = resp.model_version == 0
                                         ? (*reference_)[sample]
                                         : next_reference[sample];
      ASSERT_EQ(resp.recovered.size(), ref.size()) << "request " << i;
      for (int j = 0; j < ref.size(); ++j) {
        EXPECT_EQ(resp.recovered.points[j].seg_id, ref.points[j].seg_id)
            << "request " << i << " step " << j;
        EXPECT_NEAR(resp.recovered.points[j].ratio, ref.points[j].ratio, 1e-5)
            << "request " << i << " step " << j;
      }
    }
  };
  check(before, /*submitted_after_swap=*/false);
  check(after, /*submitted_after_swap=*/true);

  const auto stats = service.Stats();
  EXPECT_EQ(stats.completed + stats.shed, stats.submitted);
  const obs::MetricsSnapshot snap = service.Metrics();
  auto c = snap.counters.find("serve.swaps");
  ASSERT_NE(c, snap.counters.end());
  EXPECT_EQ(c->second, 1);
  auto g = snap.gauges.find("serve.model_version");
  ASSERT_NE(g, snap.gauges.end());
  EXPECT_EQ(g->second, 1.0);
}

TEST_F(ServeChaosFixture, SwapModelRefusesBadInputAndRecordsItsSpan) {
  serve::RecoveryServiceConfig scfg = BaseServiceConfig();
  scfg.trace.sample_rate = 1.0;
  serve::RecoveryService service(model_, *ctx_, scfg);
  std::string err;
  EXPECT_FALSE(service.SwapModel(nullptr, &err));
  EXPECT_NE(err.find("null"), std::string::npos) << err;
  EXPECT_EQ(service.model_version(), 0u);

  SeedGlobalRng(72);
  auto next = std::make_shared<RnTrajRec>(SmallConfig(), *ctx_);
  ASSERT_TRUE(service.SwapModel(next, &err)) << err;
  EXPECT_EQ(service.model_version(), 1u);
  // The swap's own timeline is a retained trace: warmup + flip spans.
  ASSERT_NE(service.tracer(), nullptr);
  bool swap_trace_found = false;
  for (const auto& trace : service.tracer()->Retained()) {
    if (std::string(trace->outcome()) == "model-swap") {
      swap_trace_found = true;
      EXPECT_GE(trace->SpanIndex("swap.warmup"), 0);
      EXPECT_GE(trace->SpanIndex("swap.flip"), 0);
    }
  }
  EXPECT_TRUE(swap_trace_found);
  // A request on the fresh generation round-trips and says so.
  auto f = service.Submit(serve::RequestFromSample(dataset_->test()[0]));
  RecoveryResponse resp = GetOrDie(f);
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.model_version, 1u);

  service.Shutdown();
  SeedGlobalRng(73);
  auto late = std::make_shared<RnTrajRec>(SmallConfig(), *ctx_);
  EXPECT_FALSE(service.SwapModel(late, &err));
  EXPECT_NE(err.find("shut down"), std::string::npos) << err;
  EXPECT_EQ(service.model_version(), 1u);
}

// ----- Chaos: rolling deploy across a worker fleet (PR 10) -------------------

TEST_F(ServeChaosFixture, RollingDeployAcrossFleetMidStreamDropsNothing) {
  // Two distinguishable generations: A is the fixture model, B a
  // differently-seeded sibling. Only matching weights can explain matching
  // answers, so the version stamp on each response is checkable against
  // the actual trajectory it carries.
  const std::string tag = std::to_string(::getpid());
  const std::string snap_a = "/tmp/chaos_deploy_" + tag + "_a.snapshot";
  const std::string snap_b = "/tmp/chaos_deploy_" + tag + "_b.snapshot";
  std::string error;
  ASSERT_TRUE(model_->SaveSnapshot(snap_a, &error)) << error;

  SeedGlobalRng(62);
  RnTrajRec model_b(SmallConfig(), *ctx_);
  model_b.SetTrainingMode(false);
  model_b.BeginInference();
  ASSERT_TRUE(model_b.SaveSnapshot(snap_b, &error)) << error;
  std::vector<MatchedTrajectory> reference_b;
  for (const auto& s : dataset_->test()) {
    serve::RecoveryRequest req = serve::RequestFromSample(s);
    TrajectorySample eph = MakeEphemeralSample(
        std::move(req.input), std::move(req.input_indices), req.target_times);
    reference_b.push_back(model_b.Recover(eph));
  }

  // 3-worker fleet, all starting on generation 0 = snapshot A.
  const int kWorkers = 3;
  fleet::FleetRouterConfig rcfg;
  std::vector<pid_t> pids;
  std::vector<fleet::WorkerSpawn> spawns;
  for (int i = 0; i < kWorkers; ++i) {
    fleet::WorkerSpawn spawn;
    spawn.profile = "chaos-tiny";
    spawn.snapshot_path = snap_a;
    spawn.data_endpoint =
        "unix:/tmp/chaos_deploy_" + tag + "_w" + std::to_string(i) + ".sock";
    spawn.control_endpoint =
        "unix:/tmp/chaos_deploy_" + tag + "_w" + std::to_string(i) + ".ctl";
    pid_t pid = 0;
    ASSERT_TRUE(fleet::SpawnWorkerProcess(spawn, &pid, &error)) << error;
    pids.push_back(pid);
    spawns.push_back(spawn);
    rcfg.workers.push_back({spawn.data_endpoint, spawn.control_endpoint});
  }

  {
    fleet::FleetRouter router(rcfg);
    ASSERT_TRUE(router.WaitForAlive(kWorkers, 120000))
        << "fleet never came up";

    // Stream continuously while the deploy rolls worker by worker: the
    // submitter thread keeps requests in flight across every swap window.
    std::atomic<bool> deploying{true};
    std::mutex futures_mu;
    std::vector<std::future<RecoveryResponse>> futures;
    std::vector<size_t> sample_of;
    std::thread submitter([&] {
      size_t i = 0;
      while (deploying.load(std::memory_order_acquire)) {
        const size_t idx = i++ % dataset_->test().size();
        auto f = router.Submit(serve::RequestFromSample(dataset_->test()[idx]));
        {
          std::lock_guard<std::mutex> lock(futures_mu);
          futures.push_back(std::move(f));
          sample_of.push_back(idx);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });

    ASSERT_TRUE(router.RollingDeploy(snap_b, &error)) << error;
    deploying.store(false, std::memory_order_release);
    submitter.join();

    // Zero dropped futures, and every response's answer belongs to exactly
    // the generation its version stamp names: version 0 == snapshot A's
    // reference, version 1 == snapshot B's — never a blend.
    int from_a = 0;
    int from_b = 0;
    for (size_t k = 0; k < futures.size(); ++k) {
      RecoveryResponse resp = GetOrDie(futures[k]);
      ASSERT_TRUE(resp.ok) << "mid-deploy request " << k << ": "
                           << resp.error;
      ASSERT_LE(resp.model_version, 1u) << "request " << k;
      const MatchedTrajectory& ref = resp.model_version == 0
                                         ? (*reference_)[sample_of[k]]
                                         : reference_b[sample_of[k]];
      if (resp.model_version == 0) {
        ++from_a;
      } else {
        ++from_b;
      }
      ASSERT_EQ(resp.recovered.size(), ref.size()) << "request " << k;
      for (int j = 0; j < ref.size(); ++j) {
        EXPECT_EQ(resp.recovered.points[j].seg_id, ref.points[j].seg_id)
            << "request " << k << " step " << j << " (version "
            << resp.model_version << ")";
        EXPECT_NEAR(resp.recovered.points[j].ratio, ref.points[j].ratio,
                    1e-5)
            << "request " << k << " step " << j;
      }
    }
    EXPECT_GT(from_a + from_b, 0) << "stream produced no requests";

    // After the deploy completes, every worker answers on generation 1.
    std::vector<std::future<RecoveryResponse>> after;
    for (int pass = 0; pass < 3; ++pass) {
      for (size_t i = 0; i < dataset_->test().size(); ++i) {
        after.push_back(
            router.Submit(serve::RequestFromSample(dataset_->test()[i])));
      }
    }
    for (size_t k = 0; k < after.size(); ++k) {
      RecoveryResponse resp = GetOrDie(after[k]);
      ASSERT_TRUE(resp.ok) << "post-deploy request " << k << ": "
                           << resp.error;
      EXPECT_EQ(resp.model_version, 1u) << "request " << k
                                        << " stuck on the old generation";
      const MatchedTrajectory& ref =
          reference_b[k % dataset_->test().size()];
      for (int j = 0; j < ref.size(); ++j) {
        EXPECT_EQ(resp.recovered.points[j].seg_id, ref.points[j].seg_id)
            << "request " << k << " step " << j;
      }
    }
    router.Shutdown();
  }

  for (pid_t pid : pids) fleet::KillWorkerProcess(pid);
  for (const auto& spawn : spawns) {
    std::remove(spawn.data_endpoint.substr(5).c_str());
    std::remove(spawn.control_endpoint.substr(5).c_str());
  }
  std::remove(snap_a.c_str());
  std::remove(snap_b.c_str());
}

}  // namespace
}  // namespace rntraj
