// Unit suite for the observability layer (PR 7): exact-count log-bucket
// histograms (edge-exact classification, underflow/overflow, merge/delta,
// concurrent increments — the TSan job runs this file), the tree-wide
// quantile rank rule pinned against every implementation that claims it,
// the metrics registry + JSON/Prometheus exports, the request tracer
// (deterministic sampling, ring wraparound, span-tree well-formedness),
// and the stage profiler (global accumulation, thread-local capture
// frames, nesting).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/histogram.h"
#include "src/obs/metrics.h"
#include "src/obs/quantile.h"
#include "src/obs/stage_profiler.h"
#include "src/nn/transformer.h"
#include "src/obs/trace.h"
#include "src/serve/workload.h"
#include "src/tensor/fusion.h"

namespace rntraj {
namespace {

using obs::ExactQuantile;
using obs::HistogramOptions;
using obs::HistogramSnapshot;
using obs::LatencyHistogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::QuantileRank;
using obs::RequestTrace;
using obs::ScopedStage;
using obs::Stage;
using obs::StageCaptureScope;
using obs::StageProfile;
using obs::StageProfiler;
using obs::Tracer;
using obs::TracerConfig;

// ----- Quantile rank rule ----------------------------------------------------

TEST(QuantileTest, RankRuleIsFloorOfQTimesNMinusOne) {
  EXPECT_EQ(QuantileRank(0.0, 10), 0);
  EXPECT_EQ(QuantileRank(0.5, 10), 4);   // floor(0.5 * 9)
  EXPECT_EQ(QuantileRank(0.99, 10), 8);  // floor(0.99 * 9)
  EXPECT_EQ(QuantileRank(1.0, 10), 9);
  EXPECT_EQ(QuantileRank(0.5, 0), 0);
  EXPECT_EQ(QuantileRank(0.5, 1), 0);
}

TEST(QuantileTest, ExactQuantileSelectsTheRankedSample) {
  const std::vector<double> v = {5.0, 1.0, 9.0, 3.0};
  // sorted: 1 3 5 9; rank(0.5, 4) = 1 -> 3 (type-1, no interpolation).
  EXPECT_DOUBLE_EQ(ExactQuantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(ExactQuantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ExactQuantile(v, 1.0), 9.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ExactQuantile({7.0}, 0.99), 7.0);
}

TEST(QuantileTest, EveryPercentileImplementationAgreesOnTheRule) {
  // serve::Percentile must be the SAME function (it delegates); pin it so
  // the implementations can never drift apart again.
  std::vector<double> v;
  for (int i = 100; i >= 1; --i) v.push_back(static_cast<double>(i));
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(serve::Percentile(v, q), ExactQuantile(v, q)) << q;
    // And both match the rank rule applied to the sorted samples.
    std::vector<double> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_DOUBLE_EQ(
        ExactQuantile(v, q),
        sorted[static_cast<size_t>(QuantileRank(q, sorted.size()))])
        << q;
  }
}

// ----- Histogram: bucket-boundary exactness ----------------------------------

/// Small layout for edge arithmetic by hand: edges 1, 10, 100, 1000.
HistogramOptions DecadeOptions() {
  HistogramOptions opt;
  opt.min_value = 1.0;
  opt.max_value = 1000.0;
  opt.buckets_per_decade = 1;
  return opt;
}

TEST(HistogramTest, EdgeValuesLandInTheBucketTheyOpen) {
  LatencyHistogram h(DecadeOptions());
  ASSERT_EQ(h.edges().size(), 4u);  // 1, 10, 100, 1000
  EXPECT_DOUBLE_EQ(h.edges()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.edges()[3], 1000.0);

  // Buckets are half-open [lo, hi): a value exactly on an edge counts in
  // the bucket whose LOWER edge it is.
  h.Record(1.0);    // first finite bucket [1, 10)
  h.Record(10.0);   // second finite bucket [10, 100)
  h.Record(99.999); // still the second finite bucket
  h.Record(100.0);  // third finite bucket [100, 1000)
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.counts.size(), 5u);  // underflow + 3 finite + overflow
  EXPECT_EQ(s.counts[0], 0);
  EXPECT_EQ(s.counts[1], 1);
  EXPECT_EQ(s.counts[2], 2);
  EXPECT_EQ(s.counts[3], 1);
  EXPECT_EQ(s.counts[4], 0);
  EXPECT_EQ(s.TotalCount(), 4);
}

TEST(HistogramTest, UnderflowAndOverflowAreExact) {
  LatencyHistogram h(DecadeOptions());
  h.Record(0.5);                                      // < min -> underflow
  h.Record(0.999999);                                 // < min -> underflow
  h.Record(1000.0);                                   // == max -> overflow
  h.Record(5000.0);                                   // > max -> overflow
  h.Record(std::numeric_limits<double>::infinity());  // overflow
  h.Record(-std::numeric_limits<double>::infinity()); // underflow
  h.Record(std::numeric_limits<double>::quiet_NaN()); // dropped
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.counts.front(), 3);
  EXPECT_EQ(s.counts.back(), 3);
  EXPECT_EQ(s.TotalCount(), 6);  // the NaN never landed
}

TEST(HistogramTest, QuantileIsBucketUpperEdgeClampedToObservedExtrema) {
  LatencyHistogram h(DecadeOptions());
  for (int i = 0; i < 99; ++i) h.Record(5.0);  // [1, 10)
  h.Record(500.0);                             // [100, 1000)
  const HistogramSnapshot s = h.Snapshot();
  // p50's rank lands among the 5.0s: answer is that bucket's upper edge.
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 10.0);
  // p100's rank is the 500 sample; its bucket's upper edge (1000) clamps to
  // the observed max.
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 500.0);
  // Underflow answers clamp to the observed min rather than inventing 0.
  LatencyHistogram u(DecadeOptions());
  u.Record(0.25);
  EXPECT_DOUBLE_EQ(u.Snapshot().Quantile(0.5), 0.25);
  // Empty histogram answers 0.
  EXPECT_DOUBLE_EQ(LatencyHistogram(DecadeOptions()).Quantile(0.99), 0.0);
}

TEST(HistogramTest, QuantileIsWithinOneBucketWidthOfExact) {
  LatencyHistogram h;  // default serving layout: 48 buckets/decade
  std::vector<double> samples;
  uint64_t z = 42;
  for (int i = 0; i < 4000; ++i) {
    // Cheap xorshift across ~4 decades of latencies.
    z ^= z << 13; z ^= z >> 7; z ^= z << 17;
    const double v = 0.05 + static_cast<double>(z % 1000000) / 1000.0;
    samples.push_back(v);
    h.Record(v);
  }
  const HistogramSnapshot s = h.Snapshot();
  const double width = std::pow(10.0, 1.0 / 48.0);  // ~1.049
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = ExactQuantile(samples, q);
    const double approx = s.Quantile(q);
    EXPECT_GE(approx, exact) << q;                  // upper edge: never under
    EXPECT_LE(approx, exact * width * (1 + 1e-12)) << q;
  }
}

TEST(HistogramTest, MergeEqualsOneHistogramHavingSeenEverything) {
  LatencyHistogram a(DecadeOptions());
  LatencyHistogram b(DecadeOptions());
  LatencyHistogram whole(DecadeOptions());
  for (double v : {2.0, 30.0, 0.1}) { a.Record(v); whole.Record(v); }
  for (double v : {700.0, 4.0, 2000.0}) { b.Record(v); whole.Record(v); }
  HistogramSnapshot sa = a.Snapshot();
  ASSERT_TRUE(sa.Merge(b.Snapshot()));
  const HistogramSnapshot sw = whole.Snapshot();
  EXPECT_EQ(sa.counts, sw.counts);
  EXPECT_DOUBLE_EQ(sa.sum, sw.sum);
  EXPECT_DOUBLE_EQ(sa.Quantile(0.5), sw.Quantile(0.5));
  // Layout mismatch is refused, not silently mangled.
  LatencyHistogram other;  // default layout
  EXPECT_FALSE(sa.Merge(other.Snapshot()));
}

TEST(HistogramTest, DeltaIsolatesTheWindow) {
  LatencyHistogram h(DecadeOptions());
  h.Record(2.0);
  h.Record(20.0);
  const HistogramSnapshot before = h.Snapshot();
  h.Record(200.0);
  h.Record(2.0);
  const HistogramSnapshot delta = h.Snapshot().Delta(before);
  EXPECT_EQ(delta.TotalCount(), 2);
  EXPECT_EQ(delta.counts[1], 1);  // the second 2.0
  EXPECT_EQ(delta.counts[3], 1);  // the 200.0
  EXPECT_DOUBLE_EQ(delta.sum, 202.0);
}

// ----- Concurrency: exact totals under contention ----------------------------

TEST(MetricsConcurrencyTest, CountersAndHistogramsCountExactlyUnderThreads) {
  MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("test.hits");
  LatencyHistogram* h = reg.GetHistogram("test.lat_ms");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add(1);
        h->Record(static_cast<double>((t * kPerThread + i) % 100) + 0.5);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Exact counts: sharded atomics lose nothing, ever.
  EXPECT_EQ(c->Value(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->Snapshot().TotalCount(), int64_t{kThreads} * kPerThread);
}

// ----- Registry + exports ----------------------------------------------------

TEST(MetricsRegistryTest, NamesResolveToStablePointers) {
  MetricsRegistry reg;
  obs::Counter* c1 = reg.GetCounter("a");
  obs::Counter* c2 = reg.GetCounter("a");
  EXPECT_EQ(c1, c2);
  obs::LatencyHistogram* h1 = reg.GetHistogram("h");
  // Options apply on first registration only.
  HistogramOptions other;
  other.buckets_per_decade = 2;
  EXPECT_EQ(reg.GetHistogram("h", other), h1);
  EXPECT_EQ(h1->edges().size(), reg.GetHistogram("h")->edges().size());
}

TEST(MetricsRegistryTest, SnapshotDeltaAndExportsCarryExactCounts) {
  MetricsRegistry reg;
  reg.GetCounter("req.total")->Add(7);
  reg.GetGauge("queue.depth")->Set(3.5);
  reg.GetHistogram("lat")->Record(12.0);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("req.total"), 7);
  EXPECT_DOUBLE_EQ(snap.gauges.at("queue.depth"), 3.5);
  EXPECT_EQ(snap.histograms.at("lat").TotalCount(), 1);

  reg.GetCounter("req.total")->Add(2);
  const MetricsSnapshot delta = reg.SnapshotDelta(snap);
  EXPECT_EQ(delta.counters.at("req.total"), 2);
  // Gauges have no delta: the instantaneous value rides along.
  EXPECT_DOUBLE_EQ(delta.gauges.at("queue.depth"), 3.5);

  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"req.total\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue.depth\":3.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat\""), std::string::npos) << json;

  const std::string prom = reg.Snapshot().ToPrometheusText();
  EXPECT_NE(prom.find("req_total 9"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE lat histogram"), std::string::npos) << prom;
  EXPECT_NE(prom.find("lat_bucket{le=\"+Inf\"} 1"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("lat_count 1"), std::string::npos) << prom;
}

TEST(MetricsRegistryTest, MergeAggregatesWorkers) {
  MetricsRegistry w1;
  MetricsRegistry w2;
  w1.GetCounter("serve.ok")->Add(3);
  w2.GetCounter("serve.ok")->Add(4);
  w1.GetHistogram("serve.latency_ms")->Record(10.0);
  w2.GetHistogram("serve.latency_ms")->Record(20.0);
  MetricsSnapshot fleet = w1.Snapshot();
  fleet.Merge(w2.Snapshot());
  EXPECT_EQ(fleet.counters.at("serve.ok"), 7);
  EXPECT_EQ(fleet.histograms.at("serve.latency_ms").TotalCount(), 2);
}

// ----- Tracer ----------------------------------------------------------------

TEST(TracerTest, SamplingIsDeterministicInSeedAndId) {
  TracerConfig cfg;
  cfg.sample_rate = 0.5;
  cfg.seed = 99;
  Tracer t1(cfg);
  Tracer t2(cfg);
  int sampled = 0;
  for (uint64_t id = 0; id < 200; ++id) {
    EXPECT_EQ(t1.ShouldSample(id), t2.ShouldSample(id)) << id;
    if (t1.ShouldSample(id)) ++sampled;
  }
  // Rate 0.5 over 200 ids: both classes occur, roughly half each.
  EXPECT_GT(sampled, 50);
  EXPECT_LT(sampled, 150);

  cfg.sample_rate = 0.0;
  Tracer off(cfg);
  cfg.sample_rate = 1.0;
  Tracer on(cfg);
  for (uint64_t id = 0; id < 50; ++id) {
    EXPECT_FALSE(off.ShouldSample(id));
    EXPECT_EQ(off.MaybeBegin(id), nullptr);
    EXPECT_TRUE(on.ShouldSample(id));
    EXPECT_NE(on.MaybeBegin(id), nullptr);
  }
  EXPECT_EQ(off.sampled(), 0);
  EXPECT_EQ(on.sampled(), 50);
}

TEST(TracerTest, RingWrapsKeepingTheNewestTraces) {
  TracerConfig cfg;
  cfg.sample_rate = 1.0;
  cfg.ring_capacity = 4;
  Tracer tracer(cfg);
  for (uint64_t id = 0; id < 10; ++id) {
    auto t = std::make_shared<RequestTrace>(id);
    t->Finish();
    tracer.Retain(t);
  }
  const auto retained = tracer.Retained();
  ASSERT_EQ(retained.size(), 4u);
  // Capacity 4 after 10 retains: exactly ids 6..9 survive.
  std::vector<uint64_t> ids;
  for (const auto& t : retained) ids.push_back(t->request_id());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{6, 7, 8, 9}));
  EXPECT_EQ(tracer.dropped(), 0);  // no concurrent collisions here
  const std::string dump = tracer.DumpJson();
  EXPECT_NE(dump.find("\"request_id\":9"), std::string::npos) << dump;
  EXPECT_EQ(dump.find("\"request_id\":5"), std::string::npos) << dump;
}

TEST(RequestTraceTest, SpanTreeIsWellFormedAndFinishClosesEverything) {
  RequestTrace t(17);
  const int queue = t.OpenSpan("queue");
  t.CloseSpan(queue);
  const int dispatch = t.OpenSpan("dispatch");
  t.CloseSpan(dispatch);
  const int fwd = t.OpenSpan("forward");
  const int enc = t.OpenSpan("encode", fwd);
  t.CloseSpan(enc);
  t.AddEvent("policy-transition");
  t.OpenSpan("respond");
  // `forward` and `respond` are still open; Finish must close them, root
  // last, and leave a structurally valid tree.
  t.Finish();
  std::string why;
  EXPECT_TRUE(t.WellFormed(&why)) << why;
  EXPECT_EQ(t.SpanIndex("queue"), queue);
  EXPECT_EQ(t.SpanIndex("missing"), -1);
  for (const auto& span : t.spans()) {
    EXPECT_GE(span.end_ns, span.start_ns);
  }
  const std::string json = t.ToJson();
  for (const char* name :
       {"queue", "dispatch", "forward", "encode", "respond",
        "policy-transition"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

TEST(RequestTraceTest, WellFormedCatchesAnOpenSpan) {
  RequestTrace t(3);
  t.OpenSpan("queue");
  std::string why;
  EXPECT_FALSE(t.WellFormed(&why));  // root + queue still open
  EXPECT_FALSE(why.empty());
}

// ----- Stage profiler --------------------------------------------------------

TEST(StageProfilerTest, DisabledRecordsNothingEnabledAccumulates) {
  StageProfiler& p = StageProfiler::Global();
  ASSERT_FALSE(p.enabled()) << "another test left the global profiler on";
  const StageProfile before = p.Snapshot();
  { ScopedStage s(Stage::kGat); }
  EXPECT_EQ(p.Snapshot().Delta(before).TotalNs(), 0);
  EXPECT_EQ(p.Snapshot()
                .Delta(before)
                .stages[static_cast<int>(Stage::kGat)]
                .count,
            0);

  p.set_enabled(true);
  {
    ScopedStage s(Stage::kGat);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  p.set_enabled(false);
  const StageProfile delta = p.Snapshot().Delta(before);
  const auto& gat = delta.stages[static_cast<int>(Stage::kGat)];
  EXPECT_EQ(gat.count, 1);
  EXPECT_GT(gat.ns, 0);
  const std::string table = delta.ToTable();
  EXPECT_NE(table.find("gat"), std::string::npos) << table;
}

TEST(StageProfilerTest, CaptureScopeActivatesTimersAndIsThreadLocal) {
  ASSERT_FALSE(StageProfiler::Global().enabled());
  StageCaptureScope capture;  // global disabled: capture alone activates
  { ScopedStage s(Stage::kDecoder); }
  EXPECT_GE(capture.ns(Stage::kDecoder), 0);
  EXPECT_EQ(capture.ns(Stage::kTransformer), 0);
  // A scope on ANOTHER thread must not leak into this frame.
  std::thread other([] {
    EXPECT_EQ(StageCaptureScope::Current(), nullptr);
    ScopedStage s(Stage::kTransformer);  // inactive there: no frame, global off
  });
  other.join();
  EXPECT_EQ(capture.ns(Stage::kTransformer), 0);
  // Nested frames: the inner one wins while alive.
  {
    StageCaptureScope inner;
    EXPECT_EQ(StageCaptureScope::Current(), &inner);
  }
  EXPECT_EQ(StageCaptureScope::Current(), &capture);
}

// PR 8 invariant: fused kernels bill to the SAME stage as the op chain they
// replace. Fusion rewrites happen at op-emission time inside whatever
// ScopedStage the call site already holds, so attribution is structural —
// this pins it: an encoder-layer forward bills every nanosecond to
// kTransformer and nothing else, with the exact same nonzero-stage set
// whether the fusion pass is on or off.
TEST(StageProfilerTest, FusedKernelsBillToSameStageAsUnfusedChain) {
  ASSERT_FALSE(StageProfiler::Global().enabled());
  SeedGlobalRng(33);
  TransformerEncoderLayer layer(16, 2, 32);
  Tensor x = Tensor::Randn({12, 16}, 1.0f);

  const auto stage_set = [&](bool fuse) {
    StageCaptureScope capture;
    {
      fusion::FusionScope scope(fuse);
      fusion::ResetCounters();
      ScopedStage s(Stage::kTransformer);
      NoGradGuard guard;
      for (int rep = 0; rep < 8; ++rep) (void)layer.Forward(x);
    }
    EXPECT_EQ(fusion::Counters().Total() > 0, fuse);
    std::vector<bool> nonzero(obs::kStageCount, false);
    for (int s = 0; s < obs::kStageCount; ++s) {
      nonzero[s] = capture.ns(static_cast<Stage>(s)) > 0;
    }
    return nonzero;
  };

  const std::vector<bool> off = stage_set(false);
  const std::vector<bool> on = stage_set(true);
  EXPECT_TRUE(off[static_cast<int>(Stage::kTransformer)]);
  EXPECT_EQ(off, on) << "fusion moved work between stages";
  for (int s = 0; s < obs::kStageCount; ++s) {
    if (s != static_cast<int>(Stage::kTransformer)) {
      EXPECT_FALSE(on[s]) << "stage " << s << " unexpectedly billed";
    }
  }
}

}  // namespace
}  // namespace rntraj
