#include <gtest/gtest.h>

#include "src/traj/resample.h"
#include "src/traj/trajectory.h"

namespace rntraj {
namespace {

RawTrajectory MakeStraightLine() {
  // x = 10 * t along the x axis, points at t = 0, 10, 20, 30.
  RawTrajectory traj;
  for (int i = 0; i < 4; ++i) {
    traj.points.push_back({{100.0 * i, 0.0}, 10.0 * i});
  }
  return traj;
}

TEST(TrajectoryTest, DurationAndSize) {
  RawTrajectory t = MakeStraightLine();
  EXPECT_EQ(t.size(), 4);
  EXPECT_DOUBLE_EQ(t.duration(), 30.0);
  EXPECT_DOUBLE_EQ(RawTrajectory{}.duration(), 0.0);
}

TEST(TrajectoryTest, TravelPathCollapsesConsecutiveDuplicates) {
  MatchedTrajectory m;
  for (int seg : {3, 3, 5, 5, 5, 2, 3}) m.points.push_back({seg, 0.5, 0});
  EXPECT_EQ(m.TravelPath(), (std::vector<int>{3, 5, 2, 3}));
}

TEST(UniformTimesTest, SpacingAndCount) {
  auto times = UniformTimes(100.0, 12.0, 4);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0], 100.0);
  EXPECT_DOUBLE_EQ(times[3], 136.0);
}

TEST(LinearInterpolateTest, MidpointsAreLinear) {
  RawTrajectory in = MakeStraightLine();
  auto out = LinearInterpolate(in, {5.0, 15.0, 25.0});
  ASSERT_EQ(out.size(), 3);
  EXPECT_DOUBLE_EQ(out.points[0].pos.x, 50.0);
  EXPECT_DOUBLE_EQ(out.points[1].pos.x, 150.0);
  EXPECT_DOUBLE_EQ(out.points[2].pos.x, 250.0);
}

TEST(LinearInterpolateTest, ExactTimestampsReproduceInput) {
  RawTrajectory in = MakeStraightLine();
  auto out = LinearInterpolate(in, {0.0, 10.0, 20.0, 30.0});
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(out.points[i].pos.x, in.points[i].pos.x);
  }
}

TEST(LinearInterpolateTest, ClampsOutsideRange) {
  RawTrajectory in = MakeStraightLine();
  auto out = LinearInterpolate(in, {-5.0, 99.0});
  EXPECT_DOUBLE_EQ(out.points[0].pos.x, 0.0);
  EXPECT_DOUBLE_EQ(out.points[1].pos.x, 300.0);
}

TEST(LinearInterpolateTest, TwoDimensional) {
  RawTrajectory in;
  in.points.push_back({{0, 0}, 0});
  in.points.push_back({{10, 20}, 10});
  auto out = LinearInterpolate(in, {2.5});
  EXPECT_DOUBLE_EQ(out.points[0].pos.x, 2.5);
  EXPECT_DOUBLE_EQ(out.points[0].pos.y, 5.0);
}

TEST(DownsampleTest, KeepEveryK) {
  RawTrajectory in;
  for (int i = 0; i < 10; ++i) in.points.push_back({{double(i), 0}, double(i)});
  auto out = DownsampleEvery(in, 4);
  ASSERT_EQ(out.size(), 3);
  EXPECT_DOUBLE_EQ(out.points[0].pos.x, 0);
  EXPECT_DOUBLE_EQ(out.points[1].pos.x, 4);
  EXPECT_DOUBLE_EQ(out.points[2].pos.x, 8);
  EXPECT_EQ(KeptIndices(10, 4), (std::vector<int>{0, 4, 8}));
}

// Paper setting: keep_every=8 keeps 12.5% of a 64-point trajectory,
// keep_every=16 keeps 6.25%.
class KeepRatioTest : public ::testing::TestWithParam<int> {};

TEST_P(KeepRatioTest, KeptFractionMatchesPaper) {
  const int k = GetParam();
  const int n = 64;
  auto idx = KeptIndices(n, k);
  EXPECT_NEAR(static_cast<double>(idx.size()) / n, 1.0 / k, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Strides, KeepRatioTest, ::testing::Values(8, 16));

}  // namespace
}  // namespace rntraj
