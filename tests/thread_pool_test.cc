// Unit tests for the worker pool under the GEMM kernels and the trainer's
// batch-parallel forward. The global pool sizes itself to the hardware (and
// runs inline on one core), so these tests construct explicit multi-worker
// pools to exercise the concurrent paths regardless of the host.

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"

namespace rntraj {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int kTasks = 1000;
  std::vector<std::atomic<int>> counts(kTasks);
  pool.Run(kTasks, [&](int t) { counts[t].fetch_add(1); });
  for (int t = 0; t < kTasks; ++t) EXPECT_EQ(counts[t].load(), 1) << t;
}

TEST(ThreadPool, ReusableAcrossManyRuns) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.Run(17, [&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50 * 17);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int sum = 0;  // No synchronisation needed: everything runs on this thread.
  pool.Run(10, [&](int t) { sum += t; });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, NestedRunExecutesInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.Run(4, [&](int) {
    // A Run from inside a pool task must not wait on the pool it occupies.
    ThreadPool::Global().Run(8, [&](int) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(0, kN, 64, [&](int64_t lo, int64_t hi) {
    EXPECT_LT(lo, hi);
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  int calls = 0;
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> seen;
  ParallelFor(3, 7, 100, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) seen.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(seen, (std::vector<int>{3, 4, 5, 6}));
}

}  // namespace
}  // namespace rntraj
