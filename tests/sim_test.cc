#include <gtest/gtest.h>

#include "src/sim/city.h"
#include "src/sim/dataset.h"
#include "src/sim/presets.h"
#include "src/sim/simulate.h"

namespace rntraj {
namespace {

CityConfig SmallCity(bool elevated = false, uint64_t seed = 9) {
  CityConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.spacing = 120.0;
  cfg.elevated_corridor = elevated;
  cfg.seed = seed;
  return cfg;
}

TEST(CityGeneratorTest, ProducesStronglyConnectedNetwork) {
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    RoadNetwork rn = GenerateCity(SmallCity(false, seed));
    EXPECT_GT(rn.num_segments(), 40);
    EXPECT_TRUE(rn.IsStronglyConnected()) << "seed " << seed;
  }
}

TEST(CityGeneratorTest, ElevatedCorridorExistsAndIsParallel) {
  RoadNetwork rn = GenerateCity(SmallCity(true));
  int elevated_count = 0;
  int trunk_count = 0;
  for (int i = 0; i < rn.num_segments(); ++i) {
    elevated_count += rn.segment(i).elevated();
    trunk_count += rn.segment(i).level == RoadLevel::kTrunk;
  }
  ASSERT_GT(elevated_count, 0);
  ASSERT_GT(trunk_count, 0);
  // Every elevated segment must run close to some trunk segment (the
  // ambiguity the paper's Fig. 5 case study shows).
  for (int i = 0; i < rn.num_segments(); ++i) {
    if (!rn.segment(i).elevated()) continue;
    const Vec2 mid = rn.PointAt(i, 0.5);
    double best = 1e18;
    for (int j = 0; j < rn.num_segments(); ++j) {
      if (rn.segment(j).level != RoadLevel::kTrunk) continue;
      best = std::min(best, rn.Project(mid, j).distance);
    }
    EXPECT_LT(best, 40.0) << "elevated segment " << i << " has no nearby trunk";
  }
}

TEST(CityGeneratorTest, ElevatedHasSparserConnectionsThanSurface) {
  RoadNetwork rn = GenerateCity(SmallCity(true));
  // Elevated segments should connect mostly to other elevated segments; ramps
  // are rare. Count cross-level edges.
  int elev_edges = 0;
  int ramp_edges = 0;
  for (auto [from, to] : rn.edges()) {
    const bool fe = rn.segment(from).elevated();
    const bool te = rn.segment(to).elevated();
    if (fe && te) ++elev_edges;
    if (fe != te) ++ramp_edges;
  }
  EXPECT_GT(elev_edges, 0);
  EXPECT_GT(ramp_edges, 0);
  EXPECT_LT(ramp_edges, elev_edges * 4);
}

TEST(CityGeneratorTest, DeterministicForSeed) {
  RoadNetwork a = GenerateCity(SmallCity(true, 42));
  RoadNetwork b = GenerateCity(SmallCity(true, 42));
  ASSERT_EQ(a.num_segments(), b.num_segments());
  for (int i = 0; i < a.num_segments(); ++i) {
    EXPECT_DOUBLE_EQ(a.segment(i).length(), b.segment(i).length());
  }
  EXPECT_EQ(a.edges().size(), b.edges().size());
}

TEST(LevelSpeedTest, FasterRoadsAreFaster) {
  EXPECT_GT(LevelSpeed(RoadLevel::kElevated), LevelSpeed(RoadLevel::kTrunk));
  EXPECT_GT(LevelSpeed(RoadLevel::kTrunk), LevelSpeed(RoadLevel::kResidential));
}

TEST(SimulatorTest, TrajectoryIsContinuousOnGraph) {
  RoadNetwork rn = GenerateCity(SmallCity(true));
  SimulatorConfig cfg;
  cfg.len_rho = 50;
  cfg.eps_rho = 12.0;
  TrajectorySimulator sim(&rn, cfg);
  Rng rng(3);
  MatchedTrajectory traj = sim.Sample(rng);
  ASSERT_EQ(traj.size(), 50);
  for (int i = 0; i < traj.size(); ++i) {
    EXPECT_GE(traj.points[i].ratio, 0.0);
    EXPECT_LT(traj.points[i].ratio, 1.0);
    if (i > 0) {
      EXPECT_DOUBLE_EQ(traj.points[i].t - traj.points[i - 1].t, 12.0);
    }
  }
  // Consecutive path segments must be graph-adjacent.
  auto path = traj.TravelPath();
  for (size_t i = 1; i < path.size(); ++i) {
    bool adjacent = false;
    // The vehicle may traverse several segments between samples; a network
    // path must exist. Check via single-hop or reachability through one
    // intermediate at least by distance: use a short BFS.
    std::vector<int> frontier = {path[i - 1]};
    for (int hops = 0; hops < 6 && !adjacent; ++hops) {
      std::vector<int> next;
      for (int u : frontier) {
        if (u == path[i]) adjacent = true;
        for (int v : rn.OutEdges(u)) next.push_back(v);
      }
      frontier = std::move(next);
    }
    EXPECT_TRUE(adjacent) << "hop " << path[i - 1] << " -> " << path[i];
  }
}

TEST(SimulatorTest, MovesAtPlausibleSpeed) {
  RoadNetwork rn = GenerateCity(SmallCity(false));
  SimulatorConfig cfg;
  cfg.len_rho = 40;
  TrajectorySimulator sim(&rn, cfg);
  Rng rng(5);
  MatchedTrajectory traj = sim.Sample(rng);
  // Average planar displacement per sample should be below the max speed and
  // above walking pace.
  double total = 0.0;
  for (int i = 1; i < traj.size(); ++i) {
    total += Distance(rn.PointAt(traj.points[i].seg_id, traj.points[i].ratio),
                      rn.PointAt(traj.points[i - 1].seg_id,
                                 traj.points[i - 1].ratio));
  }
  const double avg_speed = total / traj.duration();
  EXPECT_GT(avg_speed, 2.0);
  EXPECT_LT(avg_speed, 25.0);
}

TEST(SimulatorTest, SampleFromStartsWhereAsked) {
  RoadNetwork rn = GenerateCity(SmallCity(true));
  SimulatorConfig cfg;
  cfg.len_rho = 8;
  TrajectorySimulator sim(&rn, cfg);
  Rng rng(6);
  MatchedTrajectory t = sim.SampleFrom(7, 0.25, rng);
  EXPECT_EQ(t.points[0].seg_id, 7);
  EXPECT_DOUBLE_EQ(t.points[0].ratio, 0.25);
}

TEST(NoiseTest, ObservationsAreNearTruth) {
  RoadNetwork rn = GenerateCity(SmallCity(false));
  SimulatorConfig cfg;
  cfg.len_rho = 30;
  TrajectorySimulator sim(&rn, cfg);
  Rng rng(7);
  MatchedTrajectory truth = sim.Sample(rng);
  GpsNoiseConfig noise;
  noise.sigma = 10.0;
  RawTrajectory raw = MakeRawObservations(rn, truth, noise, rng);
  ASSERT_EQ(raw.size(), truth.size());
  double total_err = 0.0;
  for (int i = 0; i < raw.size(); ++i) {
    EXPECT_DOUBLE_EQ(raw.points[i].t, truth.points[i].t);
    total_err += Distance(
        raw.points[i].pos, rn.PointAt(truth.points[i].seg_id,
                                      truth.points[i].ratio));
  }
  const double mean_err = total_err / raw.size();
  // Mean of |N(0, 10)| in 2D (Rayleigh) is sigma * sqrt(pi/2) ~ 12.5.
  EXPECT_GT(mean_err, 5.0);
  EXPECT_LT(mean_err, 25.0);
}

TEST(DatasetTest, SplitsAndShapes) {
  DatasetConfig cfg = ChengduConfig(BenchScale::kTiny);
  cfg.num_train = 6;
  cfg.num_val = 2;
  cfg.num_test = 3;
  auto ds = BuildDataset(cfg);
  EXPECT_EQ(ds->train().size(), 6u);
  EXPECT_EQ(ds->val().size(), 2u);
  EXPECT_EQ(ds->test().size(), 3u);
  const auto& s = ds->train()[0];
  EXPECT_EQ(s.truth.size(), cfg.sim.len_rho);
  EXPECT_EQ(s.raw_noisy.size(), cfg.sim.len_rho);
  EXPECT_EQ(s.input.size(), (cfg.sim.len_rho + cfg.keep_every - 1) /
                                cfg.keep_every);
  EXPECT_EQ(s.input_indices.size(), static_cast<size_t>(s.input.size()));
  EXPECT_EQ(s.input_indices[0], 0);
  // Unique ids.
  EXPECT_NE(ds->train()[0].uid, ds->train()[1].uid);
}

TEST(DatasetTest, InputPointsAlignWithTruthTimestamps) {
  DatasetConfig cfg = PortoConfig(BenchScale::kTiny);
  cfg.num_train = 2;
  cfg.num_val = 1;
  cfg.num_test = 1;
  auto ds = BuildDataset(cfg);
  for (const auto& s : ds->train()) {
    for (size_t i = 0; i < s.input_indices.size(); ++i) {
      EXPECT_DOUBLE_EQ(s.input.points[i].t,
                       s.truth.points[s.input_indices[i]].t);
    }
  }
}

TEST(PresetsTest, TableTwoShapesHold) {
  // Relative dataset properties from Table II must survive the scaling:
  // Shanghai-L is the largest; Porto has the longest eps_rho; Chengdu-Few has
  // ~20% of Chengdu's training set.
  const auto scale = BenchScale::kTiny;
  auto chengdu = ChengduConfig(scale);
  auto porto = PortoConfig(scale);
  auto shl = ShanghaiLConfig(scale);
  auto few = ChengduFewConfig(scale);
  EXPECT_GT(shl.city.rows * shl.city.cols, chengdu.city.rows * chengdu.city.cols);
  EXPECT_GT(shl.city.rows * shl.city.cols, porto.city.rows * porto.city.cols);
  EXPECT_GT(porto.sim.eps_rho, chengdu.sim.eps_rho);
  EXPECT_LT(few.num_train, chengdu.num_train / 3);
  EXPECT_EQ(few.city.seed, chengdu.city.seed);  // same road network
}

TEST(PresetsTest, KeepEveryMatchesTask) {
  EXPECT_EQ(ChengduConfig(BenchScale::kTiny, 8).keep_every, 8);
  EXPECT_EQ(ChengduConfig(BenchScale::kTiny, 16).keep_every, 16);
  EXPECT_EQ(ShanghaiLConfig(BenchScale::kTiny).keep_every, 16);
}

TEST(PresetsTest, ScaleFromEnvParsesValues) {
  EXPECT_EQ(ToString(BenchScale::kTiny), "tiny");
  EXPECT_EQ(ToString(BenchScale::kSmall), "small");
  EXPECT_EQ(ToString(BenchScale::kFull), "full");
}

}  // namespace
}  // namespace rntraj
