// Numerical gradient checks for every differentiable primitive. Each case
// builds a small random computation whose only leaves are the checked
// parameters, then compares tape gradients to central differences.

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "tests/test_util.h"

namespace rntraj {
namespace {

using testing_util::MaxGradError;

constexpr double kTol = 2e-2;

Tensor SmoothLoss(const Tensor& t) {
  // A generic scalar readout that mixes signs so gradients are non-trivial.
  return MeanAll(Mul(t, t));
}

TEST(GradCheck, AddSameShape) {
  SeedGlobalRng(1);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({3, 4}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Add(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, AddRowBroadcast) {
  SeedGlobalRng(2);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({4}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Add(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, AddColBroadcast) {
  SeedGlobalRng(3);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({3, 1}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Add(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, SubScalarBroadcast) {
  SeedGlobalRng(4);
  Tensor a = Tensor::Randn({2, 5}, 1.0f, true);
  Tensor b = Tensor::Randn({1}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Sub(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, MulRowBroadcast) {
  SeedGlobalRng(5);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({4}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Mul(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, DivColBroadcast) {
  SeedGlobalRng(6);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  // Keep the denominator away from zero.
  Tensor b = Tensor::FromVector({3, 1}, {1.5f, -2.0f, 2.5f}, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Div(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, MatmulBothSides) {
  SeedGlobalRng(7);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({4, 2}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Matmul(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, MatmulVectorLhs) {
  SeedGlobalRng(8);
  Tensor a = Tensor::Randn({4}, 1.0f, true);
  Tensor b = Tensor::Randn({4, 3}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Matmul(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, Transpose) {
  SeedGlobalRng(9);
  Tensor a = Tensor::Randn({3, 5}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Transpose(a)); }, {a}), kTol);
}

TEST(GradCheck, ConcatRowsAndSliceRows) {
  SeedGlobalRng(10);
  Tensor a = Tensor::Randn({2, 3}, 1.0f, true);
  Tensor b = Tensor::Randn({1, 3}, 1.0f, true);
  auto loss = [&] {
    Tensor c = ConcatRows({a, b});
    return SmoothLoss(SliceRows(c, 1, 2));
  };
  EXPECT_LT(MaxGradError(loss, {a, b}), kTol);
}

TEST(GradCheck, ConcatColsAndSliceCols) {
  SeedGlobalRng(11);
  Tensor a = Tensor::Randn({3, 2}, 1.0f, true);
  Tensor b = Tensor::Randn({3, 3}, 1.0f, true);
  auto loss = [&] {
    Tensor c = ConcatCols({a, b});
    return SmoothLoss(SliceCols(c, 1, 3));
  };
  EXPECT_LT(MaxGradError(loss, {a, b}), kTol);
}

TEST(GradCheck, ConcatVec) {
  SeedGlobalRng(12);
  Tensor a = Tensor::Randn({3}, 1.0f, true);
  Tensor b = Tensor::Randn({2}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(ConcatVec({a, b})); }, {a, b}),
            kTol);
}

TEST(GradCheck, GatherRowsWithDuplicates) {
  SeedGlobalRng(13);
  Tensor a = Tensor::Randn({4, 3}, 1.0f, true);
  std::vector<int> idx = {1, 3, 1, 0};
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(GatherRows(a, idx)); }, {a}),
            kTol);
}

TEST(GradCheck, GatherElems) {
  SeedGlobalRng(14);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  std::vector<int> idx = {2, 0, 3};
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(GatherElems(a, idx)); }, {a}),
            kTol);
}

TEST(GradCheck, ReshapeAndExpandRows) {
  SeedGlobalRng(15);
  Tensor a = Tensor::Randn({1, 6}, 1.0f, true);
  auto loss = [&] {
    Tensor r = Reshape(a, {2, 3});
    Tensor e = ExpandRows(SliceRows(r, 0, 1), 4);
    return SmoothLoss(e);
  };
  EXPECT_LT(MaxGradError(loss, {a}), kTol);
}

TEST(GradCheck, Reductions) {
  SeedGlobalRng(16);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return Square(SumAll(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return Square(MeanAll(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(RowSum(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(RowMean(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(ColSum(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(ColMean(a)); }, {a}), kTol);
}

// Smooth unary ops under a parameterised sweep.
class UnaryGradTest : public ::testing::TestWithParam<int> {};

TEST_P(UnaryGradTest, SigmoidTanhExpLogSqrtSquare) {
  SeedGlobalRng(100 + GetParam());
  Tensor a = Tensor::Randn({2, 3}, 0.8f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Sigmoid(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Tanh(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Exp(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Square(a)); }, {a}), kTol);
  // Log/Sqrt need positive inputs.
  Tensor p = AddScalar(Sigmoid(a).Detach(), 0.5f);
  p.set_requires_grad(true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Log(p)); }, {p}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Sqrt(p)); }, {p}), kTol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnaryGradTest, ::testing::Range(0, 4));

TEST(GradCheck, ReluAwayFromKink) {
  // Fix values away from 0 so central differences are valid.
  Tensor a = Tensor::FromVector({2, 3}, {-2, -1, 0.5f, 1, 2, -0.5f}, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Relu(a)); }, {a}, 1e-3f), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(LeakyRelu(a, 0.2f)); }, {a},
                         1e-3f),
            kTol);
}

TEST(GradCheck, SoftmaxRows) {
  SeedGlobalRng(17);
  Tensor a = Tensor::Randn({3, 5}, 1.0f, true);
  // Weighted sum to give distinct gradients per column.
  Tensor w = Tensor::FromVector({5, 1}, {1, -2, 3, 0.5f, -1});
  auto loss = [&] { return MeanAll(Matmul(SoftmaxRows(a), w)); };
  EXPECT_LT(MaxGradError(loss, {a}), kTol);
}

TEST(GradCheck, LogSoftmaxRows) {
  SeedGlobalRng(18);
  Tensor a = Tensor::Randn({3, 5}, 1.0f, true);
  std::vector<int> targets = {1, 4, 0};
  auto loss = [&] {
    return Neg(MeanAll(GatherElems(LogSoftmaxRows(a), targets)));
  };
  EXPECT_LT(MaxGradError(loss, {a}), kTol);
}

TEST(GradCheck, CompositeTwoLayerMlp) {
  SeedGlobalRng(19);
  Tensor x = Tensor::Randn({4, 3}, 1.0f, false);
  Tensor w1 = Tensor::Randn({3, 5}, 0.7f, true);
  Tensor b1 = Tensor::Randn({5}, 0.3f, true);
  Tensor w2 = Tensor::Randn({5, 2}, 0.7f, true);
  auto loss = [&] {
    Tensor h = Tanh(Add(Matmul(x, w1), b1));
    return SmoothLoss(Matmul(h, w2));
  };
  EXPECT_LT(MaxGradError(loss, {w1, b1, w2}), kTol);
}

TEST(GradCheck, GradsAccumulateAcrossTwoBackwards) {
  Tensor x = Tensor::FromVector({2}, {1, 2}, true);
  Tensor z1 = SumAll(MulScalar(x, 2.0f));
  z1.Backward();
  Tensor z2 = SumAll(MulScalar(x, 3.0f));
  z2.Backward();
  testing_util::ExpectVectorNear(x.grad(), {5, 5});
}

}  // namespace
}  // namespace rntraj
