// Numerical gradient checks for every differentiable primitive. Each case
// builds a small random computation whose only leaves are the checked
// parameters, then compares tape gradients to central differences.

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/tensor/buffer_pool.h"
#include "src/tensor/fast_math.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "tests/test_util.h"

namespace rntraj {
namespace {

using testing_util::MaxGradError;

constexpr double kTol = 2e-2;

Tensor SmoothLoss(const Tensor& t) {
  // A generic scalar readout that mixes signs so gradients are non-trivial.
  return MeanAll(Mul(t, t));
}

TEST(GradCheck, AddSameShape) {
  SeedGlobalRng(1);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({3, 4}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Add(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, AddRowBroadcast) {
  SeedGlobalRng(2);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({4}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Add(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, AddColBroadcast) {
  SeedGlobalRng(3);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({3, 1}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Add(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, SubScalarBroadcast) {
  SeedGlobalRng(4);
  Tensor a = Tensor::Randn({2, 5}, 1.0f, true);
  Tensor b = Tensor::Randn({1}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Sub(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, MulRowBroadcast) {
  SeedGlobalRng(5);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({4}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Mul(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, DivColBroadcast) {
  SeedGlobalRng(6);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  // Keep the denominator away from zero.
  Tensor b = Tensor::FromVector({3, 1}, {1.5f, -2.0f, 2.5f}, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Div(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, MatmulBothSides) {
  SeedGlobalRng(7);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({4, 2}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Matmul(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, MatmulVectorLhs) {
  SeedGlobalRng(8);
  Tensor a = Tensor::Randn({4}, 1.0f, true);
  Tensor b = Tensor::Randn({4, 3}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Matmul(a, b)); }, {a, b}), kTol);
}

TEST(GradCheck, Transpose) {
  SeedGlobalRng(9);
  Tensor a = Tensor::Randn({3, 5}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Transpose(a)); }, {a}), kTol);
}

TEST(GradCheck, ConcatRowsAndSliceRows) {
  SeedGlobalRng(10);
  Tensor a = Tensor::Randn({2, 3}, 1.0f, true);
  Tensor b = Tensor::Randn({1, 3}, 1.0f, true);
  auto loss = [&] {
    Tensor c = ConcatRows({a, b});
    return SmoothLoss(SliceRows(c, 1, 2));
  };
  EXPECT_LT(MaxGradError(loss, {a, b}), kTol);
}

TEST(GradCheck, ConcatColsAndSliceCols) {
  SeedGlobalRng(11);
  Tensor a = Tensor::Randn({3, 2}, 1.0f, true);
  Tensor b = Tensor::Randn({3, 3}, 1.0f, true);
  auto loss = [&] {
    Tensor c = ConcatCols({a, b});
    return SmoothLoss(SliceCols(c, 1, 3));
  };
  EXPECT_LT(MaxGradError(loss, {a, b}), kTol);
}

TEST(GradCheck, ConcatVec) {
  SeedGlobalRng(12);
  Tensor a = Tensor::Randn({3}, 1.0f, true);
  Tensor b = Tensor::Randn({2}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(ConcatVec({a, b})); }, {a, b}),
            kTol);
}

TEST(GradCheck, GatherRowsWithDuplicates) {
  SeedGlobalRng(13);
  Tensor a = Tensor::Randn({4, 3}, 1.0f, true);
  std::vector<int> idx = {1, 3, 1, 0};
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(GatherRows(a, idx)); }, {a}),
            kTol);
}

TEST(GradCheck, GatherElems) {
  SeedGlobalRng(14);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  std::vector<int> idx = {2, 0, 3};
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(GatherElems(a, idx)); }, {a}),
            kTol);
}

TEST(GradCheck, ReshapeAndExpandRows) {
  SeedGlobalRng(15);
  Tensor a = Tensor::Randn({1, 6}, 1.0f, true);
  auto loss = [&] {
    Tensor r = Reshape(a, {2, 3});
    Tensor e = ExpandRows(SliceRows(r, 0, 1), 4);
    return SmoothLoss(e);
  };
  EXPECT_LT(MaxGradError(loss, {a}), kTol);
}

TEST(GradCheck, Reductions) {
  SeedGlobalRng(16);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return Square(SumAll(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return Square(MeanAll(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(RowSum(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(RowMean(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(ColSum(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(ColMean(a)); }, {a}), kTol);
}

// Smooth unary ops under a parameterised sweep.
class UnaryGradTest : public ::testing::TestWithParam<int> {};

TEST_P(UnaryGradTest, SigmoidTanhExpLogSqrtSquare) {
  SeedGlobalRng(100 + GetParam());
  Tensor a = Tensor::Randn({2, 3}, 0.8f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Sigmoid(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Tanh(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Exp(a)); }, {a}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Square(a)); }, {a}), kTol);
  // Log/Sqrt need positive inputs.
  Tensor p = AddScalar(Sigmoid(a).Detach(), 0.5f);
  p.set_requires_grad(true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Log(p)); }, {p}), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Sqrt(p)); }, {p}), kTol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnaryGradTest, ::testing::Range(0, 4));

TEST(GradCheck, ReluAwayFromKink) {
  // Fix values away from 0 so central differences are valid.
  Tensor a = Tensor::FromVector({2, 3}, {-2, -1, 0.5f, 1, 2, -0.5f}, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(Relu(a)); }, {a}, 1e-3f), kTol);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(LeakyRelu(a, 0.2f)); }, {a},
                         1e-3f),
            kTol);
}

TEST(GradCheck, SoftmaxRows) {
  SeedGlobalRng(17);
  Tensor a = Tensor::Randn({3, 5}, 1.0f, true);
  // Weighted sum to give distinct gradients per column.
  Tensor w = Tensor::FromVector({5, 1}, {1, -2, 3, 0.5f, -1});
  auto loss = [&] { return MeanAll(Matmul(SoftmaxRows(a), w)); };
  EXPECT_LT(MaxGradError(loss, {a}), kTol);
}

TEST(GradCheck, LogSoftmaxRows) {
  SeedGlobalRng(18);
  Tensor a = Tensor::Randn({3, 5}, 1.0f, true);
  std::vector<int> targets = {1, 4, 0};
  auto loss = [&] {
    return Neg(MeanAll(GatherElems(LogSoftmaxRows(a), targets)));
  };
  EXPECT_LT(MaxGradError(loss, {a}), kTol);
}

TEST(GradCheck, CompositeTwoLayerMlp) {
  SeedGlobalRng(19);
  Tensor x = Tensor::Randn({4, 3}, 1.0f, false);
  Tensor w1 = Tensor::Randn({3, 5}, 0.7f, true);
  Tensor b1 = Tensor::Randn({5}, 0.3f, true);
  Tensor w2 = Tensor::Randn({5, 2}, 0.7f, true);
  auto loss = [&] {
    Tensor h = Tanh(Add(Matmul(x, w1), b1));
    return SmoothLoss(Matmul(h, w2));
  };
  EXPECT_LT(MaxGradError(loss, {w1, b1, w2}), kTol);
}

// ----- Fused ops and the blocked/pooled kernels -----------------------------

TEST(GradCheck, MatmulTransBBothSides) {
  SeedGlobalRng(30);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({5, 4}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(MatmulTransB(a, b)); }, {a, b}),
            kTol);
}

TEST(GradCheck, MatmulTransBMatchesExplicitTranspose) {
  SeedGlobalRng(31);
  Tensor a = Tensor::Randn({4, 6}, 1.0f);
  Tensor b = Tensor::Randn({3, 6}, 1.0f);
  Tensor fused = MatmulTransB(a, b);
  Tensor reference = Matmul(a, Transpose(b));
  testing_util::ExpectVectorNear(fused.data(), reference.data(), 1e-5f);
}

TEST(GradCheck, AddRowColBothInputs) {
  SeedGlobalRng(32);
  // Column as (n,1) and row as rank-1 (m): the GAT score layout.
  Tensor u = Tensor::Randn({3, 1}, 1.0f, true);
  Tensor v = Tensor::Randn({4}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(AddRowCol(u, v)); }, {u, v}),
            kTol);
  // Rank-1 column and (1,m) row.
  Tensor u1 = Tensor::Randn({5}, 1.0f, true);
  Tensor v1 = Tensor::Randn({1, 2}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(AddRowCol(u1, v1)); }, {u1, v1}),
            kTol);
}

TEST(GradCheck, AddRowBroadcastBothInputs) {
  SeedGlobalRng(33);
  Tensor a = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor r = Tensor::Randn({4}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(AddRowBroadcast(a, r)); },
                         {a, r}),
            kTol);
  // Rank-1 `a` (the Linear bias path for vector inputs).
  Tensor av = Tensor::Randn({4}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(AddRowBroadcast(av, r)); },
                         {av, r}),
            kTol);
}

TEST(GradCheck, AddBlockBroadcast) {
  SeedGlobalRng(60);
  // Three blocks of height 2: row i of `rows` broadcast over block i (the
  // batched-decoder query-over-keys broadcast).
  Tensor a = Tensor::Randn({6, 4}, 1.0f, true);
  Tensor rows = Tensor::Randn({3, 4}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(AddBlockBroadcast(a, rows, 2)); },
                         {a, rows}),
            kTol);
  // block == 1 degenerates to a plain same-shape add.
  Tensor b = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor fused = AddBlockBroadcast(b, rows, 1);
  Tensor plain = Add(b, rows);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(fused.at(i, j), plain.at(i, j));
    }
  }
}

TEST(GradCheck, MaskedSoftmaxRows) {
  SeedGlobalRng(34);
  Tensor a = Tensor::Randn({3, 5}, 1.0f, true);
  // Graph-style mask: some forbidden positions per row, none fully masked.
  Tensor mask = Tensor::FromVector({3, 5}, {0, -1e9f, 0, -1e9f, 0,      //
                                            -1e9f, 0, 0, 0, -1e9f,     //
                                            0, 0, -1e9f, 0, 0});
  Tensor w = Tensor::FromVector({5, 1}, {1, -2, 3, 0.5f, -1});
  auto loss = [&] { return MeanAll(Matmul(MaskedSoftmaxRows(a, mask), w)); };
  EXPECT_LT(MaxGradError(loss, {a}), kTol);
}

TEST(GradCheck, MaskedSoftmaxMatchesAddThenSoftmax) {
  SeedGlobalRng(35);
  Tensor a = Tensor::Randn({4, 6}, 1.0f);
  Tensor mask = Tensor::Zeros({4, 6});
  for (int i = 0; i < 4; ++i) mask.data()[i * 6 + (i + 1)] = -1e9f;
  Tensor fused = MaskedSoftmaxRows(a, mask);
  Tensor reference = SoftmaxRows(Add(a, mask));
  testing_util::ExpectVectorNear(fused.data(), reference.data(), 1e-5f);
  // Masked positions must be exactly zero probability (not denormal noise).
  for (int i = 0; i < 4; ++i) EXPECT_EQ(fused.at(i, i + 1), 0.0f);
}

TEST(GradCheck, FastExpMatchesLibm) {
  for (float x = -80.0f; x < 87.0f; x += 0.0137f) {
    const float want = std::exp(x);
    EXPECT_NEAR(internal::FastExp(x), want, 1e-5f * want + 1e-30f) << "x=" << x;
  }
  EXPECT_EQ(internal::FastExp(-1e9f), 0.0f);
  // Saturates finite at both ends instead of over/underflowing.
  EXPECT_TRUE(std::isfinite(internal::FastExp(88.5f)));
  EXPECT_TRUE(std::isfinite(internal::FastExp(1e9f)));
  EXPECT_GT(internal::FastExp(1e9f), 1e38f);
}

TEST(GradCheck, PooledMatmulNonSquareAndVectorLhs) {
  // The same checks as the plain matmul cases, but with storage recycling on:
  // every loop iteration after the first reuses buffers released by the
  // previous one, so stale contents or aliasing would surface as gradient
  // errors here.
  BufferPoolScope pool;
  for (int round = 0; round < 3; ++round) {
    SeedGlobalRng(40 + round);
    // Shapes above the pool's minimum size so recycling actually engages.
    Tensor a = Tensor::Randn({6, 8}, 1.0f, true);
    Tensor b = Tensor::Randn({8, 6}, 1.0f, true);
    EXPECT_LT(MaxGradError([&] { return SmoothLoss(Matmul(a, b)); }, {a, b}),
              kTol);
    Tensor v = Tensor::Randn({8}, 1.0f, true);
    EXPECT_LT(MaxGradError([&] { return SmoothLoss(Matmul(v, b)); }, {v, b}),
              kTol);
  }
  EXPECT_GT(GetBufferPoolStats().hits, 0u);
}

TEST(GradCheck, BlockedGemmMatchesNaiveReference) {
  // Odd sizes exercise every remainder path (row peel, narrow tiles, partial
  // k panels) of the blocked kernel.
  SeedGlobalRng(41);
  const int n = 37, k = 29, m = 23;
  Tensor a = Tensor::Randn({n, k}, 1.0f);
  Tensor b = Tensor::Randn({k, m}, 1.0f);
  Tensor c = Matmul(a, b);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += double(a.at(i, p)) * b.at(p, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-3) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(GradCheck, GradsAccumulateAcrossTwoBackwards) {
  Tensor x = Tensor::FromVector({2}, {1, 2}, true);
  Tensor z1 = SumAll(MulScalar(x, 2.0f));
  z1.Backward();
  Tensor z2 = SumAll(MulScalar(x, 3.0f));
  z2.Backward();
  testing_util::ExpectVectorNear(x.grad(), {5, 5});
}

// ----- Batched masked ops (padded forward path) ------------------------------

TEST(GradCheck, BatchedMatmulBothSides) {
  SeedGlobalRng(50);
  // 3 blocks of (4,5) x (5,2).
  Tensor a = Tensor::Randn({12, 5}, 1.0f, true);
  Tensor b = Tensor::Randn({15, 2}, 1.0f, true);
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(BatchedMatmul(a, b, 3)); },
                         {a, b}),
            kTol);
}

TEST(GradCheck, BatchedMatmulMatchesPerBlockMatmul) {
  SeedGlobalRng(51);
  const int batch = 3, m = 4, k = 5, n = 2;
  Tensor a = Tensor::Randn({batch * m, k}, 1.0f);
  Tensor b = Tensor::Randn({batch * k, n}, 1.0f);
  Tensor c = BatchedMatmul(a, b, batch);
  for (int s = 0; s < batch; ++s) {
    Tensor cs = Matmul(SliceRows(a, s * m, m), SliceRows(b, s * k, k));
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(c.at(s * m + i, j), cs.at(i, j))
            << "block " << s << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(GradCheck, BatchedMatmulTransBBothSides) {
  SeedGlobalRng(52);
  // 2 blocks of (3,4) x (5,4)^T.
  Tensor a = Tensor::Randn({6, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({10, 4}, 1.0f, true);
  EXPECT_LT(
      MaxGradError([&] { return SmoothLoss(BatchedMatmulTransB(a, b, 2)); },
                   {a, b}),
      kTol);
}

TEST(GradCheck, BatchedMatmulTransBMatchesPerBlock) {
  SeedGlobalRng(53);
  const int batch = 2, m = 3, k = 4, n = 5;
  Tensor a = Tensor::Randn({batch * m, k}, 1.0f);
  Tensor b = Tensor::Randn({batch * n, k}, 1.0f);
  Tensor c = BatchedMatmulTransB(a, b, batch);
  for (int s = 0; s < batch; ++s) {
    Tensor cs = MatmulTransB(SliceRows(a, s * m, m), SliceRows(b, s * n, n));
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(c.at(s * m + i, j), cs.at(i, j))
            << "block " << s << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(GradCheck, LengthMaskedSoftmaxRows) {
  SeedGlobalRng(54);
  Tensor a = Tensor::Randn({4, 5}, 1.0f, true);
  const std::vector<int> valid = {5, 3, 1, 0};
  EXPECT_LT(
      MaxGradError([&] { return SmoothLoss(LengthMaskedSoftmaxRows(a, valid)); },
                   {a}),
      kTol);
}

TEST(GradCheck, LengthMaskedSoftmaxMatchesPrefixSoftmax) {
  SeedGlobalRng(55);
  Tensor a = Tensor::Randn({3, 6}, 1.0f);
  const std::vector<int> valid = {4, 6, 2};
  Tensor masked = LengthMaskedSoftmaxRows(a, valid);
  for (int i = 0; i < 3; ++i) {
    // Bit-identical to SoftmaxRows over the row's valid prefix, zero beyond.
    Tensor prefix = SoftmaxRows(SliceCols(SliceRows(a, i, 1), 0, valid[i]));
    for (int j = 0; j < valid[i]; ++j) {
      EXPECT_EQ(masked.at(i, j), prefix.at(0, j)) << "row " << i << " col " << j;
    }
    for (int j = valid[i]; j < 6; ++j) {
      EXPECT_EQ(masked.at(i, j), 0.0f) << "row " << i << " col " << j;
    }
  }
}

TEST(GradCheck, SegmentMeanRows) {
  SeedGlobalRng(56);
  Tensor a = Tensor::Randn({6, 3}, 1.0f, true);
  const std::vector<int> sizes = {2, 3, 1};
  EXPECT_LT(MaxGradError([&] { return SmoothLoss(SegmentMeanRows(a, sizes)); },
                         {a}),
            kTol);
}

TEST(GradCheck, SegmentMeanRowsMatchesColMean) {
  SeedGlobalRng(57);
  Tensor a = Tensor::Randn({7, 4}, 1.0f);
  const std::vector<int> sizes = {3, 1, 3};
  Tensor pooled = SegmentMeanRows(a, sizes);
  int off = 0;
  for (size_t s = 0; s < sizes.size(); ++s) {
    Tensor ref = ColMean(SliceRows(a, off, sizes[s]));
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(pooled.at(static_cast<int>(s), j), ref.at(j))
          << "segment " << s << " col " << j;
    }
    off += sizes[s];
  }
}

// ----- Packed block-diagonal ops (batched GAT path) --------------------------
//
// Layout under test: a rank-1 tensor of length sum(sizes[g]^2) where block g
// is a row-major (n_g, n_g) matrix starting at sum_{h<g} sizes[h]^2. The
// sizes below always mix ragged blocks with the degenerate shapes the
// serving path produces: a 1-node sub-graph (isolated GPS point) and an
// empty block.

// Packed additive mask with a few forbidden entries per block (diagonal
// always allowed, mirroring self-loops).
Tensor PackedNegMask(const std::vector<int>& sizes) {
  int total = 0;
  for (int s : sizes) total += s * s;
  std::vector<float> mask(total, 0.0f);
  int entry = 0;
  for (int s : sizes) {
    for (int i = 0; i < s; ++i) {
      for (int j = 0; j < s; ++j) {
        // Forbid roughly half the off-diagonal entries.
        if (i != j && (i + 2 * j) % 3 == 0) mask[entry + i * s + j] = -1e9f;
      }
    }
    entry += s * s;
  }
  return Tensor::FromVector({total}, mask);
}

TEST(GradCheck, AddRowColBlocks) {
  SeedGlobalRng(60);
  // Ragged blocks incl. a degenerate 1-node block and an empty block.
  const std::vector<int> sizes = {3, 1, 0, 2};
  Tensor col = Tensor::Randn({6, 1}, 1.0f, true);
  Tensor row = Tensor::Randn({6}, 1.0f, true);
  EXPECT_LT(MaxGradError(
                [&] { return SmoothLoss(AddRowColBlocks(col, row, sizes)); },
                {col, row}),
            kTol);
}

TEST(GradCheck, AddRowColBlocksMatchesPerBlockAddRowCol) {
  SeedGlobalRng(61);
  const std::vector<int> sizes = {2, 1, 3};
  Tensor col = Tensor::Randn({6, 1}, 1.0f);
  Tensor row = Tensor::Randn({6}, 1.0f);
  Tensor packed = AddRowColBlocks(col, row, sizes);
  ASSERT_EQ(packed.size(), 4 + 1 + 9);
  int node = 0;
  int entry = 0;
  for (int s : sizes) {
    // Bit-identical to the per-graph fused outer sum on the same block.
    Tensor ref = AddRowCol(SliceRows(col, node, s),
                           Reshape(SliceRows(Reshape(row, {6, 1}), node, s), {s}));
    for (int i = 0; i < s; ++i) {
      for (int j = 0; j < s; ++j) {
        EXPECT_EQ(packed.at(entry + i * s + j), ref.at(i, j))
            << "block of size " << s << " at (" << i << "," << j << ")";
      }
    }
    node += s;
    entry += s * s;
  }
}

TEST(GradCheck, SegmentMaskedSoftmax) {
  SeedGlobalRng(62);
  const std::vector<int> sizes = {3, 1, 0, 2};
  Tensor mask = PackedNegMask(sizes);
  Tensor a = Tensor::Randn({static_cast<int>(mask.size())}, 1.0f, true);
  EXPECT_LT(MaxGradError(
                [&] { return SmoothLoss(SegmentMaskedSoftmax(a, mask, sizes)); },
                {a}),
            kTol);
}

TEST(GradCheck, SegmentMaskedSoftmaxMatchesMaskedSoftmaxRows) {
  SeedGlobalRng(63);
  const std::vector<int> sizes = {4, 1, 2};
  Tensor mask = PackedNegMask(sizes);
  Tensor a = Tensor::Randn({static_cast<int>(mask.size())}, 1.0f);
  Tensor packed = SegmentMaskedSoftmax(a, mask, sizes);
  int entry = 0;
  for (int s : sizes) {
    // Bit-identical to the per-graph masked softmax on the same block.
    Tensor block = Reshape(SliceRows(Reshape(a, {static_cast<int>(a.size()), 1}),
                                     entry, s * s),
                           {s, s});
    Tensor mblock = Reshape(
        SliceRows(Reshape(mask, {static_cast<int>(mask.size()), 1}), entry,
                  s * s),
        {s, s});
    Tensor ref = MaskedSoftmaxRows(block, mblock);
    for (int i = 0; i < s; ++i) {
      for (int j = 0; j < s; ++j) {
        EXPECT_EQ(packed.at(entry + i * s + j), ref.at(i, j))
            << "block of size " << s << " at (" << i << "," << j << ")";
      }
    }
    entry += s * s;
  }
}

TEST(GradCheck, SegmentMaskedSoftmaxDegenerateOneNodeBlock) {
  // A 1-node sub-graph's attention row is softmax of one logit: exactly 1.
  SeedGlobalRng(64);
  const std::vector<int> sizes = {1, 1};
  Tensor a = Tensor::FromVector({2}, {3.5f, -2.0f});
  Tensor mask = Tensor::Zeros({2});
  Tensor out = SegmentMaskedSoftmax(a, mask, sizes);
  EXPECT_EQ(out.at(0), 1.0f);
  EXPECT_EQ(out.at(1), 1.0f);
}

TEST(GradCheck, BlockDiagMatmulBothSides) {
  SeedGlobalRng(65);
  const std::vector<int> sizes = {3, 1, 0, 2};
  Tensor attn = Tensor::Randn({9 + 1 + 0 + 4}, 1.0f, true);
  Tensor b = Tensor::Randn({6, 3}, 1.0f, true);
  EXPECT_LT(MaxGradError(
                [&] { return SmoothLoss(BlockDiagMatmul(attn, b, sizes)); },
                {attn, b}),
            kTol);
}

TEST(GradCheck, BlockDiagMatmulMatchesPerBlockMatmul) {
  SeedGlobalRng(66);
  const std::vector<int> sizes = {2, 1, 3};
  Tensor attn = Tensor::Randn({4 + 1 + 9}, 1.0f);
  Tensor b = Tensor::Randn({6, 4}, 1.0f);
  Tensor out = BlockDiagMatmul(attn, b, sizes);
  ASSERT_EQ(out.dim(0), 6);
  ASSERT_EQ(out.dim(1), 4);
  int node = 0;
  int entry = 0;
  for (int s : sizes) {
    // Bit-identical to Matmul on the same block (same packed GEMM core).
    Tensor ablock = Reshape(
        SliceRows(Reshape(attn, {static_cast<int>(attn.size()), 1}), entry,
                  s * s),
        {s, s});
    Tensor ref = Matmul(ablock, SliceRows(b, node, s));
    for (int i = 0; i < s; ++i) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_EQ(out.at(node + i, j), ref.at(i, j))
            << "block of size " << s << " at (" << i << "," << j << ")";
      }
    }
    node += s;
    entry += s * s;
  }
}

TEST(GradCheck, PadAndUnpadRows) {
  SeedGlobalRng(58);
  Tensor a = Tensor::Randn({6, 3}, 1.0f, true);
  const std::vector<int> sizes = {1, 3, 2};
  EXPECT_LT(
      MaxGradError([&] { return SmoothLoss(PadRows(a, sizes, 3)); }, {a}),
      kTol);
  EXPECT_LT(MaxGradError(
                [&] {
                  return SmoothLoss(UnpadRows(PadRows(a, sizes, 4), sizes, 4));
                },
                {a}),
            kTol);

  // Roundtrip is the identity; padding rows are zero.
  NoGradGuard guard;
  Tensor padded = PadRows(a, sizes, 3);
  ASSERT_EQ(padded.dim(0), 9);
  Tensor back = UnpadRows(padded, sizes, 3);
  testing_util::ExpectVectorNear(back.data(), a.data(), 0.0f);
  EXPECT_EQ(padded.at(0 * 3 + 1, 0), 0.0f);  // pad row of segment 0
  EXPECT_EQ(padded.at(2 * 3 + 2, 2), 0.0f);  // pad row of segment 2
}

}  // namespace
}  // namespace rntraj
