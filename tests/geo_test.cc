#include "src/geo/geo.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace rntraj {
namespace {

TEST(Vec2Test, Arithmetic) {
  Vec2 a{1, 2};
  Vec2 b{3, -1};
  EXPECT_DOUBLE_EQ((a + b).x, 4);
  EXPECT_DOUBLE_EQ((a - b).y, 3);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4);
  EXPECT_DOUBLE_EQ(Dot(a, b), 1);
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5);
}

TEST(HaversineTest, KnownDistances) {
  // One degree of latitude is ~111.2 km.
  EXPECT_NEAR(HaversineDistance({0, 0}, {1, 0}), 111195, 100);
  // Zero distance.
  EXPECT_DOUBLE_EQ(HaversineDistance({31.2, 121.5}, {31.2, 121.5}), 0.0);
  // Symmetry.
  LatLng a{31.23, 121.47};
  LatLng b{30.66, 104.06};
  EXPECT_DOUBLE_EQ(HaversineDistance(a, b), HaversineDistance(b, a));
}

TEST(ProjectionTest, RoundTripsAndMatchesHaversine) {
  const LatLng anchor{31.2, 121.5};
  Projection proj(anchor);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    LatLng p{anchor.lat + rng.Uniform(-0.05, 0.05),
             anchor.lng + rng.Uniform(-0.05, 0.05)};
    Vec2 m = proj.Project(p);
    LatLng back = proj.Unproject(m);
    EXPECT_NEAR(back.lat, p.lat, 1e-9);
    EXPECT_NEAR(back.lng, p.lng, 1e-9);
    // Planar distance approximates the great-circle distance at city scale.
    const double planar = Norm(m);
    const double sphere = HaversineDistance(anchor, p);
    EXPECT_NEAR(planar, sphere, sphere * 0.002 + 0.5);
  }
}

TEST(BBoxTest, ContainsIntersectsBuffer) {
  BBox b{0, 0, 10, 5};
  EXPECT_TRUE(b.Contains({5, 2}));
  EXPECT_FALSE(b.Contains({11, 2}));
  EXPECT_TRUE(b.Intersects({9, 4, 12, 8}));
  EXPECT_FALSE(b.Intersects({10.1, 0, 12, 5}));
  BBox g = b.Buffered(1.0);
  EXPECT_TRUE(g.Contains({-0.5, -0.5}));
  EXPECT_DOUBLE_EQ(g.width(), 12);
}

TEST(SegmentProjectionTest, InteriorEndpointAndClamp) {
  Vec2 a{0, 0};
  Vec2 b{10, 0};
  auto mid = ProjectOntoSegment({5, 3}, a, b);
  EXPECT_DOUBLE_EQ(mid.distance, 3);
  EXPECT_DOUBLE_EQ(mid.ratio, 0.5);
  auto before = ProjectOntoSegment({-4, 3}, a, b);
  EXPECT_DOUBLE_EQ(before.ratio, 0);
  EXPECT_DOUBLE_EQ(before.distance, 5);
  auto after = ProjectOntoSegment({14, -3}, a, b);
  EXPECT_DOUBLE_EQ(after.ratio, 1);
  EXPECT_DOUBLE_EQ(after.distance, 5);
}

TEST(SegmentProjectionTest, DegenerateSegment) {
  auto p = ProjectOntoSegment({3, 4}, {0, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(p.distance, 5);
  EXPECT_DOUBLE_EQ(p.ratio, 0);
}

TEST(PolylineTest, LengthAndBounds) {
  Polyline line({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(line.length(), 7);
  EXPECT_DOUBLE_EQ(line.bounds().max_x, 3);
  EXPECT_DOUBLE_EQ(line.bounds().max_y, 4);
}

TEST(PolylineTest, PointAtWalksArcLength) {
  Polyline line({{0, 0}, {3, 0}, {3, 4}});
  Vec2 p0 = line.PointAt(0);
  EXPECT_DOUBLE_EQ(p0.x, 0);
  Vec2 pm = line.PointAt(3.0 / 7.0);  // exactly at the corner
  EXPECT_NEAR(pm.x, 3, 1e-9);
  EXPECT_NEAR(pm.y, 0, 1e-9);
  Vec2 p1 = line.PointAt(1);
  EXPECT_DOUBLE_EQ(p1.y, 4);
  // Clamps out-of-range ratios.
  EXPECT_DOUBLE_EQ(line.PointAt(-1).x, 0);
  EXPECT_DOUBLE_EQ(line.PointAt(2).y, 4);
}

TEST(PolylineTest, ProjectPicksClosestPiece) {
  Polyline line({{0, 0}, {10, 0}, {10, 10}});
  auto p = line.Project({9, 6});
  EXPECT_DOUBLE_EQ(p.distance, 1);
  EXPECT_NEAR(p.ratio, 16.0 / 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(p.closest.x, 10);
  EXPECT_DOUBLE_EQ(p.closest.y, 6);
}

TEST(PolylineTest, ProjectAndPointAtAreConsistent) {
  Polyline line({{0, 0}, {5, 5}, {12, 3}, {20, 9}});
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    const double r = rng.Uniform(0, 1);
    Vec2 on = line.PointAt(r);
    auto proj = line.Project(on);
    EXPECT_NEAR(proj.distance, 0.0, 1e-9);
    EXPECT_NEAR(Distance(line.PointAt(proj.ratio), on), 0.0, 1e-6);
  }
}

TEST(PolylineDeath, RejectsDegenerateInput) {
  EXPECT_DEATH(Polyline({{1, 1}}), "polyline");
  EXPECT_DEATH(Polyline({{1, 1}, {1, 1}}), "zero-length");
}

}  // namespace
}  // namespace rntraj
