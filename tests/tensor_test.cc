#include "src/tensor/tensor.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace rntraj {
namespace {

using testing_util::ExpectVectorNear;

TEST(TensorBasics, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.size(), 6);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorBasics, FullAndScalar) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(t.at(i), 2.5f);
  Tensor s = Tensor::Scalar(-1.5f);
  EXPECT_EQ(s.item(), -1.5f);
}

TEST(TensorBasics, FromVectorRowMajorAt) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1);
  EXPECT_EQ(t.at(0, 1), 2);
  EXPECT_EQ(t.at(1, 0), 3);
  EXPECT_EQ(t.at(1, 1), 4);
}

TEST(TensorBasics, RandnIsSeededDeterministically) {
  SeedGlobalRng(7);
  Tensor a = Tensor::Randn({8}, 1.0f);
  SeedGlobalRng(7);
  Tensor b = Tensor::Randn({8}, 1.0f);
  ExpectVectorNear(a.data(), b.data());
}

TEST(TensorBasics, DetachSharesNoHistory) {
  Tensor a = Tensor::Full({2}, 3.0f, /*requires_grad=*/true);
  Tensor b = MulScalar(a, 2.0f);
  Tensor c = b.Detach();
  EXPECT_FALSE(c.requires_grad());
  EXPECT_EQ(c.impl()->node, nullptr);
  ExpectVectorNear(c.data(), {6.0f, 6.0f});
}

TEST(TensorBasics, ToStringMentionsShape) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_NE(t.ToString().find("2x3"), std::string::npos);
}

TEST(TensorDeath, ItemOnNonScalarAborts) {
  Tensor t = Tensor::Zeros({2, 2});
  EXPECT_DEATH(t.item(), "item");
}

TEST(TensorDeath, FromVectorSizeMismatchAborts) {
  EXPECT_DEATH(Tensor::FromVector({2, 2}, {1.0f, 2.0f}), "size mismatch");
}

TEST(AutogradBasics, SimpleChainRule) {
  // z = sum((x * 3) + 1); dz/dx = 3.
  Tensor x = Tensor::FromVector({3}, {1, 2, 3}, /*requires_grad=*/true);
  Tensor z = SumAll(AddScalar(MulScalar(x, 3.0f), 1.0f));
  EXPECT_FLOAT_EQ(z.item(), 3 + 6 + 9 + 3);
  z.Backward();
  ExpectVectorNear(x.grad(), {3, 3, 3});
}

TEST(AutogradBasics, ProductRule) {
  Tensor x = Tensor::FromVector({2}, {2, 5}, true);
  Tensor y = Tensor::FromVector({2}, {7, -3}, true);
  Tensor z = SumAll(Mul(x, y));
  z.Backward();
  ExpectVectorNear(x.grad(), {7, -3});
  ExpectVectorNear(y.grad(), {2, 5});
}

TEST(AutogradBasics, DiamondDagAccumulatesBothPaths) {
  // z = sum(x*2) + sum(x*3): both consumers contribute to dx.
  Tensor x = Tensor::FromVector({2}, {1, 1}, true);
  Tensor z = Add(SumAll(MulScalar(x, 2.0f)), SumAll(MulScalar(x, 3.0f)));
  z.Backward();
  ExpectVectorNear(x.grad(), {5, 5});
}

TEST(AutogradBasics, ReusedTensorAccumulates) {
  // z = sum(x * x) -> dz/dx = 2x with x used twice by the same node.
  Tensor x = Tensor::FromVector({3}, {1, 2, 3}, true);
  Tensor z = SumAll(Mul(x, x));
  z.Backward();
  ExpectVectorNear(x.grad(), {2, 4, 6});
}

TEST(AutogradBasics, NoGradGuardRecordsNothing) {
  Tensor x = Tensor::FromVector({2}, {1, 2}, true);
  NoGradGuard guard;
  Tensor y = MulScalar(x, 2.0f);
  EXPECT_EQ(y.impl()->node, nullptr);
  EXPECT_FALSE(y.requires_grad());
}

TEST(AutogradBasics, NoGradInputsProduceNoNode) {
  Tensor x = Tensor::FromVector({2}, {1, 2}, /*requires_grad=*/false);
  Tensor y = MulScalar(x, 2.0f);
  EXPECT_EQ(y.impl()->node, nullptr);
}

TEST(AutogradBasics, ZeroGradClears) {
  Tensor x = Tensor::FromVector({2}, {1, 2}, true);
  SumAll(x).Backward();
  ExpectVectorNear(x.grad(), {1, 1});
  x.ZeroGrad();
  ExpectVectorNear(x.grad(), {0, 0});
}

TEST(OpsForward, AddBroadcastRowVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  ExpectVectorNear(Add(a, b).data(), {11, 22, 33, 14, 25, 36});
}

TEST(OpsForward, AddBroadcastColVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({2, 1}, {100, 200});
  ExpectVectorNear(Add(a, b).data(), {101, 102, 103, 204, 205, 206});
}

TEST(OpsForward, SubMulDivScalarBroadcast) {
  Tensor a = Tensor::FromVector({2, 2}, {2, 4, 6, 8});
  Tensor s = Tensor::Scalar(2.0f);
  ExpectVectorNear(Sub(a, s).data(), {0, 2, 4, 6});
  ExpectVectorNear(Mul(a, s).data(), {4, 8, 12, 16});
  ExpectVectorNear(Div(a, s).data(), {1, 2, 3, 4});
}

TEST(OpsForward, MatmulKnownValues) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  ExpectVectorNear(Matmul(a, b).data(), {58, 64, 139, 154});
}

TEST(OpsForward, MatmulVectorLhs) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor c = Matmul(a, b);
  EXPECT_EQ(c.rank(), 1);
  ExpectVectorNear(c.data(), {4, 5});
}

TEST(OpsForward, TransposeRoundTrip) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 2);
  ExpectVectorNear(Transpose(t).data(), a.data());
}

TEST(OpsForward, ConcatRowsMixedRank) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 4});
  Tensor c = ConcatRows({a, b});
  EXPECT_EQ(c.dim(0), 2);
  ExpectVectorNear(c.data(), {1, 2, 3, 4});
}

TEST(OpsForward, ConcatColsAndVec) {
  Tensor a = Tensor::FromVector({2, 1}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  ExpectVectorNear(ConcatCols({a, b}).data(), {1, 3, 4, 2, 5, 6});
  Tensor u = Tensor::FromVector({2}, {1, 2});
  Tensor v = Tensor::FromVector({1}, {9});
  ExpectVectorNear(ConcatVec({u, v}).data(), {1, 2, 9});
}

TEST(OpsForward, SliceRowsAndCols) {
  Tensor a = Tensor::FromVector({3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  ExpectVectorNear(SliceRows(a, 1, 2).data(), {4, 5, 6, 7, 8, 9});
  ExpectVectorNear(SliceCols(a, 1, 1).data(), {2, 5, 8});
}

TEST(OpsForward, GatherRowsWithDuplicates) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(a, {2, 0, 2});
  ExpectVectorNear(g.data(), {5, 6, 1, 2, 5, 6});
}

TEST(OpsForward, GatherElemsPicksDiagonal) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  ExpectVectorNear(GatherElems(a, {0, 2}).data(), {1, 6});
}

TEST(OpsForward, ExpandRowsRepeats) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor e = ExpandRows(a, 3);
  ExpectVectorNear(e.data(), {1, 2, 1, 2, 1, 2});
}

TEST(OpsForward, Reductions) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(SumAll(a).item(), 21);
  EXPECT_FLOAT_EQ(MeanAll(a).item(), 3.5f);
  ExpectVectorNear(RowSum(a).data(), {6, 15});
  ExpectVectorNear(RowMean(a).data(), {2, 5});
  ExpectVectorNear(ColSum(a).data(), {5, 7, 9});
  ExpectVectorNear(ColMean(a).data(), {2.5f, 3.5f, 4.5f});
}

TEST(OpsForward, ActivationsKnownValues) {
  Tensor a = Tensor::FromVector({3}, {-1, 0, 2});
  ExpectVectorNear(Relu(a).data(), {0, 0, 2});
  ExpectVectorNear(LeakyRelu(a, 0.1f).data(), {-0.1f, 0, 2});
  ExpectVectorNear(Square(a).data(), {1, 0, 4});
  Tensor s = Sigmoid(Tensor::FromVector({1}, {0}));
  EXPECT_FLOAT_EQ(s.item(), 0.5f);
  Tensor t = Tanh(Tensor::FromVector({1}, {0}));
  EXPECT_FLOAT_EQ(t.item(), 0.0f);
}

TEST(OpsForward, DropoutIdentityWhenEvalOrZeroP) {
  Rng rng(1);
  Tensor a = Tensor::FromVector({4}, {1, 2, 3, 4});
  EXPECT_EQ(Dropout(a, 0.5f, /*training=*/false, rng).impl(), a.impl());
  EXPECT_EQ(Dropout(a, 0.0f, /*training=*/true, rng).impl(), a.impl());
}

TEST(OpsForward, DropoutMasksAndScales) {
  Rng rng(3);
  Tensor a = Tensor::Full({1000}, 1.0f);
  Tensor d = Dropout(a, 0.5f, true, rng);
  int zeros = 0;
  for (float v : d.data()) {
    EXPECT_TRUE(v == 0.0f || v == 2.0f);
    zeros += v == 0.0f;
  }
  EXPECT_GT(zeros, 400);
  EXPECT_LT(zeros, 600);
}

// Softmax rows sum to one for a sweep of shapes (property test).
class SoftmaxShapeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SoftmaxShapeTest, RowsSumToOne) {
  auto [n, d] = GetParam();
  SeedGlobalRng(n * 100 + d);
  Tensor a = Tensor::Randn({n, d}, 3.0f);
  Tensor s = SoftmaxRows(a);
  for (int i = 0; i < n; ++i) {
    double sum = 0.0;
    for (int j = 0; j < d; ++j) {
      const float v = s.at(i, j);
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST_P(SoftmaxShapeTest, LogSoftmaxMatchesLogOfSoftmax) {
  auto [n, d] = GetParam();
  SeedGlobalRng(n * 37 + d);
  Tensor a = Tensor::Randn({n, d}, 2.0f);
  Tensor ls = LogSoftmaxRows(a);
  Tensor s = SoftmaxRows(a);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::exp(ls.data()[i]), s.data()[i], 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SoftmaxShapeTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 7},
                                           std::pair{5, 2}, std::pair{8, 33},
                                           std::pair{16, 128}));

TEST(OpsForward, SoftmaxIsShiftInvariant) {
  Tensor a = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({1, 3}, {1001, 1002, 1003});
  ExpectVectorNear(SoftmaxRows(a).data(), SoftmaxRows(b).data(), 1e-5f);
}

}  // namespace
}  // namespace rntraj
