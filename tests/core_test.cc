#include <gtest/gtest.h>

#include <thread>

#include "src/common/random.h"
#include "src/core/decoder.h"
#include "src/core/features.h"
#include "src/core/gpsformer.h"
#include "src/core/gridgnn.h"
#include "src/core/rntrajrec.h"
#include "src/core/trainer.h"
#include "src/nn/optim.h"
#include "src/sim/presets.h"

namespace rntraj {
namespace {

// Shared tiny dataset for all core tests (built once; expensive).
class CoreFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig cfg = ChengduConfig(BenchScale::kTiny);
    cfg.num_train = 8;
    cfg.num_val = 2;
    cfg.num_test = 4;
    cfg.sim.len_rho = 24;
    dataset_ = BuildDataset(cfg).release();
    ctx_ = new ModelContext(ModelContext::FromDataset(*dataset_));
  }
  static void TearDownTestSuite() {
    delete ctx_;
    delete dataset_;
    dataset_ = nullptr;
    ctx_ = nullptr;
  }

  static RnTrajRecConfig SmallConfig() {
    RnTrajRecConfig cfg;
    cfg.dim = 16;
    cfg.delta = 250.0;
    cfg.max_subgraph_nodes = 16;
    cfg.gridgnn.gnn_layers = 1;
    cfg.gridgnn.heads = 2;
    cfg.gpsformer.blocks = 1;
    cfg.gpsformer.heads = 2;
    cfg.gpsformer.grl.heads = 2;
    cfg.Sync();
    return cfg;
  }

  static Dataset* dataset_;
  static ModelContext* ctx_;
};

Dataset* CoreFixture::dataset_ = nullptr;
ModelContext* CoreFixture::ctx_ = nullptr;

TEST_F(CoreFixture, FeatureShapes) {
  const auto& s = dataset_->train()[0];
  const int l = s.input.size();
  EXPECT_EQ(static_cast<int>(InputGridCells(*ctx_, s).size()), l);
  EXPECT_EQ(InputTimeColumn(s).dim(0), l);
  EXPECT_EQ(InputGridCoords(*ctx_, s).dim(1), 2);
  Tensor env = EnvContext(s);
  EXPECT_EQ(env.dim(1), kEnvFeatureDim);
  // Exactly one hour bit set.
  float hour_sum = 0;
  for (int i = 0; i < 24; ++i) hour_sum += env.at(0, i);
  EXPECT_FLOAT_EQ(hour_sum, 1.0f);
}

TEST_F(CoreFixture, TimeColumnIsMonotoneInUnitRange) {
  const auto& s = dataset_->train()[1];
  Tensor t = InputTimeColumn(s);
  for (int i = 0; i < t.dim(0); ++i) {
    EXPECT_GE(t.at(i, 0), 0.0f);
    EXPECT_LE(t.at(i, 0), 1.0f);
    if (i > 0) {
      EXPECT_GT(t.at(i, 0), t.at(i - 1, 0));
    }
  }
}

TEST_F(CoreFixture, GridGnnShapeAndGradientFlow) {
  SeedGlobalRng(31);
  GridGnnConfig cfg;
  cfg.dim = 16;
  cfg.gnn_layers = 1;
  cfg.heads = 2;
  GridGnn gnn(cfg, ctx_->rn, ctx_->grid);
  Tensor x = gnn.Forward();
  EXPECT_EQ(x.dim(0), ctx_->rn->num_segments());
  EXPECT_EQ(x.dim(1), 16);
  MeanAll(Square(x)).Backward();
  // Gradients must reach both embedding tables through GRU + GAT.
  bool grid_grad = false;
  bool seg_grad = false;
  for (auto& [name, p] : gnn.NamedParameters()) {
    double norm = 0;
    for (float g : p.grad()) norm += std::abs(g);
    if (name.find("grid_emb") != std::string::npos) grid_grad |= norm > 0;
    if (name.find("seg_emb") != std::string::npos) seg_grad |= norm > 0;
  }
  EXPECT_TRUE(grid_grad);
  EXPECT_TRUE(seg_grad);
}

TEST_F(CoreFixture, GridGnnVariantsProduceSameShape) {
  SeedGlobalRng(32);
  for (RoadEncoderKind kind :
       {RoadEncoderKind::kGridGnn, RoadEncoderKind::kGat, RoadEncoderKind::kGcn,
        RoadEncoderKind::kGin}) {
    GridGnnConfig cfg;
    cfg.dim = 8;
    cfg.gnn_layers = 1;
    cfg.heads = 2;
    cfg.kind = kind;
    GridGnn gnn(cfg, ctx_->rn, ctx_->grid);
    Tensor x = gnn.Forward();
    EXPECT_EQ(x.dim(0), ctx_->rn->num_segments());
    EXPECT_EQ(x.dim(1), 8);
  }
}

std::vector<Tensor> RandomZ(const std::vector<DenseGraph>& graphs, int dim) {
  std::vector<Tensor> z;
  for (const auto& g : graphs) z.push_back(Tensor::Randn({g.n, dim}, 1.0f));
  return z;
}

TEST(GrlTest, PreservesShapesAcrossVariants) {
  SeedGlobalRng(33);
  std::vector<DenseGraph> graphs;
  graphs.push_back(BuildDenseGraph(3, {{0, 1}, {1, 2}}));
  graphs.push_back(BuildDenseGraph(2, {{0, 1}}));
  graphs.push_back(BuildDenseGraph(4, {{0, 1}, {2, 3}, {1, 2}}));
  std::vector<const DenseGraph*> gptrs;
  for (auto& g : graphs) gptrs.push_back(&g);

  for (int variant = 0; variant < 4; ++variant) {
    GrlConfig cfg;
    cfg.dim = 8;
    cfg.heads = 2;
    cfg.use_gated_fusion = variant != 1;
    cfg.use_graph_norm = variant != 2;
    cfg.use_gat = variant != 3;
    GraphRefinementLayer grl(cfg);
    Tensor tr = Tensor::Randn({3, 8}, 1.0f);
    auto z = RandomZ(graphs, 8);
    auto out = grl.Forward(tr, z, gptrs);
    ASSERT_EQ(out.size(), 3u);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].dim(0), graphs[i].n) << "variant " << variant;
      EXPECT_EQ(out[i].dim(1), 8);
    }
  }
}

TEST(GrlTest, GradientsReachGatedFusionParams) {
  SeedGlobalRng(34);
  std::vector<DenseGraph> graphs;
  graphs.push_back(BuildDenseGraph(3, {{0, 1}}));
  graphs.push_back(BuildDenseGraph(2, {}));
  std::vector<const DenseGraph*> gptrs = {&graphs[0], &graphs[1]};
  GrlConfig cfg;
  cfg.dim = 8;
  cfg.heads = 2;
  GraphRefinementLayer grl(cfg);
  Tensor tr = Tensor::Randn({2, 8}, 1.0f);
  auto z = RandomZ(graphs, 8);
  auto out = grl.Forward(tr, z, gptrs);
  MeanAll(Square(ConcatRows(out))).Backward();
  bool any = false;
  for (auto& [name, p] : grl.NamedParameters()) {
    if (name.rfind("wz", 0) == 0) {
      for (float g : p.grad()) any |= g != 0.0f;
    }
  }
  EXPECT_TRUE(any);
}

// Builds a ragged two-sample batch for the GRL/GpsFormer equivalence tests:
// sample 0 has three timesteps (1-node, edge-less and chain sub-graphs),
// sample 1 has two (denser 4-node graph + chain) — the degenerate shapes the
// serving sub-graph extractor produces.
struct RaggedGrlBatch {
  std::vector<DenseGraph> graphs;
  std::vector<int> lengths{3, 2};
  std::vector<std::vector<const DenseGraph*>> per_sample;
  BatchedDenseGraph batched;

  RaggedGrlBatch() {
    graphs.push_back(BuildDenseGraph(1, {}));
    graphs.push_back(BuildDenseGraph(2, {}));
    graphs.push_back(BuildDenseGraph(3, {{0, 1}, {1, 2}}));
    graphs.push_back(BuildDenseGraph(4, {{0, 1}, {2, 3}, {1, 2}, {0, 3}}));
    graphs.push_back(BuildDenseGraph(3, {{2, 1}, {1, 0}}));
    per_sample.push_back({&graphs[0], &graphs[1], &graphs[2]});
    per_sample.push_back({&graphs[3], &graphs[4]});
    std::vector<const DenseGraph*> flat;
    for (const auto& s : per_sample) flat.insert(flat.end(), s.begin(), s.end());
    batched = BuildBatchedDenseGraph(flat);
  }
};

TEST(GrlTest, ForwardBatchMatchesPerSampleForward) {
  // The batched GRL (fat fusion GEMMs + ONE block-diagonal GAT pass +
  // per-sample GraphNorm) must reproduce the per-sample Forward on every
  // node feature, in training mode (per-sample batch statistics) and eval
  // mode (running statistics), across all ablation variants.
  for (bool train : {true, false}) {
    for (int variant = 0; variant < 4; ++variant) {
      SeedGlobalRng(60 + variant);
      RaggedGrlBatch b;
      GrlConfig cfg;
      cfg.dim = 8;
      cfg.heads = 2;
      cfg.use_gated_fusion = variant != 1;
      cfg.use_graph_norm = variant != 2;
      cfg.use_gat = variant != 3;
      GraphRefinementLayer grl(cfg);
      grl.SetTraining(train);

      std::vector<Tensor> tr_parts;
      std::vector<Tensor> z_flat_parts;
      std::vector<std::vector<Tensor>> z_parts;
      for (size_t s = 0; s < b.per_sample.size(); ++s) {
        tr_parts.push_back(Tensor::Randn({b.lengths[s], 8}, 1.0f));
        z_parts.emplace_back();
        for (const DenseGraph* g : b.per_sample[s]) {
          z_parts.back().push_back(Tensor::Randn({g->n, 8}, 1.0f));
          z_flat_parts.push_back(z_parts.back().back());
        }
      }

      Tensor out = grl.ForwardBatch(ConcatRows(tr_parts),
                                    ConcatRows(z_flat_parts), b.batched,
                                    b.lengths);
      ASSERT_EQ(out.dim(0), b.batched.total_nodes);

      int node = 0;
      for (size_t s = 0; s < b.per_sample.size(); ++s) {
        std::vector<Tensor> ref =
            grl.Forward(tr_parts[s], z_parts[s], b.per_sample[s]);
        for (size_t t = 0; t < ref.size(); ++t) {
          for (int i = 0; i < ref[t].dim(0); ++i) {
            for (int j = 0; j < 8; ++j) {
              EXPECT_NEAR(out.at(node + i, j), ref[t].at(i, j),
                          1e-6 * (1.0 + std::abs(ref[t].at(i, j))))
                  << (train ? "train" : "eval") << " variant " << variant
                  << " sample " << s << " timestep " << t << " (" << i << ","
                  << j << ")";
            }
          }
          node += ref[t].dim(0);
        }
      }
    }
  }
}

TEST(GrlTest, ForwardBatchSingleSampleMatches) {
  // B=1: the batched layer sees exactly one sample's sub-graphs.
  SeedGlobalRng(64);
  std::vector<DenseGraph> graphs;
  graphs.push_back(BuildDenseGraph(1, {}));
  graphs.push_back(BuildDenseGraph(3, {{0, 1}, {2, 1}}));
  std::vector<const DenseGraph*> gptrs = {&graphs[0], &graphs[1]};
  BatchedDenseGraph bg = BuildBatchedDenseGraph(gptrs);
  GrlConfig cfg;
  cfg.dim = 8;
  cfg.heads = 2;
  GraphRefinementLayer grl(cfg);
  grl.SetTraining(false);
  Tensor tr = Tensor::Randn({2, 8}, 1.0f);
  std::vector<Tensor> z = RandomZ(graphs, 8);
  Tensor out = grl.ForwardBatch(tr, ConcatRows(z), bg, {2});
  std::vector<Tensor> ref = grl.Forward(tr, z, gptrs);
  int node = 0;
  for (size_t t = 0; t < ref.size(); ++t) {
    for (int i = 0; i < ref[t].dim(0); ++i) {
      for (int j = 0; j < 8; ++j) {
        EXPECT_NEAR(out.at(node + i, j), ref[t].at(i, j),
                    1e-6 * (1.0 + std::abs(ref[t].at(i, j))))
            << "timestep " << t << " (" << i << "," << j << ")";
      }
    }
    node += ref[t].dim(0);
  }
}

TEST(GpsFormerTest, ForwardBatchMatchesPerSampleEncode) {
  // Full encoder equivalence on the ragged batch: padded transformer half +
  // block-diagonal batched GAT half vs the per-sample Forward, for both
  // pooled outputs (H^N) and final node features (Z^N).
  SeedGlobalRng(65);
  RaggedGrlBatch b;
  GpsFormerConfig cfg;
  cfg.dim = 8;
  cfg.blocks = 2;
  cfg.heads = 2;
  cfg.ffn_dim = 16;
  cfg.grl.heads = 2;
  GpsFormer former(cfg);
  former.SetTraining(false);

  std::vector<Tensor> h0_parts;
  std::vector<Tensor> z0_flat_parts;
  std::vector<std::vector<Tensor>> z0_parts;
  for (size_t s = 0; s < b.per_sample.size(); ++s) {
    h0_parts.push_back(Tensor::Randn({b.lengths[s], 8}, 1.0f));
    z0_parts.emplace_back();
    for (const DenseGraph* g : b.per_sample[s]) {
      z0_parts.back().push_back(Tensor::Randn({g->n, 8}, 1.0f));
      z0_flat_parts.push_back(z0_parts.back().back());
    }
  }

  GpsFormer::BatchOutput out = former.ForwardBatch(
      ConcatRows(h0_parts), b.lengths, ConcatRows(z0_flat_parts), b.batched);
  ASSERT_EQ(out.h.dim(0), 5);  // sum of lengths
  ASSERT_EQ(out.z.dim(0), b.batched.total_nodes);

  int row = 0;
  int node = 0;
  for (size_t s = 0; s < b.per_sample.size(); ++s) {
    GpsFormer::Output ref =
        former.Forward(h0_parts[s], z0_parts[s], b.per_sample[s]);
    for (int i = 0; i < b.lengths[s]; ++i) {
      for (int j = 0; j < 8; ++j) {
        EXPECT_NEAR(out.h.at(row + i, j), ref.h.at(i, j),
                    1e-6 * (1.0 + std::abs(ref.h.at(i, j))))
            << "sample " << s << " H row " << i;
      }
    }
    for (size_t t = 0; t < ref.z.size(); ++t) {
      for (int i = 0; i < ref.z[t].dim(0); ++i) {
        for (int j = 0; j < 8; ++j) {
          // Z tolerance is looser than H's: rounding accumulates across two
          // blocks on intermediate node features an order of magnitude
          // larger than the final value it lands on.
          EXPECT_NEAR(out.z.at(node + i, j), ref.z[t].at(i, j),
                      4e-6 * (1.0 + std::abs(ref.z[t].at(i, j))))
              << "sample " << s << " Z timestep " << t;
        }
      }
      node += ref.z[t].dim(0);
    }
    row += b.lengths[s];
  }
}

TEST(GpsFormerTest, OutputShapesAndNoGrlPath) {
  SeedGlobalRng(35);
  std::vector<DenseGraph> graphs;
  graphs.push_back(BuildDenseGraph(3, {{0, 1}}));
  graphs.push_back(BuildDenseGraph(2, {}));
  std::vector<const DenseGraph*> gptrs = {&graphs[0], &graphs[1]};
  for (bool use_grl : {true, false}) {
    GpsFormerConfig cfg;
    cfg.dim = 8;
    cfg.blocks = 2;
    cfg.heads = 2;
    cfg.ffn_dim = 16;
    cfg.grl.heads = 2;
    cfg.use_grl = use_grl;
    GpsFormer former(cfg);
    Tensor h0 = Tensor::Randn({2, 8}, 1.0f);
    auto out = former.Forward(h0, RandomZ(graphs, 8), gptrs);
    EXPECT_EQ(out.h.dim(0), 2);
    EXPECT_EQ(out.h.dim(1), 8);
    if (use_grl) {
      ASSERT_EQ(out.z.size(), 2u);
      EXPECT_EQ(out.z[0].dim(0), 3);
    }
  }
}

TEST_F(CoreFixture, DecoderTrainLossIsFiniteAndImproves) {
  SeedGlobalRng(36);
  DecoderConfig dcfg;
  dcfg.dim = 16;
  Decoder dec(dcfg, ctx_);
  const auto& s = dataset_->train()[0];
  const int l = s.input.size();
  Tensor enc = Tensor::Randn({l, 16}, 0.5f);
  Tensor h = Tensor::Randn({1, 16}, 0.5f);

  auto params = dec.Parameters();
  Adam opt(params, 5e-3f);
  double first = 0;
  double last = 0;
  for (int it = 0; it < 15; ++it) {
    opt.ZeroGrad();
    Tensor loss = dec.TrainLoss(enc, h, s);
    if (it == 0) first = loss.item();
    last = loss.item();
    EXPECT_TRUE(std::isfinite(last));
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, first);
}

TEST_F(CoreFixture, DecoderRespectsConstraintMaskAtObservedSteps) {
  SeedGlobalRng(37);
  DecoderConfig dcfg;
  dcfg.dim = 16;
  Decoder dec(dcfg, ctx_);
  const auto& s = dataset_->train()[2];
  NoGradGuard guard;
  Tensor enc = Tensor::Randn({s.input.size(), 16}, 0.5f);
  Tensor h = Tensor::Randn({1, 16}, 0.5f);
  MatchedTrajectory rec = dec.Decode(enc, h, s);
  ASSERT_EQ(rec.size(), s.truth.size());
  // At observed timestamps even an untrained decoder must stay within the
  // constraint radius of the observation (mask pins the softmax).
  for (size_t i = 0; i < s.input_indices.size(); ++i) {
    const int j = s.input_indices[i];
    const auto proj =
        ctx_->rn->Project(s.input.points[i].pos, rec.points[j].seg_id);
    EXPECT_LE(proj.distance, dcfg.mask_radius + 1e-6)
        << "step " << j << " escaped the constraint mask";
  }
  // Timestamps follow the eps grid.
  for (int j = 1; j < rec.size(); ++j) {
    EXPECT_DOUBLE_EQ(rec.points[j].t - rec.points[j - 1].t, ctx_->eps_rho);
  }
}

TEST_F(CoreFixture, RnTrajRecLossIsFiniteAndBackpropagates) {
  SeedGlobalRng(38);
  RnTrajRec model(SmallConfig(), *ctx_);
  model.BeginBatch();
  Tensor loss = model.TrainLoss(dataset_->train()[0]);
  EXPECT_TRUE(std::isfinite(loss.item()));
  loss.Backward();
  auto params = model.Parameters();
  const double norm = ClipGradNorm(params, 1e9);
  EXPECT_GT(norm, 0.0);
  EXPECT_TRUE(std::isfinite(norm));
}

TEST_F(CoreFixture, RnTrajRecTrainingReducesLoss) {
  SeedGlobalRng(39);
  RnTrajRec model(SmallConfig(), *ctx_);
  TrainConfig tcfg;
  tcfg.epochs = 3;
  tcfg.batch_size = 4;
  tcfg.lr = 2e-3f;
  TrainStats stats = TrainModel(model, dataset_->train(), tcfg);
  ASSERT_EQ(stats.epoch_losses.size(), 3u);
  EXPECT_LT(stats.epoch_losses.back(), stats.epoch_losses.front());
}

TEST_F(CoreFixture, RnTrajRecRecoverIsWellFormed) {
  SeedGlobalRng(40);
  RnTrajRec model(SmallConfig(), *ctx_);
  const auto& s = dataset_->test()[0];
  model.BeginInference();
  model.SetTrainingMode(false);
  MatchedTrajectory rec = model.Recover(s);
  ASSERT_EQ(rec.size(), s.truth.size());
  for (const auto& p : rec.points) {
    EXPECT_GE(p.seg_id, 0);
    EXPECT_LT(p.seg_id, ctx_->rn->num_segments());
    EXPECT_GE(p.ratio, 0.0);
    EXPECT_LT(p.ratio, 1.0);
  }
  EXPECT_DOUBLE_EQ(rec.points.front().t, s.truth.points.front().t);
}

TEST_F(CoreFixture, RnTrajRecAblationVariantsRun) {
  SeedGlobalRng(41);
  for (int variant = 0; variant < 5; ++variant) {
    RnTrajRecConfig cfg = SmallConfig();
    cfg.gpsformer.use_grl = variant != 0;
    cfg.gpsformer.grl.use_gated_fusion = variant != 1;
    cfg.gpsformer.grl.use_graph_norm = variant != 2;
    cfg.gpsformer.grl.use_gat = variant != 3;
    cfg.use_gcl = variant != 4;
    RnTrajRec model(cfg, *ctx_);
    model.BeginBatch();
    Tensor loss = model.TrainLoss(dataset_->train()[1]);
    EXPECT_TRUE(std::isfinite(loss.item())) << "variant " << variant;
  }
}

TEST_F(CoreFixture, TrainerBatchThreadsMatchesSerialTraining) {
  // The multi-threaded trainer smoke test: with re-entrant forwards
  // (SupportsConcurrentTrainLoss == true) the batch_threads data-parallel
  // path must engage and reproduce the serial schedule — per-sample losses
  // are deterministic in (epoch, uid) regardless of threading, and the
  // trainer sums them in batch order.
  ASSERT_TRUE(RnTrajRec(SmallConfig(), *ctx_).SupportsConcurrentTrainLoss());

  TrainConfig serial_cfg;
  serial_cfg.epochs = 2;
  serial_cfg.batch_size = 4;
  serial_cfg.batch_threads = 1;
  // Force the per-sample path on the serial side too (batch_threads > 1
  // already wins over the default batched forward): this test compares the
  // data-parallel loop against the serial per-sample schedule.
  serial_cfg.batched_forward = false;
  SeedGlobalRng(43);
  RnTrajRec serial_model(SmallConfig(), *ctx_);
  TrainStats serial = TrainModel(serial_model, dataset_->train(), serial_cfg);

  TrainConfig parallel_cfg = serial_cfg;
  parallel_cfg.batch_threads = 4;
  SeedGlobalRng(43);
  RnTrajRec parallel_model(SmallConfig(), *ctx_);
  TrainStats parallel =
      TrainModel(parallel_model, dataset_->train(), parallel_cfg);

  ASSERT_EQ(serial.epoch_losses.size(), parallel.epoch_losses.size());
  for (size_t e = 0; e < serial.epoch_losses.size(); ++e) {
    EXPECT_TRUE(std::isfinite(parallel.epoch_losses[e]));
    EXPECT_NEAR(serial.epoch_losses[e], parallel.epoch_losses[e], 1e-6)
        << "epoch " << e;
  }
}

TEST_F(CoreFixture, ConcurrentRecoverMatchesSerial) {
  SeedGlobalRng(44);
  RnTrajRec model(SmallConfig(), *ctx_);
  ASSERT_TRUE(model.SupportsConcurrentRecover());
  model.SetTrainingMode(false);
  model.BeginInference();
  const auto& samples = dataset_->test();
  std::vector<MatchedTrajectory> serial;
  for (const auto& s : samples) serial.push_back(model.Recover(s));

  std::vector<MatchedTrajectory> parallel(samples.size());
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < samples.size(); i += 2) {
        parallel[i] = model.Recover(samples[i]);
      }
    });
  }
  for (auto& th : threads) th.join();

  for (size_t i = 0; i < samples.size(); ++i) {
    ASSERT_EQ(parallel[i].size(), serial[i].size());
    for (int j = 0; j < serial[i].size(); ++j) {
      EXPECT_EQ(parallel[i].points[j].seg_id, serial[i].points[j].seg_id);
      EXPECT_DOUBLE_EQ(parallel[i].points[j].ratio, serial[i].points[j].ratio);
    }
  }
}

TEST_F(CoreFixture, EphemeralSampleMatchesDatasetSample) {
  // Serving builds uid < 0 samples that bypass the memo caches; recovery
  // from the same observations must be identical.
  SeedGlobalRng(45);
  RnTrajRec model(SmallConfig(), *ctx_);
  model.SetTrainingMode(false);
  model.BeginInference();
  const auto& s = dataset_->test()[2];
  MatchedTrajectory cached = model.Recover(s);

  std::vector<double> times;
  for (const auto& p : s.truth.points) times.push_back(p.t);
  TrajectorySample eph = MakeEphemeralSample(s.input, s.input_indices, times);
  ASSERT_LT(eph.uid, 0);
  MatchedTrajectory ephemeral = model.Recover(eph);
  ASSERT_EQ(ephemeral.size(), cached.size());
  for (int j = 0; j < cached.size(); ++j) {
    EXPECT_EQ(ephemeral.points[j].seg_id, cached.points[j].seg_id);
    EXPECT_DOUBLE_EQ(ephemeral.points[j].ratio, cached.points[j].ratio);
  }
}

// Ephemeral copy of `s` truncated to its first `keep` input points (a legal
// request: indices stay ascending within the target grid), used to build
// ragged-length batches.
TrajectorySample TruncatedEphemeral(const TrajectorySample& s, int keep) {
  RawTrajectory input;
  input.points.assign(s.input.points.begin(), s.input.points.begin() + keep);
  std::vector<int> indices(s.input_indices.begin(),
                           s.input_indices.begin() + keep);
  std::vector<double> times;
  for (const auto& p : s.truth.points) times.push_back(p.t);
  return MakeEphemeralSample(std::move(input), std::move(indices), times);
}

/// Ephemeral variant with the TARGET truncated to its first `keep` steps
/// (real seg ids and ratios kept, so it trains too); input points whose
/// target position falls beyond the cut are dropped. Exercises the batched
/// decoder's early-finish lane compaction: such lanes leave the step GEMMs
/// before the longer lanes do.
TrajectorySample TruncatedTargetEphemeral(const TrajectorySample& s, int keep) {
  TrajectorySample out;
  out.uid = -1;
  out.truth.points.assign(s.truth.points.begin(),
                          s.truth.points.begin() + keep);
  for (size_t i = 0; i < s.input_indices.size(); ++i) {
    if (s.input_indices[i] < keep) {
      out.input.points.push_back(s.input.points[i]);
      out.input_indices.push_back(s.input_indices[i]);
    }
  }
  return out;
}

void ExpectSameRecovery(const MatchedTrajectory& got,
                        const MatchedTrajectory& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (int j = 0; j < want.size(); ++j) {
    EXPECT_EQ(got.points[j].seg_id, want.points[j].seg_id)
        << what << " step " << j;
    // Within float rounding: the blocked GEMM's row-peel kernels may
    // contract FMAs differently at different batch heights, so the batched
    // encoder matches the per-sample one to ~1e-6, not bit-exactly.
    EXPECT_NEAR(got.points[j].ratio, want.points[j].ratio, 1e-6)
        << what << " step " << j;
  }
}

TEST_F(CoreFixture, BatchedForwardMatchesPerSampleInference) {
  // The padded EncodeBatch path must reproduce the per-sample Encode path
  // exactly: ragged lengths, B=1, and all-same-length batches.
  SeedGlobalRng(46);
  RnTrajRec model(SmallConfig(), *ctx_);
  ASSERT_TRUE(model.SupportsBatchedForward());
  model.SetTrainingMode(false);
  model.BeginInference();

  // Ragged lengths: full test samples plus truncated ephemeral variants.
  const auto& test = dataset_->test();
  const int full_len = test[0].input.size();
  ASSERT_GE(full_len, 3);
  std::vector<TrajectorySample> ragged;
  ragged.push_back(test[0]);
  ragged.push_back(TruncatedEphemeral(test[1], full_len - 1));
  ragged.push_back(TruncatedEphemeral(test[2], 2));
  ragged.push_back(test[3]);

  std::vector<const TrajectorySample*> ptrs;
  for (const auto& s : ragged) ptrs.push_back(&s);
  std::vector<MatchedTrajectory> batched = model.RecoverBatch(ptrs);
  ASSERT_EQ(batched.size(), ragged.size());
  for (size_t i = 0; i < ragged.size(); ++i) {
    ExpectSameRecovery(batched[i], model.Recover(ragged[i]), "ragged");
  }

  // B = 1.
  std::vector<MatchedTrajectory> single = model.RecoverBatch({&test[1]});
  ASSERT_EQ(single.size(), 1u);
  ExpectSameRecovery(single[0], model.Recover(test[1]), "B=1");

  // All same length (the zero-padding-free degenerate case).
  std::vector<MatchedTrajectory> same =
      model.RecoverBatch({&test[0], &test[3], &test[0]});
  ExpectSameRecovery(same[0], model.Recover(test[0]), "same-length");
  ExpectSameRecovery(same[1], model.Recover(test[3]), "same-length");
  ExpectSameRecovery(same[2], model.Recover(test[0]), "same-length");
}

TEST_F(CoreFixture, BatchedForwardMatchesPerSampleTrainLoss) {
  SeedGlobalRng(47);
  RnTrajRec model(SmallConfig(), *ctx_);
  model.SetTrainingMode(true);
  model.BeginBatch();

  std::vector<const TrajectorySample*> ptrs;
  for (const auto& s : dataset_->train()) ptrs.push_back(&s);
  std::vector<Tensor> batched = model.TrainLossBatch(ptrs);
  ASSERT_EQ(batched.size(), ptrs.size());
  for (size_t i = 0; i < ptrs.size(); ++i) {
    const float reference = model.TrainLoss(*ptrs[i]).item();
    EXPECT_TRUE(std::isfinite(batched[i].item()));
    EXPECT_NEAR(batched[i].item(), reference,
                1e-6 * (1.0 + std::abs(reference)))
        << "sample " << i;
  }

  // The batched losses backpropagate through the padded path.
  Tensor total;
  for (const Tensor& l : batched) {
    total = total.defined() ? Add(total, l) : l;
  }
  total.Backward();
  bool any_grad = false;
  for (auto& p : model.Parameters()) {
    for (float g : p.grad()) {
      if (g != 0.0f) {
        any_grad = true;
        break;
      }
    }
    if (any_grad) break;
  }
  EXPECT_TRUE(any_grad);
}

TEST_F(CoreFixture, BatchedDecoderEarlyFinishLaneCompaction) {
  // Ragged TARGET lengths: lanes finish at different timesteps, so the
  // batched decoder's active set shrinks mid-decode (batch -> ... -> 1).
  // Every lane — including the ones that drop out of the GEMMs first — must
  // match its per-sample decode/loss.
  SeedGlobalRng(49);
  RnTrajRec model(SmallConfig(), *ctx_);
  const auto& test = dataset_->test();
  const int full = test[0].truth.size();
  ASSERT_GE(full, 6);
  std::vector<TrajectorySample> ragged;
  ragged.push_back(test[0]);  // full-length lane, survives to the last step
  ragged.push_back(TruncatedTargetEphemeral(test[1], full / 2));
  ragged.push_back(TruncatedTargetEphemeral(test[2], 2));
  ragged.push_back(TruncatedTargetEphemeral(test[3], full - 1));
  std::vector<const TrajectorySample*> ptrs;
  for (const auto& s : ragged) ptrs.push_back(&s);

  model.SetTrainingMode(false);
  model.BeginInference();
  std::vector<MatchedTrajectory> batched = model.RecoverBatch(ptrs);
  ASSERT_EQ(batched.size(), ragged.size());
  for (size_t i = 0; i < ragged.size(); ++i) {
    EXPECT_EQ(batched[i].size(), ragged[i].truth.size()) << "lane " << i;
    ExpectSameRecovery(batched[i], model.Recover(ragged[i]), "early-finish");
  }

  // The training path compacts the same way; losses still match per-sample.
  model.SetTrainingMode(true);
  model.BeginBatch();
  std::vector<Tensor> losses = model.TrainLossBatch(ptrs);
  ASSERT_EQ(losses.size(), ragged.size());
  for (size_t i = 0; i < ragged.size(); ++i) {
    const float reference = model.TrainLoss(ragged[i]).item();
    EXPECT_TRUE(std::isfinite(losses[i].item()));
    EXPECT_NEAR(losses[i].item(), reference, 1e-6 * (1.0 + std::abs(reference)))
        << "lane " << i;
  }
}

TEST_F(CoreFixture, BatchedDecoderFlipsIndependentOfLaneOrder) {
  // Scheduled-sampling coin flips are keyed by (sampling epoch, sample uid),
  // never by lane index: permuting a batch must permute its losses and
  // nothing else, and every ordering must match the per-sample TrainLoss
  // stream (which a lane-order-dependent flip could not).
  SeedGlobalRng(50);
  RnTrajRec model(SmallConfig(), *ctx_);
  model.SetTrainingMode(true);
  model.SetTeacherForcing(0.5);  // actually stochastic: both outcomes occur
  model.BeginBatch();
  const auto& train = dataset_->train();
  const size_t n = std::min<size_t>(6, train.size());
  std::vector<const TrajectorySample*> forward;
  std::vector<const TrajectorySample*> reversed;
  for (size_t i = 0; i < n; ++i) forward.push_back(&train[i]);
  for (size_t i = n; i-- > 0;) reversed.push_back(&train[i]);

  std::vector<Tensor> a = model.TrainLossBatch(forward);
  std::vector<Tensor> b = model.TrainLossBatch(reversed);
  ASSERT_EQ(a.size(), n);
  ASSERT_EQ(b.size(), n);
  for (size_t i = 0; i < n; ++i) {
    const float reference = model.TrainLoss(train[i]).item();
    EXPECT_NEAR(a[i].item(), reference, 1e-5 * (1.0 + std::abs(reference)))
        << "forward order, sample " << i;
    EXPECT_NEAR(b[n - 1 - i].item(), reference,
                1e-5 * (1.0 + std::abs(reference)))
        << "reversed order, sample " << i;
  }
}

TEST_F(CoreFixture, TrainerBatchedForwardMatchesPerSampleTraining) {
  // The trainer's default batched-forward path must reproduce the
  // per-sample schedule: losses are bit-identical per sample and summed in
  // batch order either way.
  TrainConfig reference_cfg;
  reference_cfg.epochs = 2;
  reference_cfg.batch_size = 4;
  reference_cfg.batched_forward = false;
  SeedGlobalRng(48);
  RnTrajRec reference_model(SmallConfig(), *ctx_);
  TrainStats reference =
      TrainModel(reference_model, dataset_->train(), reference_cfg);

  TrainConfig batched_cfg = reference_cfg;
  batched_cfg.batched_forward = true;
  SeedGlobalRng(48);
  RnTrajRec batched_model(SmallConfig(), *ctx_);
  TrainStats batched =
      TrainModel(batched_model, dataset_->train(), batched_cfg);

  ASSERT_EQ(reference.epoch_losses.size(), batched.epoch_losses.size());
  for (size_t e = 0; e < reference.epoch_losses.size(); ++e) {
    EXPECT_TRUE(std::isfinite(batched.epoch_losses[e]));
    EXPECT_NEAR(reference.epoch_losses[e], batched.epoch_losses[e], 1e-6)
        << "epoch " << e;
  }
}

TEST_F(CoreFixture, ConfigSyncIsAppliedByConstructorAndIdempotent) {
  // Forgetting Sync() used to silently build mismatched sub-module dims;
  // the constructor now applies it itself.
  RnTrajRecConfig unsynced;
  unsynced.dim = 16;
  unsynced.delta = 250.0;
  unsynced.max_subgraph_nodes = 16;
  unsynced.gridgnn.gnn_layers = 1;
  unsynced.gridgnn.heads = 2;
  unsynced.gpsformer.blocks = 1;
  unsynced.gpsformer.heads = 2;
  unsynced.gpsformer.grl.heads = 2;
  ASSERT_NE(unsynced.gridgnn.dim, unsynced.dim);  // would mismatch if unsynced

  RnTrajRecConfig synced = unsynced;
  synced.Sync();
  RnTrajRecConfig twice = synced;
  twice.Sync();  // idempotent
  EXPECT_EQ(twice.gpsformer.dim, synced.gpsformer.dim);
  EXPECT_EQ(twice.gpsformer.ffn_dim, synced.gpsformer.ffn_dim);
  EXPECT_EQ(twice.decoder.dim, synced.decoder.dim);

  RnTrajRec from_unsynced(unsynced, *ctx_);
  RnTrajRec from_synced(synced, *ctx_);
  EXPECT_EQ(from_unsynced.config().gridgnn.dim, 16);
  EXPECT_EQ(from_unsynced.config().gpsformer.dim, 16);
  EXPECT_EQ(from_unsynced.config().gpsformer.ffn_dim, 32);
  EXPECT_EQ(from_unsynced.config().decoder.dim, 16);
  EXPECT_EQ(from_unsynced.ParameterCount(), from_synced.ParameterCount());

  // And the resulting model actually runs end to end.
  from_unsynced.SetTrainingMode(false);
  from_unsynced.BeginInference();
  MatchedTrajectory out = from_unsynced.Recover(dataset_->test()[0]);
  EXPECT_EQ(out.size(), dataset_->test()[0].truth.size());
}

TEST_F(CoreFixture, SubGraphCacheIsStableAcrossCalls) {
  SeedGlobalRng(42);
  RnTrajRec model(SmallConfig(), *ctx_);
  const auto& s = dataset_->train()[3];
  model.BeginInference();
  model.SetTrainingMode(false);
  MatchedTrajectory a = model.Recover(s);
  MatchedTrajectory b = model.Recover(s);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.points[i].seg_id, b.points[i].seg_id);
    EXPECT_DOUBLE_EQ(a.points[i].ratio, b.points[i].ratio);
  }
}

TEST_F(CoreFixture, ParameterCountGrowsWithBlocks) {
  RnTrajRecConfig one = SmallConfig();
  one.gpsformer.blocks = 1;
  RnTrajRecConfig two = SmallConfig();
  two.gpsformer.blocks = 2;
  RnTrajRec m1(one, *ctx_);
  RnTrajRec m2(two, *ctx_);
  EXPECT_GT(m2.ParameterCount(), m1.ParameterCount());
}

}  // namespace
}  // namespace rntraj
