#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/roadnet/grid.h"
#include "src/roadnet/road_network.h"
#include "src/roadnet/rtree.h"
#include "src/roadnet/shortest_path.h"
#include "src/roadnet/subgraph.h"

namespace rntraj {
namespace {

// A 2x2 block of one-way streets forming a ring, plus a diagonal shortcut:
//   0: (0,0)->(100,0)    1: (100,0)->(100,100)
//   2: (100,100)->(0,100) 3: (0,100)->(0,0)
//   4: (0,0)->(100,100)  (diagonal)
RoadNetwork RingNetwork() {
  RoadNetwork rn;
  rn.AddSegment({{0, 0}, {100, 0}}, RoadLevel::kResidential);
  rn.AddSegment({{100, 0}, {100, 100}}, RoadLevel::kSecondary);
  rn.AddSegment({{100, 100}, {0, 100}}, RoadLevel::kResidential);
  rn.AddSegment({{0, 100}, {0, 0}}, RoadLevel::kResidential);
  rn.AddSegment({{0, 0}, {100, 100}}, RoadLevel::kTrunk);
  rn.AddEdge(0, 1);
  rn.AddEdge(1, 2);
  rn.AddEdge(2, 3);
  rn.AddEdge(3, 0);
  rn.AddEdge(3, 4);
  rn.AddEdge(4, 2);
  rn.Build();
  return rn;
}

TEST(RoadNetworkTest, BasicTopology) {
  RoadNetwork rn = RingNetwork();
  EXPECT_EQ(rn.num_segments(), 5);
  EXPECT_EQ(rn.OutEdges(3).size(), 2u);
  EXPECT_EQ(rn.InEdges(2).size(), 2u);
  EXPECT_EQ(rn.edges().size(), 6u);
  EXPECT_DOUBLE_EQ(rn.segment(0).length(), 100);
  EXPECT_TRUE(rn.IsStronglyConnected());
}

TEST(RoadNetworkTest, PointAtAndProject) {
  RoadNetwork rn = RingNetwork();
  Vec2 p = rn.PointAt(1, 0.25);
  EXPECT_DOUBLE_EQ(p.x, 100);
  EXPECT_DOUBLE_EQ(p.y, 25);
  auto proj = rn.Project({96, 50}, 1);
  EXPECT_DOUBLE_EQ(proj.distance, 4);
  EXPECT_DOUBLE_EQ(proj.ratio, 0.5);
}

TEST(RoadNetworkTest, StaticFeaturesLayout) {
  RoadNetwork rn = RingNetwork();
  auto f = rn.StaticFeatures(1);
  ASSERT_EQ(f.size(), static_cast<size_t>(kStaticFeatureDim));
  EXPECT_EQ(f[static_cast<int>(RoadLevel::kSecondary)], 1.0f);
  EXPECT_EQ(f[static_cast<int>(RoadLevel::kResidential)], 0.0f);
  EXPECT_FLOAT_EQ(f[kNumRoadLevels], 0.1f);      // 100 m / 1 km
  EXPECT_FLOAT_EQ(f[kNumRoadLevels + 1], 1.0f);  // in-degree
  EXPECT_FLOAT_EQ(f[kNumRoadLevels + 2], 1.0f);  // out-degree
}

TEST(RoadNetworkTest, NotStronglyConnectedWhenEdgeMissing) {
  RoadNetwork rn;
  rn.AddSegment({{0, 0}, {1, 0}}, RoadLevel::kResidential);
  rn.AddSegment({{1, 0}, {2, 0}}, RoadLevel::kResidential);
  rn.AddEdge(0, 1);
  rn.Build();
  EXPECT_FALSE(rn.IsStronglyConnected());
}

TEST(GridMappingTest, CellIndexingCoversBounds) {
  GridMapping grid(BBox{0, 0, 1000, 500}, 50.0);
  EXPECT_GE(grid.cols() * grid.cell_size(), 1000.0);
  EXPECT_GE(grid.rows() * grid.cell_size(), 500.0);
  // Points map within range and corners clamp.
  EXPECT_GE(grid.CellIndexOf({-1e6, -1e6}), 0);
  EXPECT_LT(grid.CellIndexOf({1e6, 1e6}), grid.num_cells());
}

TEST(GridMappingTest, DistinctCellsForDistantPoints) {
  GridMapping grid(BBox{0, 0, 1000, 1000}, 50.0);
  EXPECT_NE(grid.CellIndexOf({10, 10}), grid.CellIndexOf({900, 900}));
  EXPECT_EQ(grid.CellIndexOf({10, 10}), grid.CellIndexOf({11, 11}));
}

TEST(GridMappingTest, CellCenterRoundTrips) {
  GridMapping grid(BBox{0, 0, 500, 500}, 50.0);
  for (int gy = 0; gy < grid.rows(); gy += 3) {
    for (int gx = 0; gx < grid.cols(); gx += 3) {
      GridMapping::Cell c{gx, gy};
      EXPECT_EQ(grid.CellIndex(grid.CellOf(grid.CellCenter(c))),
                grid.CellIndex(c));
    }
  }
}

TEST(GridMappingTest, GridSequenceFollowsSegment) {
  GridMapping grid(BBox{0, 0, 500, 500}, 50.0);
  Polyline line({{10, 10}, {210, 10}});  // horizontal, ~4 cells
  auto seq = grid.GridSequence(line);
  ASSERT_GE(seq.size(), 4u);
  // No consecutive duplicates.
  for (size_t i = 1; i < seq.size(); ++i) EXPECT_NE(seq[i], seq[i - 1]);
  // Endpoints are the cells of the endpoints.
  EXPECT_EQ(seq.front(), grid.CellIndexOf({10, 10}));
  EXPECT_EQ(seq.back(), grid.CellIndexOf({210, 10}));
}

TEST(GridMappingTest, ShortSegmentHasSingleCell) {
  GridMapping grid(BBox{0, 0, 500, 500}, 50.0);
  Polyline line({{10, 10}, {12, 12}});
  auto seq = grid.GridSequence(line);
  EXPECT_EQ(seq.size(), 1u);
}

TEST(RTreeTest, MatchesBruteForceOnRandomBoxes) {
  Rng rng(11);
  std::vector<BBox> boxes;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Uniform(0, 1000);
    const double y = rng.Uniform(0, 1000);
    boxes.push_back({x, y, x + rng.Uniform(1, 60), y + rng.Uniform(1, 60)});
  }
  RTree tree(boxes);
  for (int q = 0; q < 50; ++q) {
    const double x = rng.Uniform(-50, 1000);
    const double y = rng.Uniform(-50, 1000);
    BBox query{x, y, x + rng.Uniform(5, 200), y + rng.Uniform(5, 200)};
    auto got = tree.Query(query);
    std::vector<int> want;
    for (int i = 0; i < 300; ++i) {
      if (boxes[i].Intersects(query)) want.push_back(i);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << "query " << q;
  }
}

TEST(RTreeTest, EmptyTreeAndEmptyResult) {
  RTree empty(std::vector<BBox>{});
  EXPECT_TRUE(empty.Query({0, 0, 10, 10}).empty());
  RTree one(std::vector<BBox>{{0, 0, 1, 1}});
  EXPECT_TRUE(one.Query({5, 5, 6, 6}).empty());
  EXPECT_EQ(one.Query({0.5, 0.5, 2, 2}).size(), 1u);
}

TEST(SegmentsWithinRadiusTest, SortedAndFiltered) {
  RoadNetwork rn = RingNetwork();
  RTree rtree = BuildSegmentRTree(rn);
  // Near segment 0's middle.
  auto near = SegmentsWithinRadius(rn, rtree, {50, 5}, 20.0);
  ASSERT_FALSE(near.empty());
  EXPECT_EQ(near[0].seg_id, 0);
  EXPECT_NEAR(near[0].projection.distance, 5, 1e-9);
  for (size_t i = 1; i < near.size(); ++i) {
    EXPECT_LE(near[i - 1].projection.distance, near[i].projection.distance);
    EXPECT_LE(near[i].projection.distance, 20.0);
  }
}

TEST(SegmentsWithinRadiusTest, ExpandsUntilNonEmpty) {
  RoadNetwork rn = RingNetwork();
  RTree rtree = BuildSegmentRTree(rn);
  // Far outside the network with a tiny radius: expansion must still find
  // something.
  auto near = SegmentsWithinRadius(rn, rtree, {5000, 5000}, 10.0);
  EXPECT_FALSE(near.empty());
}

TEST(NetworkDistanceTest, StartToStartOnRing) {
  RoadNetwork rn = RingNetwork();
  NetworkDistance nd(&rn);
  EXPECT_DOUBLE_EQ(nd.StartToStart(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(nd.StartToStart(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(nd.StartToStart(0, 2), 200.0);
  EXPECT_DOUBLE_EQ(nd.StartToStart(0, 3), 300.0);
  // 3->4 via the diagonal entry.
  EXPECT_DOUBLE_EQ(nd.StartToStart(3, 4), 100.0);
}

TEST(NetworkDistanceTest, PointToPointSameSegment) {
  RoadNetwork rn = RingNetwork();
  NetworkDistance nd(&rn);
  EXPECT_DOUBLE_EQ(nd.PointToPoint(0, 0.2, 0, 0.7), 50.0);
  // Backwards on a one-way segment requires the full ring cycle:
  // 0.3*100 remaining + 100+100+100 + 0.1*100.
  EXPECT_DOUBLE_EQ(nd.PointToPoint(0, 0.7, 0, 0.6), 390.0);
}

TEST(NetworkDistanceTest, PointToPointAcrossSegments) {
  RoadNetwork rn = RingNetwork();
  NetworkDistance nd(&rn);
  // From (0, 0.5) to (1, 0.5): 50 left on segment 0, then 50 into segment 1.
  EXPECT_DOUBLE_EQ(nd.PointToPoint(0, 0.5, 1, 0.5), 100.0);
}

TEST(NetworkDistanceTest, SymmetricTakesMinDirection) {
  RoadNetwork rn = RingNetwork();
  NetworkDistance nd(&rn);
  const double ab = nd.PointToPoint(0, 0.5, 1, 0.5);
  const double ba = nd.PointToPoint(1, 0.5, 0, 0.5);
  EXPECT_DOUBLE_EQ(nd.Symmetric(0, 0.5, 1, 0.5), std::min(ab, ba));
}

TEST(NetworkDistanceTest, SymmetricFallsBackToPlanarWhenUnreachable) {
  RoadNetwork rn;
  rn.AddSegment({{0, 0}, {100, 0}}, RoadLevel::kResidential);
  rn.AddSegment({{0, 50}, {100, 50}}, RoadLevel::kResidential);
  rn.Build();  // no edges: mutually unreachable
  NetworkDistance nd(&rn);
  EXPECT_DOUBLE_EQ(nd.Symmetric(0, 0.0, 1, 0.0), 50.0);
}

TEST(NetworkDistanceTest, TriangleInequalityHolds) {
  RoadNetwork rn = RingNetwork();
  NetworkDistance nd(&rn);
  for (int a = 0; a < 5; ++a) {
    for (int b = 0; b < 5; ++b) {
      for (int c = 0; c < 5; ++c) {
        const double ab = nd.StartToStart(a, b);
        const double bc = nd.StartToStart(b, c);
        const double ac = nd.StartToStart(a, c);
        if (ab < 1e17 && bc < 1e17) {
          EXPECT_LE(ac, ab + bc + 1e-9)
              << "a=" << a << " b=" << b << " c=" << c;
        }
      }
    }
  }
}

TEST(SubGraphTest, ContainsNearbyAndWeightsDecay) {
  RoadNetwork rn = RingNetwork();
  RTree rtree = BuildSegmentRTree(rn);
  PointSubGraph sg = ExtractPointSubGraph(rn, rtree, {50, 5}, 200.0, 30.0);
  ASSERT_GE(sg.size(), 2);
  EXPECT_EQ(sg.seg_ids[0], 0);  // closest first
  // Weight of the closest segment is the largest; all weights in (0, 1].
  for (int i = 0; i < sg.size(); ++i) {
    EXPECT_GT(sg.weights[i], 0.0);
    EXPECT_LE(sg.weights[i], 1.0);
    if (i > 0) {
      EXPECT_LE(sg.weights[i], sg.weights[i - 1] + 1e-12);
    }
  }
  // Weight formula spot check: omega = exp(-(d/gamma)^2).
  EXPECT_NEAR(sg.weights[0], std::exp(-(5.0 / 30.0) * (5.0 / 30.0)), 1e-9);
}

TEST(SubGraphTest, InducedEdgesAreSubsetOfGlobalEdges) {
  RoadNetwork rn = RingNetwork();
  RTree rtree = BuildSegmentRTree(rn);
  PointSubGraph sg = ExtractPointSubGraph(rn, rtree, {50, 50}, 500.0, 30.0);
  EXPECT_EQ(sg.size(), 5);  // everything is close at delta=500
  // Every local edge maps to a global edge.
  for (auto [lf, lt] : sg.local_edges) {
    const int gf = sg.seg_ids[lf];
    const int gt = sg.seg_ids[lt];
    bool found = false;
    for (auto [f, t] : rn.edges()) found |= (f == gf && t == gt);
    EXPECT_TRUE(found) << gf << "->" << gt;
  }
  // All 6 global edges must appear since all nodes are included.
  EXPECT_EQ(sg.local_edges.size(), 6u);
}

TEST(SubGraphTest, MaxNodesCapsSize) {
  RoadNetwork rn = RingNetwork();
  RTree rtree = BuildSegmentRTree(rn);
  PointSubGraph sg = ExtractPointSubGraph(rn, rtree, {50, 50}, 500.0, 30.0,
                                          /*max_nodes=*/2);
  EXPECT_EQ(sg.size(), 2);
}

TEST(RTreeTest, BatchRadiusQueryMatchesSinglePointQueries) {
  RoadNetwork rn = RingNetwork();
  RTree rtree = BuildSegmentRTree(rn);
  Rng rng(21);
  std::vector<Vec2> points;
  for (int i = 0; i < 64; ++i) {
    points.push_back({rng.Uniform(-150.0, 250.0), rng.Uniform(-150.0, 250.0)});
  }
  auto batched = BatchSegmentsWithinRadius(rn, rtree, points, 80.0);
  ASSERT_EQ(batched.size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    auto single = SegmentsWithinRadius(rn, rtree, points[i], 80.0);
    ASSERT_EQ(batched[i].size(), single.size()) << "point " << i;
    for (size_t k = 0; k < single.size(); ++k) {
      EXPECT_EQ(batched[i][k].seg_id, single[k].seg_id);
      EXPECT_DOUBLE_EQ(batched[i][k].projection.distance,
                       single[k].projection.distance);
    }
  }
}

TEST(NetworkDistanceTest, CappedRowCacheStaysCorrect) {
  RoadNetwork rn = RingNetwork();
  NetworkDistance capped(&rn, /*max_cached_rows=*/2);
  NetworkDistance unbounded(&rn);
  for (int from = 0; from < rn.num_segments(); ++from) {
    for (int to = 0; to < rn.num_segments(); ++to) {
      EXPECT_EQ(capped.StartToStart(from, to), unbounded.StartToStart(from, to))
          << from << "->" << to;
    }
  }
  EXPECT_LE(capped.cached_rows(), 2);
  EXPECT_EQ(unbounded.cached_rows(), rn.num_segments());
}

// One-way lattice: node (i,j) feeds a rightward and an upward street, so
// many pairs are reachable only one way and many not at all — exercising
// both the early-exit and the exhausted-frontier paths of the bounded
// point-to-point search.
RoadNetwork LatticeNetwork(int n) {
  RoadNetwork rn;
  std::vector<std::pair<Vec2, Vec2>> ends;
  const auto add = [&](Vec2 a, Vec2 b) {
    rn.AddSegment({a, b}, RoadLevel::kResidential);
    ends.push_back({a, b});
  };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const Vec2 p{100.0 * i, 100.0 * j};
      if (i + 1 < n) add(p, {100.0 * (i + 1), 100.0 * j});
      if (j + 1 < n) add(p, {100.0 * i, 100.0 * (j + 1)});
    }
  }
  for (size_t a = 0; a < ends.size(); ++a) {
    for (size_t b = 0; b < ends.size(); ++b) {
      if (a != b && ends[a].second.x == ends[b].first.x &&
          ends[a].second.y == ends[b].first.y) {
        rn.AddEdge(static_cast<int>(a), static_cast<int>(b));
      }
    }
  }
  rn.Build();
  return rn;
}

TEST(NetworkDistanceTest, EarlyExitPointToPointMatchesFullRows) {
  // Regression pin for the target-pruned PointToPoint: every answer —
  // reachable, unreachable, and same-segment-backwards — must equal the
  // distance derived from full cached Dijkstra rows.
  RoadNetwork rn = LatticeNetwork(5);
  NetworkDistance bounded(&rn);
  NetworkDistance reference(&rn);
  const int n = rn.num_segments();
  for (int a = 0; a < n; a += 3) {
    for (int b = 0; b < n; b += 2) {
      const double ra = 0.25, rb = 0.75;
      const double got = bounded.PointToPoint(a, ra, b, rb);
      double want;
      if (a == b) {
        want = (rb - ra) * rn.segment(a).length();
      } else {
        const double ss = reference.StartToStart(a, b);
        want = ss == NetworkDistance::kUnreachable
                   ? NetworkDistance::kUnreachable
                   : ss - ra * rn.segment(a).length() +
                         rb * rn.segment(b).length();
      }
      EXPECT_DOUBLE_EQ(got, want) << a << "->" << b;
    }
  }
  EXPECT_GT(bounded.bounded_searches(), 0);
}

TEST(NetworkDistanceTest, RepeatedBoundedMissesPromoteToCachedRow) {
  RoadNetwork rn = RingNetwork();
  NetworkDistance nd(&rn);
  EXPECT_EQ(nd.cached_rows(), 0);
  // First three single-pair queries from source 0 run target-pruned
  // searches without caching a row.
  for (int i = 0; i < 3; ++i) nd.PointToPoint(0, 0.1, 1 + i, 0.5);
  EXPECT_EQ(nd.cached_rows(), 0);
  EXPECT_EQ(nd.bounded_searches(), 3);
  // The fourth miss promotes the source to a full cached row...
  nd.PointToPoint(0, 0.1, 2, 0.5);
  EXPECT_EQ(nd.cached_rows(), 1);
  EXPECT_EQ(nd.bounded_searches(), 3);
  // ...and later queries from it are plain row-cache hits.
  const int64_t hits_before = nd.row_hits();
  EXPECT_DOUBLE_EQ(nd.PointToPoint(0, 0.0, 3, 0.0), 300.0);
  EXPECT_GT(nd.row_hits(), hits_before);
}

TEST(SubGraphTest, LocalIndexOf) {
  RoadNetwork rn = RingNetwork();
  RTree rtree = BuildSegmentRTree(rn);
  PointSubGraph sg = ExtractPointSubGraph(rn, rtree, {50, 5}, 60.0, 30.0);
  EXPECT_EQ(sg.LocalIndexOf(sg.seg_ids[0]), 0);
  EXPECT_EQ(sg.LocalIndexOf(9999), -1);
}

}  // namespace
}  // namespace rntraj
