#ifndef RNTRAJ_TESTS_TEST_UTIL_H_
#define RNTRAJ_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

/// \file test_util.h
/// Shared helpers for unit tests: numerical gradient checking and tensor
/// comparison utilities.

namespace rntraj {
namespace testing_util {

/// Compares analytic gradients (via the autograd tape) against central-
/// difference numerical gradients for a scalar-valued function of `params`.
///
/// `loss_fn` must rebuild its computation graph from the *current* data of the
/// captured parameter tensors on every call. Returns the maximum elementwise
/// discrepancy normalised as |a-n| / max(1, |n|); callers assert it is small.
inline double MaxGradError(const std::function<Tensor()>& loss_fn,
                           std::vector<Tensor> params, float eps = 5e-3f) {
  // Analytic pass.
  for (auto& p : params) p.ZeroGrad();
  Tensor loss = loss_fn();
  EXPECT_EQ(loss.size(), 1);
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(params.size());
  for (auto& p : params) analytic.push_back(p.grad());

  // Numerical pass (no tape).
  double worst = 0.0;
  NoGradGuard guard;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    auto& data = params[pi].data();
    for (size_t i = 0; i < data.size(); ++i) {
      const float saved = data[i];
      data[i] = saved + eps;
      const double lp = loss_fn().item();
      data[i] = saved - eps;
      const double lm = loss_fn().item();
      data[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double err = std::abs(analytic[pi][i] - numeric) /
                         std::max(1.0, std::abs(numeric));
      worst = std::max(worst, err);
    }
  }
  return worst;
}

/// Asserts two float vectors are elementwise close.
inline void ExpectVectorNear(const std::vector<float>& got,
                             const std::vector<float>& want, float tol = 1e-5f) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol) << "at index " << i;
  }
}

}  // namespace testing_util
}  // namespace rntraj

#endif  // RNTRAJ_TESTS_TEST_UTIL_H_
