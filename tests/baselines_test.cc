#include <gtest/gtest.h>

#include "src/baselines/kalman.h"
#include "src/baselines/two_stage.h"
#include "src/baselines/zoo.h"
#include "src/common/random.h"
#include "src/core/trainer.h"
#include "src/eval/metrics.h"
#include "src/sim/presets.h"

namespace rntraj {
namespace {

class BaselinesFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig cfg = ChengduConfig(BenchScale::kTiny);
    cfg.num_train = 8;
    cfg.num_val = 2;
    cfg.num_test = 4;
    cfg.sim.len_rho = 24;
    dataset_ = BuildDataset(cfg).release();
    ctx_ = new ModelContext(ModelContext::FromDataset(*dataset_));
  }
  static void TearDownTestSuite() {
    delete ctx_;
    delete dataset_;
    dataset_ = nullptr;
    ctx_ = nullptr;
  }

  static Dataset* dataset_;
  static ModelContext* ctx_;
};

Dataset* BaselinesFixture::dataset_ = nullptr;
ModelContext* BaselinesFixture::ctx_ = nullptr;

TEST(KalmanTest, SmoothsTowardStraightLine) {
  Rng rng(5);
  // Truth: straight motion x = 10 t, y = 0; noisy observations.
  std::vector<Vec2> truth;
  std::vector<Vec2> noisy;
  for (int t = 0; t < 30; ++t) {
    truth.push_back({10.0 * t, 0.0});
    noisy.push_back({10.0 * t + rng.Gaussian(0, 20), rng.Gaussian(0, 20)});
  }
  auto smoothed = KalmanSmooth(noisy, 1.0);
  ASSERT_EQ(smoothed.size(), truth.size());
  double noisy_err = 0;
  double smooth_err = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    noisy_err += Distance(noisy[i], truth[i]);
    smooth_err += Distance(smoothed[i], truth[i]);
  }
  EXPECT_LT(smooth_err, noisy_err * 0.8);
}

TEST(KalmanTest, ShortInputsPassThrough) {
  std::vector<Vec2> one = {{5, 5}};
  EXPECT_EQ(KalmanSmooth(one, 1.0).size(), 1u);
  EXPECT_DOUBLE_EQ(KalmanSmooth(one, 1.0)[0].x, 5);
}

TEST(KalmanTest, ConstantInputStaysPut) {
  std::vector<Vec2> obs(10, Vec2{42.0, -7.0});
  auto s = KalmanSmooth(obs, 1.0);
  for (const auto& p : s) {
    EXPECT_NEAR(p.x, 42.0, 1.0);
    EXPECT_NEAR(p.y, -7.0, 1.0);
  }
}

TEST_F(BaselinesFixture, ZooListsTableThreeOrder) {
  auto keys = TableThreeMethodKeys();
  ASSERT_EQ(keys.size(), 9u);
  EXPECT_EQ(keys.front(), "linear_hmm");
  EXPECT_EQ(keys.back(), "rntrajrec");
}

TEST_F(BaselinesFixture, ZooRejectsUnknownKey) {
  EXPECT_DEATH(MakeModel("nope", *ctx_, 8), "unknown method");
}

TEST_F(BaselinesFixture, EveryMethodProducesWellFormedRecovery) {
  for (const auto& key : TableThreeMethodKeys()) {
    SeedGlobalRng(55);
    auto model = MakeModel(key, *ctx_, 16);
    EXPECT_EQ(model->IsLearned(), key != "linear_hmm") << key;
    model->SetTrainingMode(false);
    model->BeginInference();
    const auto& s = dataset_->test()[0];
    MatchedTrajectory rec = model->Recover(s);
    ASSERT_EQ(rec.size(), s.truth.size()) << key;
    for (const auto& p : rec.points) {
      EXPECT_GE(p.seg_id, 0) << key;
      EXPECT_LT(p.seg_id, ctx_->rn->num_segments()) << key;
      EXPECT_GE(p.ratio, 0.0) << key;
      EXPECT_LT(p.ratio, 1.0) << key;
    }
  }
}

TEST_F(BaselinesFixture, LearnedMethodsHaveFiniteLossAndGradients) {
  for (const auto& key : TableThreeMethodKeys()) {
    if (key == "linear_hmm") continue;
    SeedGlobalRng(56);
    auto model = MakeModel(key, *ctx_, 16);
    model->SetTrainingMode(true);
    model->BeginBatch();
    Tensor loss = model->TrainLoss(dataset_->train()[0]);
    ASSERT_TRUE(loss.defined()) << key;
    EXPECT_TRUE(std::isfinite(loss.item())) << key;
    loss.Backward();
    auto params = model->Parameters();
    double norm = 0;
    for (auto& p : params) {
      for (float g : p.grad()) norm += std::abs(g);
    }
    EXPECT_GT(norm, 0.0) << key;
    EXPECT_TRUE(std::isfinite(norm)) << key;
  }
}

TEST_F(BaselinesFixture, TrainingImprovesMTrajRec) {
  SeedGlobalRng(57);
  auto model = MakeModel("mtrajrec", *ctx_, 16);
  TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 4;
  tcfg.lr = 3e-3f;
  TrainStats stats = TrainModel(*model, dataset_->train(), tcfg);
  ASSERT_EQ(stats.epoch_losses.size(), 4u);
  EXPECT_LT(stats.epoch_losses.back(), stats.epoch_losses.front());
}

TEST_F(BaselinesFixture, TrainingImprovesDhtr) {
  SeedGlobalRng(58);
  auto model = MakeModel("dhtr_hmm", *ctx_, 16);
  TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.batch_size = 4;
  tcfg.lr = 3e-3f;
  TrainStats stats = TrainModel(*model, dataset_->train(), tcfg);
  EXPECT_LT(stats.epoch_losses.back(), stats.epoch_losses.front());
}

TEST_F(BaselinesFixture, LinearHmmNeedsNoTraining) {
  auto model = MakeModel("linear_hmm", *ctx_, 16);
  TrainConfig tcfg;
  TrainStats stats = TrainModel(*model, dataset_->train(), tcfg);
  EXPECT_TRUE(stats.epoch_losses.empty());
  EXPECT_EQ(model->ParameterCount(), 0);
  // And it still recovers reasonably: observed points pin it to the road.
  auto preds = RecoverAll(*model, dataset_->test());
  auto truths = TruthsOf(dataset_->test());
  RecoveryMetrics m = EvaluateRecovery(dataset_->netdist(), preds, truths);
  EXPECT_GT(m.accuracy, 0.05);
  EXPECT_LT(m.mae, 2000.0);
}

TEST_F(BaselinesFixture, ParameterCountsDifferAcrossMethods) {
  auto a = MakeModel("mtrajrec", *ctx_, 16);
  auto b = MakeModel("rntrajrec", *ctx_, 16);
  EXPECT_GT(b->ParameterCount(), a->ParameterCount());
}

}  // namespace
}  // namespace rntraj
