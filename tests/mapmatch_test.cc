#include "src/mapmatch/hmm.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/sim/city.h"
#include "src/sim/simulate.h"

namespace rntraj {
namespace {

struct World {
  RoadNetwork rn;
  RTree rtree;
  NetworkDistance nd;

  explicit World(const CityConfig& cfg)
      : rn(GenerateCity(cfg)), rtree(BuildSegmentRTree(rn)), nd(&rn) {}
};

CityConfig TestCity(bool elevated = false) {
  CityConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.spacing = 120.0;
  cfg.elevated_corridor = elevated;
  cfg.seed = 17;
  return cfg;
}

RawTrajectory Observe(const World& w, const MatchedTrajectory& truth,
                      double sigma, uint64_t seed) {
  GpsNoiseConfig noise;
  noise.sigma = sigma;
  noise.elevated_extra_sigma = 0.0;
  Rng rng(seed);
  return MakeRawObservations(w.rn, truth, noise, rng);
}

TEST(HmmTest, PerfectObservationsAreMatchedNearlyPerfectly) {
  World w(TestCity());
  SimulatorConfig scfg;
  scfg.len_rho = 40;
  TrajectorySimulator sim(&w.rn, scfg);
  Rng rng(1);
  MatchedTrajectory truth = sim.Sample(rng);
  RawTrajectory exact = Observe(w, truth, /*sigma=*/0.01, 2);
  MatchedTrajectory matched = HmmMapMatch(w.rn, w.rtree, w.nd, exact);
  ASSERT_EQ(matched.size(), truth.size());
  int correct = 0;
  for (int i = 0; i < truth.size(); ++i) {
    correct += matched.points[i].seg_id == truth.points[i].seg_id;
  }
  // Noise-free points can still be ambiguous at intersections (ratio 0 of the
  // next segment == ratio 1 of the previous), so allow a small slack.
  EXPECT_GE(correct, truth.size() * 9 / 10);
}

TEST(HmmTest, NoisyObservationsRecoverMostSegments) {
  World w(TestCity());
  SimulatorConfig scfg;
  scfg.len_rho = 40;
  TrajectorySimulator sim(&w.rn, scfg);
  Rng rng(3);
  int correct = 0;
  int total = 0;
  for (int rep = 0; rep < 4; ++rep) {
    MatchedTrajectory truth = sim.Sample(rng);
    RawTrajectory noisy = Observe(w, truth, /*sigma=*/12.0, 100 + rep);
    MatchedTrajectory matched = HmmMapMatch(w.rn, w.rtree, w.nd, noisy);
    for (int i = 0; i < truth.size(); ++i) {
      correct += matched.points[i].seg_id == truth.points[i].seg_id;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.6);
}

TEST(HmmTest, BeatsNearestSegmentOnNoisyData) {
  World w(TestCity());
  SimulatorConfig scfg;
  scfg.len_rho = 48;
  TrajectorySimulator sim(&w.rn, scfg);
  Rng rng(7);
  int hmm_correct = 0;
  int nearest_correct = 0;
  int total = 0;
  for (int rep = 0; rep < 4; ++rep) {
    MatchedTrajectory truth = sim.Sample(rng);
    RawTrajectory noisy = Observe(w, truth, /*sigma=*/18.0, 200 + rep);
    MatchedTrajectory matched = HmmMapMatch(w.rn, w.rtree, w.nd, noisy);
    for (int i = 0; i < truth.size(); ++i) {
      hmm_correct += matched.points[i].seg_id == truth.points[i].seg_id;
      const auto near =
          SegmentsWithinRadius(w.rn, w.rtree, noisy.points[i].pos, 60.0);
      nearest_correct += near[0].seg_id == truth.points[i].seg_id;
      ++total;
    }
  }
  // Temporal context must help: HMM >= pointwise nearest-segment matching.
  EXPECT_GE(hmm_correct, nearest_correct);
}

TEST(HmmTest, OutputPreservesTimestamps) {
  World w(TestCity());
  RawTrajectory traj;
  traj.points.push_back({{10, 10}, 5.0});
  traj.points.push_back({{100, 15}, 17.0});
  MatchedTrajectory m = HmmMapMatch(w.rn, w.rtree, w.nd, traj);
  ASSERT_EQ(m.size(), 2);
  EXPECT_DOUBLE_EQ(m.points[0].t, 5.0);
  EXPECT_DOUBLE_EQ(m.points[1].t, 17.0);
  for (const auto& p : m.points) {
    EXPECT_GE(p.seg_id, 0);
    EXPECT_LT(p.seg_id, w.rn.num_segments());
    EXPECT_GE(p.ratio, 0.0);
    EXPECT_LT(p.ratio, 1.0);
  }
}

TEST(HmmTest, EmptyAndSinglePoint) {
  World w(TestCity());
  EXPECT_TRUE(HmmMapMatch(w.rn, w.rtree, w.nd, RawTrajectory{}).empty());
  RawTrajectory one;
  one.points.push_back({{50, 50}, 0.0});
  MatchedTrajectory m = HmmMapMatch(w.rn, w.rtree, w.nd, one);
  EXPECT_EQ(m.size(), 1);
}

TEST(HmmTest, SurvivesTeleportingPoints) {
  // Two points far apart with a tiny candidate radius force a Viterbi break;
  // matching must still return a result for every point.
  World w(TestCity());
  RawTrajectory traj;
  traj.points.push_back({{0, 0}, 0.0});
  traj.points.push_back({{560, 560}, 10.0});
  traj.points.push_back({{0, 560}, 20.0});
  HmmConfig cfg;
  cfg.candidate_radius = 30.0;
  MatchedTrajectory m = HmmMapMatch(w.rn, w.rtree, w.nd, traj, cfg);
  ASSERT_EQ(m.size(), 3);
}

}  // namespace
}  // namespace rntraj
