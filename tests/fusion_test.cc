// The PR 8 fusion pass and bf16 storage mode. Three layers of proof:
//
//  * op layer — every fused kernel gradchecks (including the masked/padded
//    and empty-row edge cases), matches its unfused chain within FMA
//    rounding (~1e-6; the softmax family is bit-identical by construction),
//    and the off-path (no FusionScope) emits the exact pre-PR8 op chain;
//  * bf16 layer — round-to-nearest-even property tests (ties, subnormals,
//    +-inf/NaN passthrough), straight-through gradients, scope gating;
//  * model layer — a full RnTrajRec recover with fusion on returns the same
//    segments as fusion off (ratios within 1e-5), and bf16 activations keep
//    segments unchanged on the tiny workload within a documented ratio bound.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "src/common/random.h"
#include "src/core/rntrajrec.h"
#include "src/core/trainer.h"
#include "src/nn/norm.h"
#include "src/nn/transformer.h"
#include "src/sim/presets.h"
#include "src/tensor/bfloat16.h"
#include "src/tensor/fusion.h"
#include "src/tensor/ops.h"
#include "src/tensor/padded_batch.h"
#include "tests/test_util.h"

namespace rntraj {
namespace {

using testing_util::MaxGradError;

constexpr double kTol = 2e-2;

Tensor SmoothLoss(const Tensor& t) { return MeanAll(Mul(t, t)); }

// ---------------------------------------------------------------- gradcheck

TEST(FusionGradCheck, BiasActRowRelu) {
  SeedGlobalRng(801);
  fusion::FusionScope scope;
  Tensor x = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({4}, 1.0f, true);
  EXPECT_LT(MaxGradError(
                [&] {
                  return SmoothLoss(
                      fusion::BiasAct(x, b, fusion::Act::kRelu));
                },
                {x, b}),
            kTol);
}

TEST(FusionGradCheck, BiasActRowSigmoid) {
  SeedGlobalRng(802);
  fusion::FusionScope scope;
  Tensor x = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({4}, 1.0f, true);
  EXPECT_LT(MaxGradError(
                [&] {
                  return SmoothLoss(
                      fusion::BiasAct(x, b, fusion::Act::kSigmoid));
                },
                {x, b}),
            kTol);
}

TEST(FusionGradCheck, BiasActRowTanh) {
  SeedGlobalRng(803);
  fusion::FusionScope scope;
  Tensor x = Tensor::Randn({2, 5}, 1.0f, true);
  Tensor b = Tensor::Randn({5}, 1.0f, true);
  EXPECT_LT(MaxGradError(
                [&] {
                  return SmoothLoss(
                      fusion::BiasAct(x, b, fusion::Act::kTanh));
                },
                {x, b}),
            kTol);
}

TEST(FusionGradCheck, BiasActRowLeakyRelu) {
  SeedGlobalRng(804);
  fusion::FusionScope scope;
  Tensor x = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor b = Tensor::Randn({4}, 1.0f, true);
  EXPECT_LT(MaxGradError(
                [&] {
                  return SmoothLoss(
                      fusion::BiasAct(x, b, fusion::Act::kLeakyRelu, 0.2f));
                },
                {x, b}),
            kTol);
}

// The GRL gated-fusion pattern: an x-shaped "bias" that carries gradient.
TEST(FusionGradCheck, BiasActSameShapeSigmoid) {
  SeedGlobalRng(805);
  fusion::FusionScope scope;
  Tensor x = Tensor::Randn({4, 3}, 1.0f, true);
  Tensor b = Tensor::Randn({4, 3}, 1.0f, true);
  EXPECT_LT(MaxGradError(
                [&] {
                  return SmoothLoss(
                      fusion::BiasAct(x, b, fusion::Act::kSigmoid));
                },
                {x, b}),
            kTol);
}

TEST(FusionGradCheck, BiasActNoBiasTanh) {
  SeedGlobalRng(806);
  fusion::FusionScope scope;
  Tensor x = Tensor::Randn({3, 4}, 1.0f, true);
  EXPECT_LT(MaxGradError(
                [&] {
                  return SmoothLoss(
                      fusion::BiasAct(x, Tensor(), fusion::Act::kTanh));
                },
                {x}),
            kTol);
}

TEST(FusionGradCheck, ResidualLayerNorm) {
  SeedGlobalRng(807);
  fusion::FusionScope scope;
  Tensor a = Tensor::Randn({3, 6}, 1.0f, true);
  Tensor b = Tensor::Randn({3, 6}, 1.0f, true);
  Tensor gamma = Tensor::Randn({6}, 1.0f, true);
  Tensor beta = Tensor::Randn({6}, 1.0f, true);
  EXPECT_LT(MaxGradError(
                [&] {
                  return SmoothLoss(
                      fusion::ResidualLayerNorm(a, b, gamma, beta, 1e-5f));
                },
                {a, b, gamma, beta}),
            kTol);
}

// Masked overload: padding rows (mask 0) must carry no gradient at all.
TEST(FusionGradCheck, ResidualLayerNormMasked) {
  SeedGlobalRng(808);
  fusion::FusionScope scope;
  Tensor a = Tensor::Randn({4, 6}, 1.0f, true);
  Tensor b = Tensor::Randn({4, 6}, 1.0f, true);
  Tensor gamma = Tensor::Randn({6}, 1.0f, true);
  Tensor beta = Tensor::Randn({6}, 1.0f, true);
  Tensor mask = Tensor::FromVector({4, 1}, {1.0f, 1.0f, 0.0f, 1.0f});
  EXPECT_LT(
      MaxGradError(
          [&] {
            return SmoothLoss(
                fusion::ResidualLayerNorm(a, b, gamma, beta, 1e-5f, mask));
          },
          {a, b, gamma, beta}),
      kTol);

  // And the padding row's inputs really get zero gradient.
  a.ZeroGrad();
  b.ZeroGrad();
  SmoothLoss(fusion::ResidualLayerNorm(a, b, gamma, beta, 1e-5f, mask))
      .Backward();
  for (int j = 0; j < 6; ++j) {
    EXPECT_EQ(a.grad()[2 * 6 + j], 0.0f);
    EXPECT_EQ(b.grad()[2 * 6 + j], 0.0f);
  }
}

TEST(FusionGradCheck, ScaleSoftmax) {
  SeedGlobalRng(809);
  fusion::FusionScope scope;
  Tensor x = Tensor::Randn({3, 5}, 1.0f, true);
  EXPECT_LT(MaxGradError(
                [&] { return SmoothLoss(fusion::ScaleSoftmax(x, 0.37f)); },
                {x}),
            kTol);
}

TEST(FusionGradCheck, ScaleMaskedSoftmax) {
  SeedGlobalRng(810);
  fusion::FusionScope scope;
  Tensor x = Tensor::Randn({3, 4}, 1.0f, true);
  Tensor mask = Tensor::Zeros({3, 4});
  mask.data()[1] = -1e9f;  // forbid one position
  mask.data()[7] = -1e9f;
  EXPECT_LT(
      MaxGradError(
          [&] { return SmoothLoss(fusion::ScaleMaskedSoftmax(x, 0.5f, mask)); },
          {x}),
      kTol);
}

// Length-masked variant with an empty (valid == 0) row.
TEST(FusionGradCheck, ScaleLengthMaskedSoftmaxWithEmptyRow) {
  SeedGlobalRng(811);
  fusion::FusionScope scope;
  Tensor x = Tensor::Randn({4, 5}, 1.0f, true);
  const std::vector<int> valid = {5, 3, 0, 1};
  EXPECT_LT(
      MaxGradError(
          [&] {
            return SmoothLoss(fusion::ScaleLengthMaskedSoftmax(x, 0.7f, valid));
          },
          {x}),
      kTol);
  // Empty row: output all zero.
  NoGradGuard guard;
  Tensor y = fusion::ScaleLengthMaskedSoftmax(x, 0.7f, valid);
  for (int j = 0; j < 5; ++j) EXPECT_EQ(y.at(2, j), 0.0f);
}

TEST(FusionGradCheck, ScaleShiftRows) {
  SeedGlobalRng(812);
  fusion::FusionScope scope;
  Tensor a = Tensor::Randn({3, 6}, 1.0f, true);
  Tensor gamma = Tensor::Randn({6}, 1.0f, true);
  Tensor beta = Tensor::Randn({6}, 1.0f, true);
  EXPECT_LT(MaxGradError(
                [&] {
                  return SmoothLoss(fusion::ScaleShiftRows(a, gamma, beta));
                },
                {a, gamma, beta}),
            kTol);
}

// ------------------------------------------------- fused == unfused values

// Forward equivalence between a fused emission and its fallback chain. The
// softmax family shares the exact kernel pipeline, so it is bit-identical;
// the rest agree within FMA/accumulation-order rounding (~1e-6 on O(1)
// values — the documented fusion bound).
TEST(FusionEquivalence, FusedMatchesUnfusedForward) {
  SeedGlobalRng(820);
  NoGradGuard guard;
  Tensor x = Tensor::Randn({5, 8}, 1.0f);
  Tensor b = Tensor::Randn({8}, 1.0f);
  Tensor a2 = Tensor::Randn({5, 8}, 1.0f);
  Tensor gamma = Tensor::Randn({8}, 1.0f);
  Tensor beta = Tensor::Randn({8}, 1.0f);
  Tensor mask = Tensor::Zeros({5, 8});
  mask.data()[3] = -1e9f;
  const std::vector<int> valid = {8, 5, 0, 8, 2};
  Tensor row_mask = Tensor::FromVector({5, 1}, {1, 1, 0, 1, 1});

  auto run_all = [&] {
    std::vector<Tensor> out;
    out.push_back(fusion::BiasAct(x, b, fusion::Act::kRelu));
    out.push_back(fusion::BiasAct(x, b, fusion::Act::kSigmoid));
    out.push_back(fusion::BiasAct(x, a2, fusion::Act::kTanh));
    out.push_back(fusion::ResidualLayerNorm(x, a2, gamma, beta, 1e-5f));
    out.push_back(
        fusion::ResidualLayerNorm(x, a2, gamma, beta, 1e-5f, row_mask));
    out.push_back(fusion::ScaleSoftmax(x, 0.25f));
    out.push_back(fusion::ScaleMaskedSoftmax(x, 0.25f, mask));
    out.push_back(fusion::ScaleLengthMaskedSoftmax(x, 0.25f, valid));
    out.push_back(fusion::ScaleShiftRows(x, gamma, beta));
    return out;
  };

  std::vector<Tensor> unfused = run_all();  // no scope: fallback chains
  std::vector<Tensor> fused;
  {
    fusion::FusionScope scope;
    fusion::ResetCounters();
    fused = run_all();
    EXPECT_EQ(fusion::Counters().Total(), 9);
  }
  ASSERT_EQ(unfused.size(), fused.size());
  for (size_t k = 0; k < fused.size(); ++k) {
    ASSERT_EQ(unfused[k].size(), fused[k].size()) << "op " << k;
    for (size_t i = 0; i < fused[k].data().size(); ++i) {
      EXPECT_NEAR(unfused[k].data()[i], fused[k].data()[i], 1e-6)
          << "op " << k << " at " << i;
    }
  }
}

// The fused softmax family runs the same RowMax/ExpRowMinusMax pipeline on
// the same values as the chain it replaces — pin bitwise identity.
TEST(FusionEquivalence, ScaleSoftmaxBitIdenticalToChain) {
  SeedGlobalRng(821);
  NoGradGuard guard;
  Tensor x = Tensor::Randn({4, 7}, 2.0f);
  Tensor chain = SoftmaxRows(MulScalar(x, 0.3f));
  fusion::FusionScope scope;
  Tensor fused = fusion::ScaleSoftmax(x, 0.3f);
  for (size_t i = 0; i < chain.data().size(); ++i) {
    EXPECT_EQ(chain.data()[i], fused.data()[i]) << "at " << i;
  }
}

// Without a FusionScope every entry point must emit the EXACT pre-PR8 op
// chain: bitwise-identical outputs and zero fused-kernel emissions.
TEST(FusionEquivalence, OffPathIsBitIdenticalAndEmitsNothing)  {
  SeedGlobalRng(822);
  NoGradGuard guard;
  Tensor x = Tensor::Randn({4, 6}, 1.0f);
  Tensor b = Tensor::Randn({6}, 1.0f);
  fusion::ResetCounters();
  Tensor via_fusion = fusion::BiasAct(x, b, fusion::Act::kRelu);
  Tensor direct = Relu(AddRowBroadcast(x, b));
  EXPECT_EQ(fusion::Counters().Total(), 0);
  for (size_t i = 0; i < direct.data().size(); ++i) {
    EXPECT_EQ(direct.data()[i], via_fusion.data()[i]);
  }
}

// FusionScope(false) must be a strict no-op: an outer enabled scope stays
// enabled across it (the config-driven call sites rely on this).
TEST(FusionScopeTest, DisabledScopeDoesNotMaskOuterEnable) {
  EXPECT_FALSE(fusion::Enabled());
  fusion::FusionScope outer;
  EXPECT_TRUE(fusion::Enabled());
  {
    fusion::FusionScope inner(false);
    EXPECT_TRUE(fusion::Enabled());
  }
  EXPECT_TRUE(fusion::Enabled());
}

// Masked residual LayerNorm: padding rows are exactly zero even though the
// affine shift beta is non-zero.
TEST(FusionEquivalence, MaskedResidualLayerNormKeepsPaddingRowsZero) {
  SeedGlobalRng(823);
  NoGradGuard guard;
  fusion::FusionScope scope;
  Tensor a = Tensor::Randn({3, 4}, 1.0f);
  Tensor b = Tensor::Randn({3, 4}, 1.0f);
  Tensor gamma = Tensor::Full({4}, 1.5f);
  Tensor beta = Tensor::Full({4}, 0.7f);  // non-zero shift
  Tensor mask = Tensor::FromVector({3, 1}, {1.0f, 0.0f, 1.0f});
  Tensor y = fusion::ResidualLayerNorm(a, b, gamma, beta, 1e-5f, mask);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(y.at(1, j), 0.0f);
}

// nn-layer equivalence: a whole transformer encoder layer, per-sample and
// padded-batch, fusion on vs off.
TEST(FusionEquivalence, TransformerEncoderLayerOnVsOff) {
  SeedGlobalRng(824);
  NoGradGuard guard;
  TransformerEncoderLayer layer(8, 2, 16);
  Tensor x = Tensor::Randn({6, 8}, 1.0f);
  Tensor off = layer.Forward(x);
  Tensor on;
  {
    fusion::FusionScope scope;
    fusion::ResetCounters();
    on = layer.Forward(x);
    EXPECT_GT(fusion::Counters().Total(), 0);
  }
  for (size_t i = 0; i < off.data().size(); ++i) {
    EXPECT_NEAR(off.data()[i], on.data()[i], 1e-5) << "at " << i;
  }

  // Padded-batch path, ragged lengths.
  Tensor flat = Tensor::Randn({7, 8}, 1.0f);
  PaddedBatch pb = PaddedBatch::FromFlat(flat, {4, 3});
  const Tensor row_mask = pb.RowMask();
  Tensor off_b = layer.ForwardBatched(pb, row_mask).data;
  Tensor on_b;
  {
    fusion::FusionScope scope;
    on_b = layer.ForwardBatched(pb, row_mask).data;
  }
  for (size_t i = 0; i < off_b.data().size(); ++i) {
    EXPECT_NEAR(off_b.data()[i], on_b.data()[i], 1e-5) << "at " << i;
  }
}

// ------------------------------------------------------------------- bf16

TEST(Bf16Test, RoundToNearestEvenTies) {
  // Low half exactly 0x8000 is a tie: round to the even 16-bit result.
  const float tie_down = std::bit_cast<float>(0x3F808000u);  // keep 0x3F80
  EXPECT_EQ(internal::Bf16Bits(tie_down), 0x3F80u);
  const float tie_up = std::bit_cast<float>(0x3F818000u);  // 0x3F81 is odd
  EXPECT_EQ(internal::Bf16Bits(tie_up), 0x3F82u);
  // Just above the tie always rounds up.
  EXPECT_EQ(internal::Bf16Bits(std::bit_cast<float>(0x3F808001u)), 0x3F81u);
  // Just below always rounds down.
  EXPECT_EQ(internal::Bf16Bits(std::bit_cast<float>(0x3F807FFFu)), 0x3F80u);
}

TEST(Bf16Test, InfAndNanPassthrough) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(internal::Bf16Round(inf), inf);
  EXPECT_EQ(internal::Bf16Round(-inf), -inf);
  // NaN stays NaN — rounding must never promote it to an infinity.
  EXPECT_TRUE(std::isnan(internal::Bf16Round(std::nanf(""))));
  const float payload_nan = std::bit_cast<float>(0x7F800001u);  // signalling
  EXPECT_TRUE(std::isnan(internal::Bf16Round(payload_nan)));
  // Largest finite float must not round to inf bits blindly — it does
  // overflow to inf in bf16 (mantissa rounds up past the exponent cap),
  // which is the correct RNE result, but a NaN never may.
  EXPECT_TRUE(std::isinf(internal::Bf16Round(std::numeric_limits<float>::max())));
}

TEST(Bf16Test, SubnormalsCarryCorrectly) {
  // Largest fp32 subnormal rounds up into the smallest normal (the rounding
  // increment carries through the exponent field).
  const float max_subnormal = std::bit_cast<float>(0x007FFFFFu);
  EXPECT_EQ(internal::Bf16Bits(max_subnormal), 0x0080u);
  // Smallest subnormal rounds to +0.
  const float min_subnormal = std::bit_cast<float>(0x00000001u);
  EXPECT_EQ(internal::Bf16Bits(min_subnormal), 0x0000u);
  // Sign is preserved on the zero result.
  EXPECT_EQ(internal::Bf16Bits(std::bit_cast<float>(0x80000001u)), 0x8000u);
}

TEST(Bf16Test, RoundTripIdempotentAndBounded) {
  SeedGlobalRng(830);
  Tensor x = Tensor::Randn({64}, 3.0f);
  for (float v : x.data()) {
    const float r1 = internal::Bf16Round(v);
    EXPECT_EQ(internal::Bf16Round(r1), r1);  // bf16 values are fixed points
    // RNE error bound: half an ulp at 8 mantissa bits (2^-8 relative).
    EXPECT_LE(std::abs(r1 - v), std::abs(v) * (1.0f / 256.0f) + 1e-38f);
  }
  // BFloat16 type round-trips through its bit representation.
  BFloat16 h(1.5f);
  EXPECT_EQ(h.ToFloat(), 1.5f);
  EXPECT_EQ(BFloat16(h.ToFloat()), h);
}

TEST(Bf16Test, QuantizeStraightThroughGradient) {
  SeedGlobalRng(831);
  Tensor x = Tensor::Randn({3, 4}, 1.0f, true);
  SumAll(QuantizeBf16(x)).Backward();
  for (float g : x.grad()) EXPECT_EQ(g, 1.0f);  // d(quantize)/dx == 1 (STE)
}

TEST(Bf16Test, ScopeGatesMaybeQuantize) {
  Tensor x = Tensor::Randn({8}, 1.0f);
  EXPECT_FALSE(Bf16Enabled());
  // Outside a scope: the identity — same impl, not merely equal values.
  Tensor same = MaybeQuantizeBf16(x);
  EXPECT_EQ(same.impl().get(), x.impl().get());
  {
    Bf16Scope scope;
    EXPECT_TRUE(Bf16Enabled());
    Tensor q = MaybeQuantizeBf16(x);
    EXPECT_NE(q.impl().get(), x.impl().get());
    for (size_t i = 0; i < q.data().size(); ++i) {
      EXPECT_EQ(q.data()[i], internal::Bf16Round(x.data()[i]));
    }
    Bf16Scope inner(false);  // must not mask the outer enable
    EXPECT_TRUE(Bf16Enabled());
  }
  EXPECT_FALSE(Bf16Enabled());
}

// ------------------------------------------------------------ model layer

class FusionModelFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig cfg = ChengduConfig(BenchScale::kTiny);
    cfg.num_train = 4;
    cfg.num_val = 1;
    cfg.num_test = 3;
    cfg.sim.len_rho = 24;
    dataset_ = BuildDataset(cfg).release();
    ctx_ = new ModelContext(ModelContext::FromDataset(*dataset_));
  }
  static void TearDownTestSuite() {
    delete ctx_;
    delete dataset_;
    dataset_ = nullptr;
    ctx_ = nullptr;
  }

  static RnTrajRecConfig SmallConfig() {
    RnTrajRecConfig cfg;
    cfg.dim = 16;
    cfg.delta = 250.0;
    cfg.max_subgraph_nodes = 16;
    cfg.gridgnn.gnn_layers = 1;
    cfg.gridgnn.heads = 2;
    cfg.gpsformer.blocks = 1;
    cfg.gpsformer.heads = 2;
    cfg.gpsformer.grl.heads = 2;
    cfg.Sync();
    return cfg;
  }

  static Dataset* dataset_;
  static ModelContext* ctx_;
};

Dataset* FusionModelFixture::dataset_ = nullptr;
ModelContext* FusionModelFixture::ctx_ = nullptr;

// Same weights, same sample: fusion on returns the same segments as fusion
// off, ratios within the documented ~1e-6-per-op bound (1e-5 end to end).
TEST_F(FusionModelFixture, RecoverFusionOnMatchesOff) {
  SeedGlobalRng(840);
  RnTrajRecConfig cfg = SmallConfig();
  RnTrajRec model(cfg, *ctx_);
  model.SetTrainingMode(false);
  model.BeginInference();
  for (const auto& s : dataset_->test()) {
    MatchedTrajectory off = model.Recover(s);
    // Flip the knob on the same instance via a scope (the config knob
    // installs exactly this scope at every entry point).
    MatchedTrajectory on;
    {
      fusion::FusionScope scope;
      on = model.Recover(s);
    }
    ASSERT_EQ(off.points.size(), on.points.size());
    for (size_t j = 0; j < off.points.size(); ++j) {
      EXPECT_EQ(off.points[j].seg_id, on.points[j].seg_id) << "point " << j;
      EXPECT_NEAR(off.points[j].ratio, on.points[j].ratio, 1e-5)
          << "point " << j;
    }
  }
}

// bf16 activations: segments unchanged on the tiny workload; ratios within
// the looser documented bound (bf16 has ~2-3 significant digits, but the
// decoder's ratio head saturates through a sigmoid — 1e-2 holds easily).
TEST_F(FusionModelFixture, RecoverBf16KeepsSegments) {
  SeedGlobalRng(841);
  RnTrajRecConfig cfg = SmallConfig();
  RnTrajRec model(cfg, *ctx_);
  model.SetTrainingMode(false);
  model.BeginInference();
  for (const auto& s : dataset_->test()) {
    MatchedTrajectory fp32 = model.Recover(s);
    MatchedTrajectory bf16;
    {
      Bf16Scope scope;
      bf16 = model.Recover(s);
    }
    ASSERT_EQ(fp32.points.size(), bf16.points.size());
    for (size_t j = 0; j < fp32.points.size(); ++j) {
      EXPECT_EQ(fp32.points[j].seg_id, bf16.points[j].seg_id) << "point " << j;
      EXPECT_NEAR(fp32.points[j].ratio, bf16.points[j].ratio, 1e-2)
          << "point " << j;
    }
  }
}

// The config knobs themselves: a model built with fuse_elementwise actually
// emits fused kernels during Recover, and one without emits none.
TEST_F(FusionModelFixture, ConfigKnobInstallsScope) {
  SeedGlobalRng(842);
  RnTrajRecConfig cfg = SmallConfig();
  cfg.fuse_elementwise = true;
  RnTrajRec model(cfg, *ctx_);
  model.SetTrainingMode(false);
  model.BeginInference();
  fusion::ResetCounters();
  (void)model.Recover(dataset_->test()[0]);
  EXPECT_GT(fusion::Counters().Total(), 0);

  RnTrajRecConfig off_cfg = SmallConfig();
  RnTrajRec off_model(off_cfg, *ctx_);
  off_model.SetTrainingMode(false);
  off_model.BeginInference();
  fusion::ResetCounters();
  (void)off_model.Recover(dataset_->test()[0]);
  EXPECT_EQ(fusion::Counters().Total(), 0);
}

// Training smoke: one TrainLoss backward with both knobs on must produce
// finite loss and gradients (the fused backwards run end to end).
TEST_F(FusionModelFixture, TrainLossWithFusionAndBf16Backpropagates) {
  SeedGlobalRng(843);
  RnTrajRecConfig cfg = SmallConfig();
  cfg.fuse_elementwise = true;
  cfg.bf16_activations = true;
  RnTrajRec model(cfg, *ctx_);
  model.SetTrainingMode(true);
  model.BeginBatch();
  Tensor loss = model.TrainLoss(dataset_->train()[0]);
  EXPECT_TRUE(std::isfinite(loss.item()));
  loss.Backward();
  double grad_norm = 0.0;
  for (auto& p : model.Parameters()) {
    for (float g : p.grad()) grad_norm += std::abs(g);
  }
  EXPECT_TRUE(std::isfinite(grad_norm));
  EXPECT_GT(grad_norm, 0.0);
}

}  // namespace
}  // namespace rntraj
