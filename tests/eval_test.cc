#include "src/eval/metrics.h"

#include <gtest/gtest.h>

#include "src/eval/report.h"
#include "src/sim/city.h"

namespace rntraj {
namespace {

MatchedTrajectory FromSegments(const std::vector<int>& segs) {
  MatchedTrajectory t;
  for (size_t i = 0; i < segs.size(); ++i) {
    t.points.push_back({segs[i], 0.25, static_cast<double>(i)});
  }
  return t;
}

TEST(PathScoreTest, PerfectAndDisjoint) {
  PathScore perfect = ScoreTravelPath({1, 2, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(perfect.recall, 1.0);
  EXPECT_DOUBLE_EQ(perfect.precision, 1.0);
  EXPECT_DOUBLE_EQ(perfect.f1, 1.0);
  PathScore none = ScoreTravelPath({1, 2}, {3, 4});
  EXPECT_DOUBLE_EQ(none.recall, 0.0);
  EXPECT_DOUBLE_EQ(none.f1, 0.0);
}

TEST(PathScoreTest, PartialOverlapMatchesHandCount) {
  // truth {1,2,3,4}, pred {2,4,5}: common 2 -> R=0.5, P=2/3.
  PathScore s = ScoreTravelPath({1, 2, 3, 4}, {2, 4, 5});
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_NEAR(s.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.f1, 2 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0 / 3.0), 1e-12);
}

TEST(PathScoreTest, SetSemanticsIgnoreRepeats) {
  PathScore s = ScoreTravelPath({1, 1, 2}, {1, 2, 2, 1});
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
}

class MetricsFixture : public ::testing::Test {
 protected:
  MetricsFixture() : rn_(MakeNetwork()), nd_(&rn_) {}

  static RoadNetwork MakeNetwork() {
    // Straight two-segment road: 0: (0,0)-(100,0), 1: (100,0)-(200,0).
    RoadNetwork rn;
    rn.AddSegment({{0, 0}, {100, 0}}, RoadLevel::kResidential);
    rn.AddSegment({{100, 0}, {200, 0}}, RoadLevel::kResidential);
    rn.AddEdge(0, 1);
    rn.Build();
    return rn;
  }

  RoadNetwork rn_;
  NetworkDistance nd_;
};

TEST_F(MetricsFixture, PerfectPredictionIsZeroError) {
  auto truth = FromSegments({0, 0, 1, 1});
  RecoveryMetrics m = EvaluateRecovery(nd_, {truth}, {truth});
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.rmse, 0.0);
  EXPECT_EQ(m.num_trajectories, 1);
}

TEST_F(MetricsFixture, MaeMatchesHandComputedNetworkDistance) {
  MatchedTrajectory truth;
  truth.points.push_back({0, 0.25, 0.0});
  MatchedTrajectory pred;
  pred.points.push_back({0, 0.75, 0.0});
  RecoveryMetrics m = EvaluateRecovery(nd_, {pred}, {truth});
  // 50 meters along the segment.
  EXPECT_DOUBLE_EQ(m.mae, 50.0);
  EXPECT_DOUBLE_EQ(m.rmse, 50.0);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);  // same segment
}

TEST_F(MetricsFixture, RmseWeighsOutliersMore) {
  MatchedTrajectory truth;
  truth.points.push_back({0, 0.0, 0.0});
  truth.points.push_back({0, 0.0, 1.0});
  MatchedTrajectory pred;
  pred.points.push_back({0, 0.1, 0.0});   // 10 m
  pred.points.push_back({0, 0.9, 1.0});   // 90 m
  RecoveryMetrics m = EvaluateRecovery(nd_, {pred}, {truth});
  EXPECT_DOUBLE_EQ(m.mae, 50.0);
  EXPECT_NEAR(m.rmse, std::sqrt((100.0 + 8100.0) / 2.0), 1e-9);
  EXPECT_GT(m.rmse, m.mae);
}

TEST_F(MetricsFixture, AccuracyCountsSegmentsNotGeometry) {
  auto truth = FromSegments({0, 1});
  auto pred = FromSegments({1, 1});
  RecoveryMetrics m = EvaluateRecovery(nd_, {pred}, {truth});
  EXPECT_DOUBLE_EQ(m.accuracy, 0.5);
}

TEST_F(MetricsFixture, LengthMismatchAborts) {
  auto truth = FromSegments({0, 1});
  auto pred = FromSegments({0});
  EXPECT_DEATH(EvaluateRecovery(nd_, {pred}, {truth}), "length mismatch");
}

TEST(SrAtKTest, FractionAboveThreshold) {
  std::vector<double> f1 = {0.95, 0.85, 0.75, 0.65, 0.55};
  EXPECT_DOUBLE_EQ(SrAtK(f1, 0.9), 0.2);
  EXPECT_DOUBLE_EQ(SrAtK(f1, 0.8), 0.4);
  EXPECT_DOUBLE_EQ(SrAtK(f1, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(SrAtK(f1, 0.95), 0.0);  // strict inequality
  EXPECT_DOUBLE_EQ(SrAtK({}, 0.5), 0.0);
}

TEST(ElevatedF1Test, SelectsOnlyCorridorPoints) {
  CityConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.spacing = 120;
  cfg.elevated_corridor = true;
  cfg.seed = 23;
  RoadNetwork rn = GenerateCity(cfg);
  int elevated_seg = -1;
  int far_seg = -1;
  for (int i = 0; i < rn.num_segments() && (elevated_seg < 0 || far_seg < 0);
       ++i) {
    if (rn.segment(i).elevated()) elevated_seg = i;
    // A segment far from the corridor: top row.
    if (far_seg < 0 && rn.PointAt(i, 0.5).y > 4.5 * 120) far_seg = i;
  }
  ASSERT_GE(elevated_seg, 0);
  ASSERT_GE(far_seg, 0);

  // Trajectory with 4 elevated points and 4 far points; prediction correct on
  // far points only.
  MatchedTrajectory truth;
  MatchedTrajectory pred;
  for (int i = 0; i < 4; ++i) {
    truth.points.push_back({elevated_seg, 0.2, double(i)});
    pred.points.push_back({far_seg, 0.2, double(i)});
  }
  for (int i = 4; i < 8; ++i) {
    truth.points.push_back({far_seg, 0.2, double(i)});
    pred.points.push_back({far_seg, 0.2, double(i)});
  }
  auto f1s = ElevatedSubTrajectoryF1(rn, {pred}, {truth}, 30.0, 4);
  ASSERT_EQ(f1s.size(), 1u);
  // The elevated sub-trajectory was predicted entirely wrong.
  EXPECT_DOUBLE_EQ(f1s[0], 0.0);
  // Too-few elevated points -> trajectory is skipped.
  auto skipped = ElevatedSubTrajectoryF1(rn, {pred}, {truth}, 30.0, 5);
  EXPECT_TRUE(skipped.empty());
}

TEST(ReportTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(0.123456), "0.1235");
  EXPECT_EQ(TablePrinter::Num(152.3456, 2), "152.35");
}

}  // namespace
}  // namespace rntraj
