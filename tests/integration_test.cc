// End-to-end integration tests across subsystems: dataset -> training ->
// recovery -> metrics, plus cross-model comparisons that encode the shapes
// the paper's evaluation relies on (kept loose enough to be robust at tiny
// scale).

#include <gtest/gtest.h>

#include "src/baselines/zoo.h"
#include "src/common/random.h"
#include "src/core/trainer.h"
#include "src/eval/metrics.h"
#include "src/sim/presets.h"

namespace rntraj {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig cfg = ChengduConfig(BenchScale::kTiny);
    cfg.num_train = 24;
    cfg.num_val = 4;
    cfg.num_test = 10;
    dataset_ = BuildDataset(cfg).release();
    ctx_ = new ModelContext(ModelContext::FromDataset(*dataset_));
  }
  static void TearDownTestSuite() {
    delete ctx_;
    delete dataset_;
    dataset_ = nullptr;
    ctx_ = nullptr;
  }

  RecoveryMetrics TrainAndEvaluate(const std::string& key, int epochs) {
    SeedGlobalRng(777);
    auto model = MakeModel(key, *ctx_, 16);
    TrainConfig tc;
    tc.epochs = epochs;
    tc.batch_size = 6;
    TrainModel(*model, dataset_->train(), tc);
    auto preds = RecoverAll(*model, dataset_->test());
    return EvaluateRecovery(dataset_->netdist(), preds,
                            TruthsOf(dataset_->test()));
  }

  static Dataset* dataset_;
  static ModelContext* ctx_;
};

Dataset* IntegrationFixture::dataset_ = nullptr;
ModelContext* IntegrationFixture::ctx_ = nullptr;

TEST_F(IntegrationFixture, LinearHmmPipelineProducesSaneMetrics) {
  RecoveryMetrics m = TrainAndEvaluate("linear_hmm", 0);
  EXPECT_GT(m.accuracy, 0.05);
  EXPECT_GT(m.f1, 0.1);
  EXPECT_LT(m.mae, 1500.0);
  EXPECT_GE(m.rmse, m.mae);
  EXPECT_EQ(m.num_trajectories, 10);
}

TEST_F(IntegrationFixture, TrainedRnTrajRecBeatsUntrained) {
  SeedGlobalRng(777);
  auto untrained = MakeModel("rntrajrec", *ctx_, 16);
  auto preds_untrained = RecoverAll(*untrained, dataset_->test());
  RecoveryMetrics m0 = EvaluateRecovery(dataset_->netdist(), preds_untrained,
                                        TruthsOf(dataset_->test()));
  RecoveryMetrics m1 = TrainAndEvaluate("rntrajrec", 4);
  // Training must improve at least the geometric error.
  EXPECT_LT(m1.mae, m0.mae * 1.05);
  EXPECT_GE(m1.f1 + 0.02, m0.f1);
}

TEST_F(IntegrationFixture, ObservedStepsAreAnchoredForAllMethods) {
  // The constraint-mask invariant: at observed timestamps every method must
  // place the point within the mask radius of the observation. DHTR is
  // exempt: it regresses coordinates freely without the constraint mask —
  // exactly the two-stage weakness the paper's decoder fixes.
  for (const auto& key : TableThreeMethodKeys()) {
    if (key == "dhtr_hmm") continue;
    SeedGlobalRng(777);
    auto model = MakeModel(key, *ctx_, 16);
    model->SetTrainingMode(false);
    model->BeginInference();
    const auto& s = dataset_->test()[1];
    MatchedTrajectory rec = model->Recover(s);
    for (size_t i = 0; i < s.input_indices.size(); ++i) {
      const int j = s.input_indices[i];
      const double d =
          ctx_->rn->Project(s.input.points[i].pos, rec.points[j].seg_id)
              .distance;
      // HMM-based methods use their own candidate radius; allow slack.
      EXPECT_LE(d, 350.0) << key << " step " << j;
    }
  }
}

TEST_F(IntegrationFixture, MetricsAreDeterministicForFixedSeeds) {
  RecoveryMetrics a = TrainAndEvaluate("mtrajrec", 2);
  RecoveryMetrics b = TrainAndEvaluate("mtrajrec", 2);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.mae, b.mae);
}

TEST_F(IntegrationFixture, RecoveredTimestampsMatchTruthGrid) {
  SeedGlobalRng(778);
  auto model = MakeModel("t2vec", *ctx_, 16);
  model->SetTrainingMode(false);
  model->BeginInference();
  const auto& s = dataset_->test()[2];
  MatchedTrajectory rec = model->Recover(s);
  ASSERT_EQ(rec.size(), s.truth.size());
  for (int j = 0; j < rec.size(); ++j) {
    EXPECT_DOUBLE_EQ(rec.points[j].t, s.truth.points[j].t);
  }
}

TEST_F(IntegrationFixture, EvaluateAcceptsAllMethodOutputsJointly) {
  std::vector<std::string> keys = {"linear_hmm", "dhtr_hmm", "gts"};
  for (const auto& key : keys) {
    SeedGlobalRng(779);
    auto model = MakeModel(key, *ctx_, 16);
    model->SetTrainingMode(false);
    model->BeginInference();
    auto preds = RecoverAll(*model, dataset_->test());
    RecoveryMetrics m =
        EvaluateRecovery(dataset_->netdist(), preds, TruthsOf(dataset_->test()));
    EXPECT_TRUE(std::isfinite(m.mae)) << key;
    EXPECT_GE(m.recall, 0.0);
    EXPECT_LE(m.precision, 1.0);
  }
}

}  // namespace
}  // namespace rntraj
