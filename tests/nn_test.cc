#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/nn/attention.h"
#include "src/nn/graph.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"
#include "src/nn/norm.h"
#include "src/nn/optim.h"
#include "src/nn/rnn.h"
#include "src/nn/transformer.h"
#include "tests/test_util.h"

namespace rntraj {
namespace {

using testing_util::MaxGradError;

constexpr double kTol = 3e-2;

TEST(LinearTest, ShapesAndBias) {
  SeedGlobalRng(1);
  Linear lin(4, 3);
  Tensor x = Tensor::Randn({5, 4}, 1.0f);
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.dim(0), 5);
  EXPECT_EQ(y.dim(1), 3);
  EXPECT_EQ(lin.ParameterCount(), 4 * 3 + 3);
  Linear nb(4, 3, /*bias=*/false);
  EXPECT_EQ(nb.ParameterCount(), 12);
}

TEST(LinearTest, VectorInputStaysRankOne) {
  SeedGlobalRng(2);
  Linear lin(4, 3);
  Tensor y = lin.Forward(Tensor::Randn({4}, 1.0f));
  EXPECT_EQ(y.rank(), 1);
  EXPECT_EQ(y.dim(0), 3);
}

TEST(LinearTest, GradCheckThroughLayer) {
  SeedGlobalRng(3);
  Linear lin(3, 2);
  Tensor x = Tensor::Randn({4, 3}, 1.0f);
  auto loss = [&] { return MeanAll(Square(lin.Forward(x))); };
  EXPECT_LT(MaxGradError(loss, lin.Parameters()), kTol);
}

TEST(EmbeddingTest, LookupMatchesTableRows) {
  SeedGlobalRng(4);
  Embedding emb(10, 4);
  Tensor rows = emb.Forward({3, 7, 3});
  EXPECT_EQ(rows.dim(0), 3);
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(rows.at(0, j), emb.table().at(3, j));
    EXPECT_EQ(rows.at(1, j), emb.table().at(7, j));
    EXPECT_EQ(rows.at(2, j), rows.at(0, j));
  }
  Tensor one = emb.ForwardOne(5);
  EXPECT_EQ(one.rank(), 1);
  EXPECT_EQ(one.dim(0), 4);
}

TEST(EmbeddingTest, OnlyTouchedRowsGetGradient) {
  SeedGlobalRng(5);
  Embedding emb(6, 3);
  Tensor loss = MeanAll(Square(emb.Forward({1, 4})));
  loss.Backward();
  auto& g = emb.Parameters()[0].grad();
  for (int r = 0; r < 6; ++r) {
    const bool touched = (r == 1 || r == 4);
    for (int c = 0; c < 3; ++c) {
      if (touched) {
        EXPECT_NE(g[r * 3 + c], 0.0f) << r;
      } else {
        EXPECT_EQ(g[r * 3 + c], 0.0f) << r;
      }
    }
  }
}

TEST(GruCellTest, ShapeAndBoundedOutput) {
  SeedGlobalRng(6);
  GruCell cell(3, 5);
  Tensor x = Tensor::Randn({4, 3}, 1.0f);
  Tensor h = Tensor::Zeros({4, 5});
  Tensor h1 = cell.Forward(x, h);
  EXPECT_EQ(h1.dim(0), 4);
  EXPECT_EQ(h1.dim(1), 5);
  // GRU state is a convex combination of h (0) and tanh output: within (-1,1).
  for (float v : h1.data()) {
    EXPECT_GT(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(GruCellTest, GradCheck) {
  SeedGlobalRng(7);
  GruCell cell(2, 3);
  Tensor x = Tensor::Randn({2, 2}, 1.0f);
  Tensor h = Tensor::Randn({2, 3}, 0.5f);
  auto loss = [&] { return MeanAll(Square(cell.Forward(x, h))); };
  EXPECT_LT(MaxGradError(loss, cell.Parameters()), kTol);
}

TEST(GruSequenceTest, OutputsOneRowPerStep) {
  SeedGlobalRng(8);
  Gru gru(3, 4);
  Tensor x = Tensor::Randn({6, 3}, 1.0f);
  auto out = gru.Forward(x);
  EXPECT_EQ(out.outputs.dim(0), 6);
  EXPECT_EQ(out.outputs.dim(1), 4);
  // Final state equals last output row.
  for (int j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.final_h.at(0, j), out.outputs.at(5, j));
  }
}

TEST(LstmTest, ShapesAndGradCheck) {
  SeedGlobalRng(9);
  Lstm lstm(2, 3);
  Tensor x = Tensor::Randn({4, 2}, 1.0f);
  auto out = lstm.Forward(x);
  EXPECT_EQ(out.outputs.dim(0), 4);
  EXPECT_EQ(out.outputs.dim(1), 3);
  auto loss = [&] { return MeanAll(Square(lstm.Forward(x).outputs)); };
  EXPECT_LT(MaxGradError(loss, lstm.Parameters()), kTol);
}

TEST(BiLstmTest, ConcatenatesDirections) {
  SeedGlobalRng(10);
  BiLstm bi(3, 4);
  Tensor x = Tensor::Randn({5, 3}, 1.0f);
  Tensor y = bi.Forward(x);
  EXPECT_EQ(y.dim(0), 5);
  EXPECT_EQ(y.dim(1), 8);
}

TEST(AttentionTest, SelfAttentionShapeAndGradCheck) {
  SeedGlobalRng(11);
  MultiHeadSelfAttention mha(8, 2);
  Tensor x = Tensor::Randn({5, 8}, 1.0f);
  Tensor y = mha.Forward(x);
  EXPECT_EQ(y.dim(0), 5);
  EXPECT_EQ(y.dim(1), 8);
  auto loss = [&] { return MeanAll(Square(mha.Forward(x))); };
  EXPECT_LT(MaxGradError(loss, mha.Parameters()), kTol);
}

TEST(AttentionTest, MaskForbidsPositions) {
  SeedGlobalRng(12);
  MultiHeadSelfAttention mha(4, 1);
  Tensor x = Tensor::Randn({3, 4}, 1.0f);
  // Mask out column 2 entirely: output must not depend on row 2 of x.
  Tensor mask = Tensor::Zeros({3, 3});
  for (int i = 0; i < 3; ++i) mask.data()[i * 3 + 2] = -1e9f;
  Tensor y1 = mha.Forward(x, mask);
  x.data()[2 * 4 + 1] += 100.0f;  // perturb the masked row
  Tensor y2 = mha.Forward(x, mask);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(y1.at(0, j), y2.at(0, j), 1e-4);
    EXPECT_NEAR(y1.at(1, j), y2.at(1, j), 1e-4);
  }
}

TEST(AttentionTest, AdditiveAttentionWeightsSumToOne) {
  SeedGlobalRng(13);
  AdditiveAttention attn(6);
  Tensor q = Tensor::Randn({1, 6}, 1.0f);
  Tensor keys = Tensor::Randn({7, 6}, 1.0f);
  auto out = attn.Forward(q, keys);
  EXPECT_EQ(out.context.dim(1), 6);
  double sum = 0.0;
  for (int j = 0; j < 7; ++j) sum += out.weights.at(0, j);
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(AttentionTest, AdditiveAttentionGradCheck) {
  SeedGlobalRng(14);
  AdditiveAttention attn(4);
  Tensor q = Tensor::Randn({1, 4}, 1.0f);
  Tensor keys = Tensor::Randn({5, 4}, 1.0f);
  auto loss = [&] { return MeanAll(Square(attn.Forward(q, keys).context)); };
  EXPECT_LT(MaxGradError(loss, attn.Parameters()), kTol);
}

TEST(AttentionTest, AdditiveBatchedMatchesPerSample) {
  // One batched pass over padded key blocks must reproduce the per-sample
  // additive attention lane by lane — ragged key lengths, a length-1 block,
  // and a compacted (prefix-only) call included.
  SeedGlobalRng(61);
  AdditiveAttention attn(8);
  const std::vector<int> lengths = {5, 3, 1};
  std::vector<Tensor> keys;
  for (int l : lengths) keys.push_back(Tensor::Randn({l, 8}, 1.0f));
  Tensor queries = Tensor::Randn({3, 8}, 1.0f);

  auto cached = attn.PrecomputeBatch(
      PaddedBatch::FromFlat(ConcatRows(keys), lengths));
  auto batched = attn.ForwardBatched(queries, cached);
  ASSERT_EQ(batched.context.dim(0), 3);
  ASSERT_EQ(batched.weights.dim(1), cached.pad_len);
  for (int i = 0; i < 3; ++i) {
    auto per = attn.Forward(SliceRows(queries, i, 1), keys[i]);
    for (int j = 0; j < 8; ++j) {
      EXPECT_NEAR(batched.context.at(i, j), per.context.at(0, j), 1e-5)
          << "lane " << i;
    }
    for (int j = 0; j < lengths[i]; ++j) {
      EXPECT_NEAR(batched.weights.at(i, j), per.weights.at(0, j), 1e-5);
    }
    // Padding key positions carry exactly zero weight.
    for (int j = lengths[i]; j < cached.pad_len; ++j) {
      EXPECT_EQ(batched.weights.at(i, j), 0.0f);
    }
  }

  // Early-finish compaction: attending only the first two lanes against the
  // same cached keys gives those lanes' rows unchanged.
  auto prefix = attn.ForwardBatched(SliceRows(queries, 0, 2), cached);
  ASSERT_EQ(prefix.context.dim(0), 2);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_NEAR(prefix.context.at(i, j), batched.context.at(i, j), 1e-6);
    }
  }
}

TEST(LayerNormTest, RowsAreStandardised) {
  SeedGlobalRng(15);
  LayerNorm ln(8);
  Tensor x = Tensor::Randn({4, 8}, 3.0f);
  Tensor y = ln.Forward(x);
  for (int i = 0; i < 4; ++i) {
    double mean = 0.0;
    double var = 0.0;
    for (int j = 0; j < 8; ++j) mean += y.at(i, j);
    mean /= 8;
    for (int j = 0; j < 8; ++j) var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNormTest, GradCheck) {
  SeedGlobalRng(16);
  LayerNorm ln(5);
  Tensor x = Tensor::Randn({3, 5}, 1.0f, true);
  Tensor w = Tensor::Randn({5, 1}, 1.0f);
  auto loss = [&] { return MeanAll(Matmul(ln.Forward(x), w)); };
  std::vector<Tensor> params = ln.Parameters();
  params.push_back(x);
  EXPECT_LT(MaxGradError(loss, params), kTol);
}

TEST(GraphNormTest, TrainingNormalisesAndTracksRunningStats) {
  SeedGlobalRng(17);
  GraphNorm gn(4);
  gn.SetTraining(true);
  Tensor nodes = Tensor::Randn({10, 4}, 2.0f);
  Tensor y = gn.Forward(nodes, {3, 3, 4});
  EXPECT_EQ(y.dim(0), 10);
  // Eval mode must use running statistics and stay deterministic.
  gn.SetTraining(false);
  Tensor y1 = gn.Forward(nodes, {3, 3, 4});
  Tensor y2 = gn.Forward(nodes, {3, 3, 4});
  testing_util::ExpectVectorNear(y1.data(), y2.data());
}

TEST(GraphNormTest, SizesMustCoverNodes) {
  GraphNorm gn(2);
  Tensor nodes = Tensor::Zeros({5, 2});
  EXPECT_DEATH(gn.Forward(nodes, {2, 2}), "sizes");
}

TEST(GraphNormTest, GradCheck) {
  SeedGlobalRng(18);
  GraphNorm gn(3);
  Tensor x = Tensor::Randn({6, 3}, 1.0f, true);
  Tensor w = Tensor::Randn({3, 1}, 1.0f);
  auto loss = [&] { return MeanAll(Square(Matmul(gn.Forward(x, {2, 4}), w))); };
  std::vector<Tensor> params = gn.Parameters();
  params.push_back(x);
  EXPECT_LT(MaxGradError(loss, params), kTol);
}

TEST(TransformerTest, EncoderLayerPreservesShape) {
  SeedGlobalRng(19);
  TransformerEncoderLayer layer(8, 2, 16);
  Tensor x = Tensor::Randn({6, 8}, 1.0f);
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.dim(0), 6);
  EXPECT_EQ(y.dim(1), 8);
}

TEST(TransformerTest, EncoderGradCheckSpotCheck) {
  SeedGlobalRng(20);
  TransformerEncoderLayer layer(4, 2, 8);
  Tensor x = Tensor::Randn({3, 4}, 1.0f, true);
  auto loss = [&] { return MeanAll(Square(layer.Forward(x))); };
  EXPECT_LT(MaxGradError(loss, {x}), kTol);
}

TEST(TransformerTest, BatchedEncoderLayerMatchesPerSample) {
  // The padded-batch layer must reproduce the per-sample layer on every
  // valid row (to float rounding: the blocked GEMM's row-peel kernels may
  // contract FMAs differently at different batch heights) and keep padding
  // rows at zero.
  SeedGlobalRng(21);
  TransformerEncoderLayer layer(8, 2, 16);
  const std::vector<int> lengths = {5, 2, 3};
  std::vector<Tensor> samples;
  std::vector<Tensor> flat_parts;
  for (int l : lengths) {
    samples.push_back(Tensor::Randn({l, 8}, 1.0f));
    flat_parts.push_back(samples.back());
  }
  PaddedBatch pb = PaddedBatch::FromFlat(ConcatRows(flat_parts), lengths);
  ASSERT_EQ(pb.pad_len, 5);
  PaddedBatch out = layer.ForwardBatched(pb, pb.RowMask());

  for (size_t s = 0; s < lengths.size(); ++s) {
    Tensor want = layer.Forward(samples[s]);
    Tensor got = out.Slice(static_cast<int>(s));
    for (int i = 0; i < lengths[s]; ++i) {
      for (int j = 0; j < 8; ++j) {
        EXPECT_NEAR(got.at(i, j), want.at(i, j), 2e-5)
            << "sample " << s << " at (" << i << "," << j << ")";
      }
    }
    // Padding rows stay exactly zero through attention/FFN/LayerNorm.
    for (int i = lengths[s]; i < out.pad_len; ++i) {
      for (int j = 0; j < 8; ++j) {
        EXPECT_EQ(out.data.at(static_cast<int>(s) * out.pad_len + i, j), 0.0f);
      }
    }
  }
}

TEST(TransformerTest, StackedPositionEncodingRestartsPerSample) {
  const std::vector<int> lengths = {4, 2};
  Tensor pe = StackedPositionEncoding(lengths, 6);
  Tensor ref = SinusoidalPositionEncoding(4, 6);
  ASSERT_EQ(pe.dim(0), 6);
  for (int j = 0; j < 6; ++j) {
    EXPECT_EQ(pe.at(0, j), ref.at(0, j));   // sample 0, pos 0
    EXPECT_EQ(pe.at(3, j), ref.at(3, j));   // sample 0, pos 3
    EXPECT_EQ(pe.at(4, j), ref.at(0, j));   // sample 1 restarts at pos 0
    EXPECT_EQ(pe.at(5, j), ref.at(1, j));
  }
}

TEST(TransformerTest, PositionEncodingRangeAndDistinctRows) {
  Tensor pe = SinusoidalPositionEncoding(16, 8);
  EXPECT_EQ(pe.dim(0), 16);
  EXPECT_EQ(pe.dim(1), 8);
  for (float v : pe.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
  // Rows must differ (position information).
  bool any_diff = false;
  for (int j = 0; j < 8; ++j) any_diff |= pe.at(0, j) != pe.at(5, j);
  EXPECT_TRUE(any_diff);
}

DenseGraph ChainGraph(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return BuildDenseGraph(n, edges);
}

TEST(DenseGraphTest, MasksMatchEdges) {
  DenseGraph g = ChainGraph(3);  // 0->1->2 plus self loops
  // Row 1 (node 1) may attend to {0 (pred), 1 (self)} but not 2.
  EXPECT_EQ(g.adj_self.at(1, 0), 1.0f);
  EXPECT_EQ(g.adj_self.at(1, 1), 1.0f);
  EXPECT_EQ(g.adj_self.at(1, 2), 0.0f);
  EXPECT_EQ(g.neg_mask.at(1, 2), -1e9f);
  EXPECT_EQ(g.adj_noself.at(1, 1), 0.0f);
  EXPECT_EQ(g.adj_noself.at(1, 0), 1.0f);
}

TEST(DenseGraphTest, GcnNormRowsAreFinite) {
  DenseGraph g = ChainGraph(4);
  for (float v : g.gcn_norm.data()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0f);
  }
}

TEST(DenseGraphTest, BuildDenseGraphInvariants) {
  // Property test over a non-trivial directed graph: every mask BuildDenseGraph
  // emits must stay mutually consistent (previously only exercised indirectly
  // through layer outputs).
  const int n = 5;
  const std::vector<std::pair<int, int>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 3}, {2, 0}};
  DenseGraph g = BuildDenseGraph(n, edges);

  std::vector<float> deg(n, 0.0f);
  for (int i = 0; i < n; ++i) {
    // Self-loops: every node attends to itself.
    EXPECT_EQ(g.adj_self.at(i, i), 1.0f) << "node " << i;
    EXPECT_EQ(g.neg_mask.at(i, i), 0.0f) << "node " << i;
    EXPECT_EQ(g.adj_noself.at(i, i), 0.0f) << "node " << i;
    for (int j = 0; j < n; ++j) {
      const float a = g.adj_self.at(i, j);
      EXPECT_TRUE(a == 0.0f || a == 1.0f) << "(" << i << "," << j << ")";
      // Mask/adjacency consistency: attendable exactly where adjacent.
      EXPECT_EQ(g.neg_mask.at(i, j), a == 1.0f ? 0.0f : -1e9f)
          << "(" << i << "," << j << ")";
      // adj_noself is adj_self with the diagonal removed.
      EXPECT_EQ(g.adj_noself.at(i, j), i == j ? 0.0f : a)
          << "(" << i << "," << j << ")";
      // gcn_norm support matches adj_self support.
      EXPECT_EQ(g.gcn_norm.at(i, j) != 0.0f, a != 0.0f)
          << "(" << i << "," << j << ")";
      deg[i] += a;
    }
  }
  // Edge rows: (src, dst) means dst aggregates from src.
  for (const auto& [src, dst] : edges) {
    EXPECT_EQ(g.adj_self.at(dst, src), 1.0f) << src << "->" << dst;
  }
  // gcn_norm is exactly D^-1/2 (A+I) D^-1/2 over the row degrees. Its row
  // sums are bounded: each of the deg_i nonzero terms is at most
  // 1/sqrt(deg_i) (deg_j >= 1 from the self-loop), so
  // 0 < row_sum <= sqrt(deg_i), with equality at 1 for degree-regular rows.
  for (int i = 0; i < n; ++i) {
    float row_sum = 0.0f;
    for (int j = 0; j < n; ++j) {
      const float want = g.adj_self.at(i, j) / std::sqrt(deg[i] * deg[j]);
      EXPECT_FLOAT_EQ(g.gcn_norm.at(i, j), want) << "(" << i << "," << j << ")";
      row_sum += g.gcn_norm.at(i, j);
    }
    EXPECT_GT(row_sum, 0.0f);
    EXPECT_LE(row_sum, std::sqrt(deg[i]) + 1e-6f) << "row " << i;
  }
  // Degree-regular case: complete-graph rows sum to exactly 1.
  std::vector<std::pair<int, int>> complete;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i != j) complete.push_back({i, j});
    }
  }
  DenseGraph k3 = BuildDenseGraph(3, complete);
  for (int i = 0; i < 3; ++i) {
    float row_sum = 0.0f;
    for (int j = 0; j < 3; ++j) row_sum += k3.gcn_norm.at(i, j);
    EXPECT_NEAR(row_sum, 1.0f, 1e-6f) << "row " << i;
  }
}

// The ragged graph mix every BatchedDenseGraph test below uses: a 1-node
// sub-graph, an edge-less (self-loops only) pair, a chain, and a denser
// 4-node graph — the shapes the serving sub-graph extractor produces.
std::vector<DenseGraph> RaggedGraphs() {
  std::vector<DenseGraph> graphs;
  graphs.push_back(BuildDenseGraph(1, {}));
  graphs.push_back(BuildDenseGraph(2, {}));
  graphs.push_back(BuildDenseGraph(3, {{0, 1}, {1, 2}}));
  graphs.push_back(BuildDenseGraph(4, {{0, 1}, {2, 3}, {1, 2}, {0, 3}}));
  return graphs;
}

std::vector<const DenseGraph*> GraphPtrs(const std::vector<DenseGraph>& graphs) {
  std::vector<const DenseGraph*> ptrs;
  for (const auto& g : graphs) ptrs.push_back(&g);
  return ptrs;
}

TEST(BatchedDenseGraphTest, PackedBlocksMatchPerGraphMasks) {
  std::vector<DenseGraph> graphs = RaggedGraphs();
  BatchedDenseGraph bg = BuildBatchedDenseGraph(GraphPtrs(graphs));

  ASSERT_EQ(bg.num_graphs, 4);
  EXPECT_EQ(bg.total_nodes, 1 + 2 + 3 + 4);
  EXPECT_EQ(bg.total_entries, 1 + 4 + 9 + 16);
  ASSERT_EQ(static_cast<int>(bg.sizes.size()), 4);
  int node = 0;
  int entry = 0;
  for (size_t g = 0; g < graphs.size(); ++g) {
    const int n = graphs[g].n;
    EXPECT_EQ(bg.sizes[g], n);
    EXPECT_EQ(bg.node_offsets[g], node);
    EXPECT_EQ(bg.entry_offsets[g], entry);
    // The packed block is that graph's mask, bit for bit.
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(bg.neg_mask.at(entry + i * n + j), graphs[g].neg_mask.at(i, j))
            << "graph " << g << " (" << i << "," << j << ")";
        EXPECT_EQ(bg.adj_self.at(entry + i * n + j), graphs[g].adj_self.at(i, j))
            << "graph " << g << " (" << i << "," << j << ")";
      }
    }
    node += n;
    entry += n * n;
  }
  EXPECT_EQ(static_cast<int>(bg.neg_mask.size()), bg.total_entries);
  EXPECT_EQ(static_cast<int>(bg.adj_self.size()), bg.total_entries);
}

TEST(BatchedDenseGraphTest, ConcatMatchesDirectBuild) {
  // Concatenating per-sample packs (the serving cache path) must equal
  // packing the full flat graph list directly.
  std::vector<DenseGraph> graphs = RaggedGraphs();
  std::vector<const DenseGraph*> ptrs = GraphPtrs(graphs);
  BatchedDenseGraph direct = BuildBatchedDenseGraph(ptrs);

  BatchedDenseGraph part1 = BuildBatchedDenseGraph({ptrs[0], ptrs[1]});
  BatchedDenseGraph part2 = BuildBatchedDenseGraph({ptrs[2], ptrs[3]});
  BatchedDenseGraph cat = ConcatBatchedDenseGraphs({&part1, &part2});

  EXPECT_EQ(cat.num_graphs, direct.num_graphs);
  EXPECT_EQ(cat.total_nodes, direct.total_nodes);
  EXPECT_EQ(cat.total_entries, direct.total_entries);
  EXPECT_EQ(cat.sizes, direct.sizes);
  EXPECT_EQ(cat.node_offsets, direct.node_offsets);
  EXPECT_EQ(cat.entry_offsets, direct.entry_offsets);
  for (int e = 0; e < direct.total_entries; ++e) {
    EXPECT_EQ(cat.neg_mask.at(e), direct.neg_mask.at(e)) << "entry " << e;
    EXPECT_EQ(cat.adj_self.at(e), direct.adj_self.at(e)) << "entry " << e;
  }

  // Single-part concat (B=1) reproduces the pack unchanged.
  BatchedDenseGraph one = ConcatBatchedDenseGraphs({&direct});
  EXPECT_EQ(one.sizes, direct.sizes);
  EXPECT_EQ(one.entry_offsets, direct.entry_offsets);
  for (int e = 0; e < direct.total_entries; ++e) {
    EXPECT_EQ(one.neg_mask.at(e), direct.neg_mask.at(e)) << "entry " << e;
  }
}

TEST(GatLayerTest, IsolatedNodeOnlySeesItself) {
  SeedGlobalRng(21);
  // Node 2 has no incoming edges besides its self loop.
  DenseGraph g = BuildDenseGraph(3, {{0, 1}});
  GatLayer gat(4, 1);
  Tensor h = Tensor::Randn({3, 4}, 1.0f);
  Tensor y1 = gat.Forward(h, g);
  h.data()[0] += 50.0f;  // perturb node 0
  Tensor y2 = gat.Forward(h, g);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(y1.at(2, j), y2.at(2, j), 1e-4) << "node 2 must be isolated";
  }
  // Node 1 aggregates node 0, so it must change.
  bool changed = false;
  for (int j = 0; j < 4; ++j) changed |= std::abs(y1.at(1, j) - y2.at(1, j)) > 1e-3;
  EXPECT_TRUE(changed);
}

TEST(GatLayerTest, GradCheck) {
  SeedGlobalRng(22);
  DenseGraph g = ChainGraph(3);
  GatLayer gat(4, 2);
  Tensor h = Tensor::Randn({3, 4}, 1.0f, true);
  auto loss = [&] { return MeanAll(Square(gat.Forward(h, g))); };
  std::vector<Tensor> params = gat.Parameters();
  params.push_back(h);
  EXPECT_LT(MaxGradError(loss, params), kTol);
}

TEST(GatLayerTest, ForwardBatchedMatchesPerGraphForward) {
  // The block-diagonal batched pass must reproduce the graph-by-graph loop
  // over ragged sub-graph sizes (incl. 1-node and edge-less graphs), for one
  // head and for multiple heads. Tolerance is the batched-path float-rounding
  // bound: the fat projection GEMMs run at a different height than their
  // per-graph equivalents.
  for (int heads : {1, 4}) {
    SeedGlobalRng(24 + heads);
    std::vector<DenseGraph> graphs = RaggedGraphs();
    BatchedDenseGraph bg = BuildBatchedDenseGraph(GraphPtrs(graphs));
    GatLayer gat(8, heads);
    std::vector<Tensor> h_parts;
    for (const auto& g : graphs) h_parts.push_back(Tensor::Randn({g.n, 8}, 1.0f));
    Tensor batched = gat.ForwardBatched(ConcatRows(h_parts), bg);
    ASSERT_EQ(batched.dim(0), bg.total_nodes);
    ASSERT_EQ(batched.dim(1), 8);
    int node = 0;
    for (size_t g = 0; g < graphs.size(); ++g) {
      Tensor ref = gat.Forward(h_parts[g], graphs[g]);
      for (int i = 0; i < graphs[g].n; ++i) {
        for (int j = 0; j < 8; ++j) {
          EXPECT_NEAR(batched.at(node + i, j), ref.at(i, j), 1e-6)
              << "heads=" << heads << " graph " << g << " (" << i << "," << j
              << ")";
        }
      }
      node += graphs[g].n;
    }
  }
}

TEST(GatLayerTest, ForwardBatchedSingleGraphIsBitExact) {
  // With ONE graph in the batch every kernel runs at identical heights on
  // identical data, so the batched path collapses to Forward bit for bit.
  SeedGlobalRng(26);
  DenseGraph g = ChainGraph(5);
  BatchedDenseGraph bg = BuildBatchedDenseGraph({&g});
  GatLayer gat(8, 2);
  Tensor h = Tensor::Randn({5, 8}, 1.0f);
  Tensor batched = gat.ForwardBatched(h, bg);
  Tensor ref = gat.Forward(h, g);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(batched.at(i, j), ref.at(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST(GatLayerTest, ForwardBatchedIsolatesGraphs) {
  // No cross-graph leakage: perturbing one graph's nodes must leave every
  // other graph's outputs bit-unchanged (projections are row-local, the
  // score/softmax/attention stage is per-block).
  SeedGlobalRng(27);
  std::vector<DenseGraph> graphs = RaggedGraphs();
  BatchedDenseGraph bg = BuildBatchedDenseGraph(GraphPtrs(graphs));
  GatLayer gat(8, 2);
  Tensor h = Tensor::Randn({bg.total_nodes, 8}, 1.0f);
  Tensor before = gat.ForwardBatched(h, bg);
  // Perturb every node of graph 2 (rows 3..5).
  for (int i = bg.node_offsets[2]; i < bg.node_offsets[3]; ++i) {
    h.data()[static_cast<size_t>(i) * 8] += 25.0f;
  }
  Tensor after = gat.ForwardBatched(h, bg);
  for (int i = 0; i < bg.total_nodes; ++i) {
    const bool in_graph2 = i >= bg.node_offsets[2] && i < bg.node_offsets[3];
    if (in_graph2) continue;
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(before.at(i, j), after.at(i, j))
          << "row " << i << " leaked across graphs";
    }
  }
}

TEST(GatLayerTest, ForwardBatchedGradCheck) {
  SeedGlobalRng(28);
  std::vector<DenseGraph> graphs = RaggedGraphs();
  BatchedDenseGraph bg = BuildBatchedDenseGraph(GraphPtrs(graphs));
  GatLayer gat(4, 2);
  Tensor h = Tensor::Randn({bg.total_nodes, 4}, 1.0f, true);
  auto loss = [&] { return MeanAll(Square(gat.ForwardBatched(h, bg))); };
  std::vector<Tensor> params = gat.Parameters();
  params.push_back(h);
  EXPECT_LT(MaxGradError(loss, params), kTol);
}

TEST(GcnGinLayerTest, ShapesAndGradCheck) {
  SeedGlobalRng(23);
  DenseGraph g = ChainGraph(4);
  GcnLayer gcn(3, 3);
  GinLayer gin(3, 6);
  Tensor h = Tensor::Randn({4, 3}, 1.0f, true);
  EXPECT_EQ(gcn.Forward(h, g).dim(1), 3);
  EXPECT_EQ(gin.Forward(h, g).dim(1), 3);
  auto loss = [&] { return MeanAll(Square(gin.Forward(gcn.Forward(h, g), g))); };
  std::vector<Tensor> params = gcn.Parameters();
  for (auto& p : gin.Parameters()) params.push_back(p);
  EXPECT_LT(MaxGradError(loss, params), kTol);
}

TEST(ModuleTest, NamedParametersHaveDottedPaths) {
  Gru gru(2, 3);
  auto named = gru.NamedParameters();
  ASSERT_FALSE(named.empty());
  EXPECT_EQ(named[0].first.rfind("cell.", 0), 0);
}

TEST(ModuleTest, SetTrainingRecurses) {
  TransformerEncoderLayer layer(4, 1, 8);
  layer.SetTraining(false);
  EXPECT_FALSE(layer.training());
}

TEST(OptimTest, SgdStepsDownhill) {
  Tensor w = Tensor::FromVector({2}, {5.0f, -3.0f}, true);
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 50; ++i) {
    opt.ZeroGrad();
    Tensor loss = MeanAll(Square(w));
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(std::abs(w.at(0)), 0.1f);
  EXPECT_LT(std::abs(w.at(1)), 0.1f);
}

TEST(OptimTest, AdamFitsLinearRegression) {
  SeedGlobalRng(24);
  // y = x * [2, -1]^T + 0.5
  Tensor x = Tensor::Randn({32, 2}, 1.0f);
  std::vector<float> yv(32);
  for (int i = 0; i < 32; ++i) yv[i] = 2 * x.at(i, 0) - x.at(i, 1) + 0.5f;
  Tensor y = Tensor::FromVector({32, 1}, yv);
  Linear lin(2, 1);
  Adam opt(lin.Parameters(), 5e-2f);
  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int e = 0; e < 200; ++e) {
    opt.ZeroGrad();
    Tensor loss = MeanAll(Square(Sub(lin.Forward(x), y)));
    if (e == 0) first_loss = loss.item();
    last_loss = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last_loss, first_loss * 0.01f);
  EXPECT_LT(last_loss, 1e-2f);
}

TEST(OptimTest, ClipGradNormScalesLongGradients) {
  Tensor w = Tensor::FromVector({2}, {1.0f, 1.0f}, true);
  w.grad()[0] = 3.0f;
  w.grad()[1] = 4.0f;  // norm 5
  std::vector<Tensor> params = {w};
  const double pre = ClipGradNorm(params, 1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(w.grad()[0], 0.6f, 1e-5);
  EXPECT_NEAR(w.grad()[1], 0.8f, 1e-5);
  // Short gradients are untouched.
  const double pre2 = ClipGradNorm(params, 10.0);
  EXPECT_NEAR(pre2, 1.0, 1e-5);
  EXPECT_NEAR(w.grad()[0], 0.6f, 1e-5);
}

}  // namespace
}  // namespace rntraj
