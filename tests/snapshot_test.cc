#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/rntrajrec.h"
#include "src/core/trainer.h"
#include "src/nn/arena.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"
#include "src/nn/norm.h"
#include "src/nn/optim.h"
#include "src/nn/state_dict.h"
#include "src/sim/presets.h"
#include "src/snapshot/snapshot.h"

namespace rntraj {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Tiny module tree exercising every registration kind: own parameter,
/// child with parameters, child with buffers (GraphNorm running stats).
class TinyNet : public Module {
 public:
  TinyNet() : lin_(3, 2), norm_(2) {
    scale_ = RegisterParameter("scale", Tensor::Full({2}, 1.0f));
    RegisterChild("lin", &lin_);
    RegisterChild("norm", &norm_);
  }

  Linear lin_;
  GraphNorm norm_;
  Tensor scale_;
};

void FillSequential(const rntraj::StateDict& sd, float start) {
  float x = start;
  for (const StateEntry& e : sd) {
    Tensor t = e.tensor;
    for (float& v : t.data()) v = x += 0.25f;
  }
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// StateDict API

TEST(StateDictTest, RegistrationOrderAndDottedPaths) {
  SeedGlobalRng(1);
  TinyNet net;
  rntraj::StateDict sd = net.StateDict();
  // Own params first, then children in registration order; within a child,
  // params before buffers.
  std::vector<std::string> names;
  for (const StateEntry& e : sd) names.push_back(e.name);
  const std::vector<std::string> want = {
      "scale",        "lin.weight",        "lin.bias",
      "norm.gamma",   "norm.beta",         "norm.running_mean",
      "norm.running_var"};
  EXPECT_EQ(names, want);
  // Buffers are flagged; only the running stats are buffers.
  for (const StateEntry& e : sd) {
    const bool is_running = e.name == "norm.running_mean" ||
                            e.name == "norm.running_var";
    EXPECT_EQ(e.is_buffer, is_running) << e.name;
  }
  // Two constructions of the same architecture produce the same order.
  SeedGlobalRng(1);
  TinyNet net2;
  rntraj::StateDict sd2 = net2.StateDict();
  ASSERT_EQ(sd.size(), sd2.size());
  for (size_t i = 0; i < sd.size(); ++i) EXPECT_EQ(sd[i].name, sd2[i].name);
}

TEST(StateDictTest, DuplicateNameAborts) {
  rntraj::StateDict sd;
  sd.Add("w", Tensor::Zeros({2}));
  EXPECT_DEATH(sd.Add("w", Tensor::Zeros({2})), "duplicate entry name");
}

TEST(StateDictTest, LearnableTensorsSkipsBuffers) {
  SeedGlobalRng(2);
  TinyNet net;
  std::vector<Tensor> learnable = LearnableTensors(net.StateDict());
  // scale + lin.weight + lin.bias + norm.gamma + norm.beta.
  EXPECT_EQ(learnable.size(), 5u);
  EXPECT_EQ(net.Parameters().size(), learnable.size());
}

TEST(StateDictTest, LoadStateDictCopiesValuesAndPreservesIdentity) {
  SeedGlobalRng(3);
  TinyNet src, dst;
  FillSequential(src.StateDict(), 10.0f);
  // A handle taken before the load must observe the new values afterwards
  // (values are copied into the existing impls, so optimizer handles built
  // from the old dict stay live).
  Tensor held = dst.scale_;
  LoadReport report = dst.LoadStateDict(src.StateDict());
  EXPECT_TRUE(report.Clean()) << report.ToString();
  rntraj::StateDict a = src.StateDict(), b = dst.StateDict();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tensor.data(), b[i].tensor.data()) << a[i].name;
  }
  EXPECT_EQ(held.data(), src.scale_.data());
}

TEST(StateDictTest, LoadStateDictReportsMissingAndUnexpected) {
  SeedGlobalRng(4);
  TinyNet net;
  rntraj::StateDict partial;
  partial.Add("scale", Tensor::Full({2}, 5.0f));
  partial.Add("bogus.weight", Tensor::Zeros({3}));
  LoadReport report = net.LoadStateDict(partial);
  ASSERT_EQ(report.unexpected.size(), 1u);
  EXPECT_EQ(report.unexpected[0], "bogus.weight");
  EXPECT_EQ(report.missing.size(), net.StateDict().size() - 1);
  EXPECT_FLOAT_EQ(net.scale_.data()[0], 5.0f);
  EXPECT_NE(report.ToString().find("bogus.weight"), std::string::npos);
}

TEST(StateDictTest, LoadStateDictShapeMismatchAborts) {
  SeedGlobalRng(5);
  TinyNet net;
  rntraj::StateDict bad;
  bad.Add("scale", Tensor::Zeros({3}));  // net's scale is {2}
  EXPECT_DEATH(net.LoadStateDict(bad), "shape mismatch");
}

// ---------------------------------------------------------------------------
// Parameter arena

TEST(ArenaTest, LayoutMatchesDictAndRoundTrips) {
  SeedGlobalRng(6);
  TinyNet net;
  rntraj::StateDict sd = net.StateDict();
  ParameterArena arena(sd);
  EXPECT_EQ(arena.size(), static_cast<size_t>(sd.ScalarCount()));
  ASSERT_EQ(arena.views().size(), sd.size());
  // Views tile the buffer contiguously in dict order.
  size_t off = 0;
  for (size_t i = 0; i < sd.size(); ++i) {
    EXPECT_EQ(arena.views()[i].name, sd[i].name);
    EXPECT_EQ(arena.views()[i].offset, off);
    off += arena.views()[i].size;
  }
  // Gather picked up current values.
  const float* w = arena.ViewOf("lin.weight");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w[0], net.lin_.Parameters()[0].data()[0]);
  // Scatter writes back into the module's tensors.
  FillSequential(sd, 100.0f);
  arena.ScatterTo(sd);
  EXPECT_NE(net.scale_.data()[0], 100.0f + 0.25f);  // scatter restored old
  arena.GatherFrom(sd);
  EXPECT_EQ(arena.ViewOf("scale")[0], net.scale_.data()[0]);
}

TEST(ArenaTest, ViewWritesAreWriteThrough) {
  SeedGlobalRng(7);
  TinyNet net;
  rntraj::StateDict sd = net.StateDict();
  ParameterArena arena(sd);
  float* scale = arena.ViewOf("scale");
  ASSERT_NE(scale, nullptr);
  scale[0] = 42.0f;
  scale[1] = -7.0f;
  // The write landed in the flat buffer the snapshot writer serialises...
  const ArenaView* v = arena.Find("scale");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(arena.flat()[v->offset], 42.0f);
  EXPECT_EQ(arena.flat()[v->offset + 1], -7.0f);
  // ...and reaches the module only through an explicit scatter.
  EXPECT_NE(net.scale_.data()[0], 42.0f);
  arena.ScatterTo(sd);
  EXPECT_EQ(net.scale_.data()[0], 42.0f);
  EXPECT_EQ(net.scale_.data()[1], -7.0f);
}

TEST(ArenaTest, ForeignLayoutAborts) {
  SeedGlobalRng(8);
  TinyNet net;
  ParameterArena arena(net.StateDict());
  rntraj::StateDict other;
  other.Add("something", Tensor::Zeros({4}));
  EXPECT_DEATH(arena.GatherFrom(other), "ParameterArena");
}

// ---------------------------------------------------------------------------
// Snapshot format

TEST(SnapshotTest, RoundTripIsBitExact) {
  SeedGlobalRng(9);
  TinyNet net;
  FillSequential(net.StateDict(), -3.0f);
  const std::string path = TempPath("snap_roundtrip.bin");
  snapshot::Snapshot snap;
  snap.state = net.StateDict();
  snap.model_name = "tiny";
  std::string err;
  ASSERT_TRUE(snapshot::WriteSnapshot(path, snap, &err)) << err;

  snapshot::Snapshot loaded;
  ASSERT_TRUE(snapshot::ReadSnapshot(path, &loaded, &err)) << err;
  EXPECT_EQ(loaded.model_name, "tiny");
  EXPECT_FALSE(loaded.has_road_rep);
  EXPECT_FALSE(loaded.has_trainer_state);
  rntraj::StateDict own = net.StateDict();
  ASSERT_EQ(loaded.state.size(), own.size());
  for (size_t i = 0; i < own.size(); ++i) {
    EXPECT_EQ(loaded.state[i].name, own[i].name);
    EXPECT_EQ(loaded.state[i].tensor.shape(), own[i].tensor.shape());
    EXPECT_EQ(loaded.state[i].is_buffer, own[i].is_buffer);
    // Bit-exact: fp32 values written and read back unchanged.
    EXPECT_EQ(loaded.state[i].tensor.data(), own[i].tensor.data())
        << own[i].name;
  }
}

TEST(SnapshotTest, TrainerAndRoadSectionsRoundTrip) {
  SeedGlobalRng(10);
  TinyNet net;
  const std::string path = TempPath("snap_sections.bin");
  snapshot::Snapshot snap;
  snap.state = net.StateDict();
  snap.has_road_rep = true;
  snap.road_rep = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  snap.has_trainer_state = true;
  snap.trainer.epochs_done = 7;
  snap.trainer.training_steps = 91;
  snap.trainer.adam = {5, {0.5f, -0.5f}, {0.25f, 0.125f}};
  std::string err;
  ASSERT_TRUE(snapshot::WriteSnapshot(path, snap, &err)) << err;

  snapshot::Snapshot loaded;
  ASSERT_TRUE(snapshot::ReadSnapshot(path, &loaded, &err)) << err;
  ASSERT_TRUE(loaded.has_road_rep);
  EXPECT_EQ(loaded.road_rep.shape(), snap.road_rep.shape());
  EXPECT_EQ(loaded.road_rep.data(), snap.road_rep.data());
  ASSERT_TRUE(loaded.has_trainer_state);
  EXPECT_EQ(loaded.trainer.epochs_done, 7u);
  EXPECT_EQ(loaded.trainer.training_steps, 91u);
  EXPECT_EQ(loaded.trainer.adam.t, 5);
  EXPECT_EQ(loaded.trainer.adam.m, snap.trainer.adam.m);
  EXPECT_EQ(loaded.trainer.adam.v, snap.trainer.adam.v);
}

TEST(SnapshotTest, MissingFileIsGraceful) {
  snapshot::Snapshot out;
  std::string err;
  EXPECT_FALSE(
      snapshot::ReadSnapshot(TempPath("does_not_exist.bin"), &out, &err));
  EXPECT_FALSE(err.empty());
}

TEST(SnapshotTest, RejectsWrongMagicVersionEndianAndTruncation) {
  SeedGlobalRng(11);
  TinyNet net;
  const std::string good = TempPath("snap_good.bin");
  snapshot::Snapshot snap;
  snap.state = net.StateDict();
  std::string err;
  ASSERT_TRUE(snapshot::WriteSnapshot(good, snap, &err)) << err;
  const std::vector<char> bytes = ReadFileBytes(good);
  ASSERT_GT(bytes.size(), 24u);
  const std::string bad = TempPath("snap_bad.bin");
  snapshot::Snapshot out;

  {  // Wrong magic.
    std::vector<char> b = bytes;
    b[0] = 'X';
    WriteFileBytes(bad, b);
    err.clear();
    EXPECT_FALSE(snapshot::ReadSnapshot(bad, &out, &err));
    EXPECT_NE(err.find("magic"), std::string::npos) << err;
  }
  {  // Foreign format version (bytes 8..11).
    std::vector<char> b = bytes;
    b[8] = 99;
    WriteFileBytes(bad, b);
    err.clear();
    EXPECT_FALSE(snapshot::ReadSnapshot(bad, &out, &err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
  }
  {  // Foreign endianness (tag at bytes 12..15).
    std::vector<char> b = bytes;
    std::swap(b[12], b[15]);
    std::swap(b[13], b[14]);
    WriteFileBytes(bad, b);
    err.clear();
    EXPECT_FALSE(snapshot::ReadSnapshot(bad, &out, &err));
    EXPECT_NE(err.find("endian"), std::string::npos) << err;
  }
  // Truncation at every prefix step never aborts and always errors.
  for (size_t cut : std::vector<size_t>{4, 12, 20, 30, bytes.size() / 2,
                                        bytes.size() - 3}) {
    std::vector<char> b(bytes.begin(), bytes.begin() + cut);
    WriteFileBytes(bad, b);
    err.clear();
    EXPECT_FALSE(snapshot::ReadSnapshot(bad, &out, &err)) << "cut=" << cut;
    EXPECT_FALSE(err.empty()) << "cut=" << cut;
  }
  {  // Payload-size corruption: grow a section's claimed byte count past the
     // file end.
    std::vector<char> b = bytes;
    b[b.size() - 40] = static_cast<char>(0xFF);
    b[b.size() - 39] = static_cast<char>(0xFF);
    WriteFileBytes(bad, b);
    err.clear();
    // Either rejected outright or decoded to a dict that no longer matches —
    // never an abort. Most corruptions of interior bytes trip a bounds or
    // consistency check.
    snapshot::ReadSnapshot(bad, &out, &err);
  }
}

TEST(SnapshotTest, ApplyStateDictIsStrictAndAtomic) {
  SeedGlobalRng(12);
  TinyNet net;
  rntraj::StateDict own = net.StateDict();
  const std::vector<float> before = net.scale_.data();
  std::string err;

  {  // Missing entry: rejected, nothing mutated.
    rntraj::StateDict partial;
    partial.Add("scale", Tensor::Full({2}, 9.0f));
    EXPECT_FALSE(snapshot::ApplyStateDict(own, partial, &err));
    EXPECT_NE(err.find("missing"), std::string::npos) << err;
    EXPECT_EQ(net.scale_.data(), before);
  }
  {  // Wrong shape on a matched name: rejected before any copy.
    rntraj::StateDict bad;
    for (const StateEntry& e : own) {
      if (e.name == "lin.weight") {
        bad.Add(e.name, Tensor::Zeros({5, 5}));
      } else {
        bad.Add(e.name, e.tensor.Detach());
      }
    }
    EXPECT_FALSE(snapshot::ApplyStateDict(own, bad, &err));
    EXPECT_NE(err.find("lin.weight"), std::string::npos) << err;
    EXPECT_EQ(net.scale_.data(), before);
  }
  {  // Unexpected extra entry: rejected.
    rntraj::StateDict extra;
    for (const StateEntry& e : own) extra.Add(e.name, e.tensor.Detach());
    extra.Add("stowaway", Tensor::Zeros({1}));
    EXPECT_FALSE(snapshot::ApplyStateDict(own, extra, &err));
    EXPECT_NE(err.find("stowaway"), std::string::npos) << err;
  }
  {  // Exact match: applied.
    SeedGlobalRng(13);
    TinyNet donor;
    FillSequential(donor.StateDict(), 50.0f);
    EXPECT_TRUE(snapshot::ApplyStateDict(own, donor.StateDict(), &err)) << err;
    EXPECT_EQ(net.scale_.data(), donor.scale_.data());
  }
}

TEST(SnapshotTest, AdamImportRejectsForeignLayout) {
  SeedGlobalRng(14);
  TinyNet net;
  Adam opt(net.StateDict(), 1e-2f);
  Adam::State s = opt.ExportState();
  s.m.push_back(0.0f);  // wrong arena size
  std::string err;
  EXPECT_FALSE(opt.ImportState(s, &err));
  EXPECT_NE(err.find("mismatch"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Model-level snapshots + trainer checkpoint/resume (tiny dataset)

class SnapshotModelFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig cfg = ChengduConfig(BenchScale::kTiny);
    cfg.num_train = 6;
    cfg.num_val = 1;
    cfg.num_test = 2;
    cfg.sim.len_rho = 24;
    dataset_ = BuildDataset(cfg).release();
    ctx_ = new ModelContext(ModelContext::FromDataset(*dataset_));
  }
  static void TearDownTestSuite() {
    delete ctx_;
    delete dataset_;
    dataset_ = nullptr;
    ctx_ = nullptr;
  }

  static RnTrajRecConfig SmallConfig() {
    RnTrajRecConfig cfg;
    cfg.dim = 16;
    cfg.delta = 250.0;
    cfg.max_subgraph_nodes = 16;
    cfg.gridgnn.gnn_layers = 1;
    cfg.gridgnn.heads = 2;
    cfg.gpsformer.blocks = 1;
    cfg.gpsformer.heads = 2;
    cfg.gpsformer.grl.heads = 2;
    cfg.Sync();
    return cfg;
  }

  static Dataset* dataset_;
  static ModelContext* ctx_;
};

Dataset* SnapshotModelFixture::dataset_ = nullptr;
ModelContext* SnapshotModelFixture::ctx_ = nullptr;

bool SameTrajectory(const MatchedTrajectory& a, const MatchedTrajectory& b) {
  if (a.points.size() != b.points.size()) return false;
  for (size_t i = 0; i < a.points.size(); ++i) {
    if (a.points[i].seg_id != b.points[i].seg_id ||
        a.points[i].ratio != b.points[i].ratio) {
      return false;
    }
  }
  return true;
}

TEST_F(SnapshotModelFixture, SaveLoadSnapshotReproducesModelExactly) {
  SeedGlobalRng(21);
  RnTrajRec model(SmallConfig(), *ctx_);
  TrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.batch_size = 4;
  TrainModel(model, dataset_->train(), tcfg);
  model.SetTrainingMode(false);
  model.BeginInference();
  const MatchedTrajectory want = model.Recover(dataset_->test()[0]);

  const std::string path = TempPath("snap_model.bin");
  std::string err;
  ASSERT_TRUE(model.SaveSnapshot(path, &err)) << err;

  SeedGlobalRng(22);  // different init: the load must erase it
  RnTrajRec restored(SmallConfig(), *ctx_);
  ASSERT_TRUE(restored.LoadSnapshot(path, &err)) << err;
  restored.SetTrainingMode(false);
  restored.BeginInference();
  EXPECT_TRUE(SameTrajectory(want, restored.Recover(dataset_->test()[0])));
}

TEST_F(SnapshotModelFixture, WarmStartSkipsRoadRepresentationRecompute) {
  SeedGlobalRng(23);
  RnTrajRec model(SmallConfig(), *ctx_);
  model.SetTrainingMode(false);
  model.BeginInference();  // computes the road representation
  const MatchedTrajectory want = model.Recover(dataset_->test()[1]);
  const std::string path = TempPath("snap_warm.bin");
  std::string err;
  ASSERT_TRUE(model.SaveSnapshot(path, &err)) << err;

  SeedGlobalRng(24);
  RnTrajRec warmed(SmallConfig(), *ctx_);
  ASSERT_TRUE(warmed.LoadSnapshot(path, &err)) << err;
  // Sabotage the GridGNN weights AFTER the load: if BeginInference recomputed
  // the road representation, the recovered trajectory would change. It must
  // not — the snapshot's road section is used instead.
  for (const StateEntry& e : warmed.StateDict()) {
    if (e.name.rfind("gridgnn.", 0) == 0 && !e.is_buffer) {
      Tensor t = e.tensor;
      for (float& v : t.data()) v = 1e6f;
    }
  }
  warmed.SetTrainingMode(false);
  warmed.BeginInference();
  EXPECT_TRUE(SameTrajectory(want, warmed.Recover(dataset_->test()[1])));
}

TEST_F(SnapshotModelFixture, LoadSnapshotRejectsForeignRoadShape) {
  SeedGlobalRng(25);
  RnTrajRec model(SmallConfig(), *ctx_);
  model.SetTrainingMode(false);
  model.BeginInference();
  const std::string path = TempPath("snap_badroad.bin");
  std::string err;
  ASSERT_TRUE(model.SaveSnapshot(path, &err)) << err;

  // Rewrite the snapshot with a road section of the wrong width.
  snapshot::Snapshot snap;
  ASSERT_TRUE(snapshot::ReadSnapshot(path, &snap, &err)) << err;
  ASSERT_TRUE(snap.has_road_rep);
  snap.road_rep = Tensor::Zeros({snap.road_rep.dim(0), 3});
  ASSERT_TRUE(snapshot::WriteSnapshot(path, snap, &err)) << err;

  SeedGlobalRng(26);
  RnTrajRec other(SmallConfig(), *ctx_);
  err.clear();
  EXPECT_FALSE(other.LoadSnapshot(path, &err));
  EXPECT_NE(err.find("road"), std::string::npos) << err;
}

TEST_F(SnapshotModelFixture, ResumedTrainingMatchesUninterruptedBitForBit) {
  const std::string ckpt = TempPath("snap_resume_ckpt.bin");
  TrainConfig full_cfg;
  full_cfg.epochs = 4;
  full_cfg.batch_size = 4;
  full_cfg.batch_threads = 1;  // serial: the bit-for-bit contract's mode

  // Reference: one uninterrupted run.
  SeedGlobalRng(31);
  RnTrajRec reference(SmallConfig(), *ctx_);
  TrainStats full = TrainModel(reference, dataset_->train(), full_cfg);
  ASSERT_EQ(full.epoch_losses.size(), 4u);

  // Interrupted run: same 4-epoch schedule, but stop after epoch 2 (the
  // checkpoint written there). Shrinking `epochs` instead would change the
  // teacher-forcing decay and break the bit-for-bit comparison.
  TrainConfig half_cfg = full_cfg;
  half_cfg.stop_after_epoch = 2;
  half_cfg.checkpoint_every = 2;
  half_cfg.checkpoint_path = ckpt;
  SeedGlobalRng(31);
  RnTrajRec interrupted(SmallConfig(), *ctx_);
  TrainStats half = TrainModel(interrupted, dataset_->train(), half_cfg);
  ASSERT_EQ(half.epoch_losses.size(), 2u);
  EXPECT_EQ(half.epoch_losses[0], full.epoch_losses[0]);
  EXPECT_EQ(half.epoch_losses[1], full.epoch_losses[1]);

  // Resume into a FRESH model (different init — the checkpoint must carry
  // everything) and train to completion.
  TrainConfig resume_cfg = full_cfg;
  resume_cfg.resume_from = ckpt;
  SeedGlobalRng(99);
  RnTrajRec resumed(SmallConfig(), *ctx_);
  TrainStats rest = TrainModel(resumed, dataset_->train(), resume_cfg);
  ASSERT_EQ(rest.epoch_losses.size(), 2u);  // epochs 3 and 4 only
  EXPECT_EQ(rest.epoch_losses[0], full.epoch_losses[2]);
  EXPECT_EQ(rest.epoch_losses[1], full.epoch_losses[3]);

  // And the resumed weights equal the uninterrupted run's, bit for bit.
  rntraj::StateDict a = reference.StateDict();
  rntraj::StateDict b = resumed.StateDict();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tensor.data(), b[i].tensor.data()) << a[i].name;
  }
}

}  // namespace
}  // namespace rntraj
