// Fleet suite (PR 10): the sharded multi-process serving layer.
//
// Three layers of proof, mirroring snapshot_test.cc's discipline for the
// wire protocol and serve_chaos_test.cc's for the serving semantics:
//   * wire protocol: request/response/control payloads round-trip
//     bit-exactly, and EVERY malformed frame — truncation at every byte
//     boundary, bad magic/version/endianness/type, an oversized length
//     prefix, garbage payloads, trailing bytes — is rejected with an error
//     and untouched outputs, never an abort;
//   * sockets: whole-frame transfer over Unix-domain and TCP endpoints,
//     with the same rejection behaviour for on-the-wire garbage;
//   * the fleet itself: worker processes serve answers bit-identical to
//     in-process inference, the router front-end rejects invalid requests
//     without a worker round-trip, SIGKILLing a worker mid-stream leaves
//     zero unanswered futures and survivors keep serving, a restarted
//     worker rejoins, and a malformed frame costs one connection — not the
//     worker.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/core/rntrajrec.h"
#include "src/fleet/process.h"
#include "src/fleet/profiles.h"
#include "src/fleet/router.h"
#include "src/fleet/socket.h"
#include "src/fleet/wire.h"
#include "src/obs/metrics_wire.h"
#include "src/serve/workload.h"
#include "src/sim/dataset.h"

namespace rntraj {
namespace {

using fleet::FrameHeader;
using fleet::FrameType;
using serve::RecoveryRequest;
using serve::RecoveryResponse;
using serve::ResponseKind;

constexpr auto kFutureTimeout = std::chrono::seconds(60);

RecoveryResponse GetOrDie(std::future<RecoveryResponse>& f) {
  EXPECT_EQ(f.wait_for(kFutureTimeout), std::future_status::ready)
      << "future did not resolve: a routed request was dropped or wedged";
  return f.get();
}

RecoveryRequest SampleRequest() {
  RecoveryRequest req;
  req.input.points = {{{10.5, -3.25}, 100.0},
                      {{11.0, -2.0}, 130.0},
                      {{12.75, 0.5}, 190.0}};
  req.target_times = {100.0, 115.0, 130.0, 145.0, 160.0, 175.0, 190.0};
  req.input_indices = {0, 2, 6};
  req.deadline_ms = 250.0;
  return req;
}

RecoveryResponse SampleResponse() {
  RecoveryResponse resp;
  resp.ok = true;
  resp.kind = ResponseKind::kOk;
  resp.degraded = false;
  resp.recovered.points = {{7, 0.25, 100.0}, {9, 0.5, 115.0}, {9, 1.0, 130.0}};
  resp.batch_size = 4;
  resp.session_id = 1;
  resp.model_version = 3;
  resp.queue_ms = 0.75;
  resp.infer_ms = 12.5;
  return resp;
}

// ----- Wire protocol: round trips -------------------------------------------

TEST(FleetWireTest, RequestRoundTripsBitExact) {
  const RecoveryRequest req = SampleRequest();
  const std::string frame =
      fleet::BuildRequestFrame(42, fleet::EncodeRequestBody(req));

  FrameHeader header;
  std::string error;
  ASSERT_TRUE(
      fleet::ParseFrameHeader(frame.data(), frame.size(), &header, &error))
      << error;
  EXPECT_EQ(header.type, FrameType::kRequest);
  EXPECT_EQ(header.payload_size, frame.size() - fleet::kFrameHeaderBytes);

  uint64_t id = 0;
  RecoveryRequest got;
  ASSERT_TRUE(fleet::DecodeRequestPayload(
      frame.data() + fleet::kFrameHeaderBytes, frame.size() -
          fleet::kFrameHeaderBytes, &id, &got, &error))
      << error;
  EXPECT_EQ(id, 42u);
  ASSERT_EQ(got.input.points.size(), req.input.points.size());
  for (size_t i = 0; i < req.input.points.size(); ++i) {
    EXPECT_EQ(got.input.points[i].pos.x, req.input.points[i].pos.x);
    EXPECT_EQ(got.input.points[i].pos.y, req.input.points[i].pos.y);
    EXPECT_EQ(got.input.points[i].t, req.input.points[i].t);
  }
  EXPECT_EQ(got.target_times, req.target_times);
  EXPECT_EQ(got.input_indices, req.input_indices);
  EXPECT_EQ(got.deadline_ms, req.deadline_ms);
}

TEST(FleetWireTest, ResponseRoundTripsBitExactForEveryKind) {
  for (const ResponseKind kind :
       {ResponseKind::kOk, ResponseKind::kValidationError,
        ResponseKind::kDeadlineMissed, ResponseKind::kShed,
        ResponseKind::kInternalError}) {
    RecoveryResponse resp = SampleResponse();
    resp.kind = kind;
    resp.ok = kind == ResponseKind::kOk;
    resp.degraded = kind == ResponseKind::kDeadlineMissed;
    if (!resp.ok) resp.error = "why it failed \x01 with binary bytes \x00ok";

    const std::string frame = fleet::BuildResponseFrame(99, resp);
    FrameHeader header;
    std::string error;
    ASSERT_TRUE(
        fleet::ParseFrameHeader(frame.data(), frame.size(), &header, &error))
        << error;
    EXPECT_EQ(header.type, FrameType::kResponse);

    uint64_t id = 0;
    RecoveryResponse got;
    ASSERT_TRUE(fleet::DecodeResponsePayload(
        frame.data() + fleet::kFrameHeaderBytes,
        frame.size() - fleet::kFrameHeaderBytes, &id, &got, &error))
        << error;
    EXPECT_EQ(id, 99u);
    EXPECT_EQ(got.ok, resp.ok);
    EXPECT_EQ(got.kind, resp.kind);
    EXPECT_EQ(got.error, resp.error);
    EXPECT_EQ(got.degraded, resp.degraded);
    ASSERT_EQ(got.recovered.points.size(), resp.recovered.points.size());
    for (size_t i = 0; i < resp.recovered.points.size(); ++i) {
      EXPECT_EQ(got.recovered.points[i].seg_id,
                resp.recovered.points[i].seg_id);
      EXPECT_EQ(got.recovered.points[i].ratio,
                resp.recovered.points[i].ratio);
      EXPECT_EQ(got.recovered.points[i].t, resp.recovered.points[i].t);
    }
    EXPECT_EQ(got.batch_size, resp.batch_size);
    EXPECT_EQ(got.session_id, resp.session_id);
    EXPECT_EQ(got.model_version, resp.model_version);
    EXPECT_EQ(got.queue_ms, resp.queue_ms);
    EXPECT_EQ(got.infer_ms, resp.infer_ms);
  }
}

TEST(FleetWireTest, RandomRequestsRoundTripProperty) {
  Rng rng(4242);
  for (int iter = 0; iter < 64; ++iter) {
    RecoveryRequest req;
    const int len = static_cast<int>(rng.UniformInt(1, 40));
    double t = rng.Uniform(0.0, 100.0);
    for (int j = 0; j < len; ++j) {
      t += rng.Uniform(0.1, 30.0);
      req.target_times.push_back(t);
    }
    const int pts = static_cast<int>(rng.UniformInt(1, len));
    int idx = -1;
    for (int j = 0; j < pts; ++j) {
      idx += static_cast<int>(rng.UniformInt(1, (len - 1 - idx) / (pts - j) +
                                                    1));
      idx = std::min(idx, len - (pts - j));
      req.input_indices.push_back(idx);
      req.input.points.push_back({{rng.Uniform(-1e4, 1e4),
                                   rng.Uniform(-1e4, 1e4)},
                                  req.target_times[idx]});
    }
    req.deadline_ms = rng.Uniform(0.0, 1e4);
    const uint64_t want_id = static_cast<uint64_t>(rng.UniformInt(0, 1 << 30));

    const std::string body = fleet::EncodeRequestBody(req);
    const std::string frame = fleet::BuildRequestFrame(want_id, body);
    uint64_t id = 0;
    RecoveryRequest got;
    std::string error;
    ASSERT_TRUE(fleet::DecodeRequestPayload(
        frame.data() + fleet::kFrameHeaderBytes,
        frame.size() - fleet::kFrameHeaderBytes, &id, &got, &error))
        << "iter " << iter << ": " << error;
    EXPECT_EQ(id, want_id);
    EXPECT_EQ(got.target_times, req.target_times);
    EXPECT_EQ(got.input_indices, req.input_indices);
    ASSERT_EQ(got.input.points.size(), req.input.points.size());
    for (size_t i = 0; i < req.input.points.size(); ++i) {
      EXPECT_EQ(got.input.points[i].pos.x, req.input.points[i].pos.x);
      EXPECT_EQ(got.input.points[i].t, req.input.points[i].t);
    }
    // The route key is a pure function of the body: identical across
    // re-encodes, the property consistent sharding rests on.
    EXPECT_EQ(fleet::Fnv1a64(body),
              fleet::Fnv1a64(fleet::EncodeRequestBody(req)));
  }
}

// ----- Wire protocol: the malformed-frame rejection matrix ------------------

TEST(FleetWireRejectionTest, HeaderRejectsBadMagic) {
  std::string frame =
      fleet::BuildRequestFrame(1, fleet::EncodeRequestBody(SampleRequest()));
  // Flip each magic byte in turn: never a parse, always a diagnostic.
  for (size_t i = 0; i < sizeof(fleet::kWireMagic); ++i) {
    std::string bad = frame;
    bad[i] ^= 0x5a;
    FrameHeader header;
    std::string error;
    EXPECT_FALSE(
        fleet::ParseFrameHeader(bad.data(), bad.size(), &header, &error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
  }
}

TEST(FleetWireRejectionTest, HeaderRejectsForeignVersionEndianAndType) {
  const std::string frame =
      fleet::BuildRequestFrame(1, fleet::EncodeRequestBody(SampleRequest()));
  FrameHeader header;
  std::string error;

  std::string bad = frame;
  bad[8] = static_cast<char>(0x7f);  // version word
  EXPECT_FALSE(
      fleet::ParseFrameHeader(bad.data(), bad.size(), &header, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  bad = frame;
  bad[12] ^= 0x01;  // endianness tag
  EXPECT_FALSE(
      fleet::ParseFrameHeader(bad.data(), bad.size(), &header, &error));
  EXPECT_NE(error.find("endian"), std::string::npos) << error;

  for (const uint32_t type : {0u, 9u, 0xffffffffu}) {
    bad = frame;
    std::memcpy(&bad[16], &type, sizeof(type));
    EXPECT_FALSE(
        fleet::ParseFrameHeader(bad.data(), bad.size(), &header, &error));
    EXPECT_NE(error.find("frame type"), std::string::npos) << error;
  }
}

TEST(FleetWireRejectionTest, HeaderRejectsOversizedLengthPrefix) {
  std::string frame =
      fleet::BuildRequestFrame(1, fleet::EncodeRequestBody(SampleRequest()));
  const uint64_t huge = fleet::kMaxFramePayload + 1;
  std::memcpy(&frame[20], &huge, sizeof(huge));
  FrameHeader header;
  std::string error;
  EXPECT_FALSE(
      fleet::ParseFrameHeader(frame.data(), frame.size(), &header, &error));
  EXPECT_NE(error.find("oversized"), std::string::npos) << error;
}

TEST(FleetWireRejectionTest, TruncationAtEveryByteBoundaryIsRejected) {
  const RecoveryRequest req = SampleRequest();
  const std::string frame =
      fleet::BuildRequestFrame(7, fleet::EncodeRequestBody(req));

  // A sentinel the decoder must not disturb on any failure.
  const auto sentinel = [] {
    RecoveryRequest s;
    s.deadline_ms = -777.0;
    s.target_times = {1.0, 2.0, 3.0};
    s.input_indices = {0};
    s.input.points = {{{9.0, 9.0}, 9.0}};
    return s;
  };
  const auto is_sentinel = [](const RecoveryRequest& s) {
    return s.deadline_ms == -777.0 && s.target_times.size() == 3 &&
           s.input_indices.size() == 1 && s.input.points.size() == 1;
  };

  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::string error;
    if (cut < fleet::kFrameHeaderBytes) {
      FrameHeader header;
      EXPECT_FALSE(
          fleet::ParseFrameHeader(frame.data(), cut, &header, &error))
          << "cut " << cut;
      EXPECT_FALSE(error.empty()) << "cut " << cut;
      continue;
    }
    uint64_t id = 0xdead;
    RecoveryRequest out = sentinel();
    EXPECT_FALSE(fleet::DecodeRequestPayload(
        frame.data() + fleet::kFrameHeaderBytes,
        cut - fleet::kFrameHeaderBytes, &id, &out, &error))
        << "cut " << cut;
    EXPECT_FALSE(error.empty()) << "cut " << cut;
    EXPECT_EQ(id, 0xdeadu) << "cut " << cut << ": output id mutated";
    EXPECT_TRUE(is_sentinel(out)) << "cut " << cut << ": output mutated";
  }

  // Same exhaustive sweep over a response payload.
  const std::string rframe = fleet::BuildResponseFrame(7, SampleResponse());
  for (size_t cut = fleet::kFrameHeaderBytes; cut < rframe.size(); ++cut) {
    std::string error;
    uint64_t id = 0xdead;
    RecoveryResponse out;
    out.session_id = -42;
    EXPECT_FALSE(fleet::DecodeResponsePayload(
        rframe.data() + fleet::kFrameHeaderBytes,
        cut - fleet::kFrameHeaderBytes, &id, &out, &error))
        << "cut " << cut;
    EXPECT_FALSE(error.empty()) << "cut " << cut;
    EXPECT_EQ(out.session_id, -42) << "cut " << cut << ": output mutated";
  }
}

TEST(FleetWireRejectionTest, TrailingBytesAreRejected) {
  std::string frame =
      fleet::BuildRequestFrame(7, fleet::EncodeRequestBody(SampleRequest()));
  frame.push_back('\x00');
  uint64_t id = 0;
  RecoveryRequest out;
  std::string error;
  EXPECT_FALSE(fleet::DecodeRequestPayload(
      frame.data() + fleet::kFrameHeaderBytes,
      frame.size() - fleet::kFrameHeaderBytes, &id, &out, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(FleetWireRejectionTest, GarbagePayloadsNeverAbortOrOverAllocate) {
  Rng rng(99);
  for (int iter = 0; iter < 256; ++iter) {
    const size_t n = static_cast<size_t>(rng.UniformInt(0, 160));
    std::string junk(n, '\0');
    for (char& c : junk) {
      c = static_cast<char>(rng.UniformInt(0, 255));
    }
    uint64_t id = 0;
    std::string error;
    RecoveryRequest req;
    fleet::DecodeRequestPayload(junk.data(), junk.size(), &id, &req, &error);
    // A random blob that passes the layout check still cannot claim more
    // elements than its own bytes hold (the pre-allocation bound).
    EXPECT_LE(req.input.points.size(), n / 24 + 1);
    RecoveryResponse resp;
    fleet::DecodeResponsePayload(junk.data(), junk.size(), &id, &resp,
                                 &error);
    obs::MetricsSnapshot snap;
    obs::DecodeMetricsSnapshot(junk.data(), junk.size(), &snap, &error);
  }
}

TEST(FleetWireRejectionTest, PointCountBeyondPayloadRejectedBeforeAllocation) {
  // Claim 2^20 points with only a handful of payload bytes behind the
  // count: the decoder must reject on the byte bound, not allocate 24 MB.
  std::string payload;
  fleet::PutU64(&payload, 5);  // correlation id
  fleet::PutU32(&payload, serve::kRequestWireVersion);
  fleet::PutU32(&payload, fleet::kMaxWirePoints);
  fleet::PutF64(&payload, 1.0);
  uint64_t id = 0;
  RecoveryRequest out;
  std::string error;
  EXPECT_FALSE(fleet::DecodeRequestPayload(payload.data(), payload.size(),
                                           &id, &out, &error));
  EXPECT_NE(error.find("out of bounds"), std::string::npos) << error;
  EXPECT_TRUE(out.input.points.empty());
}

// ----- Wire protocol: control frames ----------------------------------------

TEST(FleetWireTest, ControlFramesRoundTrip) {
  std::string error;
  {
    const std::string frame = fleet::BuildSwapModelFrame("/tmp/weights.snap");
    std::string path;
    ASSERT_TRUE(fleet::DecodeSwapModelPayload(
        frame.data() + fleet::kFrameHeaderBytes,
        frame.size() - fleet::kFrameHeaderBytes, &path, &error))
        << error;
    EXPECT_EQ(path, "/tmp/weights.snap");
  }
  {
    const std::string frame =
        fleet::BuildSwapReplyFrame(false, "shape mismatch", 4);
    bool ok = true;
    std::string message;
    uint64_t version = 0;
    ASSERT_TRUE(fleet::DecodeSwapReplyPayload(
        frame.data() + fleet::kFrameHeaderBytes,
        frame.size() - fleet::kFrameHeaderBytes, &ok, &message, &version,
        &error))
        << error;
    EXPECT_FALSE(ok);
    EXPECT_EQ(message, "shape mismatch");
    EXPECT_EQ(version, 4u);
  }
  {
    const std::string frame = fleet::BuildPongFrame(17.5);
    double depth = 0.0;
    ASSERT_TRUE(fleet::DecodePongPayload(
        frame.data() + fleet::kFrameHeaderBytes,
        frame.size() - fleet::kFrameHeaderBytes, &depth, &error))
        << error;
    EXPECT_EQ(depth, 17.5);
  }
  {
    FrameHeader header;
    const std::string q = fleet::BuildMetricsQueryFrame();
    ASSERT_TRUE(fleet::ParseFrameHeader(q.data(), q.size(), &header, &error))
        << error;
    EXPECT_EQ(header.type, FrameType::kMetricsQuery);
    EXPECT_EQ(header.payload_size, 0u);
  }
}

TEST(FleetWireTest, MetricsSnapshotRoundTripsAndMerges) {
  obs::MetricsSnapshot snap;
  snap.counters["serve.ok"] = 12;
  snap.counters["serve.shed"] = 3;
  snap.gauges["serve.queue.depth"] = 4.5;
  obs::HistogramSnapshot hist;
  hist.edges =
      std::make_shared<const std::vector<double>>(std::vector<double>{
          1.0, 2.0, 4.0, 8.0});
  hist.counts = {0, 2, 5, 1, 0};
  hist.sum = 19.5;
  hist.min = 1.25;
  hist.max = 6.0;
  snap.histograms["serve.latency_ms"] = hist;

  std::string bytes;
  std::string error;
  ASSERT_TRUE(obs::EncodeMetricsSnapshot(snap, &bytes, &error)) << error;

  obs::MetricsSnapshot a;
  ASSERT_TRUE(obs::DecodeMetricsSnapshot(bytes.data(), bytes.size(), &a,
                                         &error))
      << error;
  EXPECT_EQ(a.counters, snap.counters);
  EXPECT_EQ(a.gauges, snap.gauges);
  ASSERT_EQ(a.histograms.count("serve.latency_ms"), 1u);
  const obs::HistogramSnapshot& h = a.histograms["serve.latency_ms"];
  EXPECT_EQ(*h.edges, *hist.edges);
  EXPECT_EQ(h.counts, hist.counts);
  EXPECT_EQ(h.sum, hist.sum);
  EXPECT_EQ(h.min, hist.min);
  EXPECT_EQ(h.max, hist.max);

  // Two decoded worker snapshots merge exactly: counters and histogram
  // buckets add, so the fleet quantile is computed over the union.
  obs::MetricsSnapshot b;
  ASSERT_TRUE(obs::DecodeMetricsSnapshot(bytes.data(), bytes.size(), &b,
                                         &error));
  a.Merge(b);
  EXPECT_EQ(a.counters["serve.ok"], 24);
  EXPECT_EQ(a.histograms["serve.latency_ms"].TotalCount(),
            2 * hist.TotalCount());
  EXPECT_EQ(a.histograms["serve.latency_ms"].sum, 2 * hist.sum);

  // And the codec is as strict as the frame decoders: every truncation of
  // the metrics payload is an error, not a partial snapshot.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    obs::MetricsSnapshot out;
    std::string trunc_error;
    EXPECT_FALSE(
        obs::DecodeMetricsSnapshot(bytes.data(), cut, &out, &trunc_error))
        << "cut " << cut;
    EXPECT_TRUE(out.counters.empty()) << "cut " << cut << ": mutated";
  }
}

TEST(FleetWireTest, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors: the route key must never drift, or a
  // router upgrade reshuffles every shard.
  EXPECT_EQ(fleet::Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fleet::Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fleet::Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

// ----- Sockets ---------------------------------------------------------------

std::string TestSocketPath(const char* name) {
  return "unix:/tmp/fleet_test_" + std::to_string(::getpid()) + "_" + name +
         ".sock";
}

TEST(FleetSocketTest, UnixFrameRoundTrip) {
  const std::string endpoint = TestSocketPath("unix_rt");
  fleet::Socket listener;
  std::string error;
  ASSERT_TRUE(fleet::ListenOn(endpoint, 4, &listener, nullptr, &error))
      << error;

  std::thread server([&] {
    fleet::Socket conn;
    std::string server_error;
    ASSERT_TRUE(fleet::AcceptOn(listener, &conn, &server_error))
        << server_error;
    FrameHeader header;
    std::string payload;
    ASSERT_TRUE(fleet::RecvFrame(conn, &header, &payload, &server_error))
        << server_error;
    EXPECT_EQ(header.type, FrameType::kRequest);
    // Echo the payload back as a pong-style response frame.
    ASSERT_TRUE(fleet::SendFrame(conn, fleet::BuildPongFrame(1.0),
                                 &server_error))
        << server_error;
  });

  fleet::Socket client;
  ASSERT_TRUE(fleet::ConnectTo(endpoint, &client, &error)) << error;
  const std::string frame =
      fleet::BuildRequestFrame(5, fleet::EncodeRequestBody(SampleRequest()));
  ASSERT_TRUE(fleet::SendFrame(client, frame, &error)) << error;
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(fleet::RecvFrame(client, &header, &payload, &error)) << error;
  EXPECT_EQ(header.type, FrameType::kPong);
  server.join();
}

TEST(FleetSocketTest, TcpPortZeroResolvesAndRoundTrips) {
  fleet::Socket listener;
  std::string bound;
  std::string error;
  ASSERT_TRUE(
      fleet::ListenOn("tcp:127.0.0.1:0", 4, &listener, &bound, &error))
      << error;
  // The kernel-assigned port is readable back for clients.
  ASSERT_NE(bound, "tcp:127.0.0.1:0");
  ASSERT_EQ(bound.rfind("tcp:127.0.0.1:", 0), 0u) << bound;

  std::thread server([&] {
    fleet::Socket conn;
    std::string server_error;
    ASSERT_TRUE(fleet::AcceptOn(listener, &conn, &server_error));
    FrameHeader header;
    std::string payload;
    ASSERT_TRUE(fleet::RecvFrame(conn, &header, &payload, &server_error));
    ASSERT_TRUE(
        fleet::SendFrame(conn, fleet::BuildPongFrame(2.0), &server_error));
  });
  fleet::Socket client;
  ASSERT_TRUE(fleet::ConnectTo(bound, &client, &error)) << error;
  ASSERT_TRUE(fleet::SendFrame(client, fleet::BuildPingFrame(), &error));
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(fleet::RecvFrame(client, &header, &payload, &error)) << error;
  double depth = 0.0;
  ASSERT_TRUE(fleet::DecodePongPayload(payload.data(), payload.size(),
                                       &depth, &error));
  EXPECT_EQ(depth, 2.0);
  server.join();
}

TEST(FleetSocketTest, RecvFrameRejectsGarbageAndOversizedHeaders) {
  const std::string endpoint = TestSocketPath("garbage");
  fleet::Socket listener;
  std::string error;
  ASSERT_TRUE(fleet::ListenOn(endpoint, 4, &listener, nullptr, &error));

  std::thread server([&] {
    for (int round = 0; round < 2; ++round) {
      fleet::Socket conn;
      std::string server_error;
      ASSERT_TRUE(fleet::AcceptOn(listener, &conn, &server_error));
      FrameHeader header;
      std::string payload;
      // Both rounds must fail cleanly — error string, no abort, and
      // critically no payload allocation for the oversized length prefix.
      EXPECT_FALSE(
          fleet::RecvFrame(conn, &header, &payload, &server_error));
      EXPECT_FALSE(server_error.empty());
    }
  });

  {
    fleet::Socket client;
    ASSERT_TRUE(fleet::ConnectTo(endpoint, &client, &error));
    std::string junk(fleet::kFrameHeaderBytes, '\x5a');
    ASSERT_TRUE(fleet::SendAll(client, junk, &error));
  }
  {
    fleet::Socket client;
    ASSERT_TRUE(fleet::ConnectTo(endpoint, &client, &error));
    std::string head;
    fleet::AppendFrameHeader(&head, FrameType::kRequest,
                             fleet::kMaxFramePayload + 1);
    ASSERT_TRUE(fleet::SendAll(client, head, &error));
  }
  server.join();
}

// ----- Router front end (no workers needed) ---------------------------------

TEST(FleetRouterTest, FrontEndRejectsInvalidRequestsWithoutWorkerRoundTrip) {
  // Zero workers: if validation were deferred to a worker, these futures
  // could never resolve with a validation error. This regression-pins the
  // hoisted ValidateRequest at the router front end.
  fleet::FleetRouterConfig cfg;
  fleet::FleetRouter router(cfg);

  RecoveryRequest empty;  // no input points
  auto f1 = router.Submit(std::move(empty));
  RecoveryResponse r1 = GetOrDie(f1);
  EXPECT_FALSE(r1.ok);
  EXPECT_EQ(r1.kind, ResponseKind::kValidationError);
  EXPECT_NE(r1.error.find("empty input"), std::string::npos) << r1.error;

  RecoveryRequest unsorted = SampleRequest();
  unsorted.target_times[1] = unsorted.target_times[0];  // not increasing
  auto f2 = router.Submit(std::move(unsorted));
  RecoveryResponse r2 = GetOrDie(f2);
  EXPECT_EQ(r2.kind, ResponseKind::kValidationError);

  // A VALID request with no workers is an internal error, distinct from
  // validation — and counted separately.
  auto f3 = router.Submit(SampleRequest());
  RecoveryResponse r3 = GetOrDie(f3);
  EXPECT_FALSE(r3.ok);
  EXPECT_EQ(r3.kind, ResponseKind::kInternalError);
  EXPECT_NE(r3.error.find("no alive fleet worker"), std::string::npos)
      << r3.error;

  const fleet::FleetStats stats = router.Stats();
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.validation_rejected, 2);
  EXPECT_EQ(stats.no_worker_available, 1);
  router.Shutdown();
}

// ----- Cross-process fixture -------------------------------------------------

/// Shares the chaos-tiny universe across the multi-process tests: the
/// profile the workers rebuild by name, the in-process reference answers,
/// and one snapshot every worker loads. Mirrors ServeChaosFixture's model
/// seed so both suites pin the same weights.
class FleetProcessFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fleet::FleetProfile profile;
    std::string error;
    ASSERT_TRUE(fleet::LookupFleetProfile("chaos-tiny", &profile, &error))
        << error;
    dataset_ = BuildDataset(profile.dataset).release();
    ctx_ = new ModelContext(ModelContext::FromDataset(*dataset_));
    SeedGlobalRng(61);
    model_ = new RnTrajRec(profile.model, *ctx_);
    model_->SetTrainingMode(false);
    model_->BeginInference();
    for (const auto& s : dataset_->test()) {
      serve::RecoveryRequest req = serve::RequestFromSample(s);
      TrajectorySample eph = MakeEphemeralSample(
          std::move(req.input), std::move(req.input_indices),
          req.target_times);
      reference_->push_back(model_->Recover(eph));
    }
    snapshot_path_ = new std::string("/tmp/fleet_test_" +
                                     std::to_string(::getpid()) +
                                     "_model.snapshot");
    ASSERT_TRUE(model_->SaveSnapshot(*snapshot_path_, &error)) << error;
  }

  static void TearDownTestSuite() {
    std::remove(snapshot_path_->c_str());
    delete snapshot_path_;
    delete model_;
    delete ctx_;
    delete dataset_;
    delete reference_;
    snapshot_path_ = nullptr;
    model_ = nullptr;
    ctx_ = nullptr;
    dataset_ = nullptr;
    reference_ = nullptr;
  }

  struct Fleet {
    std::vector<pid_t> pids;
    fleet::FleetRouterConfig config;
    std::vector<fleet::WorkerSpawn> spawns;
  };

  /// Spawns `n` chaos-tiny workers on per-test Unix sockets.
  static Fleet SpawnFleet(int n, const char* tag) {
    Fleet f;
    const std::string base = "/tmp/fleet_test_" +
                             std::to_string(::getpid()) + "_" + tag + "_w";
    for (int i = 0; i < n; ++i) {
      fleet::WorkerSpawn spawn;
      spawn.profile = "chaos-tiny";
      spawn.snapshot_path = *snapshot_path_;
      spawn.data_endpoint = "unix:" + base + std::to_string(i) + ".sock";
      spawn.control_endpoint = "unix:" + base + std::to_string(i) + ".ctl";
      pid_t pid = 0;
      std::string error;
      EXPECT_TRUE(fleet::SpawnWorkerProcess(spawn, &pid, &error)) << error;
      f.pids.push_back(pid);
      f.spawns.push_back(spawn);
      f.config.workers.push_back(
          {spawn.data_endpoint, spawn.control_endpoint});
    }
    return f;
  }

  static void KillFleet(Fleet* f) {
    for (pid_t& pid : f->pids) {
      fleet::KillWorkerProcess(pid);
      pid = -1;
    }
    for (const auto& spawn : f->spawns) {
      std::remove(spawn.data_endpoint.substr(5).c_str());
      std::remove(spawn.control_endpoint.substr(5).c_str());
    }
  }

  static void ExpectMatchesReference(const RecoveryResponse& resp, size_t i) {
    const MatchedTrajectory& ref = (*reference_)[i];
    ASSERT_EQ(resp.recovered.size(), ref.size()) << "request " << i;
    for (int j = 0; j < ref.size(); ++j) {
      EXPECT_EQ(resp.recovered.points[j].seg_id, ref.points[j].seg_id)
          << "request " << i << " step " << j;
      EXPECT_NEAR(resp.recovered.points[j].ratio, ref.points[j].ratio, 1e-5)
          << "request " << i << " step " << j;
    }
  }

  static Dataset* dataset_;
  static ModelContext* ctx_;
  static RnTrajRec* model_;
  static std::vector<MatchedTrajectory>* reference_;
  static std::string* snapshot_path_;
};

Dataset* FleetProcessFixture::dataset_ = nullptr;
ModelContext* FleetProcessFixture::ctx_ = nullptr;
RnTrajRec* FleetProcessFixture::model_ = nullptr;
std::vector<MatchedTrajectory>* FleetProcessFixture::reference_ =
    new std::vector<MatchedTrajectory>();
std::string* FleetProcessFixture::snapshot_path_ = nullptr;

TEST_F(FleetProcessFixture, FleetAnswersAreBitIdenticalToInProcess) {
  Fleet f = SpawnFleet(2, "equiv");
  {
    fleet::FleetRouter router(f.config);
    ASSERT_TRUE(router.WaitForAlive(2, 120000)) << "workers never came up";

    std::vector<std::future<RecoveryResponse>> futures;
    std::vector<size_t> sample_of;
    for (int pass = 0; pass < 3; ++pass) {
      for (size_t i = 0; i < dataset_->test().size(); ++i) {
        futures.push_back(
            router.Submit(serve::RequestFromSample(dataset_->test()[i])));
        sample_of.push_back(i);
      }
    }
    for (size_t k = 0; k < futures.size(); ++k) {
      RecoveryResponse resp = GetOrDie(futures[k]);
      ASSERT_TRUE(resp.ok) << "request " << k << ": " << resp.error;
      EXPECT_EQ(resp.kind, ResponseKind::kOk);
      ExpectMatchesReference(resp, sample_of[k]);
    }

    // Both shards served: consistent hashing spread the 8 distinct bodies.
    const fleet::FleetStats stats = router.Stats();
    int64_t total_sent = 0;
    for (const auto& w : stats.workers) {
      total_sent += w.sent;
      EXPECT_EQ(w.answered, w.sent) << "worker " << w.index;
      EXPECT_EQ(w.failed, 0) << "worker " << w.index;
    }
    EXPECT_EQ(total_sent, static_cast<int64_t>(futures.size()));
    EXPECT_GT(stats.workers[0].sent, 0);
    EXPECT_GT(stats.workers[1].sent, 0);

    // Identical bodies land on identical workers: re-submitting the same
    // request must not move shards (counted via per-worker sent deltas).
    const auto before = router.Stats();
    auto f1 = router.Submit(serve::RequestFromSample(dataset_->test()[0]));
    GetOrDie(f1);
    auto f2 = router.Submit(serve::RequestFromSample(dataset_->test()[0]));
    GetOrDie(f2);
    const auto after = router.Stats();
    int moved = 0;
    for (size_t w = 0; w < after.workers.size(); ++w) {
      if (after.workers[w].sent != before.workers[w].sent) ++moved;
    }
    EXPECT_EQ(moved, 1) << "equal bodies routed to different workers";

    // The merged fleet metrics account for every request served.
    std::string merge_error;
    obs::MetricsSnapshot ms = router.FleetMetrics(&merge_error);
    EXPECT_TRUE(merge_error.empty()) << merge_error;
    EXPECT_EQ(ms.counters["serve.ok"],
              static_cast<int64_t>(futures.size()) + 2);
    router.Shutdown();
  }
  KillFleet(&f);
}

TEST_F(FleetProcessFixture, SigkillMidStreamLeavesZeroUnansweredRequests) {
  Fleet f = SpawnFleet(3, "chaos");
  {
    fleet::FleetRouter router(f.config);
    ASSERT_TRUE(router.WaitForAlive(3, 120000)) << "workers never came up";

    // Flood a stream and SIGKILL one worker while it is in flight.
    std::vector<std::future<RecoveryResponse>> futures;
    std::vector<size_t> sample_of;
    for (int pass = 0; pass < 6; ++pass) {
      for (size_t i = 0; i < dataset_->test().size(); ++i) {
        futures.push_back(
            router.Submit(serve::RequestFromSample(dataset_->test()[i])));
        sample_of.push_back(i);
      }
    }
    fleet::KillWorkerProcess(f.pids[0]);  // SIGKILL: no goodbye frame
    f.pids[0] = -1;

    // The hard guarantee: EVERY submitted future resolves — answered by a
    // worker, or failed with a classified internal error. Never dangling.
    int ok = 0;
    int failed = 0;
    for (size_t k = 0; k < futures.size(); ++k) {
      RecoveryResponse resp = GetOrDie(futures[k]);
      if (resp.ok) {
        ++ok;
        ExpectMatchesReference(resp, sample_of[k]);
      } else {
        ++failed;
        EXPECT_EQ(resp.kind, ResponseKind::kInternalError)
            << "request " << k << ": " << resp.error;
      }
    }
    EXPECT_EQ(ok + failed, static_cast<int>(futures.size()));
    EXPECT_GT(ok, 0) << "survivors served nothing";

    // Wait for the router to notice the death, then verify survivors carry
    // the full load: every post-kill request must succeed.
    const auto death_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (router.AliveWorkers().size() != 2 &&
           std::chrono::steady_clock::now() < death_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(router.AliveWorkers().size(), 2u) << "dead worker undetected";

    std::vector<std::future<RecoveryResponse>> after;
    for (size_t i = 0; i < dataset_->test().size(); ++i) {
      after.push_back(
          router.Submit(serve::RequestFromSample(dataset_->test()[i])));
    }
    for (size_t i = 0; i < after.size(); ++i) {
      RecoveryResponse resp = GetOrDie(after[i]);
      ASSERT_TRUE(resp.ok) << "post-kill request " << i << ": " << resp.error;
      ExpectMatchesReference(resp, i);
    }

    // Restart: a fresh worker process on the SAME endpoints rejoins the
    // ring automatically (manager reconnect + unlink-before-bind).
    pid_t replacement = 0;
    std::string error;
    ASSERT_TRUE(fleet::SpawnWorkerProcess(f.spawns[0], &replacement, &error))
        << error;
    f.pids[0] = replacement;
    ASSERT_TRUE(router.WaitForAlive(3, 120000)) << "restart never rejoined";

    std::vector<std::future<RecoveryResponse>> rejoined;
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < dataset_->test().size(); ++i) {
        rejoined.push_back(
            router.Submit(serve::RequestFromSample(dataset_->test()[i])));
      }
    }
    for (size_t k = 0; k < rejoined.size(); ++k) {
      RecoveryResponse resp = GetOrDie(rejoined[k]);
      ASSERT_TRUE(resp.ok) << "post-restart request " << k << ": "
                           << resp.error;
      ExpectMatchesReference(resp, k % dataset_->test().size());
    }
    router.Shutdown();
  }
  KillFleet(&f);
}

TEST_F(FleetProcessFixture, MalformedFrameClosesOneConnectionNotTheWorker) {
  Fleet f = SpawnFleet(1, "malformed");
  {
    fleet::FleetRouter router(f.config);
    ASSERT_TRUE(router.WaitForAlive(1, 120000)) << "worker never came up";

    // Poison a RAW side connection with garbage bytes: the worker must
    // drop that connection (EOF for us) and nothing else.
    {
      fleet::Socket raw;
      std::string error;
      ASSERT_TRUE(
          fleet::ConnectTo(f.spawns[0].data_endpoint, &raw, &error))
          << error;
      std::string junk(fleet::kFrameHeaderBytes + 16, '\x7e');
      ASSERT_TRUE(fleet::SendAll(raw, junk, &error)) << error;
      FrameHeader header;
      std::string payload;
      EXPECT_FALSE(fleet::RecvFrame(raw, &header, &payload, &error))
          << "worker answered a garbage frame";
    }
    // A well-formed frame with a garbage payload is equally fatal to its
    // own connection only.
    {
      fleet::Socket raw;
      std::string error;
      ASSERT_TRUE(
          fleet::ConnectTo(f.spawns[0].data_endpoint, &raw, &error));
      std::string frame;
      fleet::AppendFrameHeader(&frame, FrameType::kRequest, 24);
      frame.append(24, '\xff');
      ASSERT_TRUE(fleet::SendAll(raw, frame, &error));
      FrameHeader header;
      std::string payload;
      EXPECT_FALSE(fleet::RecvFrame(raw, &header, &payload, &error));
    }

    // The router's connection — and the worker — survived both.
    std::vector<std::future<RecoveryResponse>> futures;
    for (size_t i = 0; i < dataset_->test().size(); ++i) {
      futures.push_back(
          router.Submit(serve::RequestFromSample(dataset_->test()[i])));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      RecoveryResponse resp = GetOrDie(futures[i]);
      ASSERT_TRUE(resp.ok) << resp.error;
      ExpectMatchesReference(resp, i);
    }
    router.Shutdown();
  }
  KillFleet(&f);
}

TEST_F(FleetProcessFixture, ControlEndpointServesMetricsAndPing) {
  Fleet f = SpawnFleet(1, "control");
  {
    fleet::FleetRouter router(f.config);
    ASSERT_TRUE(router.WaitForAlive(1, 120000));
    std::vector<std::future<RecoveryResponse>> futures;
    for (size_t i = 0; i < dataset_->test().size(); ++i) {
      futures.push_back(
          router.Submit(serve::RequestFromSample(dataset_->test()[i])));
    }
    for (auto& fut : futures) {
      ASSERT_TRUE(GetOrDie(fut).ok);
    }

    // Raw control round trips, the scrape path an external exporter uses.
    fleet::Socket control;
    std::string error;
    ASSERT_TRUE(
        fleet::ConnectTo(f.spawns[0].control_endpoint, &control, &error))
        << error;
    ASSERT_TRUE(
        fleet::SendFrame(control, fleet::BuildMetricsQueryFrame(), &error));
    FrameHeader header;
    std::string payload;
    ASSERT_TRUE(fleet::RecvFrame(control, &header, &payload, &error))
        << error;
    ASSERT_EQ(header.type, FrameType::kMetricsReply);
    obs::MetricsSnapshot snap;
    ASSERT_TRUE(fleet::DecodeMetricsReplyPayload(payload.data(),
                                                 payload.size(), &snap,
                                                 &error))
        << error;
    EXPECT_EQ(snap.counters["serve.ok"],
              static_cast<int64_t>(futures.size()));
    EXPECT_GT(snap.histograms["serve.latency_ms"].TotalCount(), 0);

    // Ping on the same connection: liveness + queue depth (drained: 0).
    ASSERT_TRUE(fleet::SendFrame(control, fleet::BuildPingFrame(), &error));
    ASSERT_TRUE(fleet::RecvFrame(control, &header, &payload, &error));
    ASSERT_EQ(header.type, FrameType::kPong);
    double depth = -1.0;
    ASSERT_TRUE(fleet::DecodePongPayload(payload.data(), payload.size(),
                                         &depth, &error));
    EXPECT_EQ(depth, 0.0);

    // A swap pointed at a nonsense path fails gracefully over the wire and
    // leaves the worker serving generation 0.
    ASSERT_TRUE(fleet::SendFrame(
        control, fleet::BuildSwapModelFrame("/nonexistent/weights.snap"),
        &error));
    ASSERT_TRUE(fleet::RecvFrame(control, &header, &payload, &error));
    ASSERT_EQ(header.type, FrameType::kSwapReply);
    bool swap_ok = true;
    std::string message;
    uint64_t version = 99;
    ASSERT_TRUE(fleet::DecodeSwapReplyPayload(payload.data(), payload.size(),
                                              &swap_ok, &message, &version,
                                              &error));
    EXPECT_FALSE(swap_ok);
    EXPECT_FALSE(message.empty());
    EXPECT_EQ(version, 0u);

    auto still = router.Submit(serve::RequestFromSample(dataset_->test()[0]));
    RecoveryResponse resp = GetOrDie(still);
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.model_version, 0u);
    router.Shutdown();
  }
  KillFleet(&f);
}

}  // namespace
}  // namespace rntraj
