// Sharded serving fleet demo: the single-process RecoveryService scaled
// across worker processes. Builds the deterministic chaos-tiny universe,
// snapshots a model, spawns two fleet_worker processes that each load the
// snapshot, and routes every test request through the FleetRouter over the
// wire protocol — verifying that fleet-served answers are bit-identical (on
// segment ids) to in-process inference, that the merged fleet metrics add
// up, and that a rolling deploy flips every worker to a new model
// generation with zero dropped requests. The exit code enforces all of it.

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/rntrajrec.h"
#include "src/fleet/process.h"
#include "src/fleet/profiles.h"
#include "src/fleet/router.h"
#include "src/serve/workload.h"
#include "src/sim/dataset.h"

using namespace rntraj;

int main() {
  const std::string tag = std::to_string(::getpid());
  const std::string snap_path = "/tmp/fleet_demo_" + tag + ".snapshot";

  // The worker rebuilds this exact universe from the profile name; only the
  // weights travel (via the snapshot), which is the equivalence guarantee.
  fleet::FleetProfile profile;
  std::string error;
  if (!fleet::LookupFleetProfile("chaos-tiny", &profile, &error)) {
    std::fprintf(stderr, "profile: %s\n", error.c_str());
    return 1;
  }
  auto dataset = BuildDataset(profile.dataset);
  ModelContext ctx = ModelContext::FromDataset(*dataset);
  std::printf("chaos-tiny city: %d segments, %d test trajectories\n",
              dataset->roadnet().num_segments(),
              static_cast<int>(dataset->test().size()));

  SeedGlobalRng(61);
  RnTrajRec model(profile.model, ctx);
  model.SetTrainingMode(false);
  model.BeginInference();
  if (!model.SaveSnapshot(snap_path, &error)) {
    std::fprintf(stderr, "snapshot: %s\n", error.c_str());
    return 1;
  }

  // In-process reference answers (sequential, no service, no fleet).
  std::vector<MatchedTrajectory> offline;
  for (const auto& s : dataset->test()) {
    serve::RecoveryRequest req = serve::RequestFromSample(s);
    TrajectorySample eph = MakeEphemeralSample(
        std::move(req.input), std::move(req.input_indices), req.target_times);
    offline.push_back(model.Recover(eph));
  }

  // Spawn the fleet: two shared-nothing worker processes on Unix sockets.
  const int kWorkers = 2;
  fleet::FleetRouterConfig rcfg;
  std::vector<pid_t> pids;
  for (int i = 0; i < kWorkers; ++i) {
    fleet::WorkerSpawn spawn;
    spawn.profile = "chaos-tiny";
    spawn.snapshot_path = snap_path;
    spawn.data_endpoint = "unix:/tmp/fleet_demo_" + tag + "_w" +
                          std::to_string(i) + ".sock";
    spawn.control_endpoint = "unix:/tmp/fleet_demo_" + tag + "_w" +
                             std::to_string(i) + ".ctl";
    pid_t pid = 0;
    if (!fleet::SpawnWorkerProcess(spawn, &pid, &error)) {
      std::fprintf(stderr, "spawn: %s\n", error.c_str());
      return 1;
    }
    pids.push_back(pid);
    rcfg.workers.push_back({spawn.data_endpoint, spawn.control_endpoint});
  }
  std::printf("spawned %d workers, routing...\n", kWorkers);

  int exit_code = 0;
  {
    fleet::FleetRouter router(rcfg);
    if (!router.WaitForAlive(kWorkers, /*timeout_ms=*/120000)) {
      std::fprintf(stderr, "workers never came up\n");
      return 1;
    }

    // Route every test request through the fleet, a few passes so both
    // shards serve traffic.
    const int kPasses = 4;
    std::vector<std::future<serve::RecoveryResponse>> futures;
    std::vector<size_t> sample_of;
    for (int pass = 0; pass < kPasses; ++pass) {
      for (size_t i = 0; i < dataset->test().size(); ++i) {
        futures.push_back(
            router.Submit(serve::RequestFromSample(dataset->test()[i])));
        sample_of.push_back(i);
      }
    }
    int ok = 0;
    int seg_mismatches = 0;
    double max_ratio_diff = 0.0;
    for (size_t k = 0; k < futures.size(); ++k) {
      const serve::RecoveryResponse resp = futures[k].get();
      if (!resp.ok) {
        std::fprintf(stderr, "request %zu failed: %s\n", k,
                     resp.error.c_str());
        continue;
      }
      ++ok;
      const MatchedTrajectory& ref = offline[sample_of[k]];
      for (int j = 0; j < ref.size(); ++j) {
        if (resp.recovered.points[j].seg_id != ref.points[j].seg_id) {
          ++seg_mismatches;
        }
        max_ratio_diff = std::max(
            max_ratio_diff,
            std::abs(resp.recovered.points[j].ratio - ref.points[j].ratio));
      }
    }
    std::printf("fleet answered %d/%d ok\n", ok,
                static_cast<int>(futures.size()));
    std::printf("fleet == in-process: %s (seg mismatches %d, max ratio diff "
                "%.2e)\n",
                seg_mismatches == 0 && max_ratio_diff <= 1e-5 ? "yes" : "NO",
                seg_mismatches, max_ratio_diff);

    // Fleet telemetry: per-worker snapshots merged into one view. The
    // summed serve.ok must account for every answered request.
    obs::MetricsSnapshot fleet_ms = router.FleetMetrics(&error);
    if (!error.empty()) std::fprintf(stderr, "metrics: %s\n", error.c_str());
    const auto cit = fleet_ms.counters.find("serve.ok");
    const long long fleet_ok =
        cit == fleet_ms.counters.end() ? 0 : cit->second;
    std::printf("merged fleet metrics: serve.ok %lld across %d workers\n",
                fleet_ok, kWorkers);
    const auto hit = fleet_ms.histograms.find("serve.latency_ms");
    if (hit != fleet_ms.histograms.end() && hit->second.TotalCount() > 0) {
      std::printf("fleet latency: count %lld p50 %.2f ms p99 %.2f ms\n",
                  static_cast<long long>(hit->second.TotalCount()),
                  hit->second.Quantile(0.50), hit->second.Quantile(0.99));
    }
    const auto stats = router.Stats();
    for (const auto& w : stats.workers) {
      std::printf("  worker %d: alive=%d sent %lld answered %lld failed "
                  "%lld\n",
                  w.index, w.alive ? 1 : 0,
                  static_cast<long long>(w.sent),
                  static_cast<long long>(w.answered),
                  static_cast<long long>(w.failed));
    }

    // Rolling deploy: every worker swaps to a fresh generation of the same
    // weights; post-deploy answers carry version 1 and still match.
    bool deploy_ok = router.RollingDeploy(snap_path, &error);
    if (!deploy_ok) std::fprintf(stderr, "deploy: %s\n", error.c_str());
    int post_ok = 0;
    int post_stale = 0;
    int post_mismatch = 0;
    if (deploy_ok) {
      std::vector<std::future<serve::RecoveryResponse>> post;
      for (const auto& s : dataset->test()) {
        post.push_back(router.Submit(serve::RequestFromSample(s)));
      }
      for (size_t i = 0; i < post.size(); ++i) {
        const serve::RecoveryResponse resp = post[i].get();
        if (!resp.ok) continue;
        ++post_ok;
        if (resp.model_version != 1) ++post_stale;
        const MatchedTrajectory& ref = offline[i];
        for (int j = 0; j < ref.size(); ++j) {
          if (resp.recovered.points[j].seg_id != ref.points[j].seg_id) {
            ++post_mismatch;
          }
        }
      }
      std::printf("rolling deploy: %d/%d post-deploy ok, %d stale-version "
                  "stamps, %d mismatches\n",
                  post_ok, static_cast<int>(post.size()), post_stale,
                  post_mismatch);
    }

    const bool pass = ok == static_cast<int>(futures.size()) &&
                      seg_mismatches == 0 && max_ratio_diff <= 1e-5 &&
                      fleet_ok >= ok && deploy_ok &&
                      post_ok == static_cast<int>(dataset->test().size()) &&
                      post_stale == 0 && post_mismatch == 0;
    exit_code = pass ? 0 : 1;
    router.Shutdown();
  }

  for (pid_t pid : pids) fleet::KillWorkerProcess(pid);
  for (int i = 0; i < kWorkers; ++i) {
    std::remove(("/tmp/fleet_demo_" + tag + "_w" + std::to_string(i) + ".sock")
                    .c_str());
    std::remove(("/tmp/fleet_demo_" + tag + "_w" + std::to_string(i) + ".ctl")
                    .c_str());
  }
  std::remove(snap_path.c_str());
  std::printf("%s\n", exit_code == 0 ? "FLEET DEMO PASS" : "FLEET DEMO FAIL");
  return exit_code;
}
