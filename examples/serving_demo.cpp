// Online recovery serving demo: the paper's motivating scenario turned into
// a request/response system. Trains a small RNTrajRec, stands up a
// RecoveryService (micro-batching queue + re-entrant sessions + roadnet
// query caches) with full observability on (per-request tracing, metrics
// registry, stage profiling), replays a Poisson request stream against it,
// and reports throughput, the complete outcome breakdown, latency
// percentiles, a per-stage wall-time table, cache behaviour, and recovery
// accuracy — verifying along the way that served answers match offline
// single-request inference exactly.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/rntrajrec.h"
#include "src/core/trainer.h"
#include "src/eval/metrics.h"
#include "src/eval/report.h"
#include "src/serve/recovery_service.h"
#include "src/serve/workload.h"
#include "src/sim/presets.h"

using namespace rntraj;

int main() {
  SeedGlobalRng(17);
  DatasetConfig config = PortoConfig(BenchScale::kTiny, /*keep_every=*/8);
  config.num_train = 24;
  config.num_test = 12;
  auto dataset = BuildDataset(config);
  ModelContext ctx = ModelContext::FromDataset(*dataset);
  std::printf("porto-like city: %d segments, %d test trajectories\n",
              dataset->roadnet().num_segments(),
              static_cast<int>(dataset->test().size()));

  RnTrajRecConfig mcfg;
  mcfg.dim = 16;
  mcfg.delta = 250.0;
  mcfg.max_subgraph_nodes = 16;
  mcfg.gridgnn.gnn_layers = 1;
  mcfg.gridgnn.heads = 2;
  mcfg.gpsformer.blocks = 1;
  mcfg.gpsformer.heads = 2;
  mcfg.gpsformer.grl.heads = 2;
  mcfg.Sync();
  RnTrajRec model(mcfg, ctx);

  TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 8;
  std::printf("training %s for %d epochs...\n", model.name().c_str(),
              tc.epochs);
  TrainModel(model, dataset->train(), tc);

  // Offline reference answers: single-request inference, no service.
  model.SetTrainingMode(false);
  model.BeginInference();
  std::vector<serve::RecoveryRequest> requests;
  std::vector<MatchedTrajectory> offline;
  for (const auto& s : dataset->test()) {
    requests.push_back(serve::RequestFromSample(s));
  }
  {
    BufferPoolScope scope;
    for (const auto& s : dataset->test()) {
      TrajectorySample eph = MakeEphemeralSample(
          s.input, s.input_indices, [&] {
            std::vector<double> times;
            for (const auto& p : s.truth.points) times.push_back(p.t);
            return times;
          }());
      offline.push_back(model.Recover(eph));
    }
  }

  // Stand the service up: cache the sub-graph delta and both decoder radii.
  serve::RecoveryServiceConfig scfg;
  scfg.num_sessions = 2;
  scfg.batcher.max_batch_size = 8;
  scfg.batcher.max_batch_delay_us = 2000;
  scfg.cache_radii = {mcfg.delta, mcfg.decoder.mask_radius,
                      mcfg.decoder.spatial_prior_radius};
  scfg.prefetch_radii = {mcfg.delta};
  scfg.max_dijkstra_rows = 512;
  // Full observability: trace every request (the demo stream is tiny) and
  // attribute model wall time to stages for the table below.
  scfg.trace.sample_rate = 1.0;
  scfg.trace.ring_capacity = 64;
  scfg.profile_stages = true;
  serve::RecoveryService service(&model, ctx, scfg);

  // Replay a Poisson request stream (open loop).
  const int kRequests = 120;
  const double kQps = 300.0;
  auto workload =
      serve::PoissonWorkload(dataset->test(), kRequests, kQps, /*seed=*/5);
  std::printf("replaying %d requests at %.0f qps...\n", kRequests, kQps);
  std::vector<std::future<serve::RecoveryResponse>> futures;
  futures.reserve(workload.size());
  const auto start = std::chrono::steady_clock::now();
  for (auto& item : workload) {
    const auto due = start + std::chrono::duration_cast<
                                 std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(item.arrival_s));
    std::this_thread::sleep_until(due);
    futures.push_back(service.Submit(std::move(item.request)));
  }
  std::vector<serve::RecoveryResponse> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Served answers must be exactly what offline inference produced.
  int seg_mismatches = 0;
  double max_ratio_diff = 0.0;
  int ok = 0;
  for (size_t i = 0; i < responses.size(); ++i) {
    const auto& resp = responses[i];
    if (!resp.ok) continue;
    ++ok;
    const MatchedTrajectory& ref = offline[workload[i].sample_index];
    for (int j = 0; j < ref.size(); ++j) {
      if (resp.recovered.points[j].seg_id != ref.points[j].seg_id) {
        ++seg_mismatches;
      }
      max_ratio_diff =
          std::max(max_ratio_diff, std::abs(resp.recovered.points[j].ratio -
                                            ref.points[j].ratio));
    }
  }

  const serve::ServeStats stats = service.Stats();
  const obs::MetricsSnapshot ms = service.Metrics();
  const auto counter = [&](const char* name) {
    auto it = ms.counters.find(name);
    return it == ms.counters.end() ? static_cast<long long>(0)
                                   : static_cast<long long>(it->second);
  };
  std::printf("\n-- serving results --\n");
  std::printf("completed %d/%d ok, %.1f req/s wall throughput\n", ok, kRequests,
              ok / wall_s);
  // The full outcome breakdown: these six counters partition every
  // submission (the conservation invariant the chaos suite asserts).
  std::printf("outcomes: submitted %lld = ok %lld + degraded %lld + "
              "validation_error %lld + deadline_missed %lld + shed %lld + "
              "internal_error %lld\n",
              counter("serve.submitted"), counter("serve.ok"),
              counter("serve.degraded"), counter("serve.validation_error"),
              counter("serve.deadline_missed"), counter("serve.shed"),
              counter("serve.internal_error"));
  std::printf("latency p50 %.2f ms, p99 %.2f ms; mean batch %.2f\n",
              stats.p50_ms, stats.p99_ms, stats.mean_batch_size);
  // Registry histograms: where a request's time went, by phase.
  for (const char* hname : {"serve.latency_ms", "serve.queue_ms",
                            "serve.infer_ms"}) {
    auto it = ms.histograms.find(hname);
    if (it == ms.histograms.end() || it->second.TotalCount() == 0) continue;
    const obs::HistogramSnapshot& h = it->second;
    std::printf("  %-16s count %6lld  mean %7.2f ms  p50 %7.2f  p90 %7.2f  "
                "p99 %7.2f\n",
                hname, static_cast<long long>(h.TotalCount()), h.Mean(),
                h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99));
  }
  // Per-stage wall-time attribution (process-global profiler, exported
  // through the registry as stage.* counters/gauges).
  std::printf("stage profile (model wall time):\n");
  for (const char* sname : {"subgraph", "transformer", "gat", "grl",
                            "constraint_mask", "decoder"}) {
    const std::string base = std::string("stage.") + sname;
    auto cit = ms.counters.find(base + ".count");
    auto git = ms.gauges.find(base + ".total_ms");
    if (cit == ms.counters.end() || git == ms.gauges.end()) continue;
    std::printf("  %-16s %9.2f ms over %6lld scopes\n", sname, git->second,
                static_cast<long long>(cit->second));
  }
  std::printf("traces: %lld sampled, %lld dropped from ring\n",
              counter("serve.trace.sampled"), counter("serve.trace.dropped"));
  std::printf("cell cache: %lld hits, %lld misses, %lld fallbacks, %lld "
              "entries resident\n",
              static_cast<long long>(stats.cache.hits),
              static_cast<long long>(stats.cache.misses),
              static_cast<long long>(stats.cache.fallbacks),
              static_cast<long long>(stats.cache.entries));
  // Tensor buffer-pool telemetry (PR 8): the worker threads' op-output
  // recycling, summed across sessions. A warm steady state shows hits
  // dominating misses.
  {
    auto git = ms.gauges.find("tensor.bufpool.cached_bytes");
    std::printf("buffer pool: %lld hits, %lld misses, %lld recycled, %.1f KiB "
                "resident\n",
                counter("tensor.bufpool.hits"),
                counter("tensor.bufpool.misses"),
                counter("tensor.bufpool.recycled"),
                (git == ms.gauges.end() ? 0.0 : git->second) / 1024.0);
  }
  std::printf("served == offline: %s (seg mismatches %d, max ratio diff "
              "%.2e)\n",
              seg_mismatches == 0 && max_ratio_diff <= 1e-5 ? "yes" : "NO",
              seg_mismatches, max_ratio_diff);

  // Recovery quality of the served answers against simulated truth.
  std::vector<MatchedTrajectory> preds;
  std::vector<MatchedTrajectory> truths;
  for (size_t i = 0; i < responses.size(); ++i) {
    if (!responses[i].ok) continue;
    preds.push_back(responses[i].recovered);
    truths.push_back(dataset->test()[workload[i].sample_index].truth);
  }
  RecoveryMetrics m = EvaluateRecovery(dataset->netdist(), preds, truths);
  TablePrinter table(
      {"Method", "Recall", "Precision", "F1", "Accuracy", "MAE", "RMSE"});
  table.PrintHeader();
  PrintMetricsRow(table, model.name() + " (served)", m);

  // Zero-downtime hot swap: persist the serving model through the snapshot
  // API, restore it into a second instance (differently seeded, so only the
  // snapshot can explain matching answers), and SwapModel while the service
  // stays up. New dispatches carry the new generation's version stamp and —
  // because the weights are identical — still match the offline reference.
  std::printf("\n-- hot swap --\n");
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string snap_path =
      std::string(tmpdir ? tmpdir : "/tmp") + "/serving_demo.snapshot";
  std::string swap_err;
  auto next = std::make_shared<RnTrajRec>(mcfg, ctx);
  bool swap_ok = model.SaveSnapshot(snap_path, &swap_err) &&
                 next->LoadSnapshot(snap_path, &swap_err) &&
                 service.SwapModel(next, &swap_err);
  std::remove(snap_path.c_str());
  int post_swap_ok = 0;
  int post_swap_stale = 0;
  int post_swap_mismatches = 0;
  if (swap_ok) {
    std::vector<std::future<serve::RecoveryResponse>> swap_futures;
    for (auto& req : requests) swap_futures.push_back(service.Submit(req));
    for (size_t i = 0; i < swap_futures.size(); ++i) {
      const serve::RecoveryResponse resp = swap_futures[i].get();
      if (!resp.ok) continue;
      ++post_swap_ok;
      if (resp.model_version != service.model_version()) ++post_swap_stale;
      const MatchedTrajectory& ref = offline[i];
      for (int j = 0; j < ref.size(); ++j) {
        if (resp.recovered.points[j].seg_id != ref.points[j].seg_id) {
          ++post_swap_mismatches;
        }
      }
    }
    std::printf("swapped to generation %llu; %d/%d post-swap requests ok, "
                "%d stale-version stamps, %d answer mismatches\n",
                static_cast<unsigned long long>(service.model_version()),
                post_swap_ok, static_cast<int>(requests.size()),
                post_swap_stale, post_swap_mismatches);
  } else {
    std::printf("hot swap failed: %s\n", swap_err.c_str());
  }
  swap_ok = swap_ok && post_swap_ok > 0 && post_swap_stale == 0 &&
            post_swap_mismatches == 0;

  return seg_mismatches == 0 && max_ratio_diff <= 1e-5 && ok == kRequests &&
                 swap_ok
             ? 0
             : 1;
}
