// Quickstart: build a synthetic city, train RNTrajRec for a few epochs, and
// recover one low-sample trajectory. Demonstrates the five public pieces a
// downstream user touches: presets -> Dataset -> ModelContext -> RnTrajRec ->
// Trainer/metrics.
//
//   ./quickstart            (tiny scale, ~30 s on a laptop core)

#include <cstdio>

#include "src/baselines/zoo.h"
#include "src/core/trainer.h"
#include "src/eval/metrics.h"
#include "src/sim/presets.h"

using namespace rntraj;

int main() {
  // 1. A Chengdu-like synthetic dataset: road network + simulated taxis +
  //    noisy low-sample inputs (12.5% of points kept).
  DatasetConfig config = ChengduConfig(BenchScale::kTiny, /*keep_every=*/8);
  auto dataset = BuildDataset(config);
  std::printf("city: %d road segments, %zu training trajectories\n",
              dataset->roadnet().num_segments(), dataset->train().size());

  // 2. The model: RNTrajRec with default (paper) wiring at a laptop-sized
  //    hidden dimension.
  ModelContext ctx = ModelContext::FromDataset(*dataset);
  auto model = MakeModel("rntrajrec", ctx, /*dim=*/16);
  std::printf("model: %s with %lld parameters\n", model->name().c_str(),
              static_cast<long long>(model->ParameterCount()));

  // 3. Train.
  TrainConfig tc;
  tc.epochs = 5;
  tc.verbose = true;
  TrainStats stats = TrainModel(*model, dataset->train(), tc);
  std::printf("trained %d epochs in %.1fs (final loss %.3f)\n", tc.epochs,
              stats.seconds, stats.epoch_losses.back());

  // 4. Recover the first test trajectory and inspect it.
  const TrajectorySample& sample = dataset->test()[0];
  model->SetTrainingMode(false);
  model->BeginInference();
  MatchedTrajectory recovered = model->Recover(sample);
  std::printf("\ninput: %d noisy points  ->  recovered: %d map-matched points\n",
              sample.input.size(), recovered.size());
  std::printf("%5s %9s %9s %9s\n", "step", "truth", "recovered", "err(m)");
  for (int j = 0; j < recovered.size(); j += 4) {
    const auto& t = sample.truth.points[j];
    const auto& p = recovered.points[j];
    std::printf("%5d %9d %9d %9.1f\n", j, t.seg_id, p.seg_id,
                dataset->netdist().Symmetric(p.seg_id, p.ratio, t.seg_id,
                                             t.ratio));
  }

  // 5. Aggregate quality over the whole test split.
  auto preds = RecoverAll(*model, dataset->test());
  RecoveryMetrics m =
      EvaluateRecovery(dataset->netdist(), preds, TruthsOf(dataset->test()));
  std::printf("\ntest metrics: recall=%.3f precision=%.3f f1=%.3f acc=%.3f "
              "mae=%.1fm rmse=%.1fm\n",
              m.recall, m.precision, m.f1, m.accuracy, m.mae, m.rmse);
  return 0;
}
