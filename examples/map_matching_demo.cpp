// Map-matching demo: shows the HMM (Newson-Krumm) substrate on its own.
// Simulates one trajectory, corrupts it with GPS noise, matches it back to
// the road network, and renders an ASCII strip comparing truth vs matched.

#include <cstdio>

#include "src/common/random.h"
#include "src/mapmatch/hmm.h"
#include "src/sim/city.h"
#include "src/sim/simulate.h"

using namespace rntraj;

int main() {
  CityConfig city;
  city.rows = 8;
  city.cols = 8;
  city.spacing = 140.0;
  city.elevated_corridor = true;
  city.seed = 5;
  RoadNetwork rn = GenerateCity(city);
  RTree rtree = BuildSegmentRTree(rn);
  NetworkDistance nd(&rn);
  std::printf("network: %d segments, %zu edges, strongly connected: %s\n",
              rn.num_segments(), rn.edges().size(),
              rn.IsStronglyConnected() ? "yes" : "no");

  SimulatorConfig sim_cfg;
  sim_cfg.len_rho = 40;
  TrajectorySimulator sim(&rn, sim_cfg);
  Rng rng(7);
  MatchedTrajectory truth = sim.Sample(rng);

  GpsNoiseConfig noise;
  noise.sigma = 20.0;
  RawTrajectory observed = MakeRawObservations(rn, truth, noise, rng);

  HmmConfig hmm;
  hmm.sigma_z = 20.0;
  MatchedTrajectory matched = HmmMapMatch(rn, rtree, nd, observed, hmm);

  int correct = 0;
  double err = 0.0;
  std::printf("\n%5s %8s %8s %8s %10s\n", "step", "truth", "matched", "same",
              "offset(m)");
  for (int i = 0; i < truth.size(); ++i) {
    const bool same = matched.points[i].seg_id == truth.points[i].seg_id;
    correct += same;
    const double d = nd.Symmetric(matched.points[i].seg_id,
                                  matched.points[i].ratio,
                                  truth.points[i].seg_id, truth.points[i].ratio);
    err += d;
    if (i % 4 == 0) {
      std::printf("%5d %8d %8d %8s %10.1f\n", i, truth.points[i].seg_id,
                  matched.points[i].seg_id, same ? "yes" : "NO", d);
    }
  }
  std::printf("\nsegment accuracy: %.1f%%   mean offset: %.1f m "
              "(GPS noise sigma was %.0f m)\n",
              100.0 * correct / truth.size(), err / truth.size(), noise.sigma);
  return 0;
}
