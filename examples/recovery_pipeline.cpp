// Recovery pipeline comparison: the paper's motivating scenario. Runs the
// classical two-stage pipeline (Linear+HMM) and the end-to-end RNTrajRec on
// the same Porto-like dataset and reports all six Table III metrics. The
// trained model is then persisted through the snapshot API (SaveSnapshot /
// LoadSnapshot on RecoveryModel) and re-evaluated from a cold process-like
// state, showing that a worker warm-starts from one file instead of
// retraining.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/baselines/zoo.h"
#include "src/core/trainer.h"
#include "src/eval/metrics.h"
#include "src/eval/report.h"
#include "src/sim/presets.h"

using namespace rntraj;

namespace {

std::string SnapshotPath() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp ? tmp : "/tmp") + "/recovery_pipeline.snapshot";
}

}  // namespace

int main() {
  DatasetConfig config = PortoConfig(BenchScale::kTiny, /*keep_every=*/8);
  auto dataset = BuildDataset(config);
  ModelContext ctx = ModelContext::FromDataset(*dataset);
  std::printf("porto-like city: %d segments; recovering %d points from %d "
              "observations per trajectory\n",
              dataset->roadnet().num_segments(), config.sim.len_rho,
              dataset->test()[0].input.size());

  TablePrinter table(
      {"Method", "Recall", "Precision", "F1", "Accuracy", "MAE", "RMSE"});
  table.PrintHeader();
  RecoveryMetrics trained_metrics;
  for (const char* key : {"linear_hmm", "rntrajrec"}) {
    SeedGlobalRng(3);
    auto model = MakeModel(key, ctx, /*dim=*/16);
    TrainConfig tc;
    tc.epochs = 6;
    // Checkpoint while training: the final checkpoint doubles as the
    // deployable snapshot (it carries the trainer state on top of the
    // weights, which LoadSnapshot simply ignores).
    tc.checkpoint_every = 3;
    tc.checkpoint_path = SnapshotPath();
    TrainModel(*model, dataset->train(), tc);
    auto preds = RecoverAll(*model, dataset->test());
    RecoveryMetrics m =
        EvaluateRecovery(dataset->netdist(), preds, TruthsOf(dataset->test()));
    PrintMetricsRow(table, model->name(), m);
    trained_metrics = m;
  }

  // Warm start: a fresh model (differently seeded, so its random init can't
  // mask a broken load) restored from the snapshot must reproduce the
  // trained model's metrics exactly — no retraining, and for RnTrajRec no
  // road-representation recompute (the snapshot carries it).
  SeedGlobalRng(99);
  auto restored = MakeModel("rntrajrec", ctx, /*dim=*/16);
  std::string err;
  if (!restored->LoadSnapshot(SnapshotPath(), &err)) {
    std::printf("snapshot load failed: %s\n", err.c_str());
    return 1;
  }
  auto preds = RecoverAll(*restored, dataset->test());
  RecoveryMetrics m =
      EvaluateRecovery(dataset->netdist(), preds, TruthsOf(dataset->test()));
  PrintMetricsRow(table, restored->name() + " (snapshot)", m);
  const bool snapshot_exact = m.f1 == trained_metrics.f1 &&
                              m.mae == trained_metrics.mae &&
                              m.rmse == trained_metrics.rmse;
  std::printf("\nsnapshot-restored model reproduces the trained run: %s\n",
              snapshot_exact ? "yes" : "NO");
  std::remove(SnapshotPath().c_str());
  std::printf("(Tiny scale; run the bench_table3_main binary with "
              "RNTR_SCALE=small|full for the paper-shaped comparison.)\n");
  return snapshot_exact ? 0 : 1;
}
