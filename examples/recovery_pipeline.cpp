// Recovery pipeline comparison: the paper's motivating scenario. Runs the
// classical two-stage pipeline (Linear+HMM) and the end-to-end RNTrajRec on
// the same Porto-like dataset and reports all six Table III metrics.

#include <cstdio>

#include "src/baselines/zoo.h"
#include "src/core/trainer.h"
#include "src/eval/metrics.h"
#include "src/eval/report.h"
#include "src/sim/presets.h"

using namespace rntraj;

int main() {
  DatasetConfig config = PortoConfig(BenchScale::kTiny, /*keep_every=*/8);
  auto dataset = BuildDataset(config);
  ModelContext ctx = ModelContext::FromDataset(*dataset);
  std::printf("porto-like city: %d segments; recovering %d points from %d "
              "observations per trajectory\n",
              dataset->roadnet().num_segments(), config.sim.len_rho,
              dataset->test()[0].input.size());

  TablePrinter table(
      {"Method", "Recall", "Precision", "F1", "Accuracy", "MAE", "RMSE"});
  table.PrintHeader();
  for (const char* key : {"linear_hmm", "rntrajrec"}) {
    SeedGlobalRng(3);
    auto model = MakeModel(key, ctx, /*dim=*/16);
    TrainConfig tc;
    tc.epochs = 6;
    TrainModel(*model, dataset->train(), tc);
    auto preds = RecoverAll(*model, dataset->test());
    RecoveryMetrics m =
        EvaluateRecovery(dataset->netdist(), preds, TruthsOf(dataset->test()));
    PrintMetricsRow(table, model->name(), m);
  }
  std::printf("\n(Tiny scale; run the bench_table3_main binary with "
              "RNTR_SCALE=small|full for the paper-shaped comparison.)\n");
  return 0;
}
