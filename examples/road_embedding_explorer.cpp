// Road-embedding explorer: exercises GridGNN on its own. Builds the road
// representation X_road, then shows that nearest neighbours in embedding
// space are topologically/spatially coherent (connected or nearby segments).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/common/random.h"
#include "src/core/gridgnn.h"
#include "src/sim/city.h"

using namespace rntraj;

namespace {

double CosineSim(const Tensor& x, int a, int b) {
  const int d = x.dim(1);
  double dot = 0, na = 0, nb = 0;
  for (int j = 0; j < d; ++j) {
    const double va = x.at(a, j);
    const double vb = x.at(b, j);
    dot += va * vb;
    na += va * va;
    nb += vb * vb;
  }
  return dot / std::sqrt(na * nb + 1e-12);
}

}  // namespace

int main() {
  SeedGlobalRng(11);
  CityConfig city;
  city.rows = 7;
  city.cols = 7;
  city.elevated_corridor = true;
  city.seed = 21;
  RoadNetwork rn = GenerateCity(city);
  GridMapping grid(rn.bounds(), 50.0);

  GridGnnConfig cfg;
  cfg.dim = 32;
  cfg.gnn_layers = 2;
  cfg.heads = 4;
  GridGnn gnn(cfg, &rn, &grid);
  NoGradGuard guard;
  Tensor xroad = gnn.Forward();
  std::printf("X_road: %d segments x %d dims (untrained weights; geometric "
              "init + GAT smoothing)\n\n",
              xroad.dim(0), xroad.dim(1));

  // For a few query segments, list the top-3 nearest neighbours in embedding
  // space and report their planar distance.
  for (int query : {0, rn.num_segments() / 2, rn.num_segments() - 1}) {
    std::vector<std::pair<double, int>> sims;
    for (int v = 0; v < rn.num_segments(); ++v) {
      if (v != query) sims.push_back({CosineSim(xroad, query, v), v});
    }
    std::sort(sims.rbegin(), sims.rend());
    const Vec2 qm = rn.PointAt(query, 0.5);
    std::printf("segment %3d (level %d): nearest in embedding space:\n", query,
                static_cast<int>(rn.segment(query).level));
    for (int k = 0; k < 3; ++k) {
      const int v = sims[k].second;
      std::printf("   #%d: segment %3d  cos=%.3f  planar distance %.0f m\n",
                  k + 1, v, sims[k].first, Distance(qm, rn.PointAt(v, 0.5)));
    }
  }
  std::printf("\nEmbedding neighbours should be spatially close: the grid GRU "
              "ties segments sharing cells, the GAT ties connected ones.\n");
  return 0;
}
