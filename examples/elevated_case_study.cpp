// Fig. 5 analogue: the elevated-road case study. Finds a test trajectory that
// drives the elevated corridor, recovers it with MTrajRec and RNTrajRec, and
// prints a step-by-step comparison plus an ASCII overview showing where each
// model confuses the elevated roadway with the trunk road beneath it.

#include <cstdio>
#include <string>

#include "src/baselines/zoo.h"
#include "src/core/trainer.h"
#include "src/eval/metrics.h"
#include "src/sim/presets.h"

using namespace rntraj;

namespace {

char Classify(const RoadNetwork& rn, int seg) {
  if (rn.segment(seg).elevated()) return 'E';
  if (rn.segment(seg).level == RoadLevel::kTrunk) return 'T';
  return '.';
}

}  // namespace

int main() {
  DatasetConfig config = ChengduConfig(BenchScale::kTiny, /*keep_every=*/8);
  config.num_test = 48;  // more chances to catch a corridor trajectory
  auto dataset = BuildDataset(config);
  ModelContext ctx = ModelContext::FromDataset(*dataset);
  const RoadNetwork& rn = dataset->roadnet();

  // Pick the test trajectory with the most elevated driving.
  int best = -1;
  int best_count = 0;
  for (size_t i = 0; i < dataset->test().size(); ++i) {
    int count = 0;
    for (const auto& p : dataset->test()[i].truth.points) {
      count += rn.segment(p.seg_id).elevated();
    }
    if (count > best_count) {
      best_count = count;
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    std::printf("no elevated trajectory in this tiny sample; rerun with "
                "RNTR_SCALE=small\n");
    return 0;
  }
  const TrajectorySample& sample = dataset->test()[best];
  std::printf("trajectory #%d drives the elevated corridor for %d of %d "
              "samples\n\n",
              best, best_count, sample.truth.size());

  std::string truth_strip;
  for (const auto& p : sample.truth.points) {
    truth_strip += Classify(rn, p.seg_id);
  }

  std::printf("legend: E = elevated roadway, T = trunk road beneath it, "
              ". = other roads\n");
  std::printf("%-12s %s\n", "truth", truth_strip.c_str());

  for (const char* key : {"mtrajrec", "rntrajrec"}) {
    SeedGlobalRng(9);
    auto model = MakeModel(key, ctx, /*dim=*/16);
    TrainConfig tc;
    tc.epochs = 6;
    TrainModel(*model, dataset->train(), tc);
    model->SetTrainingMode(false);
    model->BeginInference();
    MatchedTrajectory rec = model->Recover(sample);
    std::string strip;
    int level_confusions = 0;
    for (int j = 0; j < rec.size(); ++j) {
      const char got = Classify(rn, rec.points[j].seg_id);
      const char want = Classify(rn, sample.truth.points[j].seg_id);
      strip += got;
      if ((want == 'E') != (got == 'E')) ++level_confusions;
    }
    const PathScore score =
        ScoreTravelPath(sample.truth.TravelPath(), rec.TravelPath());
    std::printf("%-12s %s   (f1=%.2f, elevated/trunk confusions: %d)\n", key,
                strip.c_str(), score.f1, level_confusions);
  }
  std::printf("\nThe paper's Fig. 5 point: picking the trunk road instead of "
              "the elevated roadway looks close on a map but the network "
              "path differs by kilometres (ramps are sparse).\n");
  return 0;
}
