file(REMOVE_RECURSE
  "CMakeFiles/elevated_case_study.dir/examples/elevated_case_study.cpp.o"
  "CMakeFiles/elevated_case_study.dir/examples/elevated_case_study.cpp.o.d"
  "elevated_case_study"
  "elevated_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elevated_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
