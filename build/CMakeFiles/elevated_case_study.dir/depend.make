# Empty dependencies file for elevated_case_study.
# This may be replaced when dependencies are built.
