# Empty dependencies file for bench_fig7_params.
# This may be replaced when dependencies are built.
