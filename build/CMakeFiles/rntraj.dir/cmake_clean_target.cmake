file(REMOVE_RECURSE
  "librntraj.a"
)
