# Empty dependencies file for rntraj.
# This may be replaced when dependencies are built.
