
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/gts.cc" "CMakeFiles/rntraj.dir/src/baselines/gts.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/baselines/gts.cc.o.d"
  "/root/repo/src/baselines/kalman.cc" "CMakeFiles/rntraj.dir/src/baselines/kalman.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/baselines/kalman.cc.o.d"
  "/root/repo/src/baselines/seq_encoders.cc" "CMakeFiles/rntraj.dir/src/baselines/seq_encoders.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/baselines/seq_encoders.cc.o.d"
  "/root/repo/src/baselines/two_stage.cc" "CMakeFiles/rntraj.dir/src/baselines/two_stage.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/baselines/two_stage.cc.o.d"
  "/root/repo/src/baselines/zoo.cc" "CMakeFiles/rntraj.dir/src/baselines/zoo.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/baselines/zoo.cc.o.d"
  "/root/repo/src/common/random.cc" "CMakeFiles/rntraj.dir/src/common/random.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/common/random.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/rntraj.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/core/decoder.cc" "CMakeFiles/rntraj.dir/src/core/decoder.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/core/decoder.cc.o.d"
  "/root/repo/src/core/features.cc" "CMakeFiles/rntraj.dir/src/core/features.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/core/features.cc.o.d"
  "/root/repo/src/core/gpsformer.cc" "CMakeFiles/rntraj.dir/src/core/gpsformer.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/core/gpsformer.cc.o.d"
  "/root/repo/src/core/gridgnn.cc" "CMakeFiles/rntraj.dir/src/core/gridgnn.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/core/gridgnn.cc.o.d"
  "/root/repo/src/core/grl.cc" "CMakeFiles/rntraj.dir/src/core/grl.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/core/grl.cc.o.d"
  "/root/repo/src/core/rntrajrec.cc" "CMakeFiles/rntraj.dir/src/core/rntrajrec.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/core/rntrajrec.cc.o.d"
  "/root/repo/src/core/trainer.cc" "CMakeFiles/rntraj.dir/src/core/trainer.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/core/trainer.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "CMakeFiles/rntraj.dir/src/eval/metrics.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/eval/metrics.cc.o.d"
  "/root/repo/src/eval/report.cc" "CMakeFiles/rntraj.dir/src/eval/report.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/eval/report.cc.o.d"
  "/root/repo/src/geo/geo.cc" "CMakeFiles/rntraj.dir/src/geo/geo.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/geo/geo.cc.o.d"
  "/root/repo/src/mapmatch/hmm.cc" "CMakeFiles/rntraj.dir/src/mapmatch/hmm.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/mapmatch/hmm.cc.o.d"
  "/root/repo/src/roadnet/grid.cc" "CMakeFiles/rntraj.dir/src/roadnet/grid.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/roadnet/grid.cc.o.d"
  "/root/repo/src/roadnet/road_network.cc" "CMakeFiles/rntraj.dir/src/roadnet/road_network.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/roadnet/road_network.cc.o.d"
  "/root/repo/src/roadnet/rtree.cc" "CMakeFiles/rntraj.dir/src/roadnet/rtree.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/roadnet/rtree.cc.o.d"
  "/root/repo/src/roadnet/shortest_path.cc" "CMakeFiles/rntraj.dir/src/roadnet/shortest_path.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/roadnet/shortest_path.cc.o.d"
  "/root/repo/src/roadnet/subgraph.cc" "CMakeFiles/rntraj.dir/src/roadnet/subgraph.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/roadnet/subgraph.cc.o.d"
  "/root/repo/src/sim/city.cc" "CMakeFiles/rntraj.dir/src/sim/city.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/sim/city.cc.o.d"
  "/root/repo/src/sim/dataset.cc" "CMakeFiles/rntraj.dir/src/sim/dataset.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/sim/dataset.cc.o.d"
  "/root/repo/src/sim/presets.cc" "CMakeFiles/rntraj.dir/src/sim/presets.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/sim/presets.cc.o.d"
  "/root/repo/src/sim/simulate.cc" "CMakeFiles/rntraj.dir/src/sim/simulate.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/sim/simulate.cc.o.d"
  "/root/repo/src/tensor/buffer_pool.cc" "CMakeFiles/rntraj.dir/src/tensor/buffer_pool.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/tensor/buffer_pool.cc.o.d"
  "/root/repo/src/tensor/ops_binary.cc" "CMakeFiles/rntraj.dir/src/tensor/ops_binary.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/tensor/ops_binary.cc.o.d"
  "/root/repo/src/tensor/ops_fused.cc" "CMakeFiles/rntraj.dir/src/tensor/ops_fused.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/tensor/ops_fused.cc.o.d"
  "/root/repo/src/tensor/ops_matmul.cc" "CMakeFiles/rntraj.dir/src/tensor/ops_matmul.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/tensor/ops_matmul.cc.o.d"
  "/root/repo/src/tensor/ops_reduce.cc" "CMakeFiles/rntraj.dir/src/tensor/ops_reduce.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/tensor/ops_reduce.cc.o.d"
  "/root/repo/src/tensor/ops_shape.cc" "CMakeFiles/rntraj.dir/src/tensor/ops_shape.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/tensor/ops_shape.cc.o.d"
  "/root/repo/src/tensor/ops_unary.cc" "CMakeFiles/rntraj.dir/src/tensor/ops_unary.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/tensor/ops_unary.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "CMakeFiles/rntraj.dir/src/tensor/tensor.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/tensor/tensor.cc.o.d"
  "/root/repo/src/traj/resample.cc" "CMakeFiles/rntraj.dir/src/traj/resample.cc.o" "gcc" "CMakeFiles/rntraj.dir/src/traj/resample.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
