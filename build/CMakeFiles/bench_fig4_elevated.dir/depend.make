# Empty dependencies file for bench_fig4_elevated.
# This may be replaced when dependencies are built.
