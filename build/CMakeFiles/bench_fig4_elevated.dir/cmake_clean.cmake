file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_elevated.dir/bench/bench_fig4_elevated.cc.o"
  "CMakeFiles/bench_fig4_elevated.dir/bench/bench_fig4_elevated.cc.o.d"
  "bench_fig4_elevated"
  "bench_fig4_elevated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_elevated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
