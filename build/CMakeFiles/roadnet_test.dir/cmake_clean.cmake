file(REMOVE_RECURSE
  "CMakeFiles/roadnet_test.dir/tests/roadnet_test.cc.o"
  "CMakeFiles/roadnet_test.dir/tests/roadnet_test.cc.o.d"
  "roadnet_test"
  "roadnet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roadnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
