# Empty dependencies file for recovery_pipeline.
# This may be replaced when dependencies are built.
