file(REMOVE_RECURSE
  "CMakeFiles/recovery_pipeline.dir/examples/recovery_pipeline.cpp.o"
  "CMakeFiles/recovery_pipeline.dir/examples/recovery_pipeline.cpp.o.d"
  "recovery_pipeline"
  "recovery_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
