# Empty dependencies file for bench_table4_additional.
# This may be replaced when dependencies are built.
