file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_additional.dir/bench/bench_table4_additional.cc.o"
  "CMakeFiles/bench_table4_additional.dir/bench/bench_table4_additional.cc.o.d"
  "bench_table4_additional"
  "bench_table4_additional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_additional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
