file(REMOVE_RECURSE
  "CMakeFiles/rntraj_bench_common.dir/bench/bench_common.cc.o"
  "CMakeFiles/rntraj_bench_common.dir/bench/bench_common.cc.o.d"
  "librntraj_bench_common.a"
  "librntraj_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rntraj_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
