# Empty dependencies file for rntraj_bench_common.
# This may be replaced when dependencies are built.
