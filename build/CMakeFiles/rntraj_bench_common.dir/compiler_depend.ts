# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rntraj_bench_common.
