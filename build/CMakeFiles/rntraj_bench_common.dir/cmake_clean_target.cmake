file(REMOVE_RECURSE
  "librntraj_bench_common.a"
)
