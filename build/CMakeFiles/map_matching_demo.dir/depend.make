# Empty dependencies file for map_matching_demo.
# This may be replaced when dependencies are built.
