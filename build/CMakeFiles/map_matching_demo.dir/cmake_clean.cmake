file(REMOVE_RECURSE
  "CMakeFiles/map_matching_demo.dir/examples/map_matching_demo.cpp.o"
  "CMakeFiles/map_matching_demo.dir/examples/map_matching_demo.cpp.o.d"
  "map_matching_demo"
  "map_matching_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_matching_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
