# Empty dependencies file for bench_fig6_efficiency.
# This may be replaced when dependencies are built.
