file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_efficiency.dir/bench/bench_fig6_efficiency.cc.o"
  "CMakeFiles/bench_fig6_efficiency.dir/bench/bench_fig6_efficiency.cc.o.d"
  "bench_fig6_efficiency"
  "bench_fig6_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
