file(REMOVE_RECURSE
  "CMakeFiles/road_embedding_explorer.dir/examples/road_embedding_explorer.cpp.o"
  "CMakeFiles/road_embedding_explorer.dir/examples/road_embedding_explorer.cpp.o.d"
  "road_embedding_explorer"
  "road_embedding_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_embedding_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
