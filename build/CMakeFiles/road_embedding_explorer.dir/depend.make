# Empty dependencies file for road_embedding_explorer.
# This may be replaced when dependencies are built.
