# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(baselines_test "/root/repo/build/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;46;add_test;/root/repo/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;46;add_test;/root/repo/CMakeLists.txt;0;")
add_test(eval_test "/root/repo/build/eval_test")
set_tests_properties(eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;46;add_test;/root/repo/CMakeLists.txt;0;")
add_test(geo_test "/root/repo/build/geo_test")
set_tests_properties(geo_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;46;add_test;/root/repo/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;46;add_test;/root/repo/CMakeLists.txt;0;")
add_test(mapmatch_test "/root/repo/build/mapmatch_test")
set_tests_properties(mapmatch_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;46;add_test;/root/repo/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;46;add_test;/root/repo/CMakeLists.txt;0;")
add_test(roadnet_test "/root/repo/build/roadnet_test")
set_tests_properties(roadnet_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;46;add_test;/root/repo/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;46;add_test;/root/repo/CMakeLists.txt;0;")
add_test(tensor_gradcheck_test "/root/repo/build/tensor_gradcheck_test")
set_tests_properties(tensor_gradcheck_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;46;add_test;/root/repo/CMakeLists.txt;0;")
add_test(tensor_test "/root/repo/build/tensor_test")
set_tests_properties(tensor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;46;add_test;/root/repo/CMakeLists.txt;0;")
add_test(thread_pool_test "/root/repo/build/thread_pool_test")
set_tests_properties(thread_pool_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;46;add_test;/root/repo/CMakeLists.txt;0;")
add_test(traj_test "/root/repo/build/traj_test")
set_tests_properties(traj_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;46;add_test;/root/repo/CMakeLists.txt;0;")
