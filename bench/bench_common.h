#ifndef RNTRAJ_BENCH_BENCH_COMMON_H_
#define RNTRAJ_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/zoo.h"
#include "src/core/trainer.h"
#include "src/eval/metrics.h"
#include "src/eval/report.h"
#include "src/sim/presets.h"

/// \file bench_common.h
/// Shared machinery for the table/figure harnesses: scale-dependent training
/// schedules, the train-once-evaluate-once driver, and the Table III column
/// layout.

namespace rntraj {
namespace bench {

/// Per-scale knobs shared by every harness.
struct BenchSettings {
  BenchScale scale = BenchScale::kSmall;
  int dim = 32;           ///< Hidden size for all learned methods.
  TrainConfig train;      ///< Epochs/lr/batch per scale.
};

/// Resolves settings from RNTR_SCALE (tiny | small | full).
BenchSettings Settings();

/// One method's evaluation outcome.
struct MethodResult {
  std::string name;
  RecoveryMetrics metrics;
  double train_seconds = 0.0;
  double infer_ms_per_traj = 0.0;
  int64_t parameters = 0;
  std::vector<MatchedTrajectory> predictions;
};

/// Trains (if learned) and evaluates an existing model on a dataset.
MethodResult RunModel(RecoveryModel& model, Dataset& ds,
                      const BenchSettings& settings);

/// Factory + RunModel in one step, keyed like the zoo.
MethodResult RunMethod(const std::string& key, Dataset& ds,
                       const BenchSettings& settings);

/// The Table III / IV column layout.
TablePrinter MetricsTable();

/// Prints the standard dataset banner (name, segments, splits, interval).
void PrintDatasetBanner(const Dataset& ds, const BenchSettings& settings);

}  // namespace bench
}  // namespace rntraj

#endif  // RNTRAJ_BENCH_BENCH_COMMON_H_
