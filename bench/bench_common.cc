#include "bench/bench_common.h"

#include <chrono>
#include <cstdio>

#include "src/common/random.h"

namespace rntraj {
namespace bench {

BenchSettings Settings() {
  BenchSettings s;
  s.scale = ScaleFromEnv();
  switch (s.scale) {
    case BenchScale::kTiny:
      s.dim = 16;
      s.train.epochs = 4;
      break;
    case BenchScale::kSmall:
      s.dim = 24;
      s.train.epochs = 8;
      break;
    case BenchScale::kFull:
      s.dim = 64;
      s.train.epochs = 30;  // the paper's schedule
      break;
  }
  s.train.batch_size = 8;
  s.train.lr = 3e-3f;
  return s;
}

MethodResult RunModel(RecoveryModel& model, Dataset& ds,
                      const BenchSettings& settings) {
  MethodResult r;
  r.name = model.name();
  r.parameters = model.ParameterCount();
  TrainStats stats = TrainModel(model, ds.train(), settings.train);
  r.train_seconds = stats.seconds;

  const auto t0 = std::chrono::steady_clock::now();
  r.predictions = RecoverAll(model, ds.test());
  const double infer_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.infer_ms_per_traj =
      1000.0 * infer_s / std::max<size_t>(1, ds.test().size());
  r.metrics = EvaluateRecovery(ds.netdist(), r.predictions, TruthsOf(ds.test()));
  return r;
}

MethodResult RunMethod(const std::string& key, Dataset& ds,
                       const BenchSettings& settings) {
  SeedGlobalRng(12345);  // identical init stream per method
  ModelContext ctx = ModelContext::FromDataset(ds);
  auto model = MakeModel(key, ctx, settings.dim);
  return RunModel(*model, ds, settings);
}

TablePrinter MetricsTable() {
  return TablePrinter(
      {"Method", "Recall", "Precision", "F1", "Accuracy", "MAE", "RMSE"});
}

void PrintDatasetBanner(const Dataset& ds, const BenchSettings& settings) {
  std::printf(
      "dataset=%s scale=%s | segments=%d grid=%dx%d | train/val/test=%zu/%zu/%zu"
      " | eps_rho=%.0fs keep=1/%d (input interval %.0fs) | dim=%d epochs=%d\n",
      ds.config().name.c_str(), ToString(settings.scale).c_str(),
      ds.roadnet().num_segments(), ds.grid().rows(), ds.grid().cols(),
      ds.train().size(), ds.val().size(), ds.test().size(),
      ds.config().sim.eps_rho, ds.config().keep_every, ds.input_interval(),
      settings.dim, settings.train.epochs);
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace rntraj
