// Regenerates paper Table IV: the additional Shanghai (x8) and Chengdu-Few
// (20% training data) datasets, all nine methods.

#include "bench/bench_common.h"

namespace rntraj {
namespace {

void RunBlock(const DatasetConfig& cfg, const bench::BenchSettings& settings) {
  auto ds = BuildDataset(cfg);
  auto table = bench::MetricsTable();
  table.PrintTitle("Table IV: " + cfg.name + " (eps_tau = eps_rho * " +
                   std::to_string(cfg.keep_every) + ")");
  bench::PrintDatasetBanner(*ds, settings);
  table.PrintHeader();
  for (const auto& key : TableThreeMethodKeys()) {
    bench::MethodResult r = bench::RunMethod(key, *ds, settings);
    PrintMetricsRow(table, r.name, r.metrics);
  }
}

void Run() {
  const auto settings = bench::Settings();
  RunBlock(ShanghaiConfig(settings.scale, 8), settings);
  RunBlock(ChengduFewConfig(settings.scale), settings);
}

}  // namespace
}  // namespace rntraj

int main() {
  rntraj::Run();
  return 0;
}
