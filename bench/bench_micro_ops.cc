// Kernel microbenchmarks (google-benchmark): the hot paths underneath
// training and inference — matmul, softmax, GAT layers, Dijkstra rows,
// R-tree queries, sub-graph extraction, HMM matching and one full RNTrajRec
// inference.

#include <benchmark/benchmark.h>

#include "src/baselines/zoo.h"
#include "src/common/random.h"
#include "src/core/decoder.h"
#include "src/core/trainer.h"
#include "src/mapmatch/hmm.h"
#include "src/nn/attention.h"
#include "src/nn/graph.h"
#include "src/serve/roadnet_cache.h"
#include "src/sim/presets.h"
#include "src/tensor/bfloat16.h"
#include "src/tensor/buffer_pool.h"
#include "src/tensor/fusion.h"
#include "src/tensor/ops.h"

namespace rntraj {
namespace {

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SeedGlobalRng(1);
  Tensor a = Tensor::Randn({n, n}, 1.0f);
  Tensor b = Tensor::Randn({n, n}, 1.0f);
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matmul(a, b).data().data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_SoftmaxRows(benchmark::State& state) {
  SeedGlobalRng(2);
  Tensor a = Tensor::Randn({64, static_cast<int>(state.range(0))}, 1.0f);
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxRows(a).data().data());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(64)->Arg(512);

void BM_AddRowCol(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SeedGlobalRng(8);
  Tensor u = Tensor::Randn({n, 1}, 1.0f);
  Tensor v = Tensor::Randn({n}, 1.0f);
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AddRowCol(u, v).data().data());
  }
}
BENCHMARK(BM_AddRowCol)->Arg(128);

void BM_MaskedSoftmaxRows(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SeedGlobalRng(9);
  Tensor a = Tensor::Randn({n, n}, 1.0f);
  Tensor mask = Tensor::Zeros({n, n});
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaskedSoftmaxRows(a, mask).data().data());
  }
}
BENCHMARK(BM_MaskedSoftmaxRows)->Arg(128);

void BM_GatLayer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SeedGlobalRng(3);
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  DenseGraph g = BuildDenseGraph(n, edges);
  GatLayer gat(32, 4);
  Tensor h = Tensor::Randn({n, 32}, 1.0f);
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gat.Forward(h, g).data().data());
  }
}
BENCHMARK(BM_GatLayer)->Arg(16)->Arg(128);

void BM_SelfAttention(benchmark::State& state) {
  SeedGlobalRng(4);
  MultiHeadSelfAttention mha(32, 4);
  Tensor x = Tensor::Randn({static_cast<int>(state.range(0)), 32}, 1.0f);
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mha.Forward(x).data().data());
  }
}
BENCHMARK(BM_SelfAttention)->Arg(8)->Arg(48);

// Batched GAT: the graph-by-graph GatLayer::Forward loop vs ONE
// ForwardBatched pass over the block-diagonal pack of the same sub-graphs
// (the PR 5 refactor). Arg0 = number of sub-graphs (ragged 10-16 node
// chains, the serving sub-graph shape), arg1 = batched.
struct GatBatchFixture {
  std::vector<DenseGraph> graphs;
  std::vector<const DenseGraph*> graph_ptrs;
  BatchedDenseGraph batched;
  Tensor h_flat;
  std::vector<Tensor> h_parts;
  GatLayer gat{32, 4};

  explicit GatBatchFixture(int num_graphs) {
    SeedGlobalRng(11);
    for (int g = 0; g < num_graphs; ++g) {
      const int n = 10 + g % 7;
      std::vector<std::pair<int, int>> edges;
      for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
      graphs.push_back(BuildDenseGraph(n, edges));
      h_parts.push_back(Tensor::Randn({n, 32}, 1.0f));
    }
    for (const auto& g : graphs) graph_ptrs.push_back(&g);
    batched = BuildBatchedDenseGraph(graph_ptrs);
    h_flat = ConcatRows(h_parts);
  }
};

void BM_GatBatch(benchmark::State& state) {
  static GatBatchFixture f16(16);
  static GatBatchFixture f64(64);
  GatBatchFixture& f = state.range(0) == 16 ? f16 : f64;
  const bool batched = state.range(1) == 1;
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    if (batched) {
      benchmark::DoNotOptimize(
          f.gat.ForwardBatched(f.h_flat, f.batched).data().data());
    } else {
      for (size_t g = 0; g < f.graphs.size(); ++g) {
        benchmark::DoNotOptimize(
            f.gat.Forward(f.h_parts[g], f.graphs[g]).data().data());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.graphs.size()));
  state.SetLabel(std::string(batched ? "one block-diagonal pass"
                                     : "per-graph loop") +
                 ", graphs=" + std::to_string(f.graphs.size()) +
                 ", 10-16 nodes, d=32, heads=4");
}
BENCHMARK(BM_GatBatch)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

// GPSFormer forward, per-sample loop vs one padded batched pass (the PR 3
// refactor): B ragged trajectories with chain sub-graphs per timestep.
// Args are {batched, use_grl}: batched=1 runs the padded path; use_grl=0
// isolates the temporal (transformer) half, where the batching win lives —
// with GRL on, per-graph GAT propagation dominates and is identical in both
// paths, so the full-encoder comparison lands near parity at this scale.
struct GpsFormerBatchFixture {
  GpsFormerConfig cfg;
  std::unique_ptr<GpsFormer> gf;
  std::unique_ptr<GpsFormer> gf_nogrl;
  std::vector<int> lengths;
  std::vector<Tensor> h0s;
  std::vector<std::vector<Tensor>> z0s;
  std::vector<std::vector<DenseGraph>> graphs;
  Tensor h0_flat;
  Tensor z0_flat;
  std::vector<int> graph_sizes;
  std::vector<const DenseGraph*> graph_ptrs;
  /// Block-diagonal pack of every sub-graph across the batch, prebuilt like
  /// the serving path's per-sample cached packs.
  BatchedDenseGraph batched_graphs;
  /// Per-sample pointer views, prebuilt so the per-sample reference branch
  /// times only the forward (no vector churn inside the timed loop).
  std::vector<std::vector<const DenseGraph*>> sample_graph_ptrs;

  GpsFormerBatchFixture() {
    SeedGlobalRng(6);
    const int dim = 32;
    const int batch = 16;
    cfg.dim = dim;
    cfg.ffn_dim = 2 * dim;
    cfg.grl.dim = dim;
    gf = std::make_unique<GpsFormer>(cfg);
    gf->SetTraining(false);
    GpsFormerConfig nogrl = cfg;
    nogrl.use_grl = false;
    gf_nogrl = std::make_unique<GpsFormer>(nogrl);
    gf_nogrl->SetTraining(false);
    std::vector<Tensor> h0_parts;
    std::vector<Tensor> z0_parts;
    for (int s = 0; s < batch; ++s) {
      const int l = 3 + s % 4;
      lengths.push_back(l);
      h0s.push_back(Tensor::Randn({l, dim}, 1.0f));
      h0_parts.push_back(h0s.back());
      std::vector<Tensor> z;
      std::vector<DenseGraph> g;
      for (int t = 0; t < l; ++t) {
        const int n = 10 + (s + t) % 7;
        z.push_back(Tensor::Randn({n, dim}, 1.0f));
        z0_parts.push_back(z.back());
        graph_sizes.push_back(n);
        std::vector<std::pair<int, int>> edges;
        for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
        g.push_back(BuildDenseGraph(n, edges));
      }
      z0s.push_back(std::move(z));
      graphs.push_back(std::move(g));
    }
    h0_flat = ConcatRows(h0_parts);
    z0_flat = ConcatRows(z0_parts);
    for (const auto& g : graphs) {
      sample_graph_ptrs.emplace_back();
      for (const auto& d : g) {
        graph_ptrs.push_back(&d);
        sample_graph_ptrs.back().push_back(&d);
      }
    }
    batched_graphs = BuildBatchedDenseGraph(graph_ptrs);
  }
};

GpsFormerBatchFixture& TheGpsFormerFixture() {
  static GpsFormerBatchFixture f;
  return f;
}

void BM_GpsFormerBatch(benchmark::State& state) {
  auto& f = TheGpsFormerFixture();
  const bool batched = state.range(0) == 1;
  const bool use_grl = state.range(1) == 1;
  GpsFormer& gf = use_grl ? *f.gf : *f.gf_nogrl;
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    if (batched) {
      benchmark::DoNotOptimize(
          gf.ForwardBatch(f.h0_flat, f.lengths, f.z0_flat, f.batched_graphs)
              .h.data()
              .data());
    } else {
      for (size_t s = 0; s < f.h0s.size(); ++s) {
        benchmark::DoNotOptimize(
            gf.Forward(f.h0s[s], f.z0s[s], f.sample_graph_ptrs[s])
                .h.data()
                .data());
      }
    }
  }
  state.SetLabel(std::string(batched ? "one padded pass" : "per-sample loop") +
                 (use_grl ? ", full encoder" : ", transformer half") +
                 ", B=16");
}
BENCHMARK(BM_GpsFormerBatch)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 0})
    ->Args({1, 0});

// Isolated GRL record over the same B=16 ragged batch as BM_GpsFormerBatch:
// the per-sample Forward loop vs one ForwardBatch (fat fusion GEMMs + ONE
// block-diagonal batched GAT pass). This is the layer that kept the full
// encoder at parity in BENCH_PR3.json.
void BM_GrlBatch(benchmark::State& state) {
  auto& f = TheGpsFormerFixture();
  static GraphRefinementLayer* grl = [] {
    GrlConfig cfg;
    cfg.dim = 32;
    auto* layer = new GraphRefinementLayer(cfg);
    layer->SetTraining(false);
    return layer;
  }();
  const bool batched = state.range(0) == 1;
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    if (batched) {
      benchmark::DoNotOptimize(
          grl->ForwardBatch(f.h0_flat, f.z0_flat, f.batched_graphs, f.lengths)
              .data()
              .data());
    } else {
      for (size_t s = 0; s < f.h0s.size(); ++s) {
        benchmark::DoNotOptimize(
            grl->Forward(f.h0s[s], f.z0s[s], f.sample_graph_ptrs[s]));
      }
    }
  }
  state.SetLabel(std::string(batched ? "one batched GRL pass"
                                     : "per-sample GRL loop") +
                 ", B=16, d=32");
}
BENCHMARK(BM_GrlBatch)->Arg(0)->Arg(1);

// The PR 8 fusion pass on the encoder's elementwise spine: scale+masked
// softmax (attention weights), residual-add+LayerNorm (post-attention),
// bias+ReLU (FFN), and a second residual-add+LayerNorm — everything in a
// transformer block EXCEPT the GEMMs, which fusion leaves untouched. Arg0:
// 0 = the generic op chains (exactly what the entry points re-compose with
// fusion off), 1 = the fused single-pass kernels. The ratio of the two rows
// is the fusion_chain_speedup the CI gate pins (>= 1.15x).
void BM_FusedChain(benchmark::State& state) {
  const bool fused = state.range(0) == 1;
  const int n = 48, d = 64;
  SeedGlobalRng(12);
  Tensor scores = Tensor::Randn({n, n}, 1.0f);
  Tensor mask = Tensor::Zeros({n, n});
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) mask.data()[i * n + j] = -1e9f;
  }
  Tensor x = Tensor::Randn({n, d}, 1.0f);
  Tensor attn_out = Tensor::Randn({n, d}, 1.0f);
  Tensor gamma1 = Tensor::Randn({d}, 0.1f);
  Tensor beta1 = Tensor::Randn({d}, 0.1f);
  Tensor gamma2 = Tensor::Randn({d}, 0.1f);
  Tensor beta2 = Tensor::Randn({d}, 0.1f);
  Tensor bias = Tensor::Randn({d}, 0.1f);
  const float scale = 0.125f;
  NoGradGuard guard;
  BufferPoolScope pool;
  fusion::FusionScope scope(fused);
  for (auto _ : state) {
    Tensor w = fusion::ScaleMaskedSoftmax(scores, scale, mask);
    Tensor y = fusion::ResidualLayerNorm(x, attn_out, gamma1, beta1, 1e-5f);
    Tensor ff = fusion::BiasAct(y, bias, fusion::Act::kRelu);
    Tensor out = fusion::ResidualLayerNorm(y, ff, gamma2, beta2, 1e-5f);
    benchmark::DoNotOptimize(w.data().data());
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetLabel(std::string(fused ? "fused single-pass kernels"
                                   : "generic op chains") +
                 ", n=48, d=64");
}
BENCHMARK(BM_FusedChain)->Arg(0)->Arg(1);

// bf16 conversion kernel throughput: the per-element cost of the storage
// mode's block-boundary round trips (RNE pack + unpack vs a plain copy).
void BM_Bf16RoundTrip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SeedGlobalRng(13);
  Tensor x = Tensor::Randn({n}, 2.0f);
  std::vector<uint16_t> packed(n);
  std::vector<float> unpacked(n);
  for (auto _ : state) {
    internal::Bf16FromFloatArray(x.data().data(), packed.data(), n);
    internal::Bf16ToFloatArray(packed.data(), unpacked.data(), n);
    benchmark::DoNotOptimize(unpacked.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Bf16RoundTrip)->Arg(4096)->Arg(65536);

// The in-graph quantise op as the model emits it at block boundaries.
void BM_Bf16Quantize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SeedGlobalRng(14);
  Tensor x = Tensor::Randn({n, 64}, 1.0f);
  NoGradGuard guard;
  BufferPoolScope pool;
  Bf16Scope scope;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaybeQuantizeBf16(x).data().data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * 64);
}
BENCHMARK(BM_Bf16Quantize)->Arg(64)->Arg(512);

struct World {
  std::unique_ptr<Dataset> ds;
  World() {
    DatasetConfig cfg = ChengduConfig(BenchScale::kTiny);
    cfg.num_train = 4;
    cfg.num_val = 1;
    cfg.num_test = 8;
    ds = BuildDataset(cfg);
  }
};

World& TheWorld() {
  static World w;
  return w;
}

void BM_DijkstraRow(benchmark::State& state) {
  auto& w = TheWorld();
  int src = 0;
  for (auto _ : state) {
    NetworkDistance nd(&w.ds->roadnet());  // fresh cache each iteration
    benchmark::DoNotOptimize(nd.StartToStart(src, 1));
    src = (src + 1) % w.ds->roadnet().num_segments();
  }
}
BENCHMARK(BM_DijkstraRow);

void BM_RTreeRadiusQuery(benchmark::State& state) {
  auto& w = TheWorld();
  Rng rng(5);
  const BBox& b = w.ds->roadnet().bounds();
  for (auto _ : state) {
    Vec2 p{rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)};
    benchmark::DoNotOptimize(
        SegmentsWithinRadius(w.ds->roadnet(), w.ds->rtree(), p, 300.0));
  }
}
BENCHMARK(BM_RTreeRadiusQuery);

/// The batched counterpart: `Arg` points per call through
/// BatchSegmentsWithinRadius (chunk-parallel with scratch reuse). Compare
/// items_per_second against BM_RTreeRadiusQuery's iterations/sec to read the
/// per-point speedup.
void BM_RTreeRadiusQueryBatch(benchmark::State& state) {
  auto& w = TheWorld();
  Rng rng(5);
  const BBox& b = w.ds->roadnet().bounds();
  std::vector<Vec2> points(state.range(0));
  for (auto& p : points) {
    p = {rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BatchSegmentsWithinRadius(w.ds->roadnet(), w.ds->rtree(), points, 300.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeRadiusQueryBatch)->Arg(64)->Arg(256);

/// Serving-cache variant: the same random points answered through a warm
/// CellCandidateCache (exact grid-cell-keyed candidates).
void BM_RTreeRadiusQueryCached(benchmark::State& state) {
  auto& w = TheWorld();
  serve::CellCandidateCache cache(&w.ds->roadnet(), &w.ds->rtree(),
                                  &w.ds->grid(), {300.0});
  Rng rng(5);
  const BBox& b = w.ds->roadnet().bounds();
  for (auto _ : state) {
    Vec2 p{rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)};
    benchmark::DoNotOptimize(cache.WithinRadius(p, 300.0));
  }
}
BENCHMARK(BM_RTreeRadiusQueryCached);

void BM_SubGraphExtraction(benchmark::State& state) {
  auto& w = TheWorld();
  Rng rng(6);
  const BBox& b = w.ds->roadnet().bounds();
  for (auto _ : state) {
    Vec2 p{rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)};
    benchmark::DoNotOptimize(ExtractPointSubGraph(
        w.ds->roadnet(), w.ds->rtree(), p, 300.0, 30.0));
  }
}
BENCHMARK(BM_SubGraphExtraction);

void BM_HmmMatchTrajectory(benchmark::State& state) {
  auto& w = TheWorld();
  NetworkDistance nd(&w.ds->roadnet());
  size_t i = 0;
  for (auto _ : state) {
    const auto& s = w.ds->test()[i % w.ds->test().size()];
    benchmark::DoNotOptimize(
        HmmMapMatch(w.ds->roadnet(), w.ds->rtree(), nd, s.raw_noisy));
    ++i;
  }
}
BENCHMARK(BM_HmmMatchTrajectory);

void BM_RnTrajRecInference(benchmark::State& state) {
  auto& w = TheWorld();
  SeedGlobalRng(7);
  ModelContext ctx = ModelContext::FromDataset(*w.ds);
  auto model = MakeModel("rntrajrec", ctx, 16);
  model->SetTrainingMode(false);
  model->BeginInference();
  size_t i = 0;
  for (auto _ : state) {
    const auto& s = w.ds->test()[i % w.ds->test().size()];
    benchmark::DoNotOptimize(model->Recover(s));
    ++i;
  }
}
BENCHMARK(BM_RnTrajRecInference);

/// Isolated decoder record: the per-sample Decode loop vs one DecodeBatch
/// over the identical micro-batch (same encoder outputs, warm mask caches),
/// so the comparison measures exactly the PR 4 refactor — per target step,
/// one fat GRU/attention/constraint-softmax pass instead of B thin ones.
struct DecoderBatchWorld {
  ModelContext ctx;
  DecoderConfig cfg;
  std::unique_ptr<Decoder> dec;
  std::vector<const TrajectorySample*> ptrs;
  std::vector<Tensor> enc;
  std::vector<Tensor> traj;

  DecoderBatchWorld() : ctx(ModelContext::FromDataset(*TheWorld().ds)) {
    SeedGlobalRng(8);
    cfg.dim = 32;
    dec = std::make_unique<Decoder>(cfg, &ctx);
    const auto& test = TheWorld().ds->test();
    for (int i = 0; i < 16; ++i) {
      const TrajectorySample& s = test[i % test.size()];
      ptrs.push_back(&s);
      enc.push_back(
          Tensor::Randn({static_cast<int>(s.input.size()), cfg.dim}, 1.0f));
      traj.push_back(Tensor::Randn({1, cfg.dim}, 0.5f));
    }
    // Warm the per-sample mask caches up front: both paths then measure
    // pure decoding, not R-tree work.
    NoGradGuard guard;
    for (size_t i = 0; i < ptrs.size(); ++i) {
      dec->Decode(enc[i], traj[i], *ptrs[i]);
    }
  }
};

DecoderBatchWorld& TheDecoderWorld() {
  static DecoderBatchWorld w;
  return w;
}

void BM_DecoderBatch(benchmark::State& state) {
  auto& w = TheDecoderWorld();
  const int b = static_cast<int>(state.range(0));
  const bool batched = state.range(1) == 1;
  std::vector<const TrajectorySample*> samples(w.ptrs.begin(),
                                               w.ptrs.begin() + b);
  std::vector<Tensor> enc(w.enc.begin(), w.enc.begin() + b);
  std::vector<Tensor> traj(w.traj.begin(), w.traj.begin() + b);
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    if (batched) {
      benchmark::DoNotOptimize(w.dec->DecodeBatch(enc, traj, samples));
    } else {
      for (int i = 0; i < b; ++i) {
        benchmark::DoNotOptimize(w.dec->Decode(enc[i], traj[i], *samples[i]));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * b);
  state.SetLabel(std::string(batched ? "one batched decode"
                                     : "per-sample decode loop") +
                 ", B=" + std::to_string(b) + ", d=32");
}
BENCHMARK(BM_DecoderBatch)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({16, 0})
    ->Args({16, 1});

}  // namespace
}  // namespace rntraj

BENCHMARK_MAIN();
