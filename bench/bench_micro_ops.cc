// Kernel microbenchmarks (google-benchmark): the hot paths underneath
// training and inference — matmul, softmax, GAT layers, Dijkstra rows,
// R-tree queries, sub-graph extraction, HMM matching and one full RNTrajRec
// inference.

#include <benchmark/benchmark.h>

#include "src/baselines/zoo.h"
#include "src/common/random.h"
#include "src/core/trainer.h"
#include "src/mapmatch/hmm.h"
#include "src/nn/attention.h"
#include "src/nn/graph.h"
#include "src/serve/roadnet_cache.h"
#include "src/sim/presets.h"
#include "src/tensor/buffer_pool.h"
#include "src/tensor/ops.h"

namespace rntraj {
namespace {

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SeedGlobalRng(1);
  Tensor a = Tensor::Randn({n, n}, 1.0f);
  Tensor b = Tensor::Randn({n, n}, 1.0f);
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matmul(a, b).data().data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{2} * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_SoftmaxRows(benchmark::State& state) {
  SeedGlobalRng(2);
  Tensor a = Tensor::Randn({64, static_cast<int>(state.range(0))}, 1.0f);
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SoftmaxRows(a).data().data());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(64)->Arg(512);

void BM_AddRowCol(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SeedGlobalRng(8);
  Tensor u = Tensor::Randn({n, 1}, 1.0f);
  Tensor v = Tensor::Randn({n}, 1.0f);
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AddRowCol(u, v).data().data());
  }
}
BENCHMARK(BM_AddRowCol)->Arg(128);

void BM_MaskedSoftmaxRows(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SeedGlobalRng(9);
  Tensor a = Tensor::Randn({n, n}, 1.0f);
  Tensor mask = Tensor::Zeros({n, n});
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaskedSoftmaxRows(a, mask).data().data());
  }
}
BENCHMARK(BM_MaskedSoftmaxRows)->Arg(128);

void BM_GatLayer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SeedGlobalRng(3);
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  DenseGraph g = BuildDenseGraph(n, edges);
  GatLayer gat(32, 4);
  Tensor h = Tensor::Randn({n, 32}, 1.0f);
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gat.Forward(h, g).data().data());
  }
}
BENCHMARK(BM_GatLayer)->Arg(16)->Arg(128);

void BM_SelfAttention(benchmark::State& state) {
  SeedGlobalRng(4);
  MultiHeadSelfAttention mha(32, 4);
  Tensor x = Tensor::Randn({static_cast<int>(state.range(0)), 32}, 1.0f);
  NoGradGuard guard;
  BufferPoolScope pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mha.Forward(x).data().data());
  }
}
BENCHMARK(BM_SelfAttention)->Arg(8)->Arg(48);

struct World {
  std::unique_ptr<Dataset> ds;
  World() {
    DatasetConfig cfg = ChengduConfig(BenchScale::kTiny);
    cfg.num_train = 4;
    cfg.num_val = 1;
    cfg.num_test = 8;
    ds = BuildDataset(cfg);
  }
};

World& TheWorld() {
  static World w;
  return w;
}

void BM_DijkstraRow(benchmark::State& state) {
  auto& w = TheWorld();
  int src = 0;
  for (auto _ : state) {
    NetworkDistance nd(&w.ds->roadnet());  // fresh cache each iteration
    benchmark::DoNotOptimize(nd.StartToStart(src, 1));
    src = (src + 1) % w.ds->roadnet().num_segments();
  }
}
BENCHMARK(BM_DijkstraRow);

void BM_RTreeRadiusQuery(benchmark::State& state) {
  auto& w = TheWorld();
  Rng rng(5);
  const BBox& b = w.ds->roadnet().bounds();
  for (auto _ : state) {
    Vec2 p{rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)};
    benchmark::DoNotOptimize(
        SegmentsWithinRadius(w.ds->roadnet(), w.ds->rtree(), p, 300.0));
  }
}
BENCHMARK(BM_RTreeRadiusQuery);

/// The batched counterpart: `Arg` points per call through
/// BatchSegmentsWithinRadius (chunk-parallel with scratch reuse). Compare
/// items_per_second against BM_RTreeRadiusQuery's iterations/sec to read the
/// per-point speedup.
void BM_RTreeRadiusQueryBatch(benchmark::State& state) {
  auto& w = TheWorld();
  Rng rng(5);
  const BBox& b = w.ds->roadnet().bounds();
  std::vector<Vec2> points(state.range(0));
  for (auto& p : points) {
    p = {rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BatchSegmentsWithinRadius(w.ds->roadnet(), w.ds->rtree(), points, 300.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeRadiusQueryBatch)->Arg(64)->Arg(256);

/// Serving-cache variant: the same random points answered through a warm
/// CellCandidateCache (exact grid-cell-keyed candidates).
void BM_RTreeRadiusQueryCached(benchmark::State& state) {
  auto& w = TheWorld();
  serve::CellCandidateCache cache(&w.ds->roadnet(), &w.ds->rtree(),
                                  &w.ds->grid(), {300.0});
  Rng rng(5);
  const BBox& b = w.ds->roadnet().bounds();
  for (auto _ : state) {
    Vec2 p{rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)};
    benchmark::DoNotOptimize(cache.WithinRadius(p, 300.0));
  }
}
BENCHMARK(BM_RTreeRadiusQueryCached);

void BM_SubGraphExtraction(benchmark::State& state) {
  auto& w = TheWorld();
  Rng rng(6);
  const BBox& b = w.ds->roadnet().bounds();
  for (auto _ : state) {
    Vec2 p{rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)};
    benchmark::DoNotOptimize(ExtractPointSubGraph(
        w.ds->roadnet(), w.ds->rtree(), p, 300.0, 30.0));
  }
}
BENCHMARK(BM_SubGraphExtraction);

void BM_HmmMatchTrajectory(benchmark::State& state) {
  auto& w = TheWorld();
  NetworkDistance nd(&w.ds->roadnet());
  size_t i = 0;
  for (auto _ : state) {
    const auto& s = w.ds->test()[i % w.ds->test().size()];
    benchmark::DoNotOptimize(
        HmmMapMatch(w.ds->roadnet(), w.ds->rtree(), nd, s.raw_noisy));
    ++i;
  }
}
BENCHMARK(BM_HmmMatchTrajectory);

void BM_RnTrajRecInference(benchmark::State& state) {
  auto& w = TheWorld();
  SeedGlobalRng(7);
  ModelContext ctx = ModelContext::FromDataset(*w.ds);
  auto model = MakeModel("rntrajrec", ctx, 16);
  model->SetTrainingMode(false);
  model->BeginInference();
  size_t i = 0;
  for (auto _ : state) {
    const auto& s = w.ds->test()[i % w.ds->test().size()];
    benchmark::DoNotOptimize(model->Recover(s));
    ++i;
  }
}
BENCHMARK(BM_RnTrajRecInference);

}  // namespace
}  // namespace rntraj

BENCHMARK_MAIN();
