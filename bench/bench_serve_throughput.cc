// Serving throughput benchmark: micro-batched RecoveryService vs sequential
// single-request inference on the same request workload.
//
// Configurations over an identical request stream:
//   cold sequential   — the no-subsystem baseline: every request pays the
//                       full single-request cost including the road
//                       representation forward (what answering a request in
//                       isolation costs without re-entrant warm sessions);
//   warm sequential   — one BeginInference, then one request at a time
//                       (today's offline RecoverAll loop, no batching, no
//                       caches);
//   service/per-req   — RecoveryService with batched_forward off: warm
//                       re-entrant sessions + caches, but each request of a
//                       micro-batch still runs its own forward (the PR 2
//                       configuration — the "before" number);
//   service/batched   — the default service: each micro-batch runs ONE
//                       padded GPSFormer pass (RecoverBatch), so encoder
//                       GEMMs see (sum of lengths, d) operands;
//   plus a num_sessions sweep of the batched service.
// The batched service answers are compared element-wise against the warm
// sequential answers: they must agree within 1e-5 (same segments; ratios
// match to float rounding — see RecoveryServiceConfig::batched_forward).
// Reported: requests/sec, p50/p99 latency, speedups.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/rntrajrec.h"
#include "src/serve/recovery_service.h"
#include "src/serve/workload.h"
#include "src/tensor/bfloat16.h"
#include "src/tensor/buffer_pool.h"
#include "src/tensor/fusion.h"

namespace rntraj {
namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool Run() {
  const auto settings = bench::Settings();
  const int num_requests = settings.scale == BenchScale::kTiny ? 120 : 360;

  DatasetConfig cfg = ChengduConfig(settings.scale, 8);
  auto ds = BuildDataset(cfg);
  ModelContext ctx = ModelContext::FromDataset(*ds);
  bench::PrintDatasetBanner(*ds, settings);

  SeedGlobalRng(12345);
  RnTrajRecConfig mcfg = DefaultRnTrajRecConfig(settings.dim);
  RnTrajRec model(mcfg, ctx);
  model.SetTrainingMode(false);

  auto workload = serve::PoissonWorkload(ds->test(), num_requests,
                                         /*qps=*/1e9, /*seed=*/7);

  // --- cold sequential: full per-request cost, road representation included.
  std::vector<double> cold_ms;
  {
    BufferPoolScope scope;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& item : workload) {
      const auto r0 = std::chrono::steady_clock::now();
      model.BeginInference();
      serve::RecoveryRequest req = item.request;
      TrajectorySample s = MakeEphemeralSample(
          std::move(req.input), std::move(req.input_indices), req.target_times);
      MatchedTrajectory out = model.Recover(s);
      (void)out;
      cold_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - r0)
              .count());
    }
    (void)t0;
  }
  const double cold_total_s =
      std::accumulate(cold_ms.begin(), cold_ms.end(), 0.0) / 1000.0;

  // --- warm sequential: BeginInference once, then request at a time.
  std::vector<MatchedTrajectory> warm_results;
  std::vector<double> warm_ms;
  model.BeginInference();
  {
    BufferPoolScope scope;
    for (const auto& item : workload) {
      const auto r0 = std::chrono::steady_clock::now();
      serve::RecoveryRequest req = item.request;
      TrajectorySample s = MakeEphemeralSample(
          std::move(req.input), std::move(req.input_indices), req.target_times);
      warm_results.push_back(model.Recover(s));
      warm_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - r0)
              .count());
    }
  }
  const double warm_total_s =
      std::accumulate(warm_ms.begin(), warm_ms.end(), 0.0) / 1000.0;

  // --- service runs: warm sessions, caches, micro-batching; per-request
  // forwards (the PR 2 configuration) vs one padded batched forward per
  // micro-batch, plus a num_sessions sweep of the batched path. Default
  // session count sized to the hardware: on one core extra workers only
  // thrash.
  const int auto_sessions = std::max(
      1, std::min(4, static_cast<int>(std::thread::hardware_concurrency())));

  struct ServiceRun {
    double total_s = 0.0;
    serve::ServeStats stats;
    std::vector<serve::RecoveryResponse> responses;
  };
  const auto run_service = [&](bool batched, int sessions, bool obs_on = false,
                               bool fuse = false, bool bf16 = false) {
    serve::RecoveryServiceConfig scfg;
    scfg.num_sessions = sessions;
    scfg.batched_forward = batched;
    scfg.fuse_elementwise = fuse;
    scfg.bf16_activations = bf16;
    scfg.batcher.max_batch_size = 16;
    scfg.batcher.max_batch_delay_us = 1000;
    scfg.cache_radii = {mcfg.delta, mcfg.decoder.mask_radius,
                        mcfg.decoder.spatial_prior_radius};
    scfg.prefetch_radii = {mcfg.delta};
    scfg.max_dijkstra_rows = 1024;
    scfg.warm_model = false;  // already warmed for the warm-sequential run
    if (obs_on) {
      // The full observability plane: every request traced, stage profiling
      // on. The overhead gate compares this against the obs-off twin.
      scfg.trace.sample_rate = 1.0;
      scfg.trace.ring_capacity = 256;
      scfg.profile_stages = true;
    }
    serve::RecoveryService service(&model, ctx, scfg);
    ServiceRun run;
    std::vector<std::future<serve::RecoveryResponse>> futures;
    futures.reserve(workload.size());
    const auto s0 = std::chrono::steady_clock::now();
    for (auto& item : workload) {
      futures.push_back(service.Submit(item.request));
    }
    run.responses.reserve(futures.size());
    for (auto& f : futures) run.responses.push_back(f.get());
    run.total_s = Seconds(s0);
    run.stats = service.Stats();
    if (obs_on) {
      // Observability artifacts for CI: the metrics snapshot and the
      // sampled-trace dump, written wherever the environment points.
      if (const char* path = std::getenv("RNTR_METRICS_JSON")) {
        std::ofstream out(path);
        out << service.Metrics().ToJson() << "\n";
        std::printf("wrote metrics snapshot to %s\n", path);
      }
      if (const char* path = std::getenv("RNTR_TRACE_JSON")) {
        std::ofstream out(path);
        out << service.tracer()->DumpJson() << "\n";
        std::printf("wrote trace dump to %s\n", path);
      }
    }
    return run;
  };

  const ServiceRun per_request = run_service(/*batched=*/false, auto_sessions);
  const ServiceRun batched = run_service(/*batched=*/true, auto_sessions);
  std::vector<std::pair<int, ServiceRun>> sweep;
  for (int ns : {1, 2, 4}) {
    if (ns == auto_sessions) continue;  // already measured
    sweep.emplace_back(ns, run_service(/*batched=*/true, ns));
  }

  // --- observability overhead: the batched configuration on the same
  // workload — tracing/metrics/profiling off vs everything on (sample_rate
  // 1.0: every request carries a span tree; stage profiling global). The CI
  // gate (ci/check_bench.py) is self-relative on THIS run: obs_on_rps must
  // be >= 95% of obs_off_rps, so the claim "observability costs < 5%
  // throughput" is re-proven on every box the bench runs on. Each side is
  // the best of kObsRepeats interleaved runs: a single run on a shared box
  // wobbles far more than the 5% gate (±10-30% observed), and min-time of
  // repeated identical runs is the standard noise-floor estimator —
  // best-vs-best keeps the comparison honest while interleaving cancels
  // background-load drift.
  constexpr int kObsRepeats = 3;
  ServiceRun obs_off = run_service(/*batched=*/true, auto_sessions);
  ServiceRun obs_on =
      run_service(/*batched=*/true, auto_sessions, /*obs_on=*/true);
  for (int rep = 1; rep < kObsRepeats; ++rep) {
    ServiceRun off = run_service(/*batched=*/true, auto_sessions);
    if (off.total_s < obs_off.total_s) obs_off = std::move(off);
    ServiceRun on =
        run_service(/*batched=*/true, auto_sessions, /*obs_on=*/true);
    if (on.total_s < obs_on.total_s) obs_on = std::move(on);
  }
  const double obs_off_rps = num_requests / obs_off.total_s;
  const double obs_on_rps = num_requests / obs_on.total_s;
  const double obs_overhead_frac = 1.0 - obs_on_rps / obs_off_rps;

  // --- fusion (PR 8): the batched configuration with the tape-level
  // elementwise fusion pass off vs on, interleaved best-of-kObsRepeats like
  // the observability pair. The CI gate is self-relative on THIS run:
  // fusion on must not be slower than off (>= 95% rps, same noise floor as
  // the obs gate), and the fused answers must match the unfused warm
  // sequential answers within 1e-5.
  ServiceRun fuse_off = run_service(/*batched=*/true, auto_sessions);
  ServiceRun fuse_on = run_service(/*batched=*/true, auto_sessions,
                                   /*obs_on=*/false, /*fuse=*/true);
  for (int rep = 1; rep < kObsRepeats; ++rep) {
    ServiceRun off = run_service(/*batched=*/true, auto_sessions);
    if (off.total_s < fuse_off.total_s) fuse_off = std::move(off);
    ServiceRun on = run_service(/*batched=*/true, auto_sessions,
                                /*obs_on=*/false, /*fuse=*/true);
    if (on.total_s < fuse_on.total_s) fuse_on = std::move(on);
  }
  const double fusion_off_rps = num_requests / fuse_off.total_s;
  const double fusion_on_rps = num_requests / fuse_on.total_s;

  // Isolated fused-chain speedup, measured in-process so the JSON record is
  // self-contained: the encoder's elementwise spine (scale+masked softmax,
  // residual+LayerNorm, bias+ReLU, residual+LayerNorm — no GEMMs) as the
  // generic op chains vs the fused single-pass kernels. Best-of-kObsRepeats
  // interleaved; the committed claim is >= 1.15x.
  const auto time_chain = [&](bool fused) {
    const int n = 48, d = 64;
    SeedGlobalRng(777);
    Tensor scores = Tensor::Randn({n, n}, 1.0f);
    Tensor cmask = Tensor::Zeros({n, n});
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) cmask.data()[i * n + j] = -1e9f;
    }
    Tensor x = Tensor::Randn({n, d}, 1.0f);
    Tensor attn_out = Tensor::Randn({n, d}, 1.0f);
    Tensor gamma = Tensor::Randn({d}, 0.1f);
    Tensor beta = Tensor::Randn({d}, 0.1f);
    Tensor fbias = Tensor::Randn({d}, 0.1f);
    NoGradGuard guard;
    BufferPoolScope pool;
    fusion::FusionScope scope(fused);
    const int iters = settings.scale == BenchScale::kTiny ? 200 : 600;
    const auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < iters; ++it) {
      Tensor w = fusion::ScaleMaskedSoftmax(scores, 0.125f, cmask);
      Tensor y = fusion::ResidualLayerNorm(x, attn_out, gamma, beta, 1e-5f);
      Tensor ff = fusion::BiasAct(y, fbias, fusion::Act::kRelu);
      Tensor out = fusion::ResidualLayerNorm(y, ff, gamma, beta, 1e-5f);
      (void)w;
      (void)out;
    }
    return Seconds(t0);
  };
  double chain_unfused_s = time_chain(false);
  double chain_fused_s = time_chain(true);
  for (int rep = 1; rep < kObsRepeats; ++rep) {
    chain_unfused_s = std::min(chain_unfused_s, time_chain(false));
    chain_fused_s = std::min(chain_fused_s, time_chain(true));
  }
  const double fusion_chain_speedup = chain_unfused_s / chain_fused_s;

  // --- bf16 (PR 8): the batched service with bf16 activation storage at the
  // encoder block boundaries. Two comparisons with different strength:
  //   served vs bf16 offline — the serving machinery (batching, caches,
  //     sessions) must add NO divergence of its own: segment ids unchanged
  //     (the gate ci/check_bench.py pins at zero);
  //   bf16 vs fp32 — the storage mode's numeric cost, the documented looser
  //     bound (ratios within ~1e-1; an untrained bench model has near-tied
  //     logits, so fp32-vs-bf16 segment identity is not a meaningful claim
  //     here — the model-level tests pin it on the small trained workloads).
  const ServiceRun bf16_run =
      run_service(/*batched=*/true, auto_sessions, /*obs_on=*/false,
                  /*fuse=*/false, /*bf16=*/true);
  std::vector<MatchedTrajectory> bf16_warm_results;
  {
    BufferPoolScope scope;
    Bf16Scope bf16_scope;
    for (const auto& item : workload) {
      serve::RecoveryRequest req = item.request;
      TrajectorySample s = MakeEphemeralSample(
          std::move(req.input), std::move(req.input_indices), req.target_times);
      bf16_warm_results.push_back(model.Recover(s));
    }
  }
  const auto compare_responses =
      [&](const std::vector<serve::RecoveryResponse>& resps,
          const std::vector<MatchedTrajectory>& refs, int* mismatches,
          double* ratio_diff) {
        *mismatches = 0;
        *ratio_diff = 0.0;
        int failed = 0;
        for (size_t i = 0; i < resps.size(); ++i) {
          if (!resps[i].ok) {
            ++failed;
            continue;
          }
          const MatchedTrajectory& ref = refs[i];
          for (int j = 0; j < ref.size(); ++j) {
            if (resps[i].recovered.points[j].seg_id != ref.points[j].seg_id) {
              ++*mismatches;
            }
            *ratio_diff =
                std::max(*ratio_diff,
                         std::abs(resps[i].recovered.points[j].ratio -
                                  ref.points[j].ratio));
          }
        }
        return failed;
      };
  int fusion_seg_mismatches = 0;
  double fusion_max_ratio_diff = 0.0;
  const int fusion_failed =
      compare_responses(fuse_on.responses, warm_results,
                        &fusion_seg_mismatches, &fusion_max_ratio_diff);
  // Serve-layer bf16 gate: served bf16 answers == offline bf16 answers.
  int bf16_seg_mismatches = 0;
  double bf16_serve_ratio_diff = 0.0;
  const int bf16_failed =
      compare_responses(bf16_run.responses, bf16_warm_results,
                        &bf16_seg_mismatches, &bf16_serve_ratio_diff);
  // Documented numeric cost of the storage mode: offline bf16 vs fp32.
  int bf16_vs_fp32_seg_mismatches = 0;
  double bf16_max_ratio_diff = 0.0;
  for (size_t i = 0; i < bf16_warm_results.size(); ++i) {
    const MatchedTrajectory& ref = warm_results[i];
    for (int j = 0; j < ref.size(); ++j) {
      if (bf16_warm_results[i].points[j].seg_id != ref.points[j].seg_id) {
        ++bf16_vs_fp32_seg_mismatches;
      }
      bf16_max_ratio_diff = std::max(
          bf16_max_ratio_diff,
          std::abs(bf16_warm_results[i].points[j].ratio - ref.points[j].ratio));
    }
  }

  // --- warm start (PR 9): starting a serving process from a snapshot vs
  // recomputing the road representation. SaveSnapshot captures the state
  // dict (one flattened-arena write) plus the warm road section; a loaded
  // model's BeginInference skips the GridGNN forward entirely. The CI gate
  // (ci/check_bench.py) requires load >= 5x faster than the cold warmup —
  // both sides timed in THIS process, so the bound is runner-independent.
  const std::string snap_path = [] {
    const char* tmp = std::getenv("TMPDIR");
    return std::string(tmp != nullptr ? tmp : "/tmp") +
           "/bench_serve_warmstart.snapshot";
  }();
  double snapshot_write_s = 0.0;
  {
    const auto t0 = std::chrono::steady_clock::now();
    std::string err;
    if (!model.SaveSnapshot(snap_path, &err)) {
      std::fprintf(stderr, "FAILED to write warm-start snapshot: %s\n",
                   err.c_str());
      return false;
    }
    snapshot_write_s = Seconds(t0);
  }
  constexpr int kWarmRepeats = 3;
  double warmstart_cold_s = 1e30;  // BeginInference recomputing the road rep
  double warmstart_load_s = 1e30;  // LoadSnapshot + warm BeginInference
  std::vector<MatchedTrajectory> warmstart_answers;
  for (int rep = 0; rep < kWarmRepeats; ++rep) {
    {
      SeedGlobalRng(12345);
      RnTrajRec cold_model(mcfg, ctx);
      cold_model.SetTrainingMode(false);
      const auto t0 = std::chrono::steady_clock::now();
      cold_model.BeginInference();
      warmstart_cold_s = std::min(warmstart_cold_s, Seconds(t0));
    }
    {
      SeedGlobalRng(54321);  // different init: the snapshot must supply all
      RnTrajRec loaded(mcfg, ctx);
      loaded.SetTrainingMode(false);
      const auto t0 = std::chrono::steady_clock::now();
      std::string err;
      if (!loaded.LoadSnapshot(snap_path, &err)) {
        std::fprintf(stderr, "FAILED to load warm-start snapshot: %s\n",
                     err.c_str());
        return false;
      }
      loaded.BeginInference();  // road section present: recompute skipped
      warmstart_load_s = std::min(warmstart_load_s, Seconds(t0));
      if (rep == 0) {
        // Snapshot fidelity: the loaded model must answer exactly like the
        // original (identical weights, identical road representation).
        BufferPoolScope scope;
        for (size_t i = 0; i < std::min<size_t>(8, workload.size()); ++i) {
          serve::RecoveryRequest req = workload[i].request;
          TrajectorySample s =
              MakeEphemeralSample(std::move(req.input),
                                  std::move(req.input_indices),
                                  req.target_times);
          warmstart_answers.push_back(loaded.Recover(s));
        }
      }
    }
  }
  int warmstart_seg_mismatches = 0;
  for (size_t i = 0; i < warmstart_answers.size(); ++i) {
    for (int j = 0; j < warmstart_answers[i].size(); ++j) {
      if (warmstart_answers[i].points[j].seg_id !=
          warm_results[i].points[j].seg_id) {
        ++warmstart_seg_mismatches;
      }
    }
  }
  const double warmstart_speedup = warmstart_cold_s / warmstart_load_s;

  // --- hot swap under load (PR 9): replay the workload through the batched
  // service and SwapModel mid-stream to a snapshot-loaded clone. The
  // invariants the CI gate pins: every future resolves (zero drops), and —
  // because the clone carries identical weights — every ok answer still
  // matches the warm sequential reference, whichever generation stamped it
  // (whole-model answers, never a blend).
  int64_t swap_dropped = 0;
  int swap_failed = 0;
  int swap_seg_mismatches = 0;
  double swap_max_ratio_diff = 0.0;
  int64_t swap_old_gen = 0, swap_new_gen = 0;
  uint64_t swap_final_version = 0;
  {
    SeedGlobalRng(54321);
    auto next = std::make_shared<RnTrajRec>(mcfg, ctx);
    std::string err;
    if (!next->LoadSnapshot(snap_path, &err)) {
      std::fprintf(stderr, "FAILED to load swap snapshot: %s\n", err.c_str());
      return false;
    }
    serve::RecoveryServiceConfig scfg;
    scfg.num_sessions = auto_sessions;
    scfg.batcher.max_batch_size = 16;
    scfg.batcher.max_batch_delay_us = 1000;
    scfg.cache_radii = {mcfg.delta, mcfg.decoder.mask_radius,
                        mcfg.decoder.spatial_prior_radius};
    scfg.prefetch_radii = {mcfg.delta};
    scfg.max_dijkstra_rows = 1024;
    scfg.warm_model = false;
    serve::RecoveryService service(&model, ctx, scfg);
    std::vector<std::future<serve::RecoveryResponse>> futures;
    futures.reserve(workload.size());
    const size_t half = workload.size() / 2;
    for (size_t i = 0; i < half; ++i) {
      futures.push_back(service.Submit(workload[i].request));
    }
    // The flip lands while the first half is in flight; warmup runs on this
    // thread (and is itself a snapshot warm start — no road recompute).
    if (!service.SwapModel(next, &err)) {
      std::fprintf(stderr, "FAILED to swap model: %s\n", err.c_str());
      return false;
    }
    for (size_t i = half; i < workload.size(); ++i) {
      futures.push_back(service.Submit(workload[i].request));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      if (futures[i].wait_for(std::chrono::seconds(60)) !=
          std::future_status::ready) {
        ++swap_dropped;
        continue;
      }
      const serve::RecoveryResponse resp = futures[i].get();
      if (!resp.ok) {
        ++swap_failed;
        continue;
      }
      (resp.model_version == 0 ? swap_old_gen : swap_new_gen) += 1;
      const MatchedTrajectory& ref = warm_results[i];
      for (int j = 0; j < ref.size(); ++j) {
        if (resp.recovered.points[j].seg_id != ref.points[j].seg_id) {
          ++swap_seg_mismatches;
        }
        swap_max_ratio_diff =
            std::max(swap_max_ratio_diff,
                     std::abs(resp.recovered.points[j].ratio -
                              ref.points[j].ratio));
      }
    }
    swap_final_version = service.model_version();
  }
  const bool swap_ok = swap_dropped == 0 && swap_failed == 0 &&
                       swap_seg_mismatches == 0 &&
                       swap_max_ratio_diff <= 1e-5 && swap_final_version == 1;

  const std::vector<serve::RecoveryResponse>& responses = batched.responses;
  const double serve_total_s = batched.total_s;

  // --- equivalence: batched service answers vs warm sequential answers.
  int bad = 0;
  int seg_mismatches = 0;
  double max_ratio_diff = 0.0;
  for (size_t i = 0; i < responses.size(); ++i) {
    const auto& resp = responses[i];
    if (!resp.ok) {
      ++bad;
      continue;
    }
    const MatchedTrajectory& ref = warm_results[i];
    for (int j = 0; j < ref.size(); ++j) {
      if (resp.recovered.points[j].seg_id != ref.points[j].seg_id) {
        ++seg_mismatches;
      }
      max_ratio_diff =
          std::max(max_ratio_diff, std::abs(resp.recovered.points[j].ratio -
                                            ref.points[j].ratio));
    }
  }
  const bool match = bad == 0 && seg_mismatches == 0 && max_ratio_diff <= 1e-5;

  // --- overload: open-loop Poisson replay past capacity, ladder off vs on.
  //
  // Offered load is a multiple of the batched service's measured closed-loop
  // capacity ON THIS RUN (so the section is self-calibrating across boxes),
  // the queue is deliberately shallow, and every request carries a deadline.
  // Policy OFF is the pre-PR6 behaviour: the only defence is queue-full
  // shedding, and queued requests that outlive their budget are evicted at
  // dequeue. Policy ON adds the degradation ladder: DEGRADED routes to the
  // Linear+HMM fallback (answers flagged `degraded`), SHEDDING refuses
  // admission before the queue is even full. The claims the CI gate checks
  // (ci/check_bench.py): p99 of ANSWERED requests stays bounded by the
  // deadline in both runs (deadline enforcement), and the shed rate with the
  // ladder on is strictly below the ladder-off shed rate at the same offered
  // load (degrading beats dropping).
  const double capacity_rps = num_requests / serve_total_s;
  const double offered_qps = 3.0 * capacity_rps;
  const int overload_requests =
      settings.scale == BenchScale::kTiny ? 240 : 480;
  const double overload_deadline_ms = 250.0;

  struct OverloadRun {
    double total_s = 0.0;
    serve::ServeStats stats;
  };
  const auto run_overload = [&](bool policy_on) {
    serve::RecoveryServiceConfig scfg;
    scfg.num_sessions = auto_sessions;
    scfg.batcher.max_batch_size = 16;
    scfg.batcher.max_batch_delay_us = 1000;
    scfg.batcher.max_queue_depth = 32;  // shallow: overload bites quickly
    scfg.cache_radii = {mcfg.delta, mcfg.decoder.mask_radius,
                        mcfg.decoder.spatial_prior_radius};
    scfg.prefetch_radii = {mcfg.delta};
    scfg.max_dijkstra_rows = 1024;
    scfg.warm_model = false;
    scfg.policy.enabled = policy_on;
    serve::RecoveryService service(&model, ctx, scfg);
    auto overload_workload = serve::PoissonWorkload(
        ds->test(), overload_requests, offered_qps, /*seed=*/21);
    std::vector<std::future<serve::RecoveryResponse>> futures;
    futures.reserve(overload_workload.size());
    const auto s0 = std::chrono::steady_clock::now();
    for (auto& item : overload_workload) {
      // Open loop: arrivals follow the Poisson schedule regardless of how
      // far behind the service is — that is what overload means.
      std::this_thread::sleep_until(
          s0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(item.arrival_s)));
      serve::RecoveryRequest req = item.request;
      req.deadline_ms = overload_deadline_ms;
      futures.push_back(service.Submit(std::move(req)));
    }
    for (auto& f : futures) f.get();
    OverloadRun run;
    run.total_s = Seconds(s0);
    run.stats = service.Stats();
    return run;
  };
  const OverloadRun ladder_off = run_overload(/*policy_on=*/false);
  const OverloadRun ladder_on = run_overload(/*policy_on=*/true);
  const auto rate = [&](int64_t n) {
    return static_cast<double>(n) / overload_requests;
  };

  const serve::ServeStats stats = batched.stats;
  TablePrinter table({"Configuration", "req/s", "p50 ms", "p99 ms", "total s"},
                     34, 11);
  table.PrintTitle("Serving throughput: " + std::to_string(num_requests) +
                   " requests, " + model.name());
  table.PrintHeader();
  table.PrintRow({"sequential cold (per-req xroad)",
                  TablePrinter::Num(num_requests / cold_total_s, 1),
                  TablePrinter::Num(serve::Percentile(cold_ms, 0.5), 2),
                  TablePrinter::Num(serve::Percentile(cold_ms, 0.99), 2),
                  TablePrinter::Num(cold_total_s, 2)});
  table.PrintRow({"sequential warm (RecoverAll)",
                  TablePrinter::Num(num_requests / warm_total_s, 1),
                  TablePrinter::Num(serve::Percentile(warm_ms, 0.5), 2),
                  TablePrinter::Num(serve::Percentile(warm_ms, 0.99), 2),
                  TablePrinter::Num(warm_total_s, 2)});
  table.PrintRow({"service, per-request forwards",
                  TablePrinter::Num(num_requests / per_request.total_s, 1),
                  TablePrinter::Num(per_request.stats.p50_ms, 2),
                  TablePrinter::Num(per_request.stats.p99_ms, 2),
                  TablePrinter::Num(per_request.total_s, 2)});
  table.PrintRow({"service, batched forward",
                  TablePrinter::Num(num_requests / serve_total_s, 1),
                  TablePrinter::Num(stats.p50_ms, 2),
                  TablePrinter::Num(stats.p99_ms, 2),
                  TablePrinter::Num(serve_total_s, 2)});
  for (const auto& [ns, run] : sweep) {
    table.PrintRow({"service, batched, sessions=" + std::to_string(ns),
                    TablePrinter::Num(num_requests / run.total_s, 1),
                    TablePrinter::Num(run.stats.p50_ms, 2),
                    TablePrinter::Num(run.stats.p99_ms, 2),
                    TablePrinter::Num(run.total_s, 2)});
  }
  table.PrintRow({"service, batched, obs off",
                  TablePrinter::Num(obs_off_rps, 1),
                  TablePrinter::Num(obs_off.stats.p50_ms, 2),
                  TablePrinter::Num(obs_off.stats.p99_ms, 2),
                  TablePrinter::Num(obs_off.total_s, 2)});
  table.PrintRow({"service, batched, obs ON (1.0)",
                  TablePrinter::Num(obs_on_rps, 1),
                  TablePrinter::Num(obs_on.stats.p50_ms, 2),
                  TablePrinter::Num(obs_on.stats.p99_ms, 2),
                  TablePrinter::Num(obs_on.total_s, 2)});
  table.PrintRow({"service, batched, fusion off",
                  TablePrinter::Num(fusion_off_rps, 1),
                  TablePrinter::Num(fuse_off.stats.p50_ms, 2),
                  TablePrinter::Num(fuse_off.stats.p99_ms, 2),
                  TablePrinter::Num(fuse_off.total_s, 2)});
  table.PrintRow({"service, batched, fusion ON",
                  TablePrinter::Num(fusion_on_rps, 1),
                  TablePrinter::Num(fuse_on.stats.p50_ms, 2),
                  TablePrinter::Num(fuse_on.stats.p99_ms, 2),
                  TablePrinter::Num(fuse_on.total_s, 2)});
  table.PrintRow({"service, batched, bf16 acts",
                  TablePrinter::Num(num_requests / bf16_run.total_s, 1),
                  TablePrinter::Num(bf16_run.stats.p50_ms, 2),
                  TablePrinter::Num(bf16_run.stats.p99_ms, 2),
                  TablePrinter::Num(bf16_run.total_s, 2)});
  std::printf("\nbatched service speedup vs cold sequential: %.2fx\n",
              cold_total_s / serve_total_s);
  std::printf("batched service speedup vs warm sequential: %.2fx\n",
              warm_total_s / serve_total_s);
  std::printf("batched forward speedup vs per-request forwards: %.2fx\n",
              per_request.total_s / serve_total_s);
  std::printf("mean batch %.2f; cell cache hits %lld misses %lld fallbacks "
              "%lld\n",
              stats.mean_batch_size, static_cast<long long>(stats.cache.hits),
              static_cast<long long>(stats.cache.misses),
              static_cast<long long>(stats.cache.fallbacks));
  std::printf("batched == sequential within 1e-5: %s (seg mismatches %d, max "
              "ratio diff %.2e, failed %d)\n",
              match ? "yes" : "NO", seg_mismatches, max_ratio_diff, bad);
  std::printf("observability overhead (tracing 1.0 + stage profiling): "
              "%.1f%% (%.1f -> %.1f req/s)\n",
              100.0 * obs_overhead_frac, obs_off_rps, obs_on_rps);
  std::printf("fusion pass: %.1f -> %.1f req/s end to end; isolated encoder "
              "chain %.2fx; fused == unfused within 1e-5: %s (seg mismatches "
              "%d, max ratio diff %.2e, failed %d)\n",
              fusion_off_rps, fusion_on_rps, fusion_chain_speedup,
              fusion_seg_mismatches == 0 && fusion_max_ratio_diff <= 1e-5 &&
                      fusion_failed == 0
                  ? "yes"
                  : "NO",
              fusion_seg_mismatches, fusion_max_ratio_diff, fusion_failed);
  std::printf("bf16 activations: %.1f req/s; served == offline bf16: %s (seg "
              "mismatches %d, max ratio diff %.2e, failed %d); offline bf16 "
              "vs fp32: %d/%d seg flips, max ratio diff %.2e\n",
              num_requests / bf16_run.total_s,
              bf16_seg_mismatches == 0 && bf16_failed == 0 ? "yes" : "NO",
              bf16_seg_mismatches, bf16_serve_ratio_diff, bf16_failed,
              bf16_vs_fp32_seg_mismatches,
              std::accumulate(warm_results.begin(), warm_results.end(), 0,
                              [](int n, const MatchedTrajectory& t) {
                                return n + t.size();
                              }),
              bf16_max_ratio_diff);
  std::printf("warm start: snapshot write %.1f ms; cold BeginInference %.1f "
              "ms vs LoadSnapshot+BeginInference %.1f ms -> %.1fx (loaded "
              "answers: %d seg mismatches over %zu requests)\n",
              1e3 * snapshot_write_s, 1e3 * warmstart_cold_s,
              1e3 * warmstart_load_s, warmstart_speedup,
              warmstart_seg_mismatches, warmstart_answers.size());
  std::printf("hot swap under load: %s (dropped %lld, failed %d, seg "
              "mismatches %d, max ratio diff %.2e; answers v0/v1 = "
              "%lld/%lld, final version %llu)\n",
              swap_ok ? "ok" : "VIOLATED",
              static_cast<long long>(swap_dropped), swap_failed,
              swap_seg_mismatches, swap_max_ratio_diff,
              static_cast<long long>(swap_old_gen),
              static_cast<long long>(swap_new_gen),
              static_cast<unsigned long long>(swap_final_version));

  TablePrinter otable({"Overload (ladder)", "answered", "degraded", "shed",
                       "missed", "p99 ms"},
                      22, 10);
  otable.PrintTitle(
      "Overload: " + std::to_string(overload_requests) + " requests at " +
      TablePrinter::Num(offered_qps, 0) + " qps offered (3x capacity), " +
      TablePrinter::Num(overload_deadline_ms, 0) + " ms deadline, queue 32");
  otable.PrintHeader();
  const auto overload_row = [&](const char* name, const OverloadRun& run) {
    otable.PrintRow(
        {name,
         std::to_string(run.stats.ok + run.stats.degraded),
         std::to_string(run.stats.degraded), std::to_string(run.stats.shed),
         std::to_string(run.stats.deadline_missed),
         TablePrinter::Num(run.stats.p99_ms, 2)});
  };
  overload_row("policy off", ladder_off);
  overload_row("policy on", ladder_on);
  std::printf("shed rate: %.1f%% off -> %.1f%% on; ladder entered degraded "
              "%lld times, shedding %lld times; answered p99 within the %.0f "
              "ms deadline: %s\n",
              100.0 * rate(ladder_off.stats.shed),
              100.0 * rate(ladder_on.stats.shed),
              static_cast<long long>(ladder_on.stats.policy_entered_degraded),
              static_cast<long long>(ladder_on.stats.policy_entered_shedding),
              overload_deadline_ms,
              ladder_off.stats.p99_ms <= overload_deadline_ms &&
                      ladder_on.stats.p99_ms <= overload_deadline_ms
                  ? "yes"
                  : "NO");

  // Machine-readable record for CI: RNTR_BENCH_JSON names a file to write a
  // BENCH_*.json-style summary to. The CI bench job uploads it as an
  // artifact and gates on it (divergence, or a large throughput regression
  // against the committed baseline — see ci/check_bench.py).
  if (const char* json_path = std::getenv("RNTR_BENCH_JSON")) {
    std::ofstream json(json_path);
    if (!json.is_open()) {
      std::fprintf(stderr, "FAILED to open RNTR_BENCH_JSON path %s\n",
                   json_path);
      return false;  // the CI gate must not silently run without its record
    }
    json << "{\n"
         << "  \"benchmark\": \"bench_serve_throughput\",\n"
         << "  \"scale\": \"" << ToString(settings.scale) << "\",\n"
         << "  \"requests\": " << num_requests << ",\n"
         << "  \"sequential_cold_rps\": " << num_requests / cold_total_s
         << ",\n"
         << "  \"sequential_warm_rps\": " << num_requests / warm_total_s
         << ",\n"
         << "  \"service_per_request_forwards_rps\": "
         << num_requests / per_request.total_s << ",\n"
         << "  \"service_batched_forward_rps\": "
         << num_requests / serve_total_s << ",\n"
         << "  \"batched_vs_per_request_speedup\": "
         << per_request.total_s / serve_total_s << ",\n"
         << "  \"service_p50_ms\": " << stats.p50_ms << ",\n"
         << "  \"service_p99_ms\": " << stats.p99_ms << ",\n"
         << "  \"mean_batch_size\": " << stats.mean_batch_size << ",\n"
         << "  \"seg_mismatches\": " << seg_mismatches << ",\n"
         << "  \"max_ratio_diff\": " << max_ratio_diff << ",\n"
         << "  \"failed_requests\": " << bad << ",\n"
         << "  \"served_matches_sequential\": " << (match ? "true" : "false")
         << ",\n"
         << "  \"obs_off_rps\": " << obs_off_rps << ",\n"
         << "  \"obs_on_rps\": " << obs_on_rps << ",\n"
         << "  \"obs_overhead_frac\": " << obs_overhead_frac << ",\n"
         << "  \"fusion_off_rps\": " << fusion_off_rps << ",\n"
         << "  \"fusion_on_rps\": " << fusion_on_rps << ",\n"
         << "  \"fusion_chain_speedup\": " << fusion_chain_speedup << ",\n"
         << "  \"fusion_seg_mismatches\": " << fusion_seg_mismatches << ",\n"
         << "  \"fusion_max_ratio_diff\": " << fusion_max_ratio_diff << ",\n"
         << "  \"fusion_failed_requests\": " << fusion_failed << ",\n"
         << "  \"bf16_rps\": " << num_requests / bf16_run.total_s << ",\n"
         << "  \"bf16_seg_mismatches\": " << bf16_seg_mismatches << ",\n"
         << "  \"bf16_serve_ratio_diff\": " << bf16_serve_ratio_diff << ",\n"
         << "  \"bf16_vs_fp32_seg_mismatches\": " << bf16_vs_fp32_seg_mismatches
         << ",\n"
         << "  \"bf16_max_ratio_diff\": " << bf16_max_ratio_diff << ",\n"
         << "  \"bf16_failed_requests\": " << bf16_failed << ",\n"
         << "  \"warmstart_write_s\": " << snapshot_write_s << ",\n"
         << "  \"warmstart_cold_begin_s\": " << warmstart_cold_s << ",\n"
         << "  \"warmstart_load_s\": " << warmstart_load_s << ",\n"
         << "  \"warmstart_speedup\": " << warmstart_speedup << ",\n"
         << "  \"warmstart_seg_mismatches\": " << warmstart_seg_mismatches
         << ",\n"
         << "  \"swap_dropped_futures\": " << swap_dropped << ",\n"
         << "  \"swap_failed_requests\": " << swap_failed << ",\n"
         << "  \"swap_seg_mismatches\": " << swap_seg_mismatches << ",\n"
         << "  \"swap_max_ratio_diff\": " << swap_max_ratio_diff << ",\n"
         << "  \"swap_answers_old_gen\": " << swap_old_gen << ",\n"
         << "  \"swap_answers_new_gen\": " << swap_new_gen << ",\n"
         << "  \"swap_model_version\": " << swap_final_version << ",\n"
         << "  \"overload_requests\": " << overload_requests << ",\n"
         << "  \"overload_offered_qps\": " << offered_qps << ",\n"
         << "  \"overload_deadline_ms\": " << overload_deadline_ms << ",\n"
         << "  \"overload_policy_off_answered\": "
         << ladder_off.stats.ok + ladder_off.stats.degraded << ",\n"
         << "  \"overload_policy_off_shed_rate\": "
         << rate(ladder_off.stats.shed) << ",\n"
         << "  \"overload_policy_off_deadline_miss_rate\": "
         << rate(ladder_off.stats.deadline_missed) << ",\n"
         << "  \"overload_policy_off_p50_ms\": " << ladder_off.stats.p50_ms
         << ",\n"
         << "  \"overload_policy_off_p99_ms\": " << ladder_off.stats.p99_ms
         << ",\n"
         << "  \"overload_policy_on_answered\": "
         << ladder_on.stats.ok + ladder_on.stats.degraded << ",\n"
         << "  \"overload_policy_on_shed_rate\": "
         << rate(ladder_on.stats.shed) << ",\n"
         << "  \"overload_policy_on_degraded_rate\": "
         << rate(ladder_on.stats.degraded) << ",\n"
         << "  \"overload_policy_on_deadline_miss_rate\": "
         << rate(ladder_on.stats.deadline_missed) << ",\n"
         << "  \"overload_policy_on_p50_ms\": " << ladder_on.stats.p50_ms
         << ",\n"
         << "  \"overload_policy_on_p99_ms\": " << ladder_on.stats.p99_ms
         << ",\n"
         << "  \"overload_policy_on_entered_degraded\": "
         << ladder_on.stats.policy_entered_degraded << ",\n"
         << "  \"overload_policy_on_entered_shedding\": "
         << ladder_on.stats.policy_entered_shedding << "\n}\n";
    json.flush();
    if (!json.good()) {
      std::fprintf(stderr, "FAILED writing JSON record to %s\n", json_path);
      return false;
    }
    std::printf("wrote JSON record to %s\n", json_path);
  }
  // Exit code covers the PR 8 modes and the PR 9 invariants too: fused
  // answers must match within the fp32 bound, bf16 answers must keep every
  // segment id, snapshot-loaded models must answer identically, and a
  // mid-stream swap must drop nothing and never blend generations.
  return match && fusion_failed == 0 && fusion_seg_mismatches == 0 &&
         fusion_max_ratio_diff <= 1e-5 && bf16_failed == 0 &&
         bf16_seg_mismatches == 0 && warmstart_seg_mismatches == 0 && swap_ok;
}

}  // namespace
}  // namespace rntraj

// Exit code doubles as the equivalence check (CI smoke-runs this target):
// nonzero when served answers diverge from sequential inference.
int main() { return rntraj::Run() ? 0 : 1; }
