// Serving throughput benchmark: micro-batched RecoveryService vs sequential
// single-request inference on the same request workload.
//
// Three configurations run over an identical request stream:
//   cold sequential  — the no-subsystem baseline: every request pays the
//                      full single-request cost including the road
//                      representation forward (what answering a request in
//                      isolation costs without re-entrant warm sessions);
//   warm sequential  — one BeginInference, then one request at a time
//                      (today's offline RecoverAll loop, no batching, no
//                      caches);
//   service          — RecoveryService: warm re-entrant sessions,
//                      micro-batching queue, cell-candidate + Dijkstra-row
//                      caches.
// The service answers are compared element-wise against the warm sequential
// answers: the caches are exact, so they must agree within 1e-5 (in practice
// bit-identically). Reported: requests/sec, p50/p99 latency, speedups.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/rntrajrec.h"
#include "src/serve/recovery_service.h"
#include "src/serve/workload.h"

namespace rntraj {
namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void Run() {
  const auto settings = bench::Settings();
  const int num_requests = settings.scale == BenchScale::kTiny ? 120 : 360;

  DatasetConfig cfg = ChengduConfig(settings.scale, 8);
  auto ds = BuildDataset(cfg);
  ModelContext ctx = ModelContext::FromDataset(*ds);
  bench::PrintDatasetBanner(*ds, settings);

  SeedGlobalRng(12345);
  RnTrajRecConfig mcfg = DefaultRnTrajRecConfig(settings.dim);
  RnTrajRec model(mcfg, ctx);
  model.SetTrainingMode(false);

  auto workload = serve::PoissonWorkload(ds->test(), num_requests,
                                         /*qps=*/1e9, /*seed=*/7);

  // --- cold sequential: full per-request cost, road representation included.
  std::vector<double> cold_ms;
  {
    BufferPoolScope scope;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& item : workload) {
      const auto r0 = std::chrono::steady_clock::now();
      model.BeginInference();
      serve::RecoveryRequest req = item.request;
      TrajectorySample s = MakeEphemeralSample(
          std::move(req.input), std::move(req.input_indices), req.target_times);
      MatchedTrajectory out = model.Recover(s);
      (void)out;
      cold_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - r0)
              .count());
    }
    (void)t0;
  }
  const double cold_total_s =
      std::accumulate(cold_ms.begin(), cold_ms.end(), 0.0) / 1000.0;

  // --- warm sequential: BeginInference once, then request at a time.
  std::vector<MatchedTrajectory> warm_results;
  std::vector<double> warm_ms;
  model.BeginInference();
  {
    BufferPoolScope scope;
    for (const auto& item : workload) {
      const auto r0 = std::chrono::steady_clock::now();
      serve::RecoveryRequest req = item.request;
      TrajectorySample s = MakeEphemeralSample(
          std::move(req.input), std::move(req.input_indices), req.target_times);
      warm_results.push_back(model.Recover(s));
      warm_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - r0)
              .count());
    }
  }
  const double warm_total_s =
      std::accumulate(warm_ms.begin(), warm_ms.end(), 0.0) / 1000.0;

  // --- service: micro-batched, warm sessions, caches. Sessions sized to the
  // hardware: on a single core extra workers only thrash.
  serve::RecoveryServiceConfig scfg;
  scfg.num_sessions = std::max(
      1, std::min(4, static_cast<int>(std::thread::hardware_concurrency())));
  scfg.batcher.max_batch_size = 16;
  scfg.batcher.max_batch_delay_us = 1000;
  scfg.cache_radii = {mcfg.delta, mcfg.decoder.mask_radius,
                      mcfg.decoder.spatial_prior_radius};
  scfg.prefetch_radii = {mcfg.delta};
  scfg.max_dijkstra_rows = 1024;
  serve::RecoveryService service(&model, ctx, scfg);

  std::vector<std::future<serve::RecoveryResponse>> futures;
  futures.reserve(workload.size());
  const auto s0 = std::chrono::steady_clock::now();
  for (auto& item : workload) {
    futures.push_back(service.Submit(item.request));
  }
  std::vector<serve::RecoveryResponse> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());
  const double serve_total_s = Seconds(s0);

  // --- equivalence: service answers vs warm sequential answers.
  int bad = 0;
  int seg_mismatches = 0;
  double max_ratio_diff = 0.0;
  for (size_t i = 0; i < responses.size(); ++i) {
    const auto& resp = responses[i];
    if (!resp.ok) {
      ++bad;
      continue;
    }
    const MatchedTrajectory& ref = warm_results[i];
    for (int j = 0; j < ref.size(); ++j) {
      if (resp.recovered.points[j].seg_id != ref.points[j].seg_id) {
        ++seg_mismatches;
      }
      max_ratio_diff =
          std::max(max_ratio_diff, std::abs(resp.recovered.points[j].ratio -
                                            ref.points[j].ratio));
    }
  }
  const bool match = bad == 0 && seg_mismatches == 0 && max_ratio_diff <= 1e-5;

  const serve::ServeStats stats = service.Stats();
  TablePrinter table({"Configuration", "req/s", "p50 ms", "p99 ms", "total s"},
                     30, 11);
  table.PrintTitle("Serving throughput: " + std::to_string(num_requests) +
                   " requests, " + model.name());
  table.PrintHeader();
  table.PrintRow({"sequential cold (per-req xroad)",
                  TablePrinter::Num(num_requests / cold_total_s, 1),
                  TablePrinter::Num(serve::Percentile(cold_ms, 0.5), 2),
                  TablePrinter::Num(serve::Percentile(cold_ms, 0.99), 2),
                  TablePrinter::Num(cold_total_s, 2)});
  table.PrintRow({"sequential warm (RecoverAll)",
                  TablePrinter::Num(num_requests / warm_total_s, 1),
                  TablePrinter::Num(serve::Percentile(warm_ms, 0.5), 2),
                  TablePrinter::Num(serve::Percentile(warm_ms, 0.99), 2),
                  TablePrinter::Num(warm_total_s, 2)});
  table.PrintRow({"service (micro-batch + caches)",
                  TablePrinter::Num(num_requests / serve_total_s, 1),
                  TablePrinter::Num(stats.p50_ms, 2),
                  TablePrinter::Num(stats.p99_ms, 2),
                  TablePrinter::Num(serve_total_s, 2)});
  std::printf("\nspeedup vs cold sequential: %.2fx\n",
              cold_total_s / serve_total_s);
  std::printf("speedup vs warm sequential: %.2fx\n",
              warm_total_s / serve_total_s);
  std::printf("mean batch %.2f; cell cache hits %lld misses %lld fallbacks "
              "%lld\n",
              stats.mean_batch_size, static_cast<long long>(stats.cache.hits),
              static_cast<long long>(stats.cache.misses),
              static_cast<long long>(stats.cache.fallbacks));
  std::printf("batched == sequential within 1e-5: %s (seg mismatches %d, max "
              "ratio diff %.2e, failed %d)\n",
              match ? "yes" : "NO", seg_mismatches, max_ratio_diff, bad);
}

}  // namespace
}  // namespace rntraj

int main() {
  rntraj::Run();
  return 0;
}
