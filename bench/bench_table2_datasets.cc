// Regenerates paper Table II: statistics of the (synthetic analogue)
// datasets. Columns mirror the paper: trajectory counts, road segments,
// training-area size, average travel time, raw sample interval and the
// processed eps_rho.

#include <cstdio>

#include "bench/bench_common.h"

namespace rntraj {
namespace {

void Row(const TablePrinter& table, const DatasetConfig& cfg) {
  auto ds = BuildDataset(cfg);
  const BBox& b = ds->roadnet().bounds();
  double total_duration = 0.0;
  for (const auto& s : ds->train()) total_duration += s.truth.duration();
  const int total =
      static_cast<int>(ds->train().size() + ds->val().size() + ds->test().size());
  table.PrintRow({cfg.name, std::to_string(total),
                  std::to_string(ds->roadnet().num_segments()),
                  TablePrinter::Num(b.width() / 1000.0, 2) + "x" +
                      TablePrinter::Num(b.height() / 1000.0, 2),
                  TablePrinter::Num(total_duration / ds->train().size(), 1),
                  TablePrinter::Num(ds->input_interval(), 0),
                  TablePrinter::Num(cfg.sim.eps_rho, 0)});
}

void Run() {
  const auto settings = bench::Settings();
  std::printf("Table II analogue: dataset statistics (scale=%s)\n",
              ToString(settings.scale).c_str());
  TablePrinter table({"Dataset", "#Traj", "#Segments", "Area km2",
                      "AvgTravel s", "RawInt s", "EpsRho s"},
                     16, 12);
  table.PrintHeader();
  Row(table, ShanghaiLConfig(settings.scale));
  Row(table, ChengduConfig(settings.scale));
  Row(table, PortoConfig(settings.scale));
  Row(table, ShanghaiConfig(settings.scale));
  Row(table, ChengduFewConfig(settings.scale));
}

}  // namespace
}  // namespace rntraj

int main() {
  rntraj::Run();
  return 0;
}
