// Regenerates paper Fig. 7: RNTrajRec hyper-parameter studies on Chengdu x8.
//   (a) road-network representation: GridGNN vs GCN / GIN / GAT
//   (b) number of GPSFormer blocks N
//   (c) receptive field delta (meters)
//   (d) sub-graph weight scale gamma (meters)
// Shapes to check: GridGNN best in (a); accuracy peaks then flattens/dips
// with N in (b); a mid-range delta sweet spot in (c); low sensitivity in (d).
// Pass a/b/c/d as argv[1] to run a single part.

#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "src/core/rntrajrec.h"

namespace rntraj {
namespace {

void Evaluate(const std::string& label, const RnTrajRecConfig& cfg, Dataset& ds,
              const bench::BenchSettings& settings, const TablePrinter& table) {
  SeedGlobalRng(12345);
  ModelContext ctx = ModelContext::FromDataset(ds);
  RnTrajRecConfig c = cfg;
  c.name_suffix = " " + label;
  RnTrajRec model(c, ctx);
  bench::MethodResult r = bench::RunModel(model, ds, settings);
  table.PrintRow({label, TablePrinter::Num(r.metrics.accuracy, 3),
                  TablePrinter::Num(r.metrics.f1, 3),
                  TablePrinter::Num(r.metrics.mae, 1)});
}

bool WantPart(int argc, char** argv, const char* part) {
  if (argc < 2) return true;
  return std::strcmp(argv[1], part) == 0;
}

void Run(int argc, char** argv) {
  auto settings = bench::Settings();
  // Sweep harness: bound total suite time with a shorter schedule.
  settings.train.epochs = std::max(3, settings.train.epochs * 2 / 3);
  const bool full = settings.scale == BenchScale::kFull;
  DatasetConfig dcfg = ChengduConfig(settings.scale, 8);
  auto ds = BuildDataset(dcfg);
  TablePrinter table({"Setting", "ACC", "F1", "MAE"}, 22, 10);
  bench::PrintDatasetBanner(*ds, settings);

  if (WantPart(argc, argv, "a")) {
    table.PrintTitle("Fig. 7(a): road-network representation");
    table.PrintHeader();
    const std::pair<const char*, RoadEncoderKind> kinds[] = {
        {"GCN", RoadEncoderKind::kGcn},
        {"GIN", RoadEncoderKind::kGin},
        {"GAT", RoadEncoderKind::kGat},
        {"GridGNN", RoadEncoderKind::kGridGnn},
    };
    for (const auto& [label, kind] : kinds) {
      RnTrajRecConfig cfg = DefaultRnTrajRecConfig(settings.dim);
      cfg.gridgnn.kind = kind;
      Evaluate(label, cfg, *ds, settings, table);
    }
  }

  if (WantPart(argc, argv, "b")) {
    table.PrintTitle("Fig. 7(b): number of GPSFormer blocks N");
    table.PrintHeader();
    const std::vector<int> ns = full ? std::vector<int>{1, 2, 3, 4, 5}
                                     : std::vector<int>{1, 2, 3};
    for (int n : ns) {
      RnTrajRecConfig cfg = DefaultRnTrajRecConfig(settings.dim);
      cfg.gpsformer.blocks = n;
      Evaluate("N=" + std::to_string(n), cfg, *ds, settings, table);
    }
  }

  if (WantPart(argc, argv, "c")) {
    table.PrintTitle("Fig. 7(c): receptive field delta (m)");
    table.PrintHeader();
    const std::vector<double> deltas =
        full ? std::vector<double>{100, 200, 300, 400, 600, 800}
             : std::vector<double>{100, 300, 600};
    for (double d : deltas) {
      RnTrajRecConfig cfg = DefaultRnTrajRecConfig(settings.dim);
      cfg.delta = d;
      Evaluate("delta=" + std::to_string(static_cast<int>(d)), cfg, *ds,
               settings, table);
    }
  }

  if (WantPart(argc, argv, "d")) {
    table.PrintTitle("Fig. 7(d): weight scale gamma (m)");
    table.PrintHeader();
    const std::vector<double> gammas = full
                                           ? std::vector<double>{10, 20, 30, 40, 50}
                                           : std::vector<double>{10, 30, 50};
    for (double g : gammas) {
      RnTrajRecConfig cfg = DefaultRnTrajRecConfig(settings.dim);
      cfg.gamma = g;
      Evaluate("gamma=" + std::to_string(static_cast<int>(g)), cfg, *ds,
               settings, table);
    }
  }
}

}  // namespace
}  // namespace rntraj

int main(int argc, char** argv) {
  rntraj::Run(argc, argv);
  return 0;
}
