// Fleet throughput benchmark: the sharded multi-process serving fleet vs the
// single-process RecoveryService on an identical request stream.
//
// Configurations (all on the bench-<scale> fleet profile, ONE session per
// process so "N workers" means N-way process parallelism):
//   warm sequential   — the in-process reference answers (model.Recover one
//                       request at a time); every served answer is compared
//                       against these;
//   single service    — one in-process RecoveryService (the fleet worker's
//                       exact service configuration, no wire protocol);
//   fleet, 2 workers  — two fleet_worker processes behind the FleetRouter:
//                       requests cross the wire protocol, shard by consistent
//                       hash, answers come back over per-worker connections;
//   fleet, 4 workers  — the worker-count sweep point.
// Arrivals are open loop: every request is submitted up front (offered rate
// effectively infinite) and the drain is timed, so the service/fleet sets its
// own pace and queueing is visible in the latency tail. Each configuration
// runs one unmeasured warmup pass (first-touch caches, first wire frames)
// then kBenchRepeats measured passes, keeping the best — the standard
// noise-floor estimator on a shared box.
//
// Reported per configuration: requests/sec and p50/p99 latency — the single
// service from ServeStats, the fleets from the MERGED per-worker exact
// histograms (obs::HistogramSnapshot::Merge), so fleet quantiles are real
// quantiles over every worker's samples, not averages of averages.
//
// The correctness half (what ci/check_bench.py gates): every fleet-served
// answer across every pass must carry segment ids bit-identical to the warm
// sequential reference with ratios within 1e-5, zero requests may fail, and
// zero futures may go unanswered. The exit code enforces the same.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/random.h"
#include "src/core/rntrajrec.h"
#include "src/fleet/process.h"
#include "src/fleet/profiles.h"
#include "src/fleet/router.h"
#include "src/serve/recovery_service.h"
#include "src/serve/workload.h"

namespace rntraj {
namespace {

constexpr int kBenchRepeats = 2;

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Outcome of replaying the workload through one configuration: the best
/// measured drain time plus equivalence counts accumulated over EVERY pass
/// (warmup included — a wrong answer is wrong whenever it happens).
struct ReplayResult {
  double best_s = 1e30;
  int ok = 0;
  int failed = 0;
  int unanswered = 0;
  int seg_mismatches = 0;
  double max_ratio_diff = 0.0;
};

/// Submits the whole workload through `submit`, drains, and scores against
/// the reference. One call = one pass.
template <typename SubmitFn>
void ReplayOnce(const std::vector<serve::WorkloadItem>& workload,
                const std::vector<MatchedTrajectory>& reference,
                SubmitFn&& submit, bool measured, ReplayResult* out) {
  std::vector<std::future<serve::RecoveryResponse>> futures;
  futures.reserve(workload.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& item : workload) {
    futures.push_back(submit(item.request));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    if (futures[i].wait_for(std::chrono::seconds(120)) !=
        std::future_status::ready) {
      ++out->unanswered;  // the invariant Submit promises never to break
      continue;
    }
    const serve::RecoveryResponse resp = futures[i].get();
    if (!resp.ok) {
      ++out->failed;
      continue;
    }
    ++out->ok;
    const MatchedTrajectory& ref = reference[i];
    for (int j = 0; j < ref.size(); ++j) {
      if (resp.recovered.points[j].seg_id != ref.points[j].seg_id) {
        ++out->seg_mismatches;
      }
      out->max_ratio_diff = std::max(
          out->max_ratio_diff,
          std::abs(resp.recovered.points[j].ratio - ref.points[j].ratio));
    }
  }
  if (measured) out->best_s = std::min(out->best_s, Seconds(t0));
}

bool Run() {
  const auto settings = bench::Settings();
  const int num_requests = settings.scale == BenchScale::kTiny ? 120 : 360;
  const std::string profile_name = "bench-" + ToString(settings.scale);
  const std::string tag = std::to_string(::getpid());
  const std::string tmp = [] {
    const char* t = std::getenv("TMPDIR");
    return std::string(t != nullptr ? t : "/tmp");
  }();
  const std::string snap_path = tmp + "/bench_fleet_" + tag + ".snapshot";

  fleet::FleetProfile profile;
  std::string error;
  if (!fleet::LookupFleetProfile(profile_name, &profile, &error)) {
    std::fprintf(stderr, "profile: %s\n", error.c_str());
    return false;
  }
  auto ds = BuildDataset(profile.dataset);
  ModelContext ctx = ModelContext::FromDataset(*ds);
  bench::PrintDatasetBanner(*ds, settings);

  // The workers rebuild this universe from the profile name and load these
  // exact weights from the snapshot — only bytes travel, which is what makes
  // bit-identical answers a meaningful claim.
  SeedGlobalRng(12345);
  RnTrajRec model(profile.model, ctx);
  model.SetTrainingMode(false);
  model.BeginInference();  // snapshot carries the warm road representation
  if (!model.SaveSnapshot(snap_path, &error)) {
    std::fprintf(stderr, "snapshot: %s\n", error.c_str());
    return false;
  }

  auto workload = serve::PoissonWorkload(ds->test(), num_requests,
                                         /*qps=*/1e9, /*seed=*/7);

  // --- warm sequential reference.
  std::vector<MatchedTrajectory> reference;
  reference.reserve(workload.size());
  for (const auto& item : workload) {
    serve::RecoveryRequest req = item.request;
    TrajectorySample s = MakeEphemeralSample(
        std::move(req.input), std::move(req.input_indices), req.target_times);
    reference.push_back(model.Recover(s));
  }

  // --- single in-process service: the worker's exact configuration minus
  // the wire. This is the self-relative baseline the fleet must beat.
  ReplayResult single;
  double single_p50 = 0.0, single_p99 = 0.0;
  {
    serve::RecoveryService service(&model, ctx, profile.service);
    const auto submit = [&](const serve::RecoveryRequest& req) {
      return service.Submit(req);
    };
    ReplayOnce(workload, reference, submit, /*measured=*/false, &single);
    for (int rep = 0; rep < kBenchRepeats; ++rep) {
      ReplayOnce(workload, reference, submit, /*measured=*/true, &single);
    }
    const serve::ServeStats stats = service.Stats();
    single_p50 = stats.p50_ms;
    single_p99 = stats.p99_ms;
  }

  // --- fleet sweep: spawn N workers, route the same workload, score, and
  // pull the merged latency histogram for real fleet quantiles.
  struct FleetPoint {
    int workers = 0;
    ReplayResult replay;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    int64_t histogram_count = 0;
    std::vector<fleet::FleetWorkerView> views;
    bool spawned_ok = false;
  };
  const auto run_fleet = [&](int num_workers) {
    FleetPoint point;
    point.workers = num_workers;
    fleet::FleetRouterConfig rcfg;
    std::vector<pid_t> pids;
    std::vector<std::string> socket_files;
    for (int i = 0; i < num_workers; ++i) {
      fleet::WorkerSpawn spawn;
      spawn.profile = profile_name;
      spawn.snapshot_path = snap_path;
      const std::string base =
          tmp + "/bench_fleet_" + tag + "_n" + std::to_string(num_workers) +
          "_w" + std::to_string(i);
      spawn.data_endpoint = "unix:" + base + ".sock";
      spawn.control_endpoint = "unix:" + base + ".ctl";
      socket_files.push_back(base + ".sock");
      socket_files.push_back(base + ".ctl");
      pid_t pid = 0;
      if (!fleet::SpawnWorkerProcess(spawn, &pid, &error)) {
        std::fprintf(stderr, "spawn: %s\n", error.c_str());
        for (pid_t p : pids) fleet::KillWorkerProcess(p);
        return point;
      }
      pids.push_back(pid);
      rcfg.workers.push_back({spawn.data_endpoint, spawn.control_endpoint});
    }
    {
      fleet::FleetRouter router(rcfg);
      // Workers build the dataset + load the snapshot before accepting —
      // give the slowest scale time to come up.
      if (!router.WaitForAlive(num_workers, /*timeout_ms=*/300000)) {
        std::fprintf(stderr, "fleet(%d): workers never came up\n",
                     num_workers);
      } else {
        point.spawned_ok = true;
        const auto submit = [&](const serve::RecoveryRequest& req) {
          return router.Submit(req);
        };
        ReplayOnce(workload, reference, submit, /*measured=*/false,
                   &point.replay);
        for (int rep = 0; rep < kBenchRepeats; ++rep) {
          ReplayOnce(workload, reference, submit, /*measured=*/true,
                     &point.replay);
        }
        obs::MetricsSnapshot merged = router.FleetMetrics(&error);
        if (!error.empty()) {
          std::fprintf(stderr, "fleet(%d) metrics: %s\n", num_workers,
                       error.c_str());
        }
        const auto hit = merged.histograms.find("serve.latency_ms");
        if (hit != merged.histograms.end() && hit->second.TotalCount() > 0) {
          point.histogram_count = hit->second.TotalCount();
          point.p50_ms = hit->second.Quantile(0.50);
          point.p99_ms = hit->second.Quantile(0.99);
        }
        point.views = router.Stats().workers;
      }
      router.Shutdown();
    }
    for (pid_t p : pids) fleet::KillWorkerProcess(p);
    for (const std::string& f : socket_files) std::remove(f.c_str());
    return point;
  };

  const FleetPoint fleet2 = run_fleet(2);
  const FleetPoint fleet4 = run_fleet(4);
  std::remove(snap_path.c_str());
  if (!fleet2.spawned_ok || !fleet4.spawned_ok) return false;

  const double single_rps = num_requests / single.best_s;
  const double fleet2_rps = num_requests / fleet2.replay.best_s;
  const double fleet4_rps = num_requests / fleet4.replay.best_s;

  TablePrinter table({"Configuration", "req/s", "p50 ms", "p99 ms",
                      "best s"},
                     30, 11);
  table.PrintTitle("Fleet throughput: " + std::to_string(num_requests) +
                   " requests/pass, profile " + profile_name);
  table.PrintHeader();
  table.PrintRow({"single service (in-process)",
                  TablePrinter::Num(single_rps, 1),
                  TablePrinter::Num(single_p50, 2),
                  TablePrinter::Num(single_p99, 2),
                  TablePrinter::Num(single.best_s, 2)});
  const auto fleet_row = [&](const char* name, const FleetPoint& p,
                             double rps) {
    table.PrintRow({name, TablePrinter::Num(rps, 1),
                    TablePrinter::Num(p.p50_ms, 2),
                    TablePrinter::Num(p.p99_ms, 2),
                    TablePrinter::Num(p.replay.best_s, 2)});
  };
  fleet_row("fleet, 2 workers", fleet2, fleet2_rps);
  fleet_row("fleet, 4 workers", fleet4, fleet4_rps);

  std::printf("\nfleet(2) vs single-process: %.2fx; fleet(4): %.2fx\n",
              fleet2_rps / single_rps, fleet4_rps / single_rps);
  for (const FleetPoint* p : {&fleet2, &fleet4}) {
    std::printf("fleet(%d) shard balance (sent/answered per worker):",
                p->workers);
    for (const auto& w : p->views) {
      std::printf(" w%d=%lld/%lld", w.index, static_cast<long long>(w.sent),
                  static_cast<long long>(w.answered));
    }
    std::printf("  merged histogram count %lld\n",
                static_cast<long long>(p->histogram_count));
  }

  const int seg_mismatches =
      fleet2.replay.seg_mismatches + fleet4.replay.seg_mismatches;
  const double max_ratio_diff =
      std::max(fleet2.replay.max_ratio_diff, fleet4.replay.max_ratio_diff);
  const int unanswered =
      fleet2.replay.unanswered + fleet4.replay.unanswered;
  const int failed = fleet2.replay.failed + fleet4.replay.failed;
  const bool match = seg_mismatches == 0 && max_ratio_diff <= 1e-5 &&
                     unanswered == 0 && failed == 0 &&
                     single.seg_mismatches == 0 && single.failed == 0 &&
                     single.unanswered == 0;
  std::printf("fleet == in-process over %d answers: %s (seg mismatches %d, "
              "max ratio diff %.2e, failed %d, unanswered %d)\n",
              fleet2.replay.ok + fleet4.replay.ok, match ? "yes" : "NO",
              seg_mismatches, max_ratio_diff, failed, unanswered);

  // Machine-readable record: ci/check_bench.py gates answer equivalence at
  // zero and fleet(2) >= 1.0x the single-process baseline, self-relative on
  // THIS run so the claim re-proves itself on every box.
  if (const char* json_path = std::getenv("RNTR_BENCH_JSON")) {
    std::ofstream json(json_path);
    if (!json.is_open()) {
      std::fprintf(stderr, "FAILED to open RNTR_BENCH_JSON path %s\n",
                   json_path);
      return false;
    }
    json << "{\n"
         << "  \"benchmark\": \"bench_fleet_throughput\",\n"
         << "  \"scale\": \"" << ToString(settings.scale) << "\",\n"
         << "  \"requests\": " << num_requests << ",\n"
         << "  \"single_rps\": " << single_rps << ",\n"
         << "  \"single_p50_ms\": " << single_p50 << ",\n"
         << "  \"single_p99_ms\": " << single_p99 << ",\n"
         << "  \"fleet2_rps\": " << fleet2_rps << ",\n"
         << "  \"fleet2_p50_ms\": " << fleet2.p50_ms << ",\n"
         << "  \"fleet2_p99_ms\": " << fleet2.p99_ms << ",\n"
         << "  \"fleet4_rps\": " << fleet4_rps << ",\n"
         << "  \"fleet4_p50_ms\": " << fleet4.p50_ms << ",\n"
         << "  \"fleet4_p99_ms\": " << fleet4.p99_ms << ",\n"
         << "  \"fleet2_vs_single_speedup\": " << fleet2_rps / single_rps
         << ",\n"
         << "  \"fleet4_vs_single_speedup\": " << fleet4_rps / single_rps
         << ",\n"
         << "  \"fleet_seg_mismatches\": " << seg_mismatches << ",\n"
         << "  \"fleet_max_ratio_diff\": " << max_ratio_diff << ",\n"
         << "  \"fleet_failed_requests\": " << failed << ",\n"
         << "  \"fleet_unanswered\": " << unanswered << ",\n"
         << "  \"fleet_matches_inprocess\": " << (match ? "true" : "false")
         << "\n}\n";
    json.flush();
    if (!json.good()) {
      std::fprintf(stderr, "FAILED writing JSON record to %s\n", json_path);
      return false;
    }
    std::printf("wrote JSON record to %s\n", json_path);
  }
  return match;
}

}  // namespace
}  // namespace rntraj

// Exit code doubles as the cross-process equivalence check: nonzero when any
// fleet-served answer diverges from in-process inference, any request fails,
// or any future goes unanswered.
int main() { return rntraj::Run() ? 0 : 1; }
