// Regenerates paper Fig. 6: the efficiency study on Chengdu x8 — accuracy vs
// per-trajectory inference latency vs parameter count, for every baseline and
// for RNTrajRec with N in {1, 2} with and without GRL. Shapes to check:
// RNTrajRec variants sit top-right (most accurate, moderately slower);
// Linear+HMM is fastest and least accurate; inference cost grows with N and
// with GRL enabled.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/rntrajrec.h"

namespace rntraj {
namespace {

void PrintRow(const TablePrinter& table, const bench::MethodResult& r) {
  table.PrintRow({r.name, TablePrinter::Num(r.metrics.accuracy, 3),
                  TablePrinter::Num(r.infer_ms_per_traj, 2),
                  std::to_string(r.parameters),
                  TablePrinter::Num(r.train_seconds, 1)});
}

void Run() {
  auto settings = bench::Settings();
  // Sweep harness: bound total suite time with a shorter schedule.
  settings.train.epochs = std::max(3, settings.train.epochs * 2 / 3);
  DatasetConfig cfg = ChengduConfig(settings.scale, 8);
  auto ds = BuildDataset(cfg);
  TablePrinter table({"Method", "ACC", "ms/traj", "#params", "train s"}, 26, 12);
  table.PrintTitle("Fig. 6: efficiency study on " + cfg.name + " (x8)");
  bench::PrintDatasetBanner(*ds, settings);
  table.PrintHeader();

  for (const auto& key : TableThreeMethodKeys()) {
    if (key == "rntrajrec") continue;  // variants below
    PrintRow(table, bench::RunMethod(key, *ds, settings));
  }

  ModelContext ctx = ModelContext::FromDataset(*ds);
  for (bool use_grl : {false, true}) {
    for (int blocks : {1, 2}) {
      SeedGlobalRng(12345);
      RnTrajRecConfig mcfg = DefaultRnTrajRecConfig(settings.dim);
      mcfg.gpsformer.blocks = blocks;
      mcfg.gpsformer.use_grl = use_grl;
      mcfg.name_suffix = (use_grl ? " (N=" : "* (N=") + std::to_string(blocks) +
                         ")";  // * marks w/o GRL, as in the paper
      RnTrajRec model(mcfg, ctx);
      PrintRow(table, bench::RunModel(model, *ds, settings));
    }
  }
}

}  // namespace
}  // namespace rntraj

int main() {
  rntraj::Run();
  return 0;
}
