// Regenerates paper Fig. 4: the elevated-road robustness task on Chengdu x8.
// For each method, SR%k = the fraction of elevated sub-trajectories whose F1
// exceeds k, for k in {0.5 .. 0.9}. The shape to check: learned methods beat
// the HMM two-stage pipelines, and RNTrajRec dominates at every k.

#include <cstdio>

#include "bench/bench_common.h"

namespace rntraj {
namespace {

void Run() {
  auto settings = bench::Settings();
  // Sweep harness: bound total suite time with a shorter schedule.
  settings.train.epochs = std::max(3, settings.train.epochs * 2 / 3);
  DatasetConfig cfg = ChengduConfig(settings.scale, 8);
  // The elevated-road task evaluates the corridor sub-population; enlarge the
  // test split so enough trajectories qualify.
  cfg.num_test *= 2;
  auto ds = BuildDataset(cfg);

  const std::vector<double> ks = {0.5, 0.6, 0.7, 0.8, 0.9};
  TablePrinter table({"Method", "SR%0.5", "SR%0.6", "SR%0.7", "SR%0.8",
                      "SR%0.9", "#qual"},
                     26, 9);
  table.PrintTitle("Fig. 4: elevated-road recovery, SR%k on " + cfg.name +
                   " (x8)");
  bench::PrintDatasetBanner(*ds, settings);
  table.PrintHeader();
  const auto truths = TruthsOf(ds->test());
  for (const auto& key : TableThreeMethodKeys()) {
    bench::MethodResult r = bench::RunMethod(key, *ds, settings);
    const auto f1s =
        ElevatedSubTrajectoryF1(ds->roadnet(), r.predictions, truths);
    std::vector<std::string> row = {r.name};
    for (double k : ks) row.push_back(TablePrinter::Num(SrAtK(f1s, k), 3));
    row.push_back(std::to_string(f1s.size()));
    table.PrintRow(row);
  }
}

}  // namespace
}  // namespace rntraj

int main() {
  rntraj::Run();
  return 0;
}
