// Regenerates paper Table III: the main comparison of all nine methods on
// Chengdu (x8 and x16), Porto (x8) and Shanghai-L (x16). Absolute numbers
// reflect the CPU-scale synthetic datasets; the shape to compare against the
// paper is the method ordering within each block.

#include <cstdio>

#include "bench/bench_common.h"

namespace rntraj {
namespace {

void RunBlock(const DatasetConfig& cfg, const bench::BenchSettings& settings) {
  auto ds = BuildDataset(cfg);
  auto table = bench::MetricsTable();
  table.PrintTitle("Table III: " + cfg.name + " (eps_tau = eps_rho * " +
                   std::to_string(cfg.keep_every) + ")");
  bench::PrintDatasetBanner(*ds, settings);
  table.PrintHeader();
  for (const auto& key : TableThreeMethodKeys()) {
    bench::MethodResult r = bench::RunMethod(key, *ds, settings);
    PrintMetricsRow(table, r.name, r.metrics);
  }
}

void Run() {
  const auto settings = bench::Settings();
  RunBlock(ChengduConfig(settings.scale, 8), settings);
  RunBlock(ChengduConfig(settings.scale, 16), settings);
  RunBlock(PortoConfig(settings.scale, 8), settings);
  RunBlock(ShanghaiLConfig(settings.scale, 16), settings);
}

}  // namespace
}  // namespace rntraj

int main() {
  rntraj::Run();
  return 0;
}
