// Regenerates paper Table V: RNTrajRec ablations (w/o GRL, w/o GF, w/o GAT,
// w/o GN, w/o GCL) on Chengdu x8, plus Porto x8 at full scale. The shape to
// check: every variant is worse than the full model.

#include <functional>

#include "bench/bench_common.h"
#include "src/core/rntrajrec.h"

namespace rntraj {
namespace {

struct Variant {
  std::string label;
  std::function<void(RnTrajRecConfig*)> tweak;
};

std::vector<Variant> Variants() {
  return {
      {"w/o GRL",
       [](RnTrajRecConfig* c) { c->gpsformer.use_grl = false; }},
      {"w/o GF",
       [](RnTrajRecConfig* c) { c->gpsformer.grl.use_gated_fusion = false; }},
      {"w/o GAT",
       [](RnTrajRecConfig* c) { c->gpsformer.grl.use_gat = false; }},
      {"w/o GN",
       [](RnTrajRecConfig* c) { c->gpsformer.grl.use_graph_norm = false; }},
      {"w/o GCL", [](RnTrajRecConfig* c) { c->use_gcl = false; }},
      {"RNTrajRec", [](RnTrajRecConfig*) {}},
  };
}

void RunBlock(const DatasetConfig& dcfg, const bench::BenchSettings& settings) {
  auto ds = BuildDataset(dcfg);
  auto table = bench::MetricsTable();
  table.PrintTitle("Table V: ablations on " + dcfg.name + " (x" +
                   std::to_string(dcfg.keep_every) + ")");
  bench::PrintDatasetBanner(*ds, settings);
  table.PrintHeader();
  ModelContext ctx = ModelContext::FromDataset(*ds);
  for (const auto& variant : Variants()) {
    SeedGlobalRng(12345);
    RnTrajRecConfig cfg = DefaultRnTrajRecConfig(settings.dim);
    variant.tweak(&cfg);
    cfg.name_suffix = " " + variant.label;
    RnTrajRec model(cfg, ctx);
    bench::MethodResult r = bench::RunModel(model, *ds, settings);
    PrintMetricsRow(table, variant.label, r.metrics);
  }
}

void Run() {
  auto settings = bench::Settings();
  // Sweep harness: bound total suite time with a shorter schedule.
  settings.train.epochs = std::max(3, settings.train.epochs * 2 / 3);
  RunBlock(ChengduConfig(settings.scale, 8), settings);
  if (settings.scale == BenchScale::kFull) {
    RunBlock(PortoConfig(settings.scale, 8), settings);
  }
}

}  // namespace
}  // namespace rntraj

int main() {
  rntraj::Run();
  return 0;
}
