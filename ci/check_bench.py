#!/usr/bin/env python3
"""CI gate over the serving-throughput bench record.

Usage: check_bench.py <produced.json> <committed_baseline.json>

Fails (exit 1) when either:
  * the bench reports batched-vs-sequential divergence
    (served_matches_sequential false, seg mismatches, or failed requests) —
    a correctness break, no tolerance;
  * the batched service throughput regressed by more than 2x against the
    committed baseline's record at the same scale.

The 2x threshold is deliberately tolerant: the committed baseline was
recorded on a different box (1 core, -march=native) than the CI runner, and
the tiny-scale run sits well inside scheduler noise — this gate only catches
"the batched path fell off a cliff" regressions, not percent-level drift.
Tighten it only alongside a runner-recorded baseline.
"""

import json
import sys

REGRESSION_FACTOR = 2.0


def fail(msg: str) -> None:
    print(f"::error::bench gate: {msg}")
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <produced.json> <baseline.json>")
    with open(sys.argv[1]) as f:
        produced = json.load(f)
    with open(sys.argv[2]) as f:
        baseline_file = json.load(f)

    # Correctness first: served answers must match sequential inference.
    if not produced.get("served_matches_sequential", False):
        fail(
            "batched service diverged from sequential inference "
            f"(seg_mismatches={produced.get('seg_mismatches')}, "
            f"max_ratio_diff={produced.get('max_ratio_diff')}, "
            f"failed_requests={produced.get('failed_requests')})"
        )

    scale = produced.get("scale", "tiny")
    baseline = baseline_file.get("serve", {}).get(scale)
    if baseline is None:
        fail(f"baseline has no serve record for scale '{scale}'")

    key = "service_batched_forward_rps"
    got = float(produced[key])
    want = float(baseline[key])
    if got <= 0:
        fail(f"{key} is non-positive ({got})")
    if want / got > REGRESSION_FACTOR:
        fail(
            f"{key} regressed >{REGRESSION_FACTOR}x vs committed baseline: "
            f"{got:.1f} rps vs {want:.1f} rps"
        )

    print(
        f"bench gate OK: {key} {got:.1f} rps "
        f"(baseline {want:.1f} rps, tolerance {REGRESSION_FACTOR}x), "
        f"served answers match sequential inference"
    )


if __name__ == "__main__":
    main()
