#!/usr/bin/env python3
"""CI gate over the serving-throughput bench record.

Usage: check_bench.py <produced.json> <committed_baseline.json>

Fails (exit 1) when any of:
  * the bench reports batched-vs-sequential divergence
    (served_matches_sequential false, seg mismatches, or failed requests) —
    a correctness break, no tolerance;
  * the batched service throughput regressed by more than 2x against the
    committed baseline's record at the same scale;
  * the observability section reports tracing+metrics+profiling costing
    more than 5% throughput (obs_on_rps < 0.95 * obs_off_rps — both sides
    measured back-to-back in the produced run, so the check is self-relative
    and immune to runner-speed differences), or the baseline records an
    observability section the produced run lost;
  * the overload section breaks one of the robustness layer's own
    invariants (these compare the produced run against ITSELF, so they are
    immune to runner-speed differences):
      - answered-request p99 must stay bounded by the request deadline in
        both ladder configurations (deadline enforcement is by construction:
        an answer whose budget expired is delivered deadline-missed);
      - the ladder-off run must actually shed (offered load is 3x the
        capacity measured in the same run — if nothing sheds, the overload
        section is not overloading and proves nothing);
      - the ladder-on shed rate must be strictly below the ladder-off shed
        rate at the same offered load (degrading beats dropping).

The 2x throughput threshold is deliberately tolerant: the committed baseline
was recorded on a different box (1 core, -march=native) than the CI runner,
and the tiny-scale run sits well inside scheduler noise — this gate only
catches "the batched path fell off a cliff" regressions, not percent-level
drift. Tighten it only alongside a runner-recorded baseline. The p99-vs-
deadline check carries a small slack for the delivery hop between the
post-forward deadline check and the latency stamp.
"""

import json
import sys

REGRESSION_FACTOR = 2.0
# The p99-vs-deadline bound carries slack for (a) the delivery hop between
# the post-forward deadline check and the latency stamp and (b) the metric
# itself: p99 now reads from the registry's log-bucket histogram
# (48 buckets/decade), which reports the quantile rank's bucket UPPER edge —
# up to one bucket width (~4.9%) above the exact sample quantile.
DEADLINE_SLACK = 1.15
# Observability must be near-free: tracing every request + stage profiling
# may cost at most this fraction of the obs-off throughput of the same run.
OBS_OVERHEAD_LIMIT = 0.05


def fail(msg: str) -> None:
    print(f"::error::bench gate: {msg}")
    sys.exit(1)


def check_overload(produced: dict) -> None:
    deadline_ms = float(produced["overload_deadline_ms"])
    bound = deadline_ms * DEADLINE_SLACK
    for cfg in ("off", "on"):
        answered = int(produced[f"overload_policy_{cfg}_answered"])
        p99 = float(produced[f"overload_policy_{cfg}_p99_ms"])
        if answered > 0 and p99 > bound:
            fail(
                f"overload policy-{cfg} answered p99 {p99:.1f} ms exceeds "
                f"the {deadline_ms:.0f} ms deadline (x{DEADLINE_SLACK} slack)"
            )
    shed_off = float(produced["overload_policy_off_shed_rate"])
    shed_on = float(produced["overload_policy_on_shed_rate"])
    if shed_off <= 0.0:
        fail(
            "overload section did not overload: the ladder-off run shed "
            "nothing at 3x measured capacity (queue depth 32)"
        )
    if shed_on >= shed_off:
        fail(
            "degradation ladder did not reduce shedding: shed rate "
            f"{shed_on:.3f} with the ladder on vs {shed_off:.3f} off "
            "at the same offered load"
        )
    print(
        f"overload gate OK: shed rate {shed_off:.3f} (ladder off) -> "
        f"{shed_on:.3f} (ladder on), degraded rate "
        f"{float(produced['overload_policy_on_degraded_rate']):.3f}, "
        f"answered p99 {float(produced['overload_policy_off_p99_ms']):.1f} / "
        f"{float(produced['overload_policy_on_p99_ms']):.1f} ms vs "
        f"{deadline_ms:.0f} ms deadline"
    )


def check_observability(produced: dict) -> None:
    off = float(produced["obs_off_rps"])
    on = float(produced["obs_on_rps"])
    if off <= 0:
        fail(f"obs_off_rps is non-positive ({off})")
    if on < (1.0 - OBS_OVERHEAD_LIMIT) * off:
        fail(
            "observability overhead exceeds "
            f"{OBS_OVERHEAD_LIMIT:.0%}: {off:.1f} rps with obs off -> "
            f"{on:.1f} rps with tracing+profiling on "
            f"({1.0 - on / off:.1%} overhead, same run)"
        )
    print(
        f"observability gate OK: {off:.1f} rps off -> {on:.1f} rps on "
        f"({1.0 - on / off:+.1%} overhead, limit {OBS_OVERHEAD_LIMIT:.0%})"
    )


def main() -> None:
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <produced.json> <baseline.json>")
    with open(sys.argv[1]) as f:
        produced = json.load(f)
    with open(sys.argv[2]) as f:
        baseline_file = json.load(f)

    # Correctness first: served answers must match sequential inference.
    if not produced.get("served_matches_sequential", False):
        fail(
            "batched service diverged from sequential inference "
            f"(seg_mismatches={produced.get('seg_mismatches')}, "
            f"max_ratio_diff={produced.get('max_ratio_diff')}, "
            f"failed_requests={produced.get('failed_requests')})"
        )

    scale = produced.get("scale", "tiny")
    baseline = baseline_file.get("serve", {}).get(scale)
    if baseline is None:
        fail(f"baseline has no serve record for scale '{scale}'")

    key = "service_batched_forward_rps"
    got = float(produced[key])
    want = float(baseline[key])
    if got <= 0:
        fail(f"{key} is non-positive ({got})")
    if want / got > REGRESSION_FACTOR:
        fail(
            f"{key} regressed >{REGRESSION_FACTOR}x vs committed baseline: "
            f"{got:.1f} rps vs {want:.1f} rps"
        )

    if "obs_on_rps" in produced:
        check_observability(produced)
    elif "obs_on_rps" in baseline:
        # Losing the section silently would un-gate the observability
        # overhead claim (PR 7).
        fail("bench record is missing its observability section")

    if "overload_deadline_ms" in produced:
        check_overload(produced)
    elif "overload_deadline_ms" in baseline:
        # The baseline records an overload section, so the bench must still
        # produce one — losing the section silently would un-gate PR 6's
        # robustness invariants.
        fail("bench record is missing its overload section")

    print(
        f"bench gate OK: {key} {got:.1f} rps "
        f"(baseline {want:.1f} rps, tolerance {REGRESSION_FACTOR}x), "
        f"served answers match sequential inference"
    )


if __name__ == "__main__":
    main()
