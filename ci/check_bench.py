#!/usr/bin/env python3
"""CI gate over the serving-throughput bench record.

Usage: check_bench.py <produced.json> <committed_baseline.json>
           [--fleet <fleet.json>]

Fails (exit 1) when any of:
  * the bench reports batched-vs-sequential divergence
    (served_matches_sequential false, seg mismatches, or failed requests) —
    a correctness break, no tolerance;
  * the batched service throughput regressed by more than 2x against the
    committed baseline's record at the same scale;
  * the observability section reports tracing+metrics+profiling costing
    more than 5% throughput (obs_on_rps < 0.95 * obs_off_rps — both sides
    measured back-to-back in the produced run, so the check is self-relative
    and immune to runner-speed differences), or the baseline records an
    observability section the produced run lost;
  * the fusion section (PR 8) breaks one of its self-relative claims:
      - fused answers diverge from the unfused warm sequential answers
        (seg mismatches / >1e-5 ratio diff / failed requests) — the fusion
        pass must be numerically invisible end to end;
      - fusion_on_rps < 0.95 * fusion_off_rps (fusion may never make the
        service slower; both sides best-of-3 interleaved in the same run);
      - the isolated encoder-chain speedup falls below 1.15x (the committed
        claim the pass exists to deliver — measured in-process on the same
        box, so the bound is runner-independent);
  * the bf16 section (PR 8) reports divergence:
      - served bf16 answers differ from offline bf16 inference in ANY
        segment id (the serving machinery must add zero divergence of its
        own — the storage mode's only sanctioned error is the rounding at
        block boundaries, identical in both paths);
      - offline bf16 drifts more than 0.15 in ratio from fp32 (the
        documented looser bf16 bound; segment flips vs fp32 are reported
        but not zero-gated — the bench model is untrained, so near-tied
        logits make fp32-vs-bf16 segment identity meaningless here; the
        model-level tests pin it on trained workloads);
    or the baseline records fusion/bf16 sections the produced run lost;
  * the warm-start section (PR 9) breaks a snapshot claim:
      - the snapshot-loaded model answers differently from the model it was
        saved from (any segment mismatch — the format is bit-exact fp32);
      - LoadSnapshot + BeginInference is not at least 5x faster than the
        cold road-representation recompute (both sides best-of-3 in the
        produced run, so the bound is self-relative);
  * the hot-swap section (PR 9) breaks a zero-downtime invariant:
      - any future dropped or failed across the mid-stream SwapModel;
      - any answer diverging from the whole-model reference (the swap
        installs a snapshot clone with identical weights, so a divergence
        means a blended or torn generation);
      - the service's model generation did not advance to 1;
  * the overload section breaks one of the robustness layer's own
    invariants (these compare the produced run against ITSELF, so they are
    immune to runner-speed differences):
      - answered-request p99 must stay bounded by the request deadline in
        both ladder configurations (deadline enforcement is by construction:
        an answer whose budget expired is delivered deadline-missed);
      - the ladder-off run must actually shed (offered load is 3x the
        capacity measured in the same run — if nothing sheds, the overload
        section is not overloading and proves nothing);
      - the ladder-on shed rate must be strictly below the ladder-off shed
        rate at the same offered load (degrading beats dropping);
  * the fleet record (PR 10, --fleet, produced by bench_fleet_throughput)
    breaks a cross-process claim:
      - any fleet-served answer diverging from in-process inference (a
        single segment mismatch or >1e-5 ratio diff across every pass of
        the 2- and 4-worker sweeps), any failed request, or any unanswered
        future — correctness, no tolerance;
      - fleet(2 workers) falling below 1.0x the single-process service of
        the same run (self-relative; measured best-of-N on both sides,
        checked with the same 5% noise floor every self-relative throughput
        gate here uses — the claim is "sharding across processes never
        costs throughput", and on a 1-core runner the two sides are
        genuinely tied);
    or the baseline records a fleet section the produced run lost.

The 2x throughput threshold is deliberately tolerant: the committed baseline
was recorded on a different box (1 core, -march=native) than the CI runner,
and the tiny-scale run sits well inside scheduler noise — this gate only
catches "the batched path fell off a cliff" regressions, not percent-level
drift. Tighten it only alongside a runner-recorded baseline. The p99-vs-
deadline check carries a small slack for the delivery hop between the
post-forward deadline check and the latency stamp.
"""

import json
import sys

REGRESSION_FACTOR = 2.0
# The p99-vs-deadline bound carries slack for (a) the delivery hop between
# the post-forward deadline check and the latency stamp and (b) the metric
# itself: p99 now reads from the registry's log-bucket histogram
# (48 buckets/decade), which reports the quantile rank's bucket UPPER edge —
# up to one bucket width (~4.9%) above the exact sample quantile.
DEADLINE_SLACK = 1.15
# Observability must be near-free: tracing every request + stage profiling
# may cost at most this fraction of the obs-off throughput of the same run.
OBS_OVERHEAD_LIMIT = 0.05
# Fusion may cost at most this fraction end to end (it should HELP; the
# bound only guards against the pass somehow pessimising the service), and
# must deliver at least this speedup on the isolated elementwise chain.
FUSION_OVERHEAD_LIMIT = 0.05
FUSION_CHAIN_MIN_SPEEDUP = 1.15
# The documented bf16 numeric bound: max ratio drift of offline bf16
# recovery vs fp32 on the bench workload.
BF16_MAX_RATIO_DRIFT = 0.15
# Warm start (PR 9): LoadSnapshot + BeginInference must beat the cold
# BeginInference (road-representation recompute) by at least this factor —
# both sides best-of-3 in the same process, so the bound is self-relative.
WARMSTART_MIN_SPEEDUP = 5.0
# Fleet (PR 10): 2 fleet workers must keep >= 1.0x the single-process
# service's throughput, self-relative in the fleet record's own run. The 5%
# floor is the same scheduler-noise allowance as the obs/fusion gates — on a
# 1-core runner both sides are compute-bound on the same core, so the
# honest expectation is a tie, not a 2x win.
FLEET_MIN_SPEEDUP = 1.0
FLEET_NOISE_FLOOR = 0.05


def fail(msg: str) -> None:
    print(f"::error::bench gate: {msg}")
    sys.exit(1)


def check_overload(produced: dict) -> None:
    deadline_ms = float(produced["overload_deadline_ms"])
    bound = deadline_ms * DEADLINE_SLACK
    for cfg in ("off", "on"):
        answered = int(produced[f"overload_policy_{cfg}_answered"])
        p99 = float(produced[f"overload_policy_{cfg}_p99_ms"])
        if answered > 0 and p99 > bound:
            fail(
                f"overload policy-{cfg} answered p99 {p99:.1f} ms exceeds "
                f"the {deadline_ms:.0f} ms deadline (x{DEADLINE_SLACK} slack)"
            )
    shed_off = float(produced["overload_policy_off_shed_rate"])
    shed_on = float(produced["overload_policy_on_shed_rate"])
    if shed_off <= 0.0:
        fail(
            "overload section did not overload: the ladder-off run shed "
            "nothing at 3x measured capacity (queue depth 32)"
        )
    if shed_on >= shed_off:
        fail(
            "degradation ladder did not reduce shedding: shed rate "
            f"{shed_on:.3f} with the ladder on vs {shed_off:.3f} off "
            "at the same offered load"
        )
    print(
        f"overload gate OK: shed rate {shed_off:.3f} (ladder off) -> "
        f"{shed_on:.3f} (ladder on), degraded rate "
        f"{float(produced['overload_policy_on_degraded_rate']):.3f}, "
        f"answered p99 {float(produced['overload_policy_off_p99_ms']):.1f} / "
        f"{float(produced['overload_policy_on_p99_ms']):.1f} ms vs "
        f"{deadline_ms:.0f} ms deadline"
    )


def check_observability(produced: dict) -> None:
    off = float(produced["obs_off_rps"])
    on = float(produced["obs_on_rps"])
    if off <= 0:
        fail(f"obs_off_rps is non-positive ({off})")
    if on < (1.0 - OBS_OVERHEAD_LIMIT) * off:
        fail(
            "observability overhead exceeds "
            f"{OBS_OVERHEAD_LIMIT:.0%}: {off:.1f} rps with obs off -> "
            f"{on:.1f} rps with tracing+profiling on "
            f"({1.0 - on / off:.1%} overhead, same run)"
        )
    print(
        f"observability gate OK: {off:.1f} rps off -> {on:.1f} rps on "
        f"({1.0 - on / off:+.1%} overhead, limit {OBS_OVERHEAD_LIMIT:.0%})"
    )


def check_fusion(produced: dict) -> None:
    if int(produced.get("fusion_seg_mismatches", 0)) != 0 or int(
        produced.get("fusion_failed_requests", 0)
    ) != 0 or float(produced.get("fusion_max_ratio_diff", 0.0)) > 1e-5:
        fail(
            "fusion pass diverged from the unfused path "
            f"(seg_mismatches={produced.get('fusion_seg_mismatches')}, "
            f"max_ratio_diff={produced.get('fusion_max_ratio_diff')}, "
            f"failed_requests={produced.get('fusion_failed_requests')})"
        )
    off = float(produced["fusion_off_rps"])
    on = float(produced["fusion_on_rps"])
    if off <= 0:
        fail(f"fusion_off_rps is non-positive ({off})")
    if on < (1.0 - FUSION_OVERHEAD_LIMIT) * off:
        fail(
            f"fusion pass made the service slower: {off:.1f} rps off -> "
            f"{on:.1f} rps on (limit {FUSION_OVERHEAD_LIMIT:.0%}, same run)"
        )
    chain = float(produced["fusion_chain_speedup"])
    if chain < FUSION_CHAIN_MIN_SPEEDUP:
        fail(
            f"fused encoder-chain speedup {chain:.2f}x is below the "
            f"committed {FUSION_CHAIN_MIN_SPEEDUP}x claim"
        )
    print(
        f"fusion gate OK: {off:.1f} rps off -> {on:.1f} rps on end to end, "
        f"isolated chain {chain:.2f}x (min {FUSION_CHAIN_MIN_SPEEDUP}x), "
        "fused answers match unfused within 1e-5"
    )


def check_bf16(produced: dict) -> None:
    if int(produced.get("bf16_seg_mismatches", 0)) != 0 or int(
        produced.get("bf16_failed_requests", 0)
    ) != 0:
        fail(
            "bf16 served answers diverged from offline bf16 inference "
            f"(seg_mismatches={produced.get('bf16_seg_mismatches')}, "
            f"failed_requests={produced.get('bf16_failed_requests')})"
        )
    drift = float(produced["bf16_max_ratio_diff"])
    if drift > BF16_MAX_RATIO_DRIFT:
        fail(
            f"bf16 ratio drift vs fp32 {drift:.3g} exceeds the documented "
            f"{BF16_MAX_RATIO_DRIFT} bound"
        )
    print(
        f"bf16 gate OK: served == offline bf16 exactly, fp32 ratio drift "
        f"{drift:.3g} (bound {BF16_MAX_RATIO_DRIFT}), "
        f"{int(produced.get('bf16_vs_fp32_seg_mismatches', 0))} seg flips vs "
        "fp32 reported (untrained bench model, not gated)"
    )


def check_warmstart(produced: dict) -> None:
    if int(produced.get("warmstart_seg_mismatches", 0)) != 0:
        fail(
            "snapshot-loaded model diverged from the original: "
            f"{produced.get('warmstart_seg_mismatches')} segment mismatches"
        )
    speedup = float(produced["warmstart_speedup"])
    if speedup < WARMSTART_MIN_SPEEDUP:
        fail(
            f"snapshot warm start is only {speedup:.2f}x faster than the "
            f"cold road-representation recompute (committed claim: "
            f">={WARMSTART_MIN_SPEEDUP}x, same process)"
        )
    print(
        f"warm-start gate OK: LoadSnapshot+BeginInference "
        f"{1e3 * float(produced['warmstart_load_s']):.2f} ms vs cold "
        f"{1e3 * float(produced['warmstart_cold_begin_s']):.2f} ms "
        f"({speedup:.1f}x, min {WARMSTART_MIN_SPEEDUP:.0f}x), loaded "
        "answers identical"
    )


def check_swap(produced: dict) -> None:
    dropped = int(produced["swap_dropped_futures"])
    failed = int(produced.get("swap_failed_requests", 0))
    seg = int(produced.get("swap_seg_mismatches", 0))
    ratio = float(produced.get("swap_max_ratio_diff", 0.0))
    version = int(produced.get("swap_model_version", 0))
    if dropped != 0:
        fail(f"hot swap dropped {dropped} futures (must be zero)")
    if failed != 0:
        fail(f"hot swap failed {failed} requests (no faults injected)")
    if seg != 0 or ratio > 1e-5:
        fail(
            "hot swap blended generations: answers diverged from the "
            f"whole-model reference (seg_mismatches={seg}, "
            f"max_ratio_diff={ratio})"
        )
    if version != 1:
        fail(f"hot swap did not advance the model generation (got {version})")
    print(
        "hot-swap gate OK: zero dropped futures across the flip, answers "
        f"v0/v1 = {int(produced.get('swap_answers_old_gen', 0))}/"
        f"{int(produced.get('swap_answers_new_gen', 0))}, all whole-model"
    )


def check_fleet(fleet: dict) -> None:
    # Correctness first, zero tolerance: every fleet-served answer across
    # every pass of the 2- and 4-worker sweeps must match in-process
    # inference, nothing may fail, and nothing may go unanswered (the
    # router's every-future-resolves contract).
    seg = int(fleet.get("fleet_seg_mismatches", -1))
    ratio = float(fleet.get("fleet_max_ratio_diff", 1.0))
    failed = int(fleet.get("fleet_failed_requests", -1))
    unanswered = int(fleet.get("fleet_unanswered", -1))
    if (
        not fleet.get("fleet_matches_inprocess", False)
        or seg != 0
        or ratio > 1e-5
        or failed != 0
        or unanswered != 0
    ):
        fail(
            "fleet-served answers diverged from in-process inference "
            f"(seg_mismatches={seg}, max_ratio_diff={ratio}, "
            f"failed_requests={failed}, unanswered={unanswered})"
        )
    single = float(fleet["single_rps"])
    fleet2 = float(fleet["fleet2_rps"])
    if single <= 0:
        fail(f"single_rps is non-positive ({single})")
    if fleet2 < (FLEET_MIN_SPEEDUP - FLEET_NOISE_FLOOR) * single:
        fail(
            f"fleet(2 workers) fell below {FLEET_MIN_SPEEDUP}x the "
            f"single-process service: {fleet2:.1f} rps vs {single:.1f} rps "
            f"({fleet2 / single:.2f}x, floor "
            f"{FLEET_MIN_SPEEDUP - FLEET_NOISE_FLOOR:.2f}x, same run)"
        )
    print(
        f"fleet gate OK: single {single:.1f} rps, fleet(2) {fleet2:.1f} rps "
        f"({fleet2 / single:.2f}x, min {FLEET_MIN_SPEEDUP}x - "
        f"{FLEET_NOISE_FLOOR:.0%} noise), fleet(4) "
        f"{float(fleet.get('fleet4_rps', 0.0)):.1f} rps; answers "
        "bit-identical to in-process, zero failed, zero unanswered"
    )


def main() -> None:
    args = list(sys.argv[1:])
    fleet_path = None
    if "--fleet" in args:
        i = args.index("--fleet")
        if i + 1 >= len(args):
            fail("--fleet requires a path")
        fleet_path = args[i + 1]
        del args[i : i + 2]
    if len(args) != 2:
        fail(
            f"usage: {sys.argv[0]} <produced.json> <baseline.json> "
            "[--fleet <fleet.json>]"
        )
    with open(args[0]) as f:
        produced = json.load(f)
    with open(args[1]) as f:
        baseline_file = json.load(f)

    # Correctness first: served answers must match sequential inference.
    if not produced.get("served_matches_sequential", False):
        fail(
            "batched service diverged from sequential inference "
            f"(seg_mismatches={produced.get('seg_mismatches')}, "
            f"max_ratio_diff={produced.get('max_ratio_diff')}, "
            f"failed_requests={produced.get('failed_requests')})"
        )

    scale = produced.get("scale", "tiny")
    baseline = baseline_file.get("serve", {}).get(scale)
    if baseline is None:
        fail(f"baseline has no serve record for scale '{scale}'")

    key = "service_batched_forward_rps"
    got = float(produced[key])
    want = float(baseline[key])
    if got <= 0:
        fail(f"{key} is non-positive ({got})")
    if want / got > REGRESSION_FACTOR:
        fail(
            f"{key} regressed >{REGRESSION_FACTOR}x vs committed baseline: "
            f"{got:.1f} rps vs {want:.1f} rps"
        )

    if "obs_on_rps" in produced:
        check_observability(produced)
    elif "obs_on_rps" in baseline:
        # Losing the section silently would un-gate the observability
        # overhead claim (PR 7).
        fail("bench record is missing its observability section")

    if "fusion_on_rps" in produced:
        check_fusion(produced)
    elif "fusion_on_rps" in baseline:
        # Losing the section silently would un-gate the fusion-pass claims
        # (PR 8).
        fail("bench record is missing its fusion section")

    if "bf16_max_ratio_diff" in produced:
        check_bf16(produced)
    elif "bf16_max_ratio_diff" in baseline:
        fail("bench record is missing its bf16 section")

    if "warmstart_speedup" in produced:
        check_warmstart(produced)
    elif "warmstart_speedup" in baseline:
        # Losing the section silently would un-gate the snapshot warm-start
        # claim (PR 9).
        fail("bench record is missing its warm-start section")

    if "swap_dropped_futures" in produced:
        check_swap(produced)
    elif "swap_dropped_futures" in baseline:
        fail("bench record is missing its hot-swap section")

    if fleet_path is not None:
        with open(fleet_path) as f:
            check_fleet(json.load(f))
    elif baseline_file.get("fleet"):
        # Losing the fleet record silently would un-gate the cross-process
        # equivalence claim (PR 10).
        fail("no --fleet record produced, but the baseline commits one")

    if "overload_deadline_ms" in produced:
        check_overload(produced)
    elif "overload_deadline_ms" in baseline:
        # The baseline records an overload section, so the bench must still
        # produce one — losing the section silently would un-gate PR 6's
        # robustness invariants.
        fail("bench record is missing its overload section")

    print(
        f"bench gate OK: {key} {got:.1f} rps "
        f"(baseline {want:.1f} rps, tolerance {REGRESSION_FACTOR}x), "
        f"served answers match sequential inference"
    )


if __name__ == "__main__":
    main()
