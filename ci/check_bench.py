#!/usr/bin/env python3
"""CI gate over the serving-throughput bench record.

Usage: check_bench.py <produced.json> <committed_baseline.json>

Fails (exit 1) when any of:
  * the bench reports batched-vs-sequential divergence
    (served_matches_sequential false, seg mismatches, or failed requests) —
    a correctness break, no tolerance;
  * the batched service throughput regressed by more than 2x against the
    committed baseline's record at the same scale;
  * the observability section reports tracing+metrics+profiling costing
    more than 5% throughput (obs_on_rps < 0.95 * obs_off_rps — both sides
    measured back-to-back in the produced run, so the check is self-relative
    and immune to runner-speed differences), or the baseline records an
    observability section the produced run lost;
  * the fusion section (PR 8) breaks one of its self-relative claims:
      - fused answers diverge from the unfused warm sequential answers
        (seg mismatches / >1e-5 ratio diff / failed requests) — the fusion
        pass must be numerically invisible end to end;
      - fusion_on_rps < 0.95 * fusion_off_rps (fusion may never make the
        service slower; both sides best-of-3 interleaved in the same run);
      - the isolated encoder-chain speedup falls below 1.15x (the committed
        claim the pass exists to deliver — measured in-process on the same
        box, so the bound is runner-independent);
  * the bf16 section (PR 8) reports divergence:
      - served bf16 answers differ from offline bf16 inference in ANY
        segment id (the serving machinery must add zero divergence of its
        own — the storage mode's only sanctioned error is the rounding at
        block boundaries, identical in both paths);
      - offline bf16 drifts more than 0.15 in ratio from fp32 (the
        documented looser bf16 bound; segment flips vs fp32 are reported
        but not zero-gated — the bench model is untrained, so near-tied
        logits make fp32-vs-bf16 segment identity meaningless here; the
        model-level tests pin it on trained workloads);
    or the baseline records fusion/bf16 sections the produced run lost;
  * the warm-start section (PR 9) breaks a snapshot claim:
      - the snapshot-loaded model answers differently from the model it was
        saved from (any segment mismatch — the format is bit-exact fp32);
      - LoadSnapshot + BeginInference is not at least 5x faster than the
        cold road-representation recompute (both sides best-of-3 in the
        produced run, so the bound is self-relative);
  * the hot-swap section (PR 9) breaks a zero-downtime invariant:
      - any future dropped or failed across the mid-stream SwapModel;
      - any answer diverging from the whole-model reference (the swap
        installs a snapshot clone with identical weights, so a divergence
        means a blended or torn generation);
      - the service's model generation did not advance to 1;
  * the overload section breaks one of the robustness layer's own
    invariants (these compare the produced run against ITSELF, so they are
    immune to runner-speed differences):
      - answered-request p99 must stay bounded by the request deadline in
        both ladder configurations (deadline enforcement is by construction:
        an answer whose budget expired is delivered deadline-missed);
      - the ladder-off run must actually shed (offered load is 3x the
        capacity measured in the same run — if nothing sheds, the overload
        section is not overloading and proves nothing);
      - the ladder-on shed rate must be strictly below the ladder-off shed
        rate at the same offered load (degrading beats dropping).

The 2x throughput threshold is deliberately tolerant: the committed baseline
was recorded on a different box (1 core, -march=native) than the CI runner,
and the tiny-scale run sits well inside scheduler noise — this gate only
catches "the batched path fell off a cliff" regressions, not percent-level
drift. Tighten it only alongside a runner-recorded baseline. The p99-vs-
deadline check carries a small slack for the delivery hop between the
post-forward deadline check and the latency stamp.
"""

import json
import sys

REGRESSION_FACTOR = 2.0
# The p99-vs-deadline bound carries slack for (a) the delivery hop between
# the post-forward deadline check and the latency stamp and (b) the metric
# itself: p99 now reads from the registry's log-bucket histogram
# (48 buckets/decade), which reports the quantile rank's bucket UPPER edge —
# up to one bucket width (~4.9%) above the exact sample quantile.
DEADLINE_SLACK = 1.15
# Observability must be near-free: tracing every request + stage profiling
# may cost at most this fraction of the obs-off throughput of the same run.
OBS_OVERHEAD_LIMIT = 0.05
# Fusion may cost at most this fraction end to end (it should HELP; the
# bound only guards against the pass somehow pessimising the service), and
# must deliver at least this speedup on the isolated elementwise chain.
FUSION_OVERHEAD_LIMIT = 0.05
FUSION_CHAIN_MIN_SPEEDUP = 1.15
# The documented bf16 numeric bound: max ratio drift of offline bf16
# recovery vs fp32 on the bench workload.
BF16_MAX_RATIO_DRIFT = 0.15
# Warm start (PR 9): LoadSnapshot + BeginInference must beat the cold
# BeginInference (road-representation recompute) by at least this factor —
# both sides best-of-3 in the same process, so the bound is self-relative.
WARMSTART_MIN_SPEEDUP = 5.0


def fail(msg: str) -> None:
    print(f"::error::bench gate: {msg}")
    sys.exit(1)


def check_overload(produced: dict) -> None:
    deadline_ms = float(produced["overload_deadline_ms"])
    bound = deadline_ms * DEADLINE_SLACK
    for cfg in ("off", "on"):
        answered = int(produced[f"overload_policy_{cfg}_answered"])
        p99 = float(produced[f"overload_policy_{cfg}_p99_ms"])
        if answered > 0 and p99 > bound:
            fail(
                f"overload policy-{cfg} answered p99 {p99:.1f} ms exceeds "
                f"the {deadline_ms:.0f} ms deadline (x{DEADLINE_SLACK} slack)"
            )
    shed_off = float(produced["overload_policy_off_shed_rate"])
    shed_on = float(produced["overload_policy_on_shed_rate"])
    if shed_off <= 0.0:
        fail(
            "overload section did not overload: the ladder-off run shed "
            "nothing at 3x measured capacity (queue depth 32)"
        )
    if shed_on >= shed_off:
        fail(
            "degradation ladder did not reduce shedding: shed rate "
            f"{shed_on:.3f} with the ladder on vs {shed_off:.3f} off "
            "at the same offered load"
        )
    print(
        f"overload gate OK: shed rate {shed_off:.3f} (ladder off) -> "
        f"{shed_on:.3f} (ladder on), degraded rate "
        f"{float(produced['overload_policy_on_degraded_rate']):.3f}, "
        f"answered p99 {float(produced['overload_policy_off_p99_ms']):.1f} / "
        f"{float(produced['overload_policy_on_p99_ms']):.1f} ms vs "
        f"{deadline_ms:.0f} ms deadline"
    )


def check_observability(produced: dict) -> None:
    off = float(produced["obs_off_rps"])
    on = float(produced["obs_on_rps"])
    if off <= 0:
        fail(f"obs_off_rps is non-positive ({off})")
    if on < (1.0 - OBS_OVERHEAD_LIMIT) * off:
        fail(
            "observability overhead exceeds "
            f"{OBS_OVERHEAD_LIMIT:.0%}: {off:.1f} rps with obs off -> "
            f"{on:.1f} rps with tracing+profiling on "
            f"({1.0 - on / off:.1%} overhead, same run)"
        )
    print(
        f"observability gate OK: {off:.1f} rps off -> {on:.1f} rps on "
        f"({1.0 - on / off:+.1%} overhead, limit {OBS_OVERHEAD_LIMIT:.0%})"
    )


def check_fusion(produced: dict) -> None:
    if int(produced.get("fusion_seg_mismatches", 0)) != 0 or int(
        produced.get("fusion_failed_requests", 0)
    ) != 0 or float(produced.get("fusion_max_ratio_diff", 0.0)) > 1e-5:
        fail(
            "fusion pass diverged from the unfused path "
            f"(seg_mismatches={produced.get('fusion_seg_mismatches')}, "
            f"max_ratio_diff={produced.get('fusion_max_ratio_diff')}, "
            f"failed_requests={produced.get('fusion_failed_requests')})"
        )
    off = float(produced["fusion_off_rps"])
    on = float(produced["fusion_on_rps"])
    if off <= 0:
        fail(f"fusion_off_rps is non-positive ({off})")
    if on < (1.0 - FUSION_OVERHEAD_LIMIT) * off:
        fail(
            f"fusion pass made the service slower: {off:.1f} rps off -> "
            f"{on:.1f} rps on (limit {FUSION_OVERHEAD_LIMIT:.0%}, same run)"
        )
    chain = float(produced["fusion_chain_speedup"])
    if chain < FUSION_CHAIN_MIN_SPEEDUP:
        fail(
            f"fused encoder-chain speedup {chain:.2f}x is below the "
            f"committed {FUSION_CHAIN_MIN_SPEEDUP}x claim"
        )
    print(
        f"fusion gate OK: {off:.1f} rps off -> {on:.1f} rps on end to end, "
        f"isolated chain {chain:.2f}x (min {FUSION_CHAIN_MIN_SPEEDUP}x), "
        "fused answers match unfused within 1e-5"
    )


def check_bf16(produced: dict) -> None:
    if int(produced.get("bf16_seg_mismatches", 0)) != 0 or int(
        produced.get("bf16_failed_requests", 0)
    ) != 0:
        fail(
            "bf16 served answers diverged from offline bf16 inference "
            f"(seg_mismatches={produced.get('bf16_seg_mismatches')}, "
            f"failed_requests={produced.get('bf16_failed_requests')})"
        )
    drift = float(produced["bf16_max_ratio_diff"])
    if drift > BF16_MAX_RATIO_DRIFT:
        fail(
            f"bf16 ratio drift vs fp32 {drift:.3g} exceeds the documented "
            f"{BF16_MAX_RATIO_DRIFT} bound"
        )
    print(
        f"bf16 gate OK: served == offline bf16 exactly, fp32 ratio drift "
        f"{drift:.3g} (bound {BF16_MAX_RATIO_DRIFT}), "
        f"{int(produced.get('bf16_vs_fp32_seg_mismatches', 0))} seg flips vs "
        "fp32 reported (untrained bench model, not gated)"
    )


def check_warmstart(produced: dict) -> None:
    if int(produced.get("warmstart_seg_mismatches", 0)) != 0:
        fail(
            "snapshot-loaded model diverged from the original: "
            f"{produced.get('warmstart_seg_mismatches')} segment mismatches"
        )
    speedup = float(produced["warmstart_speedup"])
    if speedup < WARMSTART_MIN_SPEEDUP:
        fail(
            f"snapshot warm start is only {speedup:.2f}x faster than the "
            f"cold road-representation recompute (committed claim: "
            f">={WARMSTART_MIN_SPEEDUP}x, same process)"
        )
    print(
        f"warm-start gate OK: LoadSnapshot+BeginInference "
        f"{1e3 * float(produced['warmstart_load_s']):.2f} ms vs cold "
        f"{1e3 * float(produced['warmstart_cold_begin_s']):.2f} ms "
        f"({speedup:.1f}x, min {WARMSTART_MIN_SPEEDUP:.0f}x), loaded "
        "answers identical"
    )


def check_swap(produced: dict) -> None:
    dropped = int(produced["swap_dropped_futures"])
    failed = int(produced.get("swap_failed_requests", 0))
    seg = int(produced.get("swap_seg_mismatches", 0))
    ratio = float(produced.get("swap_max_ratio_diff", 0.0))
    version = int(produced.get("swap_model_version", 0))
    if dropped != 0:
        fail(f"hot swap dropped {dropped} futures (must be zero)")
    if failed != 0:
        fail(f"hot swap failed {failed} requests (no faults injected)")
    if seg != 0 or ratio > 1e-5:
        fail(
            "hot swap blended generations: answers diverged from the "
            f"whole-model reference (seg_mismatches={seg}, "
            f"max_ratio_diff={ratio})"
        )
    if version != 1:
        fail(f"hot swap did not advance the model generation (got {version})")
    print(
        "hot-swap gate OK: zero dropped futures across the flip, answers "
        f"v0/v1 = {int(produced.get('swap_answers_old_gen', 0))}/"
        f"{int(produced.get('swap_answers_new_gen', 0))}, all whole-model"
    )


def main() -> None:
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <produced.json> <baseline.json>")
    with open(sys.argv[1]) as f:
        produced = json.load(f)
    with open(sys.argv[2]) as f:
        baseline_file = json.load(f)

    # Correctness first: served answers must match sequential inference.
    if not produced.get("served_matches_sequential", False):
        fail(
            "batched service diverged from sequential inference "
            f"(seg_mismatches={produced.get('seg_mismatches')}, "
            f"max_ratio_diff={produced.get('max_ratio_diff')}, "
            f"failed_requests={produced.get('failed_requests')})"
        )

    scale = produced.get("scale", "tiny")
    baseline = baseline_file.get("serve", {}).get(scale)
    if baseline is None:
        fail(f"baseline has no serve record for scale '{scale}'")

    key = "service_batched_forward_rps"
    got = float(produced[key])
    want = float(baseline[key])
    if got <= 0:
        fail(f"{key} is non-positive ({got})")
    if want / got > REGRESSION_FACTOR:
        fail(
            f"{key} regressed >{REGRESSION_FACTOR}x vs committed baseline: "
            f"{got:.1f} rps vs {want:.1f} rps"
        )

    if "obs_on_rps" in produced:
        check_observability(produced)
    elif "obs_on_rps" in baseline:
        # Losing the section silently would un-gate the observability
        # overhead claim (PR 7).
        fail("bench record is missing its observability section")

    if "fusion_on_rps" in produced:
        check_fusion(produced)
    elif "fusion_on_rps" in baseline:
        # Losing the section silently would un-gate the fusion-pass claims
        # (PR 8).
        fail("bench record is missing its fusion section")

    if "bf16_max_ratio_diff" in produced:
        check_bf16(produced)
    elif "bf16_max_ratio_diff" in baseline:
        fail("bench record is missing its bf16 section")

    if "warmstart_speedup" in produced:
        check_warmstart(produced)
    elif "warmstart_speedup" in baseline:
        # Losing the section silently would un-gate the snapshot warm-start
        # claim (PR 9).
        fail("bench record is missing its warm-start section")

    if "swap_dropped_futures" in produced:
        check_swap(produced)
    elif "swap_dropped_futures" in baseline:
        fail("bench record is missing its hot-swap section")

    if "overload_deadline_ms" in produced:
        check_overload(produced)
    elif "overload_deadline_ms" in baseline:
        # The baseline records an overload section, so the bench must still
        # produce one — losing the section silently would un-gate PR 6's
        # robustness invariants.
        fail("bench record is missing its overload section")

    print(
        f"bench gate OK: {key} {got:.1f} rps "
        f"(baseline {want:.1f} rps, tolerance {REGRESSION_FACTOR}x), "
        f"served answers match sequential inference"
    )


if __name__ == "__main__":
    main()
