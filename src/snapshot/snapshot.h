#ifndef RNTRAJ_SNAPSHOT_SNAPSHOT_H_
#define RNTRAJ_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "src/nn/optim.h"
#include "src/nn/state_dict.h"
#include "src/tensor/tensor.h"

/// \file snapshot.h
/// Versioned binary model snapshots (see docs/snapshot_format.md).
///
/// A snapshot file is a fixed header (magic "RNTRSNAP", format version,
/// endianness tag) followed by typed sections. The mandatory state-dict
/// section stores the named-parameter table and the flattened parameter
/// arena (every tensor concatenated, one contiguous read/write); optional
/// sections carry the warm road representation (so a serving process skips
/// the GridGNN recompute), the trainer state (epoch counters + the Adam
/// moment arenas, for checkpoint/resume) and a model-name meta tag.
///
/// Every load failure — missing file, truncation, corruption, foreign
/// version or endianness, shape mismatch — is reported through an error
/// string and `false`; the loader never aborts on untrusted bytes.

namespace rntraj {
namespace snapshot {

inline constexpr char kMagic[8] = {'R', 'N', 'T', 'R', 'S', 'N', 'A', 'P'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr uint32_t kEndianTag = 0x01020304u;

/// Section type tags (the section table is extensible: readers skip types
/// they do not know, so older readers tolerate newer optional sections).
enum SectionType : uint32_t {
  kSectionStateDict = 1,
  kSectionRoadRep = 2,
  kSectionTrainerState = 3,
  kSectionMeta = 4,
};

/// Trainer-side checkpoint payload: how far training got plus the whole
/// Adam state (step counter + flat moment arenas aligned to the state
/// dict's learnable layout).
struct TrainerState {
  uint64_t epochs_done = 0;
  /// Optimiser steps taken (= BeginBatch calls); restored into the model so
  /// step-keyed streams (scheduled-sampling seeds) resume bit-for-bit.
  uint64_t training_steps = 0;
  Adam::State adam;
};

/// In-memory image of a snapshot file. Tensors are owned by the snapshot
/// (fresh storage, no autograd state), never aliased into a live model.
struct Snapshot {
  StateDict state;
  bool has_road_rep = false;
  Tensor road_rep;
  bool has_trainer_state = false;
  TrainerState trainer;
  std::string model_name;  // meta section; empty = absent
};

/// Serialises `snap` to `path` atomically (tmp file + rename, so readers
/// never observe a half-written snapshot). Returns false + `*error` on I/O
/// failure.
bool WriteSnapshot(const std::string& path, const Snapshot& snap,
                   std::string* error);

/// Parses `path` into `*out` with full bounds checking. Returns false +
/// `*error` (and leaves `*out` unspecified) on any malformed input.
bool ReadSnapshot(const std::string& path, Snapshot* out, std::string* error);

/// Copies `loaded` into a live model's state dict `own`, strictly: every
/// `own` entry must be present in `loaded` with exactly its shape, and
/// `loaded` must contain nothing else. On any mismatch returns false with
/// a diagnostic in `*error` and mutates NOTHING (all checks run before the
/// first copy).
bool ApplyStateDict(const StateDict& own, const StateDict& loaded,
                    std::string* error);

}  // namespace snapshot
}  // namespace rntraj

#endif  // RNTRAJ_SNAPSHOT_SNAPSHOT_H_
