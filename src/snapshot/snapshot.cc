#include "src/snapshot/snapshot.h"

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "src/nn/arena.h"

namespace rntraj {
namespace snapshot {
namespace {

// ---------------------------------------------------------------------------
// Little serialisation helpers. The format stores native-endian scalars and
// stamps kEndianTag in the header; a reader on a foreign-endian machine sees
// the tag byte-swapped and rejects the file instead of silently loading
// garbage weights.

void PutU8(std::vector<unsigned char>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<unsigned char>* out, uint32_t v) {
  const size_t off = out->size();
  out->resize(off + sizeof(v));
  std::memcpy(out->data() + off, &v, sizeof(v));
}

void PutU64(std::vector<unsigned char>* out, uint64_t v) {
  const size_t off = out->size();
  out->resize(off + sizeof(v));
  std::memcpy(out->data() + off, &v, sizeof(v));
}

void PutI64(std::vector<unsigned char>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutString(std::vector<unsigned char>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

void PutFloats(std::vector<unsigned char>* out, const float* data, size_t n) {
  const size_t off = out->size();
  out->resize(off + n * sizeof(float));
  std::memcpy(out->data() + off, data, n * sizeof(float));
}

/// Bounds-checked read cursor over an untrusted byte buffer. Every Get*
/// validates the remaining length; the first failure latches and makes all
/// subsequent reads fail too, so parse code can check once per section.
class Cursor {
 public:
  Cursor(const unsigned char* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

  bool GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetI64(int64_t* v) { return GetRaw(v, sizeof(*v)); }

  bool GetString(std::string* s, size_t max_len) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (len > max_len || len > remaining()) return Fail();
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  bool GetFloats(std::vector<float>* out, size_t n) {
    if (n > remaining() / sizeof(float)) return Fail();
    out->resize(n);
    std::memcpy(out->data(), data_ + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return true;
  }

  bool Skip(size_t n) {
    if (n > remaining()) return Fail();
    pos_ += n;
    return true;
  }

 private:
  bool GetRaw(void* v, size_t n) {
    if (!ok_ || n > remaining()) return Fail();
    std::memcpy(v, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool Fail() {
    ok_ = false;
    return false;
  }

  const unsigned char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

bool SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = "snapshot: " + msg;
  return false;
}

// Caps keeping a corrupted length field from driving a multi-gigabyte
// allocation before the bounds check can reject it.
constexpr size_t kMaxNameLen = 4096;
constexpr uint32_t kMaxRank = 8;

// ---------------------------------------------------------------------------
// Section payload encoders.

std::vector<unsigned char> EncodeStateDict(const StateDict& sd) {
  std::vector<unsigned char> out;
  // Named-parameter table: name, kind, dtype, shape per entry — enough to
  // validate against a live model before touching the data block.
  PutU32(&out, static_cast<uint32_t>(sd.size()));
  for (const StateEntry& e : sd) {
    PutString(&out, e.name);
    PutU8(&out, e.is_buffer ? 1 : 0);
    PutU8(&out, 0);  // dtype: 0 = fp32 (the only storage dtype today)
    PutU32(&out, static_cast<uint32_t>(e.tensor.rank()));
    for (int d : e.tensor.shape()) PutU32(&out, static_cast<uint32_t>(d));
  }
  // The flattened arena: all entries collapsed into one contiguous buffer,
  // written in one shot.
  ParameterArena arena(sd);
  PutU64(&out, arena.size());
  PutFloats(&out, arena.flat().data(), arena.size());
  return out;
}

std::vector<unsigned char> EncodeRoadRep(const Tensor& x) {
  std::vector<unsigned char> out;
  PutU32(&out, static_cast<uint32_t>(x.rank() >= 1 ? x.shape()[0] : 0));
  PutU32(&out, static_cast<uint32_t>(x.rank() >= 2 ? x.shape()[1] : 1));
  PutFloats(&out, x.data().data(), x.data().size());
  return out;
}

std::vector<unsigned char> EncodeTrainerState(const TrainerState& ts) {
  std::vector<unsigned char> out;
  PutU64(&out, ts.epochs_done);
  PutU64(&out, ts.training_steps);
  PutI64(&out, ts.adam.t);
  PutU64(&out, ts.adam.m.size());
  PutFloats(&out, ts.adam.m.data(), ts.adam.m.size());
  PutFloats(&out, ts.adam.v.data(), ts.adam.v.size());
  return out;
}

// ---------------------------------------------------------------------------
// Section payload decoders. Each gets its own sub-cursor so a section that
// lies about its payload size cannot read into its neighbour.

bool DecodeStateDict(Cursor* c, StateDict* sd, std::string* error) {
  uint32_t count = 0;
  if (!c->GetU32(&count)) return SetError(error, "truncated state-dict table");
  struct Meta {
    std::string name;
    bool is_buffer;
    std::vector<int> shape;
    size_t size;
  };
  std::vector<Meta> metas;
  metas.reserve(count);
  uint64_t total = 0;
  for (uint32_t i = 0; i < count; ++i) {
    Meta m;
    uint8_t is_buffer = 0;
    uint8_t dtype = 0;
    uint32_t rank = 0;
    if (!c->GetString(&m.name, kMaxNameLen) || !c->GetU8(&is_buffer) ||
        !c->GetU8(&dtype) || !c->GetU32(&rank)) {
      return SetError(error, "truncated state-dict table");
    }
    if (dtype != 0) {
      return SetError(error, "entry '" + m.name + "' has unknown dtype " +
                                 std::to_string(dtype));
    }
    if (rank > kMaxRank) {
      return SetError(error, "entry '" + m.name + "' has implausible rank " +
                                 std::to_string(rank));
    }
    m.is_buffer = is_buffer != 0;
    size_t n = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      uint32_t dim = 0;
      if (!c->GetU32(&dim)) return SetError(error, "truncated shape");
      if (dim == 0 || dim > (1u << 28) || n > (size_t{1} << 32) / dim) {
        return SetError(error, "entry '" + m.name + "' has implausible shape");
      }
      m.shape.push_back(static_cast<int>(dim));
      n *= dim;
    }
    m.size = rank == 0 ? 1 : n;
    total += m.size;
    metas.push_back(std::move(m));
  }
  uint64_t stored = 0;
  if (!c->GetU64(&stored)) return SetError(error, "truncated arena header");
  if (stored != total) {
    return SetError(error, "arena size " + std::to_string(stored) +
                               " disagrees with the parameter table (" +
                               std::to_string(total) + ")");
  }
  std::vector<float> flat;
  if (!c->GetFloats(&flat, stored)) {
    return SetError(error, "truncated parameter arena");
  }
  size_t off = 0;
  for (const Meta& m : metas) {
    std::vector<float> data(flat.begin() + off, flat.begin() + off + m.size);
    off += m.size;
    std::vector<int> shape = m.shape.empty() ? std::vector<int>{1} : m.shape;
    sd->Add(m.name, Tensor::FromVector(shape, data), m.is_buffer);
  }
  return true;
}

bool DecodeRoadRep(Cursor* c, Tensor* out, std::string* error) {
  uint32_t rows = 0;
  uint32_t cols = 0;
  if (!c->GetU32(&rows) || !c->GetU32(&cols)) {
    return SetError(error, "truncated road-rep header");
  }
  if (rows == 0 || cols == 0 || rows > (1u << 28) || cols > (1u << 28)) {
    return SetError(error, "implausible road-rep shape");
  }
  std::vector<float> data;
  if (!c->GetFloats(&data, static_cast<size_t>(rows) * cols)) {
    return SetError(error, "truncated road-rep data");
  }
  *out = Tensor::FromVector({static_cast<int>(rows), static_cast<int>(cols)},
                            data);
  return true;
}

bool DecodeTrainerState(Cursor* c, TrainerState* ts, std::string* error) {
  uint64_t moments = 0;
  if (!c->GetU64(&ts->epochs_done) || !c->GetU64(&ts->training_steps) ||
      !c->GetI64(&ts->adam.t) || !c->GetU64(&moments)) {
    return SetError(error, "truncated trainer-state header");
  }
  if (!c->GetFloats(&ts->adam.m, moments) ||
      !c->GetFloats(&ts->adam.v, moments)) {
    return SetError(error, "truncated optimiser moment arenas");
  }
  return true;
}

}  // namespace

bool WriteSnapshot(const std::string& path, const Snapshot& snap,
                   std::string* error) {
  struct Section {
    uint32_t type;
    std::vector<unsigned char> payload;
  };
  std::vector<Section> sections;
  sections.push_back({kSectionStateDict, EncodeStateDict(snap.state)});
  if (snap.has_road_rep) {
    sections.push_back({kSectionRoadRep, EncodeRoadRep(snap.road_rep)});
  }
  if (snap.has_trainer_state) {
    sections.push_back({kSectionTrainerState, EncodeTrainerState(snap.trainer)});
  }
  if (!snap.model_name.empty()) {
    std::vector<unsigned char> meta;
    PutString(&meta, snap.model_name);
    sections.push_back({kSectionMeta, std::move(meta)});
  }

  std::vector<unsigned char> blob;
  blob.insert(blob.end(), kMagic, kMagic + sizeof(kMagic));
  PutU32(&blob, kFormatVersion);
  PutU32(&blob, kEndianTag);
  PutU32(&blob, static_cast<uint32_t>(sections.size()));
  PutU32(&blob, 0);  // reserved
  for (const Section& s : sections) {
    PutU32(&blob, s.type);
    PutU32(&blob, 0);  // reserved (alignment/flags for future versions)
    PutU64(&blob, s.payload.size());
    blob.insert(blob.end(), s.payload.begin(), s.payload.end());
  }

  // Atomic publish: a concurrent reader sees either the old file or the
  // complete new one, never a prefix.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return SetError(error, "cannot open '" + tmp + "'");
  const size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != blob.size() || !flushed) {
    std::remove(tmp.c_str());
    return SetError(error, "short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return SetError(error, "cannot rename '" + tmp + "' to '" + path + "'");
  }
  return true;
}

bool ReadSnapshot(const std::string& path, Snapshot* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return SetError(error, "cannot open '" + path + "'");
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (len < 0) {
    std::fclose(f);
    return SetError(error, "cannot stat '" + path + "'");
  }
  std::vector<unsigned char> blob(static_cast<size_t>(len));
  const size_t got = blob.empty() ? 0 : std::fread(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  if (got != blob.size()) return SetError(error, "short read from '" + path + "'");

  Cursor c(blob.data(), blob.size());
  char magic[sizeof(kMagic)];
  if (!c.Skip(0) || blob.size() < sizeof(kMagic)) {
    return SetError(error, "file too small for header");
  }
  std::memcpy(magic, blob.data(), sizeof(kMagic));
  c.Skip(sizeof(kMagic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return SetError(error, "bad magic (not a snapshot file)");
  }
  uint32_t version = 0;
  uint32_t endian = 0;
  uint32_t section_count = 0;
  uint32_t reserved = 0;
  if (!c.GetU32(&version) || !c.GetU32(&endian) || !c.GetU32(&section_count) ||
      !c.GetU32(&reserved)) {
    return SetError(error, "truncated header");
  }
  if (endian != kEndianTag) {
    return SetError(error, "endianness mismatch (file written on a foreign-"
                           "endian machine, or corrupted header)");
  }
  if (version != kFormatVersion) {
    return SetError(error, "unsupported format version " +
                               std::to_string(version) + " (reader supports " +
                               std::to_string(kFormatVersion) + ")");
  }

  Snapshot snap;
  bool saw_state_dict = false;
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t type = 0;
    uint32_t sreserved = 0;
    uint64_t payload = 0;
    if (!c.GetU32(&type) || !c.GetU32(&sreserved) || !c.GetU64(&payload)) {
      return SetError(error, "truncated section table");
    }
    if (payload > c.remaining()) {
      return SetError(error, "section " + std::to_string(type) +
                                 " claims " + std::to_string(payload) +
                                 " bytes, only " +
                                 std::to_string(c.remaining()) + " remain");
    }
    Cursor sc(blob.data() + c.pos(), static_cast<size_t>(payload));
    c.Skip(static_cast<size_t>(payload));
    switch (type) {
      case kSectionStateDict:
        if (saw_state_dict) return SetError(error, "duplicate state-dict section");
        if (!DecodeStateDict(&sc, &snap.state, error)) return false;
        saw_state_dict = true;
        break;
      case kSectionRoadRep:
        if (!DecodeRoadRep(&sc, &snap.road_rep, error)) return false;
        snap.has_road_rep = true;
        break;
      case kSectionTrainerState:
        if (!DecodeTrainerState(&sc, &snap.trainer, error)) return false;
        snap.has_trainer_state = true;
        break;
      case kSectionMeta:
        if (!sc.GetString(&snap.model_name, kMaxNameLen)) {
          return SetError(error, "truncated meta section");
        }
        break;
      default:
        // Unknown optional section from a newer writer: skip by size.
        break;
    }
  }
  if (!saw_state_dict) {
    return SetError(error, "no state-dict section (every snapshot carries one)");
  }
  *out = std::move(snap);
  return true;
}

bool ApplyStateDict(const StateDict& own, const StateDict& loaded,
                    std::string* error) {
  // Validate everything before copying anything: a rejected snapshot must
  // leave the live model exactly as it was.
  for (const StateEntry& e : own) {
    const StateEntry* s = loaded.Find(e.name);
    if (s == nullptr) {
      return SetError(error, "missing entry '" + e.name + "'");
    }
    if (s->tensor.shape() != e.tensor.shape()) {
      auto shape_str = [](const std::vector<int>& shape) {
        std::string txt = "(";
        for (size_t i = 0; i < shape.size(); ++i) {
          txt += (i ? "," : "") + std::to_string(shape[i]);
        }
        return txt + ")";
      };
      return SetError(error, "shape mismatch for '" + e.name + "': file has " +
                                 shape_str(s->tensor.shape()) +
                                 ", model expects " +
                                 shape_str(e.tensor.shape()));
    }
  }
  for (const StateEntry& s : loaded) {
    if (own.Find(s.name) == nullptr) {
      return SetError(error, "unexpected entry '" + s.name +
                                 "' (snapshot of a different architecture?)");
    }
  }
  for (const StateEntry& e : own) {
    const StateEntry* s = loaded.Find(e.name);
    Tensor dst = e.tensor;  // shared impl: writes hit the live model
    std::copy(s->tensor.data().begin(), s->tensor.data().end(),
              dst.data().begin());
  }
  return true;
}

}  // namespace snapshot
}  // namespace rntraj
