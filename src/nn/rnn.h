#ifndef RNTRAJ_NN_RNN_H_
#define RNTRAJ_NN_RNN_H_

#include <vector>

#include "src/nn/init.h"
#include "src/nn/module.h"
#include "src/tensor/ops.h"

/// \file rnn.h
/// Recurrent cells and sequence wrappers: GRU (paper Eq. (1)), LSTM, and a
/// bidirectional LSTM used by the t2vec baseline.
///
/// Cells operate on row-batches: x is (n, input) and h is (n, hidden), so the
/// same cell both steps a single sequence (n = 1) and advances |V| independent
/// grid sequences at once inside GridGNN (n = |V|).

namespace rntraj {

/// Gated recurrent unit cell (Cho et al., as written in paper Eq. (1)).
class GruCell : public Module {
 public:
  GruCell(int input_size, int hidden_size)
      : input_(input_size), hidden_(hidden_size) {
    wx_ = RegisterParameter("wx", RnnUniform({input_size, 3 * hidden_size},
                                             hidden_size));
    wh_zr_ = RegisterParameter("wh_zr", RnnUniform({hidden_size, 2 * hidden_size},
                                                   hidden_size));
    wh_c_ = RegisterParameter("wh_c", RnnUniform({hidden_size, hidden_size},
                                                 hidden_size));
    bias_ = RegisterParameter("bias", Tensor::Zeros({3 * hidden_size}));
  }

  /// One step: x (n, input), h (n, hidden) -> h' (n, hidden).
  Tensor Forward(const Tensor& x, const Tensor& h) const {
    Tensor xw = Add(Matmul(x, wx_), bias_);           // (n, 3d)
    Tensor hw = Matmul(h, wh_zr_);                    // (n, 2d)
    Tensor z = Sigmoid(Add(SliceCols(xw, 0, hidden_), SliceCols(hw, 0, hidden_)));
    Tensor r = Sigmoid(Add(SliceCols(xw, hidden_, hidden_),
                           SliceCols(hw, hidden_, hidden_)));
    Tensor c = Tanh(Add(SliceCols(xw, 2 * hidden_, hidden_),
                        Matmul(Mul(r, h), wh_c_)));
    // h' = (1 - z) * h + z * c
    return Add(Mul(AddScalar(Neg(z), 1.0f), h), Mul(z, c));
  }

  int input_size() const { return input_; }
  int hidden_size() const { return hidden_; }

 private:
  int input_;
  int hidden_;
  Tensor wx_;
  Tensor wh_zr_;
  Tensor wh_c_;
  Tensor bias_;
};

/// Long short-term memory cell.
class LstmCell : public Module {
 public:
  LstmCell(int input_size, int hidden_size)
      : input_(input_size), hidden_(hidden_size) {
    wx_ = RegisterParameter("wx", RnnUniform({input_size, 4 * hidden_size},
                                             hidden_size));
    wh_ = RegisterParameter("wh", RnnUniform({hidden_size, 4 * hidden_size},
                                             hidden_size));
    bias_ = RegisterParameter("bias", Tensor::Zeros({4 * hidden_size}));
  }

  struct State {
    Tensor h;
    Tensor c;
  };

  /// One step: x (n, input), state {h, c} each (n, hidden).
  State Forward(const Tensor& x, const State& s) const {
    Tensor gates = Add(Add(Matmul(x, wx_), Matmul(s.h, wh_)), bias_);
    Tensor i = Sigmoid(SliceCols(gates, 0, hidden_));
    Tensor f = Sigmoid(SliceCols(gates, hidden_, hidden_));
    Tensor g = Tanh(SliceCols(gates, 2 * hidden_, hidden_));
    Tensor o = Sigmoid(SliceCols(gates, 3 * hidden_, hidden_));
    Tensor c = Add(Mul(f, s.c), Mul(i, g));
    Tensor h = Mul(o, Tanh(c));
    return {h, c};
  }

  int hidden_size() const { return hidden_; }

 private:
  int input_;
  int hidden_;
  Tensor wx_;
  Tensor wh_;
  Tensor bias_;
};

/// Unidirectional GRU over a sequence laid out as rows.
class Gru : public Module {
 public:
  Gru(int input_size, int hidden_size) : cell_(input_size, hidden_size) {
    RegisterChild("cell", &cell_);
  }

  struct Output {
    Tensor outputs;  ///< (l, hidden): h_t for every step.
    Tensor final_h;  ///< (1, hidden).
  };

  /// x: (l, input); h0: optional (1, hidden) initial state.
  Output Forward(const Tensor& x, const Tensor& h0 = Tensor()) const {
    const int l = x.dim(0);
    Tensor h = h0.defined() ? h0 : Tensor::Zeros({1, cell_.hidden_size()});
    std::vector<Tensor> steps;
    steps.reserve(l);
    for (int t = 0; t < l; ++t) {
      h = cell_.Forward(SliceRows(x, t, 1), h);
      steps.push_back(h);
    }
    return {ConcatRows(steps), h};
  }

  const GruCell& cell() const { return cell_; }

 private:
  GruCell cell_;
};

/// Unidirectional LSTM over a sequence laid out as rows.
class Lstm : public Module {
 public:
  Lstm(int input_size, int hidden_size) : cell_(input_size, hidden_size) {
    RegisterChild("cell", &cell_);
  }

  struct Output {
    Tensor outputs;  ///< (l, hidden).
    LstmCell::State final_state;
  };

  Output Forward(const Tensor& x) const {
    const int l = x.dim(0);
    LstmCell::State s{Tensor::Zeros({1, cell_.hidden_size()}),
                      Tensor::Zeros({1, cell_.hidden_size()})};
    std::vector<Tensor> steps;
    steps.reserve(l);
    for (int t = 0; t < l; ++t) {
      s = cell_.Forward(SliceRows(x, t, 1), s);
      steps.push_back(s.h);
    }
    return {ConcatRows(steps), s};
  }

 private:
  LstmCell cell_;
};

/// Bidirectional LSTM: concatenated forward/backward hidden states (l, 2d).
class BiLstm : public Module {
 public:
  BiLstm(int input_size, int hidden_size)
      : fwd_(input_size, hidden_size), bwd_(input_size, hidden_size) {
    RegisterChild("fwd", &fwd_);
    RegisterChild("bwd", &bwd_);
  }

  Tensor Forward(const Tensor& x) const {
    const int l = x.dim(0);
    Tensor f = fwd_.Forward(x).outputs;
    // Reverse the rows, run, reverse back.
    std::vector<Tensor> rev;
    rev.reserve(l);
    for (int t = l - 1; t >= 0; --t) rev.push_back(SliceRows(x, t, 1));
    Tensor b = bwd_.Forward(ConcatRows(rev)).outputs;
    std::vector<Tensor> unrev;
    unrev.reserve(l);
    for (int t = l - 1; t >= 0; --t) unrev.push_back(SliceRows(b, t, 1));
    return ConcatCols({f, ConcatRows(unrev)});
  }

 private:
  Lstm fwd_;
  Lstm bwd_;
};

}  // namespace rntraj

#endif  // RNTRAJ_NN_RNN_H_
