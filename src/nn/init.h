#ifndef RNTRAJ_NN_INIT_H_
#define RNTRAJ_NN_INIT_H_

#include <cmath>

#include "src/tensor/tensor.h"

/// \file init.h
/// Parameter initialisation helpers.

namespace rntraj {

/// Xavier/Glorot uniform init for a (fan_in, fan_out) weight matrix.
inline Tensor XavierUniform(int fan_in, int fan_out) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Uniform({fan_in, fan_out}, -limit, limit);
}

/// Uniform init commonly used for recurrent weights: U(-1/sqrt(d), 1/sqrt(d)).
inline Tensor RnnUniform(const std::vector<int>& shape, int hidden) {
  const float limit = 1.0f / std::sqrt(static_cast<float>(hidden));
  return Tensor::Uniform(shape, -limit, limit);
}

/// Small-Gaussian init for embedding tables.
inline Tensor EmbeddingInit(int num, int dim) {
  return Tensor::Randn({num, dim}, 0.1f);
}

}  // namespace rntraj

#endif  // RNTRAJ_NN_INIT_H_
