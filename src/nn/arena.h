#ifndef RNTRAJ_NN_ARENA_H_
#define RNTRAJ_NN_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/nn/state_dict.h"

/// \file arena.h
/// Flattened parameter arena: every entry of a StateDict collapsed into one
/// contiguous float buffer with per-entry views. A snapshot of the model is
/// then a single read/write of `flat()`, and optimizer state (the Adam
/// moment arenas in optim.h) can share the same layout so checkpoints carry
/// it as two more flat arrays — no per-parameter bookkeeping.

namespace rntraj {

/// One entry's slice of the arena: [offset, offset + size) in `flat()`.
struct ArenaView {
  std::string name;
  std::vector<int> shape;
  size_t offset = 0;
  size_t size = 0;
  bool is_buffer = false;
};

/// Contiguous storage for a module tree's state, laid out in the
/// StateDict's deterministic registration order.
///
/// The arena owns its buffer; module tensors keep theirs (the tensor
/// library's autograd storage is per-tensor), so Gather/Scatter copy.
/// Views alias the arena buffer directly: writing through `ViewOf` mutates
/// the bytes the next `flat()` read serialises — the write-through property
/// the snapshot writer relies on.
class ParameterArena {
 public:
  ParameterArena() = default;

  /// Builds the layout from `sd` and gathers its current values.
  explicit ParameterArena(const rntraj::StateDict& sd) {
    size_t off = 0;
    views_.reserve(sd.size());
    for (const StateEntry& e : sd) {
      const size_t n = static_cast<size_t>(e.tensor.size());
      index_.emplace(e.name, views_.size());
      views_.push_back({e.name, e.tensor.shape(), off, n, e.is_buffer});
      off += n;
    }
    flat_.assign(off, 0.0f);
    GatherFrom(sd);
  }

  /// Total scalar count across all views.
  size_t size() const { return flat_.size(); }
  bool empty() const { return flat_.empty(); }

  /// The whole arena, one contiguous buffer.
  std::vector<float>& flat() { return flat_; }
  const std::vector<float>& flat() const { return flat_; }

  const std::vector<ArenaView>& views() const { return views_; }

  /// Layout lookup by name; nullptr when absent.
  const ArenaView* Find(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : &views_[it->second];
  }

  /// Mutable pointer to an entry's slice of the flat buffer; nullptr when
  /// absent. Writes land in the arena (write-through).
  float* ViewOf(const std::string& name) {
    const ArenaView* v = Find(name);
    return v == nullptr ? nullptr : flat_.data() + v->offset;
  }
  const float* ViewOf(const std::string& name) const {
    const ArenaView* v = Find(name);
    return v == nullptr ? nullptr : flat_.data() + v->offset;
  }

  /// Copies current tensor values into the arena. `sd` must have exactly
  /// the construction layout (same names, same order, same shapes) — the
  /// arena is a view of one architecture, not a format converter.
  void GatherFrom(const rntraj::StateDict& sd) {
    CheckLayout(sd);
    for (size_t i = 0; i < views_.size(); ++i) {
      const auto& d = sd[i].tensor.data();
      std::copy(d.begin(), d.end(), flat_.begin() + views_[i].offset);
    }
  }

  /// Copies arena values back into the dict's tensors (in place: tensor
  /// identity survives, optimizer handles stay valid).
  void ScatterTo(const rntraj::StateDict& sd) const {
    CheckLayout(sd);
    for (size_t i = 0; i < views_.size(); ++i) {
      Tensor t = sd[i].tensor;  // shared impl: writes hit the module tensor
      std::copy(flat_.begin() + views_[i].offset,
                flat_.begin() + views_[i].offset + views_[i].size,
                t.data().begin());
    }
  }

 private:
  void CheckLayout(const rntraj::StateDict& sd) const {
    RNTRAJ_CHECK_MSG(sd.size() == views_.size(),
                     "ParameterArena: dict has " << sd.size()
                                                 << " entries, arena layout "
                                                 << views_.size());
    for (size_t i = 0; i < views_.size(); ++i) {
      RNTRAJ_CHECK_MSG(sd[i].name == views_[i].name,
                       "ParameterArena: entry " << i << " is '" << sd[i].name
                                                << "', layout expects '"
                                                << views_[i].name << "'");
      RNTRAJ_CHECK_MSG(sd[i].tensor.shape() == views_[i].shape,
                       "ParameterArena: shape mismatch for '" << sd[i].name
                                                              << "'");
    }
  }

  std::vector<float> flat_;
  std::vector<ArenaView> views_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace rntraj

#endif  // RNTRAJ_NN_ARENA_H_
