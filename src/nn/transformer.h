#ifndef RNTRAJ_NN_TRANSFORMER_H_
#define RNTRAJ_NN_TRANSFORMER_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/nn/attention.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"
#include "src/nn/norm.h"
#include "src/tensor/ops.h"

/// \file transformer.h
/// Standard transformer encoder layer (paper §IV-E): post-norm residual
/// multi-head attention + position-wise feed-forward, plus sinusoidal
/// position encodings (paper Eq. (12)).

namespace rntraj {

/// Position-wise feed-forward: ReLU MLP (paper Eq. (11)).
class FeedForward : public Module {
 public:
  FeedForward(int model_dim, int inner_dim)
      : lin1_(model_dim, inner_dim), lin2_(inner_dim, model_dim) {
    RegisterChild("lin1", &lin1_);
    RegisterChild("lin2", &lin2_);
  }

  Tensor Forward(const Tensor& x) const {
    // Inner projection through the fused bias+relu emission point.
    return lin2_.Forward(lin1_.ForwardAct(x, fusion::Act::kRelu));
  }

 private:
  Linear lin1_;
  Linear lin2_;
};

/// One transformer encoder layer with post-layer-norm residual connections:
/// y = LN(x + MHA(x)); out = LN(y + FFN(y)).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int model_dim, int num_heads, int ffn_dim)
      : attn_(model_dim, num_heads),
        ffn_(model_dim, ffn_dim),
        ln1_(model_dim),
        ln2_(model_dim) {
    RegisterChild("attn", &attn_);
    RegisterChild("ffn", &ffn_);
    RegisterChild("ln1", &ln1_);
    RegisterChild("ln2", &ln2_);
  }

  Tensor Forward(const Tensor& x) const {
    Tensor y = ln1_.ForwardResidual(x, attn_.Forward(x));
    return ln2_.ForwardResidual(y, ffn_.Forward(y));
  }

  /// Padded-batch layer: attention is block-diagonal + length-masked (see
  /// MultiHeadSelfAttention::ForwardBatched); the residual adds, layer norms
  /// and feed-forward are row-local, so they run over the whole (B*pad, d)
  /// storage as fat GEMMs. Layer norms are masked to keep padding rows
  /// exactly zero across the stack. Valid rows match Forward on each sample
  /// alone within float rounding (see ForwardBatched in attention.h).
  /// `row_mask` is the batch's PaddedBatch::RowMask() (passed in so callers
  /// stacking layers build it once).
  PaddedBatch ForwardBatched(const PaddedBatch& x,
                             const Tensor& row_mask) const {
    Tensor y = ln1_.ForwardResidual(x.data, attn_.ForwardBatched(x), row_mask);
    Tensor out = ln2_.ForwardResidual(y, ffn_.Forward(y), row_mask);
    return x.WithData(std::move(out));
  }

 private:
  MultiHeadSelfAttention attn_;
  FeedForward ffn_;
  LayerNorm ln1_;
  LayerNorm ln2_;
};

/// Constant sinusoidal position-encoding matrix (l, d); not learned.
inline Tensor SinusoidalPositionEncoding(int length, int dim) {
  Tensor pe = Tensor::Zeros({length, dim});
  for (int pos = 0; pos < length; ++pos) {
    for (int i = 0; i < dim; i += 2) {
      const double angle =
          pos / std::pow(10000.0, static_cast<double>(i) / dim);
      pe.data()[static_cast<size_t>(pos) * dim + i] =
          static_cast<float>(std::sin(angle));
      if (i + 1 < dim) {
        pe.data()[static_cast<size_t>(pos) * dim + i + 1] =
            static_cast<float>(std::cos(angle));
      }
    }
  }
  return pe;
}

/// Stacked position encodings for a ragged batch: the (sum(lengths), d)
/// constant whose rows restart the sinusoidal table at every sample boundary,
/// so Add(h0_flat, ...) matches the per-sample Add(h0, PE(l, d)) exactly.
inline Tensor StackedPositionEncoding(const std::vector<int>& lengths,
                                      int dim) {
  const int max_len = *std::max_element(lengths.begin(), lengths.end());
  const Tensor pe = SinusoidalPositionEncoding(max_len, dim);
  int total = 0;
  for (int l : lengths) total += l;
  Tensor out = Tensor::Zeros({total, dim});
  size_t off = 0;
  for (int l : lengths) {
    std::copy(pe.data().begin(), pe.data().begin() + static_cast<size_t>(l) * dim,
              out.data().begin() + off);
    off += static_cast<size_t>(l) * dim;
  }
  return out;
}

}  // namespace rntraj

#endif  // RNTRAJ_NN_TRANSFORMER_H_
