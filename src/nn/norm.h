#ifndef RNTRAJ_NN_NORM_H_
#define RNTRAJ_NN_NORM_H_

#include <mutex>
#include <vector>

#include "src/nn/module.h"
#include "src/tensor/fusion.h"
#include "src/tensor/ops.h"

/// \file norm.h
/// LayerNorm (transformer encoder) and GraphNorm (paper Eq. (8)-(9)), the
/// batch-style normalisation for graph features with temporal dependency.

namespace rntraj {

/// Per-row layer normalisation with learned scale/shift.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim, float eps = 1e-5f) : dim_(dim), eps_(eps) {
    gamma_ = RegisterParameter("gamma", Tensor::Full({dim}, 1.0f));
    beta_ = RegisterParameter("beta", Tensor::Zeros({dim}));
  }

  /// x: (n, d) -> (n, d), each row standardised.
  Tensor Forward(const Tensor& x) const {
    Tensor mu = RowMean(x);                                  // (n,1)
    Tensor xc = Sub(x, mu);                                  // col broadcast
    Tensor var = RowMean(Square(xc));                        // (n,1)
    Tensor y = Div(xc, Sqrt(AddScalar(var, eps_)));          // col broadcast
    return Add(Mul(y, gamma_), beta_);                       // row broadcast
  }

  /// Masked variant for padded batches: normalises every row (LayerNorm is
  /// row-local, so padding never contaminates valid rows), then re-zeroes the
  /// padding rows via `row_mask` ((n,1), 1 for valid rows, 0 for padding) so
  /// the all-padding-rows-are-zero invariant survives the affine shift beta.
  Tensor Forward(const Tensor& x, const Tensor& row_mask) const {
    return Mul(Forward(x), row_mask);
  }

  /// LayerNorm(a + b): the post-norm residual sub-layer routed through the
  /// fusion peephole — one fused residual+normalise kernel inside a
  /// FusionScope, the exact Add -> Forward chain outside one.
  Tensor ForwardResidual(const Tensor& a, const Tensor& b) const {
    return fusion::ResidualLayerNorm(a, b, gamma_, beta_, eps_);
  }

  /// Masked padded-batch overload; padding rows (row_mask 0) stay zero.
  Tensor ForwardResidual(const Tensor& a, const Tensor& b,
                         const Tensor& row_mask) const {
    return fusion::ResidualLayerNorm(a, b, gamma_, beta_, eps_, row_mask);
  }

 private:
  int dim_;
  float eps_;
  Tensor gamma_;
  Tensor beta_;
};

/// GraphNorm over the node features of a batch of sub-graphs (paper Eq. (9)).
///
/// The mean is computed per-dimension over the *graph-pooled* features M
/// (Eq. (8)) while the variance is computed over all node features — exactly
/// as written in the paper. Statistics cover all sub-graphs of the mini-batch
/// (here: all timesteps of one trajectory, the b=1 degenerate case documented
/// in DESIGN.md). Running estimates are kept for inference.
class GraphNorm : public Module {
 public:
  explicit GraphNorm(int dim, float eps = 1e-5f, float momentum = 0.1f)
      : dim_(dim), eps_(eps), momentum_(momentum) {
    gamma_ = RegisterParameter("gamma", Tensor::Full({dim}, 1.0f));
    beta_ = RegisterParameter("beta", Tensor::Zeros({dim}));
    // Running statistics are persistent buffers: snapshots must carry them
    // or a restored model would normalise eval-mode forwards differently.
    running_mean_ = RegisterBuffer("running_mean", Tensor::Zeros({dim}));
    running_var_ = RegisterBuffer("running_var", Tensor::Full({dim}, 1.0f));
  }

  /// nodes: (sum of sub-graph sizes, d); sizes: node count per sub-graph.
  Tensor Forward(const Tensor& nodes, const std::vector<int>& sizes) {
    Tensor mu;
    Tensor var;
    if (training()) {
      // Eq. (8): per-graph mean pooling, stacked to M (num_graphs, d).
      std::vector<Tensor> means;
      means.reserve(sizes.size());
      int off = 0;
      for (int s : sizes) {
        means.push_back(ColMean(SliceRows(nodes, off, s)));
        off += s;
      }
      RNTRAJ_CHECK_MSG(off == nodes.dim(0), "GraphNorm: sizes do not cover nodes");
      Tensor m = ConcatRows(means);
      mu = ColMean(m);                                       // (d)
      var = ColMean(Square(Sub(nodes, mu)));                 // (d)
      UpdateRunning(mu, var);
    } else {
      mu = running_mean_;
      var = running_var_;
    }
    Tensor norm = Div(Sub(nodes, mu), Sqrt(AddScalar(var, eps_)));
    // Affine tail through the fusion peephole (exact same chain when off).
    return fusion::ScaleShiftRows(norm, gamma_, beta_);
  }

 private:
  void UpdateRunning(const Tensor& mu, const Tensor& var) {
    // Concurrent training forwards (trainer batch_threads, serving warmup)
    // all fold their batch statistics into the shared running estimates; the
    // lock makes the read-modify-write race-free. The fold order across
    // threads is scheduler-dependent and an EMA is non-commutative, so
    // parallel training yields running (eval-mode) stats that can differ
    // run-to-run at reordering magnitude — training-mode outputs, which use
    // batch statistics, are unaffected.
    std::lock_guard<std::mutex> lock(running_mu_);
    for (int j = 0; j < dim_; ++j) {
      running_mean_.data()[j] =
          (1.0f - momentum_) * running_mean_.data()[j] + momentum_ * mu.at(j);
      running_var_.data()[j] =
          (1.0f - momentum_) * running_var_.data()[j] + momentum_ * var.at(j);
    }
  }

  int dim_;
  float eps_;
  float momentum_;
  Tensor gamma_;
  Tensor beta_;
  Tensor running_mean_;
  Tensor running_var_;
  std::mutex running_mu_;
};

}  // namespace rntraj

#endif  // RNTRAJ_NN_NORM_H_
