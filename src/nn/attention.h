#ifndef RNTRAJ_NN_ATTENTION_H_
#define RNTRAJ_NN_ATTENTION_H_

#include <cmath>
#include <vector>

#include "src/nn/linear.h"
#include "src/nn/module.h"
#include "src/tensor/fusion.h"
#include "src/tensor/ops.h"
#include "src/tensor/padded_batch.h"

/// \file attention.h
/// Scaled dot-product multi-head self-attention (paper Eq. (10)) and the
/// additive (Bahdanau) attention used by the decoder (paper Eq. (14)).

namespace rntraj {

/// Multi-head self-attention over a sequence of rows.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int model_dim, int num_heads)
      : d_(model_dim),
        heads_(num_heads),
        dh_(model_dim / num_heads),
        wq_(model_dim, model_dim, /*bias=*/false),
        wk_(model_dim, model_dim, /*bias=*/false),
        wv_(model_dim, model_dim, /*bias=*/false),
        wo_(model_dim, model_dim, /*bias=*/false) {
    RNTRAJ_CHECK_MSG(model_dim % num_heads == 0,
                     "model_dim " << model_dim << " % heads " << num_heads);
    RegisterChild("wq", &wq_);
    RegisterChild("wk", &wk_);
    RegisterChild("wv", &wv_);
    RegisterChild("wo", &wo_);
  }

  /// x: (l, d). `additive_mask` (optional, (l, l), no grad) is added to the
  /// attention logits (use -1e9 entries to forbid positions).
  Tensor Forward(const Tensor& x, const Tensor& additive_mask = Tensor()) const {
    const int l = x.dim(0);
    Tensor q = wq_.Forward(x);
    Tensor k = wk_.Forward(x);
    Tensor v = wv_.Forward(x);
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh_));
    std::vector<Tensor> heads;
    heads.reserve(heads_);
    for (int h = 0; h < heads_; ++h) {
      Tensor qh = SliceCols(q, h * dh_, dh_);
      Tensor kh = SliceCols(k, h * dh_, dh_);
      Tensor vh = SliceCols(v, h * dh_, dh_);
      // Q K^T without materialising the transpose; the scale and additive
      // mask fold into the fused softmax emission point.
      Tensor scores = MatmulTransB(qh, kh);  // (l, l)
      Tensor attn = additive_mask.defined()
                        ? fusion::ScaleMaskedSoftmax(scores, scale,
                                                     additive_mask)
                        : fusion::ScaleSoftmax(scores, scale);
      heads.push_back(Matmul(attn, vh));  // (l, dh)
    }
    (void)l;
    return wo_.Forward(ConcatCols(heads));
  }

  /// Padded-batch self-attention: one pass for all samples. The q/k/v/o
  /// projections run as single fat GEMMs over the (B*pad_len, d) storage;
  /// scores are block-diagonal (BatchedMatmulTransB keeps each sample's
  /// queries on its own keys) and the length-masked softmax restricts every
  /// row to the sample's valid keys, zeroing padding query rows. Per valid
  /// row this matches Forward on the sample alone to float rounding (the
  /// blocked GEMM's row-peel kernels may contract FMAs differently at
  /// different heights; everything else is the same accumulation order).
  Tensor ForwardBatched(const PaddedBatch& x) const {
    const int batch = x.batch();
    const std::vector<int> row_valid = x.RowValidCounts();
    Tensor q = wq_.Forward(x.data);
    Tensor k = wk_.Forward(x.data);
    Tensor v = wv_.Forward(x.data);
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh_));
    std::vector<Tensor> heads;
    heads.reserve(heads_);
    for (int h = 0; h < heads_; ++h) {
      Tensor qh = SliceCols(q, h * dh_, dh_);
      Tensor kh = SliceCols(k, h * dh_, dh_);
      Tensor vh = SliceCols(v, h * dh_, dh_);
      Tensor scores = BatchedMatmulTransB(qh, kh, batch);
      Tensor attn = fusion::ScaleLengthMaskedSoftmax(scores, scale, row_valid);
      heads.push_back(BatchedMatmul(attn, vh, batch));  // (B*pad, dh)
    }
    return wo_.Forward(ConcatCols(heads));
  }

 private:
  int d_;
  int heads_;
  int dh_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

/// Additive attention: score_i = v^T tanh(W_g q + W_h k_i) (paper Eq. (14)).
class AdditiveAttention : public Module {
 public:
  explicit AdditiveAttention(int dim) : dim_(dim) {
    wg_ = RegisterParameter("wg", XavierUniform(dim, dim));
    wh_ = RegisterParameter("wh", XavierUniform(dim, dim));
    v_ = RegisterParameter("v", XavierUniform(dim, 1));
  }

  struct Output {
    Tensor weights;  ///< (1, l) attention distribution.
    Tensor context; ///< (1, d) weighted sum of keys.
  };

  /// Key-side projection shared by every query against the same keys;
  /// precompute once per decoded trajectory (the decoder queries the same
  /// encoder outputs at every step).
  struct CachedKeys {
    Tensor keys;  ///< (l, d).
    Tensor kw;    ///< (l, d) = keys W_h.
  };

  CachedKeys Precompute(const Tensor& keys) const {
    return {keys, Matmul(keys, wh_)};
  }

  /// query: (1, d) against precomputed keys.
  Output Forward(const Tensor& query, const CachedKeys& cached) const {
    const int l = cached.keys.dim(0);
    Tensor qw = Matmul(query, wg_);                       // (1, d)
    // Fused row broadcast of the query over every key row (no (l, d)
    // ExpandRows temporary on the per-decoder-step path).
    Tensor t = Tanh(AddRowBroadcast(cached.kw, qw));
    Tensor scores = Reshape(Matmul(t, v_), {1, l});       // (1, l)
    Tensor alpha = SoftmaxRows(scores);
    return {alpha, Matmul(alpha, cached.keys)};
  }

  /// query: (1, d); keys: (l, d).
  Output Forward(const Tensor& query, const Tensor& keys) const {
    return Forward(query, Precompute(keys));
  }

  /// Key-side projection for a padded batch of key blocks: one fat
  /// (B*pad_len, d) GEMM shared by every decoding step of every lane
  /// (padding key rows are zero and W_h has no bias, so they stay zero).
  struct CachedKeysBatch {
    Tensor keys;               ///< (B*pad_len, d), padding rows zero.
    Tensor kw;                 ///< (B*pad_len, d) = keys W_h.
    std::vector<int> lengths;  ///< Valid key rows per block.
    int pad_len = 0;           ///< Block height.
  };

  CachedKeysBatch PrecomputeBatch(const PaddedBatch& keys) const {
    return {keys.data, Matmul(keys.data, wh_), keys.lengths, keys.pad_len};
  }

  struct BatchOutput {
    Tensor weights;  ///< (n, pad_len); row i zero beyond lengths[i].
    Tensor context;  ///< (n, d) weighted key sums.
  };

  /// One additive-attention pass for n queries against the first n key
  /// blocks: queries (n, d), one per leading block. n may be smaller than
  /// the cached batch — the early-finish lane compaction of the batched
  /// decoder keeps active lanes as a prefix and shrinks n as lanes finish.
  /// Per valid row this matches Forward on the lane alone to float rounding
  /// (fat GEMMs at different heights; the adds, tanh and softmax prefix are
  /// bit-identical — see LengthMaskedSoftmaxRows).
  BatchOutput ForwardBatched(const Tensor& queries,
                             const CachedKeysBatch& cached) const {
    const int n = queries.dim(0);
    const int pad = cached.pad_len;
    RNTRAJ_CHECK_MSG(n <= static_cast<int>(cached.lengths.size()),
                     "additive_attention_batched: " << n << " queries vs "
                         << cached.lengths.size() << " key blocks");
    Tensor kw = cached.kw;
    Tensor keys = cached.keys;
    if (n * pad < kw.dim(0)) {
      kw = SliceRows(kw, 0, n * pad);
      keys = SliceRows(keys, 0, n * pad);
    }
    Tensor qw = Matmul(queries, wg_);                      // (n, d)
    Tensor t = Tanh(AddBlockBroadcast(kw, qw, pad));       // (n*pad, d)
    Tensor scores = Reshape(Matmul(t, v_), {n, pad});      // (n, pad)
    std::vector<int> valid(cached.lengths.begin(), cached.lengths.begin() + n);
    Tensor alpha = LengthMaskedSoftmaxRows(scores, valid);
    // Padding keys are zero and their weights are zero, so the block product
    // over the full padded height reproduces the valid-prefix product.
    return {alpha, BatchedMatmul(alpha, keys, n)};
  }

 private:
  int dim_;
  Tensor wg_;
  Tensor wh_;
  Tensor v_;
};

}  // namespace rntraj

#endif  // RNTRAJ_NN_ATTENTION_H_
