#ifndef RNTRAJ_NN_OPTIM_H_
#define RNTRAJ_NN_OPTIM_H_

#include <cmath>
#include <vector>

#include "src/tensor/tensor.h"

/// \file optim.h
/// First-order optimisers (SGD, Adam — the paper trains with Adam) and global
/// gradient-norm clipping.

namespace rntraj {

/// Interface for parameter update rules.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored on parameters.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

 protected:
  std::vector<Tensor> params_;
};

/// Plain stochastic gradient descent.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr)
      : Optimizer(std::move(params)), lr_(lr) {}

  void Step() override {
    for (auto& p : params_) {
      auto& g = p.grad();
      auto& d = p.data();
      for (size_t i = 0; i < d.size(); ++i) d[i] -= lr_ * g[i];
    }
  }

 private:
  float lr_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f)
      : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
        eps_(eps) {
    m_.resize(params_.size());
    v_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) {
      m_[i].assign(params_[i].data().size(), 0.0f);
      v_[i].assign(params_[i].data().size(), 0.0f);
    }
  }

  void Step() override {
    ++t_;
    const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (size_t i = 0; i < params_.size(); ++i) {
      auto& g = params_[i].grad();
      auto& d = params_[i].data();
      auto& m = m_[i];
      auto& v = v_[i];
      for (size_t j = 0; j < d.size(); ++j) {
        m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
        v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
        const float mh = m[j] / bc1;
        const float vh = v[j] / bc2;
        d[j] -= lr_ * mh / (std::sqrt(vh) + eps_);
      }
    }
  }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Rescales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm (useful for divergence diagnostics).
inline double ClipGradNorm(std::vector<Tensor>& params, double max_norm) {
  double sq = 0.0;
  for (auto& p : params) {
    for (float g : p.grad()) sq += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (auto& p : params) {
      for (auto& g : p.grad()) g *= scale;
    }
  }
  return norm;
}

}  // namespace rntraj

#endif  // RNTRAJ_NN_OPTIM_H_
