#ifndef RNTRAJ_NN_OPTIM_H_
#define RNTRAJ_NN_OPTIM_H_

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/nn/state_dict.h"
#include "src/tensor/tensor.h"

/// \file optim.h
/// First-order optimisers (SGD, Adam — the paper trains with Adam) and global
/// gradient-norm clipping.

namespace rntraj {

/// The learnable tensors of a state dict (buffers skipped), in the dict's
/// deterministic registration order — the canonical way to hand a module
/// tree's parameters to an optimiser.
inline std::vector<Tensor> LearnableTensors(const StateDict& sd) {
  std::vector<Tensor> out;
  out.reserve(sd.size());
  for (const StateEntry& e : sd) {
    if (!e.is_buffer) out.push_back(e.tensor);
  }
  return out;
}

/// Interface for parameter update rules.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored on parameters.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

 protected:
  std::vector<Tensor> params_;
};

/// Plain stochastic gradient descent.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr)
      : Optimizer(std::move(params)), lr_(lr) {}

  void Step() override {
    for (auto& p : params_) {
      auto& g = p.grad();
      auto& d = p.data();
      for (size_t i = 0; i < d.size(); ++i) d[i] -= lr_ * g[i];
    }
  }

 private:
  float lr_;
};

/// Adam (Kingma & Ba) with bias correction.
///
/// The first/second-moment estimates live in two flat arenas laid out
/// exactly like the parameter sequence (one contiguous buffer each, per-
/// parameter offsets) — the optimizer-state half of the PR 9 arena design:
/// a checkpoint serialises Adam as (t, m-arena, v-arena), three fields.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f)
      : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
        eps_(eps) {
    offsets_.reserve(params_.size());
    size_t off = 0;
    for (const auto& p : params_) {
      offsets_.push_back(off);
      off += p.data().size();
    }
    m_.assign(off, 0.0f);
    v_.assign(off, 0.0f);
  }

  /// Canonical constructor since the state-dict redesign: optimises the
  /// dict's learnable entries (buffers skipped) in registration order, so
  /// the moment layout is pinned to the state dict rather than to whatever
  /// order a caller assembled a parameter vector in.
  explicit Adam(const StateDict& sd, float lr = 1e-3f, float beta1 = 0.9f,
                float beta2 = 0.999f, float eps = 1e-8f)
      : Adam(LearnableTensors(sd), lr, beta1, beta2, eps) {}

  void Step() override {
    ++t_;
    const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (size_t i = 0; i < params_.size(); ++i) {
      auto& g = params_[i].grad();
      auto& d = params_[i].data();
      float* m = m_.data() + offsets_[i];
      float* v = v_.data() + offsets_[i];
      for (size_t j = 0; j < d.size(); ++j) {
        m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
        v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
        const float mh = m[j] / bc1;
        const float vh = v[j] / bc2;
        d[j] -= lr_ * mh / (std::sqrt(vh) + eps_);
      }
    }
  }

  /// The optimiser's whole mutable state: step counter plus the two moment
  /// arenas, aligned to the construction-time parameter layout. Checkpoints
  /// store exactly this.
  struct State {
    int64_t t = 0;
    std::vector<float> m;
    std::vector<float> v;
  };

  State ExportState() const { return {t_, m_, v_}; }

  /// Restores exported state. Rejects (returns false, no mutation) when the
  /// arenas do not match this optimiser's layout size — a checkpoint from a
  /// different architecture must not be silently misapplied.
  bool ImportState(const State& s, std::string* error = nullptr) {
    if (s.m.size() != m_.size() || s.v.size() != v_.size() || s.t < 0) {
      if (error != nullptr) {
        std::ostringstream oss;
        oss << "Adam state mismatch: got m/v of " << s.m.size() << "/"
            << s.v.size() << " floats (t=" << s.t << "), layout expects "
            << m_.size();
        *error = oss.str();
      }
      return false;
    }
    t_ = static_cast<int>(s.t);
    m_ = s.m;
    v_ = s.v;
    return true;
  }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int t_ = 0;
  std::vector<size_t> offsets_;
  std::vector<float> m_;
  std::vector<float> v_;
};

/// Rescales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm (useful for divergence diagnostics).
inline double ClipGradNorm(std::vector<Tensor>& params, double max_norm) {
  double sq = 0.0;
  for (auto& p : params) {
    for (float g : p.grad()) sq += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (auto& p : params) {
      for (auto& g : p.grad()) g *= scale;
    }
  }
  return norm;
}

}  // namespace rntraj

#endif  // RNTRAJ_NN_OPTIM_H_
