#ifndef RNTRAJ_NN_STATE_DICT_H_
#define RNTRAJ_NN_STATE_DICT_H_

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/tensor/tensor.h"

/// \file state_dict.h
/// The canonical named-state surface of a module tree: an ordered,
/// name-unique map from dotted paths to tensors. `Module::StateDict()`
/// produces one in deterministic registration order; `LoadStateDict`
/// consumes one; the snapshot format (src/snapshot/) serialises one.

namespace rntraj {

/// One named tensor of a module's state: a learnable parameter or a
/// persistent buffer (e.g. GraphNorm running statistics).
struct StateEntry {
  std::string name;
  Tensor tensor;
  bool is_buffer = false;
};

/// Ordered collection of named tensors with unique names.
///
/// Entries keep insertion order (the module tree's registration order), so
/// two StateDicts of the same architecture align positionally as well as by
/// name — the property the parameter arena and the Adam moment arenas rely
/// on. Name collisions are programmer errors and abort.
class StateDict {
 public:
  void Add(std::string name, Tensor tensor, bool is_buffer = false) {
    auto [it, inserted] = index_.emplace(name, entries_.size());
    RNTRAJ_CHECK_MSG(inserted,
                     "StateDict: duplicate entry name '" << name << "'");
    entries_.push_back({std::move(name), std::move(tensor), is_buffer});
  }

  /// Entry lookup by dotted path; nullptr when absent.
  const StateEntry* Find(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : &entries_[it->second];
  }

  const std::vector<StateEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const StateEntry& operator[](size_t i) const { return entries_[i]; }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  /// Total scalar count across all entries.
  int64_t ScalarCount() const {
    int64_t n = 0;
    for (const auto& e : entries_) n += e.tensor.size();
    return n;
  }

 private:
  std::vector<StateEntry> entries_;
  std::unordered_map<std::string, size_t> index_;
};

/// Key mismatches from a LoadStateDict call: `missing` are entries the
/// module owns but the source dict lacks (left untouched), `unexpected` are
/// source entries no module entry matched (ignored). Shape mismatches on
/// matched names are contract violations and abort — callers that must
/// reject foreign shapes gracefully (the snapshot loader) compare shapes
/// before copying.
struct LoadReport {
  std::vector<std::string> missing;
  std::vector<std::string> unexpected;

  bool Clean() const { return missing.empty() && unexpected.empty(); }

  std::string ToString() const {
    std::ostringstream oss;
    oss << "missing=[";
    for (size_t i = 0; i < missing.size(); ++i) {
      oss << (i ? ", " : "") << missing[i];
    }
    oss << "] unexpected=[";
    for (size_t i = 0; i < unexpected.size(); ++i) {
      oss << (i ? ", " : "") << unexpected[i];
    }
    oss << "]";
    return oss.str();
  }
};

/// Copies matching `src` entries into `dst`'s tensors (values only; tensor
/// identity is preserved, so optimizer handles stay valid). Matched names
/// must agree in shape exactly — a mismatch aborts. Returns the key
/// mismatches; the shared engine behind every LoadStateDict.
inline LoadReport CopyStateDict(const StateDict& dst, const StateDict& src) {
  LoadReport report;
  for (const StateEntry& e : dst) {
    const StateEntry* s = src.Find(e.name);
    if (s == nullptr) {
      report.missing.push_back(e.name);
      continue;
    }
    RNTRAJ_CHECK_MSG(s->tensor.shape() == e.tensor.shape(),
                     "LoadStateDict: shape mismatch for '" << e.name << "'");
    Tensor t = e.tensor;  // shared impl: writes hit the owning module
    std::copy(s->tensor.data().begin(), s->tensor.data().end(),
              t.data().begin());
  }
  for (const StateEntry& s : src) {
    if (dst.Find(s.name) == nullptr) report.unexpected.push_back(s.name);
  }
  return report;
}

}  // namespace rntraj

#endif  // RNTRAJ_NN_STATE_DICT_H_
