#ifndef RNTRAJ_NN_LINEAR_H_
#define RNTRAJ_NN_LINEAR_H_

#include "src/nn/init.h"
#include "src/nn/module.h"
#include "src/tensor/fusion.h"
#include "src/tensor/ops.h"

/// \file linear.h
/// Affine layer and embedding table.

namespace rntraj {

/// y = x W + b (bias optional). Accepts (n, in) or rank-1 (in) inputs.
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, bool bias = true)
      : in_(in_features), out_(out_features), has_bias_(bias) {
    weight_ = RegisterParameter("weight", XavierUniform(in_features, out_features));
    if (bias) {
      bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
    }
  }

  Tensor Forward(const Tensor& x) const {
    Tensor y = Matmul(x, weight_);
    if (has_bias_) y = AddRowBroadcast(y, bias_);
    return y;
  }

  /// act(x W + b) routed through the fusion peephole: one fused
  /// bias+activation kernel inside a FusionScope, the exact
  /// Forward -> activation chain outside one.
  Tensor ForwardAct(const Tensor& x, fusion::Act act,
                    float leaky_slope = 0.2f) const {
    return fusion::BiasAct(Matmul(x, weight_), has_bias_ ? bias_ : Tensor(),
                           act, leaky_slope);
  }

  int in_features() const { return in_; }
  int out_features() const { return out_; }

  /// Handle to the weight matrix (in, out); shares storage with the layer,
  /// letting callers apply custom initialisation.
  Tensor weight() const { return weight_; }

 private:
  int in_;
  int out_;
  bool has_bias_;
  Tensor weight_;
  Tensor bias_;
};

/// Learned lookup table: ids -> rows of an (num_embeddings, dim) matrix.
class Embedding : public Module {
 public:
  Embedding(int num_embeddings, int dim)
      : num_(num_embeddings), dim_(dim) {
    table_ = RegisterParameter("table", EmbeddingInit(num_embeddings, dim));
  }

  /// Rows for a batch of ids -> (ids.size(), dim).
  Tensor Forward(const std::vector<int>& ids) const {
    return GatherRows(table_, ids);
  }

  /// Single id -> rank-1 (dim) vector.
  Tensor ForwardOne(int id) const {
    return Reshape(GatherRows(table_, {id}), {dim_});
  }

  /// The full table (used when every row participates, e.g. GridGNN).
  const Tensor& table() const { return table_; }

  /// Handle to the table; shares storage with the layer, letting callers
  /// apply custom initialisation.
  Tensor mutable_table() { return table_; }

  int num_embeddings() const { return num_; }
  int dim() const { return dim_; }

 private:
  int num_;
  int dim_;
  Tensor table_;
};

}  // namespace rntraj

#endif  // RNTRAJ_NN_LINEAR_H_
