#ifndef RNTRAJ_NN_GRAPH_H_
#define RNTRAJ_NN_GRAPH_H_

#include <cmath>
#include <utility>
#include <vector>

#include "src/nn/linear.h"
#include "src/nn/module.h"
#include "src/tensor/ops.h"

/// \file graph.h
/// Graph neural layers over dense adjacency masks. Both the road-network
/// graph (hundreds of nodes) and per-GPS-point sub-graphs (tens of nodes) are
/// small enough that dense masked attention is the fastest CPU formulation;
/// the -1e9 mask reproduces sparse neighbourhood softmax exactly (masked
/// entries underflow to zero probability).

namespace rntraj {

/// Precomputed dense connectivity for one directed graph.
struct DenseGraph {
  int n = 0;
  /// (n,n) 0/1 adjacency including self-loops.
  Tensor adj_self;
  /// (n,n) 0/1 adjacency without self-loops.
  Tensor adj_noself;
  /// (n,n) additive softmax mask: 0 where adj_self is 1, -1e9 elsewhere.
  Tensor neg_mask;
  /// (n,n) symmetric GCN propagation matrix D^-1/2 (A+I) D^-1/2.
  Tensor gcn_norm;
};

/// Builds the dense masks for a node count and directed edge list. Edges are
/// interpreted as (src, dst): dst aggregates from src, i.e. row `dst` attends
/// over column `src`; callers pass predecessor-style edges for directed road
/// graphs.
inline DenseGraph BuildDenseGraph(int n,
                                  const std::vector<std::pair<int, int>>& edges) {
  DenseGraph g;
  g.n = n;
  g.adj_self = Tensor::Zeros({n, n});
  g.adj_noself = Tensor::Zeros({n, n});
  g.neg_mask = Tensor::Full({n, n}, -1e9f);
  auto set_edge = [&](int row, int col) {
    g.adj_self.data()[static_cast<size_t>(row) * n + col] = 1.0f;
    g.neg_mask.data()[static_cast<size_t>(row) * n + col] = 0.0f;
  };
  for (int i = 0; i < n; ++i) set_edge(i, i);
  for (const auto& [src, dst] : edges) {
    RNTRAJ_CHECK(src >= 0 && src < n && dst >= 0 && dst < n);
    set_edge(dst, src);
    g.adj_noself.data()[static_cast<size_t>(dst) * n + src] = 1.0f;
  }
  // GCN normalisation over the symmetrised self-loop adjacency.
  std::vector<float> deg(n, 0.0f);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      deg[i] += g.adj_self.data()[static_cast<size_t>(i) * n + j];
    }
  }
  g.gcn_norm = Tensor::Zeros({n, n});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const float a = g.adj_self.data()[static_cast<size_t>(i) * n + j];
      if (a != 0.0f) {
        g.gcn_norm.data()[static_cast<size_t>(i) * n + j] =
            a / std::sqrt(deg[i] * deg[j]);
      }
    }
  }
  return g;
}

/// Multi-head graph attention layer (paper Eq. (3)-(4)).
class GatLayer : public Module {
 public:
  GatLayer(int dim, int num_heads)
      : d_(dim), heads_(num_heads), dh_(dim / num_heads) {
    RNTRAJ_CHECK_MSG(dim % num_heads == 0, "GAT: dim % heads != 0");
    for (int h = 0; h < heads_; ++h) {
      const std::string suffix = "_h" + std::to_string(h);
      w_.push_back(RegisterParameter("w" + suffix, XavierUniform(d_, dh_)));
      w_att_.push_back(RegisterParameter("w_att" + suffix, XavierUniform(d_, dh_)));
      a_src_.push_back(RegisterParameter("a_src" + suffix, XavierUniform(dh_, 1)));
      a_dst_.push_back(RegisterParameter("a_dst" + suffix, XavierUniform(dh_, 1)));
    }
  }

  /// h: (n, d); g: dense masks for the same n.
  Tensor Forward(const Tensor& h, const DenseGraph& g) const {
    RNTRAJ_CHECK(h.dim(0) == g.n);
    const int n = g.n;
    std::vector<Tensor> heads;
    heads.reserve(heads_);
    for (int k = 0; k < heads_; ++k) {
      Tensor hw = Matmul(h, w_[k]);          // (n, dh) aggregation features
      Tensor ha = Matmul(h, w_att_[k]);      // (n, dh) attention features
      Tensor u = Matmul(ha, a_src_[k]);      // (n, 1): centre term
      Tensor v = Reshape(Matmul(ha, a_dst_[k]), {n});  // (n): neighbour term
      // scores_ij = u_i + v_j, built by the fused outer sum (no (n,n) zeros
      // temporary); the connectivity mask folds into the softmax pass.
      Tensor scores = LeakyRelu(AddRowCol(u, v), 0.2f);
      Tensor attn = MaskedSoftmaxRows(scores, g.neg_mask);
      heads.push_back(LeakyRelu(Matmul(attn, hw), 0.2f));
    }
    return heads_ == 1 ? heads[0] : ConcatCols(heads);
  }

 private:
  int d_;
  int heads_;
  int dh_;
  std::vector<Tensor> w_;
  std::vector<Tensor> w_att_;
  std::vector<Tensor> a_src_;
  std::vector<Tensor> a_dst_;
};

/// Graph convolution layer (Kipf & Welling) over the dense normalised
/// adjacency; used by the Fig. 7(a) road-representation ablation and the GTS
/// baseline.
class GcnLayer : public Module {
 public:
  GcnLayer(int in_dim, int out_dim) : lin_(in_dim, out_dim) {
    RegisterChild("lin", &lin_);
  }

  Tensor Forward(const Tensor& h, const DenseGraph& g) const {
    // Dense propagation rides the blocked GEMM; the linear layer's bias add
    // is the fused row broadcast.
    return Relu(lin_.Forward(Matmul(g.gcn_norm, h)));
  }

 private:
  Linear lin_;
};

/// Graph isomorphism layer (Xu et al.): MLP((1+eps) h + sum of neighbours).
class GinLayer : public Module {
 public:
  GinLayer(int dim, int hidden_dim)
      : lin1_(dim, hidden_dim), lin2_(hidden_dim, dim) {
    eps_ = RegisterParameter("eps", Tensor::Zeros({1}));
    RegisterChild("lin1", &lin1_);
    RegisterChild("lin2", &lin2_);
  }

  Tensor Forward(const Tensor& h, const DenseGraph& g) const {
    Tensor agg = Matmul(g.adj_noself, h);
    Tensor self = Mul(h, AddScalar(eps_, 1.0f));
    return lin2_.Forward(Relu(lin1_.Forward(Add(agg, self))));
  }

 private:
  Tensor eps_;
  Linear lin1_;
  Linear lin2_;
};

}  // namespace rntraj

#endif  // RNTRAJ_NN_GRAPH_H_
