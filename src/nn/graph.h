#ifndef RNTRAJ_NN_GRAPH_H_
#define RNTRAJ_NN_GRAPH_H_

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "src/nn/linear.h"
#include "src/nn/module.h"
#include "src/tensor/ops.h"

/// \file graph.h
/// Graph neural layers over dense adjacency masks. Both the road-network
/// graph (hundreds of nodes) and per-GPS-point sub-graphs (tens of nodes) are
/// small enough that dense masked attention is the fastest CPU formulation;
/// the -1e9 mask reproduces sparse neighbourhood softmax exactly (masked
/// entries underflow to zero probability).

namespace rntraj {

/// Precomputed dense connectivity for one directed graph.
struct DenseGraph {
  int n = 0;
  /// (n,n) 0/1 adjacency including self-loops.
  Tensor adj_self;
  /// (n,n) 0/1 adjacency without self-loops.
  Tensor adj_noself;
  /// (n,n) additive softmax mask: 0 where adj_self is 1, -1e9 elsewhere.
  Tensor neg_mask;
  /// (n,n) symmetric GCN propagation matrix D^-1/2 (A+I) D^-1/2.
  Tensor gcn_norm;
};

/// Builds the dense masks for a node count and directed edge list. Edges are
/// interpreted as (src, dst): dst aggregates from src, i.e. row `dst` attends
/// over column `src`; callers pass predecessor-style edges for directed road
/// graphs.
inline DenseGraph BuildDenseGraph(int n,
                                  const std::vector<std::pair<int, int>>& edges) {
  DenseGraph g;
  g.n = n;
  g.adj_self = Tensor::Zeros({n, n});
  g.adj_noself = Tensor::Zeros({n, n});
  g.neg_mask = Tensor::Full({n, n}, -1e9f);
  auto set_edge = [&](int row, int col) {
    g.adj_self.data()[static_cast<size_t>(row) * n + col] = 1.0f;
    g.neg_mask.data()[static_cast<size_t>(row) * n + col] = 0.0f;
  };
  for (int i = 0; i < n; ++i) set_edge(i, i);
  for (const auto& [src, dst] : edges) {
    RNTRAJ_CHECK(src >= 0 && src < n && dst >= 0 && dst < n);
    set_edge(dst, src);
    g.adj_noself.data()[static_cast<size_t>(dst) * n + src] = 1.0f;
  }
  // GCN normalisation over the symmetrised self-loop adjacency.
  std::vector<float> deg(n, 0.0f);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      deg[i] += g.adj_self.data()[static_cast<size_t>(i) * n + j];
    }
  }
  g.gcn_norm = Tensor::Zeros({n, n});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const float a = g.adj_self.data()[static_cast<size_t>(i) * n + j];
      if (a != 0.0f) {
        g.gcn_norm.data()[static_cast<size_t>(i) * n + j] =
            a / std::sqrt(deg[i] * deg[j]);
      }
    }
  }
  return g;
}

/// Block-diagonal connectivity for a SET of directed graphs (the batched-GAT
/// counterpart of DenseGraph). Per-graph square masks are stored PACKED: a
/// rank-1 tensor of length sum(n_g^2) where graph g's (n_g, n_g) row-major
/// block starts at entry_offsets[g]. Node-aligned data (features, flat GEMM
/// outputs) lives on the flat (sum(n_g), d) layout with graph g's rows
/// starting at node_offsets[g]. Built once per sample (cacheable alongside
/// the per-sample roadnet caches) and concatenated per batch.
struct BatchedDenseGraph {
  int num_graphs = 0;
  int total_nodes = 0;    ///< sum of per-graph node counts.
  int total_entries = 0;  ///< sum of squared node counts (packed mask size).
  std::vector<int> sizes;          ///< per-graph node counts n_g.
  std::vector<int> node_offsets;   ///< first flat node row of each graph.
  std::vector<int> entry_offsets;  ///< first packed mask entry of each graph.
  /// Packed block-diagonal additive softmax mask (per-graph neg_mask blocks:
  /// 0 where a node may attend, -1e9 elsewhere — cross-graph scores are never
  /// materialised, so no mask entries exist between graphs).
  Tensor neg_mask;
  /// Packed block-diagonal 0/1 adjacency including self-loops (per-graph
  /// adj_self blocks), kept for property tests and non-attention consumers.
  Tensor adj_self;
};

/// Packs the dense masks of `graphs` into one block-diagonal
/// BatchedDenseGraph (per-graph neg_mask/adj_self blocks concatenated in
/// order, offsets recorded per graph).
inline BatchedDenseGraph BuildBatchedDenseGraph(
    const std::vector<const DenseGraph*>& graphs) {
  BatchedDenseGraph bg;
  bg.num_graphs = static_cast<int>(graphs.size());
  bg.sizes.reserve(graphs.size());
  bg.node_offsets.reserve(graphs.size());
  bg.entry_offsets.reserve(graphs.size());
  for (const DenseGraph* g : graphs) {
    bg.sizes.push_back(g->n);
    bg.node_offsets.push_back(bg.total_nodes);
    bg.entry_offsets.push_back(bg.total_entries);
    bg.total_nodes += g->n;
    bg.total_entries += g->n * g->n;
  }
  bg.neg_mask = Tensor::Zeros({bg.total_entries});
  bg.adj_self = Tensor::Zeros({bg.total_entries});
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    const DenseGraph& g = *graphs[gi];
    const size_t count = static_cast<size_t>(g.n) * g.n;
    const size_t off = bg.entry_offsets[gi];
    std::copy(g.neg_mask.data().begin(), g.neg_mask.data().begin() + count,
              bg.neg_mask.data().begin() + off);
    std::copy(g.adj_self.data().begin(), g.adj_self.data().begin() + count,
              bg.adj_self.data().begin() + off);
  }
  return bg;
}

/// Concatenates already-packed BatchedDenseGraphs (e.g. the per-sample cached
/// ones) into one batch-level block-diagonal graph: sizes append, offsets
/// shift, mask storage is a straight copy.
inline BatchedDenseGraph ConcatBatchedDenseGraphs(
    const std::vector<const BatchedDenseGraph*>& parts) {
  BatchedDenseGraph bg;
  for (const BatchedDenseGraph* p : parts) {
    bg.num_graphs += p->num_graphs;
    bg.total_nodes += p->total_nodes;
    bg.total_entries += p->total_entries;
  }
  bg.sizes.reserve(bg.num_graphs);
  bg.node_offsets.reserve(bg.num_graphs);
  bg.entry_offsets.reserve(bg.num_graphs);
  bg.neg_mask = Tensor::Zeros({bg.total_entries});
  bg.adj_self = Tensor::Zeros({bg.total_entries});
  int node = 0;
  int entry = 0;
  for (const BatchedDenseGraph* p : parts) {
    for (int g = 0; g < p->num_graphs; ++g) {
      bg.sizes.push_back(p->sizes[g]);
      bg.node_offsets.push_back(node + p->node_offsets[g]);
      bg.entry_offsets.push_back(entry + p->entry_offsets[g]);
    }
    std::copy(p->neg_mask.data().begin(), p->neg_mask.data().end(),
              bg.neg_mask.data().begin() + entry);
    std::copy(p->adj_self.data().begin(), p->adj_self.data().end(),
              bg.adj_self.data().begin() + entry);
    node += p->total_nodes;
    entry += p->total_entries;
  }
  return bg;
}

/// Multi-head graph attention layer (paper Eq. (3)-(4)).
class GatLayer : public Module {
 public:
  GatLayer(int dim, int num_heads)
      : d_(dim), heads_(num_heads), dh_(dim / num_heads) {
    RNTRAJ_CHECK_MSG(dim % num_heads == 0, "GAT: dim % heads != 0");
    for (int h = 0; h < heads_; ++h) {
      const std::string suffix = "_h" + std::to_string(h);
      w_.push_back(RegisterParameter("w" + suffix, XavierUniform(d_, dh_)));
      w_att_.push_back(RegisterParameter("w_att" + suffix, XavierUniform(d_, dh_)));
      a_src_.push_back(RegisterParameter("a_src" + suffix, XavierUniform(dh_, 1)));
      a_dst_.push_back(RegisterParameter("a_dst" + suffix, XavierUniform(dh_, 1)));
    }
  }

  /// h: (n, d); g: dense masks for the same n.
  Tensor Forward(const Tensor& h, const DenseGraph& g) const {
    RNTRAJ_CHECK(h.dim(0) == g.n);
    const int n = g.n;
    std::vector<Tensor> heads;
    heads.reserve(heads_);
    for (int k = 0; k < heads_; ++k) {
      Tensor hw = Matmul(h, w_[k]);          // (n, dh) aggregation features
      Tensor ha = Matmul(h, w_att_[k]);      // (n, dh) attention features
      Tensor u = Matmul(ha, a_src_[k]);      // (n, 1): centre term
      Tensor v = Reshape(Matmul(ha, a_dst_[k]), {n});  // (n): neighbour term
      // scores_ij = u_i + v_j, built by the fused outer sum (no (n,n) zeros
      // temporary); the connectivity mask folds into the softmax pass.
      Tensor scores = LeakyRelu(AddRowCol(u, v), 0.2f);
      Tensor attn = MaskedSoftmaxRows(scores, g.neg_mask);
      heads.push_back(LeakyRelu(Matmul(attn, hw), 0.2f));
    }
    return heads_ == 1 ? heads[0] : ConcatCols(heads);
  }

  /// Batched counterpart: one pass over ALL sub-graphs of a batch. `h` holds
  /// every graph's node features flat ((g.total_nodes, d), graphs in order);
  /// `g` is their block-diagonal connectivity. The per-head projections and
  /// score terms run as single fat GEMMs over all nodes; the square
  /// score/softmax/attention stage runs on the packed block-diagonal layout
  /// (AddRowColBlocks -> SegmentMaskedSoftmax -> BlockDiagMatmul), where each
  /// block executes the exact per-graph kernels — so the output matches the
  /// graph-by-graph Forward loop within float rounding (~1e-6; the fat
  /// projection GEMMs run at a different height than their per-graph
  /// equivalents, contracting FMAs differently in the row-peel kernels).
  Tensor ForwardBatched(const Tensor& h, const BatchedDenseGraph& g) const {
    RNTRAJ_CHECK(h.dim(0) == g.total_nodes);
    std::vector<Tensor> heads;
    heads.reserve(heads_);
    for (int k = 0; k < heads_; ++k) {
      Tensor hw = Matmul(h, w_[k]);      // (sum n, dh) aggregation features
      Tensor ha = Matmul(h, w_att_[k]);  // (sum n, dh) attention features
      Tensor u = Matmul(ha, a_src_[k]);  // (sum n, 1): centre term
      Tensor v = Reshape(Matmul(ha, a_dst_[k]), {g.total_nodes});
      // Per-graph score matrices, packed block-diagonal; cross-graph scores
      // are never materialised.
      Tensor scores = LeakyRelu(AddRowColBlocks(u, v, g.sizes), 0.2f);
      Tensor attn = SegmentMaskedSoftmax(scores, g.neg_mask, g.sizes);
      heads.push_back(LeakyRelu(BlockDiagMatmul(attn, hw, g.sizes), 0.2f));
    }
    return heads_ == 1 ? heads[0] : ConcatCols(heads);
  }

 private:
  int d_;
  int heads_;
  int dh_;
  std::vector<Tensor> w_;
  std::vector<Tensor> w_att_;
  std::vector<Tensor> a_src_;
  std::vector<Tensor> a_dst_;
};

/// Graph convolution layer (Kipf & Welling) over the dense normalised
/// adjacency; used by the Fig. 7(a) road-representation ablation and the GTS
/// baseline.
class GcnLayer : public Module {
 public:
  GcnLayer(int in_dim, int out_dim) : lin_(in_dim, out_dim) {
    RegisterChild("lin", &lin_);
  }

  Tensor Forward(const Tensor& h, const DenseGraph& g) const {
    // Dense propagation rides the blocked GEMM; the linear layer's bias add
    // is the fused row broadcast.
    return Relu(lin_.Forward(Matmul(g.gcn_norm, h)));
  }

 private:
  Linear lin_;
};

/// Graph isomorphism layer (Xu et al.): MLP((1+eps) h + sum of neighbours).
class GinLayer : public Module {
 public:
  GinLayer(int dim, int hidden_dim)
      : lin1_(dim, hidden_dim), lin2_(hidden_dim, dim) {
    eps_ = RegisterParameter("eps", Tensor::Zeros({1}));
    RegisterChild("lin1", &lin1_);
    RegisterChild("lin2", &lin2_);
  }

  Tensor Forward(const Tensor& h, const DenseGraph& g) const {
    Tensor agg = Matmul(g.adj_noself, h);
    Tensor self = Mul(h, AddScalar(eps_, 1.0f));
    return lin2_.Forward(Relu(lin1_.Forward(Add(agg, self))));
  }

 private:
  Tensor eps_;
  Linear lin1_;
  Linear lin2_;
};

}  // namespace rntraj

#endif  // RNTRAJ_NN_GRAPH_H_
