#ifndef RNTRAJ_NN_MODULE_H_
#define RNTRAJ_NN_MODULE_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/nn/state_dict.h"
#include "src/tensor/tensor.h"

/// \file module.h
/// Base class for neural-network modules: parameter/buffer registration,
/// recursive state-dict collection, train/eval mode.

namespace rntraj {

/// Base class for all learnable components.
///
/// Concrete modules own their sub-modules as data members and register them
/// (non-owning pointers) in their constructor so that `Parameters()`,
/// `StateDict()` and `SetTraining()` recurse.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  // Modules own parameters and register raw pointers to members; copying
  // would silently detach the registry, so forbid it.
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its registered children.
  std::vector<Tensor> Parameters() const {
    std::vector<Tensor> out;
    CollectParameters(&out);
    return out;
  }

  /// The canonical named-state surface: every parameter and persistent
  /// buffer under its dotted path, in deterministic registration order
  /// (this module's parameters, then buffers, then each child's subtree).
  /// Duplicate paths abort inside StateDict::Add — two children registered
  /// under one name cannot silently shadow each other.
  rntraj::StateDict StateDict() const {
    rntraj::StateDict out;
    CollectState("", &out);
    return out;
  }

  /// Copies matching entries of `src` into this module's tensors (values
  /// only; tensor identity is preserved, so optimizer handles stay valid).
  /// Matched entries must agree in shape exactly — a mismatch aborts.
  /// Returns the key mismatches: module entries `src` lacks (`missing`,
  /// left untouched) and `src` entries nothing matched (`unexpected`).
  LoadReport LoadStateDict(const rntraj::StateDict& src) {
    return CopyStateDict(StateDict(), src);
  }

  /// Named (dotted-path) parameters — StateDict() minus the buffers, kept
  /// for tests and debugging dumps.
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const {
    std::vector<std::pair<std::string, Tensor>> out;
    for (const StateEntry& e : StateDict()) {
      if (!e.is_buffer) out.emplace_back(e.name, e.tensor);
    }
    return out;
  }

  /// Total scalar parameter count.
  int64_t ParameterCount() const {
    int64_t n = 0;
    for (const auto& p : Parameters()) n += p.size();
    return n;
  }

  /// Zeroes every parameter gradient.
  void ZeroGrad() {
    for (auto& p : Parameters()) p.ZeroGrad();
  }

  /// Switches train/eval mode recursively (affects dropout and GraphNorm).
  void SetTraining(bool training) {
    training_ = training;
    for (auto& [name, child] : children_) child->SetTraining(training);
  }

  bool training() const { return training_; }

 protected:
  /// Registers a leaf parameter (sets requires_grad).
  Tensor RegisterParameter(const std::string& name, Tensor t) {
    t.set_requires_grad(true);
    params_.emplace_back(name, t);
    return t;
  }

  /// Registers a persistent (non-learned) buffer: carried by StateDict()
  /// and snapshots, skipped by Parameters() and the optimisers. The
  /// registered handle must stay the module's live storage — mutate it in
  /// place, never re-assign the member to a fresh Tensor.
  Tensor RegisterBuffer(const std::string& name, Tensor t) {
    buffers_.emplace_back(name, t);
    return t;
  }

  /// Registers a child module (non-owning; the child must be a member of the
  /// registering module and therefore outlive it).
  void RegisterChild(const std::string& name, Module* child) {
    children_.emplace_back(name, child);
  }

 private:
  void CollectParameters(std::vector<Tensor>* out) const {
    for (const auto& [name, p] : params_) out->push_back(p);
    for (const auto& [name, c] : children_) c->CollectParameters(out);
  }

  void CollectState(const std::string& prefix, rntraj::StateDict* out) const {
    for (const auto& [name, p] : params_) {
      out->Add(prefix.empty() ? name : prefix + "." + name, p,
               /*is_buffer=*/false);
    }
    for (const auto& [name, b] : buffers_) {
      out->Add(prefix.empty() ? name : prefix + "." + name, b,
               /*is_buffer=*/true);
    }
    for (const auto& [name, c] : children_) {
      c->CollectState(prefix.empty() ? name : prefix + "." + name, out);
    }
  }

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Tensor>> buffers_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace rntraj

#endif  // RNTRAJ_NN_MODULE_H_
