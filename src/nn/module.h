#ifndef RNTRAJ_NN_MODULE_H_
#define RNTRAJ_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/tensor/tensor.h"

/// \file module.h
/// Base class for neural-network modules: parameter registration, recursive
/// parameter collection, train/eval mode.

namespace rntraj {

/// Base class for all learnable components.
///
/// Concrete modules own their sub-modules as data members and register them
/// (non-owning pointers) in their constructor so that `Parameters()` and
/// `SetTraining()` recurse.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  // Modules own parameters and register raw pointers to members; copying
  // would silently detach the registry, so forbid it.
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its registered children.
  std::vector<Tensor> Parameters() const {
    std::vector<Tensor> out;
    CollectParameters(&out);
    return out;
  }

  /// Named (dotted-path) parameters, mainly for debugging and tests.
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const {
    std::vector<std::pair<std::string, Tensor>> out;
    CollectNamed("", &out);
    return out;
  }

  /// Total scalar parameter count.
  int64_t ParameterCount() const {
    int64_t n = 0;
    for (const auto& p : Parameters()) n += p.size();
    return n;
  }

  /// Zeroes every parameter gradient.
  void ZeroGrad() {
    for (auto& p : Parameters()) p.ZeroGrad();
  }

  /// Switches train/eval mode recursively (affects dropout and GraphNorm).
  void SetTraining(bool training) {
    training_ = training;
    for (auto& [name, child] : children_) child->SetTraining(training);
  }

  bool training() const { return training_; }

 protected:
  /// Registers a leaf parameter (sets requires_grad).
  Tensor RegisterParameter(const std::string& name, Tensor t) {
    t.set_requires_grad(true);
    params_.emplace_back(name, t);
    return t;
  }

  /// Registers a child module (non-owning; the child must be a member of the
  /// registering module and therefore outlive it).
  void RegisterChild(const std::string& name, Module* child) {
    children_.emplace_back(name, child);
  }

 private:
  void CollectParameters(std::vector<Tensor>* out) const {
    for (const auto& [name, p] : params_) out->push_back(p);
    for (const auto& [name, c] : children_) c->CollectParameters(out);
  }

  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Tensor>>* out) const {
    for (const auto& [name, p] : params_) {
      out->emplace_back(prefix.empty() ? name : prefix + "." + name, p);
    }
    for (const auto& [name, c] : children_) {
      c->CollectNamed(prefix.empty() ? name : prefix + "." + name, out);
    }
  }

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace rntraj

#endif  // RNTRAJ_NN_MODULE_H_
