#include "src/sim/city.h"

#include <unordered_map>
#include <vector>

#include "src/common/random.h"

namespace rntraj {

namespace {

/// Book-keeping while wiring segments to lattice nodes.
struct Builder {
  RoadNetwork rn;
  /// node key -> segments starting / ending there.
  std::unordered_map<int, std::vector<int>> start_at;
  std::unordered_map<int, std::vector<int>> end_at;
  /// segment id -> (start node, end node), for U-turn detection.
  std::vector<std::pair<int, int>> endpoints;

  int AddSeg(std::vector<Vec2> polyline, RoadLevel level, int from_node,
             int to_node) {
    const int id = rn.AddSegment(std::move(polyline), level);
    start_at[from_node].push_back(id);
    end_at[to_node].push_back(id);
    endpoints.push_back({from_node, to_node});
    return id;
  }
};

bool IsReverseTwin(const Builder& b, int in_seg, int out_seg) {
  return b.endpoints[out_seg].first == b.endpoints[in_seg].second &&
         b.endpoints[out_seg].second == b.endpoints[in_seg].first;
}

/// Wires all (incoming, outgoing) pairs that meet where `from_node`'s
/// outgoing set is `to_node`'s (used both for plain nodes, where from == to,
/// and for ramp-merged node pairs). `trunk_only` restricts the surface side
/// of ramp connections to trunk segments: vehicles enter/leave the elevated
/// roadway from the road beneath it, not from side streets.
void Connect(Builder* b, int from_node, int to_node, bool trunk_only = false) {
  auto in_it = b->end_at.find(from_node);
  auto out_it = b->start_at.find(to_node);
  if (in_it == b->end_at.end() || out_it == b->start_at.end()) return;
  auto allowed = [&](int seg) {
    if (!trunk_only) return true;
    const RoadLevel level = b->rn.segment(seg).level;
    return level == RoadLevel::kTrunk || level == RoadLevel::kElevated;
  };
  for (int in_seg : in_it->second) {
    if (!allowed(in_seg)) continue;
    // Count non-U-turn exits; allow the U-turn only when nothing else exists.
    int alternatives = 0;
    for (int out_seg : out_it->second) {
      if (allowed(out_seg) && !IsReverseTwin(*b, in_seg, out_seg)) ++alternatives;
    }
    for (int out_seg : out_it->second) {
      if (!allowed(out_seg)) continue;
      if (IsReverseTwin(*b, in_seg, out_seg) && alternatives > 0) continue;
      b->rn.AddEdge(in_seg, out_seg);
    }
  }
}

}  // namespace

RoadNetwork GenerateCity(const CityConfig& cfg) {
  RNTRAJ_CHECK_MSG(cfg.rows >= 3 && cfg.cols >= 3, "city too small");
  Rng rng(cfg.seed);
  Builder b;

  const int corridor = CorridorRow(cfg);
  auto node_key = [&](int r, int c) { return r * cfg.cols + c; };
  // Elevated joints live in a disjoint key space.
  const int kElevatedBase = cfg.rows * cfg.cols;
  auto elev_key = [&](int c) { return kElevatedBase + c; };

  // Jittered intersection positions.
  std::vector<Vec2> pos(static_cast<size_t>(cfg.rows) * cfg.cols);
  for (int r = 0; r < cfg.rows; ++r) {
    for (int c = 0; c < cfg.cols; ++c) {
      pos[node_key(r, c)] = {c * cfg.spacing + rng.Gaussian(0, cfg.jitter),
                             r * cfg.spacing + rng.Gaussian(0, cfg.jitter)};
    }
  }

  auto street_level = [&](bool horizontal, int r, int c) {
    if (horizontal && r == corridor) return RoadLevel::kTrunk;
    if (horizontal && r % cfg.arterial_every == 0) return RoadLevel::kSecondary;
    if (!horizontal && c % cfg.arterial_every == 0) return RoadLevel::kSecondary;
    return RoadLevel::kResidential;
  };

  auto add_street = [&](int na, int nb, RoadLevel level, bool two_way,
                        bool forward) {
    const Vec2 a = pos[na];
    const Vec2 bp = pos[nb];
    if (two_way || forward) b.AddSeg({a, bp}, level, na, nb);
    if (two_way || !forward) b.AddSeg({bp, a}, level, nb, na);
  };

  for (int r = 0; r < cfg.rows; ++r) {
    for (int c = 0; c + 1 < cfg.cols; ++c) {
      const bool border = r == 0 || r == cfg.rows - 1;
      const RoadLevel level = street_level(true, r, c);
      const bool two_way = border || level == RoadLevel::kTrunk ||
                           rng.Bernoulli(cfg.two_way_prob);
      add_street(node_key(r, c), node_key(r, c + 1), level, two_way,
                 /*forward=*/r % 2 == 0);
    }
  }
  for (int c = 0; c < cfg.cols; ++c) {
    for (int r = 0; r + 1 < cfg.rows; ++r) {
      const bool border = c == 0 || c == cfg.cols - 1;
      const RoadLevel level = street_level(false, r, c);
      const bool two_way = border || rng.Bernoulli(cfg.two_way_prob);
      add_street(node_key(r, c), node_key(r + 1, c), level, two_way,
                 /*forward=*/c % 2 == 0);
    }
  }

  // Elevated expressway parallel to the trunk corridor: long two-way spans
  // between joints, laterally offset by elevated_offset, with ramps only at
  // selected joints.
  std::vector<int> joints;
  std::vector<int> ramp_joints;
  if (cfg.elevated_corridor) {
    const Vec2 off{0.0, cfg.elevated_offset};
    for (int c = 0; c < cfg.cols; c += cfg.elevated_span) joints.push_back(c);
    if (joints.back() != cfg.cols - 1) joints.push_back(cfg.cols - 1);
    for (size_t j = 0; j + 1 < joints.size(); ++j) {
      const int c0 = joints[j];
      const int c1 = joints[j + 1];
      std::vector<Vec2> fwd;
      for (int c = c0; c <= c1; ++c) fwd.push_back(pos[node_key(corridor, c)] + off);
      std::vector<Vec2> bwd(fwd.rbegin(), fwd.rend());
      b.AddSeg(fwd, RoadLevel::kElevated, elev_key(c0), elev_key(c1));
      b.AddSeg(bwd, RoadLevel::kElevated, elev_key(c1), elev_key(c0));
    }
    for (int c : joints) {
      const bool is_end = c == joints.front() || c == joints.back();
      if (is_end || c % cfg.ramp_every == 0) ramp_joints.push_back(c);
    }
  }

  // Wire connectivity: plain nodes, then ramp joints merge the elevated node
  // with the surface node beneath it.
  for (int r = 0; r < cfg.rows; ++r) {
    for (int c = 0; c < cfg.cols; ++c) {
      Connect(&b, node_key(r, c), node_key(r, c));
    }
  }
  for (int c : joints) Connect(&b, elev_key(c), elev_key(c));
  for (int c : ramp_joints) {
    Connect(&b, node_key(corridor, c), elev_key(c), /*trunk_only=*/true);
    Connect(&b, elev_key(c), node_key(corridor, c), /*trunk_only=*/true);
  }

  b.rn.Build();
  RNTRAJ_CHECK_MSG(b.rn.IsStronglyConnected(),
                   "generated city must be strongly connected (seed "
                       << cfg.seed << ")");
  return std::move(b.rn);
}

}  // namespace rntraj
