#ifndef RNTRAJ_SIM_CITY_H_
#define RNTRAJ_SIM_CITY_H_

#include <cstdint>

#include "src/roadnet/road_network.h"

/// \file city.h
/// Synthetic city generator. Produces a perturbed lattice of one/two-way
/// streets with arterials, a surface trunk corridor and (optionally) an
/// elevated expressway running geometrically parallel to it with sparse
/// ramps — the ambiguity studied by the paper's elevated-road task (Fig. 4 /
/// Fig. 5): two near-coincident candidate segments whose choice changes the
/// network path by kilometres.

namespace rntraj {

/// Knobs for one synthetic city.
struct CityConfig {
  int rows = 8;               ///< Lattice rows (intersections).
  int cols = 8;               ///< Lattice columns.
  double spacing = 150.0;     ///< Meters between adjacent intersections.
  double jitter = 30.0;       ///< Positional noise applied per intersection.
  double two_way_prob = 0.7;  ///< Probability a street gets both directions.
  int arterial_every = 3;     ///< Every k-th row/column is an arterial.
  bool elevated_corridor = false;  ///< Build the elevated expressway.
  int elevated_span = 2;      ///< Lattice cells per elevated segment.
  int ramp_every = 4;         ///< Ramp connection every k-th joint column.
  double elevated_offset = 8.0;  ///< Lateral offset of the elevated roadway.
  uint64_t seed = 1;
};

/// Generates a strongly connected road network for the config. Border streets
/// are forced two-way so the network is always strongly connected; interior
/// one-way streets alternate direction like real city grids.
RoadNetwork GenerateCity(const CityConfig& config);

/// Row index of the trunk/elevated corridor for a config (middle row).
inline int CorridorRow(const CityConfig& config) { return config.rows / 2; }

}  // namespace rntraj

#endif  // RNTRAJ_SIM_CITY_H_
