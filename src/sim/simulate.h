#ifndef RNTRAJ_SIM_SIMULATE_H_
#define RNTRAJ_SIM_SIMULATE_H_

#include "src/common/random.h"
#include "src/roadnet/road_network.h"
#include "src/traj/trajectory.h"

/// \file simulate.h
/// Kinematic vehicle simulator: drives a vehicle along the directed road
/// network with level-dependent speeds and realistic turn preferences, and
/// emits the exact map-matched epsilon-interval ground truth (paper Def. 3)
/// plus noisy raw GPS observations (paper Def. 2). See DESIGN.md: this
/// replaces the proprietary taxi corpora.

namespace rntraj {

/// Free-flow speed for a road level (m/s).
double LevelSpeed(RoadLevel level);

/// Simulator knobs.
struct SimulatorConfig {
  double eps_rho = 12.0;       ///< Ground-truth sample interval (s).
  int len_rho = 64;            ///< Ground-truth points per trajectory.
  double speed_jitter = 0.25;  ///< Std of multiplicative per-step speed noise.
  double same_level_bias = 4.0;  ///< Turn preference for staying on-level.
  double straight_bias = 1.5;  ///< Turn preference for going straight.
  double uturn_penalty = 0.02;   ///< Multiplier for immediate U-turns.
  /// Urban traffic: probability of halting when entering a surface segment
  /// (traffic lights / congestion); elevated and motorway segments never
  /// stop. Makes progress non-uniform in time, which is why linear
  /// interpolation degrades on real trajectories (paper §I).
  double stop_prob = 0.3;
  double stop_min_s = 4.0;   ///< Minimum halt duration.
  double stop_max_s = 35.0;  ///< Maximum halt duration.
  /// Range of the per-segment-visit congestion speed factor.
  double congestion_min = 0.55;
  double congestion_max = 1.15;
  /// Vehicles follow shortest paths to sampled destinations (purposeful
  /// routes, like real taxis); with this probability a turn deviates from the
  /// route and the vehicle re-plans (driver noise / detours).
  double deviate_prob = 0.08;
};

/// GPS observation noise (paper: raw points carry measurement error; noise is
/// larger around the elevated corridor, mimicking urban-canyon multipath).
struct GpsNoiseConfig {
  double sigma = 15.0;
  double elevated_extra_sigma = 10.0;
};

/// Samples vehicle trajectories over one road network.
class TrajectorySimulator {
 public:
  TrajectorySimulator(const RoadNetwork* rn, const SimulatorConfig& config)
      : rn_(rn), cfg_(config) {}

  /// Ground-truth trajectory starting from a uniform random segment.
  MatchedTrajectory Sample(Rng& rng, double t0 = 0.0) const;

  /// Ground truth starting on the given segment (used to bias trajectories
  /// through the elevated corridor).
  MatchedTrajectory SampleFrom(int start_seg, double start_ratio, Rng& rng,
                               double t0 = 0.0) const;

  const SimulatorConfig& config() const { return cfg_; }

 private:
  /// Heuristic next-segment choice (weighted by level continuity,
  /// straightness, and U-turn penalty); used for route deviations and as a
  /// fallback when no route is available.
  int ChooseNext(int cur, Rng& rng) const;

  const RoadNetwork* rn_;
  SimulatorConfig cfg_;
};

/// Noisy raw observations of a ground-truth trajectory (one per truth point).
RawTrajectory MakeRawObservations(const RoadNetwork& rn,
                                  const MatchedTrajectory& truth,
                                  const GpsNoiseConfig& noise, Rng& rng);

}  // namespace rntraj

#endif  // RNTRAJ_SIM_SIMULATE_H_
