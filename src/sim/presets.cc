#include "src/sim/presets.h"

#include <cstdlib>
#include <cstring>

namespace rntraj {

BenchScale ScaleFromEnv() {
  const char* env = std::getenv("RNTR_SCALE");
  if (env == nullptr) return BenchScale::kSmall;
  if (std::strcmp(env, "tiny") == 0) return BenchScale::kTiny;
  if (std::strcmp(env, "full") == 0) return BenchScale::kFull;
  return BenchScale::kSmall;
}

std::string ToString(BenchScale scale) {
  switch (scale) {
    case BenchScale::kTiny: return "tiny";
    case BenchScale::kSmall: return "small";
    case BenchScale::kFull: return "full";
  }
  return "?";
}

namespace {

/// Scales a base (small) count down/up per scale.
int ScaleCount(BenchScale s, int tiny, int small, int full) {
  switch (s) {
    case BenchScale::kTiny: return tiny;
    case BenchScale::kSmall: return small;
    case BenchScale::kFull: return full;
  }
  return small;
}

/// Common defaults shared by all cities.
DatasetConfig BaseConfig(BenchScale scale) {
  DatasetConfig cfg;
  cfg.grid_cell_size = 50.0;
  cfg.noise.sigma = 18.0;
  cfg.noise.elevated_extra_sigma = 10.0;
  cfg.sim.len_rho = ScaleCount(scale, 32, 48, 64);
  cfg.num_train = ScaleCount(scale, 48, 192, 700);
  cfg.num_val = ScaleCount(scale, 12, 32, 80);
  cfg.num_test = ScaleCount(scale, 16, 48, 150);
  return cfg;
}

}  // namespace

DatasetConfig ChengduConfig(BenchScale scale, int keep_every) {
  DatasetConfig cfg = BaseConfig(scale);
  cfg.name = "chengdu";
  cfg.city.rows = ScaleCount(scale, 7, 9, 12);
  cfg.city.cols = ScaleCount(scale, 7, 9, 12);
  cfg.city.spacing = 150.0;
  cfg.city.arterial_every = 3;
  cfg.city.elevated_corridor = true;
  cfg.city.seed = 101;
  cfg.sim.eps_rho = 12.0;
  cfg.keep_every = keep_every;
  cfg.seed = 1001;
  return cfg;
}

DatasetConfig ChengduFewConfig(BenchScale scale) {
  DatasetConfig cfg = ChengduConfig(scale, 8);
  cfg.name = "chengdu-few";
  cfg.num_train = std::max(8, cfg.num_train / 5);  // ~20% of the original
  cfg.seed = 1001;  // same trajectories distribution, fewer of them
  return cfg;
}

DatasetConfig PortoConfig(BenchScale scale, int keep_every) {
  DatasetConfig cfg = BaseConfig(scale);
  cfg.name = "porto";
  cfg.city.rows = ScaleCount(scale, 6, 8, 10);
  cfg.city.cols = ScaleCount(scale, 6, 8, 10);
  cfg.city.spacing = 130.0;
  cfg.city.jitter = 18.0;  // older, less regular street grid
  cfg.city.two_way_prob = 0.55;
  cfg.city.arterial_every = 4;
  cfg.city.elevated_corridor = false;
  cfg.city.seed = 202;
  cfg.sim.eps_rho = 15.0;
  cfg.keep_every = keep_every;
  cfg.seed = 2002;
  return cfg;
}

DatasetConfig ShanghaiLConfig(BenchScale scale, int keep_every) {
  DatasetConfig cfg = BaseConfig(scale);
  cfg.name = "shanghai-l";
  cfg.city.rows = ScaleCount(scale, 8, 12, 16);
  cfg.city.cols = ScaleCount(scale, 8, 12, 16);
  cfg.city.spacing = 170.0;  // suburbs: longer blocks
  cfg.city.jitter = 16.0;
  cfg.city.arterial_every = 4;
  cfg.city.elevated_corridor = true;
  cfg.city.seed = 303;
  cfg.sim.eps_rho = 10.0;
  cfg.keep_every = keep_every;
  cfg.seed = 3003;
  return cfg;
}

DatasetConfig ShanghaiConfig(BenchScale scale, int keep_every) {
  DatasetConfig cfg = BaseConfig(scale);
  cfg.name = "shanghai";
  cfg.city.rows = ScaleCount(scale, 7, 9, 11);
  cfg.city.cols = ScaleCount(scale, 7, 10, 12);
  cfg.city.spacing = 160.0;
  cfg.city.arterial_every = 3;
  cfg.city.elevated_corridor = true;
  cfg.city.seed = 404;
  cfg.sim.eps_rho = 10.0;
  cfg.keep_every = keep_every;
  cfg.seed = 4004;
  return cfg;
}

}  // namespace rntraj
