#ifndef RNTRAJ_SIM_PRESETS_H_
#define RNTRAJ_SIM_PRESETS_H_

#include <string>

#include "src/sim/dataset.h"

/// \file presets.h
/// Per-dataset analogue configurations mirroring paper Table II (Shanghai-L,
/// Chengdu, Porto) plus Table IV (Shanghai, Chengdu-Few), scaled to CPU
/// budgets. Every benchmark resolves its sizes through `BenchScale`
/// (environment variable RNTR_SCALE = tiny | small | full).

namespace rntraj {

/// Global effort knob for datasets and training schedules.
enum class BenchScale { kTiny, kSmall, kFull };

/// Reads RNTR_SCALE (default: small).
BenchScale ScaleFromEnv();

/// Human-readable name.
std::string ToString(BenchScale scale);

/// Chengdu analogue: dense mid-size grid with an elevated corridor,
/// eps_rho = 12 s (Table II). `keep_every` 8 or 16 selects the x8/x16 task.
DatasetConfig ChengduConfig(BenchScale scale, int keep_every = 8);

/// Chengdu-Few: identical city/settings, ~20% of the training trajectories
/// (Table IV).
DatasetConfig ChengduFewConfig(BenchScale scale);

/// Porto analogue: smaller dense grid, no elevated corridor, eps_rho = 15 s.
DatasetConfig PortoConfig(BenchScale scale, int keep_every = 8);

/// Shanghai-L analogue: the largest, sparser area, eps_rho = 10 s.
DatasetConfig ShanghaiLConfig(BenchScale scale, int keep_every = 16);

/// Shanghai analogue: a different, mid-size area of the same city
/// (Table IV), eps_rho = 10 s.
DatasetConfig ShanghaiConfig(BenchScale scale, int keep_every = 8);

}  // namespace rntraj

#endif  // RNTRAJ_SIM_PRESETS_H_
