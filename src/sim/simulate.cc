#include "src/sim/simulate.h"

#include <algorithm>
#include <cmath>

#include "src/roadnet/shortest_path.h"

namespace rntraj {

double LevelSpeed(RoadLevel level) {
  switch (level) {
    case RoadLevel::kResidential: return 7.0;
    case RoadLevel::kTertiary: return 8.5;
    case RoadLevel::kSecondary: return 10.0;
    case RoadLevel::kPrimary: return 12.0;
    case RoadLevel::kTrunk: return 13.0;
    case RoadLevel::kMotorwayRamp: return 9.0;
    case RoadLevel::kMotorway: return 22.0;
    case RoadLevel::kElevated: return 20.0;
  }
  return 8.0;
}

namespace {

/// Unit direction of the segment near its start/end.
Vec2 Heading(const Polyline& line, bool at_end) {
  const auto& pts = line.points();
  const Vec2 d = at_end ? pts[pts.size() - 1] - pts[pts.size() - 2]
                        : pts[1] - pts[0];
  const double n = Norm(d);
  return n > 0 ? d * (1.0 / n) : Vec2{1, 0};
}

bool IsReverseOf(const RoadSegment& a, const RoadSegment& b) {
  return Distance(a.start(), b.end()) < 1e-6 && Distance(a.end(), b.start()) < 1e-6;
}

}  // namespace

int TrajectorySimulator::ChooseNext(int cur, Rng& rng) const {
  const auto& outs = rn_->OutEdges(cur);
  RNTRAJ_CHECK_MSG(!outs.empty(), "segment " << cur << " has no exits");
  const RoadSegment& cs = rn_->segment(cur);
  const Vec2 heading = Heading(cs.geometry, /*at_end=*/true);
  std::vector<double> weights(outs.size());
  double total = 0.0;
  for (size_t i = 0; i < outs.size(); ++i) {
    const RoadSegment& ns = rn_->segment(outs[i]);
    double w = 1.0;
    if (ns.level == cs.level) w *= cfg_.same_level_bias;
    const double cos_turn = Dot(heading, Heading(ns.geometry, /*at_end=*/false));
    w *= std::exp(cfg_.straight_bias * cos_turn);
    if (IsReverseOf(cs, ns)) w *= cfg_.uturn_penalty;
    weights[i] = w;
    total += w;
  }
  double pick = rng.Uniform(0.0, total);
  for (size_t i = 0; i < outs.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) return outs[i];
  }
  return outs.back();
}

MatchedTrajectory TrajectorySimulator::Sample(Rng& rng, double t0) const {
  const int start = static_cast<int>(rng.UniformInt(0, rn_->num_segments() - 1));
  return SampleFrom(start, rng.Uniform(0.0, 0.8), rng, t0);
}

MatchedTrajectory TrajectorySimulator::SampleFrom(int start_seg,
                                                  double start_ratio, Rng& rng,
                                                  double t0) const {
  MatchedTrajectory out;
  out.points.reserve(cfg_.len_rho);
  int seg = start_seg;
  double ratio = std::clamp(start_ratio, 0.0, 0.999);
  double t = t0;
  double stop_remaining = 0.0;  // seconds still halted at a light
  double congestion = rng.Uniform(cfg_.congestion_min, cfg_.congestion_max);

  // Purposeful routing: follow the shortest path to a sampled destination,
  // re-planning after each deviation and drawing a fresh destination when one
  // is reached.
  std::vector<int> route;
  size_t route_pos = 0;
  auto plan_route = [&](int cur) {
    route.clear();
    route_pos = 0;
    for (int attempt = 0; attempt < 8 && route.size() < 2; ++attempt) {
      const int goal =
          static_cast<int>(rng.UniformInt(0, rn_->num_segments() - 1));
      if (goal == cur) continue;
      route = ShortestSegmentPath(*rn_, cur, goal);
    }
    route_pos = 1;  // route[0] == cur
  };
  auto next_segment = [&](int cur) {
    if (rng.Bernoulli(cfg_.deviate_prob)) {
      const int pick = ChooseNext(cur, rng);
      plan_route(pick);
      return pick;
    }
    if (route_pos >= route.size()) plan_route(cur);
    if (route_pos < route.size()) return route[route_pos++];
    return ChooseNext(cur, rng);  // unreachable fallback
  };
  plan_route(seg);

  for (int i = 0; i < cfg_.len_rho; ++i) {
    out.points.push_back({seg, ratio, t});
    // Advance one sample interval, first burning any halt time.
    double travel_time = cfg_.eps_rho;
    if (stop_remaining > 0.0) {
      const double s = std::min(stop_remaining, travel_time);
      stop_remaining -= s;
      travel_time -= s;
    }
    const double jitter =
        std::clamp(1.0 + rng.Gaussian(0.0, cfg_.speed_jitter), 0.3, 1.7);
    double dist = LevelSpeed(rn_->segment(seg).level) * jitter * congestion *
                  travel_time;
    while (dist > 0.0) {
      const double len = rn_->segment(seg).length();
      const double remaining = (1.0 - ratio) * len;
      if (dist < remaining) {
        ratio += dist / len;
        break;
      }
      dist -= remaining;
      seg = next_segment(seg);
      ratio = 0.0;
      congestion = rng.Uniform(cfg_.congestion_min, cfg_.congestion_max);
      // Traffic lights halt surface traffic at intersections; grade-separated
      // roads flow freely.
      const RoadLevel level = rn_->segment(seg).level;
      const bool grade_separated =
          level == RoadLevel::kElevated || level == RoadLevel::kMotorway;
      if (!grade_separated && rng.Bernoulli(cfg_.stop_prob)) {
        stop_remaining += rng.Uniform(cfg_.stop_min_s, cfg_.stop_max_s);
        break;  // the vehicle halts at the start of the new segment
      }
    }
    t += cfg_.eps_rho;
  }
  return out;
}

RawTrajectory MakeRawObservations(const RoadNetwork& rn,
                                  const MatchedTrajectory& truth,
                                  const GpsNoiseConfig& noise, Rng& rng) {
  RawTrajectory out;
  out.points.reserve(truth.points.size());
  for (const auto& mp : truth.points) {
    const Vec2 exact = rn.PointAt(mp.seg_id, mp.ratio);
    double sigma = noise.sigma;
    if (rn.segment(mp.seg_id).elevated()) sigma += noise.elevated_extra_sigma;
    out.points.push_back(
        {{exact.x + rng.Gaussian(0, sigma), exact.y + rng.Gaussian(0, sigma)},
         mp.t});
  }
  return out;
}

}  // namespace rntraj
