#include "src/sim/dataset.h"

namespace rntraj {

Dataset::Dataset(const DatasetConfig& config)
    : config_(config),
      roadnet_(GenerateCity(config.city)),
      grid_(roadnet_.bounds(), config.grid_cell_size),
      rtree_(BuildSegmentRTree(roadnet_)),
      netdist_(&roadnet_) {
  Rng rng(config.seed);
  TrajectorySimulator sim(&roadnet_, config.sim);
  int64_t uid = 0;
  auto fill = [&](std::vector<TrajectorySample>* split, int count) {
    split->reserve(count);
    for (int i = 0; i < count; ++i) {
      split->push_back(MakeSample(uid++, sim, rng));
    }
  };
  fill(&train_, config.num_train);
  fill(&val_, config.num_val);
  fill(&test_, config.num_test);
}

TrajectorySample Dataset::MakeSample(int64_t uid, const TrajectorySimulator& sim,
                                     Rng& rng) const {
  TrajectorySample s;
  s.uid = uid;
  // Random departure time within a week so the environmental context
  // features (hour of day, weekend) carry signal.
  const double t0 = std::floor(rng.Uniform(0.0, 7.0 * 86400.0));
  s.truth = sim.Sample(rng, t0);
  s.raw_noisy = MakeRawObservations(roadnet_, s.truth, config_.noise, rng);
  s.input = DownsampleEvery(s.raw_noisy, config_.keep_every);
  s.input_indices = KeptIndices(s.truth.size(), config_.keep_every);
  return s;
}

std::unique_ptr<Dataset> BuildDataset(const DatasetConfig& config) {
  return std::make_unique<Dataset>(config);
}

TrajectorySample MakeEphemeralSample(RawTrajectory input,
                                     std::vector<int> input_indices,
                                     const std::vector<double>& target_times) {
  TrajectorySample s;
  s.uid = -1;
  s.input = std::move(input);
  s.input_indices = std::move(input_indices);
  s.truth.points.reserve(target_times.size());
  for (double t : target_times) s.truth.points.push_back({-1, 0.0, t});
  return s;
}

}  // namespace rntraj
