#ifndef RNTRAJ_SIM_DATASET_H_
#define RNTRAJ_SIM_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "src/roadnet/grid.h"
#include "src/roadnet/road_network.h"
#include "src/roadnet/rtree.h"
#include "src/roadnet/shortest_path.h"
#include "src/sim/city.h"
#include "src/sim/simulate.h"
#include "src/traj/resample.h"
#include "src/traj/trajectory.h"

/// \file dataset.h
/// End-to-end dataset construction: synthetic city, simulated ground-truth
/// trajectories, noisy raw observations, low-sample inputs, and the shared
/// spatial indexes every model consumes. One Dataset mirrors one row of the
/// paper's Table II (at laptop scale).

namespace rntraj {

/// One supervised example for trajectory recovery.
struct TrajectorySample {
  /// Stable id used by model-side memo caches. Negative ids mark *ephemeral*
  /// samples (online serving requests): models must compute per-call scratch
  /// for them instead of memoising, so request streams cannot grow the
  /// caches without bound or collide on recycled ids.
  int64_t uid = 0;
  MatchedTrajectory truth;     ///< Map-matched ground truth at eps_rho.
  RawTrajectory raw_noisy;     ///< Noisy observation of every truth point.
  RawTrajectory input;         ///< Low-sample model input (every k-th point).
  std::vector<int> input_indices;  ///< Positions of input points in `truth`.
};

/// Builds an ephemeral (uid = -1) sample for online inference: `input` plus
/// the target timestamp grid is everything Recover is allowed to read — the
/// truth points carry timestamps only (seg_id = -1). `input_indices[i]` is
/// the position of input point i in the target grid.
TrajectorySample MakeEphemeralSample(RawTrajectory input,
                                     std::vector<int> input_indices,
                                     const std::vector<double>& target_times);

/// Everything needed to build one dataset.
struct DatasetConfig {
  std::string name = "city";
  CityConfig city;
  double grid_cell_size = 50.0;  ///< Paper: 50 m x 50 m cells.
  int keep_every = 8;            ///< 8 -> 12.5% kept; 16 -> 6.25% kept.
  GpsNoiseConfig noise;
  SimulatorConfig sim;
  int num_train = 200;
  int num_val = 40;
  int num_test = 60;
  uint64_t seed = 7;
};

/// An immutable bundle of road network, indexes and splits. Non-movable:
/// `netdist` and `rtree` hold pointers into the owned road network.
class Dataset {
 public:
  explicit Dataset(const DatasetConfig& config);

  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  const DatasetConfig& config() const { return config_; }
  const RoadNetwork& roadnet() const { return roadnet_; }
  const GridMapping& grid() const { return grid_; }
  const RTree& rtree() const { return rtree_; }
  NetworkDistance& netdist() const { return netdist_; }

  const std::vector<TrajectorySample>& train() const { return train_; }
  const std::vector<TrajectorySample>& val() const { return val_; }
  const std::vector<TrajectorySample>& test() const { return test_; }

  /// Average raw sample interval of inputs (Table II row).
  double input_interval() const {
    return config_.sim.eps_rho * config_.keep_every;
  }

 private:
  TrajectorySample MakeSample(int64_t uid, const TrajectorySimulator& sim,
                              Rng& rng) const;

  DatasetConfig config_;
  RoadNetwork roadnet_;
  GridMapping grid_;
  RTree rtree_;
  mutable NetworkDistance netdist_;
  std::vector<TrajectorySample> train_;
  std::vector<TrajectorySample> val_;
  std::vector<TrajectorySample> test_;
};

/// Convenience: heap-build (Dataset is non-movable).
std::unique_ptr<Dataset> BuildDataset(const DatasetConfig& config);

}  // namespace rntraj

#endif  // RNTRAJ_SIM_DATASET_H_
