#ifndef RNTRAJ_TENSOR_BUFFER_POOL_H_
#define RNTRAJ_TENSOR_BUFFER_POOL_H_

#include <cstddef>
#include <vector>

/// \file buffer_pool.h
/// Size-bucketed recycling of tensor storage. Every op allocates a fresh
/// output buffer; on hot paths (per-GPS-point sub-graph attention, decoder
/// steps) that is thousands of identically-sized allocations per trajectory.
/// Inside a BufferPoolScope, freed TensorImpl storage is cached per thread
/// and handed back to the next allocation of a compatible size instead of
/// going through the allocator.

namespace rntraj {

/// RAII scope (NoGradGuard-style) that turns on storage recycling for the
/// current thread. Scopes nest; the pool's cache persists across scopes and
/// is only trimmed by ClearBufferPool(). Typical use: one scope around a
/// training run or an inference batch.
class BufferPoolScope {
 public:
  BufferPoolScope();
  ~BufferPoolScope();
  BufferPoolScope(const BufferPoolScope&) = delete;
  BufferPoolScope& operator=(const BufferPoolScope&) = delete;
};

/// Counters for telemetry and tests (per thread).
struct BufferPoolStats {
  size_t hits = 0;      ///< Allocations served from the cache.
  size_t misses = 0;    ///< Allocations that went to the allocator.
  size_t recycled = 0;  ///< Buffers accepted back into the cache.
  size_t cached_bytes = 0;  ///< Bytes currently held by the cache.
};

BufferPoolStats GetBufferPoolStats();

/// Drops every cached buffer of the current thread.
void ClearBufferPool();

namespace internal {

/// True when a BufferPoolScope is active on this thread.
bool BufferPoolActive();

/// A buffer of exactly `n` elements with unspecified contents (recycled when
/// possible). Callers must overwrite every element.
std::vector<float> AcquireBuffer(size_t n);

/// A buffer of exactly `n` zero elements.
std::vector<float> AcquireZeroedBuffer(size_t n);

/// Offers a dying buffer back to the cache (dropped when no scope is active,
/// the buffer is tiny, or the bucket is full).
void ReleaseBuffer(std::vector<float>&& buf);

}  // namespace internal
}  // namespace rntraj

#endif  // RNTRAJ_TENSOR_BUFFER_POOL_H_
