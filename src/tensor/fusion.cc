#include "src/tensor/fusion.h"

#include <cmath>
#include <memory>

#include "src/tensor/fast_math.h"
#include "src/tensor/op_helpers.h"
#include "src/tensor/ops.h"

namespace rntraj {
namespace fusion {

namespace {

thread_local bool tl_fusion_enabled = false;
thread_local FusionCounters tl_counters;

// Activation scalar functions — the same expressions ops_unary.cc uses, so a
// fused emission produces bit-identical activation values.
inline float ActForward(float x, Act act, float slope) {
  switch (act) {
    case Act::kIdentity:
      return x;
    case Act::kRelu:
      return x > 0.0f ? x : 0.0f;
    case Act::kLeakyRelu:
      return x > 0.0f ? x : slope * x;
    case Act::kSigmoid:
      return 1.0f / (1.0f + std::exp(-x));
    case Act::kTanh:
      return std::tanh(x);
  }
  return x;
}

// Derivative from the OUTPUT value (all four activations admit one: relu and
// leaky-relu because sign(out) == sign(in) for positive slope, sigmoid and
// tanh by their classic identities). Matches the dfdx closures in
// ops_unary.cc at every point including x == 0.
inline float ActBackward(float y, Act act, float slope) {
  switch (act) {
    case Act::kIdentity:
      return 1.0f;
    case Act::kRelu:
      return y > 0.0f ? 1.0f : 0.0f;
    case Act::kLeakyRelu:
      return y > 0.0f ? 1.0f : slope;
    case Act::kSigmoid:
      return y * (1.0f - y);
    case Act::kTanh:
      return 1.0f - y * y;
  }
  return 1.0f;
}

// The generic-op chain each activation maps to (the pre-fusion emission).
Tensor ActFallback(const Tensor& x, Act act, float slope) {
  switch (act) {
    case Act::kIdentity:
      return x;
    case Act::kRelu:
      return Relu(x);
    case Act::kLeakyRelu:
      return LeakyRelu(x, slope);
    case Act::kSigmoid:
      return Sigmoid(x);
    case Act::kTanh:
      return Tanh(x);
  }
  return x;
}

// Accepts a rank-1 (d) or rank-2 (1,d) row vector; returns d.
int RowVecLength(const TensorImpl& t, const char* op) {
  if (t.shape.size() == 1) return t.shape[0];
  RNTRAJ_CHECK_MSG(t.shape.size() == 2 && t.shape[0] == 1,
                   op << ": expected row vector, got shape ("
                      << t.shape[0] << "," << t.shape[1] << ")");
  return t.shape[1];
}

// How BiasAct's bias relates to x.
enum class BiasKind { kNone, kRow, kSame };

}  // namespace

FusionScope::FusionScope(bool enable) : prev_(tl_fusion_enabled) {
  if (enable) tl_fusion_enabled = true;
}

FusionScope::~FusionScope() { tl_fusion_enabled = prev_; }

bool Enabled() { return tl_fusion_enabled; }

FusionCounters Counters() { return tl_counters; }

void ResetCounters() { tl_counters = FusionCounters{}; }

Tensor BiasAct(const Tensor& x, const Tensor& bias, Act act,
               float leaky_slope) {
  auto ai = x.impl();
  const bool a_was_vec = ai->shape.size() == 1;
  const int n = a_was_vec ? 1 : ai->shape[0];
  const int d = a_was_vec ? ai->shape[0] : ai->shape[1];

  BiasKind kind = BiasKind::kNone;
  std::shared_ptr<TensorImpl> bi;
  if (bias.defined()) {
    bi = bias.impl();
    if (bi->shape == ai->shape) {
      kind = BiasKind::kSame;
    } else {
      RNTRAJ_CHECK_MSG(RowVecLength(*bi, "bias_act") == d,
                       "bias_act: width " << d << " vs bias of "
                                          << RowVecLength(*bi, "bias_act"));
      kind = BiasKind::kRow;
    }
  }

  if (!tl_fusion_enabled) {
    switch (kind) {
      case BiasKind::kRow:
        return ActFallback(AddRowBroadcast(x, bias), act, leaky_slope);
      case BiasKind::kSame:
        return ActFallback(Add(x, bias), act, leaky_slope);
      case BiasKind::kNone:
      default:
        return ActFallback(x, act, leaky_slope);
    }
  }
  ++tl_counters.bias_act;

  auto out = internal::NewImplUninit(ai->shape);
  const float* bv = bi ? bi->data.data() : nullptr;
  for (int i = 0; i < n; ++i) {
    const float* arow = ai->data.data() + static_cast<size_t>(i) * d;
    float* orow = out->data.data() + static_cast<size_t>(i) * d;
    const float* brow =
        kind == BiasKind::kSame ? bv + static_cast<size_t>(i) * d : bv;
    switch (kind) {
      case BiasKind::kNone:
#pragma GCC ivdep
        for (int j = 0; j < d; ++j) {
          orow[j] = ActForward(arow[j], act, leaky_slope);
        }
        break;
      default:
#pragma GCC ivdep
        for (int j = 0; j < d; ++j) {
          orow[j] = ActForward(arow[j] + brow[j], act, leaky_slope);
        }
        break;
    }
  }

  std::vector<std::shared_ptr<TensorImpl>> inputs = {ai};
  if (bi) inputs.push_back(bi);
  internal::AttachNode(
      "bias_act", out, std::move(inputs),
      [ai, bi, kind, act, leaky_slope, n, d](const TensorImpl& o) {
        const bool need_a = ai->requires_grad;
        const bool need_b = bi && bi->requires_grad;
        if (!need_a && !need_b) return;
        if (need_a) ai->EnsureGrad();
        if (need_b) bi->EnsureGrad();
        for (int i = 0; i < n; ++i) {
          const float* y = o.data.data() + static_cast<size_t>(i) * d;
          const float* g = o.grad.data() + static_cast<size_t>(i) * d;
          float* ga =
              need_a ? ai->grad.data() + static_cast<size_t>(i) * d : nullptr;
          float* gb = nullptr;
          if (need_b) {
            gb = kind == BiasKind::kSame
                     ? bi->grad.data() + static_cast<size_t>(i) * d
                     : bi->grad.data();
          }
          for (int j = 0; j < d; ++j) {
            const float dy = g[j] * ActBackward(y[j], act, leaky_slope);
            if (need_a) ga[j] += dy;
            if (need_b) gb[j] += dy;
          }
        }
      });
  return Tensor(out);
}

namespace {

// Shared implementation for the plain and masked residual LayerNorm. When
// `mi` is null every row is live with weight 1; otherwise row i is scaled by
// the mask value (zero rows are skipped outright, keeping padding rows
// exactly zero and gradient-free, matching Mul(LayerNorm(a+b), row_mask)).
Tensor ResidualLayerNormImpl(const Tensor& a, const Tensor& b,
                             const Tensor& gamma, const Tensor& beta,
                             float eps, const std::shared_ptr<TensorImpl>& mi) {
  auto ai = a.impl();
  auto bi = b.impl();
  auto gi = gamma.impl();
  auto bti = beta.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  RNTRAJ_CHECK_MSG(bi->shape == ai->shape,
                   "residual_layer_norm: residual shape mismatch");
  const int n = ai->shape[0];
  const int d = ai->shape[1];
  RNTRAJ_CHECK_MSG(RowVecLength(*gi, "residual_layer_norm") == d &&
                       RowVecLength(*bti, "residual_layer_norm") == d,
                   "residual_layer_norm: gamma/beta width mismatch");

  ++tl_counters.residual_layer_norm;

  auto out = internal::NewImplUninit(ai->shape);
  const float* gm = gi->data.data();
  const float* bt = bti->data.data();
  const float* mk = mi ? mi->data.data() : nullptr;

  // Per-row statistics stashed for the backward (mu, inv_std interleaved);
  // only materialised when a grad node will record them.
  const bool rec = GradModeEnabled() &&
                   internal::AnyRequiresGrad({ai, bi, gi, bti});
  auto stats = rec ? std::make_shared<std::vector<float>>(2 * n) : nullptr;

  for (int i = 0; i < n; ++i) {
    float* orow = out->data.data() + static_cast<size_t>(i) * d;
    const float w = mk ? mk[i] : 1.0f;
    if (mk && w == 0.0f) {
      for (int j = 0; j < d; ++j) orow[j] = 0.0f;
      if (rec) {
        (*stats)[2 * i] = 0.0f;
        (*stats)[2 * i + 1] = 0.0f;
      }
      continue;
    }
    const float* arow = ai->data.data() + static_cast<size_t>(i) * d;
    const float* brow = bi->data.data() + static_cast<size_t>(i) * d;
    // Pass 1: the residual sum lands in the output row as scratch.
    double sum = 0.0;
#pragma GCC ivdep
    for (int j = 0; j < d; ++j) orow[j] = arow[j] + brow[j];
    for (int j = 0; j < d; ++j) sum += orow[j];
    const float mu = static_cast<float>(sum / d);
    double var = 0.0;
    for (int j = 0; j < d; ++j) {
      const double c = orow[j] - mu;
      var += c * c;
    }
    const float istd =
        1.0f / std::sqrt(static_cast<float>(var / d) + eps);
    if (rec) {
      (*stats)[2 * i] = mu;
      (*stats)[2 * i + 1] = istd;
    }
#pragma GCC ivdep
    for (int j = 0; j < d; ++j) {
      orow[j] = ((orow[j] - mu) * istd * gm[j] + bt[j]) * w;
    }
  }

  std::vector<std::shared_ptr<TensorImpl>> inputs = {ai, bi, gi, bti};
  if (mi) inputs.push_back(mi);
  internal::AttachNode(
      "residual_layer_norm", out, std::move(inputs),
      [ai, bi, gi, bti, mi, stats, n, d](const TensorImpl& o) {
        const bool need_a = ai->requires_grad;
        const bool need_b = bi->requires_grad;
        const bool need_g = gi->requires_grad;
        const bool need_bt = bti->requires_grad;
        if (need_a) ai->EnsureGrad();
        if (need_b) bi->EnsureGrad();
        if (need_g) gi->EnsureGrad();
        if (need_bt) bti->EnsureGrad();
        const float* gm = gi->data.data();
        const float* mk = mi ? mi->data.data() : nullptr;
        std::vector<float> xhat(d);
        for (int i = 0; i < n; ++i) {
          const float w = mk ? mk[i] : 1.0f;
          if (mk && w == 0.0f) continue;  // padding rows carry no gradient
          const float mu = (*stats)[2 * i];
          const float istd = (*stats)[2 * i + 1];
          const float* arow = ai->data.data() + static_cast<size_t>(i) * d;
          const float* brow = bi->data.data() + static_cast<size_t>(i) * d;
          const float* g = o.grad.data() + static_cast<size_t>(i) * d;
#pragma GCC ivdep
          for (int j = 0; j < d; ++j) {
            xhat[j] = (arow[j] + brow[j] - mu) * istd;
          }
          // Standard LayerNorm gradient with gy = g * w * gamma:
          // dx = istd * (gy - mean(gy) - xhat * mean(gy * xhat)).
          double sum_gy = 0.0, sum_gyx = 0.0;
          for (int j = 0; j < d; ++j) {
            const float gy = g[j] * w * gm[j];
            sum_gy += gy;
            sum_gyx += gy * xhat[j];
          }
          const float mean_gy = static_cast<float>(sum_gy / d);
          const float mean_gyx = static_cast<float>(sum_gyx / d);
          if (need_a || need_b) {
            float* ga =
                need_a ? ai->grad.data() + static_cast<size_t>(i) * d : nullptr;
            float* gb =
                need_b ? bi->grad.data() + static_cast<size_t>(i) * d : nullptr;
            for (int j = 0; j < d; ++j) {
              const float gy = g[j] * w * gm[j];
              const float dx = istd * (gy - mean_gy - xhat[j] * mean_gyx);
              if (need_a) ga[j] += dx;
              if (need_b) gb[j] += dx;
            }
          }
          if (need_g) {
            float* gg = gi->grad.data();
#pragma GCC ivdep
            for (int j = 0; j < d; ++j) gg[j] += g[j] * w * xhat[j];
          }
          if (need_bt) {
            float* gbt = bti->grad.data();
#pragma GCC ivdep
            for (int j = 0; j < d; ++j) gbt[j] += g[j] * w;
          }
        }
      });
  return Tensor(out);
}

}  // namespace

Tensor ResidualLayerNorm(const Tensor& a, const Tensor& b,
                         const Tensor& gamma, const Tensor& beta, float eps) {
  if (!tl_fusion_enabled) {
    // The exact LayerNorm::Forward chain applied to the residual sum.
    Tensor x = Add(a, b);
    Tensor mu = RowMean(x);
    Tensor xc = Sub(x, mu);
    Tensor var = RowMean(Square(xc));
    Tensor y = Div(xc, Sqrt(AddScalar(var, eps)));
    return Add(Mul(y, gamma), beta);
  }
  return ResidualLayerNormImpl(a, b, gamma, beta, eps, nullptr);
}

Tensor ResidualLayerNorm(const Tensor& a, const Tensor& b,
                         const Tensor& gamma, const Tensor& beta, float eps,
                         const Tensor& row_mask) {
  auto mi = row_mask.impl();
  RNTRAJ_CHECK_MSG(!mi->requires_grad,
                   "residual_layer_norm: mask must not require grad");
  RNTRAJ_CHECK_MSG(
      static_cast<int>(mi->data.size()) == a.impl()->shape[0],
      "residual_layer_norm: need one mask entry per row");
  if (!tl_fusion_enabled) {
    Tensor x = Add(a, b);
    Tensor mu = RowMean(x);
    Tensor xc = Sub(x, mu);
    Tensor var = RowMean(Square(xc));
    Tensor y = Div(xc, Sqrt(AddScalar(var, eps)));
    return Mul(Add(Mul(y, gamma), beta), row_mask);
  }
  return ResidualLayerNormImpl(a, b, gamma, beta, eps, mi);
}

namespace {

// Shared fused softmax body: the caller has already written the scaled
// (and additively masked) logits into the output row prefix; this runs the
// same RowMax / ExpRowMinusMax / normalise pipeline as SoftmaxRows on it.
inline void SoftmaxRowInPlace(float* y, int v) {
  const float mx = internal::RowMax(y, v);
  const float sum = internal::ExpRowMinusMax(y, y, v, mx);
  const float inv = 1.0f / sum;
#pragma GCC ivdep
  for (int j = 0; j < v; ++j) y[j] *= inv;
}

}  // namespace

Tensor ScaleSoftmax(const Tensor& a, float scale) {
  if (!tl_fusion_enabled) return SoftmaxRows(MulScalar(a, scale));
  ++tl_counters.scale_softmax;

  auto ai = a.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int n = ai->shape[0];
  const int d = ai->shape[1];
  auto out = internal::NewImplUninit(ai->shape);
  for (int i = 0; i < n; ++i) {
    const float* x = ai->data.data() + static_cast<size_t>(i) * d;
    float* y = out->data.data() + static_cast<size_t>(i) * d;
#pragma GCC ivdep
    for (int j = 0; j < d; ++j) y[j] = x[j] * scale;
    SoftmaxRowInPlace(y, d);
  }
  // Softmax Jacobian composed with the scale: d(scale*x)/dx folds into a
  // single multiplier on the usual (g - <g,y>) * y term.
  internal::AttachNode(
      "scale_softmax", out, {ai}, [ai, scale, n, d](const TensorImpl& o) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        for (int i = 0; i < n; ++i) {
          const float* y = o.data.data() + static_cast<size_t>(i) * d;
          const float* g = o.grad.data() + static_cast<size_t>(i) * d;
          float* ga = ai->grad.data() + static_cast<size_t>(i) * d;
          double dot = 0.0;
          for (int j = 0; j < d; ++j) dot += g[j] * y[j];
          for (int j = 0; j < d; ++j) {
            ga[j] += scale * (g[j] - static_cast<float>(dot)) * y[j];
          }
        }
      });
  return Tensor(out);
}

Tensor ScaleMaskedSoftmax(const Tensor& a, float scale, const Tensor& mask) {
  if (!tl_fusion_enabled) {
    return MaskedSoftmaxRows(MulScalar(a, scale), mask);
  }
  ++tl_counters.scale_softmax;

  auto ai = a.impl();
  auto mi = mask.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  RNTRAJ_CHECK_MSG(mi->shape == ai->shape,
                   "scale_masked_softmax: mask shape mismatch");
  RNTRAJ_CHECK_MSG(!mi->requires_grad,
                   "scale_masked_softmax: mask must not require grad");
  const int n = ai->shape[0];
  const int d = ai->shape[1];
  auto out = internal::NewImplUninit(ai->shape);
  for (int i = 0; i < n; ++i) {
    const float* x = ai->data.data() + static_cast<size_t>(i) * d;
    const float* mk = mi->data.data() + static_cast<size_t>(i) * d;
    float* y = out->data.data() + static_cast<size_t>(i) * d;
#pragma GCC ivdep
    for (int j = 0; j < d; ++j) y[j] = x[j] * scale + mk[j];
    SoftmaxRowInPlace(y, d);
  }
  internal::AttachNode(
      "scale_masked_softmax", out, {ai, mi},
      [ai, scale, n, d](const TensorImpl& o) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        for (int i = 0; i < n; ++i) {
          const float* y = o.data.data() + static_cast<size_t>(i) * d;
          const float* g = o.grad.data() + static_cast<size_t>(i) * d;
          float* ga = ai->grad.data() + static_cast<size_t>(i) * d;
          double dot = 0.0;
          for (int j = 0; j < d; ++j) dot += g[j] * y[j];
          for (int j = 0; j < d; ++j) {
            ga[j] += scale * (g[j] - static_cast<float>(dot)) * y[j];
          }
        }
      });
  return Tensor(out);
}

Tensor ScaleLengthMaskedSoftmax(const Tensor& a, float scale,
                                const std::vector<int>& valid) {
  if (!tl_fusion_enabled) {
    return LengthMaskedSoftmaxRows(MulScalar(a, scale), valid);
  }
  ++tl_counters.scale_softmax;

  auto ai = a.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int n = ai->shape[0];
  const int d = ai->shape[1];
  RNTRAJ_CHECK_MSG(static_cast<int>(valid.size()) == n,
                   "scale_length_masked_softmax: need one length per row");
  auto out = internal::NewImplUninit(ai->shape);
  for (int i = 0; i < n; ++i) {
    const int v = valid[i];
    RNTRAJ_CHECK_MSG(v >= 0 && v <= d, "scale_length_masked_softmax: valid "
                                           << v << " of " << d);
    const float* x = ai->data.data() + static_cast<size_t>(i) * d;
    float* y = out->data.data() + static_cast<size_t>(i) * d;
    if (v > 0) {
#pragma GCC ivdep
      for (int j = 0; j < v; ++j) y[j] = x[j] * scale;
      SoftmaxRowInPlace(y, v);
    }
    for (int j = v; j < d; ++j) y[j] = 0.0f;
  }
  internal::AttachNode(
      "scale_length_masked_softmax", out, {ai},
      [ai, scale, valid, n, d](const TensorImpl& o) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        for (int i = 0; i < n; ++i) {
          const int v = valid[i];
          if (v == 0) continue;
          const float* y = o.data.data() + static_cast<size_t>(i) * d;
          const float* g = o.grad.data() + static_cast<size_t>(i) * d;
          float* ga = ai->grad.data() + static_cast<size_t>(i) * d;
          double dot = 0.0;
          for (int j = 0; j < v; ++j) dot += g[j] * y[j];
          for (int j = 0; j < v; ++j) {
            ga[j] += scale * (g[j] - static_cast<float>(dot)) * y[j];
          }
        }
      });
  return Tensor(out);
}

Tensor ScaleShiftRows(const Tensor& a, const Tensor& gamma,
                      const Tensor& beta) {
  if (!tl_fusion_enabled) return Add(Mul(a, gamma), beta);
  ++tl_counters.scale_shift;

  auto ai = a.impl();
  auto gi = gamma.impl();
  auto bti = beta.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int n = ai->shape[0];
  const int d = ai->shape[1];
  RNTRAJ_CHECK_MSG(RowVecLength(*gi, "scale_shift_rows") == d &&
                       RowVecLength(*bti, "scale_shift_rows") == d,
                   "scale_shift_rows: gamma/beta width mismatch");

  auto out = internal::NewImplUninit(ai->shape);
  const float* gm = gi->data.data();
  const float* bt = bti->data.data();
  for (int i = 0; i < n; ++i) {
    const float* arow = ai->data.data() + static_cast<size_t>(i) * d;
    float* orow = out->data.data() + static_cast<size_t>(i) * d;
#pragma GCC ivdep
    for (int j = 0; j < d; ++j) orow[j] = arow[j] * gm[j] + bt[j];
  }
  internal::AttachNode(
      "scale_shift_rows", out, {ai, gi, bti},
      [ai, gi, bti, n, d](const TensorImpl& o) {
        const float* gm = gi->data.data();
        if (ai->requires_grad) {
          ai->EnsureGrad();
          for (int i = 0; i < n; ++i) {
            const float* g = o.grad.data() + static_cast<size_t>(i) * d;
            float* ga = ai->grad.data() + static_cast<size_t>(i) * d;
#pragma GCC ivdep
            for (int j = 0; j < d; ++j) ga[j] += g[j] * gm[j];
          }
        }
        if (gi->requires_grad) {
          gi->EnsureGrad();
          float* gg = gi->grad.data();
          for (int i = 0; i < n; ++i) {
            const float* g = o.grad.data() + static_cast<size_t>(i) * d;
            const float* arow = ai->data.data() + static_cast<size_t>(i) * d;
#pragma GCC ivdep
            for (int j = 0; j < d; ++j) gg[j] += g[j] * arow[j];
          }
        }
        if (bti->requires_grad) {
          bti->EnsureGrad();
          float* gbt = bti->grad.data();
          for (int i = 0; i < n; ++i) {
            const float* g = o.grad.data() + static_cast<size_t>(i) * d;
#pragma GCC ivdep
            for (int j = 0; j < d; ++j) gbt[j] += g[j];
          }
        }
      });
  return Tensor(out);
}

}  // namespace fusion
}  // namespace rntraj
