#include "src/tensor/buffer_pool.h"

#include <algorithm>
#include <array>

namespace rntraj {

namespace {

// Buffers are bucketed by the floor power of two of their capacity, so every
// buffer in bucket b holds at least 2^b floats. An allocation of n elements
// looks in the ceil bucket (and one above) and therefore always receives
// enough capacity.
constexpr int kNumBuckets = 27;             // up to 2^26 floats = 256 MiB
constexpr size_t kMaxPerBucket = 16;        // bound per-size cache depth
constexpr size_t kMinPooledElems = 32;      // tiny buffers: allocator is fine

struct Pool {
  std::array<std::vector<std::vector<float>>, kNumBuckets> buckets;
  BufferPoolStats stats;
  int scope_depth = 0;
};

Pool& ThePool() {
  thread_local Pool pool;
  return pool;
}

inline int FloorLog2(size_t n) {
  int b = 0;
  while (n >>= 1) ++b;
  return b;
}

inline int CeilLog2(size_t n) {
  const int f = FloorLog2(n);
  return (size_t{1} << f) == n ? f : f + 1;
}

}  // namespace

BufferPoolScope::BufferPoolScope() { ++ThePool().scope_depth; }

BufferPoolScope::~BufferPoolScope() { --ThePool().scope_depth; }

BufferPoolStats GetBufferPoolStats() { return ThePool().stats; }

void ClearBufferPool() {
  Pool& pool = ThePool();
  for (auto& bucket : pool.buckets) bucket.clear();
  pool.stats.cached_bytes = 0;
}

namespace internal {

bool BufferPoolActive() { return ThePool().scope_depth > 0; }

std::vector<float> AcquireBuffer(size_t n) {
  Pool& pool = ThePool();
  if (pool.scope_depth > 0 && n >= kMinPooledElems) {
    const int lo = CeilLog2(n);
    // The ceil bucket guarantees capacity; the next one up catches buffers
    // that landed there after vector growth rounding.
    for (int b = lo; b < std::min(lo + 2, kNumBuckets); ++b) {
      auto& bucket = pool.buckets[b];
      if (!bucket.empty()) {
        std::vector<float> buf = std::move(bucket.back());
        bucket.pop_back();
        pool.stats.cached_bytes -= buf.capacity() * sizeof(float);
        ++pool.stats.hits;
        // Capacity >= n by the bucket invariant: resize never reallocates.
        // Growing within capacity value-initialises only the new tail.
        buf.resize(n);
        return buf;
      }
    }
  }
  ++pool.stats.misses;
  std::vector<float> buf;
  if (pool.scope_depth > 0 && n >= kMinPooledElems) {
    // Reserve the full bucket size up front so the buffer's capacity lands in
    // the bucket future acquires of this size class search.
    buf.reserve(size_t{1} << CeilLog2(n));
  }
  buf.resize(n);
  return buf;
}

std::vector<float> AcquireZeroedBuffer(size_t n) {
  std::vector<float> buf = AcquireBuffer(n);
  std::fill(buf.begin(), buf.end(), 0.0f);
  return buf;
}

void ReleaseBuffer(std::vector<float>&& buf) {
  Pool& pool = ThePool();
  const size_t cap = buf.capacity();
  if (pool.scope_depth == 0 || cap < kMinPooledElems) return;
  const int b = FloorLog2(cap);
  if (b >= kNumBuckets) return;
  auto& bucket = pool.buckets[b];
  if (bucket.size() >= kMaxPerBucket) return;
  pool.stats.cached_bytes += cap * sizeof(float);
  ++pool.stats.recycled;
  bucket.push_back(std::move(buf));
}

}  // namespace internal
}  // namespace rntraj
