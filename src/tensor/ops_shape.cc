#include "src/tensor/op_helpers.h"
#include "src/tensor/ops.h"

namespace rntraj {

namespace {

// Rows/cols of a tensor treating rank-1 (d) as (1,d).
inline int RowsOf(const TensorImpl& t) {
  return t.shape.size() == 2 ? t.shape[0] : 1;
}
inline int ColsOf(const TensorImpl& t) {
  return t.shape.size() == 2 ? t.shape[1] : t.shape[0];
}

}  // namespace

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  RNTRAJ_CHECK(!parts.empty());
  const int d = ColsOf(*parts[0].impl());
  int total_rows = 0;
  std::vector<std::shared_ptr<TensorImpl>> impls;
  impls.reserve(parts.size());
  for (const auto& p : parts) {
    auto pi = p.impl();
    RNTRAJ_CHECK_MSG(ColsOf(*pi) == d, "concat_rows: column mismatch");
    total_rows += RowsOf(*pi);
    impls.push_back(pi);
  }
  auto out = internal::NewImplUninit({total_rows, d});
  size_t off = 0;
  for (const auto& pi : impls) {
    std::copy(pi->data.begin(), pi->data.end(), out->data.begin() + off);
    off += pi->data.size();
  }
  internal::AttachNode("concat_rows", out, impls, [impls](const TensorImpl& o) {
    size_t off = 0;
    for (const auto& pi : impls) {
      if (pi->requires_grad) {
        pi->EnsureGrad();
        for (size_t i = 0; i < pi->data.size(); ++i) {
          pi->grad[i] += o.grad[off + i];
        }
      }
      off += pi->data.size();
    }
  });
  return Tensor(out);
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  RNTRAJ_CHECK(!parts.empty());
  std::vector<std::shared_ptr<TensorImpl>> impls;
  impls.reserve(parts.size());
  const int n = RowsOf(*parts[0].impl());
  int total_cols = 0;
  for (const auto& p : parts) {
    auto pi = p.impl();
    RNTRAJ_CHECK_MSG(RowsOf(*pi) == n, "concat_cols: row mismatch");
    total_cols += ColsOf(*pi);
    impls.push_back(pi);
  }
  auto out = internal::NewImplUninit({n, total_cols});
  int col_off = 0;
  for (const auto& pi : impls) {
    const int d = ColsOf(*pi);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < d; ++j) {
        out->data[static_cast<size_t>(i) * total_cols + col_off + j] =
            pi->data[static_cast<size_t>(i) * d + j];
      }
    }
    col_off += d;
  }
  internal::AttachNode(
      "concat_cols", out, impls, [impls, n, total_cols](const TensorImpl& o) {
        int col_off = 0;
        for (const auto& pi : impls) {
          const int d = ColsOf(*pi);
          if (pi->requires_grad) {
            pi->EnsureGrad();
            for (int i = 0; i < n; ++i) {
              for (int j = 0; j < d; ++j) {
                pi->grad[static_cast<size_t>(i) * d + j] +=
                    o.grad[static_cast<size_t>(i) * total_cols + col_off + j];
              }
            }
          }
          col_off += d;
        }
      });
  return Tensor(out);
}

Tensor ConcatVec(const std::vector<Tensor>& parts) {
  RNTRAJ_CHECK(!parts.empty());
  std::vector<std::shared_ptr<TensorImpl>> impls;
  int total = 0;
  for (const auto& p : parts) {
    auto pi = p.impl();
    RNTRAJ_CHECK_MSG(pi->shape.size() == 1, "concat_vec: rank-1 required");
    total += pi->shape[0];
    impls.push_back(pi);
  }
  auto out = internal::NewImplUninit({total});
  size_t off = 0;
  for (const auto& pi : impls) {
    std::copy(pi->data.begin(), pi->data.end(), out->data.begin() + off);
    off += pi->data.size();
  }
  internal::AttachNode("concat_vec", out, impls, [impls](const TensorImpl& o) {
    size_t off = 0;
    for (const auto& pi : impls) {
      if (pi->requires_grad) {
        pi->EnsureGrad();
        for (size_t i = 0; i < pi->data.size(); ++i) {
          pi->grad[i] += o.grad[off + i];
        }
      }
      off += pi->data.size();
    }
  });
  return Tensor(out);
}

Tensor SliceRows(const Tensor& a, int start, int len) {
  auto ai = a.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int n = ai->shape[0];
  const int d = ai->shape[1];
  RNTRAJ_CHECK_MSG(start >= 0 && len > 0 && start + len <= n,
                   "slice_rows: [" << start << "," << start + len << ") of " << n);
  auto out = internal::NewImplUninit({len, d});
  std::copy(ai->data.begin() + static_cast<size_t>(start) * d,
            ai->data.begin() + static_cast<size_t>(start + len) * d,
            out->data.begin());
  internal::AttachNode("slice_rows", out, {ai}, [ai, start, d](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    const size_t base = static_cast<size_t>(start) * d;
    for (size_t i = 0; i < o.data.size(); ++i) ai->grad[base + i] += o.grad[i];
  });
  return Tensor(out);
}

Tensor SliceCols(const Tensor& a, int start, int len) {
  auto ai = a.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int n = ai->shape[0];
  const int d = ai->shape[1];
  RNTRAJ_CHECK_MSG(start >= 0 && len > 0 && start + len <= d,
                   "slice_cols: [" << start << "," << start + len << ") of " << d);
  auto out = internal::NewImplUninit({n, len});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < len; ++j) {
      out->data[static_cast<size_t>(i) * len + j] =
          ai->data[static_cast<size_t>(i) * d + start + j];
    }
  }
  internal::AttachNode(
      "slice_cols", out, {ai}, [ai, start, len, n, d](const TensorImpl& o) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        for (int i = 0; i < n; ++i) {
          for (int j = 0; j < len; ++j) {
            ai->grad[static_cast<size_t>(i) * d + start + j] +=
                o.grad[static_cast<size_t>(i) * len + j];
          }
        }
      });
  return Tensor(out);
}

Tensor GatherRows(const Tensor& a, const std::vector<int>& idx) {
  auto ai = a.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int n = ai->shape[0];
  const int d = ai->shape[1];
  RNTRAJ_CHECK(!idx.empty());
  auto out = internal::NewImplUninit({static_cast<int>(idx.size()), d});
  for (size_t i = 0; i < idx.size(); ++i) {
    RNTRAJ_CHECK_MSG(idx[i] >= 0 && idx[i] < n, "gather_rows: idx " << idx[i]
                                                                    << " of " << n);
    std::copy(ai->data.begin() + static_cast<size_t>(idx[i]) * d,
              ai->data.begin() + static_cast<size_t>(idx[i] + 1) * d,
              out->data.begin() + i * d);
  }
  internal::AttachNode("gather_rows", out, {ai}, [ai, idx, d](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (size_t i = 0; i < idx.size(); ++i) {
      for (int j = 0; j < d; ++j) {
        ai->grad[static_cast<size_t>(idx[i]) * d + j] += o.grad[i * d + j];
      }
    }
  });
  return Tensor(out);
}

Tensor GatherElems(const Tensor& a, const std::vector<int>& idx) {
  auto ai = a.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int n = ai->shape[0];
  const int d = ai->shape[1];
  RNTRAJ_CHECK_MSG(static_cast<int>(idx.size()) == n,
                   "gather_elems: need one column index per row");
  auto out = internal::NewImplUninit({n});
  for (int i = 0; i < n; ++i) {
    RNTRAJ_CHECK(idx[i] >= 0 && idx[i] < d);
    out->data[i] = ai->data[static_cast<size_t>(i) * d + idx[i]];
  }
  internal::AttachNode("gather_elems", out, {ai}, [ai, idx, d](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (size_t i = 0; i < idx.size(); ++i) {
      ai->grad[i * d + idx[i]] += o.grad[i];
    }
  });
  return Tensor(out);
}

Tensor Reshape(const Tensor& a, const std::vector<int>& shape) {
  auto ai = a.impl();
  RNTRAJ_CHECK_MSG(ShapeSize(shape) == ai->size(), "reshape: size mismatch");
  auto out = internal::NewImplUninit(shape);
  out->data = ai->data;
  internal::AttachNode("reshape", out, {ai}, [ai](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (size_t i = 0; i < o.data.size(); ++i) ai->grad[i] += o.grad[i];
  });
  return Tensor(out);
}

Tensor ExpandRows(const Tensor& a, int n) {
  auto ai = a.impl();
  const int d = ColsOf(*ai);
  RNTRAJ_CHECK_MSG(RowsOf(*ai) == 1, "expand_rows: input must be a single row");
  RNTRAJ_CHECK(n > 0);
  auto out = internal::NewImplUninit({n, d});
  for (int i = 0; i < n; ++i) {
    std::copy(ai->data.begin(), ai->data.end(),
              out->data.begin() + static_cast<size_t>(i) * d);
  }
  internal::AttachNode("expand_rows", out, {ai}, [ai, n, d](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < d; ++j) {
        ai->grad[j] += o.grad[static_cast<size_t>(i) * d + j];
      }
    }
  });
  return Tensor(out);
}

}  // namespace rntraj
