#ifndef RNTRAJ_TENSOR_OPS_H_
#define RNTRAJ_TENSOR_OPS_H_

#include <vector>

#include "src/common/random.h"
#include "src/tensor/tensor.h"

/// \file ops.h
/// Differentiable tensor operations (reverse-mode). Every op validates shapes
/// with RNTRAJ_CHECK, computes its forward result, and (when grad mode is on
/// and any input requires grad) records a GradNode with a handwritten
/// backward closure. All backwards are verified against numerical derivatives
/// by tests/tensor_gradcheck_test.cc.
///
/// Broadcasting for binary ops (Add/Sub/Mul/Div) supports the four patterns
/// used by the models:
///   same-shape; scalar b (size 1); row vector b of shape (d) or (1,d) against
///   a of shape (n,d); column b of shape (n,1) against a of shape (n,d).

namespace rntraj {

// ----- Binary elementwise (with broadcasting; see file comment) -------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

/// a + s elementwise.
Tensor AddScalar(const Tensor& a, float s);
/// a * s elementwise.
Tensor MulScalar(const Tensor& a, float s);
/// -a.
Tensor Neg(const Tensor& a);

// ----- Linear algebra --------------------------------------------------------

/// (n,k) x (k,m) -> (n,m). Rank-1 `a` of shape (k) is treated as (1,k) and the
/// result squeezed back to rank 1.
Tensor Matmul(const Tensor& a, const Tensor& b);

/// a * b^T: (n,k) x (m,k) -> (n,m), without materialising the transpose
/// (attention scores Q K^T).
Tensor MatmulTransB(const Tensor& a, const Tensor& b);

/// Rank-2 transpose.
Tensor Transpose(const Tensor& a);

// ----- Fused broadcast ops (attention hot path) ------------------------------

/// Outer sum: out[i,j] = col[i] + row[j] -> (n,m). `col` is rank-1 (n) or
/// (n,1); `row` is rank-1 (m) or (1,m). Replaces the
/// Add(Add(Zeros(n,m), col), row) chain of the GAT score matrix.
Tensor AddRowCol(const Tensor& col, const Tensor& row);

/// out[i,:] = a[i,:] + row -> same shape as `a` ((n,d) or rank-1 (d)).
/// Single-pass row broadcast (bias add, key/query sums).
Tensor AddRowBroadcast(const Tensor& a, const Tensor& row);

/// Row softmax of (a + mask) in one pass, without materialising the masked
/// logits. `mask` is an additive no-grad constant of a's shape (use -1e9 to
/// forbid positions, e.g. DenseGraph::neg_mask).
Tensor MaskedSoftmaxRows(const Tensor& a, const Tensor& mask);

// ----- Shape / indexing ------------------------------------------------------

/// Vertically stacks rank-2 tensors with equal column counts; rank-1 inputs of
/// size d are treated as a single (1,d) row.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Horizontally concatenates rank-2 tensors with equal row counts.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Concatenates rank-1 tensors into one rank-1 tensor.
Tensor ConcatVec(const std::vector<Tensor>& parts);

/// Rows [start, start+len) of a rank-2 tensor.
Tensor SliceRows(const Tensor& a, int start, int len);

/// Columns [start, start+len) of a rank-2 tensor.
Tensor SliceCols(const Tensor& a, int start, int len);

/// Row-gather: out[i, :] = a[idx[i], :]. Duplicate indices accumulate gradient
/// (this is the embedding-lookup primitive).
Tensor GatherRows(const Tensor& a, const std::vector<int>& idx);

/// Element pick per row: out[i] = a[i, idx[i]]; rank-1 output of size n.
Tensor GatherElems(const Tensor& a, const std::vector<int>& idx);

/// Same data viewed under a new shape (sizes must match); data is copied.
Tensor Reshape(const Tensor& a, const std::vector<int>& shape);

/// Repeats a single row ((1,d) or rank-1 (d)) n times into an (n,d) tensor.
Tensor ExpandRows(const Tensor& a, int n);

// ----- Reductions ------------------------------------------------------------

/// Sum of all elements -> scalar.
Tensor SumAll(const Tensor& a);
/// Mean of all elements -> scalar.
Tensor MeanAll(const Tensor& a);
/// Per-row sum of a rank-2 tensor -> (n,1).
Tensor RowSum(const Tensor& a);
/// Per-row mean of a rank-2 tensor -> (n,1).
Tensor RowMean(const Tensor& a);
/// Per-column sum of a rank-2 tensor -> rank-1 (d).
Tensor ColSum(const Tensor& a);
/// Per-column mean of a rank-2 tensor -> rank-1 (d).
Tensor ColMean(const Tensor& a);

// ----- Nonlinearities ---------------------------------------------------------

Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope = 0.2f);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs must be positive.
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);

/// Row-wise softmax of a rank-2 tensor (additive masks should be applied to
/// the logits by the caller before this op).
Tensor SoftmaxRows(const Tensor& a);

/// Row-wise log-softmax of a rank-2 tensor.
Tensor LogSoftmaxRows(const Tensor& a);

/// Inverted-dropout: elements zeroed with probability p, survivors scaled by
/// 1/(1-p). Identity when `training` is false or p == 0.
Tensor Dropout(const Tensor& a, float p, bool training, Rng& rng);

}  // namespace rntraj

#endif  // RNTRAJ_TENSOR_OPS_H_
