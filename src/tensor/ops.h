#ifndef RNTRAJ_TENSOR_OPS_H_
#define RNTRAJ_TENSOR_OPS_H_

#include <vector>

#include "src/common/random.h"
#include "src/tensor/tensor.h"

/// \file ops.h
/// Differentiable tensor operations (reverse-mode). Every op validates shapes
/// with RNTRAJ_CHECK, computes its forward result, and (when grad mode is on
/// and any input requires grad) records a GradNode with a handwritten
/// backward closure. All backwards are verified against numerical derivatives
/// by tests/tensor_gradcheck_test.cc.
///
/// Broadcasting for binary ops (Add/Sub/Mul/Div) supports the four patterns
/// used by the models:
///   same-shape; scalar b (size 1); row vector b of shape (d) or (1,d) against
///   a of shape (n,d); column b of shape (n,1) against a of shape (n,d).

namespace rntraj {

// ----- Binary elementwise (with broadcasting; see file comment) -------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

/// a + s elementwise.
Tensor AddScalar(const Tensor& a, float s);
/// a * s elementwise.
Tensor MulScalar(const Tensor& a, float s);
/// -a.
Tensor Neg(const Tensor& a);

// ----- Linear algebra --------------------------------------------------------

/// (n,k) x (k,m) -> (n,m). Rank-1 `a` of shape (k) is treated as (1,k) and the
/// result squeezed back to rank 1.
Tensor Matmul(const Tensor& a, const Tensor& b);

/// a * b^T: (n,k) x (m,k) -> (n,m), without materialising the transpose
/// (attention scores Q K^T).
Tensor MatmulTransB(const Tensor& a, const Tensor& b);

/// Rank-2 transpose.
Tensor Transpose(const Tensor& a);

// ----- Batched linear algebra (padded-batch forward path) --------------------
//
// A padded batch stores B samples as one rank-2 tensor of B equal-height row
// blocks (see padded_batch.h). The batched products below run one packed GEMM
// per block over the leading dim, so per-sample attention matrices come out of
// the same blocked kernels as the fat (sum-of-lengths, d) projections.

/// Block-diagonal product: a is (batch*m, k), b is (batch*k, n), both read as
/// `batch` stacked blocks; out(i) = a(i) * b(i), stacked to (batch*m, n).
Tensor BatchedMatmul(const Tensor& a, const Tensor& b, int batch);

/// Block-diagonal a * b^T: a is (batch*m, k), b is (batch*n, k);
/// out(i) = a(i) * b(i)^T, stacked to (batch*m, n). The padded-batch
/// attention-score kernel (one Q K^T per sample, no cross-sample scores).
Tensor BatchedMatmulTransB(const Tensor& a, const Tensor& b, int batch);

// ----- Ragged block-diagonal ops (batched GAT over sub-graphs) ---------------
//
// The batched GAT path processes every sub-graph of a batch in one pass. Its
// square per-graph matrices (scores, attention) use a PACKED block-diagonal
// layout: a rank-1 tensor of length sum(sizes[g]^2) where block g occupies the
// contiguous row-major span [sum_{h<g} sizes[h]^2, ...) as a (n_g, n_g)
// matrix. Rectangular node features stay on the flat (sum(sizes), d) layout.
// Blocks are contiguous, so each op runs the exact per-graph kernel
// (MaskedSoftmaxRows pipeline / packed GEMM core) per block — bit-identical
// to the graph-by-graph loop it replaces. sizes[g] == 0 blocks are legal and
// contribute nothing.

/// Block outer sum: for block g with node offset o and packed entry offset e,
/// out[e + i*n_g + j] = col[o + i] + row[o + j]. `col`/`row` both have
/// sum(sizes) elements (any rank-1/(n,1)/(1,n) shaping). Builds every
/// sub-graph's GAT score matrix (AddRowCol per graph) in one pass.
Tensor AddRowColBlocks(const Tensor& col, const Tensor& row,
                       const std::vector<int>& sizes);

/// Segment-masked softmax over a packed block-diagonal tensor: every block-g
/// row of width sizes[g] is the softmax of (a + mask) over that row —
/// bit-identical to MaskedSoftmaxRows on the (n_g, n_g) block. `mask` is an
/// additive no-grad constant in the same packed layout
/// (BatchedDenseGraph::neg_mask).
Tensor SegmentMaskedSoftmax(const Tensor& a, const Tensor& mask,
                            const std::vector<int>& sizes);

/// Block-diagonal attention-times-value product: `attn` is packed
/// block-diagonal (sum(sizes[g]^2)), `b` is flat (sum(sizes), d);
/// out rows of block g = attn(g) (n_g, n_g) * b(g) (n_g, d), stacked to
/// (sum(sizes), d). Runs the packed GEMM core per block, so each block is
/// bit-identical to Matmul on the same operands.
Tensor BlockDiagMatmul(const Tensor& attn, const Tensor& b,
                       const std::vector<int>& sizes);

// ----- Fused broadcast ops (attention hot path) ------------------------------

/// Outer sum: out[i,j] = col[i] + row[j] -> (n,m). `col` is rank-1 (n) or
/// (n,1); `row` is rank-1 (m) or (1,m). Replaces the
/// Add(Add(Zeros(n,m), col), row) chain of the GAT score matrix.
Tensor AddRowCol(const Tensor& col, const Tensor& row);

/// out[i,:] = a[i,:] + row -> same shape as `a` ((n,d) or rank-1 (d)).
/// Single-pass row broadcast (bias add, key/query sums).
Tensor AddRowBroadcast(const Tensor& a, const Tensor& row);

/// Block row broadcast: `a` is (batch*block, d) read as `batch` stacked
/// blocks of height `block`, `rows` is (batch, d);
/// out[i*block + r, :] = a[i*block + r, :] + rows[i, :]. The batched-decoder
/// attention broadcast — each lane's query row is added to every row of its
/// padded key block — without materialising a (batch*block, d) expansion of
/// `rows` (the batched counterpart of AddRowBroadcast).
Tensor AddBlockBroadcast(const Tensor& a, const Tensor& rows, int block);

/// Row softmax of (a + mask) in one pass, without materialising the masked
/// logits. `mask` is an additive no-grad constant of a's shape (use -1e9 to
/// forbid positions, e.g. DenseGraph::neg_mask).
Tensor MaskedSoftmaxRows(const Tensor& a, const Tensor& mask);

/// Length-masked row softmax: row i is the softmax of its first valid[i]
/// entries (bit-identical to SoftmaxRows over that prefix), with the
/// remaining entries — and entire rows with valid[i] == 0 — set to zero.
/// The padded-batch attention mask: valid keys form a prefix of each padded
/// row, and padding query rows are zeroed outright.
Tensor LengthMaskedSoftmaxRows(const Tensor& a, const std::vector<int>& valid);

// ----- Shape / indexing ------------------------------------------------------

/// Vertically stacks rank-2 tensors with equal column counts; rank-1 inputs of
/// size d are treated as a single (1,d) row.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Horizontally concatenates rank-2 tensors with equal row counts.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Concatenates rank-1 tensors into one rank-1 tensor.
Tensor ConcatVec(const std::vector<Tensor>& parts);

/// Rows [start, start+len) of a rank-2 tensor.
Tensor SliceRows(const Tensor& a, int start, int len);

/// Columns [start, start+len) of a rank-2 tensor.
Tensor SliceCols(const Tensor& a, int start, int len);

/// Row-gather: out[i, :] = a[idx[i], :]. Duplicate indices accumulate gradient
/// (this is the embedding-lookup primitive).
Tensor GatherRows(const Tensor& a, const std::vector<int>& idx);

/// Element pick per row: out[i] = a[i, idx[i]]; rank-1 output of size n.
Tensor GatherElems(const Tensor& a, const std::vector<int>& idx);

/// Same data viewed under a new shape (sizes must match); data is copied.
Tensor Reshape(const Tensor& a, const std::vector<int>& shape);

/// Repeats a single row ((1,d) or rank-1 (d)) n times into an (n,d) tensor.
Tensor ExpandRows(const Tensor& a, int n);

/// Ragged-to-padded: `a` is (sum(sizes), d) read as consecutive row segments;
/// segment i lands at rows [i*pad_to, i*pad_to + sizes[i]) of the
/// (sizes.size()*pad_to, d) output, the remainder zero-filled. Requires
/// sizes[i] <= pad_to. Inverse of UnpadRows.
Tensor PadRows(const Tensor& a, const std::vector<int>& sizes, int pad_to);

/// Padded-to-ragged: drops the padding rows of a (sizes.size()*pad_to, d)
/// tensor, packing the valid prefixes back to (sum(sizes), d).
Tensor UnpadRows(const Tensor& a, const std::vector<int>& sizes, int pad_to);

// ----- Reductions ------------------------------------------------------------

/// Sum of all elements -> scalar.
Tensor SumAll(const Tensor& a);
/// Mean of all elements -> scalar.
Tensor MeanAll(const Tensor& a);
/// Per-row sum of a rank-2 tensor -> (n,1).
Tensor RowSum(const Tensor& a);
/// Per-row mean of a rank-2 tensor -> (n,1).
Tensor RowMean(const Tensor& a);
/// Per-column sum of a rank-2 tensor -> rank-1 (d).
Tensor ColSum(const Tensor& a);
/// Per-column mean of a rank-2 tensor -> rank-1 (d).
Tensor ColMean(const Tensor& a);

/// Masked mean-pool over consecutive row segments: `a` is (sum(sizes), d);
/// out[i, :] = mean of segment i's rows (bit-identical to ColMean of the
/// segment). The batched graph readout / trajectory pooling primitive —
/// padding never enters because the caller passes true lengths as sizes.
Tensor SegmentMeanRows(const Tensor& a, const std::vector<int>& sizes);

// ----- Nonlinearities ---------------------------------------------------------

Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope = 0.2f);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs must be positive.
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);

/// Row-wise softmax of a rank-2 tensor (additive masks should be applied to
/// the logits by the caller before this op).
Tensor SoftmaxRows(const Tensor& a);

/// Row-wise log-softmax of a rank-2 tensor.
Tensor LogSoftmaxRows(const Tensor& a);

/// Inverted-dropout: elements zeroed with probability p, survivors scaled by
/// 1/(1-p). Identity when `training` is false or p == 0.
Tensor Dropout(const Tensor& a, float p, bool training, Rng& rng);

}  // namespace rntraj

#endif  // RNTRAJ_TENSOR_OPS_H_
