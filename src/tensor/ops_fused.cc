#include <algorithm>
#include <cmath>

#include "src/tensor/fast_math.h"
#include "src/tensor/op_helpers.h"
#include "src/tensor/ops.h"

/// \file ops_fused.cc
/// Fused broadcast primitives for the attention hot paths. Each op replaces a
/// chain of generic broadcast ops (and their intermediate n*m tensors) with a
/// single pass over the output.

namespace rntraj {

namespace {

// Accepts a rank-1 (n) or rank-2 (n,1) column vector; returns n.
int ColumnLength(const TensorImpl& t, const char* op) {
  if (t.shape.size() == 1) return t.shape[0];
  // Streamed piecewise (no string concatenation: GCC 12's -Wrestrict trips
  // on the temporary-string insert pattern the old message used).
  RNTRAJ_CHECK_MSG(t.shape.size() == 2 && t.shape[1] == 1,
                   op << ": expected column vector (n) or (n,1), got rank-"
                      << t.shape.size() << " tensor with "
                      << (t.shape.size() == 2 ? t.shape[1] : -1) << " cols");
  return t.shape[0];
}

// Accepts a rank-1 (m) or rank-2 (1,m) row vector; returns m.
int RowLength(const TensorImpl& t, const char* op) {
  if (t.shape.size() == 1) return t.shape[0];
  RNTRAJ_CHECK_MSG(t.shape.size() == 2 && t.shape[0] == 1,
                   op << ": expected row vector, got shape ("
                      << t.shape[0] << "," << t.shape[1] << ")");
  return t.shape[1];
}

}  // namespace

Tensor AddRowCol(const Tensor& col, const Tensor& row) {
  auto ci = col.impl();
  auto ri = row.impl();
  const int n = ColumnLength(*ci, "add_row_col");
  const int m = RowLength(*ri, "add_row_col");

  auto out = internal::NewImplUninit({n, m});
  const float* u = ci->data.data();
  const float* v = ri->data.data();
  for (int i = 0; i < n; ++i) {
    float* orow = out->data.data() + static_cast<size_t>(i) * m;
    const float ui = u[i];
#pragma GCC ivdep
    for (int j = 0; j < m; ++j) orow[j] = ui + v[j];
  }

  internal::AttachNode(
      "add_row_col", out, {ci, ri}, [ci, ri, n, m](const TensorImpl& o) {
        if (ci->requires_grad) {
          ci->EnsureGrad();
          for (int i = 0; i < n; ++i) {
            const float* grow = o.grad.data() + static_cast<size_t>(i) * m;
            float acc = 0.0f;
            for (int j = 0; j < m; ++j) acc += grow[j];
            ci->grad[i] += acc;
          }
        }
        if (ri->requires_grad) {
          ri->EnsureGrad();
          float* gv = ri->grad.data();
          for (int i = 0; i < n; ++i) {
            const float* grow = o.grad.data() + static_cast<size_t>(i) * m;
#pragma GCC ivdep
            for (int j = 0; j < m; ++j) gv[j] += grow[j];
          }
        }
      });
  return Tensor(out);
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& row) {
  auto ai = a.impl();
  auto ri = row.impl();
  const bool a_was_vec = ai->shape.size() == 1;
  const int n = a_was_vec ? 1 : ai->shape[0];
  const int d = a_was_vec ? ai->shape[0] : ai->shape[1];
  RNTRAJ_CHECK_MSG(RowLength(*ri, "add_row_broadcast") == d,
                   "add_row_broadcast: width " << d << " vs row of "
                                               << RowLength(*ri, "add_row_broadcast"));

  auto out = internal::NewImplUninit(ai->shape);
  const float* v = ri->data.data();
  for (int i = 0; i < n; ++i) {
    const float* arow = ai->data.data() + static_cast<size_t>(i) * d;
    float* orow = out->data.data() + static_cast<size_t>(i) * d;
#pragma GCC ivdep
    for (int j = 0; j < d; ++j) orow[j] = arow[j] + v[j];
  }

  internal::AttachNode(
      "add_row_broadcast", out, {ai, ri}, [ai, ri, n, d](const TensorImpl& o) {
        if (ai->requires_grad) {
          ai->EnsureGrad();
          float* ga = ai->grad.data();
          const float* g = o.grad.data();
#pragma GCC ivdep
          for (size_t i = 0; i < o.grad.size(); ++i) ga[i] += g[i];
        }
        if (ri->requires_grad) {
          ri->EnsureGrad();
          float* gv = ri->grad.data();
          for (int i = 0; i < n; ++i) {
            const float* grow = o.grad.data() + static_cast<size_t>(i) * d;
#pragma GCC ivdep
            for (int j = 0; j < d; ++j) gv[j] += grow[j];
          }
        }
      });
  return Tensor(out);
}

Tensor MaskedSoftmaxRows(const Tensor& a, const Tensor& mask) {
  auto ai = a.impl();
  auto mi = mask.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  RNTRAJ_CHECK_MSG(mi->shape == ai->shape,
                   "masked_softmax_rows: mask shape mismatch");
  // The mask is an additive constant (graph connectivity / causal structure),
  // not a learnable input; its gradient is never needed and the backward
  // below does not produce one.
  RNTRAJ_CHECK_MSG(!mi->requires_grad,
                   "masked_softmax_rows: mask must not require grad");
  const int n = ai->shape[0];
  const int d = ai->shape[1];

  auto out = internal::NewImplUninit(ai->shape);
  for (int i = 0; i < n; ++i) {
    const float* x = ai->data.data() + static_cast<size_t>(i) * d;
    const float* mk = mi->data.data() + static_cast<size_t>(i) * d;
    float* y = out->data.data() + static_cast<size_t>(i) * d;
    // One pass builds the masked logits directly into the output row; the
    // vectorised exp then runs in place.
#pragma GCC ivdep
    for (int j = 0; j < d; ++j) y[j] = x[j] + mk[j];
    const float mx = internal::RowMax(y, d);
    const float sum = internal::ExpRowMinusMax(y, y, d, mx);
    const float inv = 1.0f / sum;
#pragma GCC ivdep
    for (int j = 0; j < d; ++j) y[j] *= inv;
  }

  // Same Jacobian as SoftmaxRows: the additive mask shifts logits only.
  internal::AttachNode(
      "masked_softmax_rows", out, {ai, mi}, [ai, n, d](const TensorImpl& o) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        for (int i = 0; i < n; ++i) {
          const float* y = o.data.data() + static_cast<size_t>(i) * d;
          const float* g = o.grad.data() + static_cast<size_t>(i) * d;
          float* ga = ai->grad.data() + static_cast<size_t>(i) * d;
          double dot = 0.0;
          for (int j = 0; j < d; ++j) dot += g[j] * y[j];
          for (int j = 0; j < d; ++j) {
            ga[j] += (g[j] - static_cast<float>(dot)) * y[j];
          }
        }
      });
  return Tensor(out);
}

}  // namespace rntraj
