#include <algorithm>
#include <numeric>

#include "src/tensor/fast_math.h"
#include "src/tensor/gemm.h"
#include "src/tensor/op_helpers.h"
#include "src/tensor/ops.h"

/// \file ops_batched.cc
/// Batch-aware masked ops for the padded forward path (padded_batch.h) and
/// the ragged block-diagonal GAT path (nn/graph.h BatchedDenseGraph):
/// block-diagonal GEMMs over the leading dim, length-masked softmax, masked
/// segment pooling, the ragged<->padded layout converters, and the packed
/// block-diagonal score/softmax/attention ops for batched sub-graph
/// attention. Each op is bit-identical to its per-sample counterpart on the
/// same block (same kernels, same accumulation order); the only rounding the
/// batched forward path introduces comes from fat same-weight GEMMs running
/// at different heights than their per-sample equivalents (FMA contraction
/// in the row-peel kernels), bounded by ~1e-6 in the encoder equivalence
/// tests.

namespace rntraj {

namespace {

// Validates a (batch*m, k) x (batch*k_b, n) block structure; returns the
// per-block row counts through the out-params.
void CheckBlocks(const TensorImpl& a, const TensorImpl& b, int batch,
                 const char* op, int* m, int* k, int* bm, int* bn) {
  RNTRAJ_CHECK_MSG(a.shape.size() == 2 && b.shape.size() == 2,
                   op << ": rank-2 inputs required");
  RNTRAJ_CHECK_MSG(batch > 0 && a.shape[0] % batch == 0 &&
                       b.shape[0] % batch == 0,
                   op << ": rows " << a.shape[0] << "/" << b.shape[0]
                      << " not divisible by batch " << batch);
  *m = a.shape[0] / batch;
  *k = a.shape[1];
  *bm = b.shape[0] / batch;
  *bn = b.shape[1];
}

}  // namespace

Tensor BatchedMatmul(const Tensor& a, const Tensor& b, int batch) {
  auto ai = a.impl();
  auto bi = b.impl();
  int m, k, bk, n;
  CheckBlocks(*ai, *bi, batch, "batched_matmul", &m, &k, &bk, &n);
  RNTRAJ_CHECK_MSG(k == bk, "batched_matmul: inner dims " << k << " vs " << bk);

  auto out = internal::NewImpl({batch * m, n});
  for (int s = 0; s < batch; ++s) {
    internal::GemmAcc(ai->data.data() + static_cast<size_t>(s) * m * k,
                      bi->data.data() + static_cast<size_t>(s) * k * n,
                      out->data.data() + static_cast<size_t>(s) * m * n, m, k,
                      n);
  }

  internal::AttachNode(
      "batched_matmul", out, {ai, bi},
      [ai, bi, batch, m, k, n](const TensorImpl& o) {
        for (int s = 0; s < batch; ++s) {
          const float* ga = o.grad.data() + static_cast<size_t>(s) * m * n;
          if (ai->requires_grad) {
            ai->EnsureGrad();
            // dA(i) = dC(i) * B(i)^T
            internal::GemmTransBAcc(
                ga, bi->data.data() + static_cast<size_t>(s) * k * n,
                ai->grad.data() + static_cast<size_t>(s) * m * k, m, n, k);
          }
          if (bi->requires_grad) {
            bi->EnsureGrad();
            // dB(i) = A(i)^T * dC(i)
            internal::GemmTransAAcc(
                ai->data.data() + static_cast<size_t>(s) * m * k, ga,
                bi->grad.data() + static_cast<size_t>(s) * k * n, k, m, n);
          }
        }
      });
  return Tensor(out);
}

Tensor BatchedMatmulTransB(const Tensor& a, const Tensor& b, int batch) {
  auto ai = a.impl();
  auto bi = b.impl();
  int m, k, n, bk;
  CheckBlocks(*ai, *bi, batch, "batched_matmul_trans_b", &m, &k, &n, &bk);
  RNTRAJ_CHECK_MSG(k == bk,
                   "batched_matmul_trans_b: inner dims " << k << " vs " << bk);

  auto out = internal::NewImpl({batch * m, n});
  for (int s = 0; s < batch; ++s) {
    internal::GemmTransBAcc(ai->data.data() + static_cast<size_t>(s) * m * k,
                            bi->data.data() + static_cast<size_t>(s) * n * k,
                            out->data.data() + static_cast<size_t>(s) * m * n,
                            m, k, n);
  }

  internal::AttachNode(
      "batched_matmul_trans_b", out, {ai, bi},
      [ai, bi, batch, m, k, n](const TensorImpl& o) {
        for (int s = 0; s < batch; ++s) {
          const float* ga = o.grad.data() + static_cast<size_t>(s) * m * n;
          if (ai->requires_grad) {
            ai->EnsureGrad();
            // dA(i)(m,k) = dC(i)(m,n) * B(i)(n,k)
            internal::GemmAcc(ga,
                              bi->data.data() + static_cast<size_t>(s) * n * k,
                              ai->grad.data() + static_cast<size_t>(s) * m * k,
                              m, n, k);
          }
          if (bi->requires_grad) {
            bi->EnsureGrad();
            // dB(i)(n,k) = dC(i)(m,n)^T * A(i)(m,k)
            internal::GemmTransAAcc(
                ga, ai->data.data() + static_cast<size_t>(s) * m * k,
                bi->grad.data() + static_cast<size_t>(s) * n * k, n, m, k);
          }
        }
      });
  return Tensor(out);
}

namespace {

// Validates the packed block-diagonal layout shared by the ragged-block ops:
// per-graph node counts in `sizes`, flat nodes = sum(sizes), packed entries =
// sum(sizes^2). Returns both totals through the out-params.
void CheckPackedBlocks(const std::vector<int>& sizes, const char* op,
                       int* total_nodes, int* total_entries) {
  int nodes = 0;
  int entries = 0;
  for (int s : sizes) {
    RNTRAJ_CHECK_MSG(s >= 0, op << ": negative block size " << s);
    nodes += s;
    entries += s * s;
  }
  *total_nodes = nodes;
  *total_entries = entries;
}

}  // namespace

Tensor AddRowColBlocks(const Tensor& col, const Tensor& row,
                       const std::vector<int>& sizes) {
  auto ci = col.impl();
  auto ri = row.impl();
  int total_nodes, total_entries;
  CheckPackedBlocks(sizes, "add_row_col_blocks", &total_nodes, &total_entries);
  RNTRAJ_CHECK_MSG(ci->size() == total_nodes && ri->size() == total_nodes,
                   "add_row_col_blocks: col/row sizes "
                       << ci->size() << "/" << ri->size() << " vs "
                       << total_nodes << " nodes");

  auto out = internal::NewImplUninit({total_entries});
  {
    const float* c = ci->data.data();
    const float* r = ri->data.data();
    float* y = out->data.data();
    int node = 0;
    for (int s : sizes) {
      for (int i = 0; i < s; ++i) {
        const float ci_val = c[node + i];
#pragma GCC ivdep
        for (int j = 0; j < s; ++j) y[j] = ci_val + r[node + j];
        y += s;
      }
      node += s;
    }
  }

  internal::AttachNode(
      "add_row_col_blocks", out, {ci, ri}, [ci, ri, sizes](const TensorImpl& o) {
        const float* g = o.grad.data();
        int node = 0;
        for (int s : sizes) {
          for (int i = 0; i < s; ++i) {
            if (ci->requires_grad) {
              ci->EnsureGrad();
              float acc = 0.0f;
              for (int j = 0; j < s; ++j) acc += g[j];
              ci->grad[static_cast<size_t>(node) + i] += acc;
            }
            if (ri->requires_grad) {
              ri->EnsureGrad();
              float* gr = ri->grad.data() + node;
#pragma GCC ivdep
              for (int j = 0; j < s; ++j) gr[j] += g[j];
            }
            g += s;
          }
          node += s;
        }
      });
  return Tensor(out);
}

Tensor SegmentMaskedSoftmax(const Tensor& a, const Tensor& mask,
                            const std::vector<int>& sizes) {
  auto ai = a.impl();
  auto mi = mask.impl();
  int total_nodes, total_entries;
  CheckPackedBlocks(sizes, "segment_masked_softmax", &total_nodes,
                    &total_entries);
  RNTRAJ_CHECK_MSG(ai->size() == total_entries,
                   "segment_masked_softmax: " << ai->size() << " entries vs "
                                              << total_entries << " packed");
  RNTRAJ_CHECK_MSG(mi->size() == total_entries,
                   "segment_masked_softmax: mask size mismatch");
  // Connectivity is a constant, exactly as in MaskedSoftmaxRows.
  RNTRAJ_CHECK_MSG(!mi->requires_grad,
                   "segment_masked_softmax: mask must not require grad");

  auto out = internal::NewImplUninit({total_entries});
  {
    const float* x = ai->data.data();
    const float* mk = mi->data.data();
    float* y = out->data.data();
    for (int s : sizes) {
      for (int i = 0; i < s; ++i) {
        // The MaskedSoftmaxRows pipeline on one width-s row: masked logits
        // built into the output row, vectorised exp in place. Bit-identical
        // to the per-graph op on the same block.
#pragma GCC ivdep
        for (int j = 0; j < s; ++j) y[j] = x[j] + mk[j];
        const float mx = internal::RowMax(y, s);
        const float sum = internal::ExpRowMinusMax(y, y, s, mx);
        const float inv = 1.0f / sum;
#pragma GCC ivdep
        for (int j = 0; j < s; ++j) y[j] *= inv;
        x += s;
        mk += s;
        y += s;
      }
    }
  }

  // Same per-row Jacobian as SoftmaxRows; the mask only shifts logits.
  internal::AttachNode(
      "segment_masked_softmax", out, {ai, mi}, [ai, sizes](const TensorImpl& o) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        const float* y = o.data.data();
        const float* g = o.grad.data();
        float* ga = ai->grad.data();
        for (int s : sizes) {
          for (int i = 0; i < s; ++i) {
            double dot = 0.0;
            for (int j = 0; j < s; ++j) dot += g[j] * y[j];
            for (int j = 0; j < s; ++j) {
              ga[j] += (g[j] - static_cast<float>(dot)) * y[j];
            }
            y += s;
            g += s;
            ga += s;
          }
        }
      });
  return Tensor(out);
}

Tensor BlockDiagMatmul(const Tensor& attn, const Tensor& b,
                       const std::vector<int>& sizes) {
  auto ai = attn.impl();
  auto bi = b.impl();
  int total_nodes, total_entries;
  CheckPackedBlocks(sizes, "block_diag_matmul", &total_nodes, &total_entries);
  RNTRAJ_CHECK_MSG(ai->size() == total_entries,
                   "block_diag_matmul: " << ai->size() << " entries vs "
                                         << total_entries << " packed");
  RNTRAJ_CHECK_MSG(bi->shape.size() == 2 && bi->shape[0] == total_nodes,
                   "block_diag_matmul: b rows "
                       << bi->shape[0] << " vs " << total_nodes << " nodes");
  const int d = bi->shape[1];

  auto out = internal::NewImpl({total_nodes, d});
  {
    int node = 0;
    int entry = 0;
    for (int s : sizes) {
      if (s > 0) {
        internal::GemmAcc(ai->data.data() + entry,
                          bi->data.data() + static_cast<size_t>(node) * d,
                          out->data.data() + static_cast<size_t>(node) * d, s,
                          s, d);
      }
      node += s;
      entry += s * s;
    }
  }

  internal::AttachNode(
      "block_diag_matmul", out, {ai, bi}, [ai, bi, sizes, d](const TensorImpl& o) {
        int node = 0;
        int entry = 0;
        for (int s : sizes) {
          if (s > 0) {
            const float* gc = o.grad.data() + static_cast<size_t>(node) * d;
            if (ai->requires_grad) {
              ai->EnsureGrad();
              // dAttn(g)(s,s) = dC(g)(s,d) * B(g)(s,d)^T
              internal::GemmTransBAcc(
                  gc, bi->data.data() + static_cast<size_t>(node) * d,
                  ai->grad.data() + entry, s, d, s);
            }
            if (bi->requires_grad) {
              bi->EnsureGrad();
              // dB(g)(s,d) = Attn(g)(s,s)^T * dC(g)(s,d)
              internal::GemmTransAAcc(
                  ai->data.data() + entry, gc,
                  bi->grad.data() + static_cast<size_t>(node) * d, s, s, d);
            }
          }
          node += s;
          entry += s * s;
        }
      });
  return Tensor(out);
}

Tensor AddBlockBroadcast(const Tensor& a, const Tensor& rows, int block) {
  auto ai = a.impl();
  auto ri = rows.impl();
  RNTRAJ_CHECK_MSG(ai->shape.size() == 2 && ri->shape.size() == 2,
                   "add_block_broadcast: rank-2 inputs required");
  const int d = ai->shape[1];
  const int batch = ri->shape[0];
  RNTRAJ_CHECK_MSG(block > 0 && ai->shape[0] == batch * block,
                   "add_block_broadcast: " << ai->shape[0] << " rows vs "
                                           << batch << "x" << block);
  RNTRAJ_CHECK_MSG(ri->shape[1] == d, "add_block_broadcast: width "
                                          << d << " vs rows of "
                                          << ri->shape[1]);

  auto out = internal::NewImplUninit(ai->shape);
  for (int s = 0; s < batch; ++s) {
    const float* v = ri->data.data() + static_cast<size_t>(s) * d;
    for (int r = 0; r < block; ++r) {
      const float* arow =
          ai->data.data() + (static_cast<size_t>(s) * block + r) * d;
      float* orow =
          out->data.data() + (static_cast<size_t>(s) * block + r) * d;
#pragma GCC ivdep
      for (int j = 0; j < d; ++j) orow[j] = arow[j] + v[j];
    }
  }

  internal::AttachNode(
      "add_block_broadcast", out, {ai, ri},
      [ai, ri, batch, block, d](const TensorImpl& o) {
        if (ai->requires_grad) {
          ai->EnsureGrad();
          float* ga = ai->grad.data();
          const float* g = o.grad.data();
#pragma GCC ivdep
          for (size_t i = 0; i < o.grad.size(); ++i) ga[i] += g[i];
        }
        if (ri->requires_grad) {
          ri->EnsureGrad();
          for (int s = 0; s < batch; ++s) {
            float* gv = ri->grad.data() + static_cast<size_t>(s) * d;
            for (int r = 0; r < block; ++r) {
              const float* grow =
                  o.grad.data() + (static_cast<size_t>(s) * block + r) * d;
#pragma GCC ivdep
              for (int j = 0; j < d; ++j) gv[j] += grow[j];
            }
          }
        }
      });
  return Tensor(out);
}

Tensor LengthMaskedSoftmaxRows(const Tensor& a, const std::vector<int>& valid) {
  auto ai = a.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int n = ai->shape[0];
  const int d = ai->shape[1];
  RNTRAJ_CHECK_MSG(static_cast<int>(valid.size()) == n,
                   "length_masked_softmax_rows: need one length per row");

  auto out = internal::NewImplUninit(ai->shape);
  for (int i = 0; i < n; ++i) {
    const int v = valid[i];
    RNTRAJ_CHECK_MSG(v >= 0 && v <= d, "length_masked_softmax_rows: valid "
                                           << v << " of " << d);
    const float* x = ai->data.data() + static_cast<size_t>(i) * d;
    float* y = out->data.data() + static_cast<size_t>(i) * d;
    if (v > 0) {
      // Same max/exp/normalise pipeline as SoftmaxRows, run on the prefix.
      const float mx = internal::RowMax(x, v);
      const float sum = internal::ExpRowMinusMax(x, y, v, mx);
      const float inv = 1.0f / sum;
#pragma GCC ivdep
      for (int j = 0; j < v; ++j) y[j] *= inv;
    }
    for (int j = v; j < d; ++j) y[j] = 0.0f;
  }

  internal::AttachNode(
      "length_masked_softmax_rows", out, {ai},
      [ai, valid, n, d](const TensorImpl& o) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        for (int i = 0; i < n; ++i) {
          const int v = valid[i];
          if (v == 0) continue;
          const float* y = o.data.data() + static_cast<size_t>(i) * d;
          const float* g = o.grad.data() + static_cast<size_t>(i) * d;
          float* ga = ai->grad.data() + static_cast<size_t>(i) * d;
          double dot = 0.0;
          for (int j = 0; j < v; ++j) dot += g[j] * y[j];
          for (int j = 0; j < v; ++j) {
            ga[j] += (g[j] - static_cast<float>(dot)) * y[j];
          }
        }
      });
  return Tensor(out);
}

Tensor SegmentMeanRows(const Tensor& a, const std::vector<int>& sizes) {
  auto ai = a.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int d = ai->shape[1];
  const int num = static_cast<int>(sizes.size());
  RNTRAJ_CHECK(num > 0);
  int total = 0;
  for (int s : sizes) {
    RNTRAJ_CHECK_MSG(s > 0, "segment_mean_rows: empty segment");
    total += s;
  }
  RNTRAJ_CHECK_MSG(total == ai->shape[0], "segment_mean_rows: sizes cover "
                                              << total << " of "
                                              << ai->shape[0] << " rows");

  // Accumulate exactly like ColMean over each segment (float accumulator,
  // row-major order, one final scale) so the batched readout is bit-identical
  // to the per-sample ColMean it replaces.
  auto out = internal::NewImpl({num, d});
  int off = 0;
  for (int s = 0; s < num; ++s) {
    float* orow = out->data.data() + static_cast<size_t>(s) * d;
    for (int i = 0; i < sizes[s]; ++i) {
      const float* arow = ai->data.data() + static_cast<size_t>(off + i) * d;
#pragma GCC ivdep
      for (int j = 0; j < d; ++j) orow[j] += arow[j];
    }
    const float scale = 1.0f / static_cast<float>(sizes[s]);
#pragma GCC ivdep
    for (int j = 0; j < d; ++j) orow[j] *= scale;
    off += sizes[s];
  }

  internal::AttachNode(
      "segment_mean_rows", out, {ai}, [ai, sizes, d](const TensorImpl& o) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        int off = 0;
        for (size_t s = 0; s < sizes.size(); ++s) {
          const float scale = 1.0f / static_cast<float>(sizes[s]);
          const float* grow = o.grad.data() + s * d;
          for (int i = 0; i < sizes[s]; ++i) {
            float* ga = ai->grad.data() + static_cast<size_t>(off + i) * d;
#pragma GCC ivdep
            for (int j = 0; j < d; ++j) ga[j] += grow[j] * scale;
          }
          off += sizes[s];
        }
      });
  return Tensor(out);
}

Tensor PadRows(const Tensor& a, const std::vector<int>& sizes, int pad_to) {
  auto ai = a.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int d = ai->shape[1];
  const int num = static_cast<int>(sizes.size());
  RNTRAJ_CHECK(num > 0 && pad_to > 0);
  int total = 0;
  for (int s : sizes) {
    RNTRAJ_CHECK_MSG(s > 0 && s <= pad_to,
                     "pad_rows: segment " << s << " vs pad " << pad_to);
    total += s;
  }
  RNTRAJ_CHECK_MSG(total == ai->shape[0],
                   "pad_rows: sizes cover " << total << " of " << ai->shape[0]
                                            << " rows");

  auto out = internal::NewImpl({num * pad_to, d});
  int off = 0;
  for (int s = 0; s < num; ++s) {
    std::copy(ai->data.begin() + static_cast<size_t>(off) * d,
              ai->data.begin() + static_cast<size_t>(off + sizes[s]) * d,
              out->data.begin() + static_cast<size_t>(s) * pad_to * d);
    off += sizes[s];
  }

  internal::AttachNode(
      "pad_rows", out, {ai}, [ai, sizes, pad_to, d](const TensorImpl& o) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        int off = 0;
        for (size_t s = 0; s < sizes.size(); ++s) {
          const float* g = o.grad.data() + s * pad_to * d;
          float* ga = ai->grad.data() + static_cast<size_t>(off) * d;
          const size_t count = static_cast<size_t>(sizes[s]) * d;
#pragma GCC ivdep
          for (size_t i = 0; i < count; ++i) ga[i] += g[i];
          off += sizes[s];
        }
      });
  return Tensor(out);
}

Tensor UnpadRows(const Tensor& a, const std::vector<int>& sizes, int pad_to) {
  auto ai = a.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int d = ai->shape[1];
  const int num = static_cast<int>(sizes.size());
  RNTRAJ_CHECK(num > 0 && pad_to > 0);
  RNTRAJ_CHECK_MSG(ai->shape[0] == num * pad_to,
                   "unpad_rows: " << ai->shape[0] << " rows vs " << num << "x"
                                  << pad_to);
  int total = 0;
  for (int s : sizes) {
    RNTRAJ_CHECK_MSG(s > 0 && s <= pad_to,
                     "unpad_rows: segment " << s << " vs pad " << pad_to);
    total += s;
  }

  auto out = internal::NewImplUninit({total, d});
  int off = 0;
  for (int s = 0; s < num; ++s) {
    std::copy(ai->data.begin() + static_cast<size_t>(s) * pad_to * d,
              ai->data.begin() +
                  (static_cast<size_t>(s) * pad_to + sizes[s]) * d,
              out->data.begin() + static_cast<size_t>(off) * d);
    off += sizes[s];
  }

  internal::AttachNode(
      "unpad_rows", out, {ai}, [ai, sizes, pad_to, d](const TensorImpl& o) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        int off = 0;
        for (size_t s = 0; s < sizes.size(); ++s) {
          const float* g = o.grad.data() + static_cast<size_t>(off) * d;
          float* ga = ai->grad.data() + s * pad_to * d;
          const size_t count = static_cast<size_t>(sizes[s]) * d;
#pragma GCC ivdep
          for (size_t i = 0; i < count; ++i) ga[i] += g[i];
          off += sizes[s];
        }
      });
  return Tensor(out);
}

}  // namespace rntraj
