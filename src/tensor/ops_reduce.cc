#include "src/tensor/op_helpers.h"
#include "src/tensor/ops.h"

namespace rntraj {

Tensor SumAll(const Tensor& a) {
  auto ai = a.impl();
  auto out = internal::NewImpl({1});
  double acc = 0.0;
  for (float v : ai->data) acc += v;
  out->data[0] = static_cast<float>(acc);
  internal::AttachNode("sum_all", out, {ai}, [ai](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    const float g = o.grad[0];
    for (auto& gv : ai->grad) gv += g;
  });
  return Tensor(out);
}

Tensor MeanAll(const Tensor& a) {
  auto ai = a.impl();
  auto out = internal::NewImpl({1});
  double acc = 0.0;
  for (float v : ai->data) acc += v;
  const float inv_n = 1.0f / static_cast<float>(ai->size());
  out->data[0] = static_cast<float>(acc) * inv_n;
  internal::AttachNode("mean_all", out, {ai}, [ai, inv_n](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    const float g = o.grad[0] * inv_n;
    for (auto& gv : ai->grad) gv += g;
  });
  return Tensor(out);
}

namespace {

Tensor RowReduce(const Tensor& a, bool mean, const char* name) {
  auto ai = a.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int n = ai->shape[0];
  const int d = ai->shape[1];
  const float scale = mean ? 1.0f / static_cast<float>(d) : 1.0f;
  auto out = internal::NewImpl({n, 1});
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j = 0; j < d; ++j) acc += ai->data[static_cast<size_t>(i) * d + j];
    out->data[i] = static_cast<float>(acc) * scale;
  }
  internal::AttachNode(name, out, {ai}, [ai, n, d, scale](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < n; ++i) {
      const float g = o.grad[i] * scale;
      for (int j = 0; j < d; ++j) ai->grad[static_cast<size_t>(i) * d + j] += g;
    }
  });
  return Tensor(out);
}

Tensor ColReduce(const Tensor& a, bool mean, const char* name) {
  auto ai = a.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int n = ai->shape[0];
  const int d = ai->shape[1];
  const float scale = mean ? 1.0f / static_cast<float>(n) : 1.0f;
  auto out = internal::NewImpl({d});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) {
      out->data[j] += ai->data[static_cast<size_t>(i) * d + j];
    }
  }
  for (int j = 0; j < d; ++j) out->data[j] *= scale;
  internal::AttachNode(name, out, {ai}, [ai, n, d, scale](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < d; ++j) {
        ai->grad[static_cast<size_t>(i) * d + j] += o.grad[j] * scale;
      }
    }
  });
  return Tensor(out);
}

}  // namespace

Tensor RowSum(const Tensor& a) { return RowReduce(a, false, "row_sum"); }
Tensor RowMean(const Tensor& a) { return RowReduce(a, true, "row_mean"); }
Tensor ColSum(const Tensor& a) { return ColReduce(a, false, "col_sum"); }
Tensor ColMean(const Tensor& a) { return ColReduce(a, true, "col_mean"); }

}  // namespace rntraj
