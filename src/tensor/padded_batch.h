#ifndef RNTRAJ_TENSOR_PADDED_BATCH_H_
#define RNTRAJ_TENSOR_PADDED_BATCH_H_

#include <algorithm>
#include <vector>

#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

/// \file padded_batch.h
/// The padded-batch tensor layout of the cross-sample forward path: B
/// variable-length samples stored as one rank-2 tensor of B equal-height row
/// blocks ((B*pad_len, d), conceptually (B, L, d)), plus the per-sample valid
/// lengths. Row-wise ops (Linear, LayerNorm, FeedForward) run over the whole
/// tensor as fat GEMMs; cross-row ops use the batched masked primitives of
/// ops.h (BatchedMatmul*, LengthMaskedSoftmaxRows, SegmentMeanRows), which
/// confine attention and pooling to each sample's valid prefix. Padding rows
/// start zero and never influence any valid row.

namespace rntraj {

/// A batch of padded per-sample row blocks. Value type: copying shares the
/// underlying tensor storage like Tensor itself does.
struct PaddedBatch {
  Tensor data;               ///< (batch()*pad_len, d); block i = sample i.
  std::vector<int> lengths;  ///< Valid rows at the top of each block.
  int pad_len = 0;           ///< Block height (>= max length).

  int batch() const { return static_cast<int>(lengths.size()); }
  int total_len() const {
    int t = 0;
    for (int l : lengths) t += l;
    return t;
  }

  /// Packs a ragged (sum(lengths), d) tensor into padded blocks of height
  /// max(lengths).
  static PaddedBatch FromFlat(const Tensor& flat,
                              const std::vector<int>& lengths) {
    PaddedBatch pb;
    pb.lengths = lengths;
    pb.pad_len = *std::max_element(lengths.begin(), lengths.end());
    pb.data = PadRows(flat, lengths, pb.pad_len);
    return pb;
  }

  /// Same layout, new storage (the per-layer update).
  PaddedBatch WithData(Tensor new_data) const {
    PaddedBatch pb;
    pb.data = std::move(new_data);
    pb.lengths = lengths;
    pb.pad_len = pad_len;
    return pb;
  }

  /// Packs the valid prefixes back to a ragged (sum(lengths), d) tensor.
  Tensor Flat() const { return UnpadRows(data, lengths, pad_len); }

  /// Valid rows of sample i, as a (lengths[i], d) tensor.
  Tensor Slice(int i) const {
    return SliceRows(data, i * pad_len, lengths[i]);
  }

  /// (batch()*pad_len, 1) column marking valid rows 1 and padding rows 0;
  /// constant, no grad. Multiply row-local op outputs by it (e.g. the masked
  /// LayerNorm overload) to re-zero padding rows.
  Tensor RowMask() const {
    Tensor mask = Tensor::Zeros({batch() * pad_len, 1});
    for (int i = 0; i < batch(); ++i) {
      std::fill_n(mask.data().begin() + static_cast<size_t>(i) * pad_len,
                  lengths[i], 1.0f);
    }
    return mask;
  }

  /// Per-padded-row attention lengths: lengths[i] for the valid rows of block
  /// i (queries attend over the sample's valid keys) and 0 for padding rows
  /// (their softmax output is zeroed). Feed to LengthMaskedSoftmaxRows.
  std::vector<int> RowValidCounts() const {
    std::vector<int> valid(static_cast<size_t>(batch()) * pad_len, 0);
    for (int i = 0; i < batch(); ++i) {
      std::fill_n(valid.begin() + static_cast<size_t>(i) * pad_len, lengths[i],
                  lengths[i]);
    }
    return valid;
  }
};

}  // namespace rntraj

#endif  // RNTRAJ_TENSOR_PADDED_BATCH_H_
