#ifndef RNTRAJ_TENSOR_OP_HELPERS_H_
#define RNTRAJ_TENSOR_OP_HELPERS_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/tensor/tensor.h"

/// \file op_helpers.h
/// Internal helpers shared by the op implementation files. Not part of the
/// public API.

namespace rntraj {
namespace internal {

/// Allocates an output impl of the given shape (data zero-filled). Storage
/// comes from the thread's buffer pool inside a BufferPoolScope.
inline std::shared_ptr<TensorImpl> NewImpl(const std::vector<int>& shape) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = AcquireZeroedBuffer(static_cast<size_t>(ShapeSize(shape)));
  return impl;
}

/// Like NewImpl but with unspecified data contents: for ops that overwrite
/// every output element, skipping the zero-fill pass.
inline std::shared_ptr<TensorImpl> NewImplUninit(const std::vector<int>& shape) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = AcquireBuffer(static_cast<size_t>(ShapeSize(shape)));
  return impl;
}

/// True when at least one input wants gradient.
inline bool AnyRequiresGrad(
    const std::vector<std::shared_ptr<TensorImpl>>& inputs) {
  for (const auto& t : inputs) {
    if (t->requires_grad) return true;
  }
  return false;
}

/// Finalises an op: marks `out` as requiring grad and attaches a GradNode when
/// grad mode is enabled and any input requires grad. `backward` may assume
/// `out.grad` is populated when invoked.
inline void AttachNode(const char* op, const std::shared_ptr<TensorImpl>& out,
                       std::vector<std::shared_ptr<TensorImpl>> inputs,
                       std::function<void(const TensorImpl&)> backward) {
  if (!GradModeEnabled() || !AnyRequiresGrad(inputs)) return;
  out->requires_grad = true;
  auto node = std::make_shared<GradNode>();
  node->op = op;
  node->inputs = std::move(inputs);
  node->out = out;
  node->backward = std::move(backward);
  out->node = std::move(node);
}

/// Broadcast pattern for binary elementwise ops.
enum class Broadcast { kSame, kScalar, kRow, kCol };

/// Classifies the (a, b) shape pair; aborts on unsupported combinations.
Broadcast ClassifyBroadcast(const TensorImpl& a, const TensorImpl& b,
                            const char* op);

}  // namespace internal
}  // namespace rntraj

#endif  // RNTRAJ_TENSOR_OP_HELPERS_H_
