#ifndef RNTRAJ_TENSOR_TENSOR_H_
#define RNTRAJ_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/tensor/buffer_pool.h"

/// \file tensor.h
/// A small dense float32 tensor with reverse-mode automatic differentiation.
///
/// Design notes:
///  - Tensors are value handles over a shared `TensorImpl` (shared ownership is
///    intrinsic to an autograd tape: a tensor is simultaneously the output of
///    its producer node and an input of any number of consumer nodes; this is
///    the one documented exception to the single-owner rule in DESIGN.md §5).
///  - All differentiable operations live in ops.h as free functions. Each op
///    records a `GradNode` holding its backward closure; `Tensor::Backward()`
///    runs the tape in reverse topological order.
///  - Rank 1 and rank 2 tensors cover every model in this repository; scalars
///    are rank-1 tensors of size 1.

namespace rntraj {

struct TensorImpl;

/// A node of the autograd tape: the producer of one tensor.
struct GradNode {
  /// Operation name, used in error messages and tape dumps.
  const char* op = "?";
  /// Inputs kept alive for the duration of the backward pass.
  std::vector<std::shared_ptr<TensorImpl>> inputs;
  /// The produced tensor (weak: the impl owns the node, not vice versa).
  std::weak_ptr<TensorImpl> out;
  /// Accumulates d(loss)/d(input) into each input's grad buffer, given that
  /// `out.grad` already holds d(loss)/d(out).
  std::function<void(const TensorImpl& out)> backward;
};

/// Reference-counted tensor storage. Use through `Tensor`.
struct TensorImpl {
  std::vector<int> shape;
  std::vector<float> data;
  /// Gradient buffer; allocated lazily (empty until first accumulation).
  std::vector<float> grad;
  bool requires_grad = false;
  /// Producer node; null for leaves and for tensors created under NoGradGuard.
  std::shared_ptr<GradNode> node;

  /// Offers data/grad storage back to the thread's buffer pool (a no-op
  /// outside a BufferPoolScope).
  ~TensorImpl() {
    internal::ReleaseBuffer(std::move(data));
    internal::ReleaseBuffer(std::move(grad));
  }

  int64_t size() const { return static_cast<int64_t>(data.size()); }

  /// Allocates (zero-filled) the gradient buffer if not present.
  void EnsureGrad() {
    if (grad.empty()) grad = internal::AcquireZeroedBuffer(data.size());
  }
};

/// Value handle for a float32 tensor with optional autograd tracking.
class Tensor {
 public:
  /// Null handle; `defined()` is false.
  Tensor() = default;

  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // ----- Factories ---------------------------------------------------------

  /// Zero-filled tensor of the given shape.
  static Tensor Zeros(const std::vector<int>& shape, bool requires_grad = false);

  /// Constant-filled tensor.
  static Tensor Full(const std::vector<int>& shape, float value,
                     bool requires_grad = false);

  /// Tensor initialised from a flat row-major buffer (size must match shape).
  static Tensor FromVector(const std::vector<int>& shape,
                           const std::vector<float>& values,
                           bool requires_grad = false);

  /// Gaussian init (mean 0) drawn from the global RNG.
  static Tensor Randn(const std::vector<int>& shape, float stddev,
                      bool requires_grad = false);

  /// Uniform init in [lo, hi) drawn from the global RNG.
  static Tensor Uniform(const std::vector<int>& shape, float lo, float hi,
                        bool requires_grad = false);

  /// Rank-1 size-1 tensor holding one value.
  static Tensor Scalar(float value, bool requires_grad = false);

  // ----- Introspection -----------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const std::vector<int>& shape() const { return impl_->shape; }
  int rank() const { return static_cast<int>(impl_->shape.size()); }
  int dim(int i) const { return impl_->shape.at(i); }
  int64_t size() const { return impl_->size(); }

  /// Number of rows: dim(0) for rank-2; the length of a rank-1 tensor, which
  /// is treated as a column vector of shape (n, 1). Aborts on higher ranks —
  /// a rank-3 tensor has no single row/column reading.
  int rows() const {
    RNTRAJ_CHECK_MSG(rank() <= 2, "rows() on rank-" << rank() << " tensor");
    return dim(0);
  }
  /// Number of columns: dim(1) for rank-2; 1 for rank-1 (column-vector view,
  /// matching rows()). Aborts on higher ranks.
  int cols() const {
    RNTRAJ_CHECK_MSG(rank() <= 2, "cols() on rank-" << rank() << " tensor");
    return rank() == 2 ? dim(1) : 1;
  }

  /// The single value of a size-1 tensor.
  float item() const {
    RNTRAJ_CHECK_MSG(size() == 1, "item() on tensor of size " << size());
    return impl_->data[0];
  }

  float at(int i) const { return impl_->data.at(i); }
  float at(int i, int j) const {
    RNTRAJ_CHECK(rank() == 2);
    return impl_->data[static_cast<size_t>(i) * dim(1) + j];
  }

  std::vector<float>& data() { return impl_->data; }
  const std::vector<float>& data() const { return impl_->data; }
  std::vector<float>& grad() {
    impl_->EnsureGrad();
    return impl_->grad;
  }

  bool requires_grad() const { return impl_->requires_grad; }
  void set_requires_grad(bool v) { impl_->requires_grad = v; }

  std::shared_ptr<TensorImpl> impl() const { return impl_; }

  // ----- Autograd ----------------------------------------------------------

  /// Clears the gradient buffer (keeps allocation).
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this (scalar) tensor: seeds
  /// d(this)/d(this)=1 and propagates through the tape.
  void Backward();

  /// A copy sharing no autograd history (fresh leaf with the same data).
  Tensor Detach() const;

  /// Human-readable one-line summary: shape and a few leading values.
  std::string ToString() const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// RAII guard that disables tape recording within its scope (inference mode).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// True when ops should record backward nodes (no NoGradGuard active).
bool GradModeEnabled();

/// Runs the backward pass from `root` (must be size 1). Exposed for tests;
/// prefer `Tensor::Backward()`.
void RunBackward(const Tensor& root);

/// Returns the total number of elements for a shape.
int64_t ShapeSize(const std::vector<int>& shape);

}  // namespace rntraj

#endif  // RNTRAJ_TENSOR_TENSOR_H_
