#include "src/tensor/op_helpers.h"
#include "src/tensor/ops.h"

namespace rntraj {

namespace internal {

Broadcast ClassifyBroadcast(const TensorImpl& a, const TensorImpl& b,
                            const char* op) {
  if (a.shape == b.shape) return Broadcast::kSame;
  if (b.size() == 1) return Broadcast::kScalar;
  if (a.shape.size() == 2) {
    const int n = a.shape[0];
    const int d = a.shape[1];
    if (b.shape.size() == 1 && b.shape[0] == d) return Broadcast::kRow;
    if (b.shape.size() == 2 && b.shape[0] == 1 && b.shape[1] == d) {
      return Broadcast::kRow;
    }
    if (b.shape.size() == 2 && b.shape[0] == n && b.shape[1] == 1) {
      return Broadcast::kCol;
    }
  }
  RNTRAJ_CHECK_MSG(false, op << ": unsupported broadcast, a.rank=" << a.shape.size()
                             << " b.rank=" << b.shape.size());
  RNTRAJ_UNREACHABLE();
}

namespace {

// Maps the flat index of `a` to the flat index of broadcast `b`.
inline size_t BIndex(Broadcast bc, size_t i, int d) {
  switch (bc) {
    case Broadcast::kSame:
      return i;
    case Broadcast::kScalar:
      return 0;
    case Broadcast::kRow:
      return i % static_cast<size_t>(d);
    case Broadcast::kCol:
      return i / static_cast<size_t>(d);
  }
  return 0;
}

enum class BinOp { kAdd, kSub, kMul, kDiv };

Tensor Binary(BinOp kind, const char* name, const Tensor& a, const Tensor& b) {
  auto ai = a.impl();
  auto bi = b.impl();
  const Broadcast bc = ClassifyBroadcast(*ai, *bi, name);
  const int d = ai->shape.size() == 2 ? ai->shape[1] : 1;

  auto out = NewImplUninit(ai->shape);
  const size_t n = ai->data.size();
  for (size_t i = 0; i < n; ++i) {
    const float av = ai->data[i];
    const float bv = bi->data[BIndex(bc, i, d)];
    float r = 0.0f;
    switch (kind) {
      case BinOp::kAdd: r = av + bv; break;
      case BinOp::kSub: r = av - bv; break;
      case BinOp::kMul: r = av * bv; break;
      case BinOp::kDiv: r = av / bv; break;
    }
    out->data[i] = r;
  }

  AttachNode(name, out, {ai, bi}, [kind, bc, d, ai, bi](const TensorImpl& o) {
    const size_t n = o.data.size();
    if (ai->requires_grad) {
      ai->EnsureGrad();
      for (size_t i = 0; i < n; ++i) {
        const float g = o.grad[i];
        switch (kind) {
          case BinOp::kAdd:
          case BinOp::kSub:
            ai->grad[i] += g;
            break;
          case BinOp::kMul:
            ai->grad[i] += g * bi->data[BIndex(bc, i, d)];
            break;
          case BinOp::kDiv:
            ai->grad[i] += g / bi->data[BIndex(bc, i, d)];
            break;
        }
      }
    }
    if (bi->requires_grad) {
      bi->EnsureGrad();
      for (size_t i = 0; i < n; ++i) {
        const float g = o.grad[i];
        const size_t j = BIndex(bc, i, d);
        switch (kind) {
          case BinOp::kAdd:
            bi->grad[j] += g;
            break;
          case BinOp::kSub:
            bi->grad[j] -= g;
            break;
          case BinOp::kMul:
            bi->grad[j] += g * ai->data[i];
            break;
          case BinOp::kDiv: {
            const float bv = bi->data[j];
            bi->grad[j] += -g * ai->data[i] / (bv * bv);
            break;
          }
        }
      }
    }
  });
  return Tensor(out);
}

}  // namespace
}  // namespace internal

Tensor Add(const Tensor& a, const Tensor& b) {
  return internal::Binary(internal::BinOp::kAdd, "add", a, b);
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return internal::Binary(internal::BinOp::kSub, "sub", a, b);
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return internal::Binary(internal::BinOp::kMul, "mul", a, b);
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return internal::Binary(internal::BinOp::kDiv, "div", a, b);
}

Tensor AddScalar(const Tensor& a, float s) {
  auto ai = a.impl();
  auto out = internal::NewImplUninit(ai->shape);
  for (size_t i = 0; i < ai->data.size(); ++i) out->data[i] = ai->data[i] + s;
  internal::AttachNode("add_scalar", out, {ai}, [ai](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (size_t i = 0; i < o.data.size(); ++i) ai->grad[i] += o.grad[i];
  });
  return Tensor(out);
}

Tensor MulScalar(const Tensor& a, float s) {
  auto ai = a.impl();
  auto out = internal::NewImplUninit(ai->shape);
  for (size_t i = 0; i < ai->data.size(); ++i) out->data[i] = ai->data[i] * s;
  internal::AttachNode("mul_scalar", out, {ai}, [ai, s](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (size_t i = 0; i < o.data.size(); ++i) ai->grad[i] += o.grad[i] * s;
  });
  return Tensor(out);
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

}  // namespace rntraj
