#ifndef RNTRAJ_TENSOR_BFLOAT16_H_
#define RNTRAJ_TENSOR_BFLOAT16_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#include "src/tensor/tensor.h"

/// \file bfloat16.h
/// BFloat16 storage type and the mixed-precision activation mode built on it.
///
/// bf16 is the top 16 bits of an IEEE-754 float32 (1 sign, 8 exponent,
/// 7 mantissa): same dynamic range, ~2-3 significant decimal digits. The
/// conversion kernels round to nearest-even (RNE), preserve +-inf, quiet
/// NaNs, and handle fp32 subnormals through plain integer carry — all of it
/// branch-light bit arithmetic that auto-vectorises.
///
/// Storage mode: tensors keep their fp32 buffers (GEMMs and reductions
/// accumulate in fp32 throughout, which is the arrangement the mode is
/// modelling), but inside a Bf16Scope the model rounds activations through
/// bf16 at block boundaries (QuantizeBf16) so every downstream op sees
/// exactly the values a bf16-stored activation tensor would hold. The scope
/// is thread-local and off by default; outside it QuantizeBf16's gate
/// (MaybeQuantizeBf16) is the identity — bit-for-bit the pre-bf16 forward.

namespace rntraj {
namespace internal {

/// fp32 -> bf16 bit pattern, round-to-nearest-even. NaNs are quieted (top
/// mantissa bit forced) so rounding can never turn a NaN into an infinity;
/// +-inf pass through exactly; subnormals round correctly because the
/// rounding increment carries through the exponent field like any other
/// integer addition.
inline uint16_t Bf16Bits(float f) {
  const uint32_t u = std::bit_cast<uint32_t>(f);
  if ((u & 0x7fffffffu) > 0x7f800000u) {
    return static_cast<uint16_t>((u >> 16) | 0x0040u);  // quiet NaN
  }
  // RNE: add 0x7fff plus the LSB of the kept half; ties (low half exactly
  // 0x8000) round to the even 16-bit result.
  const uint32_t lsb = (u >> 16) & 1u;
  return static_cast<uint16_t>((u + 0x7fffu + lsb) >> 16);
}

/// fp32 value of a round trip through bf16 (the storage-mode kernel).
inline float Bf16Round(float f) {
  return std::bit_cast<float>(static_cast<uint32_t>(Bf16Bits(f)) << 16);
}

/// out[i] = Bf16Round(in[i]); in == out (in-place) is allowed.
void Bf16RoundArray(const float* in, float* out, size_t n);

/// Packs floats to raw bf16 words (the wire/storage direction).
void Bf16FromFloatArray(const float* in, uint16_t* out, size_t n);

/// Widens raw bf16 words back to floats.
void Bf16ToFloatArray(const uint16_t* in, float* out, size_t n);

}  // namespace internal

/// One bf16 value (the high half of a float32's bit pattern).
struct BFloat16 {
  uint16_t bits = 0;

  BFloat16() = default;
  explicit BFloat16(float f) : bits(internal::Bf16Bits(f)) {}

  float ToFloat() const {
    return std::bit_cast<float>(static_cast<uint32_t>(bits) << 16);
  }
  explicit operator float() const { return ToFloat(); }

  friend bool operator==(BFloat16 a, BFloat16 b) { return a.bits == b.bits; }
};

/// RAII scope enabling bf16 activation rounding on the current thread.
/// `enable == false` is a strict no-op (an outer enabled scope stays
/// enabled), so config-driven call sites can install one unconditionally.
class Bf16Scope {
 public:
  explicit Bf16Scope(bool enable = true);
  ~Bf16Scope();
  Bf16Scope(const Bf16Scope&) = delete;
  Bf16Scope& operator=(const Bf16Scope&) = delete;

 private:
  bool prev_;
};

/// True when a Bf16Scope(true) is active on this thread.
bool Bf16Enabled();

/// Differentiable bf16 rounding: forward maps every element through
/// fp32->bf16->fp32 (RNE); backward is straight-through (gradients pass
/// unscaled — the estimator mixed-precision training uses for quantisers).
Tensor QuantizeBf16(const Tensor& a);

/// QuantizeBf16 inside a Bf16Scope; the identity (same impl, zero ops
/// recorded) outside one. The block-boundary hook models call
/// unconditionally.
Tensor MaybeQuantizeBf16(const Tensor& a);

/// Rounds a tensor's storage through bf16 in place (no autograd involvement;
/// used for the optional weight-rounding mode at inference warmup).
/// Idempotent: bf16 values round to themselves.
void RoundToBf16InPlace(Tensor& t);

}  // namespace rntraj

#endif  // RNTRAJ_TENSOR_BFLOAT16_H_
