#include "src/tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "src/common/random.h"

namespace rntraj {

namespace {

thread_local bool g_grad_mode = true;

std::shared_ptr<TensorImpl> MakeImpl(const std::vector<int>& shape,
                                     bool requires_grad) {
  RNTRAJ_CHECK_MSG(!shape.empty() && shape.size() <= 3,
                   "tensor rank must be 1..3, got " << shape.size());
  for (int d : shape) RNTRAJ_CHECK_MSG(d > 0, "non-positive dim " << d);
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data =
      internal::AcquireZeroedBuffer(static_cast<size_t>(ShapeSize(shape)));
  impl->requires_grad = requires_grad;
  return impl;
}

}  // namespace

int64_t ShapeSize(const std::vector<int>& shape) {
  int64_t n = 1;
  for (int d : shape) n *= d;
  return n;
}

bool GradModeEnabled() { return g_grad_mode; }

NoGradGuard::NoGradGuard() : prev_(g_grad_mode) { g_grad_mode = false; }
NoGradGuard::~NoGradGuard() { g_grad_mode = prev_; }

Tensor Tensor::Zeros(const std::vector<int>& shape, bool requires_grad) {
  return Tensor(MakeImpl(shape, requires_grad));
}

Tensor Tensor::Full(const std::vector<int>& shape, float value,
                    bool requires_grad) {
  auto impl = MakeImpl(shape, requires_grad);
  std::fill(impl->data.begin(), impl->data.end(), value);
  return Tensor(impl);
}

Tensor Tensor::FromVector(const std::vector<int>& shape,
                          const std::vector<float>& values, bool requires_grad) {
  auto impl = MakeImpl(shape, requires_grad);
  RNTRAJ_CHECK_MSG(static_cast<int64_t>(values.size()) == ShapeSize(shape),
                   "FromVector size mismatch: " << values.size() << " vs shape size "
                                                << ShapeSize(shape));
  impl->data = values;
  return Tensor(impl);
}

Tensor Tensor::Randn(const std::vector<int>& shape, float stddev,
                     bool requires_grad) {
  auto impl = MakeImpl(shape, requires_grad);
  for (auto& v : impl->data) {
    v = static_cast<float>(GlobalRng().Gaussian(0.0, stddev));
  }
  return Tensor(impl);
}

Tensor Tensor::Uniform(const std::vector<int>& shape, float lo, float hi,
                       bool requires_grad) {
  auto impl = MakeImpl(shape, requires_grad);
  for (auto& v : impl->data) {
    v = static_cast<float>(GlobalRng().Uniform(lo, hi));
  }
  return Tensor(impl);
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return Full({1}, value, requires_grad);
}

void Tensor::ZeroGrad() {
  if (!impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

Tensor Tensor::Detach() const {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = internal::AcquireBuffer(impl_->data.size());
  std::copy(impl_->data.begin(), impl_->data.end(), impl->data.begin());
  impl->requires_grad = false;
  return Tensor(impl);
}

std::string Tensor::ToString() const {
  std::ostringstream oss;
  oss << "Tensor[";
  for (size_t i = 0; i < impl_->shape.size(); ++i) {
    oss << (i ? "x" : "") << impl_->shape[i];
  }
  oss << "](";
  int64_t n = std::min<int64_t>(size(), 6);
  for (int64_t i = 0; i < n; ++i) oss << (i ? ", " : "") << impl_->data[i];
  if (size() > n) oss << ", ...";
  oss << ")";
  return oss.str();
}

void Tensor::Backward() { RunBackward(*this); }

void RunBackward(const Tensor& root) {
  RNTRAJ_CHECK_MSG(root.size() == 1, "Backward() root must be scalar");
  auto root_impl = root.impl();
  root_impl->EnsureGrad();
  root_impl->grad[0] = 1.0f;
  if (!root_impl->node) return;

  // Iterative DFS post-order over the producer DAG; the reversed post-order is
  // a valid topological order (every node precedes the producers of its
  // inputs), so each node's backward runs after all of its consumers.
  std::vector<GradNode*> order;
  std::unordered_set<GradNode*> visited;
  struct Frame {
    GradNode* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  stack.push_back({root_impl->node.get(), 0});
  visited.insert(root_impl->node.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_input < f.node->inputs.size()) {
      GradNode* child = f.node->inputs[f.next_input]->node.get();
      ++f.next_input;
      if (child != nullptr && visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    GradNode* node = *it;
    auto out = node->out.lock();
    // The output may have died (no consumer kept it) or never received
    // gradient (a dead branch of the DAG): skip.
    if (!out || out->grad.empty()) continue;
    node->backward(*out);
  }
}

}  // namespace rntraj
