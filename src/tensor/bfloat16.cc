#include "src/tensor/bfloat16.h"

#include "src/tensor/op_helpers.h"

namespace rntraj {

namespace {

thread_local bool tl_bf16_enabled = false;

}  // namespace

namespace internal {

void Bf16RoundArray(const float* in, float* out, size_t n) {
#pragma GCC ivdep
  for (size_t i = 0; i < n; ++i) out[i] = Bf16Round(in[i]);
}

void Bf16FromFloatArray(const float* in, uint16_t* out, size_t n) {
#pragma GCC ivdep
  for (size_t i = 0; i < n; ++i) out[i] = Bf16Bits(in[i]);
}

void Bf16ToFloatArray(const uint16_t* in, float* out, size_t n) {
#pragma GCC ivdep
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::bit_cast<float>(static_cast<uint32_t>(in[i]) << 16);
  }
}

}  // namespace internal

Bf16Scope::Bf16Scope(bool enable) : prev_(tl_bf16_enabled) {
  if (enable) tl_bf16_enabled = true;
}

Bf16Scope::~Bf16Scope() { tl_bf16_enabled = prev_; }

bool Bf16Enabled() { return tl_bf16_enabled; }

Tensor QuantizeBf16(const Tensor& a) {
  auto ai = a.impl();
  auto out = internal::NewImplUninit(ai->shape);
  internal::Bf16RoundArray(ai->data.data(), out->data.data(),
                           ai->data.size());
  // Straight-through estimator: rounding is piecewise constant, so its true
  // derivative is zero almost everywhere; passing the gradient through
  // unchanged is what lets training run with quantised activations.
  internal::AttachNode("quantize_bf16", out, {ai}, [ai](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    float* ga = ai->grad.data();
    const float* g = o.grad.data();
#pragma GCC ivdep
    for (size_t i = 0; i < o.grad.size(); ++i) ga[i] += g[i];
  });
  return Tensor(out);
}

Tensor MaybeQuantizeBf16(const Tensor& a) {
  if (!tl_bf16_enabled) return a;
  return QuantizeBf16(a);
}

void RoundToBf16InPlace(Tensor& t) {
  std::vector<float>& d = t.data();
  internal::Bf16RoundArray(d.data(), d.data(), d.size());
}

}  // namespace rntraj
