#ifndef RNTRAJ_TENSOR_FUSION_H_
#define RNTRAJ_TENSOR_FUSION_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

/// \file fusion.h
/// The elementwise fusion pass (ROADMAP open item 1). The autograd tape here
/// is eager — ops execute as they are recorded — so the pass runs as a
/// peephole at op-emission time: nn layers emit their hot chains through the
/// fusion:: entry points below, and each entry point either rewrites the
/// chain into ONE fused kernel (single pass over the output, handwritten
/// backward, no intermediate tensors) or falls back to the exact generic-op
/// chain it replaces. The rewrite is gated by a thread-local FusionScope:
/// outside an enabled scope every entry point emits the identical op
/// sequence the call site used before this pass existed, so the off-path is
/// bit-for-bit unchanged (tests/fusion_test.cc pins this).
///
/// Fused patterns (each verified by gradcheck):
///   * bias+activation        — Linear -> Relu/LeakyRelu/Sigmoid/Tanh, with
///                              row-broadcast, same-shape or absent bias;
///   * residual-add+LayerNorm — post-norm transformer sub-layers, including
///                              the masked padded-batch overload (padding
///                              rows stay exactly zero);
///   * scale+mask+softmax     — attention score pipelines (plain, additive-
///                              mask and length-masked variants);
///   * scale+shift rows       — the GraphNorm affine tail (gamma/beta row
///                              broadcast) in one pass.
///
/// Stage attribution: fused kernels are emitted from the same call sites as
/// the chains they replace, inside the same obs::ScopedStage scopes, so the
/// stage profiler bills them to the unfused chain's stage by construction
/// (tests/obs_test.cc pins fusion on/off producing comparable stage tables).

namespace rntraj {
namespace fusion {

/// Activation applied by the fused bias+activation kernel.
enum class Act { kIdentity, kRelu, kLeakyRelu, kSigmoid, kTanh };

/// RAII scope enabling fusion on the current thread. `enable == false` is a
/// strict no-op (an outer enabled scope stays enabled), so config-driven
/// call sites install one unconditionally.
class FusionScope {
 public:
  explicit FusionScope(bool enable = true);
  ~FusionScope();
  FusionScope(const FusionScope&) = delete;
  FusionScope& operator=(const FusionScope&) = delete;

 private:
  bool prev_;
};

/// True when a FusionScope(true) is active on this thread.
bool Enabled();

/// Per-thread counts of fused kernels actually emitted (fallback emissions
/// do not count). Tests assert the peephole fired; telemetry reads them.
struct FusionCounters {
  int64_t bias_act = 0;
  int64_t residual_layer_norm = 0;  ///< Includes the masked overload.
  int64_t scale_softmax = 0;        ///< All three softmax variants.
  int64_t scale_shift = 0;
  int64_t Total() const {
    return bias_act + residual_layer_norm + scale_softmax + scale_shift;
  }
};

/// This thread's counters since thread start (or the last reset).
FusionCounters Counters();
void ResetCounters();

/// act(x + bias). `bias` may be undefined (pure activation), a row vector
/// ((d) or (1,d), broadcast over x's rows — the Linear bias pattern), or
/// x-shaped (elementwise — the GRL gate pattern). Fallback chain:
/// Act(AddRowBroadcast(x, bias)) / Act(Add(x, bias)) / Act(x).
Tensor BiasAct(const Tensor& x, const Tensor& bias, Act act,
               float leaky_slope = 0.2f);

/// LayerNorm(a + b) with learned scale/shift: the post-norm residual
/// sub-layer in one kernel (one pass computes the sum, row statistics and
/// the affine output; the backward replays the standard LayerNorm gradient
/// from stashed per-row mu/inv-std). gamma/beta are rank-1 (d).
Tensor ResidualLayerNorm(const Tensor& a, const Tensor& b,
                         const Tensor& gamma, const Tensor& beta, float eps);

/// Masked padded-batch overload: rows whose `row_mask` entry ((n,1) or
/// rank-1 (n), no grad) is zero produce exactly-zero output rows and
/// contribute no gradient — the all-padding-rows-are-zero invariant
/// survives the affine shift beta, matching LayerNorm's masked Forward.
Tensor ResidualLayerNorm(const Tensor& a, const Tensor& b,
                         const Tensor& gamma, const Tensor& beta, float eps,
                         const Tensor& row_mask);

/// softmax_rows(scale * a): the attention-score epilogue without the
/// MulScalar intermediate. Fallback: SoftmaxRows(MulScalar(a, scale)).
Tensor ScaleSoftmax(const Tensor& a, float scale);

/// softmax_rows(scale * a + mask); `mask` is an additive no-grad constant
/// of a's shape. Fallback: MaskedSoftmaxRows(MulScalar(a, scale), mask).
Tensor ScaleMaskedSoftmax(const Tensor& a, float scale, const Tensor& mask);

/// Length-masked variant: row i is the softmax of scale * its first
/// valid[i] entries, the rest zero (rows with valid[i] == 0 zero outright).
/// Fallback: LengthMaskedSoftmaxRows(MulScalar(a, scale), valid).
Tensor ScaleLengthMaskedSoftmax(const Tensor& a, float scale,
                                const std::vector<int>& valid);

/// a * gamma + beta with rank-1 (d) gamma/beta broadcast over rows (the
/// normalisation affine tail). Fallback: Add(Mul(a, gamma), beta).
Tensor ScaleShiftRows(const Tensor& a, const Tensor& gamma,
                      const Tensor& beta);

}  // namespace fusion
}  // namespace rntraj

#endif  // RNTRAJ_TENSOR_FUSION_H_
