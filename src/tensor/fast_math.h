#ifndef RNTRAJ_TENSOR_FAST_MATH_H_
#define RNTRAJ_TENSOR_FAST_MATH_H_

#include <bit>
#include <cmath>
#include <cstdint>

/// \file fast_math.h
/// Branch-free float transcendentals for the softmax hot loops. Unlike libm's
/// scalar expf, these are pure arithmetic and auto-vectorise (16 lanes under
/// AVX-512), which is what makes the fused softmax ops fast: a 128-wide
/// attention row is ~8 vector exp evaluations instead of 128 libm calls.

namespace rntraj {
namespace internal {

/// expf accurate to ~1 ulp*few (max relative error about 1e-7; Cephes
/// polynomial): far below any gradcheck or metric tolerance in this repo.
/// Inputs below -86 return exactly 0 — crucial for -1e9 attention masks,
/// where a saturated near-denormal result would poison every downstream FMA
/// with microcode assists.
inline float FastExp(float x) {
  const bool underflow = x < -86.0f;
  // Saturate to a comfortably-normal range: exp(-86) ~ 4e-38 at the bottom,
  // exp(88) ~ 1.7e38 at the top. The top stays at 88 (not expf's 88.72)
  // because the 2^n exponent-bit construction below goes infinite once
  // n = round(x*log2e) reaches 128, i.e. from x ~ 88.38.
  x = underflow ? -86.0f : (x > 88.0f ? 88.0f : x);
  // x = n*ln2 + r with n rounded to nearest, r in [-ln2/2, ln2/2]. The
  // add-subtract magic constant rounds without a floor() call, which GCC
  // refuses to vectorise; |x * log2e| < 2^22 always holds here.
  constexpr float kMagic = 12582912.0f;  // 1.5 * 2^23
  const float n = (1.44269504088896341f * x + kMagic) - kMagic;
  // Two-step Cody-Waite subtraction keeps r exact.
  float r = x - n * 0.693359375f;
  r -= n * -2.12194440e-4f;
  // Degree-6 polynomial for exp(r) on the reduced range (Cephes expf).
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  p = (p * r + 1.0f) * r + 1.0f;
  // Scale by 2^n through the exponent bits.
  const float scale =
      std::bit_cast<float>((static_cast<int32_t>(n) + 127) << 23);
  return underflow ? 0.0f : p * scale;
}

/// Maximum of a row; eight-way accumulators sidestep the serial max latency
/// chain (FP max reductions are not auto-vectorised at strict FP semantics).
inline float RowMax(const float* x, int d) {
  if (d < 8) {
    float mx = x[0];
    for (int j = 1; j < d; ++j) mx = mx < x[j] ? x[j] : mx;
    return mx;
  }
  float m[8];
  for (int t = 0; t < 8; ++t) m[t] = x[t];
  int j = 8;
  for (; j + 8 <= d; j += 8) {
#pragma GCC ivdep
    for (int t = 0; t < 8; ++t) m[t] = m[t] < x[j + t] ? x[j + t] : m[t];
  }
  for (; j < d; ++j) m[0] = m[0] < x[j] ? x[j] : m[0];
  float mx = m[0];
  for (int t = 1; t < 8; ++t) mx = mx < m[t] ? m[t] : mx;
  return mx;
}

/// y[j] = exp(x[j] - mx) for one softmax row; returns the sum of the row.
inline float ExpRowMinusMax(const float* x, float* y, int d, float mx) {
  // Separate exp pass (vectorises) from the sum reduction: strict FP
  // addition order would otherwise block vectorisation of the whole loop.
#pragma GCC ivdep
  for (int j = 0; j < d; ++j) y[j] = FastExp(x[j] - mx);
  // Four-way accumulators break the serial-add latency chain.
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int j = 0;
  for (; j + 4 <= d; j += 4) {
    s0 += y[j];
    s1 += y[j + 1];
    s2 += y[j + 2];
    s3 += y[j + 3];
  }
  for (; j < d; ++j) s0 += y[j];
  return (s0 + s1) + (s2 + s3);
}

}  // namespace internal
}  // namespace rntraj

#endif  // RNTRAJ_TENSOR_FAST_MATH_H_
