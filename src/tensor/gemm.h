#ifndef RNTRAJ_TENSOR_GEMM_H_
#define RNTRAJ_TENSOR_GEMM_H_

/// \file gemm.h
/// Internal entry points of the register-blocked GEMM core (ops_matmul.cc).
/// Shared by Matmul/MatmulTransB and the batched (leading-dim) variants in
/// ops_batched.cc, so every matrix product in the repository funnels through
/// the same packed micro-kernels. Not part of the public API.

namespace rntraj {
namespace internal {

/// C(n,m) += A(n,k) * B(k,m); all row-major.
void GemmAcc(const float* a, const float* b, float* c, int n, int k, int m);

/// C(n,m) += A(k,n)^T * B(k,m).
void GemmTransAAcc(const float* a, const float* b, float* c, int n, int k,
                   int m);

/// C(n,m) += A(n,k) * B(m,k)^T (packs B^T tiles into contiguous panels).
void GemmTransBAcc(const float* a, const float* b, float* c, int n, int k,
                   int m);

}  // namespace internal
}  // namespace rntraj

#endif  // RNTRAJ_TENSOR_GEMM_H_
