#include <cmath>

#include "src/tensor/fast_math.h"
#include "src/tensor/op_helpers.h"
#include "src/tensor/ops.h"

namespace rntraj {

namespace {

// Generic unary op: forward maps x->y, backward multiplies upstream grad by
// dfdx(x, y).
template <typename Fwd, typename Dfdx>
Tensor Unary(const char* name, const Tensor& a, Fwd fwd, Dfdx dfdx) {
  auto ai = a.impl();
  auto out = internal::NewImplUninit(ai->shape);
  for (size_t i = 0; i < ai->data.size(); ++i) out->data[i] = fwd(ai->data[i]);
  internal::AttachNode(name, out, {ai}, [ai, dfdx](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (size_t i = 0; i < o.data.size(); ++i) {
      ai->grad[i] += o.grad[i] * dfdx(ai->data[i], o.data[i]);
    }
  });
  return Tensor(out);
}

}  // namespace

Tensor Relu(const Tensor& a) {
  return Unary(
      "relu", a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return Unary(
      "leaky_relu", a,
      [negative_slope](float x) { return x > 0.0f ? x : negative_slope * x; },
      [negative_slope](float x, float) {
        return x > 0.0f ? 1.0f : negative_slope;
      });
}

Tensor Sigmoid(const Tensor& a) {
  return Unary(
      "sigmoid", a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return Unary(
      "tanh", a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Exp(const Tensor& a) {
  return Unary(
      "exp", a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return Unary(
      "log", a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return Unary(
      "sqrt", a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / y; });
}

Tensor Square(const Tensor& a) {
  return Unary(
      "square", a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Tensor SoftmaxRows(const Tensor& a) {
  auto ai = a.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int n = ai->shape[0];
  const int d = ai->shape[1];
  auto out = internal::NewImplUninit(ai->shape);
  for (int i = 0; i < n; ++i) {
    const float* x = ai->data.data() + static_cast<size_t>(i) * d;
    float* y = out->data.data() + static_cast<size_t>(i) * d;
    const float mx = internal::RowMax(x, d);
    const float sum = internal::ExpRowMinusMax(x, y, d, mx);
    const float inv = 1.0f / sum;
#pragma GCC ivdep
    for (int j = 0; j < d; ++j) y[j] *= inv;
  }
  internal::AttachNode("softmax_rows", out, {ai}, [ai, n, d](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < n; ++i) {
      const float* y = o.data.data() + static_cast<size_t>(i) * d;
      const float* g = o.grad.data() + static_cast<size_t>(i) * d;
      float* ga = ai->grad.data() + static_cast<size_t>(i) * d;
      double dot = 0.0;
      for (int j = 0; j < d; ++j) dot += g[j] * y[j];
      for (int j = 0; j < d; ++j) {
        ga[j] += (g[j] - static_cast<float>(dot)) * y[j];
      }
    }
  });
  return Tensor(out);
}

Tensor LogSoftmaxRows(const Tensor& a) {
  auto ai = a.impl();
  RNTRAJ_CHECK(ai->shape.size() == 2);
  const int n = ai->shape[0];
  const int d = ai->shape[1];
  auto out = internal::NewImplUninit(ai->shape);
  for (int i = 0; i < n; ++i) {
    const float* x = ai->data.data() + static_cast<size_t>(i) * d;
    float* y = out->data.data() + static_cast<size_t>(i) * d;
    const float mx = internal::RowMax(x, d);
    // The exp pass lands in the output row as scratch before the final
    // subtraction overwrites it.
    const float sum = internal::ExpRowMinusMax(x, y, d, mx);
    const float lse = mx + std::log(sum);
#pragma GCC ivdep
    for (int j = 0; j < d; ++j) y[j] = x[j] - lse;
  }
  internal::AttachNode(
      "log_softmax_rows", out, {ai}, [ai, n, d](const TensorImpl& o) {
        if (!ai->requires_grad) return;
        ai->EnsureGrad();
        for (int i = 0; i < n; ++i) {
          const float* y = o.data.data() + static_cast<size_t>(i) * d;
          const float* g = o.grad.data() + static_cast<size_t>(i) * d;
          float* ga = ai->grad.data() + static_cast<size_t>(i) * d;
          double gsum = 0.0;
          for (int j = 0; j < d; ++j) gsum += g[j];
          for (int j = 0; j < d; ++j) {
            ga[j] += g[j] - static_cast<float>(gsum) * std::exp(y[j]);
          }
        }
      });
  return Tensor(out);
}

Tensor Dropout(const Tensor& a, float p, bool training, Rng& rng) {
  if (!training || p <= 0.0f) return a;
  RNTRAJ_CHECK(p < 1.0f);
  auto ai = a.impl();
  auto out = internal::NewImplUninit(ai->shape);
  auto mask = std::make_shared<std::vector<float>>(ai->data.size());
  const float scale = 1.0f / (1.0f - p);
  for (size_t i = 0; i < ai->data.size(); ++i) {
    (*mask)[i] = rng.Bernoulli(p) ? 0.0f : scale;
    out->data[i] = ai->data[i] * (*mask)[i];
  }
  internal::AttachNode("dropout", out, {ai}, [ai, mask](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (size_t i = 0; i < o.data.size(); ++i) {
      ai->grad[i] += o.grad[i] * (*mask)[i];
    }
  });
  return Tensor(out);
}

}  // namespace rntraj
