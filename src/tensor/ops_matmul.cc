#include <algorithm>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/tensor/gemm.h"
#include "src/tensor/op_helpers.h"
#include "src/tensor/ops.h"

namespace rntraj {

namespace {

// Register-blocked GEMM. All three variants (plain, A-transposed,
// B-transposed) funnel into one micro-kernel that accumulates an MR x NR tile
// of C in registers over a KC-deep slice of the inner dimension:
//
//   - MR x NR = 8 x 32 keeps 16 accumulator vectors of 16 floats live under
//     AVX-512 (8 under AVX2); each k-step costs two B row loads and eight A
//     broadcasts, enough to saturate both FMA ports.
//   - KC bounds the panel working set so the A/B slices stay cache-resident
//     for the whole tile sweep.
//   - The A-transposed variant reads A columns, which are contiguous per
//     k-step (k-major access), so it needs no packing; the B-transposed
//     variant packs each KC x NR tile of B^T into a contiguous scratch panel.
//
// The scalar triple loop these kernels replace peaked around 20 GFLOP/s on
// one AVX-512 core; the blocked form reaches 130+ (see BENCHMARKS.md).
constexpr int MR = 8;
constexpr int NR = 32;
constexpr int KC = 256;

// Below this many flops (2*n*k*m) a GEMM is not worth a trip through the
// thread pool.
constexpr int64_t kParallelFlopThreshold = int64_t{1} << 21;

// C(tile) += A(panel) * B(panel) for an AR x nr (nr <= NRT) tile over kc
// steps. KMajorA=false reads A(i,p) at a[i*lda + p] (row-major panel);
// KMajorA=true reads A(i,p) at a[p*lda + i] (k-major: the A^T product, where
// per k-step the AR values are contiguous). NRT = NR for wide sweeps; the
// 8-wide instantiation serves narrow outputs (per-head projections, score
// vectors) without dragging a mostly-empty 32-wide accumulator around.
template <int AR, bool KMajorA, int NRT>
inline void MicroKernel(const float* a, int lda, const float* b, int ldb,
                        float* c, int ldc, int kc, int nr) {
  float acc[AR][NRT];
  for (int i = 0; i < AR; ++i) {
    for (int j = 0; j < NRT; ++j) acc[i][j] = 0.0f;
  }
  if (nr == NRT) {
    for (int p = 0; p < kc; ++p) {
      const float* brow = b + static_cast<size_t>(p) * ldb;
      for (int i = 0; i < AR; ++i) {
        const float av = KMajorA ? a[static_cast<size_t>(p) * lda + i]
                                 : a[static_cast<size_t>(i) * lda + p];
#pragma GCC ivdep
        for (int j = 0; j < NRT; ++j) acc[i][j] += av * brow[j];
      }
    }
    for (int i = 0; i < AR; ++i) {
      float* crow = c + static_cast<size_t>(i) * ldc;
#pragma GCC ivdep
      for (int j = 0; j < NRT; ++j) crow[j] += acc[i][j];
    }
  } else {
    for (int p = 0; p < kc; ++p) {
      const float* brow = b + static_cast<size_t>(p) * ldb;
      for (int i = 0; i < AR; ++i) {
        const float av = KMajorA ? a[static_cast<size_t>(p) * lda + i]
                                 : a[static_cast<size_t>(i) * lda + p];
#pragma GCC ivdep
        for (int j = 0; j < nr; ++j) acc[i][j] += av * brow[j];
      }
    }
    for (int i = 0; i < AR; ++i) {
      float* crow = c + static_cast<size_t>(i) * ldc;
      for (int j = 0; j < nr; ++j) crow[j] += acc[i][j];
    }
  }
}

// Sweeps C rows [i0, i1) of one (kc x nr) panel product, peeling the row
// remainder through narrower tiles.
template <bool KMajorA, int NRT>
inline void TileRows(const float* a, int lda, const float* b, int ldb,
                     float* c, int ldc, int kc, int nr, int i0, int i1) {
  // A element (i, p) sits at a[i*lda + p] (row-major) or a[p*lda + i]
  // (k-major): advancing `i` rows moves by i*lda resp. i.
  const auto arow = [&](int i) {
    return KMajorA ? a + i : a + static_cast<size_t>(i) * lda;
  };
  int i = i0;
  for (; i + MR <= i1; i += MR) {
    MicroKernel<MR, KMajorA, NRT>(arow(i), lda, b, ldb,
                                  c + static_cast<size_t>(i) * ldc, ldc, kc, nr);
  }
  for (; i + 4 <= i1; i += 4) {
    MicroKernel<4, KMajorA, NRT>(arow(i), lda, b, ldb,
                                 c + static_cast<size_t>(i) * ldc, ldc, kc, nr);
  }
  for (; i < i1; ++i) {
    MicroKernel<1, KMajorA, NRT>(arow(i), lda, b, ldb,
                                 c + static_cast<size_t>(i) * ldc, ldc, kc, nr);
  }
}

// Width-dispatched TileRows: full 32-wide tiles, else the 8-wide kernel for
// narrow blocks.
template <bool KMajorA>
inline void TileRowsDispatch(const float* a, int lda, const float* b, int ldb,
                             float* c, int ldc, int kc, int nr, int i0, int i1) {
  if (nr <= 8) {
    TileRows<KMajorA, 8>(a, lda, b, ldb, c, ldc, kc, nr, i0, i1);
  } else {
    TileRows<KMajorA, NR>(a, lda, b, ldb, c, ldc, kc, nr, i0, i1);
  }
}

// C rows [i0, i1) of C(n,m) += op(A) * B with B (k,m) row-major.
// KMajorA=false: A is (n,k) row-major (lda = k).
// KMajorA=true:  the product A^T * B with A stored (k,n) row-major (lda = n).
template <bool KMajorA>
void GemmRowRange(const float* a, int lda, const float* b, float* c, int k,
                  int m, int i0, int i1) {
  for (int p0 = 0; p0 < k; p0 += KC) {
    const int kc = std::min(KC, k - p0);
    const float* apanel = KMajorA ? a + static_cast<size_t>(p0) * lda : a + p0;
    for (int j0 = 0; j0 < m; j0 += NR) {
      const int nr = std::min(NR, m - j0);
      TileRowsDispatch<KMajorA>(apanel, lda,
                                b + static_cast<size_t>(p0) * m + j0, m,
                                c + j0, m, kc, nr, i0, i1);
    }
  }
}

// Splits the C row range over the global thread pool when the problem is
// large enough; each worker owns disjoint C rows, so no synchronisation.
template <bool KMajorA>
void GemmParallel(const float* a, int lda, const float* b, float* c, int n,
                  int k, int m) {
  const int64_t flops = int64_t{2} * n * k * m;
  if (flops < kParallelFlopThreshold) {
    GemmRowRange<KMajorA>(a, lda, b, c, k, m, 0, n);
    return;
  }
  ParallelFor(0, n, MR, [&](int64_t i0, int64_t i1) {
    GemmRowRange<KMajorA>(a, lda, b, c, k, m, static_cast<int>(i0),
                          static_cast<int>(i1));
  });
}

}  // namespace

// The three accumulate entry points are shared with the batched ops
// (ops_batched.cc) through gemm.h; everything above stays file-local.
namespace internal {

// C(n,m) += A(n,k) * B(k,m); all row-major.
void GemmAcc(const float* a, const float* b, float* c, int n, int k, int m) {
  GemmParallel<false>(a, /*lda=*/k, b, c, n, k, m);
}

// C(n,m) += A(k,n)^T * B(k,m).
void GemmTransAAcc(const float* a, const float* b, float* c, int n, int k,
                   int m) {
  GemmParallel<true>(a, /*lda=*/n, b, c, n, k, m);
}

// C(n,m) += A(n,k) * B(m,k)^T. B^T tiles are strided in memory, so each
// KC x NR tile is packed into a contiguous panel once and reused for every
// row block of A.
void GemmTransBAcc(const float* a, const float* b, float* c, int n, int k,
                   int m) {
  const int64_t flops = int64_t{2} * n * k * m;
  const bool parallel = flops >= kParallelFlopThreshold;
  std::vector<float> pack(static_cast<size_t>(KC) * NR);
  for (int p0 = 0; p0 < k; p0 += KC) {
    const int kc = std::min(KC, k - p0);
    for (int j0 = 0; j0 < m; j0 += NR) {
      const int nr = std::min(NR, m - j0);
      // pack(p, j) = B(j0+j, p0+p): transpose the (nr x kc) block of B.
      for (int j = 0; j < nr; ++j) {
        const float* brow = b + static_cast<size_t>(j0 + j) * k + p0;
        for (int p = 0; p < kc; ++p) pack[static_cast<size_t>(p) * nr + j] = brow[p];
      }
      const float* apanel = a + p0;
      float* cpanel = c + j0;
      if (parallel) {
        ParallelFor(0, n, MR, [&](int64_t i0, int64_t i1) {
          TileRowsDispatch<false>(apanel, k, pack.data(), nr, cpanel, m, kc, nr,
                                  static_cast<int>(i0), static_cast<int>(i1));
        });
      } else {
        TileRowsDispatch<false>(apanel, k, pack.data(), nr, cpanel, m, kc, nr,
                                0, n);
      }
    }
  }
}

}  // namespace internal

namespace {
using internal::GemmAcc;
using internal::GemmTransAAcc;
using internal::GemmTransBAcc;
}  // namespace

Tensor Matmul(const Tensor& a, const Tensor& b) {
  auto ai = a.impl();
  auto bi = b.impl();
  RNTRAJ_CHECK_MSG(bi->shape.size() == 2, "matmul: b must be rank-2");
  const bool a_was_vec = ai->shape.size() == 1;
  const int n = a_was_vec ? 1 : ai->shape[0];
  const int k = a_was_vec ? ai->shape[0] : ai->shape[1];
  RNTRAJ_CHECK_MSG(k == bi->shape[0], "matmul: inner dims " << k << " vs "
                                                            << bi->shape[0]);
  const int m = bi->shape[1];

  auto out = internal::NewImpl(a_was_vec ? std::vector<int>{m}
                                         : std::vector<int>{n, m});
  GemmAcc(ai->data.data(), bi->data.data(), out->data.data(), n, k, m);

  internal::AttachNode(
      "matmul", out, {ai, bi}, [ai, bi, n, k, m](const TensorImpl& o) {
        if (ai->requires_grad) {
          ai->EnsureGrad();
          // dA = dC * B^T
          GemmTransBAcc(o.grad.data(), bi->data.data(), ai->grad.data(), n, m, k);
        }
        if (bi->requires_grad) {
          bi->EnsureGrad();
          // dB = A^T * dC
          GemmTransAAcc(ai->data.data(), o.grad.data(), bi->grad.data(), k, n, m);
        }
      });
  return Tensor(out);
}

Tensor MatmulTransB(const Tensor& a, const Tensor& b) {
  auto ai = a.impl();
  auto bi = b.impl();
  RNTRAJ_CHECK_MSG(ai->shape.size() == 2 && bi->shape.size() == 2,
                   "matmul_trans_b: rank-2 inputs required");
  const int n = ai->shape[0];
  const int k = ai->shape[1];
  const int m = bi->shape[0];
  RNTRAJ_CHECK_MSG(k == bi->shape[1], "matmul_trans_b: inner dims "
                                          << k << " vs " << bi->shape[1]);

  auto out = internal::NewImpl({n, m});
  GemmTransBAcc(ai->data.data(), bi->data.data(), out->data.data(), n, k, m);

  internal::AttachNode(
      "matmul_trans_b", out, {ai, bi}, [ai, bi, n, k, m](const TensorImpl& o) {
        if (ai->requires_grad) {
          ai->EnsureGrad();
          // dA(n,k) = dC(n,m) * B(m,k)
          GemmAcc(o.grad.data(), bi->data.data(), ai->grad.data(), n, m, k);
        }
        if (bi->requires_grad) {
          bi->EnsureGrad();
          // dB(m,k) = dC(n,m)^T * A(n,k)
          GemmTransAAcc(o.grad.data(), ai->data.data(), bi->grad.data(), m, n, k);
        }
      });
  return Tensor(out);
}

Tensor Transpose(const Tensor& a) {
  auto ai = a.impl();
  RNTRAJ_CHECK_MSG(ai->shape.size() == 2, "transpose: rank-2 required");
  const int n = ai->shape[0];
  const int m = ai->shape[1];
  auto out = internal::NewImplUninit({m, n});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      out->data[static_cast<size_t>(j) * n + i] =
          ai->data[static_cast<size_t>(i) * m + j];
    }
  }
  internal::AttachNode("transpose", out, {ai}, [ai, n, m](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < m; ++j) {
        ai->grad[static_cast<size_t>(i) * m + j] +=
            o.grad[static_cast<size_t>(j) * n + i];
      }
    }
  });
  return Tensor(out);
}

}  // namespace rntraj
