#include "src/tensor/op_helpers.h"
#include "src/tensor/ops.h"

namespace rntraj {

namespace {

// C(n,m) += A(n,k) * B(k,m); dense row-major, i-k-j loop order for locality.
void GemmAcc(const float* a, const float* b, float* c, int n, int k, int m) {
  for (int i = 0; i < n; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * m;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<size_t>(kk) * m;
      for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

// C(n,m) += A(k,n)^T * B(k,m).
void GemmTransAAcc(const float* a, const float* b, float* c, int n, int k, int m) {
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a + static_cast<size_t>(kk) * n;
    const float* brow = b + static_cast<size_t>(kk) * m;
    for (int i = 0; i < n; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<size_t>(i) * m;
      for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

// C(n,m) += A(n,k) * B(m,k)^T.
void GemmTransBAcc(const float* a, const float* b, float* c, int n, int k, int m) {
  for (int i = 0; i < n; ++i) {
    const float* arow = a + static_cast<size_t>(i) * k;
    float* crow = c + static_cast<size_t>(i) * m;
    for (int j = 0; j < m; ++j) {
      const float* brow = b + static_cast<size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

}  // namespace

Tensor Matmul(const Tensor& a, const Tensor& b) {
  auto ai = a.impl();
  auto bi = b.impl();
  RNTRAJ_CHECK_MSG(bi->shape.size() == 2, "matmul: b must be rank-2");
  const bool a_was_vec = ai->shape.size() == 1;
  const int n = a_was_vec ? 1 : ai->shape[0];
  const int k = a_was_vec ? ai->shape[0] : ai->shape[1];
  RNTRAJ_CHECK_MSG(k == bi->shape[0], "matmul: inner dims " << k << " vs "
                                                            << bi->shape[0]);
  const int m = bi->shape[1];

  auto out = internal::NewImpl(a_was_vec ? std::vector<int>{m}
                                         : std::vector<int>{n, m});
  GemmAcc(ai->data.data(), bi->data.data(), out->data.data(), n, k, m);

  internal::AttachNode(
      "matmul", out, {ai, bi}, [ai, bi, n, k, m](const TensorImpl& o) {
        if (ai->requires_grad) {
          ai->EnsureGrad();
          // dA = dC * B^T
          GemmTransBAcc(o.grad.data(), bi->data.data(), ai->grad.data(), n, m, k);
        }
        if (bi->requires_grad) {
          bi->EnsureGrad();
          // dB = A^T * dC
          GemmTransAAcc(ai->data.data(), o.grad.data(), bi->grad.data(), k, n, m);
        }
      });
  return Tensor(out);
}

Tensor Transpose(const Tensor& a) {
  auto ai = a.impl();
  RNTRAJ_CHECK_MSG(ai->shape.size() == 2, "transpose: rank-2 required");
  const int n = ai->shape[0];
  const int m = ai->shape[1];
  auto out = internal::NewImpl({m, n});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      out->data[static_cast<size_t>(j) * n + i] =
          ai->data[static_cast<size_t>(i) * m + j];
    }
  }
  internal::AttachNode("transpose", out, {ai}, [ai, n, m](const TensorImpl& o) {
    if (!ai->requires_grad) return;
    ai->EnsureGrad();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < m; ++j) {
        ai->grad[static_cast<size_t>(i) * m + j] +=
            o.grad[static_cast<size_t>(j) * n + i];
      }
    }
  });
  return Tensor(out);
}

}  // namespace rntraj
