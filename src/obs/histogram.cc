#include "src/obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rntraj {
namespace obs {

namespace {

std::shared_ptr<const std::vector<double>> BuildEdges(
    const HistogramOptions& opt) {
  // Edges at min * 10^(i / bpd). Computed once, by the same pow() calls the
  // tests use, so "a value exactly on an edge" is well-defined: Record()
  // classifies by binary search over THESE doubles, not by a log() whose
  // rounding could disagree with pow().
  const double min_v = opt.min_value > 0.0 ? opt.min_value : 1e-3;
  const double max_v = std::max(opt.max_value, min_v * 10.0);
  const int bpd = std::max(1, opt.buckets_per_decade);
  auto edges = std::make_shared<std::vector<double>>();
  edges->push_back(min_v);
  for (int i = 1;; ++i) {
    const double e = min_v * std::pow(10.0, static_cast<double>(i) /
                                                static_cast<double>(bpd));
    if (e >= max_v) {
      edges->push_back(max_v);
      break;
    }
    edges->push_back(e);
  }
  return edges;
}

void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

int64_t HistogramSnapshot::TotalCount() const {
  int64_t n = 0;
  for (int64_t c : counts) n += c;
  return n;
}

double HistogramSnapshot::Mean() const {
  const int64_t n = TotalCount();
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double HistogramSnapshot::Quantile(double q) const {
  const int64_t n = TotalCount();
  if (n <= 0 || edges == nullptr) return 0.0;
  const long long rank = QuantileRank(q, n);
  int64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (rank < cum) {
      if (i == 0) {
        // Underflow bucket: everything here is below the first edge; the
        // observed min is the tightest deterministic answer we have.
        return std::min(min, (*edges)[0]);
      }
      if (i == counts.size() - 1) {
        // Overflow bucket: bounded above only by the observed max.
        return std::max(max, edges->back());
      }
      // Finite bucket [edges[i-1], edges[i]): report the upper edge — an
      // upper bound of the exact-sample quantile, tight to one bucket
      // width — clamped to the observed max so a single sample reports
      // itself, not its bucket's ceiling.
      return std::min((*edges)[i], max);
    }
  }
  return max;  // unreachable: rank < n == cum after the loop
}

bool HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (counts.size() != other.counts.size()) return false;
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  return true;
}

HistogramSnapshot HistogramSnapshot::Delta(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot d = *this;
  if (earlier.counts.size() != counts.size()) return d;
  for (size_t i = 0; i < counts.size(); ++i) {
    d.counts[i] = counts[i] - earlier.counts[i];
    if (d.counts[i] < 0) d.counts[i] = 0;  // counter reset upstream
  }
  d.sum = sum - earlier.sum;
  return d;
}

LatencyHistogram::LatencyHistogram(const HistogramOptions& options)
    : edges_(BuildEdges(options)) {
  num_counts_ = edges_->size() + 1;
  counts_ = std::make_unique<std::atomic<int64_t>[]>(num_counts_);
  for (size_t i = 0; i < num_counts_; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void LatencyHistogram::Record(double value) {
  if (std::isnan(value)) return;
  const std::vector<double>& e = *edges_;
  // First edge strictly greater than value; value == edge lands in the
  // bucket whose LOWER edge it is (half-open [lo, hi) buckets).
  const size_t idx = static_cast<size_t>(
      std::upper_bound(e.begin(), e.end(), value) - e.begin());
  // idx 0 -> underflow; idx == e.size() -> v >= last edge -> overflow.
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot s;
  s.edges = edges_;
  s.counts.resize(num_counts_);
  for (size_t i = 0; i < num_counts_; ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  const double mn = min_.load(std::memory_order_relaxed);
  const double mx = max_.load(std::memory_order_relaxed);
  s.min = std::isinf(mn) ? 0.0 : mn;
  s.max = std::isinf(mx) ? 0.0 : mx;
  return s;
}

}  // namespace obs
}  // namespace rntraj
