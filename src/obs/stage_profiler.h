#ifndef RNTRAJ_OBS_STAGE_PROFILER_H_
#define RNTRAJ_OBS_STAGE_PROFILER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

/// \file stage_profiler.h
/// Stage-level wall-time attribution for the model forward path: scoped
/// timers inside the GPSFormer encoder (transformer blocks, GRL fusion,
/// the GAT propagation within GRL), the sub-graph gather, and the decoder
/// (constraint-mask construction, attention+GRU step loop) accumulate into
/// a process-global, enum-indexed table of atomics — the data that tells a
/// fusion effort (ROADMAP open item 1) where a micro-batch actually spends
/// its budget. Stage timers measure the calling thread's wall time, which
/// is the right attribution even when a GEMM fans out to the worker pool:
/// the pool is synchronous to the caller.
///
/// Cost contract: when disabled (default) a ScopedStage is one relaxed
/// atomic load, one thread-local read and a branch — no clock calls.
/// StageCaptureScope additionally mirrors recorded durations into a
/// thread-local frame so a serving session can attribute the encode/decode
/// split of ITS forward without contamination from concurrent sessions.

namespace rntraj {
namespace obs {

/// The attribution buckets. Stages are mutually exclusive by construction
/// (no timer nests inside another stage's timer), so their sum is the
/// instrumented share of a forward.
enum class Stage : int {
  kSubgraph = 0,     ///< Sub-graph gather + input projection (encoder prep).
  kTransformer,      ///< Transformer encoder blocks (per GPSFormer layer).
  kGat,              ///< GAT propagation inside the GRL.
  kGrl,              ///< GRL gated fusion + graph norms (excluding GAT).
  kConstraintMask,   ///< Decoder constraint mask + spatial prior build.
  kDecoder,          ///< Decoder attention+GRU step loop.
  kCount,
};

constexpr int kStageCount = static_cast<int>(Stage::kCount);

const char* StageName(Stage s);

/// One stage's accumulated totals.
struct StageStat {
  int64_t ns = 0;
  int64_t count = 0;  ///< Completed scoped-timer intervals.
  double Ms() const { return static_cast<double>(ns) / 1e6; }
};

/// Copyable snapshot of all stages.
struct StageProfile {
  std::array<StageStat, kStageCount> stages;

  int64_t TotalNs() const;
  /// Activity since `earlier` — the trainer's per-epoch view.
  StageProfile Delta(const StageProfile& earlier) const;
  /// Fixed-width human table ("stage  total_ms  count  share"), one line
  /// per non-empty stage; empty string when nothing was recorded.
  std::string ToTable() const;
};

/// Process-global accumulator. Thread-safe throughout.
class StageProfiler {
 public:
  static StageProfiler& Global();

  /// Master switch; off keeps ScopedStage at its one-branch cost.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void RecordNs(Stage s, int64_t ns);
  StageProfile Snapshot() const;

 private:
  std::atomic<bool> enabled_{false};
  struct alignas(64) Cell {
    std::atomic<int64_t> ns{0};
    std::atomic<int64_t> count{0};
  };
  Cell cells_[kStageCount];
};

/// Thread-local capture frame: while alive on a thread, every stage
/// duration recorded ON THAT THREAD is also added to this frame. Frames
/// nest (inner captures win); a serving session wraps its batch forward in
/// one to split the forward span into encode/decode without seeing other
/// sessions' stages. Installing a frame activates stage timers on the
/// thread even when the global profiler is disabled.
class StageCaptureScope {
 public:
  StageCaptureScope();
  ~StageCaptureScope();
  StageCaptureScope(const StageCaptureScope&) = delete;
  StageCaptureScope& operator=(const StageCaptureScope&) = delete;

  int64_t ns(Stage s) const {
    return ns_[static_cast<size_t>(static_cast<int>(s))];
  }

  /// The frame active on the calling thread, or null.
  static StageCaptureScope* Current();
  void Add(Stage s, int64_t ns) {
    ns_[static_cast<size_t>(static_cast<int>(s))] += ns;
  }

 private:
  std::array<int64_t, kStageCount> ns_{};
  StageCaptureScope* prev_;
};

/// RAII stage timer. One branch when profiling is off everywhere.
class ScopedStage {
 public:
  explicit ScopedStage(Stage s)
      : stage_(s),
        active_(StageProfiler::Global().enabled() ||
                StageCaptureScope::Current() != nullptr) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedStage() {
    if (!active_) return;
    const int64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    StageProfiler::Global().RecordNs(stage_, ns);
    if (StageCaptureScope* cap = StageCaptureScope::Current()) {
      cap->Add(stage_, ns);
    }
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  Stage stage_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace rntraj

#endif  // RNTRAJ_OBS_STAGE_PROFILER_H_
