#ifndef RNTRAJ_OBS_METRICS_WIRE_H_
#define RNTRAJ_OBS_METRICS_WIRE_H_

#include <cstddef>
#include <string>

#include "src/obs/metrics.h"

/// \file metrics_wire.h
/// Binary MetricsSnapshot codec — the fleet control endpoint's export
/// plumbing. ToJson/ToPrometheusText serve scrapers; this codec serves the
/// router, which needs the snapshot back as a *structured* object so exact
/// histogram bucket counts survive the hop and MetricsSnapshot::Merge can
/// aggregate worker snapshots into fleet-level p50/p99 (text exports round
/// through decimal and cannot be merged losslessly).
///
/// The decoder is bounds-checked in the style of src/snapshot/: every
/// malformed input — truncation, oversized counts, a histogram whose count
/// array disagrees with its edge array — returns false with a diagnostic in
/// `*error` and leaves `*out` untouched. Untrusted bytes never abort.

namespace rntraj {
namespace obs {

/// Caps enforced by both sides; an encode that would exceed them fails
/// rather than emitting a frame the decoder must reject.
inline constexpr size_t kMaxMetricName = 4096;
inline constexpr size_t kMaxMetricEntries = 1u << 16;
inline constexpr size_t kMaxHistogramEdges = 1u << 16;

/// Appends the snapshot's binary image to `*out`. Returns false (without a
/// partial append) if a name or entry count exceeds the caps above.
bool EncodeMetricsSnapshot(const MetricsSnapshot& snap, std::string* out,
                           std::string* error);

/// Parses `data[0..size)` into `*out`. Returns false + `*error` (and leaves
/// `*out` untouched) on any malformed input.
bool DecodeMetricsSnapshot(const char* data, size_t size,
                           MetricsSnapshot* out, std::string* error);

}  // namespace obs
}  // namespace rntraj

#endif  // RNTRAJ_OBS_METRICS_WIRE_H_
