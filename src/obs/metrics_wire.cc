#include "src/obs/metrics_wire.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

namespace rntraj {
namespace obs {

namespace {

bool SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = "metrics codec: " + msg;
  return false;
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutI64(std::string* out, int64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutName(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked latching reader (the snapshot.cc Cursor pattern): every
/// getter checks remaining bytes first and latches failure, so a decode can
/// run a whole section unconditionally and check ok() once.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : p_(data), end_(data + size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  void Fail() { ok_ = false; }

  bool GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetI64(int64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetF64(double* v) { return GetRaw(v, sizeof(*v)); }

  bool GetName(std::string* v) {
    uint32_t n = 0;
    if (!GetU32(&n)) return false;
    if (n > kMaxMetricName || n > remaining()) {
      Fail();
      return false;
    }
    v->assign(p_, n);
    p_ += n;
    return true;
  }

 private:
  bool GetRaw(void* dst, size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    std::memcpy(dst, p_, n);
    p_ += n;
    return true;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

bool EncodeHistogram(const HistogramSnapshot& h, std::string* out,
                     std::string* error) {
  const size_t num_edges = h.edges != nullptr ? h.edges->size() : 0;
  if (num_edges > kMaxHistogramEdges) {
    return SetError(error, "histogram edge count exceeds cap");
  }
  if (h.counts.size() != num_edges + 1) {
    return SetError(error, "histogram counts/edges size mismatch");
  }
  PutU32(out, static_cast<uint32_t>(num_edges));
  for (size_t i = 0; i < num_edges; ++i) PutF64(out, (*h.edges)[i]);
  for (int64_t c : h.counts) PutI64(out, c);
  PutF64(out, h.sum);
  PutF64(out, h.min);
  PutF64(out, h.max);
  return true;
}

bool DecodeHistogram(Cursor& cur, HistogramSnapshot* out) {
  uint32_t num_edges = 0;
  if (!cur.GetU32(&num_edges)) return false;
  // An edge is 8 bytes and its count another 8: reject a claimed size the
  // remaining payload cannot possibly hold before allocating it.
  if (num_edges > kMaxHistogramEdges ||
      static_cast<size_t>(num_edges) * 16 > cur.remaining()) {
    cur.Fail();
    return false;
  }
  auto edges = std::make_shared<std::vector<double>>(num_edges);
  for (double& e : *edges) {
    if (!cur.GetF64(&e)) return false;
  }
  out->counts.assign(num_edges + 1, 0);
  for (int64_t& c : out->counts) {
    if (!cur.GetI64(&c)) return false;
  }
  out->edges = std::move(edges);
  return cur.GetF64(&out->sum) && cur.GetF64(&out->min) &&
         cur.GetF64(&out->max);
}

}  // namespace

bool EncodeMetricsSnapshot(const MetricsSnapshot& snap, std::string* out,
                           std::string* error) {
  if (snap.counters.size() > kMaxMetricEntries ||
      snap.gauges.size() > kMaxMetricEntries ||
      snap.histograms.size() > kMaxMetricEntries) {
    return SetError(error, "entry count exceeds cap");
  }
  std::string body;
  PutU32(&body, static_cast<uint32_t>(snap.counters.size()));
  for (const auto& [name, value] : snap.counters) {
    if (name.size() > kMaxMetricName) {
      return SetError(error, "counter name exceeds cap: " + name);
    }
    PutName(&body, name);
    PutI64(&body, value);
  }
  PutU32(&body, static_cast<uint32_t>(snap.gauges.size()));
  for (const auto& [name, value] : snap.gauges) {
    if (name.size() > kMaxMetricName) {
      return SetError(error, "gauge name exceeds cap: " + name);
    }
    PutName(&body, name);
    PutF64(&body, value);
  }
  PutU32(&body, static_cast<uint32_t>(snap.histograms.size()));
  for (const auto& [name, hist] : snap.histograms) {
    if (name.size() > kMaxMetricName) {
      return SetError(error, "histogram name exceeds cap: " + name);
    }
    PutName(&body, name);
    if (!EncodeHistogram(hist, &body, error)) return false;
  }
  out->append(body);
  return true;
}

bool DecodeMetricsSnapshot(const char* data, size_t size,
                           MetricsSnapshot* out, std::string* error) {
  Cursor cur(data, size);
  MetricsSnapshot snap;  // decode into a local: *out untouched on failure

  uint32_t n = 0;
  if (!cur.GetU32(&n) || n > kMaxMetricEntries) {
    return SetError(error, "bad counter count");
  }
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    int64_t value = 0;
    if (!cur.GetName(&name) || !cur.GetI64(&value)) {
      return SetError(error, "truncated counter entry");
    }
    snap.counters[std::move(name)] = value;
  }
  if (!cur.GetU32(&n) || n > kMaxMetricEntries) {
    return SetError(error, "bad gauge count");
  }
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    double value = 0.0;
    if (!cur.GetName(&name) || !cur.GetF64(&value)) {
      return SetError(error, "truncated gauge entry");
    }
    snap.gauges[std::move(name)] = value;
  }
  if (!cur.GetU32(&n) || n > kMaxMetricEntries) {
    return SetError(error, "bad histogram count");
  }
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    HistogramSnapshot hist;
    if (!cur.GetName(&name) || !DecodeHistogram(cur, &hist)) {
      return SetError(error, "truncated histogram entry");
    }
    snap.histograms[std::move(name)] = std::move(hist);
  }
  if (!cur.ok()) return SetError(error, "malformed payload");
  if (cur.remaining() != 0) {
    return SetError(error, "trailing bytes after snapshot");
  }
  *out = std::move(snap);
  return true;
}

}  // namespace obs
}  // namespace rntraj
