#include "src/obs/quantile.h"

#include <algorithm>

namespace rntraj {
namespace obs {

double ExactQuantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  const long long k =
      QuantileRank(q, static_cast<long long>(values.size()));
  std::nth_element(values.begin(), values.begin() + k, values.end());
  return values[static_cast<size_t>(k)];
}

}  // namespace obs
}  // namespace rntraj
