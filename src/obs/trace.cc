#include "src/obs/trace.h"

#include <cstdio>
#include <cstring>
#include <utility>

namespace rntraj {
namespace obs {

namespace {

/// splitmix64 finaliser — the same mixer the fault injector uses, so trace
/// sampling is a pure function of (seed, id) with full avalanche.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr uint64_t kSampleSalt = 0x74726163;  // 'trac'

std::string JsonStr(const char* s) {
  std::string out = "\"";
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out.push_back('\\');
    out.push_back(*p);
  }
  out.push_back('"');
  return out;
}

std::string Us(int64_t ns) {
  // Microseconds with one decimal: readable, and steady-clock resolution
  // rarely justifies more.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ns) / 1e3);
  return buf;
}

}  // namespace

RequestTrace::RequestTrace(uint64_t request_id)
    : request_id_(request_id), begin_(std::chrono::steady_clock::now()) {
  spans_.push_back(TraceSpan{"request", -1, 0, -1});
}

int RequestTrace::OpenSpanAt(const char* name, int parent, int64_t at_ns) {
  spans_.push_back(TraceSpan{name, parent, at_ns, -1});
  return static_cast<int>(spans_.size()) - 1;
}

void RequestTrace::CloseSpanAt(int span, int64_t at_ns) {
  if (span < 0 || span >= static_cast<int>(spans_.size())) return;
  TraceSpan& s = spans_[static_cast<size_t>(span)];
  if (s.end_ns >= 0) return;  // already closed
  s.end_ns = at_ns < s.start_ns ? s.start_ns : at_ns;
}

int RequestTrace::AddCompletedSpan(const char* name, int parent,
                                   int64_t start_ns, int64_t end_ns) {
  if (end_ns < start_ns) end_ns = start_ns;
  spans_.push_back(TraceSpan{name, parent, start_ns, end_ns});
  return static_cast<int>(spans_.size()) - 1;
}

int RequestTrace::SpanIndex(const char* name) const {
  for (int i = static_cast<int>(spans_.size()) - 1; i >= 0; --i) {
    const char* n = spans_[static_cast<size_t>(i)].name;
    if (n == name || std::strcmp(n, name) == 0) return i;
  }
  return -1;
}

void RequestTrace::AddEventAt(const char* name, int64_t at_ns) {
  events_.push_back(TraceEvent{name, at_ns});
}

void RequestTrace::Finish() {
  const int64_t now = NowNs();
  // Children first, root last, so the root's end bounds every child's.
  for (size_t i = spans_.size(); i-- > 0;) {
    if (spans_[i].end_ns < 0) spans_[i].end_ns = now;
  }
}

bool RequestTrace::WellFormed(std::string* why) const {
  auto violate = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (spans_.empty()) return violate("no spans");
  if (spans_[0].parent != -1) return violate("span 0 is not the root");
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    const std::string at = std::string(" (span ") + std::to_string(i) +
                           " '" + s.name + "')";
    if (i > 0 &&
        (s.parent < 0 || s.parent >= static_cast<int>(i))) {
      return violate("parent does not precede child" + at);
    }
    if (s.end_ns < 0) return violate("span still open" + at);
    if (s.end_ns < s.start_ns) return violate("span ends before start" + at);
    if (i > 0) {
      const TraceSpan& p = spans_[static_cast<size_t>(s.parent)];
      if (s.start_ns < p.start_ns || s.end_ns > p.end_ns) {
        return violate("child escapes parent interval" + at);
      }
    }
  }
  for (const TraceEvent& e : events_) {
    if (e.at_ns < spans_[0].start_ns || e.at_ns > spans_[0].end_ns) {
      return violate(std::string("event '") + e.name +
                     "' outside the root interval");
    }
  }
  return true;
}

std::string RequestTrace::ToJson() const {
  std::string out = "{\"request_id\":" + std::to_string(request_id_);
  out += ",\"outcome\":" + JsonStr(outcome_);
  if (degraded_) out += ",\"degraded\":true";
  if (policy_at_submit_[0] != '\0') {
    out += ",\"policy_at_submit\":" + JsonStr(policy_at_submit_);
  }
  if (session_id_ >= 0) {
    out += ",\"session\":" + std::to_string(session_id_);
  }
  if (batch_size_ > 0) {
    out += ",\"batch_size\":" + std::to_string(batch_size_);
  }
  out += ",\"spans\":[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    if (i > 0) out += ",";
    out += "{\"name\":" + JsonStr(s.name) +
           ",\"parent\":" + std::to_string(s.parent) +
           ",\"start_us\":" + Us(s.start_ns) +
           ",\"end_us\":" + Us(s.end_ns) + "}";
  }
  out += "],\"events\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"name\":" + JsonStr(events_[i].name) +
           ",\"at_us\":" + Us(events_[i].at_ns) + "}";
  }
  out += "]}";
  return out;
}

Tracer::Tracer(const TracerConfig& config) : cfg_(config) {
  capacity_ = cfg_.ring_capacity > 0 ? cfg_.ring_capacity : 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
}

bool Tracer::ShouldSample(uint64_t request_id) const {
  if (cfg_.sample_rate <= 0.0) return false;
  if (cfg_.sample_rate >= 1.0) return true;
  const uint64_t h = Mix(Mix(cfg_.seed ^ kSampleSalt) ^ request_id);
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0 /* 2^53 */);
  return u < cfg_.sample_rate;
}

std::shared_ptr<RequestTrace> Tracer::MaybeBegin(uint64_t request_id) {
  if (!ShouldSample(request_id)) return nullptr;
  sampled_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<RequestTrace>(request_id);
}

void Tracer::Retain(std::shared_ptr<const RequestTrace> trace) {
  if (trace == nullptr) return;
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];
  uint32_t expected = 0;
  // Lock-free, not blocking: a collision (another writer lapping the ring,
  // or the reader copying this slot) drops the trace rather than spin.
  if (!slot.busy.compare_exchange_strong(expected, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.trace = std::move(trace);
  slot.busy.store(0, std::memory_order_release);
}

std::vector<std::shared_ptr<const RequestTrace>> Tracer::Retained() const {
  std::vector<std::shared_ptr<const RequestTrace>> out;
  out.reserve(capacity_);
  // Oldest-first best effort: the slot that the next ticket would claim is
  // the oldest entry once the ring has wrapped.
  const uint64_t start = head_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[(start + i) % capacity_];
    uint32_t expected = 0;
    if (!slot.busy.compare_exchange_strong(expected, 1,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
      continue;  // a writer owns it right now; skip
    }
    if (slot.trace != nullptr) out.push_back(slot.trace);
    slot.busy.store(0, std::memory_order_release);
  }
  return out;
}

std::string Tracer::DumpJson() const {
  std::string out = "[";
  bool first = true;
  for (const auto& t : Retained()) {
    if (!first) out += ",\n";
    first = false;
    out += t->ToJson();
  }
  out += "]";
  return out;
}

}  // namespace obs
}  // namespace rntraj
