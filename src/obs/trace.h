#ifndef RNTRAJ_OBS_TRACE_H_
#define RNTRAJ_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

/// \file trace.h
/// Per-request tracing: a sampled request carries a RequestTrace — a span
/// tree over its lifetime (submit -> queue wait -> dequeue/eviction ->
/// dispatch -> forward[encode|decode] -> respond) plus point events
/// (policy transitions, injected faults) — with steady-clock timestamps
/// relative to submit. The Tracer decides deterministically which requests
/// are sampled (seeded hash of the request id, the FaultInjector idiom:
/// which requests are traced is a pure function of (seed, id), reproducible
/// under TSan's scheduler and across session counts) and retains finished
/// traces in a lock-free ring.
///
/// Cost contract: with sample_rate == 0 every touchpoint is one branch on a
/// null pointer — no clock reads, no allocation. A RequestTrace itself is
/// single-owner: it travels with its QueuedRequest, whose handoffs
/// (queue mutex, promise) already order access — no internal locking.

namespace rntraj {
namespace obs {

/// One interval in the tree. `name` must be a static-lifetime literal.
struct TraceSpan {
  const char* name = "";
  int parent = -1;       ///< Index into the trace's span vector; -1 = root.
  int64_t start_ns = 0;  ///< Steady-clock ns since the trace began.
  int64_t end_ns = -1;   ///< -1 while open.
};

/// One point event, attached to the root span's timeline.
struct TraceEvent {
  const char* name = "";
  int64_t at_ns = 0;
};

/// The span tree of one sampled request. Span index 0 is the root
/// ("request"), opened at construction; indices are creation-ordered.
class RequestTrace {
 public:
  static constexpr int kRootSpan = 0;

  explicit RequestTrace(uint64_t request_id);

  uint64_t request_id() const { return request_id_; }

  /// Steady-clock ns since the trace began.
  int64_t NowNs() const { return ToNs(std::chrono::steady_clock::now()); }
  int64_t ToNs(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(tp - begin_)
        .count();
  }

  /// Opens a child span; returns its index.
  int OpenSpan(const char* name, int parent = kRootSpan) {
    return OpenSpanAt(name, parent, NowNs());
  }
  int OpenSpanAt(const char* name, int parent, int64_t at_ns);
  void CloseSpan(int span) { CloseSpanAt(span, NowNs()); }
  void CloseSpanAt(int span, int64_t at_ns);
  /// Records an already-measured interval (e.g. the encode/decode split
  /// synthesised from stage-profiler capture after the forward ran).
  int AddCompletedSpan(const char* name, int parent, int64_t start_ns,
                       int64_t end_ns);
  /// Index of the most recent span named `name` (pointer or string
  /// compare), -1 if absent — how later pipeline stages find spans opened
  /// by earlier ones without threading indices through the queue.
  int SpanIndex(const char* name) const;

  void AddEvent(const char* name) { AddEventAt(name, NowNs()); }
  void AddEventAt(const char* name, int64_t at_ns);

  /// Closes every still-open span (root last) at now.
  void Finish();

  // --- summary annotations stamped by the service ---
  void set_outcome(const char* o) { outcome_ = o; }
  const char* outcome() const { return outcome_; }
  void set_degraded(bool d) { degraded_ = d; }
  bool degraded() const { return degraded_; }
  void set_session_id(int id) { session_id_ = id; }
  int session_id() const { return session_id_; }
  void set_batch_size(int n) { batch_size_ = n; }
  int batch_size() const { return batch_size_; }
  void set_policy_at_submit(const char* s) { policy_at_submit_ = s; }
  const char* policy_at_submit() const { return policy_at_submit_; }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Structural invariants: span 0 is the root and the only orphan, every
  /// parent index precedes its child, every span is closed with
  /// end >= start, and children nest inside their parent's interval.
  /// Returns false and describes the first violation in *why (if given).
  bool WellFormed(std::string* why = nullptr) const;

  /// One JSON object: {"request_id":..,"outcome":..,"spans":[...],
  /// "events":[...]}. Durations in microseconds for readability.
  std::string ToJson() const;

 private:
  uint64_t request_id_;
  std::chrono::steady_clock::time_point begin_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceEvent> events_;
  const char* outcome_ = "";
  const char* policy_at_submit_ = "";
  bool degraded_ = false;
  int session_id_ = -1;
  int batch_size_ = 0;
};

/// Sampling + retention knobs.
struct TracerConfig {
  /// Fraction of requests sampled, decided per request id (deterministic in
  /// (seed, id)). 0 disables tracing: every touchpoint costs one branch.
  double sample_rate = 0.0;
  uint64_t seed = 0;
  /// Finished traces retained for dumps; older entries are overwritten.
  size_t ring_capacity = 256;
};

/// Thread-safe sampler + retention ring. Retain() is lock-free and
/// wait-free: a ticket fetch_add picks the slot and a single CAS guards the
/// shared_ptr swap — a writer (or the snapshot reader) colliding on a slot
/// mid-update drops the trace instead of spinning (retention is best-effort
/// by design; the `dropped` counter says how often).
class Tracer {
 public:
  explicit Tracer(const TracerConfig& config);

  const TracerConfig& config() const { return cfg_; }

  /// One branch when sampling is off.
  bool ShouldSample(uint64_t request_id) const;

  /// A new trace for `request_id` when sampled, null otherwise.
  std::shared_ptr<RequestTrace> MaybeBegin(uint64_t request_id);

  /// Stores a finished trace in the ring (wraps, overwriting the oldest).
  void Retain(std::shared_ptr<const RequestTrace> trace);

  /// Copies out the currently retained traces (unordered).
  std::vector<std::shared_ptr<const RequestTrace>> Retained() const;

  /// JSON array of retained traces, oldest-first best effort.
  std::string DumpJson() const;

  int64_t sampled() const { return sampled_.load(std::memory_order_relaxed); }
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    std::atomic<uint32_t> busy{0};
    std::shared_ptr<const RequestTrace> trace;  ///< Guarded by `busy`.
  };

  TracerConfig cfg_;
  std::unique_ptr<Slot[]> slots_;
  size_t capacity_;
  std::atomic<uint64_t> head_{0};
  std::atomic<int64_t> sampled_{0};
  std::atomic<int64_t> dropped_{0};
};

}  // namespace obs
}  // namespace rntraj

#endif  // RNTRAJ_OBS_TRACE_H_
