#ifndef RNTRAJ_OBS_METRICS_H_
#define RNTRAJ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/obs/histogram.h"

/// \file metrics.h
/// The named-metric registry: counters, gauges and latency histograms
/// looked up once by name (mutex-guarded registration, cold path) and then
/// incremented through stable pointers (lock-free, hot path). Counters
/// shard across cache lines so concurrent producers do not bounce one
/// line. A MetricsSnapshot is the export unit — JSON and Prometheus text
/// for scrapers, Delta() for periodic dumps, Merge() for aggregating
/// per-worker snapshots into a fleet view (ROADMAP open item 2: the
/// router's input).

namespace rntraj {
namespace obs {

/// Monotonic counter; Add is a relaxed fetch_add on one of kShards
/// cache-line-padded atomics picked by thread identity.
class Counter {
 public:
  void Add(int64_t n = 1) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };
  static size_t ShardIndex() {
    static thread_local const size_t slot =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
    return slot;
  }
  Shard shards_[kShards];
};

/// Last-writer-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time copy of every registered metric. Maps are name-sorted, so
/// exports are byte-deterministic for identical contents.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Activity since `earlier` (counters/histograms subtract; gauges keep
  /// their current value — an instantaneous reading has no delta).
  MetricsSnapshot Delta(const MetricsSnapshot& earlier) const;

  /// Folds another worker's snapshot in: counters/histogram counts add,
  /// gauges last-writer-wins (other overwrites on a shared name).
  void Merge(const MetricsSnapshot& other);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,mean,p50,p90,p99,buckets:[{le,count},...]}}} — buckets list only
  /// non-empty ones. Self-contained: a scraped file carries everything a
  /// fleet aggregator needs.
  std::string ToJson() const;

  /// Prometheus text exposition (counters, gauges, cumulative-`le`
  /// histogram series + _sum/_count). Metric names are sanitised to
  /// [a-zA-Z0-9_:] as the format requires.
  std::string ToPrometheusText() const;
};

/// The registry. Thread-safe; returned pointers stay valid for the
/// registry's lifetime — resolve names once, increment forever.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `options` applies on first registration only (a histogram's layout is
  /// immutable; callers re-resolving a name get the existing instance).
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const HistogramOptions& options = {});

  MetricsSnapshot Snapshot() const;
  /// Current snapshot minus `since` — the periodic-dump primitive.
  MetricsSnapshot SnapshotDelta(const MetricsSnapshot& since) const {
    return Snapshot().Delta(since);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace obs
}  // namespace rntraj

#endif  // RNTRAJ_OBS_METRICS_H_
