#include "src/obs/stage_profiler.h"

#include <cstdio>

namespace rntraj {
namespace obs {

namespace {

thread_local StageCaptureScope* tls_capture = nullptr;

}  // namespace

const char* StageName(Stage s) {
  switch (s) {
    case Stage::kSubgraph: return "subgraph";
    case Stage::kTransformer: return "transformer";
    case Stage::kGat: return "gat";
    case Stage::kGrl: return "grl";
    case Stage::kConstraintMask: return "constraint_mask";
    case Stage::kDecoder: return "decoder";
    case Stage::kCount: break;
  }
  return "?";
}

int64_t StageProfile::TotalNs() const {
  int64_t total = 0;
  for (const StageStat& s : stages) total += s.ns;
  return total;
}

StageProfile StageProfile::Delta(const StageProfile& earlier) const {
  StageProfile d = *this;
  for (int i = 0; i < kStageCount; ++i) {
    d.stages[i].ns -= earlier.stages[i].ns;
    d.stages[i].count -= earlier.stages[i].count;
  }
  return d;
}

std::string StageProfile::ToTable() const {
  const int64_t total = TotalNs();
  if (total <= 0) return "";
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line), "  %-16s %10s %8s %7s\n", "stage",
                "total_ms", "count", "share");
  out += line;
  for (int i = 0; i < kStageCount; ++i) {
    const StageStat& s = stages[i];
    if (s.count == 0 && s.ns == 0) continue;
    std::snprintf(line, sizeof(line), "  %-16s %10.2f %8lld %6.1f%%\n",
                  StageName(static_cast<Stage>(i)), s.Ms(),
                  static_cast<long long>(s.count),
                  100.0 * static_cast<double>(s.ns) /
                      static_cast<double>(total));
    out += line;
  }
  return out;
}

StageProfiler& StageProfiler::Global() {
  static StageProfiler instance;
  return instance;
}

void StageProfiler::RecordNs(Stage s, int64_t ns) {
  Cell& c = cells_[static_cast<int>(s)];
  c.ns.fetch_add(ns, std::memory_order_relaxed);
  c.count.fetch_add(1, std::memory_order_relaxed);
}

StageProfile StageProfiler::Snapshot() const {
  StageProfile p;
  for (int i = 0; i < kStageCount; ++i) {
    p.stages[i].ns = cells_[i].ns.load(std::memory_order_relaxed);
    p.stages[i].count = cells_[i].count.load(std::memory_order_relaxed);
  }
  return p;
}

StageCaptureScope::StageCaptureScope() : prev_(tls_capture) {
  tls_capture = this;
}

StageCaptureScope::~StageCaptureScope() { tls_capture = prev_; }

StageCaptureScope* StageCaptureScope::Current() { return tls_capture; }

}  // namespace obs
}  // namespace rntraj
