#ifndef RNTRAJ_OBS_QUANTILE_H_
#define RNTRAJ_OBS_QUANTILE_H_

#include <vector>

/// \file quantile.h
/// THE quantile definition of this tree. Every percentile the project
/// reports — ServeStats, the serving benchmarks, the metrics registry's
/// histograms — uses the same rank rule, pinned by obs_test:
///
///   rank(q, n) = floor(q * (n - 1)),   zero-indexed, q in [0, 1]
///
/// i.e. the q-quantile of n samples is the rank(q,n)-th smallest sample
/// (the "lower" / type-1 empirical quantile: p0 = min, p100 = max, no
/// interpolation). An empty input yields 0. LatencyHistogram::Quantile
/// applies the identical rule to its exact bucket counts and answers with
/// that rank's bucket upper edge, so histogram quantiles are a deterministic
/// upper bound of the exact-sample quantile, off by at most one bucket's
/// relative width.

namespace rntraj {
namespace obs {

/// Exact q-quantile of `values` by selection (O(n) nth_element); 0 when
/// empty. Takes its argument by value: selection reorders it.
double ExactQuantile(std::vector<double> values, double q);

/// The shared rank rule, exposed so the histogram and the exact helper can
/// never drift apart: zero-indexed rank of the q-quantile among n samples.
inline long long QuantileRank(double q, long long n) {
  if (n <= 0) return 0;
  long long k = static_cast<long long>(q * static_cast<double>(n - 1));
  if (k < 0) k = 0;
  if (k > n - 1) k = n - 1;
  return k;
}

}  // namespace obs
}  // namespace rntraj

#endif  // RNTRAJ_OBS_QUANTILE_H_
