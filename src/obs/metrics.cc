#include "src/obs/metrics.h"

#include <cctype>
#include <cstdio>
#include <limits>
#include <utility>

namespace rntraj {
namespace obs {

namespace {

/// Shortest round-trip-safe double formatting (JSON has no inf/nan).
std::string Num(double v) {
  if (v != v) return "0";
  if (v == std::numeric_limits<double>::infinity()) return "1e308";
  if (v == -std::numeric_limits<double>::infinity()) return "-1e308";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // %.17g is exact but verbose; prefer the short form when it round-trips.
  char short_buf[64];
  std::snprintf(short_buf, sizeof(short_buf), "%.6g", v);
  double back = 0.0;
  std::sscanf(short_buf, "%lf", &back);
  return back == v ? short_buf : buf;
}

/// Metric names are code-controlled identifiers; escape defensively anyway.
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

/// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PromName(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) || c == ':'
                      ? c
                      : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void AppendHistogramJson(std::string* out, const HistogramSnapshot& h) {
  *out += "{\"count\":" + std::to_string(h.TotalCount());
  *out += ",\"sum\":" + Num(h.sum);
  *out += ",\"min\":" + Num(h.min);
  *out += ",\"max\":" + Num(h.max);
  *out += ",\"mean\":" + Num(h.Mean());
  *out += ",\"p50\":" + Num(h.Quantile(0.50));
  *out += ",\"p90\":" + Num(h.Quantile(0.90));
  *out += ",\"p99\":" + Num(h.Quantile(0.99));
  *out += ",\"buckets\":[";
  bool first = true;
  for (size_t i = 0; i < h.counts.size(); ++i) {
    if (h.counts[i] == 0) continue;
    if (!first) *out += ",";
    first = false;
    // `le` is the bucket's exclusive upper edge; the overflow bucket is
    // unbounded ("inf" as in the Prometheus exposition).
    const std::string le = (h.edges != nullptr && i < h.edges->size())
                               ? Num((*h.edges)[i])
                               : std::string("\"inf\"");
    *out += "{\"le\":" + le + ",\"count\":" + std::to_string(h.counts[i]) +
            "}";
  }
  *out += "]}";
}

}  // namespace

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot d = *this;
  for (auto& [name, v] : d.counters) {
    auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) v -= it->second;
  }
  for (auto& [name, h] : d.histograms) {
    auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end()) h = h.Delta(it->second);
  }
  return d;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, h] : other.histograms) {
    auto [it, inserted] = histograms.emplace(name, h);
    if (!inserted) it->second.Merge(h);
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += JsonString(name) + ":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    out += JsonString(name) + ":" + Num(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += JsonString(name) + ":";
    AppendHistogramJson(&out, h);
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    const std::string n = PromName(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : gauges) {
    const std::string n = PromName(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + Num(v) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string n = PromName(name);
    out += "# TYPE " + n + " histogram\n";
    // Cumulative `le` series, as the exposition format specifies. The
    // underflow bucket folds into the first finite `le`.
    int64_t cum = 0;
    if (h.edges != nullptr) {
      for (size_t i = 0; i < h.edges->size(); ++i) {
        cum += h.counts[i];
        out += n + "_bucket{le=\"" + Num((*h.edges)[i]) + "\"} " +
               std::to_string(cum) + "\n";
      }
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.TotalCount()) +
           "\n";
    out += n + "_sum " + Num(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.TotalCount()) + "\n";
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(
    const std::string& name, const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>(options);
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot s;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) s.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace(name, h->Snapshot());
  }
  return s;
}

}  // namespace obs
}  // namespace rntraj
