#ifndef RNTRAJ_OBS_HISTOGRAM_H_
#define RNTRAJ_OBS_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/obs/quantile.h"

/// \file histogram.h
/// Fixed-bucket log-scale latency histogram with EXACT counts: every
/// recorded value lands in exactly one bucket, bucket edges are computed
/// once at construction, and Record() is a binary search plus one relaxed
/// atomic increment — no locks, no stored samples. Quantiles over the
/// bucket counts use the tree-wide rank rule (obs/quantile.h) and answer
/// with the rank's bucket upper edge (clamped to the observed max), so
/// p50/p99 are deterministic, reproducible across thread interleavings, and
/// *mergeable*: summing two workers' bucket counts yields exactly the
/// histogram of the union of their samples. This replaces ServeStats'
/// stored-sample ring: a window of samples cannot be merged across workers
/// and its percentiles depend on arrival order once the ring wraps.
///
/// Relative quantile error is bounded by one bucket's width. The default
/// 48 buckets per decade keeps that under 10^(1/48) - 1 ~ 4.9%.

namespace rntraj {
namespace obs {

/// Bucket layout. Edges at min_value * 10^(i / buckets_per_decade) up to
/// max_value; one underflow bucket below min_value, one overflow bucket at
/// max_value and above.
struct HistogramOptions {
  double min_value = 1e-3;     ///< First finite bucket edge (1 us in ms).
  double max_value = 1e5;      ///< Last finite bucket edge (100 s in ms).
  int buckets_per_decade = 48; ///< Bucket relative width 10^(1/bpd)-1 ~ 4.9%.
};

/// Immutable copy of a histogram's counts — the unit of export, merge and
/// delta. Two snapshots are layout-compatible iff they came from histograms
/// with identical options.
struct HistogramSnapshot {
  /// Finite bucket edges, ascending, size B+1 for B finite buckets.
  /// counts[0] is the underflow bucket (v < edges[0]); counts[1 + i] covers
  /// [edges[i], edges[i+1]); counts.back() is the overflow bucket
  /// (v >= edges.back()). Edges are shared with the source histogram.
  std::shared_ptr<const std::vector<double>> edges;
  std::vector<int64_t> counts;  ///< Size edges->size() + 1.
  double sum = 0.0;
  /// Observed extrema over the histogram's whole lifetime (NOT per delta
  /// window — a delta keeps the newer snapshot's extrema, which still upper-
  /// bounds the window). +inf/-inf respectively when nothing was recorded.
  double min = 0.0;
  double max = 0.0;

  int64_t TotalCount() const;
  double Mean() const;

  /// q-quantile by the shared rank rule over exact bucket counts: the
  /// upper edge of the bucket holding rank(q, count), clamped to the
  /// observed max (and to the observed min for the underflow bucket).
  /// 0 when empty. Deterministic and stable under merge.
  double Quantile(double q) const;

  /// Adds `other`'s counts/sum into this snapshot (same layout required;
  /// returns false and leaves *this untouched on a layout mismatch). The
  /// fleet-aggregation primitive: merge(worker snapshots) == one worker
  /// having seen all samples.
  bool Merge(const HistogramSnapshot& other);

  /// Counts recorded since `earlier` (same layout required); the periodic-
  /// dump primitive. Extrema are kept from *this (see note above).
  HistogramSnapshot Delta(const HistogramSnapshot& earlier) const;
};

/// The live, concurrently-writable histogram. Record() is wait-free after
/// the edge binary search; Snapshot() is racy-consistent (each counter read
/// atomically; a snapshot taken mid-Record may miss in-flight values but
/// never tears).
class LatencyHistogram {
 public:
  explicit LatencyHistogram(const HistogramOptions& options = {});

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one value. NaN is dropped (a NaN latency is a bug upstream,
  /// not a tail sample); +/-inf land in overflow/underflow.
  void Record(double value);

  HistogramSnapshot Snapshot() const;

  /// Convenience: quantile of the current contents.
  double Quantile(double q) const { return Snapshot().Quantile(q); }

  const std::vector<double>& edges() const { return *edges_; }

 private:
  std::shared_ptr<const std::vector<double>> edges_;
  /// counts_[0] underflow, counts_[1..B] finite, counts_[B+1] overflow.
  std::unique_ptr<std::atomic<int64_t>[]> counts_;
  size_t num_counts_;
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  ///< +inf sentinel set in ctor.
  std::atomic<double> max_{0.0};  ///< -inf sentinel set in ctor.
};

}  // namespace obs
}  // namespace rntraj

#endif  // RNTRAJ_OBS_HISTOGRAM_H_
