#include "src/eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/common/check.h"

namespace rntraj {

PathScore ScoreTravelPath(const std::vector<int>& truth_path,
                          const std::vector<int>& pred_path) {
  const std::set<int> truth_set(truth_path.begin(), truth_path.end());
  const std::set<int> pred_set(pred_path.begin(), pred_path.end());
  int common = 0;
  for (int seg : pred_set) common += truth_set.count(seg) > 0;
  PathScore s;
  if (!truth_set.empty()) s.recall = static_cast<double>(common) / truth_set.size();
  if (!pred_set.empty()) {
    s.precision = static_cast<double>(common) / pred_set.size();
  }
  if (s.recall + s.precision > 0.0) {
    s.f1 = 2.0 * s.recall * s.precision / (s.recall + s.precision);
  }
  return s;
}

RecoveryMetrics EvaluateRecovery(NetworkDistance& nd,
                                 const std::vector<MatchedTrajectory>& preds,
                                 const std::vector<MatchedTrajectory>& truths) {
  RNTRAJ_CHECK_MSG(preds.size() == truths.size(), "pred/truth count mismatch");
  RecoveryMetrics m;
  double sum_sq = 0.0;
  double sum_abs = 0.0;
  int64_t num_points = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    const auto& pred = preds[i];
    const auto& truth = truths[i];
    RNTRAJ_CHECK_MSG(pred.size() == truth.size(),
                     "trajectory " << i << ": length mismatch " << pred.size()
                                   << " vs " << truth.size());
    const PathScore ps = ScoreTravelPath(truth.TravelPath(), pred.TravelPath());
    m.recall += ps.recall;
    m.precision += ps.precision;
    m.f1 += ps.f1;
    int correct = 0;
    for (int j = 0; j < pred.size(); ++j) {
      const auto& pp = pred.points[j];
      const auto& tp = truth.points[j];
      correct += pp.seg_id == tp.seg_id;
      const double err = nd.Symmetric(pp.seg_id, pp.ratio, tp.seg_id, tp.ratio);
      sum_abs += err;
      sum_sq += err * err;
      ++num_points;
    }
    m.accuracy += static_cast<double>(correct) / pred.size();
  }
  const double n = static_cast<double>(preds.size());
  if (n > 0) {
    m.recall /= n;
    m.precision /= n;
    m.f1 /= n;
    m.accuracy /= n;
  }
  if (num_points > 0) {
    m.mae = sum_abs / static_cast<double>(num_points);
    m.rmse = std::sqrt(sum_sq / static_cast<double>(num_points));
  }
  m.num_trajectories = static_cast<int>(preds.size());
  return m;
}

std::vector<double> ElevatedSubTrajectoryF1(
    const RoadNetwork& rn, const std::vector<MatchedTrajectory>& preds,
    const std::vector<MatchedTrajectory>& truths, double near_radius,
    int min_points) {
  RNTRAJ_CHECK(preds.size() == truths.size());
  // Precompute which segments count as "on or near" the elevated corridor.
  std::vector<bool> near_elevated(rn.num_segments(), false);
  for (int i = 0; i < rn.num_segments(); ++i) {
    if (rn.segment(i).elevated()) {
      near_elevated[i] = true;
      continue;
    }
    const Vec2 mid = rn.PointAt(i, 0.5);
    for (int j = 0; j < rn.num_segments() && !near_elevated[i]; ++j) {
      if (!rn.segment(j).elevated()) continue;
      if (rn.Project(mid, j).distance <= near_radius) near_elevated[i] = true;
    }
  }

  std::vector<double> out;
  for (size_t i = 0; i < preds.size(); ++i) {
    std::vector<int> truth_sub;
    std::vector<int> pred_sub;
    for (int j = 0; j < truths[i].size(); ++j) {
      if (near_elevated[truths[i].points[j].seg_id]) {
        truth_sub.push_back(truths[i].points[j].seg_id);
        pred_sub.push_back(preds[i].points[j].seg_id);
      }
    }
    if (static_cast<int>(truth_sub.size()) < min_points) continue;
    MatchedTrajectory t;
    MatchedTrajectory p;
    for (int seg : truth_sub) t.points.push_back({seg, 0, 0});
    for (int seg : pred_sub) p.points.push_back({seg, 0, 0});
    out.push_back(ScoreTravelPath(t.TravelPath(), p.TravelPath()).f1);
  }
  return out;
}

double SrAtK(const std::vector<double>& f1_values, double k) {
  if (f1_values.empty()) return 0.0;
  int count = 0;
  for (double v : f1_values) count += v > k;
  return static_cast<double>(count) / static_cast<double>(f1_values.size());
}

}  // namespace rntraj
