#ifndef RNTRAJ_EVAL_METRICS_H_
#define RNTRAJ_EVAL_METRICS_H_

#include <vector>

#include "src/roadnet/road_network.h"
#include "src/roadnet/shortest_path.h"
#include "src/traj/trajectory.h"

/// \file metrics.h
/// Evaluation metrics of paper §VI-A2: travel-path Recall/Precision/F1,
/// per-point segment Accuracy, network-distance MAE/RMSE, and the SR%k
/// robustness statistic for the elevated-road task.

namespace rntraj {

/// Aggregate recovery quality over a set of trajectories. Recall, Precision,
/// F1 and Accuracy are averaged per-trajectory; MAE/RMSE pool the per-point
/// network distance errors across all trajectories.
struct RecoveryMetrics {
  double recall = 0.0;
  double precision = 0.0;
  double f1 = 0.0;
  double accuracy = 0.0;
  double mae = 0.0;
  double rmse = 0.0;
  int num_trajectories = 0;
};

/// Travel-path recall/precision/F1 of one prediction against the truth
/// (set-based intersection of the de-duplicated segment paths).
struct PathScore {
  double recall = 0.0;
  double precision = 0.0;
  double f1 = 0.0;
};

PathScore ScoreTravelPath(const std::vector<int>& truth_path,
                          const std::vector<int>& pred_path);

/// Full metric suite over aligned prediction/truth pairs (equal lengths,
/// matching timestamps).
RecoveryMetrics EvaluateRecovery(NetworkDistance& nd,
                                 const std::vector<MatchedTrajectory>& preds,
                                 const std::vector<MatchedTrajectory>& truths);

/// Per-trajectory F1 restricted to the elevated sub-trajectory: the
/// timestamps whose ground-truth segment is elevated or lies within
/// `near_radius` of an elevated segment (the trunk road beneath). Returns one
/// F1 per trajectory having at least `min_points` such timestamps.
std::vector<double> ElevatedSubTrajectoryF1(
    const RoadNetwork& rn, const std::vector<MatchedTrajectory>& preds,
    const std::vector<MatchedTrajectory>& truths, double near_radius = 30.0,
    int min_points = 4);

/// SR%k (paper §VI-A2): the fraction of values strictly exceeding `k`.
double SrAtK(const std::vector<double>& f1_values, double k);

}  // namespace rntraj

#endif  // RNTRAJ_EVAL_METRICS_H_
