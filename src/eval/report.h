#ifndef RNTRAJ_EVAL_REPORT_H_
#define RNTRAJ_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "src/eval/metrics.h"

/// \file report.h
/// Fixed-width table printing for the benchmark harnesses; rows mirror the
/// layout of the paper's tables (method, Recall, Precision, F1, Accuracy,
/// MAE, RMSE).

namespace rntraj {

/// Streams a fixed-width ASCII table to stdout.
class TablePrinter {
 public:
  /// `headers` define the columns; the first column is left-aligned and
  /// sized to `first_width`.
  explicit TablePrinter(std::vector<std::string> headers, int first_width = 26,
                        int col_width = 11);

  void PrintTitle(const std::string& title) const;
  void PrintHeader() const;
  void PrintRow(const std::vector<std::string>& cells) const;
  void PrintRule() const;

  /// Fixed-precision formatting helper.
  static std::string Num(double v, int precision = 4);

 private:
  std::vector<std::string> headers_;
  int first_width_;
  int col_width_;
};

/// Prints one metrics row under the paper's Table III column layout.
void PrintMetricsRow(const TablePrinter& table, const std::string& method,
                     const RecoveryMetrics& m);

}  // namespace rntraj

#endif  // RNTRAJ_EVAL_REPORT_H_
