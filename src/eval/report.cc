#include "src/eval/report.h"

#include <cstdio>
#include <sstream>

namespace rntraj {

TablePrinter::TablePrinter(std::vector<std::string> headers, int first_width,
                           int col_width)
    : headers_(std::move(headers)),
      first_width_(first_width),
      col_width_(col_width) {}

std::string TablePrinter::Num(double v, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << v;
  return oss.str();
}

void TablePrinter::PrintTitle(const std::string& title) const {
  std::printf("\n=== %s ===\n", title.c_str());
}

void TablePrinter::PrintRule() const {
  const int total = first_width_ +
                    col_width_ * static_cast<int>(headers_.size() - 1);
  std::printf("%s\n", std::string(static_cast<size_t>(total), '-').c_str());
}

void TablePrinter::PrintHeader() const {
  std::printf("%-*s", first_width_, headers_[0].c_str());
  for (size_t i = 1; i < headers_.size(); ++i) {
    std::printf("%*s", col_width_, headers_[i].c_str());
  }
  std::printf("\n");
  PrintRule();
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  std::printf("%-*s", first_width_, cells[0].c_str());
  for (size_t i = 1; i < cells.size(); ++i) {
    std::printf("%*s", col_width_, cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

void PrintMetricsRow(const TablePrinter& table, const std::string& method,
                     const RecoveryMetrics& m) {
  table.PrintRow({method, TablePrinter::Num(m.recall), TablePrinter::Num(m.precision),
                  TablePrinter::Num(m.f1), TablePrinter::Num(m.accuracy),
                  TablePrinter::Num(m.mae, 2), TablePrinter::Num(m.rmse, 2)});
}

}  // namespace rntraj
