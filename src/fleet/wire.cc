#include "src/fleet/wire.h"

#include <cstring>
#include <utility>
#include <vector>

#include "src/obs/metrics_wire.h"

namespace rntraj {
namespace fleet {

namespace {

bool SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = "fleet wire: " + msg;
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Primitives

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutI32(std::string* out, int32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool WireCursor::GetRaw(void* dst, size_t n) {
  if (!ok_ || n > remaining()) {
    ok_ = false;
    return false;
  }
  std::memcpy(dst, p_, n);
  p_ += n;
  return true;
}

bool WireCursor::GetString(std::string* v, uint32_t max_len) {
  uint32_t n = 0;
  if (!GetU32(&n)) return false;
  if (n > max_len || n > remaining()) {
    Fail();
    return false;
  }
  v->assign(p_, n);
  p_ += n;
  return true;
}

// ---------------------------------------------------------------------------
// Frame header

void AppendFrameHeader(std::string* out, FrameType type,
                       uint64_t payload_size) {
  out->append(kWireMagic, sizeof(kWireMagic));
  PutU32(out, kWireVersion);
  PutU32(out, kWireEndianTag);
  PutU32(out, static_cast<uint32_t>(type));
  PutU64(out, payload_size);
}

bool ParseFrameHeader(const char* data, size_t size, FrameHeader* out,
                      std::string* error) {
  if (size < kFrameHeaderBytes) {
    return SetError(error, "truncated frame header (" + std::to_string(size) +
                               " of " + std::to_string(kFrameHeaderBytes) +
                               " bytes)");
  }
  if (std::memcmp(data, kWireMagic, sizeof(kWireMagic)) != 0) {
    return SetError(error, "bad magic (not a fleet frame)");
  }
  WireCursor cur(data + sizeof(kWireMagic), size - sizeof(kWireMagic));
  uint32_t version = 0, endian = 0, type = 0;
  uint64_t payload = 0;
  if (!cur.GetU32(&version) || !cur.GetU32(&endian) || !cur.GetU32(&type) ||
      !cur.GetU64(&payload)) {
    return SetError(error, "truncated frame header");
  }
  if (version != kWireVersion) {
    return SetError(error, "unsupported protocol version " +
                               std::to_string(version) + " (want " +
                               std::to_string(kWireVersion) + ")");
  }
  if (endian != kWireEndianTag) {
    return SetError(error, "foreign endianness tag");
  }
  if (type < static_cast<uint32_t>(FrameType::kRequest) ||
      type > static_cast<uint32_t>(FrameType::kPong)) {
    return SetError(error, "unknown frame type " + std::to_string(type));
  }
  if (payload > kMaxFramePayload) {
    return SetError(error, "oversized payload length prefix (" +
                               std::to_string(payload) + " bytes)");
  }
  out->type = static_cast<FrameType>(type);
  out->payload_size = payload;
  return true;
}

// ---------------------------------------------------------------------------
// Request

std::string EncodeRequestBody(const serve::RecoveryRequest& req) {
  std::string out;
  PutU32(&out, serve::kRequestWireVersion);
  PutU32(&out, static_cast<uint32_t>(req.input.points.size()));
  for (const RawPoint& p : req.input.points) {
    PutF64(&out, p.pos.x);
    PutF64(&out, p.pos.y);
    PutF64(&out, p.t);
  }
  PutU32(&out, static_cast<uint32_t>(req.target_times.size()));
  for (double t : req.target_times) PutF64(&out, t);
  PutU32(&out, static_cast<uint32_t>(req.input_indices.size()));
  for (int k : req.input_indices) PutI32(&out, k);
  PutF64(&out, req.deadline_ms);
  return out;
}

std::string BuildRequestFrame(uint64_t correlation_id,
                              const std::string& encoded_body) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + sizeof(uint64_t) + encoded_body.size());
  AppendFrameHeader(&frame, FrameType::kRequest,
                    sizeof(uint64_t) + encoded_body.size());
  PutU64(&frame, correlation_id);
  frame.append(encoded_body);
  return frame;
}

bool DecodeRequestPayload(const char* data, size_t size,
                          uint64_t* correlation_id,
                          serve::RecoveryRequest* out, std::string* error) {
  WireCursor cur(data, size);
  uint64_t id = 0;
  uint32_t layout = 0;
  if (!cur.GetU64(&id) || !cur.GetU32(&layout)) {
    return SetError(error, "truncated request payload");
  }
  if (layout != serve::kRequestWireVersion) {
    return SetError(error, "foreign request layout version " +
                               std::to_string(layout));
  }
  serve::RecoveryRequest req;  // decode locally: *out untouched on failure

  uint32_t n = 0;
  if (!cur.GetU32(&n)) return SetError(error, "truncated request payload");
  // 24 bytes per point: reject a count the remaining payload cannot hold
  // before allocating for it.
  if (n > kMaxWirePoints || static_cast<size_t>(n) * 24 > cur.remaining()) {
    return SetError(error, "request point count out of bounds");
  }
  req.input.points.resize(n);
  for (RawPoint& p : req.input.points) {
    cur.GetF64(&p.pos.x);
    cur.GetF64(&p.pos.y);
    cur.GetF64(&p.t);
  }

  if (!cur.GetU32(&n)) return SetError(error, "truncated request payload");
  if (n > kMaxWirePoints || static_cast<size_t>(n) * 8 > cur.remaining()) {
    return SetError(error, "target time count out of bounds");
  }
  req.target_times.resize(n);
  for (double& t : req.target_times) cur.GetF64(&t);

  if (!cur.GetU32(&n)) return SetError(error, "truncated request payload");
  if (n > kMaxWirePoints || static_cast<size_t>(n) * 4 > cur.remaining()) {
    return SetError(error, "input index count out of bounds");
  }
  req.input_indices.resize(n);
  for (int& k : req.input_indices) {
    int32_t v = 0;
    cur.GetI32(&v);
    k = v;
  }

  cur.GetF64(&req.deadline_ms);
  if (!cur.ok()) return SetError(error, "truncated request payload");
  if (cur.remaining() != 0) {
    return SetError(error, "trailing bytes after request");
  }
  *correlation_id = id;
  *out = std::move(req);
  return true;
}

// ---------------------------------------------------------------------------
// Response

std::string BuildResponseFrame(uint64_t correlation_id,
                               const serve::RecoveryResponse& resp) {
  std::string body;
  PutU64(&body, correlation_id);
  PutU32(&body, serve::kRequestWireVersion);
  PutU8(&body, resp.ok ? 1 : 0);
  PutU32(&body, static_cast<uint32_t>(resp.kind));
  // A service error string is bounded in practice; truncate defensively so
  // the frame always decodes (the cap is also what the decoder enforces).
  std::string err = resp.error;
  if (err.size() > kMaxWireString) err.resize(kMaxWireString);
  PutString(&body, err);
  PutU8(&body, resp.degraded ? 1 : 0);
  PutU32(&body, static_cast<uint32_t>(resp.recovered.points.size()));
  for (const MatchedPoint& p : resp.recovered.points) {
    PutI32(&body, p.seg_id);
    PutF64(&body, p.ratio);
    PutF64(&body, p.t);
  }
  PutI32(&body, resp.batch_size);
  PutI32(&body, resp.session_id);
  PutU64(&body, resp.model_version);
  PutF64(&body, resp.queue_ms);
  PutF64(&body, resp.infer_ms);

  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  AppendFrameHeader(&frame, FrameType::kResponse, body.size());
  frame.append(body);
  return frame;
}

bool DecodeResponsePayload(const char* data, size_t size,
                           uint64_t* correlation_id,
                           serve::RecoveryResponse* out, std::string* error) {
  WireCursor cur(data, size);
  uint64_t id = 0;
  uint32_t layout = 0;
  if (!cur.GetU64(&id) || !cur.GetU32(&layout)) {
    return SetError(error, "truncated response payload");
  }
  if (layout != serve::kRequestWireVersion) {
    return SetError(error, "foreign response layout version " +
                               std::to_string(layout));
  }
  serve::RecoveryResponse resp;
  uint8_t ok_byte = 0, degraded = 0;
  uint32_t kind_raw = 0;
  if (!cur.GetU8(&ok_byte) || !cur.GetU32(&kind_raw) ||
      !cur.GetString(&resp.error)) {
    return SetError(error, "truncated response payload");
  }
  if (!serve::ResponseKindFromWire(kind_raw, &resp.kind)) {
    return SetError(error,
                    "unknown response kind " + std::to_string(kind_raw));
  }
  if (!cur.GetU8(&degraded)) {
    return SetError(error, "truncated response payload");
  }
  uint32_t n = 0;
  if (!cur.GetU32(&n)) return SetError(error, "truncated response payload");
  // 20 bytes per matched point (i32 + 2 * f64).
  if (n > kMaxWirePoints || static_cast<size_t>(n) * 20 > cur.remaining()) {
    return SetError(error, "response point count out of bounds");
  }
  resp.recovered.points.resize(n);
  for (MatchedPoint& p : resp.recovered.points) {
    int32_t seg = 0;
    cur.GetI32(&seg);
    p.seg_id = seg;
    cur.GetF64(&p.ratio);
    cur.GetF64(&p.t);
  }
  int32_t batch_size = 0, session_id = 0;
  cur.GetI32(&batch_size);
  cur.GetI32(&session_id);
  cur.GetU64(&resp.model_version);
  cur.GetF64(&resp.queue_ms);
  cur.GetF64(&resp.infer_ms);
  if (!cur.ok()) return SetError(error, "truncated response payload");
  if (cur.remaining() != 0) {
    return SetError(error, "trailing bytes after response");
  }
  resp.ok = ok_byte != 0;
  resp.degraded = degraded != 0;
  resp.batch_size = batch_size;
  resp.session_id = session_id;
  *correlation_id = id;
  *out = std::move(resp);
  return true;
}

// ---------------------------------------------------------------------------
// Control frames

std::string BuildMetricsQueryFrame() {
  std::string frame;
  AppendFrameHeader(&frame, FrameType::kMetricsQuery, 0);
  return frame;
}

std::string BuildMetricsReplyFrame(const obs::MetricsSnapshot& snap) {
  std::string body;
  std::string error;
  if (!obs::EncodeMetricsSnapshot(snap, &body, &error)) {
    // A snapshot over the entry caps cannot arise from our registries; ship
    // an empty snapshot rather than a frame the peer must reject.
    body.clear();
    obs::EncodeMetricsSnapshot(obs::MetricsSnapshot{}, &body, nullptr);
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  AppendFrameHeader(&frame, FrameType::kMetricsReply, body.size());
  frame.append(body);
  return frame;
}

bool DecodeMetricsReplyPayload(const char* data, size_t size,
                               obs::MetricsSnapshot* out,
                               std::string* error) {
  return obs::DecodeMetricsSnapshot(data, size, out, error);
}

std::string BuildSwapModelFrame(const std::string& snapshot_path) {
  std::string body;
  PutString(&body, snapshot_path);
  std::string frame;
  AppendFrameHeader(&frame, FrameType::kSwapModel, body.size());
  frame.append(body);
  return frame;
}

bool DecodeSwapModelPayload(const char* data, size_t size,
                            std::string* snapshot_path, std::string* error) {
  WireCursor cur(data, size);
  std::string path;
  if (!cur.GetString(&path) || cur.remaining() != 0) {
    return SetError(error, "malformed swap-model payload");
  }
  *snapshot_path = std::move(path);
  return true;
}

std::string BuildSwapReplyFrame(bool ok, const std::string& message,
                                uint64_t model_version) {
  std::string body;
  PutU8(&body, ok ? 1 : 0);
  std::string msg = message;
  if (msg.size() > kMaxWireString) msg.resize(kMaxWireString);
  PutString(&body, msg);
  PutU64(&body, model_version);
  std::string frame;
  AppendFrameHeader(&frame, FrameType::kSwapReply, body.size());
  frame.append(body);
  return frame;
}

bool DecodeSwapReplyPayload(const char* data, size_t size, bool* ok,
                            std::string* message, uint64_t* model_version,
                            std::string* error) {
  WireCursor cur(data, size);
  uint8_t ok_byte = 0;
  std::string msg;
  uint64_t version = 0;
  if (!cur.GetU8(&ok_byte) || !cur.GetString(&msg) ||
      !cur.GetU64(&version) || cur.remaining() != 0) {
    return SetError(error, "malformed swap-reply payload");
  }
  *ok = ok_byte != 0;
  *message = std::move(msg);
  *model_version = version;
  return true;
}

std::string BuildPingFrame() {
  std::string frame;
  AppendFrameHeader(&frame, FrameType::kPing, 0);
  return frame;
}

std::string BuildPongFrame(double queue_depth) {
  std::string body;
  PutF64(&body, queue_depth);
  std::string frame;
  AppendFrameHeader(&frame, FrameType::kPong, body.size());
  frame.append(body);
  return frame;
}

bool DecodePongPayload(const char* data, size_t size, double* queue_depth,
                       std::string* error) {
  WireCursor cur(data, size);
  double depth = 0.0;
  if (!cur.GetF64(&depth) || cur.remaining() != 0) {
    return SetError(error, "malformed pong payload");
  }
  *queue_depth = depth;
  return true;
}

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ull;  // offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;  // prime
  }
  return h;
}

}  // namespace fleet
}  // namespace rntraj
