#include "src/fleet/process.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <vector>

namespace rntraj {
namespace fleet {

std::string DefaultWorkerBinary() {
  const char* env = std::getenv("RNTR_FLEET_WORKER");
  if (env != nullptr && env[0] != '\0') return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "./fleet_worker";
  buf[n] = '\0';
  std::string self(buf);
  const size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "./fleet_worker";
  return self.substr(0, slash) + "/fleet_worker";
}

bool SpawnWorkerProcess(const WorkerSpawn& spawn, pid_t* pid,
                        std::string* error) {
  const std::string binary =
      spawn.binary.empty() ? DefaultWorkerBinary() : spawn.binary;
  if (::access(binary.c_str(), X_OK) != 0) {
    if (error != nullptr) {
      *error = "fleet worker binary not executable: " + binary + " (" +
               std::strerror(errno) + ")";
    }
    return false;
  }
  const std::string profile_arg = "--profile=" + spawn.profile;
  const std::string snapshot_arg = "--snapshot=" + spawn.snapshot_path;
  const std::string listen_arg = "--listen=" + spawn.data_endpoint;
  const std::string control_arg = "--control=" + spawn.control_endpoint;
  // argv assembled before fork: only async-signal-safe calls after it.
  std::vector<char*> argv = {
      const_cast<char*>(binary.c_str()),
      const_cast<char*>(profile_arg.c_str()),
      const_cast<char*>(snapshot_arg.c_str()),
      const_cast<char*>(listen_arg.c_str()),
      const_cast<char*>(control_arg.c_str()),
      nullptr,
  };
  const pid_t child = ::fork();
  if (child < 0) {
    if (error != nullptr) {
      *error = std::string("fork: ") + std::strerror(errno);
    }
    return false;
  }
  if (child == 0) {
    if (spawn.quiet) {
      const int devnull = ::open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        ::dup2(devnull, STDOUT_FILENO);
        ::close(devnull);
      }
    }
    ::execv(binary.c_str(), argv.data());
    _exit(127);  // exec failed; the parent sees connection refusal
  }
  *pid = child;
  return true;
}

void KillWorkerProcess(pid_t pid, bool graceful) {
  if (pid <= 0) return;
  ::kill(pid, graceful ? SIGTERM : SIGKILL);
  // Reap; EINTR retries, ECHILD (already reaped) is fine.
  for (;;) {
    const pid_t r = ::waitpid(pid, nullptr, 0);
    if (r == pid || (r < 0 && errno != EINTR)) return;
  }
}

}  // namespace fleet
}  // namespace rntraj
