#ifndef RNTRAJ_FLEET_WORKER_H_
#define RNTRAJ_FLEET_WORKER_H_

#include <string>

/// \file worker.h
/// The fleet worker: one shared-nothing serving process. It binds its data
/// and control endpoints FIRST (so a router's connect succeeds while the
/// expensive startup below runs), then rebuilds its universe from a named
/// profile (deterministic dataset + model shape), loads weights from a
/// snapshot (strict — the cross-process equivalence guarantee), warms the
/// model, and runs the existing RecoveryService behind the wire protocol:
///
///   data endpoint     pipelined kRequest frames in, kResponse frames out,
///                     correlation-id multiplexed; a malformed frame closes
///                     that connection (logged, never an abort) and the
///                     worker keeps serving other connections
///   control endpoint  synchronous kMetricsQuery / kSwapModel / kPing
///
/// The worker runs until its process is killed; it owns no children and
/// persists nothing, so SIGKILL at any instant is a supported exit.

namespace rntraj {
namespace fleet {

struct WorkerOptions {
  std::string profile = "chaos-tiny";
  std::string snapshot_path;
  std::string data_endpoint;
  std::string control_endpoint;
};

/// Parses --profile= --snapshot= --listen= --control=; false + usage-style
/// `*error` on unknown flags or missing required ones.
bool ParseWorkerArgs(int argc, char** argv, WorkerOptions* out,
                     std::string* error);

/// Runs the worker until process death. Returns a non-zero exit code on
/// startup failure (bad profile, endpoints that will not bind, a snapshot
/// that does not load) with the reason on stderr.
int RunWorker(const WorkerOptions& options);

}  // namespace fleet
}  // namespace rntraj

#endif  // RNTRAJ_FLEET_WORKER_H_
