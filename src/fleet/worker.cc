#include "src/fleet/worker.h"

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "src/core/rntrajrec.h"
#include "src/fleet/profiles.h"
#include "src/fleet/socket.h"
#include "src/fleet/wire.h"
#include "src/serve/recovery_service.h"

namespace rntraj {
namespace fleet {

namespace {

/// One data connection: the reader thread decodes requests and submits them
/// to the service; the responder drains (id, future) pairs in FIFO order.
/// FIFO is sufficient because the service contract guarantees every
/// submitted future resolves (Shutdown included), so a waiting head never
/// wedges the tail; the router correlates by id, not arrival order.
struct DataConnection {
  Socket socket;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::pair<uint64_t, std::future<serve::RecoveryResponse>>> queue;
  bool reader_done = false;
};

void ResponderLoop(const std::shared_ptr<DataConnection>& conn) {
  for (;;) {
    std::pair<uint64_t, std::future<serve::RecoveryResponse>> item;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv.wait(lock, [&] {
        return !conn->queue.empty() || conn->reader_done;
      });
      if (conn->queue.empty()) return;  // reader done and drained
      item = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    serve::RecoveryResponse resp = item.second.get();
    std::string error;
    if (!SendFrame(conn->socket, BuildResponseFrame(item.first, resp),
                   &error)) {
      // The peer is gone; keep draining so every future is consumed (the
      // service already resolved or will resolve them all).
      continue;
    }
  }
}

void HandleDataConnection(std::shared_ptr<DataConnection> conn,
                          serve::RecoveryService* service) {
  std::thread responder(ResponderLoop, conn);
  std::string error;
  for (;;) {
    FrameHeader header;
    std::string payload;
    if (!RecvFrame(conn->socket, &header, &payload, &error)) {
      // EOF on a clean router shutdown, or a malformed header. Either way:
      // close THIS connection, never the worker.
      if (error.find("closed by peer") == std::string::npos) {
        std::fprintf(stderr, "fleet_worker: dropping connection: %s\n",
                     error.c_str());
      }
      break;
    }
    if (header.type != FrameType::kRequest) {
      std::fprintf(stderr,
                   "fleet_worker: dropping connection: unexpected frame "
                   "type %u on data endpoint\n",
                   static_cast<unsigned>(header.type));
      break;
    }
    uint64_t id = 0;
    serve::RecoveryRequest req;
    if (!DecodeRequestPayload(payload.data(), payload.size(), &id, &req,
                              &error)) {
      std::fprintf(stderr, "fleet_worker: dropping connection: %s\n",
                   error.c_str());
      break;
    }
    std::future<serve::RecoveryResponse> future =
        service->Submit(std::move(req));
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->queue.emplace_back(id, std::move(future));
    }
    conn->cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->reader_done = true;
  }
  conn->cv.notify_one();
  responder.join();
  conn->socket.Close();
}

void HandleControlConnection(Socket socket, serve::RecoveryService* service,
                             const FleetProfile& profile,
                             const ModelContext& ctx) {
  std::string error;
  for (;;) {
    FrameHeader header;
    std::string payload;
    if (!RecvFrame(socket, &header, &payload, &error)) return;
    switch (header.type) {
      case FrameType::kMetricsQuery: {
        if (!SendFrame(socket, BuildMetricsReplyFrame(service->Metrics()),
                       &error)) {
          return;
        }
        break;
      }
      case FrameType::kSwapModel: {
        std::string path;
        std::string reply_error;
        bool ok = DecodeSwapModelPayload(payload.data(), payload.size(),
                                         &path, &reply_error);
        if (ok) {
          // Fresh architecture from the profile, weights strictly from the
          // snapshot; SwapModel warms it and flips the generation while the
          // old one keeps serving.
          auto next = std::make_shared<RnTrajRec>(profile.model, ctx);
          next->SetTrainingMode(false);
          ok = next->LoadSnapshot(path, &reply_error) &&
               service->SwapModel(std::move(next), &reply_error);
        }
        if (!SendFrame(socket,
                       BuildSwapReplyFrame(ok, reply_error,
                                           service->model_version()),
                       &error)) {
          return;
        }
        break;
      }
      case FrameType::kPing: {
        const obs::MetricsSnapshot snap = service->Metrics();
        const auto it = snap.gauges.find("serve.queue.depth");
        const double depth = it != snap.gauges.end() ? it->second : 0.0;
        if (!SendFrame(socket, BuildPongFrame(depth), &error)) return;
        break;
      }
      default:
        std::fprintf(stderr,
                     "fleet_worker: dropping control connection: "
                     "unexpected frame type %u\n",
                     static_cast<unsigned>(header.type));
        return;
    }
  }
}

}  // namespace

bool ParseWorkerArgs(int argc, char** argv, WorkerOptions* out,
                     std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = why +
               "\nusage: fleet_worker --profile=<name> --snapshot=<path> "
               "--listen=<endpoint> --control=<endpoint>";
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take = [&](const char* prefix, std::string* dst) {
      const size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) != 0) return false;
      *dst = arg.substr(n);
      return true;
    };
    if (take("--profile=", &out->profile) ||
        take("--snapshot=", &out->snapshot_path) ||
        take("--listen=", &out->data_endpoint) ||
        take("--control=", &out->control_endpoint)) {
      continue;
    }
    return fail("unknown argument: " + arg);
  }
  if (out->snapshot_path.empty()) return fail("--snapshot is required");
  if (out->data_endpoint.empty()) return fail("--listen is required");
  if (out->control_endpoint.empty()) return fail("--control is required");
  return true;
}

int RunWorker(const WorkerOptions& options) {
  std::string error;
  FleetProfile profile;
  if (!LookupFleetProfile(options.profile, &profile, &error)) {
    std::fprintf(stderr, "fleet_worker: %s\n", error.c_str());
    return 1;
  }

  // Bind before the expensive startup: a router connecting during dataset
  // construction queues in the backlog instead of being refused, so spawn
  // ordering needs no handshake.
  Socket data_listener, control_listener;
  if (!ListenOn(options.data_endpoint, /*backlog=*/64, &data_listener,
                nullptr, &error) ||
      !ListenOn(options.control_endpoint, /*backlog=*/16, &control_listener,
                nullptr, &error)) {
    std::fprintf(stderr, "fleet_worker: %s\n", error.c_str());
    return 1;
  }

  // Deterministic universe: the dataset is a pure function of its config
  // (own seeded RNG), and the snapshot load is strict, so this process's
  // answers are comparable against any in-process service built from the
  // same profile + snapshot.
  std::unique_ptr<Dataset> dataset = BuildDataset(profile.dataset);
  ModelContext ctx = ModelContext::FromDataset(*dataset);
  RnTrajRec model(profile.model, ctx);
  if (!model.LoadSnapshot(options.snapshot_path, &error)) {
    std::fprintf(stderr, "fleet_worker: snapshot load failed: %s\n",
                 error.c_str());
    return 1;
  }
  model.SetTrainingMode(false);
  model.BeginInference();
  serve::RecoveryService service(&model, ctx, profile.service);
  std::printf("fleet_worker: profile=%s serving data=%s control=%s\n",
              options.profile.c_str(), options.data_endpoint.c_str(),
              options.control_endpoint.c_str());
  std::fflush(stdout);

  std::thread control_thread([&] {
    for (;;) {
      Socket conn;
      std::string accept_error;
      if (!AcceptOn(control_listener, &conn, &accept_error)) return;
      std::thread(HandleControlConnection, std::move(conn), &service,
                  std::cref(profile), std::cref(ctx))
          .detach();
    }
  });

  for (;;) {
    Socket conn;
    std::string accept_error;
    if (!AcceptOn(data_listener, &conn, &accept_error)) break;
    auto state = std::make_shared<DataConnection>();
    state->socket = std::move(conn);
    std::thread(HandleDataConnection, std::move(state), &service).detach();
  }
  control_thread.join();
  return 0;
}

}  // namespace fleet
}  // namespace rntraj
