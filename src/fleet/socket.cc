#include "src/fleet/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstddef>
#include <cstdlib>
#include <cstring>

namespace rntraj {
namespace fleet {

namespace {

bool SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = "fleet socket: " + msg;
  return false;
}

bool Errno(std::string* error, const std::string& what) {
  return SetError(error, what + ": " + std::strerror(errno));
}

struct ParsedEndpoint {
  bool is_unix = false;
  std::string path;     // unix
  std::string host;     // tcp
  uint16_t port = 0;    // tcp
};

bool ParseEndpoint(const std::string& endpoint, ParsedEndpoint* out,
                   std::string* error) {
  if (endpoint.rfind("unix:", 0) == 0) {
    out->is_unix = true;
    out->path = endpoint.substr(5);
    if (out->path.empty()) return SetError(error, "empty unix socket path");
    // sun_path is a fixed 108-byte array; a longer path would silently
    // truncate into a different socket.
    if (out->path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return SetError(error, "unix socket path too long: " + out->path);
    }
    return true;
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    const std::string rest = endpoint.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return SetError(error, "tcp endpoint must be tcp:<ipv4>:<port>");
    }
    out->is_unix = false;
    out->host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
      return SetError(error, "bad tcp port: " + port_str);
    }
    out->port = static_cast<uint16_t>(port);
    return true;
  }
  return SetError(error,
                  "endpoint must start with unix: or tcp: — got " + endpoint);
}

bool FillSockaddr(const ParsedEndpoint& ep, sockaddr_storage* storage,
                  socklen_t* len, std::string* error) {
  std::memset(storage, 0, sizeof(*storage));
  if (ep.is_unix) {
    auto* sun = reinterpret_cast<sockaddr_un*>(storage);
    sun->sun_family = AF_UNIX;
    std::memcpy(sun->sun_path, ep.path.c_str(), ep.path.size() + 1);
    *len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                  ep.path.size() + 1);
    return true;
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &sin->sin_addr) != 1) {
    return SetError(error, "bad ipv4 address: " + ep.host);
  }
  *len = sizeof(sockaddr_in);
  return true;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool ListenOn(const std::string& endpoint, int backlog, Socket* out,
              std::string* bound_endpoint, std::string* error) {
  ParsedEndpoint ep;
  if (!ParseEndpoint(endpoint, &ep, error)) return false;
  Socket s(::socket(ep.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Errno(error, "socket");
  if (ep.is_unix) {
    // A previous worker's socket file would make bind fail with EADDRINUSE;
    // restarts must rebind the same path.
    ::unlink(ep.path.c_str());
  } else {
    const int one = 1;
    ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  sockaddr_storage addr;
  socklen_t len = 0;
  if (!FillSockaddr(ep, &addr, &len, error)) return false;
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), len) != 0) {
    return Errno(error, "bind " + endpoint);
  }
  if (::listen(s.fd(), backlog) != 0) {
    return Errno(error, "listen " + endpoint);
  }
  if (bound_endpoint != nullptr) {
    if (ep.is_unix) {
      *bound_endpoint = endpoint;
    } else {
      sockaddr_in bound;
      socklen_t blen = sizeof(bound);
      if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&bound), &blen) !=
          0) {
        return Errno(error, "getsockname");
      }
      *bound_endpoint =
          "tcp:" + ep.host + ":" + std::to_string(ntohs(bound.sin_port));
    }
  }
  *out = std::move(s);
  return true;
}

bool AcceptOn(const Socket& listener, Socket* out, std::string* error) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      *out = Socket(fd);
      return true;
    }
    if (errno == EINTR) continue;
    return Errno(error, "accept");
  }
}

bool ConnectTo(const std::string& endpoint, Socket* out, std::string* error) {
  ParsedEndpoint ep;
  if (!ParseEndpoint(endpoint, &ep, error)) return false;
  Socket s(::socket(ep.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Errno(error, "socket");
  sockaddr_storage addr;
  socklen_t len = 0;
  if (!FillSockaddr(ep, &addr, &len, error)) return false;
  if (::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), len) != 0) {
    return Errno(error, "connect " + endpoint);
  }
  if (!ep.is_unix) {
    // Request/response frames are latency-sensitive; never Nagle-buffer.
    const int one = 1;
    ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  *out = std::move(s);
  return true;
}

bool SendAll(const Socket& s, const char* data, size_t n,
             std::string* error) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(s.fd(), data + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return Errno(error, "send");
  }
  return true;
}

bool RecvExact(const Socket& s, char* data, size_t n, std::string* error) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(s.fd(), data + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) return SetError(error, "connection closed by peer");
    if (errno == EINTR) continue;
    return Errno(error, "recv");
  }
  return true;
}

int PollReadable(const Socket& s, int timeout_ms) {
  pollfd p{};
  p.fd = s.fd();
  p.events = POLLIN;
  const int r = ::poll(&p, 1, timeout_ms);
  if (r < 0) return errno == EINTR ? 0 : -1;
  if (r == 0) return 0;
  // POLLHUP with pending data still reads; POLLERR/NVAL without POLLIN is a
  // dead socket.
  if ((p.revents & POLLIN) != 0) return 1;
  return -1;
}

bool RecvFrame(const Socket& s, FrameHeader* header, std::string* payload,
               std::string* error) {
  char head[kFrameHeaderBytes];
  if (!RecvExact(s, head, sizeof(head), error)) return false;
  if (!ParseFrameHeader(head, sizeof(head), header, error)) return false;
  payload->resize(header->payload_size);
  if (header->payload_size > 0 &&
      !RecvExact(s, payload->data(), payload->size(), error)) {
    return false;
  }
  return true;
}

}  // namespace fleet
}  // namespace rntraj
