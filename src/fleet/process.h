#ifndef RNTRAJ_FLEET_PROCESS_H_
#define RNTRAJ_FLEET_PROCESS_H_

#include <sys/types.h>

#include <string>

/// \file process.h
/// Worker-process lifecycle: fork/exec of the `fleet_worker` executable,
/// and kill/reap. Tests use KillWorkerProcess(SIGKILL) as the chaos
/// primitive — a worker death must look exactly like a production crash
/// (sockets torn down by the kernel, no goodbye frame).

namespace rntraj {
namespace fleet {

struct WorkerSpawn {
  std::string binary;  ///< Empty: DefaultWorkerBinary().
  std::string profile = "chaos-tiny";
  std::string snapshot_path;      ///< Weights the worker must load (strict).
  std::string data_endpoint;      ///< Request/response socket.
  std::string control_endpoint;   ///< Metrics/swap/ping socket.
  bool quiet = true;              ///< stdout -> /dev/null (banner noise).
};

/// Path of the worker executable: $RNTR_FLEET_WORKER if set, else
/// "fleet_worker" next to the current executable (tests, benches and the
/// worker all land in the same build directory).
std::string DefaultWorkerBinary();

/// fork + exec. Returns false + `*error` if the fork fails or the binary is
/// missing; an exec failure inside the child surfaces as exit code 127
/// (the router then sees connection refusal and reports the worker dead).
bool SpawnWorkerProcess(const WorkerSpawn& spawn, pid_t* pid,
                        std::string* error);

/// Sends SIGKILL (or SIGTERM when `graceful`) and reaps the child. Safe to
/// call on an already-dead pid.
void KillWorkerProcess(pid_t pid, bool graceful = false);

}  // namespace fleet
}  // namespace rntraj

#endif  // RNTRAJ_FLEET_PROCESS_H_
