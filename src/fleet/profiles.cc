#include "src/fleet/profiles.h"

#include "src/baselines/zoo.h"
#include "src/sim/presets.h"

namespace rntraj {
namespace fleet {

namespace {

/// Mirrors ServeChaosFixture in tests/serve_chaos_test.cc exactly; the
/// cross-process equivalence tests depend on both sides resolving this one
/// definition.
FleetProfile ChaosTinyProfile() {
  FleetProfile p;
  p.dataset = ChengduConfig(BenchScale::kTiny);
  p.dataset.num_train = 4;
  p.dataset.num_val = 2;
  p.dataset.num_test = 8;
  p.dataset.sim.len_rho = 24;

  p.model.dim = 16;
  p.model.delta = 250.0;
  p.model.max_subgraph_nodes = 16;
  p.model.gridgnn.gnn_layers = 1;
  p.model.gridgnn.heads = 2;
  p.model.gpsformer.blocks = 1;
  p.model.gpsformer.heads = 2;
  p.model.gpsformer.grl.heads = 2;
  p.model.Sync();

  p.service.num_sessions = 2;
  p.service.batcher.max_batch_size = 8;
  p.service.batcher.max_batch_delay_us = 500;
  p.service.warm_model = false;  // the worker warms explicitly before serving
  return p;
}

/// Mirrors bench::Settings() + bench_serve_throughput's service shape, with
/// ONE session per worker: the fleet bench sweeps the worker count, and a
/// single-session service keeps "N workers" meaning N-way process
/// parallelism instead of N x sessions oversubscription.
FleetProfile BenchProfile(BenchScale scale) {
  FleetProfile p;
  p.dataset = ChengduConfig(scale, /*keep_every=*/8);
  int dim = 24;
  if (scale == BenchScale::kTiny) dim = 16;
  if (scale == BenchScale::kFull) dim = 64;
  p.model = DefaultRnTrajRecConfig(dim);

  p.service.num_sessions = 1;
  p.service.batched_forward = true;
  p.service.batcher.max_batch_size = 16;
  p.service.batcher.max_batch_delay_us = 1000;
  p.service.cache_radii = {p.model.delta, p.model.decoder.mask_radius,
                           p.model.decoder.spatial_prior_radius};
  p.service.prefetch_radii = {p.model.delta};
  p.service.max_dijkstra_rows = 1024;
  p.service.warm_model = false;  // the worker warms explicitly before serving
  return p;
}

}  // namespace

bool LookupFleetProfile(const std::string& name, FleetProfile* out,
                        std::string* error) {
  if (name == "chaos-tiny") {
    *out = ChaosTinyProfile();
    return true;
  }
  if (name == "bench-tiny") {
    *out = BenchProfile(BenchScale::kTiny);
    return true;
  }
  if (name == "bench-small") {
    *out = BenchProfile(BenchScale::kSmall);
    return true;
  }
  if (name == "bench-full") {
    *out = BenchProfile(BenchScale::kFull);
    return true;
  }
  if (error != nullptr) {
    *error = "unknown fleet profile \"" + name + "\" (known:";
    for (const std::string& n : FleetProfileNames()) *error += " " + n;
    *error += ")";
  }
  return false;
}

std::vector<std::string> FleetProfileNames() {
  return {"chaos-tiny", "bench-tiny", "bench-small", "bench-full"};
}

}  // namespace fleet
}  // namespace rntraj
