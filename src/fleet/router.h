#ifndef RNTRAJ_FLEET_ROUTER_H_
#define RNTRAJ_FLEET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/serve/request.h"

/// \file router.h
/// The fleet front end: shards recovery requests across N worker processes
/// over the wire protocol, aggregates their telemetry, survives worker
/// death, and rolls model deploys through the fleet one worker at a time.
///
/// Sharding: FNV-1a of the encoded request body looked up on a consistent-
/// hash ring (virtual nodes per worker), skipping dead workers; when the
/// ring's pick is deeper than `overflow_depth` requests in flight, the
/// request overflows to the least-loaded alive worker instead. Identical
/// request bodies therefore land on the same worker (cache affinity) until
/// that worker is hot or dead.
///
/// Failure semantics — the contract the chaos suite pins:
///   * Submit NEVER returns a dangling future. Every future resolves with a
///     response: the worker's answer, a validation error (rejected at the
///     front end, no worker round-trip), or an internal error when the
///     worker died with the request in flight and no retry was possible.
///   * A worker connection dying fails that worker's in-flight requests
///     immediately (kInternalError) and moves its shard to survivors; a
///     manager thread reconnects with exponential backoff, so a restarted
///     worker rejoins the ring automatically.
///   * Requests still unanswered after `request_timeout_ms` are failed and
///     forgotten — a hung worker cannot wedge the router.

namespace rntraj {
namespace fleet {

struct FleetWorkerEndpoints {
  std::string data;     ///< Request/response endpoint ("unix:..."/"tcp:...").
  std::string control;  ///< Metrics/swap/ping endpoint.
};

struct FleetRouterConfig {
  std::vector<FleetWorkerEndpoints> workers;
  /// Ring positions per worker; more = smoother shard balance.
  int virtual_nodes = 64;
  /// In-flight depth on the ring's pick beyond which a request overflows to
  /// the least-loaded alive worker.
  int overflow_depth = 8;
  /// A request unanswered this long is failed (kInternalError) and dropped.
  int request_timeout_ms = 60000;
  /// Reconnect backoff after a worker connection dies: doubles from min to
  /// max per consecutive failure, resets on success.
  int reconnect_backoff_min_ms = 25;
  int reconnect_backoff_max_ms = 1000;
  /// Budget for one control-endpoint operation (metrics pull, model swap
  /// handshake — not the worker-side warmup, which runs synchronously and
  /// is bounded by the reply wait below).
  int control_connect_timeout_ms = 20000;
  /// Budget for one control reply (a swap reply arrives only after the
  /// worker loaded + warmed the new model).
  int control_reply_timeout_ms = 120000;
};

/// Point-in-time view of one worker channel.
struct FleetWorkerView {
  int index = 0;
  bool alive = false;      ///< Data connection currently established.
  int inflight = 0;        ///< Requests sent and not yet answered.
  int64_t sent = 0;        ///< Requests written to this worker.
  int64_t answered = 0;    ///< Responses received from this worker.
  int64_t failed = 0;      ///< In-flight requests failed (death/timeout).
  int64_t reconnects = 0;  ///< Successful (re-)connects.
};

struct FleetStats {
  int64_t submitted = 0;            ///< Every Submit call.
  int64_t validation_rejected = 0;  ///< Rejected at the front end.
  int64_t no_worker_available = 0;  ///< Failed: no alive worker to try.
  int64_t rerouted = 0;             ///< Send retried on another worker.
  std::vector<FleetWorkerView> workers;
};

class FleetRouter {
 public:
  explicit FleetRouter(const FleetRouterConfig& config);
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  /// Validates, shards and ships one request. Always returns a future that
  /// resolves (see the failure semantics above).
  std::future<serve::RecoveryResponse> Submit(serve::RecoveryRequest req);

  /// Pulls every alive worker's MetricsSnapshot over its control endpoint
  /// and folds them into one fleet view (counters add, exact histograms
  /// merge bucket-wise, so fleet p50/p99 are real quantiles, not averages
  /// of averages). Workers that cannot be reached are skipped and listed in
  /// `*error`; returns the merge of those that answered.
  obs::MetricsSnapshot FleetMetrics(std::string* error = nullptr);

  /// Rolling deploy: worker by worker, commands SwapModel(snapshot_path)
  /// over the control endpoint and waits for the swap reply before moving
  /// on — at any instant at most one worker is warming, the rest serve.
  /// Returns false on the first worker that fails; earlier workers keep the
  /// new model (mixed fleet — re-run to converge, responses stay whole-
  /// generation per worker either way).
  bool RollingDeploy(const std::string& snapshot_path,
                     std::string* error = nullptr);

  /// Blocks until at least `min_workers` data connections are established
  /// or `timeout_ms` elapses; true on success. Call after construction (or
  /// after spawning replacement workers) — Submit itself never waits for
  /// connections, so requests raced ahead of the first connect would fail
  /// with "no alive fleet worker".
  bool WaitForAlive(int min_workers, int timeout_ms);

  /// Indices of workers with an established data connection.
  std::vector<int> AliveWorkers() const;

  FleetStats Stats() const;

  /// Fails all in-flight requests, joins manager threads (idempotent).
  void Shutdown();

 private:
  struct WorkerChannel;

  void ManagerLoop(WorkerChannel* w);
  void DrainConnection(WorkerChannel* w);
  void FailInflight(WorkerChannel* w, const std::string& reason);
  void CheckTimeouts(WorkerChannel* w);
  /// Ring pick for `key`, skipping dead workers and indices in `tried`;
  /// applies the least-loaded overflow rule. Null when nobody is eligible.
  WorkerChannel* PickWorker(uint64_t key, const std::vector<bool>& tried);

  FleetRouterConfig config_;
  std::vector<std::unique_ptr<WorkerChannel>> workers_;
  /// Sorted (point, worker index) pairs; built once, never mutated.
  std::vector<std::pair<uint64_t, int>> ring_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<bool> shutdown_{false};
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> validation_rejected_{0};
  std::atomic<int64_t> no_worker_available_{0};
  std::atomic<int64_t> rerouted_{0};
};

}  // namespace fleet
}  // namespace rntraj

#endif  // RNTRAJ_FLEET_ROUTER_H_
