#ifndef RNTRAJ_FLEET_SOCKET_H_
#define RNTRAJ_FLEET_SOCKET_H_

#include <cstddef>
#include <string>

#include "src/fleet/wire.h"

/// \file socket.h
/// Thin RAII POSIX socket layer for the fleet: Unix-domain and TCP
/// endpoints behind one string syntax, exact send/recv, and whole-frame
/// transfer built on the wire header. Every failure is an error string,
/// never an abort — a dead peer is a routine event the router must absorb.
///
/// Endpoint syntax:
///   "unix:/path/to/socket"     Unix-domain stream socket (path unlinked
///                              before bind, so restarts rebind cleanly)
///   "tcp:<ipv4>:<port>"        TCP over loopback or LAN; port 0 lets the
///                              kernel pick (read it back via ListenOn's
///                              bound_endpoint)

namespace rntraj {
namespace fleet {

/// Move-only owned file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  /// shutdown(SHUT_RDWR): wakes a thread blocked in recv on this socket
  /// (close alone does not), the shutdown-while-reading primitive the
  /// router's manager threads rely on.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Binds + listens on `endpoint`. On success fills `*bound_endpoint` with
/// the concrete endpoint (TCP port 0 resolved to the assigned port).
bool ListenOn(const std::string& endpoint, int backlog, Socket* out,
              std::string* bound_endpoint, std::string* error);

/// Blocking accept. False on listener shutdown or error.
bool AcceptOn(const Socket& listener, Socket* out, std::string* error);

/// Blocking connect.
bool ConnectTo(const std::string& endpoint, Socket* out, std::string* error);

/// Writes all n bytes (MSG_NOSIGNAL: a dead peer surfaces as an error, not
/// SIGPIPE).
bool SendAll(const Socket& s, const char* data, size_t n, std::string* error);
inline bool SendAll(const Socket& s, const std::string& bytes,
                    std::string* error) {
  return SendAll(s, bytes.data(), bytes.size(), error);
}

/// Reads exactly n bytes; false on EOF, error, or shutdown.
bool RecvExact(const Socket& s, char* data, size_t n, std::string* error);

/// Polls for readability: 1 ready, 0 timeout, -1 error/hangup-with-no-data.
int PollReadable(const Socket& s, int timeout_ms);

/// Reads one whole frame: header (validated via ParseFrameHeader, so an
/// oversized length prefix is rejected before any payload allocation) then
/// the payload.
bool RecvFrame(const Socket& s, FrameHeader* header, std::string* payload,
               std::string* error);

inline bool SendFrame(const Socket& s, const std::string& frame,
                      std::string* error) {
  return SendAll(s, frame, error);
}

}  // namespace fleet
}  // namespace rntraj

#endif  // RNTRAJ_FLEET_SOCKET_H_
