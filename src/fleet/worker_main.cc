#include <cstdio>
#include <string>

#include "src/fleet/worker.h"

int main(int argc, char** argv) {
  rntraj::fleet::WorkerOptions options;
  std::string error;
  if (!rntraj::fleet::ParseWorkerArgs(argc, argv, &options, &error)) {
    std::fprintf(stderr, "fleet_worker: %s\n", error.c_str());
    return 2;
  }
  return rntraj::fleet::RunWorker(options);
}
