#include "src/fleet/router.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "src/fleet/socket.h"
#include "src/fleet/wire.h"

namespace rntraj {
namespace fleet {

namespace {

using Clock = std::chrono::steady_clock;

serve::RecoveryResponse ErrorResponse(serve::ResponseKind kind,
                                      std::string error) {
  serve::RecoveryResponse resp;
  resp.ok = false;
  resp.kind = kind;
  resp.error = std::move(error);
  return resp;
}

/// Connects with retries until `budget_ms` elapses — control operations
/// tolerate a worker that is mid-restart.
bool ConnectWithin(const std::string& endpoint, int budget_ms, Socket* out,
                   std::string* error) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(budget_ms);
  for (;;) {
    if (ConnectTo(endpoint, out, error)) return true;
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

/// One synchronous control round-trip: send `frame`, wait (bounded) for a
/// reply of `want` type.
bool ControlRoundTrip(const Socket& s, const std::string& frame,
                      FrameType want, int reply_timeout_ms,
                      std::string* payload, std::string* error) {
  if (!SendFrame(s, frame, error)) return false;
  const int r = PollReadable(s, reply_timeout_ms);
  if (r <= 0) {
    *error = r == 0 ? "control reply timed out" : "control connection lost";
    return false;
  }
  FrameHeader header;
  if (!RecvFrame(s, &header, payload, error)) return false;
  if (header.type != want) {
    *error = "unexpected control reply frame type";
    return false;
  }
  return true;
}

}  // namespace

struct FleetRouter::WorkerChannel {
  int index = 0;
  FleetWorkerEndpoints endpoints;
  std::thread manager;

  struct Pending {
    std::promise<serve::RecoveryResponse> promise;
    Clock::time_point deadline;
  };

  /// Guards socket/connected/inflight/counters. Senders (Submit) hold it
  /// across register+send so a response read by the manager always finds
  /// its pending entry; the manager never holds it across a blocking read.
  mutable std::mutex mu;
  Socket socket;
  bool connected = false;
  std::unordered_map<uint64_t, Pending> inflight;
  int64_t sent = 0;
  int64_t answered = 0;
  int64_t failed = 0;
  int64_t reconnects = 0;
  std::atomic<int> inflight_count{0};
};

FleetRouter::FleetRouter(const FleetRouterConfig& config) : config_(config) {
  workers_.reserve(config_.workers.size());
  for (size_t i = 0; i < config_.workers.size(); ++i) {
    auto w = std::make_unique<WorkerChannel>();
    w->index = static_cast<int>(i);
    w->endpoints = config_.workers[i];
    workers_.push_back(std::move(w));
  }
  // Ring points are hashes of a deterministic label — the ring is identical
  // across router restarts, so shard placement is stable.
  const int vnodes = std::max(1, config_.virtual_nodes);
  ring_.reserve(workers_.size() * static_cast<size_t>(vnodes));
  for (size_t i = 0; i < workers_.size(); ++i) {
    for (int v = 0; v < vnodes; ++v) {
      const std::string label =
          "worker-" + std::to_string(i) + "-vnode-" + std::to_string(v);
      ring_.emplace_back(Fnv1a64(label), static_cast<int>(i));
    }
  }
  std::sort(ring_.begin(), ring_.end());
  for (auto& w : workers_) {
    w->manager = std::thread(&FleetRouter::ManagerLoop, this, w.get());
  }
}

FleetRouter::~FleetRouter() { Shutdown(); }

void FleetRouter::ManagerLoop(WorkerChannel* w) {
  int backoff_ms = config_.reconnect_backoff_min_ms;
  while (!shutdown_.load(std::memory_order_acquire)) {
    Socket s;
    std::string error;
    if (!ConnectTo(w->endpoints.data, &s, &error)) {
      // Sleep in small slices so Shutdown is never stuck behind a backoff.
      const Clock::time_point until =
          Clock::now() + std::chrono::milliseconds(backoff_ms);
      while (Clock::now() < until &&
             !shutdown_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      backoff_ms = std::min(backoff_ms * 2, config_.reconnect_backoff_max_ms);
      continue;
    }
    backoff_ms = config_.reconnect_backoff_min_ms;
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->socket = std::move(s);
      w->connected = true;
      ++w->reconnects;
    }
    DrainConnection(w);
    std::lock_guard<std::mutex> lock(w->mu);
    w->connected = false;
    w->socket.Close();
    FailInflight(w, "fleet worker " + std::to_string(w->index) +
                        " connection lost");
  }
  std::lock_guard<std::mutex> lock(w->mu);
  w->connected = false;
  w->socket.Close();
  FailInflight(w, "fleet router shut down");
}

void FleetRouter::DrainConnection(WorkerChannel* w) {
  while (!shutdown_.load(std::memory_order_acquire)) {
    // Poll without the lock: Submit must be able to send while we wait.
    const int r = PollReadable(w->socket, 50);
    if (r < 0) return;
    if (r == 0) {
      CheckTimeouts(w);
      continue;
    }
    FrameHeader header;
    std::string payload;
    std::string error;
    if (!RecvFrame(w->socket, &header, &payload, &error)) return;
    if (header.type != FrameType::kResponse) return;  // protocol break
    uint64_t id = 0;
    serve::RecoveryResponse resp;
    if (!DecodeResponsePayload(payload.data(), payload.size(), &id, &resp,
                               &error)) {
      return;  // malformed response: drop the connection, fail-and-reconnect
    }
    std::promise<serve::RecoveryResponse> promise;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(w->mu);
      auto it = w->inflight.find(id);
      if (it != w->inflight.end()) {
        promise = std::move(it->second.promise);
        w->inflight.erase(it);
        ++w->answered;
        w->inflight_count.fetch_sub(1, std::memory_order_relaxed);
        found = true;
      }
      // Unknown id: already failed by timeout — the late answer is dropped.
    }
    if (found) promise.set_value(std::move(resp));
  }
}

void FleetRouter::FailInflight(WorkerChannel* w, const std::string& reason) {
  // Caller holds w->mu.
  for (auto& entry : w->inflight) {
    entry.second.promise.set_value(
        ErrorResponse(serve::ResponseKind::kInternalError, reason));
    ++w->failed;
    w->inflight_count.fetch_sub(1, std::memory_order_relaxed);
  }
  w->inflight.clear();
}

void FleetRouter::CheckTimeouts(WorkerChannel* w) {
  const Clock::time_point now = Clock::now();
  std::vector<std::promise<serve::RecoveryResponse>> expired;
  {
    std::lock_guard<std::mutex> lock(w->mu);
    for (auto it = w->inflight.begin(); it != w->inflight.end();) {
      if (now >= it->second.deadline) {
        expired.push_back(std::move(it->second.promise));
        it = w->inflight.erase(it);
        ++w->failed;
        w->inflight_count.fetch_sub(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
  for (auto& p : expired) {
    p.set_value(ErrorResponse(
        serve::ResponseKind::kInternalError,
        "fleet request timed out on worker " + std::to_string(w->index)));
  }
}

FleetRouter::WorkerChannel* FleetRouter::PickWorker(
    uint64_t key, const std::vector<bool>& tried) {
  const auto eligible = [&](int idx) {
    if (tried[static_cast<size_t>(idx)]) return false;
    std::lock_guard<std::mutex> lock(workers_[idx]->mu);
    return workers_[idx]->connected;
  };
  // Ring walk: first eligible worker at or after the key's point.
  WorkerChannel* primary = nullptr;
  if (!ring_.empty()) {
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), std::make_pair(key, -1));
    for (size_t step = 0; step < ring_.size(); ++step) {
      if (it == ring_.end()) it = ring_.begin();
      if (eligible(it->second)) {
        primary = workers_[it->second].get();
        break;
      }
      ++it;
    }
  }
  if (primary == nullptr) return nullptr;
  if (primary->inflight_count.load(std::memory_order_relaxed) <=
      config_.overflow_depth) {
    return primary;
  }
  // The shard owner is backed up: overflow to the least-loaded alternative
  // (ties keep the primary — no churn while everyone is equally busy).
  WorkerChannel* best = primary;
  int best_depth = primary->inflight_count.load(std::memory_order_relaxed);
  for (auto& w : workers_) {
    if (w.get() == primary || !eligible(w->index)) continue;
    const int depth = w->inflight_count.load(std::memory_order_relaxed);
    if (depth < best_depth) {
      best = w.get();
      best_depth = depth;
    }
  }
  return best;
}

std::future<serve::RecoveryResponse> FleetRouter::Submit(
    serve::RecoveryRequest req) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  std::promise<serve::RecoveryResponse> promise;
  std::future<serve::RecoveryResponse> future = promise.get_future();

  // Front-end validation: a structurally invalid request is answered here,
  // without spending a worker round-trip on it.
  std::string verror;
  if (!serve::ValidateRequest(req, &verror)) {
    validation_rejected_.fetch_add(1, std::memory_order_relaxed);
    promise.set_value(
        ErrorResponse(serve::ResponseKind::kValidationError, verror));
    return future;
  }
  if (shutdown_.load(std::memory_order_acquire)) {
    promise.set_value(ErrorResponse(serve::ResponseKind::kShed,
                                    "fleet router shut down"));
    return future;
  }

  const std::string body = EncodeRequestBody(req);
  const uint64_t key = Fnv1a64(body);
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const std::string frame = BuildRequestFrame(id, body);
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(config_.request_timeout_ms);

  std::vector<bool> tried(workers_.size(), false);
  bool any_attempt = false;
  for (;;) {
    WorkerChannel* w = PickWorker(key, tried);
    if (w == nullptr) break;
    tried[static_cast<size_t>(w->index)] = true;
    std::string send_error;
    {
      std::lock_guard<std::mutex> lock(w->mu);
      if (!w->connected) continue;  // died between pick and lock
      // Register before sending: the worker may answer before we would get
      // back to the map otherwise.
      auto emplaced = w->inflight.emplace(
          id, WorkerChannel::Pending{std::move(promise), deadline});
      w->inflight_count.fetch_add(1, std::memory_order_relaxed);
      if (SendAll(w->socket, frame, &send_error)) {
        ++w->sent;
        return future;
      }
      // Send failed: reclaim the promise and let the manager's read loop
      // discover the dead connection; retry the next alive worker.
      promise = std::move(emplaced.first->second.promise);
      w->inflight.erase(emplaced.first);
      w->inflight_count.fetch_sub(1, std::memory_order_relaxed);
      w->socket.ShutdownBoth();
    }
    if (any_attempt) rerouted_.fetch_add(1, std::memory_order_relaxed);
    any_attempt = true;
  }
  no_worker_available_.fetch_add(1, std::memory_order_relaxed);
  promise.set_value(ErrorResponse(serve::ResponseKind::kInternalError,
                                  "no alive fleet worker"));
  return future;
}

obs::MetricsSnapshot FleetRouter::FleetMetrics(std::string* error) {
  obs::MetricsSnapshot fleet;
  std::string problems;
  int merged = 0;
  for (auto& w : workers_) {
    Socket control;
    std::string werror;
    std::string payload;
    obs::MetricsSnapshot snap;
    if (!ConnectWithin(w->endpoints.control,
                       config_.control_connect_timeout_ms, &control,
                       &werror) ||
        !ControlRoundTrip(control, BuildMetricsQueryFrame(),
                          FrameType::kMetricsReply,
                          config_.control_reply_timeout_ms, &payload,
                          &werror) ||
        !DecodeMetricsReplyPayload(payload.data(), payload.size(), &snap,
                                   &werror)) {
      problems += (problems.empty() ? "" : "; ") + ("worker " +
                  std::to_string(w->index) + ": " + werror);
      continue;
    }
    if (merged == 0) {
      fleet = std::move(snap);
    } else {
      fleet.Merge(snap);
    }
    ++merged;
  }
  if (error != nullptr) *error = problems;
  return fleet;
}

bool FleetRouter::RollingDeploy(const std::string& snapshot_path,
                                std::string* error) {
  for (auto& w : workers_) {
    Socket control;
    std::string werror;
    if (!ConnectWithin(w->endpoints.control,
                       config_.control_connect_timeout_ms, &control,
                       &werror)) {
      if (error != nullptr) {
        *error = "worker " + std::to_string(w->index) +
                 " control connect failed: " + werror;
      }
      return false;
    }
    std::string payload;
    if (!ControlRoundTrip(control, BuildSwapModelFrame(snapshot_path),
                          FrameType::kSwapReply,
                          config_.control_reply_timeout_ms, &payload,
                          &werror)) {
      if (error != nullptr) {
        *error = "worker " + std::to_string(w->index) +
                 " swap round-trip failed: " + werror;
      }
      return false;
    }
    bool ok = false;
    std::string message;
    uint64_t version = 0;
    if (!DecodeSwapReplyPayload(payload.data(), payload.size(), &ok, &message,
                                &version, &werror)) {
      if (error != nullptr) {
        *error = "worker " + std::to_string(w->index) +
                 " swap reply malformed: " + werror;
      }
      return false;
    }
    if (!ok) {
      if (error != nullptr) {
        *error =
            "worker " + std::to_string(w->index) + " swap failed: " + message;
      }
      return false;
    }
  }
  return true;
}

bool FleetRouter::WaitForAlive(int min_workers, int timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (static_cast<int>(AliveWorkers().size()) >= min_workers) return true;
    if (Clock::now() >= deadline ||
        shutdown_.load(std::memory_order_acquire)) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

std::vector<int> FleetRouter::AliveWorkers() const {
  std::vector<int> alive;
  for (const auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);
    if (w->connected) alive.push_back(w->index);
  }
  return alive;
}

FleetStats FleetRouter::Stats() const {
  FleetStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.validation_rejected =
      validation_rejected_.load(std::memory_order_relaxed);
  stats.no_worker_available =
      no_worker_available_.load(std::memory_order_relaxed);
  stats.rerouted = rerouted_.load(std::memory_order_relaxed);
  for (const auto& w : workers_) {
    FleetWorkerView view;
    std::lock_guard<std::mutex> lock(w->mu);
    view.index = w->index;
    view.alive = w->connected;
    view.inflight = w->inflight_count.load(std::memory_order_relaxed);
    view.sent = w->sent;
    view.answered = w->answered;
    view.failed = w->failed;
    view.reconnects = w->reconnects;
    stats.workers.push_back(view);
  }
  return stats;
}

void FleetRouter::Shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) {
    // Idempotent: the first caller joined the managers already.
    for (auto& w : workers_) {
      if (w->manager.joinable()) w->manager.join();
    }
    return;
  }
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);
    if (w->connected) w->socket.ShutdownBoth();  // wake a blocked read
  }
  for (auto& w : workers_) {
    if (w->manager.joinable()) w->manager.join();
  }
}

}  // namespace fleet
}  // namespace rntraj
