#ifndef RNTRAJ_FLEET_PROFILES_H_
#define RNTRAJ_FLEET_PROFILES_H_

#include <string>
#include <vector>

#include "src/core/rntrajrec.h"
#include "src/serve/recovery_service.h"
#include "src/sim/dataset.h"

/// \file profiles.h
/// Named worker profiles: everything a fleet worker needs to reconstruct
/// its serving universe deterministically — the dataset configuration (the
/// synthetic city and splits are a pure function of DatasetConfig, seed
/// included), the model architecture, and the RecoveryService knobs.
///
/// The profile name is the cross-process contract: a router-side test or
/// bench builds its dataset and in-process reference from the SAME profile
/// the worker executable resolves, so both sides agree on the road network,
/// the request samples and the model shape. Weights are NOT part of a
/// profile — workers load them from a snapshot file (strict, all entries),
/// which is what makes fleet answers bit-comparable to the in-process
/// service.

namespace rntraj {
namespace fleet {

struct FleetProfile {
  DatasetConfig dataset;
  RnTrajRecConfig model;
  serve::RecoveryServiceConfig service;
};

/// Resolves a profile by name. Returns false + `*error` (listing the known
/// names) for an unknown name.
///
/// Known profiles:
///   "chaos-tiny"  — the serve_chaos_test fixture universe (tiny Chengdu,
///                   dim-16 model, 2 sessions, 500 us batching)
///   "bench-tiny" / "bench-small" / "bench-full"
///                 — the serving-bench universe per RNTR_SCALE (Chengdu at
///                   that scale, the bench dims 16/24/64, single-session
///                   batched service so the worker-count sweep measures
///                   process-level scaling, not intra-process threading)
bool LookupFleetProfile(const std::string& name, FleetProfile* out,
                        std::string* error);

std::vector<std::string> FleetProfileNames();

}  // namespace fleet
}  // namespace rntraj

#endif  // RNTRAJ_FLEET_PROFILES_H_
