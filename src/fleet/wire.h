#ifndef RNTRAJ_FLEET_WIRE_H_
#define RNTRAJ_FLEET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/obs/metrics.h"
#include "src/serve/request.h"

/// \file wire.h
/// The fleet's length-prefixed, versioned binary wire protocol (see
/// docs/fleet.md for the byte-level format table).
///
/// Every frame is a fixed 28-byte header — magic "RNTRWIRE", protocol
/// version, endianness tag, frame type, payload length — followed by the
/// payload. The router and workers speak exactly these frames over
/// Unix-domain or TCP sockets: requests and responses (correlation-id
/// multiplexed on the data endpoint), metrics queries, model-swap commands
/// and liveness pings (synchronous on the control endpoint).
///
/// The decoder side follows the src/snapshot/ discipline: a bounds-checked
/// latching WireCursor, explicit caps before every allocation, and every
/// malformed input — truncation at any byte, bad magic/version/endianness,
/// an oversized length prefix, garbage payload bytes — reported through an
/// error string and `false`, with outputs untouched. Untrusted bytes never
/// abort a serving process.

namespace rntraj {
namespace fleet {

inline constexpr char kWireMagic[8] = {'R', 'N', 'T', 'R', 'W', 'I', 'R', 'E'};
/// Protocol framing version; payload field layouts are additionally pinned
/// by serve::kRequestWireVersion (mixed builds reject each other here).
inline constexpr uint32_t kWireVersion = 1;
inline constexpr uint32_t kWireEndianTag = 0x01020304u;
/// magic(8) + version(4) + endian(4) + type(4) + payload length(8).
inline constexpr size_t kFrameHeaderBytes = 28;
/// Hard cap on one frame's payload: an oversized length prefix is rejected
/// at header parse, before any allocation or read.
inline constexpr uint64_t kMaxFramePayload = 64ull << 20;
/// Caps inside payloads (trajectories, strings), enforced before allocating.
inline constexpr uint32_t kMaxWirePoints = 1u << 20;
inline constexpr uint32_t kMaxWireString = 1u << 16;

enum class FrameType : uint32_t {
  kRequest = 1,       ///< data: correlation id + RecoveryRequest
  kResponse = 2,      ///< data: correlation id + RecoveryResponse
  kMetricsQuery = 3,  ///< control: empty payload
  kMetricsReply = 4,  ///< control: binary MetricsSnapshot
  kSwapModel = 5,     ///< control: snapshot path to deploy
  kSwapReply = 6,     ///< control: ok + error + new model version
  kPing = 7,          ///< control: empty payload (liveness probe)
  kPong = 8,          ///< control: current queue depth
};

struct FrameHeader {
  FrameType type = FrameType::kRequest;
  uint64_t payload_size = 0;
};

// ---------------------------------------------------------------------------
// Append primitives (host byte order; the header's endian tag rejects a
// foreign-endian peer instead of silently misparsing it).

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI32(std::string* out, int32_t v);
void PutF64(std::string* out, double v);
/// u32 byte count + raw bytes (embedded NULs round-trip).
void PutString(std::string* out, const std::string& s);

/// Bounds-checked latching reader over an untrusted byte span. Every getter
/// checks the remaining byte count first; any failure latches, so a decoder
/// can run a whole section unconditionally and test ok() once at the end.
class WireCursor {
 public:
  WireCursor(const char* data, size_t size) : p_(data), end_(data + size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  void Fail() { ok_ = false; }

  bool GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetI32(int32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetF64(double* v) { return GetRaw(v, sizeof(*v)); }
  /// Length-prefixed string, rejected past `max_len` before allocating.
  bool GetString(std::string* v, uint32_t max_len = kMaxWireString);

 private:
  bool GetRaw(void* dst, size_t n);

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Frame header

void AppendFrameHeader(std::string* out, FrameType type, uint64_t payload_size);

/// Validates magic, version, endianness, frame type and the length prefix
/// (<= kMaxFramePayload). `data` must hold at least kFrameHeaderBytes.
bool ParseFrameHeader(const char* data, size_t size, FrameHeader* out,
                      std::string* error);

// ---------------------------------------------------------------------------
// Request / response payloads. The request body is exposed separately from
// the frame because the router hashes the encoded body for consistent
// request sharding (same body -> same worker, independent of correlation
// id).

std::string EncodeRequestBody(const serve::RecoveryRequest& req);
std::string BuildRequestFrame(uint64_t correlation_id,
                              const std::string& encoded_body);
bool DecodeRequestPayload(const char* data, size_t size,
                          uint64_t* correlation_id,
                          serve::RecoveryRequest* out, std::string* error);

/// The response's `trace` pointer is process-local and does not cross the
/// wire; every other field round-trips bit-exactly.
std::string BuildResponseFrame(uint64_t correlation_id,
                               const serve::RecoveryResponse& resp);
bool DecodeResponsePayload(const char* data, size_t size,
                           uint64_t* correlation_id,
                           serve::RecoveryResponse* out, std::string* error);

// ---------------------------------------------------------------------------
// Control payloads

std::string BuildMetricsQueryFrame();
std::string BuildMetricsReplyFrame(const obs::MetricsSnapshot& snap);
bool DecodeMetricsReplyPayload(const char* data, size_t size,
                               obs::MetricsSnapshot* out, std::string* error);

std::string BuildSwapModelFrame(const std::string& snapshot_path);
bool DecodeSwapModelPayload(const char* data, size_t size,
                            std::string* snapshot_path, std::string* error);

std::string BuildSwapReplyFrame(bool ok, const std::string& message,
                                uint64_t model_version);
bool DecodeSwapReplyPayload(const char* data, size_t size, bool* ok,
                            std::string* message, uint64_t* model_version,
                            std::string* error);

std::string BuildPingFrame();
std::string BuildPongFrame(double queue_depth);
bool DecodePongPayload(const char* data, size_t size, double* queue_depth,
                       std::string* error);

/// FNV-1a over the encoded request body — the router's consistent-hash
/// route key (stable across processes and runs; no RNG involved).
uint64_t Fnv1a64(const std::string& bytes);

}  // namespace fleet
}  // namespace rntraj

#endif  // RNTRAJ_FLEET_WIRE_H_
