#ifndef RNTRAJ_TRAJ_RESAMPLE_H_
#define RNTRAJ_TRAJ_RESAMPLE_H_

#include <vector>

#include "src/traj/trajectory.h"

/// \file resample.h
/// Temporal resampling utilities: the linear-interpolation recovery baseline
/// (Hoteit et al. [18]) and the fixed-stride downsampling that produces the
/// paper's low-sample inputs (keep every 8th/16th point).

namespace rntraj {

/// Evenly spaced timestamps t0, t0+eps, ..., (count points).
std::vector<double> UniformTimes(double t0, double eps, int count);

/// Positions linearly interpolated (uniform-speed assumption) at `times`.
/// Times outside the input range clamp to the first/last point.
RawTrajectory LinearInterpolate(const RawTrajectory& in,
                                const std::vector<double>& times);

/// Keeps indices 0, k, 2k, ...; the low-sample input of the recovery task.
RawTrajectory DownsampleEvery(const RawTrajectory& in, int k);

/// The kept indices for a trajectory of length n downsampled by stride k.
std::vector<int> KeptIndices(int n, int k);

}  // namespace rntraj

#endif  // RNTRAJ_TRAJ_RESAMPLE_H_
