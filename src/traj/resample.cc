#include "src/traj/resample.h"

#include <algorithm>

#include "src/common/check.h"

namespace rntraj {

std::vector<double> UniformTimes(double t0, double eps, int count) {
  RNTRAJ_CHECK(count > 0 && eps > 0.0);
  std::vector<double> out(count);
  for (int i = 0; i < count; ++i) out[i] = t0 + i * eps;
  return out;
}

RawTrajectory LinearInterpolate(const RawTrajectory& in,
                                const std::vector<double>& times) {
  RNTRAJ_CHECK_MSG(!in.empty(), "cannot interpolate an empty trajectory");
  RawTrajectory out;
  out.points.reserve(times.size());
  for (double t : times) {
    if (t <= in.points.front().t) {
      out.points.push_back({in.points.front().pos, t});
      continue;
    }
    if (t >= in.points.back().t) {
      out.points.push_back({in.points.back().pos, t});
      continue;
    }
    // Bracketing points (first point with time > t).
    auto it = std::upper_bound(
        in.points.begin(), in.points.end(), t,
        [](double value, const RawPoint& p) { return value < p.t; });
    const RawPoint& hi = *it;
    const RawPoint& lo = *(it - 1);
    const double span = hi.t - lo.t;
    const double alpha = span > 0.0 ? (t - lo.t) / span : 0.0;
    out.points.push_back({lo.pos + (hi.pos - lo.pos) * alpha, t});
  }
  return out;
}

std::vector<int> KeptIndices(int n, int k) {
  RNTRAJ_CHECK(k >= 1);
  std::vector<int> idx;
  for (int i = 0; i < n; i += k) idx.push_back(i);
  return idx;
}

RawTrajectory DownsampleEvery(const RawTrajectory& in, int k) {
  RawTrajectory out;
  for (int i : KeptIndices(in.size(), k)) out.points.push_back(in.points[i]);
  return out;
}

}  // namespace rntraj
