#ifndef RNTRAJ_TRAJ_TRAJECTORY_H_
#define RNTRAJ_TRAJ_TRAJECTORY_H_

#include <vector>

#include "src/geo/geo.h"

/// \file trajectory.h
/// Trajectory value types (paper Definitions 2-3): a raw GPS trajectory is a
/// timestamped point sequence with measurement error; a map-matched
/// trajectory locates each point as (road segment, moving ratio).

namespace rntraj {

/// One raw GPS observation in the planar frame.
struct RawPoint {
  Vec2 pos;
  double t = 0.0;
};

/// One map-matched point: position = segment `seg_id` at `ratio` in [0,1).
struct MatchedPoint {
  int seg_id = -1;
  double ratio = 0.0;
  double t = 0.0;
};

/// Raw GPS trajectory (paper tau).
struct RawTrajectory {
  std::vector<RawPoint> points;

  int size() const { return static_cast<int>(points.size()); }
  bool empty() const { return points.empty(); }
  double duration() const {
    return points.empty() ? 0.0 : points.back().t - points.front().t;
  }
};

/// Map-matched trajectory (paper rho); for epsilon-sample-interval
/// trajectories, consecutive timestamps differ by a fixed interval.
struct MatchedTrajectory {
  std::vector<MatchedPoint> points;

  int size() const { return static_cast<int>(points.size()); }
  bool empty() const { return points.empty(); }
  double duration() const {
    return points.empty() ? 0.0 : points.back().t - points.front().t;
  }

  /// The travel path: visited segment ids with consecutive duplicates
  /// collapsed (paper's E_rho used by Recall/Precision).
  std::vector<int> TravelPath() const {
    std::vector<int> path;
    for (const auto& p : points) {
      if (path.empty() || path.back() != p.seg_id) path.push_back(p.seg_id);
    }
    return path;
  }
};

}  // namespace rntraj

#endif  // RNTRAJ_TRAJ_TRAJECTORY_H_
