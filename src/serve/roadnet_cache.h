#ifndef RNTRAJ_SERVE_ROADNET_CACHE_H_
#define RNTRAJ_SERVE_ROADNET_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/roadnet/grid.h"
#include "src/roadnet/road_network.h"
#include "src/roadnet/rtree.h"

/// \file roadnet_cache.h
/// The shared roadnet query cache of the serving subsystem. Radius queries
/// (sub-graph generation at delta, decoder constraint masks at mask_radius /
/// spatial_prior_radius) dominate per-request roadnet time; their R-tree
/// traversals repeat heavily across requests because real traffic has
/// spatial locality. The cache keys *candidate segment lists* by grid cell:
/// for a cell c and radius r it stores every segment whose bounding box
/// intersects the (r + half-cell-diagonal)-buffered cell centre — a provable
/// superset of any exact radius-r query issued from inside c. Per query only
/// the exact projection + filter runs, so cached answers are bit-identical
/// to SegmentsWithinRadius: caching never changes model outputs.

namespace rntraj {
namespace serve {

/// Cache shape knobs.
struct RoadnetCacheConfig {
  /// Total cached (cell, radius) candidate lists across all shards;
  /// least-recently-used entries are evicted beyond it.
  int capacity = 8192;
  /// Lock striping for concurrent sessions.
  int shards = 8;
};

/// Telemetry counters (monotonic).
struct RoadnetCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  /// Queries answered by the direct path: unknown radius, point outside the
  /// grid, or an empty filtered result (radius-expansion semantics).
  int64_t fallbacks = 0;
  int64_t entries = 0;  ///< Current resident candidate lists.
};

/// Grid-cell-keyed LRU of radius-query candidates, exact by construction.
/// Thread-safe; one instance is shared by every serving session.
class CellCandidateCache : public SegmentQuerySource {
 public:
  /// `radii` lists the radii the cache serves (a model's delta and the
  /// decoder's mask/prior radii); queries at any other radius fall through
  /// to the direct R-tree path.
  CellCandidateCache(const RoadNetwork* rn, const RTree* rtree,
                     const GridMapping* grid, std::vector<double> radii,
                     const RoadnetCacheConfig& config = {});

  /// Exact SegmentsWithinRadius semantics (sorted, never empty).
  std::vector<NearbySegment> WithinRadius(const Vec2& p,
                                          double radius) const override;

  /// Warms the (cell, radius) entries covering `points` in one pass, with
  /// the candidate computation chunk-parallelised over the thread pool.
  /// Sessions call this per micro-batch so concurrent requests share the
  /// R-tree work for overlapping areas.
  void Prefetch(const std::vector<Vec2>& points, double radius) const;

  RoadnetCacheStats stats() const;

 private:
  /// One cached candidate: segment id plus its geometry bounds, so queries
  /// can prefilter with the same bbox-intersection test the R-tree leaf pass
  /// applies — cached answers then project exactly the segments the direct
  /// path projects (no conservative-radius overhead).
  struct CandidateBox {
    int seg_id;
    BBox box;
  };
  using Candidates = std::shared_ptr<const std::vector<CandidateBox>>;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<int64_t, std::pair<Candidates, std::list<int64_t>::iterator>>
        entries;
    std::list<int64_t> lru;  ///< Front = most recently used.
  };

  /// Index into radii_ for an exact radius match, -1 otherwise.
  int RadiusSlot(double radius) const;

  /// Cache key for (cell, radius slot); cells are dense grid indices.
  int64_t KeyOf(int cell, int slot) const {
    return static_cast<int64_t>(cell) *
               static_cast<int64_t>(radii_.size()) +
           slot;
  }

  Shard& ShardOf(int64_t key) const {
    return shards_[static_cast<size_t>(key) % shards_.size()];
  }

  /// Returns the candidate list for (cell, slot), computing and inserting it
  /// on miss. Counts one hit or miss per call (Prefetch accounts for its own
  /// inserts, so prefetched entries surface as hits here).
  Candidates GetCandidates(int cell, int slot) const;

  /// Computes the conservative candidate list for a cell centre.
  std::vector<CandidateBox> ComputeCandidates(int cell, int slot) const;

  void InsertLocked(Shard& shard, int64_t key, Candidates value) const;

  const RoadNetwork* rn_;
  const RTree* rtree_;
  const GridMapping* grid_;
  std::vector<double> radii_;
  double half_diag_;  ///< Half the cell diagonal: the snap-safety margin.
  int per_shard_capacity_;
  mutable std::vector<Shard> shards_;
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> fallbacks_{0};
};

}  // namespace serve
}  // namespace rntraj

#endif  // RNTRAJ_SERVE_ROADNET_CACHE_H_
