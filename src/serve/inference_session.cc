#include "src/serve/inference_session.h"

#include <chrono>
#include <string>
#include <utility>

#include "src/sim/dataset.h"

namespace rntraj {
namespace serve {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void InferenceSession::ProcessBatch(std::vector<QueuedRequest>&& batch) {
  const auto batch_start = std::chrono::steady_clock::now();
  const int batch_size = static_cast<int>(batch.size());
  // Counted up front so Stats() readers woken by this batch's own futures
  // see a consistent batches/requests pair.
  batches_.fetch_add(1, std::memory_order_relaxed);

  // Batch-level cache warmup: one pass over every input point of the batch
  // per radius, so overlapping requests share the R-tree work (and the
  // per-request forwards below run almost entirely on cache hits).
  if (cache_ != nullptr && !prefetch_radii_.empty()) {
    std::vector<Vec2> points;
    for (const QueuedRequest& q : batch) {
      for (const auto& p : q.request.input.points) points.push_back(p.pos);
    }
    for (double r : prefetch_radii_) cache_->Prefetch(points, r);
  }

  // Validate and build the ephemeral samples of the batch's valid remainder
  // up front (shared by both forward modes below).
  std::vector<RecoveryResponse> responses(batch.size());
  std::vector<TrajectorySample> samples;
  std::vector<int> sample_of(batch.size(), -1);  ///< Request -> sample index.
  samples.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    QueuedRequest& q = batch[i];
    responses[i].batch_size = batch_size;
    responses[i].session_id = id_;
    responses[i].queue_ms = std::chrono::duration<double, std::milli>(
                                batch_start - q.enqueued_at)
                                .count();
    std::string error;
    if (ValidateRequest(q.request, &error)) {
      sample_of[i] = static_cast<int>(samples.size());
      samples.push_back(
          MakeEphemeralSample(std::move(q.request.input),
                              std::move(q.request.input_indices),
                              q.request.target_times));
    } else {
      responses[i].error = std::move(error);
    }
  }

  if (batched_forward_ && !samples.empty()) {
    // One cross-request forward for the coalesced batch: RecoverBatch runs
    // a single padded encoder pass plus one fat decoder step per target
    // timestep when the model supports a batched forward (and falls back to
    // a per-sample loop when it does not). infer_ms reports each
    // request's share of the batch forward; promises necessarily resolve
    // together — the batch shares one encoder pass.
    std::vector<const TrajectorySample*> ptrs;
    ptrs.reserve(samples.size());
    for (const TrajectorySample& s : samples) ptrs.push_back(&s);
    const auto infer_start = std::chrono::steady_clock::now();
    std::vector<MatchedTrajectory> recovered = model_->RecoverBatch(ptrs);
    const double per_request_ms =
        MsSince(infer_start) / static_cast<double>(samples.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      if (sample_of[i] < 0) continue;
      responses[i].recovered = std::move(recovered[sample_of[i]]);
      responses[i].infer_ms = per_request_ms;
      responses[i].ok = true;
    }
    requests_.fetch_add(static_cast<int64_t>(samples.size()),
                        std::memory_order_relaxed);
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    if (!batched_forward_ && sample_of[i] >= 0) {
      // Per-request reference path (config batched_forward = false): each
      // forward runs here so its promise resolves as soon as it is done,
      // preserving the pre-batched-forward latency behaviour.
      const auto infer_start = std::chrono::steady_clock::now();
      responses[i].recovered = model_->Recover(samples[sample_of[i]]);
      responses[i].infer_ms = MsSince(infer_start);
      responses[i].ok = true;
      requests_.fetch_add(1, std::memory_order_relaxed);
    }
    // Record completion before resolving the future: a caller that returns
    // from future.get() must already see itself in Stats().
    if (on_complete_) on_complete_(MsSince(batch[i].enqueued_at));
    batch[i].promise.set_value(std::move(responses[i]));
  }
  busy_seconds_.fetch_add(MsSince(batch_start) / 1000.0,
                          std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace rntraj
