#include "src/serve/inference_session.h"

#include <chrono>
#include <string>
#include <utility>

#include "src/sim/dataset.h"

namespace rntraj {
namespace serve {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void InferenceSession::ProcessBatch(std::vector<QueuedRequest>&& batch) {
  const auto batch_start = std::chrono::steady_clock::now();
  const int batch_size = static_cast<int>(batch.size());
  // Counted up front so Stats() readers woken by this batch's own futures
  // see a consistent batches/requests pair.
  batches_.fetch_add(1, std::memory_order_relaxed);

  // Batch-level cache warmup: one pass over every input point of the batch
  // per radius, so overlapping requests share the R-tree work (and the
  // per-request forwards below run almost entirely on cache hits).
  if (cache_ != nullptr && !prefetch_radii_.empty()) {
    std::vector<Vec2> points;
    for (const QueuedRequest& q : batch) {
      for (const auto& p : q.request.input.points) points.push_back(p.pos);
    }
    for (double r : prefetch_radii_) cache_->Prefetch(points, r);
  }

  for (QueuedRequest& q : batch) {
    RecoveryResponse resp;
    resp.batch_size = batch_size;
    resp.session_id = id_;
    resp.queue_ms = std::chrono::duration<double, std::milli>(
                        batch_start - q.enqueued_at)
                        .count();
    std::string error;
    if (ValidateRequest(q.request, &error)) {
      const auto infer_start = std::chrono::steady_clock::now();
      TrajectorySample sample =
          MakeEphemeralSample(std::move(q.request.input),
                              std::move(q.request.input_indices),
                              q.request.target_times);
      resp.recovered = model_->Recover(sample);
      resp.infer_ms = MsSince(infer_start);
      resp.ok = true;
      requests_.fetch_add(1, std::memory_order_relaxed);
    } else {
      resp.error = std::move(error);
    }
    // Record completion before resolving the future: a caller that returns
    // from future.get() must already see itself in Stats().
    if (on_complete_) on_complete_(MsSince(q.enqueued_at));
    q.promise.set_value(std::move(resp));
  }
  busy_seconds_.fetch_add(MsSince(batch_start) / 1000.0,
                          std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace rntraj
