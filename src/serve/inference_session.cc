#include "src/serve/inference_session.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "src/obs/stage_profiler.h"
#include "src/sim/dataset.h"
#include "src/tensor/buffer_pool.h"

namespace rntraj {
namespace serve {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string DescribeException() {
  try {
    throw;  // rethrow the in-flight exception to classify it
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

void InferenceSession::ProcessBatch(std::vector<QueuedRequest>&& batch,
                                    RecoveryModel* model,
                                    uint64_t model_version) {
  const auto batch_start = std::chrono::steady_clock::now();
  const int batch_size = static_cast<int>(batch.size());
  // Counted up front so Stats() readers woken by this batch's own futures
  // see a consistent batches/requests pair.
  batches_.fetch_add(1, std::memory_order_relaxed);

  // Trace touchpoints (sampled requests only — `trace` is null for the
  // rest): the queue span ends at dequeue, the dispatch span opens here and
  // covers stall/prefetch/triage up to the forward.
  bool any_traced = false;
  for (QueuedRequest& q : batch) {
    if (q.trace == nullptr) continue;
    any_traced = true;
    const int64_t at = q.trace->ToNs(batch_start);
    q.trace->CloseSpanAt(q.trace->SpanIndex("queue"), at);
    q.trace->OpenSpanAt("dispatch", obs::RequestTrace::kRootSpan, at);
  }

  // Chaos hook: a stalled session (wedged forward, page fault storm, ...).
  // Keyed on the first request's id so which batches stall is deterministic
  // per request stream, independent of which session popped them.
  if (injector_ != nullptr && !batch.empty()) {
    injector_->MaybeStall(batch.front().id);
  }

  // The degradation decision is per batch: when the ladder is off OK, valid
  // requests run the cheap fallback path instead of the full model.
  const bool degraded = policy_ != nullptr && fallback_ != nullptr &&
                        policy_->state() != PolicyState::kOk;

  // Batch-level cache warmup: one pass over every input point of the batch
  // per radius, so overlapping requests share the R-tree work (and the
  // per-request forwards below run almost entirely on cache hits). The
  // fallback path queries the R-tree directly, so a degraded batch skips
  // the warmup — it would be pure overhead at exactly the moment the
  // service is shedding cost.
  if (!degraded && cache_ != nullptr && !prefetch_radii_.empty()) {
    std::vector<Vec2> points;
    for (const QueuedRequest& q : batch) {
      for (const auto& p : q.request.input.points) points.push_back(p.pos);
    }
    for (double r : prefetch_radii_) cache_->Prefetch(points, r);
  }

  // Triage every request up front: validation, injected deadline expiry,
  // and the dispatch-time budget check (the batcher evicted requests that
  // were already dead at dequeue; time has passed since — prefetch, stalls).
  // Only the surviving remainder is converted to ephemeral samples.
  std::vector<RecoveryResponse> responses(batch.size());
  std::vector<TrajectorySample> samples;
  std::vector<int> sample_of(batch.size(), -1);  ///< Request -> sample index.
  samples.reserve(batch.size());
  const auto dispatch_now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < batch.size(); ++i) {
    QueuedRequest& q = batch[i];
    responses[i].batch_size = batch_size;
    responses[i].session_id = id_;
    responses[i].model_version = model_version;
    responses[i].queue_ms = std::chrono::duration<double, std::milli>(
                                batch_start - q.enqueued_at)
                                .count();
    std::string error;
    if (injector_ != nullptr && injector_->ShouldExpire(q.id)) {
      q.deadline_at = dispatch_now - std::chrono::milliseconds(1);
      if (q.trace != nullptr) q.trace->AddEvent("fault-expire-injected");
    }
    if (!ValidateRequest(q.request, &error)) {
      responses[i].kind = ResponseKind::kValidationError;
      responses[i].error = std::move(error);
    } else if (q.expired(dispatch_now)) {
      responses[i].kind = ResponseKind::kDeadlineMissed;
      responses[i].error = "deadline exceeded";
    } else {
      sample_of[i] = static_cast<int>(samples.size());
      samples.push_back(
          MakeEphemeralSample(std::move(q.request.input),
                              std::move(q.request.input_indices),
                              q.request.target_times));
    }
  }

  // One lane's outcome, fault-isolated: `run` computes the recovery for
  // request i; a throw poisons only responses[i], never the worker thread
  // or the batch's other lanes.
  const auto run_isolated = [&](size_t i, auto&& run) {
    const auto infer_start = std::chrono::steady_clock::now();
    try {
      responses[i].recovered = run();
      responses[i].infer_ms = MsSince(infer_start);
      responses[i].ok = true;
      responses[i].kind = ResponseKind::kOk;
      responses[i].degraded = degraded;
      requests_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      responses[i].kind = ResponseKind::kInternalError;
      responses[i].error = "internal error: " + DescribeException();
      responses[i].infer_ms = MsSince(infer_start);
      faults_.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // The forward section, bracketed for tracing. The capture frame mirrors
  // this thread's stage timers (GAT/GRL/transformer/decoder/constraint
  // mask) so the forward span can be split into encode/decode below without
  // seeing concurrent sessions' stages; it is only installed when a traced
  // request is aboard — untraced batches skip even that.
  const auto forward_start = std::chrono::steady_clock::now();
  std::optional<obs::StageCaptureScope> capture;
  if (any_traced) capture.emplace();

  if (degraded) {
    // Degraded rung: linear interpolation + HMM map matching (the existing
    // two-stage baseline) instead of the full model. Much cheaper — the
    // point is to keep the queue draining under overload — and flagged so
    // callers know what they got.
    for (size_t i = 0; i < batch.size(); ++i) {
      if (sample_of[i] < 0) continue;
      run_isolated(i, [&] { return fallback_->Recover(samples[sample_of[i]]); });
    }
  } else if (batched_forward_ && !samples.empty()) {
    // One cross-request forward for the coalesced batch: RecoverBatch runs
    // a single padded encoder pass plus one fat decoder step per target
    // timestep when the model supports a batched forward. infer_ms reports
    // each request's share of the batch forward; promises necessarily
    // resolve together — the batch shares one encoder pass.
    std::vector<const TrajectorySample*> ptrs;
    ptrs.reserve(samples.size());
    for (const TrajectorySample& s : samples) ptrs.push_back(&s);
    const auto infer_start = std::chrono::steady_clock::now();
    bool batch_ok = false;
    try {
      if (injector_ != nullptr) {
        for (size_t i = 0; i < batch.size(); ++i) {
          if (sample_of[i] >= 0) injector_->OnForward(batch[i].id);
        }
      }
      std::vector<MatchedTrajectory> recovered = model->RecoverBatch(ptrs);
      const double per_request_ms =
          MsSince(infer_start) / static_cast<double>(samples.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        if (sample_of[i] < 0) continue;
        responses[i].recovered = std::move(recovered[sample_of[i]]);
        responses[i].infer_ms = per_request_ms;
        responses[i].ok = true;
        responses[i].kind = ResponseKind::kOk;
      }
      requests_.fetch_add(static_cast<int64_t>(samples.size()),
                          std::memory_order_relaxed);
      batch_ok = true;
    } catch (...) {
      // The shared forward threw, so no lane has an answer yet. Isolate by
      // retrying request by request: only the lane(s) whose forward throws
      // again are poisoned; the rest still get correct (per-sample-path)
      // answers.
      faults_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!batch_ok) {
      for (size_t i = 0; i < batch.size(); ++i) {
        if (sample_of[i] < 0) continue;
        run_isolated(i, [&] {
          if (injector_ != nullptr) injector_->OnForward(batch[i].id);
          return model->Recover(samples[sample_of[i]]);
        });
      }
    }
  } else {
    // Per-request reference path (config batched_forward = false): each
    // forward runs in its own isolated lane, resolving as soon as it is
    // done — preserving the pre-batched-forward latency behaviour.
    for (size_t i = 0; i < batch.size(); ++i) {
      if (sample_of[i] < 0) continue;
      run_isolated(i, [&] {
        if (injector_ != nullptr) injector_->OnForward(batch[i].id);
        return model->Recover(samples[sample_of[i]]);
      });
    }
  }

  // Post-forward budget check: an answer whose deadline passed while the
  // forward ran is NOT delivered as a success — the caller has stopped
  // waiting, and reporting it ok would hide the miss from the ladder.
  const auto forward_end = std::chrono::steady_clock::now();
  for (size_t i = 0; i < batch.size(); ++i) {
    if (responses[i].kind == ResponseKind::kOk &&
        batch[i].expired(forward_end)) {
      responses[i].ok = false;
      responses[i].kind = ResponseKind::kDeadlineMissed;
      responses[i].error = "deadline exceeded";
      responses[i].recovered = MatchedTrajectory();
    }
  }

  // Trace epilogue: close dispatch, record the forward interval (with its
  // encode/decode split from the capture frame — batch-shared wall time,
  // since the batch rode one forward), open the respond span. The service
  // finalises and retains the trace in on_complete_.
  for (size_t i = 0; i < batch.size(); ++i) {
    obs::RequestTrace* t = batch[i].trace.get();
    if (t == nullptr) continue;
    const int64_t fs = t->ToNs(forward_start);
    const int64_t fe = t->ToNs(forward_end);
    t->CloseSpanAt(t->SpanIndex("dispatch"), fs);
    if (sample_of[i] >= 0) {
      const int fwd =
          t->AddCompletedSpan("forward", obs::RequestTrace::kRootSpan, fs, fe);
      if (capture.has_value()) {
        const int64_t enc_ns = capture->ns(obs::Stage::kSubgraph) +
                               capture->ns(obs::Stage::kTransformer) +
                               capture->ns(obs::Stage::kGat) +
                               capture->ns(obs::Stage::kGrl);
        const int64_t dec_ns = capture->ns(obs::Stage::kConstraintMask) +
                               capture->ns(obs::Stage::kDecoder);
        int64_t at = fs;
        if (enc_ns > 0) {
          const int64_t end = std::min(at + enc_ns, fe);
          t->AddCompletedSpan("forward.encode", fwd, at, end);
          at = end;
        }
        if (dec_ns > 0) {
          t->AddCompletedSpan("forward.decode", fwd, at,
                              std::min(at + dec_ns, fe));
        }
      }
      if (responses[i].kind == ResponseKind::kInternalError) {
        t->AddEvent("forward-threw");
      }
    }
    t->OpenSpanAt("respond", obs::RequestTrace::kRootSpan, fe);
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    // Record completion before resolving the future: a caller that returns
    // from future.get() must already see itself in Stats().
    if (on_complete_) {
      on_complete_(responses[i], batch[i], MsSince(batch[i].enqueued_at));
    }
    batch[i].promise.set_value(std::move(responses[i]));
  }
  busy_seconds_.fetch_add(MsSince(batch_start) / 1000.0,
                          std::memory_order_relaxed);

  // Publish this worker thread's buffer-pool counters (thread-local, so only
  // this session's forwards are reflected). Stores, not adds: the pool stats
  // are already cumulative for the thread's lifetime.
  const BufferPoolStats pool = GetBufferPoolStats();
  pool_hits_.store(static_cast<int64_t>(pool.hits), std::memory_order_relaxed);
  pool_misses_.store(static_cast<int64_t>(pool.misses),
                     std::memory_order_relaxed);
  pool_recycled_.store(static_cast<int64_t>(pool.recycled),
                       std::memory_order_relaxed);
  pool_cached_bytes_.store(static_cast<int64_t>(pool.cached_bytes),
                           std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace rntraj
