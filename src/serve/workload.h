#ifndef RNTRAJ_SERVE_WORKLOAD_H_
#define RNTRAJ_SERVE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/obs/quantile.h"
#include "src/serve/request.h"
#include "src/sim/dataset.h"

/// \file workload.h
/// Request-stream generation for serving demos, benchmarks and tests: turns
/// simulated dataset samples into recovery requests and schedules them as a
/// Poisson arrival process (the standard open-loop traffic model — arrivals
/// do not wait for responses, so queueing behaviour under load is visible).

namespace rntraj {
namespace serve {

/// The recovery query a sample's observation side induces (truth stays
/// behind as the evaluation key).
RecoveryRequest RequestFromSample(const TrajectorySample& sample);

/// One scheduled arrival.
struct WorkloadItem {
  RecoveryRequest request;
  double arrival_s = 0.0;  ///< Offset from workload start.
  int sample_index = 0;    ///< Source sample (for accuracy bookkeeping).
};

/// `num_requests` arrivals at `qps` mean rate (exponential inter-arrival
/// times), cycling through `samples`. Deterministic in `seed`.
std::vector<WorkloadItem> PoissonWorkload(
    const std::vector<TrajectorySample>& samples, int num_requests, double qps,
    uint64_t seed);

/// q-quantile (q in [0, 1]) of `values`; 0 when empty. A thin alias of
/// obs::ExactQuantile — THE percentile definition shared by ServeStats, the
/// metrics registry's histograms and the serving benchmarks (see
/// src/obs/quantile.h for the pinned rank rule; obs_test enforces that the
/// implementations cannot drift apart).
double Percentile(std::vector<double> values, double q);

}  // namespace serve
}  // namespace rntraj

#endif  // RNTRAJ_SERVE_WORKLOAD_H_
