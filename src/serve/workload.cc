#include "src/serve/workload.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/random.h"

namespace rntraj {
namespace serve {

RecoveryRequest RequestFromSample(const TrajectorySample& sample) {
  RecoveryRequest req;
  req.input = sample.input;
  req.input_indices = sample.input_indices;
  req.target_times.reserve(sample.truth.size());
  for (const auto& p : sample.truth.points) req.target_times.push_back(p.t);
  return req;
}

std::vector<WorkloadItem> PoissonWorkload(
    const std::vector<TrajectorySample>& samples, int num_requests, double qps,
    uint64_t seed) {
  RNTRAJ_CHECK(!samples.empty());
  RNTRAJ_CHECK(qps > 0.0);
  Rng rng(seed);
  std::vector<WorkloadItem> items;
  items.reserve(num_requests);
  double t = 0.0;
  for (int i = 0; i < num_requests; ++i) {
    const int idx = static_cast<int>(i % samples.size());
    // Exponential inter-arrival via inverse CDF.
    t += -std::log(1.0 - rng.Uniform(0.0, 1.0)) / qps;
    items.push_back({RequestFromSample(samples[idx]), t, idx});
  }
  return items;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  const size_t k = static_cast<size_t>(q * (values.size() - 1));
  std::nth_element(values.begin(), values.begin() + k, values.end());
  return values[k];
}

}  // namespace serve
}  // namespace rntraj
