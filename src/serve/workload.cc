#include "src/serve/workload.h"

#include <cmath>
#include <utility>

#include "src/common/check.h"
#include "src/common/random.h"

namespace rntraj {
namespace serve {

RecoveryRequest RequestFromSample(const TrajectorySample& sample) {
  RecoveryRequest req;
  req.input = sample.input;
  req.input_indices = sample.input_indices;
  req.target_times.reserve(sample.truth.size());
  for (const auto& p : sample.truth.points) req.target_times.push_back(p.t);
  return req;
}

std::vector<WorkloadItem> PoissonWorkload(
    const std::vector<TrajectorySample>& samples, int num_requests, double qps,
    uint64_t seed) {
  RNTRAJ_CHECK(!samples.empty());
  RNTRAJ_CHECK(qps > 0.0);
  Rng rng(seed);
  std::vector<WorkloadItem> items;
  items.reserve(num_requests);
  double t = 0.0;
  for (int i = 0; i < num_requests; ++i) {
    const int idx = static_cast<int>(i % samples.size());
    // Exponential inter-arrival via inverse CDF.
    t += -std::log(1.0 - rng.Uniform(0.0, 1.0)) / qps;
    items.push_back({RequestFromSample(samples[idx]), t, idx});
  }
  return items;
}

double Percentile(std::vector<double> values, double q) {
  return obs::ExactQuantile(std::move(values), q);
}

}  // namespace serve
}  // namespace rntraj
