#include "src/serve/roadnet_cache.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace rntraj {
namespace serve {

namespace {

/// Tolerance for the point-in-cell safety check (CellOf clamps points
/// outside the grid to border cells, where the centre can be arbitrarily far
/// from the point and the conservative radius no longer covers the query).
constexpr double kCellSlack = 1e-6;

}  // namespace

CellCandidateCache::CellCandidateCache(const RoadNetwork* rn,
                                       const RTree* rtree,
                                       const GridMapping* grid,
                                       std::vector<double> radii,
                                       const RoadnetCacheConfig& config)
    : rn_(rn),
      rtree_(rtree),
      grid_(grid),
      radii_(std::move(radii)),
      half_diag_(grid->cell_size() * std::sqrt(0.5)),
      shards_(std::max(1, config.shards)) {
  RNTRAJ_CHECK(!radii_.empty());
  per_shard_capacity_ =
      std::max(1, config.capacity / static_cast<int>(shards_.size()));
}

int CellCandidateCache::RadiusSlot(double radius) const {
  for (size_t i = 0; i < radii_.size(); ++i) {
    if (radii_[i] == radius) return static_cast<int>(i);
  }
  return -1;
}

std::vector<CellCandidateCache::CandidateBox>
CellCandidateCache::ComputeCandidates(int cell, int slot) const {
  // Any segment within radius r of *any* point p in the cell satisfies
  // dist(centre, seg) <= r + |p - centre| <= r + half_diag, and a segment
  // within d of a point has its bounding box intersecting the d-buffered
  // point box — so this query returns a superset of every exact radius-r
  // result issued from inside the cell.
  const GridMapping::Cell c{cell % grid_->cols(), cell / grid_->cols()};
  const BBox query = BBox::FromPoint(grid_->CellCenter(c))
                         .Buffered(radii_[slot] + half_diag_);
  std::vector<CandidateBox> out;
  for (int id : rtree_->Query(query)) {
    out.push_back({id, rn_->segment(id).geometry.bounds()});
  }
  return out;
}

void CellCandidateCache::InsertLocked(Shard& shard, int64_t key,
                                      Candidates value) const {
  auto [it, inserted] = shard.entries.try_emplace(key);
  if (!inserted) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.second);
    return;  // raced with another session; keep the resident list
  }
  shard.lru.push_front(key);
  it->second = {std::move(value), shard.lru.begin()};
  while (static_cast<int>(shard.entries.size()) > per_shard_capacity_) {
    shard.entries.erase(shard.lru.back());
    shard.lru.pop_back();
  }
}

CellCandidateCache::Candidates CellCandidateCache::GetCandidates(
    int cell, int slot) const {
  const int64_t key = KeyOf(cell, slot);
  Shard& shard = ShardOf(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.first;
    }
  }
  // R-tree traversal outside the shard lock.
  auto value = std::make_shared<const std::vector<CandidateBox>>(
      ComputeCandidates(cell, slot));
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shard.mu);
  InsertLocked(shard, key, value);
  return value;
}

std::vector<NearbySegment> CellCandidateCache::WithinRadius(
    const Vec2& p, double radius) const {
  const int slot = RadiusSlot(radius);
  if (slot >= 0) {
    const GridMapping::Cell c = grid_->CellOf(p);
    const Vec2 center = grid_->CellCenter(c);
    if (Distance(p, center) <= half_diag_ + kCellSlack) {
      const Candidates cands = GetCandidates(grid_->CellIndex(c), slot);
      // Same bbox prefilter as the R-tree leaf pass: project exactly the
      // segments the direct path would project.
      const BBox qbox = BBox::FromPoint(p).Buffered(radius);
      std::vector<NearbySegment> out;
      for (const CandidateBox& cand : *cands) {
        if (!cand.box.Intersects(qbox)) continue;
        PointProjection proj = rn_->Project(p, cand.seg_id);
        if (proj.distance <= radius) out.push_back({cand.seg_id, proj});
      }
      if (!out.empty()) {
        SortNearbySegments(&out);
        return out;
      }
      // Fall through: the direct path's radius expansion must kick in.
    }
  }
  fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return SegmentsWithinRadius(*rn_, *rtree_, p, radius);
}

void CellCandidateCache::Prefetch(const std::vector<Vec2>& points,
                                  double radius) const {
  const int slot = RadiusSlot(radius);
  if (slot < 0) return;
  // Distinct resident-miss cells covering the batch.
  std::unordered_set<int> seen;
  std::vector<int> missing;
  for (const Vec2& p : points) {
    const GridMapping::Cell c = grid_->CellOf(p);
    if (Distance(p, grid_->CellCenter(c)) > half_diag_ + kCellSlack) continue;
    const int cell = grid_->CellIndex(c);
    if (!seen.insert(cell).second) continue;
    const int64_t key = KeyOf(cell, slot);
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.entries.find(key) == shard.entries.end()) missing.push_back(cell);
  }
  if (missing.empty()) return;

  // One R-tree sweep for the whole batch, chunked across the pool.
  std::vector<Candidates> computed(missing.size());
  ParallelFor(0, static_cast<int64_t>(missing.size()), /*grain=*/4,
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  computed[i] =
                      std::make_shared<const std::vector<CandidateBox>>(
                          ComputeCandidates(missing[i], slot));
                }
              });
  for (size_t i = 0; i < missing.size(); ++i) {
    const int64_t key = KeyOf(missing[i], slot);
    Shard& shard = ShardOf(key);
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(shard.mu);
    InsertLocked(shard, key, std::move(computed[i]));
  }
}

RoadnetCacheStats CellCandidateCache::stats() const {
  RoadnetCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.entries += static_cast<int64_t>(shard.entries.size());
  }
  return s;
}

}  // namespace serve
}  // namespace rntraj
