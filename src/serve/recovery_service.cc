#include "src/serve/recovery_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/baselines/two_stage.h"
#include "src/serve/workload.h"
#include "src/sim/dataset.h"
#include "src/tensor/buffer_pool.h"

namespace rntraj {
namespace serve {

namespace {

/// Ring-buffer window for latency percentiles.
constexpr size_t kLatencyWindow = 8192;

}  // namespace

RecoveryService::RecoveryService(RecoveryModel* model, const ModelContext& ctx,
                                 const RecoveryServiceConfig& config)
    : model_(model), cfg_(config), batcher_(config.batcher) {
  exclusive_model_ = !model_->SupportsConcurrentRecover();
  if (exclusive_model_) cfg_.num_sessions = 1;
  cfg_.num_sessions = std::max(1, cfg_.num_sessions);

  if (!cfg_.cache_radii.empty()) {
    cache_ = std::make_unique<CellCandidateCache>(
        ctx.rn, ctx.rtree, ctx.grid, cfg_.cache_radii, cfg_.cache);
    model_->SetSegmentQuerySource(cache_.get());
  }
  if (cfg_.max_dijkstra_rows > 0 && ctx.netdist != nullptr) {
    // The dataset's NetworkDistance is shared with offline pipelines;
    // remember its cap so shutdown restores it (an offline all-pairs metrics
    // sweep under a serving-sized LRU would thrash Dijkstra recomputation).
    netdist_ = ctx.netdist;
    prev_max_dijkstra_rows_ = netdist_->max_cached_rows();
    netdist_->set_max_cached_rows(cfg_.max_dijkstra_rows);
  }
  if (cfg_.warm_model) {
    // The re-entrant session warmup: road representation (GridGNN forward)
    // computed once here, shared read-only by every request after.
    model_->SetTrainingMode(false);
    model_->BeginInference();
  }

  if (cfg_.policy.enabled) {
    policy_ = std::make_unique<ServicePolicy>(cfg_.policy,
                                              cfg_.batcher.max_queue_depth);
    // The degraded rung: linear interpolation + HMM map matching (the
    // existing two-stage baseline). Non-learned, stateless per call, and
    // re-entrant — sessions share one instance.
    fallback_ = std::make_unique<LinearHmmModel>(ctx, cfg_.fallback_hmm);
  }
  if (cfg_.fault.any_enabled()) {
    injector_ = std::make_unique<FaultInjector>(cfg_.fault);
  }

  // Deadline eviction at dequeue: expired requests get their immediate
  // response here instead of a batch slot.
  batcher_.SetExpiredHandler(
      [this](QueuedRequest&& q) { ResolveExpired(std::move(q)); });

  auto on_complete = [this](const RecoveryResponse& resp, double total_ms) {
    RecordCompletion(resp, total_ms);
  };
  for (int i = 0; i < cfg_.num_sessions; ++i) {
    sessions_.push_back(std::make_unique<InferenceSession>(
        i, model_, cache_.get(), cfg_.prefetch_radii, on_complete,
        cfg_.batched_forward, policy_.get(), fallback_.get(),
        injector_.get()));
  }
  workers_.reserve(sessions_.size());
  for (auto& session : sessions_) {
    workers_.emplace_back([this, s = session.get()] { WorkerLoop(s); });
  }
}

RecoveryService::~RecoveryService() {
  Shutdown();
  if (cache_ != nullptr) model_->SetSegmentQuerySource(nullptr);
  if (netdist_ != nullptr) {
    netdist_->set_max_cached_rows(prev_max_dijkstra_rows_);
  }
}

void RecoveryService::WorkerLoop(InferenceSession* session) {
  // Steady-state inference repeats the same op shapes request after request;
  // the per-thread buffer pool turns that into allocation-free forwards.
  BufferPoolScope pool_scope;
  while (true) {
    std::vector<QueuedRequest> batch = batcher_.PopBatch();
    if (batch.empty()) return;  // shut down and drained
    if (exclusive_model_) {
      // Non-re-entrant model: RecoverNow callers share it with this (only)
      // session, so forwards take turns.
      std::lock_guard<std::mutex> lock(exclusive_mu_);
      session->ProcessBatch(std::move(batch));
    } else {
      session->ProcessBatch(std::move(batch));
    }
  }
}

RecoveryResponse RecoveryService::ShedResponse(const char* why) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++shed_;
  }
  RecoveryResponse resp;
  resp.kind = ResponseKind::kShed;
  resp.error = why;
  return resp;
}

std::future<RecoveryResponse> RecoveryService::Submit(RecoveryRequest req) {
  QueuedRequest q;
  q.request = std::move(req);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    q.id = static_cast<uint64_t>(submitted_++);
  }
  std::future<RecoveryResponse> future = q.promise.get_future();
  if (policy_ != nullptr) {
    policy_->ObserveDepth(batcher_.depth());
    if (policy_->state() == PolicyState::kShedding) {
      // The ladder's last rung: refuse admission outright. Answering here
      // costs nothing and keeps the queue for requests the degraded path
      // can still serve in time.
      q.promise.set_value(ShedResponse("shedding load (service overloaded)"));
      return future;
    }
  }
  if (!batcher_.Push(std::move(q))) {
    // Load shed: answer immediately instead of blocking the producer.
    q.promise.set_value(ShedResponse("queue full or service shutting down"));
  }
  return future;
}

RecoveryResponse RecoveryService::RecoverNow(RecoveryRequest req) {
  RecoveryResponse resp;
  resp.batch_size = 1;
  std::string error;
  if (!ValidateRequest(req, &error)) {
    resp.kind = ResponseKind::kValidationError;
    resp.error = std::move(error);
    return resp;
  }
  const auto start = std::chrono::steady_clock::now();
  TrajectorySample sample = MakeEphemeralSample(
      std::move(req.input), std::move(req.input_indices), req.target_times);
  try {
    if (exclusive_model_) {
      std::lock_guard<std::mutex> lock(exclusive_mu_);
      resp.recovered = model_->Recover(sample);
    } else {
      resp.recovered = model_->Recover(sample);
    }
  } catch (const std::exception& e) {
    resp.kind = ResponseKind::kInternalError;
    resp.error = std::string("internal error: ") + e.what();
    return resp;
  } catch (...) {
    resp.kind = ResponseKind::kInternalError;
    resp.error = "internal error: unknown exception";
    return resp;
  }
  resp.infer_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  resp.ok = true;
  resp.kind = ResponseKind::kOk;
  return resp;
}

void RecoveryService::Shutdown() {
  // exchange: exactly one caller proceeds to join (destructor and an
  // explicit Shutdown may race).
  if (shut_down_.exchange(true)) return;
  batcher_.Shutdown();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void RecoveryService::ResolveExpired(QueuedRequest&& q) {
  RecoveryResponse resp;
  resp.kind = ResponseKind::kDeadlineMissed;
  resp.error = "deadline exceeded";
  resp.queue_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - q.enqueued_at)
                      .count();
  RecordCompletion(resp, resp.queue_ms);
  q.promise.set_value(std::move(resp));
}

void RecoveryService::RecordCompletion(const RecoveryResponse& resp,
                                       double total_ms) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++completed_;
    switch (resp.kind) {
      case ResponseKind::kOk:
        if (resp.degraded) {
          ++degraded_;
        } else {
          ++ok_;
        }
        break;
      case ResponseKind::kValidationError: ++validation_error_; break;
      case ResponseKind::kDeadlineMissed: ++deadline_missed_; break;
      case ResponseKind::kShed: ++shed_; break;  // not reached: sheds bypass
      case ResponseKind::kInternalError: ++internal_error_; break;
    }
    if (resp.kind == ResponseKind::kOk) {
      // Latency percentiles track answered requests only: shed/missed/error
      // responses resolve fast and would read as spurious speed.
      if (recent_latencies_ms_.size() < kLatencyWindow) {
        recent_latencies_ms_.push_back(total_ms);
      } else {
        recent_latencies_ms_[latency_next_] = total_ms;
        latency_next_ = (latency_next_ + 1) % kLatencyWindow;
      }
    }
  }
  if (policy_ != nullptr) {
    // Answered requests feed the miss-rate window (shed/invalid ones carry
    // no capacity signal); every completion refreshes the depth signal so
    // the ladder can step down as the queue drains.
    if (resp.kind == ResponseKind::kOk) {
      policy_->RecordOutcome(/*deadline_missed=*/false);
    } else if (resp.kind == ResponseKind::kDeadlineMissed) {
      policy_->RecordOutcome(/*deadline_missed=*/true);
    }
    policy_->ObserveDepth(batcher_.depth());
  }
}

ServeStats RecoveryService::Stats() const {
  ServeStats s;
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.submitted = submitted_;
    s.shed = shed_;
    s.rejected = shed_;
    s.completed = completed_;
    s.ok = ok_;
    s.degraded = degraded_;
    s.validation_error = validation_error_;
    s.deadline_missed = deadline_missed_;
    s.internal_error = internal_error_;
    latencies = recent_latencies_ms_;
  }
  int64_t session_requests = 0;
  for (const auto& session : sessions_) {
    const SessionStats st = session->Snapshot();
    s.batches += st.batches;
    s.faults += st.faults;
    session_requests += st.requests;
  }
  if (s.batches > 0) {
    s.mean_batch_size =
        static_cast<double>(session_requests) / static_cast<double>(s.batches);
  }
  if (policy_ != nullptr) {
    const ServicePolicyStats ps = policy_->Snapshot();
    s.policy_state = ps.state;
    s.policy_entered_degraded = ps.entered_degraded;
    s.policy_entered_shedding = ps.entered_shedding;
    s.recent_deadline_miss_rate = ps.recent_miss_rate;
  }
  s.p50_ms = Percentile(latencies, 0.50);
  s.p99_ms = Percentile(std::move(latencies), 0.99);
  if (cache_ != nullptr) s.cache = cache_->stats();
  return s;
}

}  // namespace serve
}  // namespace rntraj
