#include "src/serve/recovery_service.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/baselines/two_stage.h"
#include "src/obs/stage_profiler.h"
#include "src/sim/dataset.h"
#include "src/tensor/bfloat16.h"
#include "src/tensor/buffer_pool.h"
#include "src/tensor/fusion.h"

namespace rntraj {
namespace serve {

RecoveryService::RecoveryService(RecoveryModel* model, const ModelContext& ctx,
                                 const RecoveryServiceConfig& config)
    : model_(model), cfg_(config), batcher_(config.batcher) {
  // Resolve the telemetry names once; the hot path increments through the
  // cached pointers only.
  c_submitted_ = metrics_.GetCounter("serve.submitted");
  c_shed_ = metrics_.GetCounter("serve.shed");
  c_completed_ = metrics_.GetCounter("serve.completed");
  c_ok_ = metrics_.GetCounter("serve.ok");
  c_degraded_ = metrics_.GetCounter("serve.degraded");
  c_validation_error_ = metrics_.GetCounter("serve.validation_error");
  c_deadline_missed_ = metrics_.GetCounter("serve.deadline_missed");
  c_internal_error_ = metrics_.GetCounter("serve.internal_error");
  c_swaps_ = metrics_.GetCounter("serve.swaps");
  g_model_version_ = metrics_.GetGauge("serve.model_version");
  h_latency_ms_ = metrics_.GetHistogram("serve.latency_ms");
  h_queue_ms_ = metrics_.GetHistogram("serve.queue_ms");
  h_infer_ms_ = metrics_.GetHistogram("serve.infer_ms");
  if (cfg_.trace.sample_rate > 0.0) {
    tracer_ = std::make_unique<obs::Tracer>(cfg_.trace);
  }
  prev_profile_enabled_ = obs::StageProfiler::Global().enabled();
  if (cfg_.profile_stages) obs::StageProfiler::Global().set_enabled(true);

  exclusive_model_ = !model_->SupportsConcurrentRecover();
  if (exclusive_model_) cfg_.num_sessions = 1;
  cfg_.num_sessions = std::max(1, cfg_.num_sessions);

  if (!cfg_.cache_radii.empty()) {
    cache_ = std::make_unique<CellCandidateCache>(
        ctx.rn, ctx.rtree, ctx.grid, cfg_.cache_radii, cfg_.cache);
    model_->SetSegmentQuerySource(cache_.get());
  }
  if (cfg_.max_dijkstra_rows > 0 && ctx.netdist != nullptr) {
    // The dataset's NetworkDistance is shared with offline pipelines;
    // remember its cap so shutdown restores it (an offline all-pairs metrics
    // sweep under a serving-sized LRU would thrash Dijkstra recomputation).
    netdist_ = ctx.netdist;
    prev_max_dijkstra_rows_ = netdist_->max_cached_rows();
    netdist_->set_max_cached_rows(cfg_.max_dijkstra_rows);
  }
  if (cfg_.warm_model) {
    // The re-entrant session warmup: road representation (GridGNN forward)
    // computed once here, shared read-only by every request after.
    model_->SetTrainingMode(false);
    model_->BeginInference();
  }
  // Generation 0: the construction-time model, caller-owned.
  handle_ = std::make_shared<const ModelHandle>(
      ModelHandle{model_, nullptr, 0});
  g_model_version_->Set(0.0);

  if (cfg_.policy.enabled) {
    policy_ = std::make_unique<ServicePolicy>(cfg_.policy,
                                              cfg_.batcher.max_queue_depth);
    // The degraded rung: linear interpolation + HMM map matching (the
    // existing two-stage baseline). Non-learned, stateless per call, and
    // re-entrant — sessions share one instance.
    fallback_ = std::make_unique<LinearHmmModel>(ctx, cfg_.fallback_hmm);
  }
  if (cfg_.fault.any_enabled()) {
    injector_ = std::make_unique<FaultInjector>(cfg_.fault);
  }

  // Deadline eviction at dequeue: expired requests get their immediate
  // response here instead of a batch slot.
  batcher_.SetExpiredHandler(
      [this](QueuedRequest&& q) { ResolveExpired(std::move(q)); });

  auto on_complete = [this](RecoveryResponse& resp, QueuedRequest& q,
                            double total_ms) {
    RecordCompletion(resp, total_ms);
    FinishTrace(q, resp);
  };
  for (int i = 0; i < cfg_.num_sessions; ++i) {
    sessions_.push_back(std::make_unique<InferenceSession>(
        i, cache_.get(), cfg_.prefetch_radii, on_complete,
        cfg_.batched_forward, policy_.get(), fallback_.get(),
        injector_.get()));
  }
  workers_.reserve(sessions_.size());
  for (auto& session : sessions_) {
    workers_.emplace_back([this, s = session.get()] { WorkerLoop(s); });
  }
}

RecoveryService::~RecoveryService() {
  Shutdown();
  if (cache_ != nullptr) {
    model_->SetSegmentQuerySource(nullptr);
    // Every swapped-in generation had the shared cache installed too; the
    // workers are joined, so the uninstalls race nothing.
    for (auto& m : swapped_models_) m->SetSegmentQuerySource(nullptr);
  }
  if (netdist_ != nullptr) {
    netdist_->set_max_cached_rows(prev_max_dijkstra_rows_);
  }
  if (cfg_.profile_stages) {
    obs::StageProfiler::Global().set_enabled(prev_profile_enabled_);
  }
}

void RecoveryService::WorkerLoop(InferenceSession* session) {
  // Steady-state inference repeats the same op shapes request after request;
  // the per-thread buffer pool turns that into allocation-free forwards.
  BufferPoolScope pool_scope;
  // Per-thread perf knobs: fused elementwise chains and bf16 activation
  // storage for every forward this session runs (no-ops when off).
  fusion::FusionScope fuse_scope(cfg_.fuse_elementwise);
  Bf16Scope bf16_scope(cfg_.bf16_activations);
  while (true) {
    std::vector<QueuedRequest> batch = batcher_.PopBatch();
    if (batch.empty()) return;  // shut down and drained
    // One handle per batch: the copy pins this generation (weights, warm
    // road representation, ownership) for the whole batch even if a swap
    // flips the service handle mid-forward.
    const std::shared_ptr<const ModelHandle> handle = AcquireModel();
    if (exclusive_model_) {
      // Non-re-entrant model: RecoverNow callers share it with this (only)
      // session, so forwards take turns.
      std::lock_guard<std::mutex> lock(exclusive_mu_);
      session->ProcessBatch(std::move(batch), handle->model, handle->version);
    } else {
      session->ProcessBatch(std::move(batch), handle->model, handle->version);
    }
  }
}

std::shared_ptr<const ModelHandle> RecoveryService::AcquireModel() const {
  std::lock_guard<std::mutex> lock(handle_mu_);
  return handle_;
}

uint64_t RecoveryService::model_version() const {
  return AcquireModel()->version;
}

bool RecoveryService::SwapModel(std::shared_ptr<RecoveryModel> next,
                                std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = "SwapModel: " + why;
    return false;
  };
  if (next == nullptr) return fail("null model");
  if (shut_down_.load()) return fail("service is shut down");
  if (!exclusive_model_ && cfg_.num_sessions > 1 &&
      !next->SupportsConcurrentRecover()) {
    // The session pool was sized for a re-entrant model; a non-re-entrant
    // replacement would race itself. Refuse instead of serving corruption.
    return fail("replacement model does not support concurrent Recover, but "
                "the service runs " +
                std::to_string(cfg_.num_sessions) + " sessions");
  }

  // Swap span: the warmup/flip timeline, retained in the tracer's ring like
  // any sampled request (synthetic id from the same allocator).
  std::shared_ptr<obs::RequestTrace> swap_trace;
  if (tracer_ != nullptr) {
    swap_trace = std::make_shared<obs::RequestTrace>(
        next_id_.fetch_add(1, std::memory_order_relaxed));
    swap_trace->set_outcome("model-swap");
    swap_trace->OpenSpan("swap.warmup");
  }

  // Warm the replacement on THIS thread while the old generation keeps
  // serving: shared roadnet caches installed, eval mode, BeginInference
  // (for RnTrajRec the road-representation compute — skipped when the
  // model was loaded from a snapshot carrying a warm road rep).
  if (cache_ != nullptr) next->SetSegmentQuerySource(cache_.get());
  next->SetTrainingMode(false);
  next->BeginInference();

  uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(handle_mu_);
    version = handle_->version + 1;
    if (swap_trace != nullptr) {
      swap_trace->CloseSpan(swap_trace->SpanIndex("swap.warmup"));
      swap_trace->OpenSpan("swap.flip");
    }
    handle_ = std::make_shared<const ModelHandle>(
        ModelHandle{next.get(), next, version});
    swapped_models_.push_back(std::move(next));
    if (swap_trace != nullptr) {
      swap_trace->CloseSpan(swap_trace->SpanIndex("swap.flip"));
    }
  }
  // In-flight batches still hold the previous handle; their futures resolve
  // on the old weights. Everything dispatched from here on acquires the new
  // generation.
  c_swaps_->Add(1);
  g_model_version_->Set(static_cast<double>(version));
  if (swap_trace != nullptr) {
    swap_trace->Finish();
    tracer_->Retain(swap_trace);
  }
  return true;
}

RecoveryResponse RecoveryService::ShedResponse(const char* why) {
  c_shed_->Add(1);
  RecoveryResponse resp;
  resp.kind = ResponseKind::kShed;
  resp.error = why;
  return resp;
}

std::future<RecoveryResponse> RecoveryService::Submit(RecoveryRequest req) {
  QueuedRequest q;
  q.request = std::move(req);
  q.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  c_submitted_->Add(1);
  if (tracer_ != nullptr) {
    // Deterministic per-id sampling: whether THIS request is traced does
    // not depend on thread interleaving. The root span opens at
    // construction; the queue span opens here and the dequeuing session
    // (or the eviction path) closes it.
    q.trace = tracer_->MaybeBegin(q.id);
    if (q.trace != nullptr) {
      if (policy_ != nullptr) {
        q.trace->set_policy_at_submit(ToString(policy_->state()));
      }
      q.trace->OpenSpan("queue");
    }
  }
  std::future<RecoveryResponse> future = q.promise.get_future();
  if (policy_ != nullptr) {
    policy_->ObserveDepth(batcher_.depth());
    if (policy_->state() == PolicyState::kShedding) {
      // The ladder's last rung: refuse admission outright. Answering here
      // costs nothing and keeps the queue for requests the degraded path
      // can still serve in time.
      RecoveryResponse resp = ShedResponse("shedding load (service overloaded)");
      FinishTrace(q, resp);
      q.promise.set_value(std::move(resp));
      return future;
    }
  }
  if (!batcher_.Push(std::move(q))) {
    // Load shed: answer immediately instead of blocking the producer.
    RecoveryResponse resp = ShedResponse("queue full or service shutting down");
    FinishTrace(q, resp);
    q.promise.set_value(std::move(resp));
  }
  return future;
}

RecoveryResponse RecoveryService::RecoverNow(RecoveryRequest req) {
  RecoveryResponse resp;
  resp.batch_size = 1;
  std::string error;
  if (!ValidateRequest(req, &error)) {
    resp.kind = ResponseKind::kValidationError;
    resp.error = std::move(error);
    return resp;
  }
  const auto start = std::chrono::steady_clock::now();
  TrajectorySample sample = MakeEphemeralSample(
      std::move(req.input), std::move(req.input_indices), req.target_times);
  // Same perf knobs as the session workers, installed on the caller thread.
  fusion::FusionScope fuse_scope(cfg_.fuse_elementwise);
  Bf16Scope bf16_scope(cfg_.bf16_activations);
  const std::shared_ptr<const ModelHandle> handle = AcquireModel();
  resp.model_version = handle->version;
  try {
    if (exclusive_model_) {
      std::lock_guard<std::mutex> lock(exclusive_mu_);
      resp.recovered = handle->model->Recover(sample);
    } else {
      resp.recovered = handle->model->Recover(sample);
    }
  } catch (const std::exception& e) {
    resp.kind = ResponseKind::kInternalError;
    resp.error = std::string("internal error: ") + e.what();
    return resp;
  } catch (...) {
    resp.kind = ResponseKind::kInternalError;
    resp.error = "internal error: unknown exception";
    return resp;
  }
  resp.infer_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  resp.ok = true;
  resp.kind = ResponseKind::kOk;
  return resp;
}

void RecoveryService::Shutdown() {
  // exchange: exactly one caller proceeds to join (destructor and an
  // explicit Shutdown may race).
  if (shut_down_.exchange(true)) return;
  batcher_.Shutdown();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void RecoveryService::ResolveExpired(QueuedRequest&& q) {
  RecoveryResponse resp;
  resp.kind = ResponseKind::kDeadlineMissed;
  resp.error = "deadline exceeded";
  const auto now = std::chrono::steady_clock::now();
  resp.queue_ms = std::chrono::duration<double, std::milli>(
                      now - q.enqueued_at)
                      .count();
  if (q.trace != nullptr) {
    const int64_t at = q.trace->ToNs(now);
    q.trace->CloseSpanAt(q.trace->SpanIndex("queue"), at);
    q.trace->AddEventAt("evicted-at-dequeue", at);
  }
  RecordCompletion(resp, resp.queue_ms);
  FinishTrace(q, resp);
  q.promise.set_value(std::move(resp));
}

void RecoveryService::FinishTrace(QueuedRequest& q, RecoveryResponse& resp) {
  if (q.trace == nullptr) return;
  obs::RequestTrace& t = *q.trace;
  t.set_outcome(ResponseKindName(resp.kind));
  t.set_degraded(resp.degraded);
  t.set_session_id(resp.session_id);
  t.set_batch_size(resp.batch_size);
  if (policy_ != nullptr) {
    // The ladder moved while this request was in flight — the per-request
    // view of a policy transition ("submitted under OK, answered under
    // DEGRADED") that aggregate counters cannot show.
    const char* now_state = ToString(policy_->state());
    if (t.policy_at_submit()[0] != '\0' &&
        std::strcmp(now_state, t.policy_at_submit()) != 0) {
      t.AddEvent("policy-transition");
    }
  }
  t.Finish();
  std::shared_ptr<const obs::RequestTrace> done = std::move(q.trace);
  tracer_->Retain(done);
  resp.trace = std::move(done);
}

void RecoveryService::RecordCompletion(const RecoveryResponse& resp,
                                       double total_ms) {
  c_completed_->Add(1);
  switch (resp.kind) {
    case ResponseKind::kOk:
      if (resp.degraded) {
        c_degraded_->Add(1);
      } else {
        c_ok_->Add(1);
      }
      break;
    case ResponseKind::kValidationError: c_validation_error_->Add(1); break;
    case ResponseKind::kDeadlineMissed: c_deadline_missed_->Add(1); break;
    case ResponseKind::kShed: c_shed_->Add(1); break;  // not reached
    case ResponseKind::kInternalError: c_internal_error_->Add(1); break;
  }
  h_queue_ms_->Record(resp.queue_ms);
  if (resp.kind == ResponseKind::kOk) {
    // Latency percentiles track answered requests only: shed/missed/error
    // responses resolve fast and would read as spurious speed.
    h_latency_ms_->Record(total_ms);
    h_infer_ms_->Record(resp.infer_ms);
  }
  if (policy_ != nullptr) {
    // Answered requests feed the miss-rate window (shed/invalid ones carry
    // no capacity signal); every completion refreshes the depth signal so
    // the ladder can step down as the queue drains.
    if (resp.kind == ResponseKind::kOk) {
      policy_->RecordOutcome(/*deadline_missed=*/false);
    } else if (resp.kind == ResponseKind::kDeadlineMissed) {
      policy_->RecordOutcome(/*deadline_missed=*/true);
    }
    policy_->ObserveDepth(batcher_.depth());
  }
}

ServeStats RecoveryService::Stats() const {
  ServeStats s;
  s.submitted = c_submitted_->Value();
  s.shed = c_shed_->Value();
  s.rejected = s.shed;
  s.completed = c_completed_->Value();
  s.ok = c_ok_->Value();
  s.degraded = c_degraded_->Value();
  s.validation_error = c_validation_error_->Value();
  s.deadline_missed = c_deadline_missed_->Value();
  s.internal_error = c_internal_error_->Value();
  int64_t session_requests = 0;
  for (const auto& session : sessions_) {
    const SessionStats st = session->Snapshot();
    s.batches += st.batches;
    s.faults += st.faults;
    session_requests += st.requests;
  }
  if (s.batches > 0) {
    s.mean_batch_size =
        static_cast<double>(session_requests) / static_cast<double>(s.batches);
  }
  if (policy_ != nullptr) {
    const ServicePolicyStats ps = policy_->Snapshot();
    s.policy_state = ps.state;
    s.policy_entered_degraded = ps.entered_degraded;
    s.policy_entered_shedding = ps.entered_shedding;
    s.recent_deadline_miss_rate = ps.recent_miss_rate;
  }
  const obs::HistogramSnapshot lat = h_latency_ms_->Snapshot();
  s.p50_ms = lat.Quantile(0.50);
  s.p99_ms = lat.Quantile(0.99);
  if (cache_ != nullptr) s.cache = cache_->stats();
  return s;
}

obs::MetricsSnapshot RecoveryService::Metrics() const {
  obs::MetricsSnapshot snap = metrics_.Snapshot();
  snap.gauges["serve.queue.depth"] = static_cast<double>(batcher_.depth());
  int64_t batches = 0, requests = 0, faults = 0;
  int64_t pool_hits = 0, pool_misses = 0, pool_recycled = 0, pool_bytes = 0;
  double busy = 0.0;
  for (const auto& session : sessions_) {
    const SessionStats st = session->Snapshot();
    batches += st.batches;
    requests += st.requests;
    faults += st.faults;
    busy += st.busy_seconds;
    pool_hits += st.pool_hits;
    pool_misses += st.pool_misses;
    pool_recycled += st.pool_recycled;
    pool_bytes += st.pool_cached_bytes;
  }
  snap.counters["serve.batches"] = batches;
  snap.counters["serve.session_requests"] = requests;
  snap.counters["serve.faults"] = faults;
  snap.gauges["serve.sessions.busy_seconds"] = busy;
  // Tensor buffer-pool telemetry, summed over the worker threads' pools
  // (hits/misses/recycled are lifetime counters; cached_bytes is the
  // resident pool size right now — a gauge).
  snap.counters["tensor.bufpool.hits"] = pool_hits;
  snap.counters["tensor.bufpool.misses"] = pool_misses;
  snap.counters["tensor.bufpool.recycled"] = pool_recycled;
  snap.gauges["tensor.bufpool.cached_bytes"] = static_cast<double>(pool_bytes);
  if (policy_ != nullptr) {
    const ServicePolicyStats ps = policy_->Snapshot();
    snap.gauges["serve.policy.state"] =
        static_cast<double>(static_cast<int>(ps.state));
    snap.counters["serve.policy.entered_degraded"] = ps.entered_degraded;
    snap.counters["serve.policy.entered_shedding"] = ps.entered_shedding;
    snap.gauges["serve.policy.recent_miss_rate"] = ps.recent_miss_rate;
  }
  if (cache_ != nullptr) {
    const RoadnetCacheStats cs = cache_->stats();
    snap.counters["serve.cache.hits"] = cs.hits;
    snap.counters["serve.cache.misses"] = cs.misses;
    snap.counters["serve.cache.fallbacks"] = cs.fallbacks;
    snap.gauges["serve.cache.entries"] = static_cast<double>(cs.entries);
  }
  if (tracer_ != nullptr) {
    snap.counters["serve.trace.sampled"] = tracer_->sampled();
    snap.counters["serve.trace.dropped"] = tracer_->dropped();
  }
  // Fold the global stage profile in (meaningful when profile_stages was
  // on; zeros otherwise). Global: concurrent services share these totals.
  const obs::StageProfile prof = obs::StageProfiler::Global().Snapshot();
  for (int i = 0; i < obs::kStageCount; ++i) {
    const obs::StageStat& st = prof.stages[i];
    if (st.count == 0 && st.ns == 0) continue;
    const std::string name =
        std::string("stage.") + obs::StageName(static_cast<obs::Stage>(i));
    snap.counters[name + ".count"] = st.count;
    snap.gauges[name + ".total_ms"] = st.Ms();
  }
  return snap;
}

}  // namespace serve
}  // namespace rntraj
