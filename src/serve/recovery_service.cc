#include "src/serve/recovery_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/serve/workload.h"
#include "src/sim/dataset.h"
#include "src/tensor/buffer_pool.h"

namespace rntraj {
namespace serve {

namespace {

/// Ring-buffer window for latency percentiles.
constexpr size_t kLatencyWindow = 8192;

}  // namespace

RecoveryService::RecoveryService(RecoveryModel* model, const ModelContext& ctx,
                                 const RecoveryServiceConfig& config)
    : model_(model), cfg_(config), batcher_(config.batcher) {
  exclusive_model_ = !model_->SupportsConcurrentRecover();
  if (exclusive_model_) cfg_.num_sessions = 1;
  cfg_.num_sessions = std::max(1, cfg_.num_sessions);

  if (!cfg_.cache_radii.empty()) {
    cache_ = std::make_unique<CellCandidateCache>(
        ctx.rn, ctx.rtree, ctx.grid, cfg_.cache_radii, cfg_.cache);
    model_->SetSegmentQuerySource(cache_.get());
  }
  if (cfg_.max_dijkstra_rows > 0 && ctx.netdist != nullptr) {
    // The dataset's NetworkDistance is shared with offline pipelines;
    // remember its cap so shutdown restores it (an offline all-pairs metrics
    // sweep under a serving-sized LRU would thrash Dijkstra recomputation).
    netdist_ = ctx.netdist;
    prev_max_dijkstra_rows_ = netdist_->max_cached_rows();
    netdist_->set_max_cached_rows(cfg_.max_dijkstra_rows);
  }
  if (cfg_.warm_model) {
    // The re-entrant session warmup: road representation (GridGNN forward)
    // computed once here, shared read-only by every request after.
    model_->SetTrainingMode(false);
    model_->BeginInference();
  }

  auto on_complete = [this](double total_ms) { RecordLatency(total_ms); };
  for (int i = 0; i < cfg_.num_sessions; ++i) {
    sessions_.push_back(std::make_unique<InferenceSession>(
        i, model_, cache_.get(), cfg_.prefetch_radii, on_complete,
        cfg_.batched_forward));
  }
  workers_.reserve(sessions_.size());
  for (auto& session : sessions_) {
    workers_.emplace_back([this, s = session.get()] { WorkerLoop(s); });
  }
}

RecoveryService::~RecoveryService() {
  Shutdown();
  if (cache_ != nullptr) model_->SetSegmentQuerySource(nullptr);
  if (netdist_ != nullptr) {
    netdist_->set_max_cached_rows(prev_max_dijkstra_rows_);
  }
}

void RecoveryService::WorkerLoop(InferenceSession* session) {
  // Steady-state inference repeats the same op shapes request after request;
  // the per-thread buffer pool turns that into allocation-free forwards.
  BufferPoolScope pool_scope;
  while (true) {
    std::vector<QueuedRequest> batch = batcher_.PopBatch();
    if (batch.empty()) return;  // shut down and drained
    if (exclusive_model_) {
      // Non-re-entrant model: RecoverNow callers share it with this (only)
      // session, so forwards take turns.
      std::lock_guard<std::mutex> lock(exclusive_mu_);
      session->ProcessBatch(std::move(batch));
    } else {
      session->ProcessBatch(std::move(batch));
    }
  }
}

std::future<RecoveryResponse> RecoveryService::Submit(RecoveryRequest req) {
  QueuedRequest q;
  q.request = std::move(req);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    q.id = static_cast<uint64_t>(submitted_++);
  }
  std::future<RecoveryResponse> future = q.promise.get_future();
  if (!batcher_.Push(std::move(q))) {
    // Load shed: answer immediately instead of blocking the producer.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++rejected_;
    RecoveryResponse resp;
    resp.error = "queue full or service shutting down";
    q.promise.set_value(std::move(resp));
  }
  return future;
}

RecoveryResponse RecoveryService::RecoverNow(RecoveryRequest req) {
  RecoveryResponse resp;
  resp.batch_size = 1;
  std::string error;
  if (!ValidateRequest(req, &error)) {
    resp.error = std::move(error);
    return resp;
  }
  const auto start = std::chrono::steady_clock::now();
  TrajectorySample sample = MakeEphemeralSample(
      std::move(req.input), std::move(req.input_indices), req.target_times);
  if (exclusive_model_) {
    std::lock_guard<std::mutex> lock(exclusive_mu_);
    resp.recovered = model_->Recover(sample);
  } else {
    resp.recovered = model_->Recover(sample);
  }
  resp.infer_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  resp.ok = true;
  return resp;
}

void RecoveryService::Shutdown() {
  // exchange: exactly one caller proceeds to join (destructor and an
  // explicit Shutdown may race).
  if (shut_down_.exchange(true)) return;
  batcher_.Shutdown();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void RecoveryService::RecordLatency(double total_ms) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++completed_;
  if (recent_latencies_ms_.size() < kLatencyWindow) {
    recent_latencies_ms_.push_back(total_ms);
  } else {
    recent_latencies_ms_[latency_next_] = total_ms;
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
}

ServeStats RecoveryService::Stats() const {
  ServeStats s;
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    latencies = recent_latencies_ms_;
  }
  int64_t session_requests = 0;
  for (const auto& session : sessions_) {
    const SessionStats st = session->Snapshot();
    s.batches += st.batches;
    session_requests += st.requests;
  }
  if (s.batches > 0) {
    s.mean_batch_size =
        static_cast<double>(session_requests) / static_cast<double>(s.batches);
  }
  s.p50_ms = Percentile(latencies, 0.50);
  s.p99_ms = Percentile(std::move(latencies), 0.99);
  if (cache_ != nullptr) s.cache = cache_->stats();
  return s;
}

}  // namespace serve
}  // namespace rntraj
