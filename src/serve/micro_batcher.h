#ifndef RNTRAJ_SERVE_MICRO_BATCHER_H_
#define RNTRAJ_SERVE_MICRO_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <vector>

#include "src/serve/request.h"

/// \file micro_batcher.h
/// The admission queue of the recovery service: a bounded MPMC queue whose
/// consumers pop *micro-batches* — groups of requests coalesced under a
/// latency deadline. Batching amortises per-dispatch overhead and gives the
/// sessions batch-level work sharing (roadnet cache prefetch over all points
/// of a batch); the deadline bounds the latency cost a lone request pays
/// waiting for company.

namespace rntraj {
namespace serve {

/// Coalescing policy.
struct MicroBatcherConfig {
  int max_batch_size = 16;
  /// How long a dispatch may hold the *oldest* queued request waiting for
  /// the batch to fill. 0 = dispatch whatever is queued immediately.
  int max_batch_delay_us = 2000;
  /// Admission bound; Push fails beyond this depth (load shedding).
  size_t max_queue_depth = 4096;
};

/// A request in flight through the queue.
struct QueuedRequest {
  uint64_t id = 0;
  RecoveryRequest request;
  std::promise<RecoveryResponse> promise;
  /// Span tree of a sampled request (null for the unsampled rest — the
  /// tracing-off cost at every touchpoint is this one null check). Owned by
  /// whoever holds the QueuedRequest; the queue handoff orders access.
  std::shared_ptr<obs::RequestTrace> trace;
  std::chrono::steady_clock::time_point enqueued_at;
  /// Absolute deadline (enqueued_at + request.deadline_ms); time_point::max()
  /// when the request carries no deadline. Stamped by Push.
  std::chrono::steady_clock::time_point deadline_at =
      std::chrono::steady_clock::time_point::max();

  bool expired(std::chrono::steady_clock::time_point now) const {
    return now >= deadline_at;
  }
};

/// Thread-safe micro-batching queue. Producers Push from any thread;
/// consumer sessions block in PopBatch. Shutdown lets consumers drain what
/// is queued, then unblocks them with an empty batch.
class MicroBatcher {
 public:
  explicit MicroBatcher(const MicroBatcherConfig& config) : cfg_(config) {}

  /// Enqueues one request (stamps `enqueued_at` and `deadline_at`). Returns
  /// false — leaving `req` untouched-but-moved-from only on success — when
  /// the queue is full or shut down.
  bool Push(QueuedRequest&& req);

  /// Blocks until at least one request is available, then coalesces: returns
  /// up to max_batch_size requests, waiting at most max_batch_delay_us past
  /// the oldest request's enqueue time for the batch to fill. An empty
  /// result means the batcher was shut down and fully drained.
  ///
  /// Requests whose deadline already expired are evicted here — handed to
  /// the expired handler (below) instead of wasting a batch slot. Eviction
  /// happens at dequeue only: expired requests deeper in the queue keep
  /// their slot until a consumer reaches them (scanning the whole queue per
  /// pop would make PopBatch O(depth)).
  std::vector<QueuedRequest> PopBatch();

  /// Installs the deadline-eviction sink: PopBatch hands already-expired
  /// requests to `handler` (outside the queue lock) instead of returning
  /// them. Without a handler, expired requests are returned in the batch
  /// and the consumer applies its own deadline check. Not thread-safe: set
  /// before consumers start.
  void SetExpiredHandler(std::function<void(QueuedRequest&&)> handler) {
    on_expired_ = std::move(handler);
  }

  /// Stops admissions; queued requests remain poppable until drained.
  void Shutdown();

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  MicroBatcherConfig cfg_;
  std::function<void(QueuedRequest&&)> on_expired_;
  mutable std::mutex mu_;
  std::condition_variable nonempty_;
  std::deque<QueuedRequest> queue_;
  bool shutdown_ = false;
};

}  // namespace serve
}  // namespace rntraj

#endif  // RNTRAJ_SERVE_MICRO_BATCHER_H_
