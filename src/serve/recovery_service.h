#ifndef RNTRAJ_SERVE_RECOVERY_SERVICE_H_
#define RNTRAJ_SERVE_RECOVERY_SERVICE_H_

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/model_api.h"
#include "src/mapmatch/hmm.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/fault_injector.h"
#include "src/serve/inference_session.h"
#include "src/serve/micro_batcher.h"
#include "src/serve/request.h"
#include "src/serve/roadnet_cache.h"
#include "src/serve/service_policy.h"

/// \file recovery_service.h
/// The online trajectory-recovery engine: a warm, re-entrant model behind a
/// micro-batching queue and a pool of inference sessions, with shared
/// roadnet query caches. This is the subsystem that turns the offline
/// train/eval pipeline into a request-serving one — the road representation
/// is computed once at warmup instead of per request, sessions answer
/// concurrent requests against the same weights, each micro-batch runs one
/// padded cross-request encoder pass (batched_forward), and hot roadnet
/// queries (sub-graph candidates by grid cell, Dijkstra rows by source
/// segment) are shared across the whole request stream. Cached answers are
/// exact; the batched forward matches single-request inference to float
/// rounding (same segments, ratios within ~1e-6).
///
/// Robustness layer (PR 6): requests may carry a latency budget
/// (RecoveryRequest::deadline_ms) that is enforced at dequeue, at dispatch
/// and after the forward; a hysteretic degradation ladder (ServicePolicy)
/// routes overload traffic to a cheap Linear+HMM fallback before shedding;
/// a throwing or stalled forward poisons only its own request's future; and
/// a deterministic FaultInjector drives the serve_chaos_test suite.
///
/// Hot-swap (PR 9): the serving model lives behind a versioned shared-ptr
/// handle. SwapModel() warms a replacement on the calling thread (query
/// source install + BeginInference — the expensive part, overlapped with
/// live serving) and then flips the handle: in-flight batches finish on
/// the generation they acquired, new dispatches take the new one, no
/// future is ever dropped and no batch mixes generations. Responses carry
/// the answering generation (RecoveryResponse::model_version); the
/// `serve.model_version` gauge, the `serve.swaps` counter and a retained
/// swap span (when tracing) expose swaps to the telemetry plane.

namespace rntraj {
namespace serve {

/// Service-level knobs.
struct RecoveryServiceConfig {
  /// Worker sessions. Forced to 1 when the model does not support
  /// concurrent Recover.
  int num_sessions = 2;
  MicroBatcherConfig batcher;

  /// Radii the cell candidate cache serves — a model's sub-graph delta and
  /// the decoder's mask/prior radii. Empty disables the cache.
  std::vector<double> cache_radii;
  RoadnetCacheConfig cache;
  /// Radii prefetched over each micro-batch's input points (subset of
  /// cache_radii; typically just the sub-graph delta).
  std::vector<double> prefetch_radii;

  /// Cap on NetworkDistance's Dijkstra row cache (serving HMM-style models
  /// must not keep an all-pairs matrix resident). 0 leaves it unbounded.
  int max_dijkstra_rows = 0;

  /// Run each micro-batch as ONE cross-request padded forward
  /// (RecoveryModel::RecoverBatch — a single GPSFormer pass per batch for
  /// RnTrajRec) instead of per-request forwards. Answers match the
  /// per-request path within float rounding (~1e-6 encoder difference from
  /// FMA contraction at different GEMM heights; same segments in practice).
  /// Disable to measure the per-sample reference path.
  bool batched_forward = true;

  /// Routes session forwards through the elementwise fusion peephole
  /// (src/tensor/fusion.h): same segments, ratios within FMA rounding
  /// (~1e-6). Composes with the model-level knob — either enables. Off
  /// (default) is bit-identical to PR 7 serving.
  bool fuse_elementwise = false;
  /// bf16 activation storage at block boundaries for session forwards
  /// (src/tensor/bfloat16.h). Served segment ids unchanged on the bench
  /// workloads; BENCHMARKS.md records the ratio divergence bound.
  bool bf16_activations = false;

  /// Run BeginInference() (road representation warmup) at construction.
  bool warm_model = true;

  /// The graceful-degradation ladder (off by default). When enabled, the
  /// service watches queue depth and deadline-miss rate: DEGRADED routes
  /// requests to the Linear+HMM fallback (responses flagged `degraded`),
  /// SHEDDING refuses new admissions outright until the backlog clears.
  ServicePolicyConfig policy;
  /// HMM knobs of the degraded-rung fallback recoverer.
  HmmConfig fallback_hmm;

  /// Deterministic fault injection (chaos testing; all off by default).
  FaultInjectorConfig fault;

  /// Observability (PR 7). The metrics registry is always on — its counters
  /// replaced the old mutex-guarded stats, so it costs less than what it
  /// displaced. Request tracing is off by default (trace.sample_rate == 0:
  /// one null-pointer branch per touchpoint); sampling decisions are
  /// deterministic per request id, the fault injector's reproducibility
  /// idiom.
  obs::TracerConfig trace;
  /// Enables the process-global stage profiler (GAT/GRL/transformer/
  /// decoder/constraint-mask wall time) for this service's lifetime. The
  /// profiler is global: concurrent services sharing a process share its
  /// totals.
  bool profile_stages = false;
};

/// Aggregate serving telemetry. `completed` splits into one counter per
/// response kind — shed and error responses must never be mistaken for
/// successes in throughput numbers.
struct ServeStats {
  int64_t submitted = 0;
  int64_t rejected = 0;   ///< == shed (kept for older callers).
  int64_t completed = 0;  ///< Responses delivered by sessions (all kinds).
  int64_t batches = 0;
  double mean_batch_size = 0.0;

  // --- the completed breakdown, one counter per ResponseKind + degraded ---
  int64_t ok = 0;                ///< Full-model successes.
  int64_t degraded = 0;          ///< Fallback-path successes (flagged).
  int64_t validation_error = 0;  ///< Rejected by ValidateRequest.
  int64_t deadline_missed = 0;   ///< Budget expired (queue, dispatch or post).
  int64_t shed = 0;              ///< Refused admission (queue full / policy).
  int64_t internal_error = 0;    ///< A forward threw; lane-isolated.
  int64_t faults = 0;            ///< Session forwards that threw.

  /// Degradation-ladder telemetry.
  PolicyState policy_state = PolicyState::kOk;
  int64_t policy_entered_degraded = 0;
  int64_t policy_entered_shedding = 0;
  double recent_deadline_miss_rate = 0.0;

  /// Percentiles over *successful* requests' total latency (submit ->
  /// response), milliseconds. Error/shed/missed responses are excluded —
  /// they resolve fast and would read as spurious speed. Computed from the
  /// registry's exact-count log-bucket histogram (obs/histogram.h): the
  /// value is the quantile rank's bucket upper edge — deterministic,
  /// mergeable across workers, within one bucket width (< 5%) of the exact
  /// sample quantile.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  RoadnetCacheStats cache;
};

/// One immutable generation of the serving model. Workers copy the
/// service's current handle once per batch; the shared_ptr keeps the
/// generation (and, for swapped-in models, its ownership) alive until the
/// last in-flight batch referencing it completes.
struct ModelHandle {
  RecoveryModel* model = nullptr;
  /// Ownership for swapped-in generations; null for generation 0, which
  /// the service's caller owns.
  std::shared_ptr<RecoveryModel> owned;
  uint64_t version = 0;
};

/// The public serving API.
///
/// Thread-safe: Submit from any number of producer threads. The destructor
/// shuts down admissions, drains queued requests, and joins the sessions.
/// A Submit racing Shutdown always receives a response (a shed error at
/// worst) — never a dangling or broken future.
class RecoveryService {
 public:
  RecoveryService(RecoveryModel* model, const ModelContext& ctx,
                  const RecoveryServiceConfig& config);
  ~RecoveryService();

  RecoveryService(const RecoveryService&) = delete;
  RecoveryService& operator=(const RecoveryService&) = delete;

  /// Enqueues one request. The future resolves when a session has answered
  /// (ok=false for invalid requests, or immediately when the queue sheds
  /// load, the policy is shedding, or the deadline expired in queue).
  std::future<RecoveryResponse> Submit(RecoveryRequest req);

  /// Answers one request synchronously on the calling thread, bypassing the
  /// queue (no batching, no deadline enforcement; same model, same caches).
  /// The sequential reference path the benchmarks compare against.
  RecoveryResponse RecoverNow(RecoveryRequest req);

  /// Zero-downtime model replacement. Warms `next` on the calling thread
  /// (installs the shared query caches, eval mode, BeginInference — for
  /// RnTrajRec the road-representation compute, which overlaps with live
  /// serving on the old generation) and then atomically flips the model
  /// handle: batches dispatched after the flip run on `next`, in-flight
  /// batches finish on the generation they already acquired, and every
  /// future resolves against exactly one whole generation. The service
  /// shares ownership of `next` until shutdown.
  ///
  /// Returns false (with `*error`) without touching the serving path when
  /// `next` is null, the service is shut down, or `next` cannot serve this
  /// service's concurrency (multiple sessions need a re-entrant Recover).
  bool SwapModel(std::shared_ptr<RecoveryModel> next,
                 std::string* error = nullptr);

  /// Generation currently answering new dispatches (0 until the first
  /// successful SwapModel).
  uint64_t model_version() const;

  /// Stops admissions, drains the queue, joins sessions (idempotent).
  /// Every future ever returned by Submit is resolved by the time this
  /// returns: queued requests are processed by the draining sessions, and
  /// submissions that raced past the closing gate are shed with an error.
  void Shutdown();

  ServeStats Stats() const;

  /// The machine-readable telemetry export: every registry metric plus
  /// injected point-in-time gauges (queue depth, policy state, cache and
  /// session counters, global stage-profile totals). This snapshot — JSON
  /// via ToJson(), Prometheus text via ToPrometheusText(), mergeable via
  /// Merge() — is the per-worker feed a fleet router aggregates (ROADMAP
  /// open item 2). Outcome counters partition submissions exactly:
  /// serve.submitted == ok + degraded + validation_error + deadline_missed
  /// + internal_error + shed once the stream has drained (the chaos suite
  /// asserts it).
  obs::MetricsSnapshot Metrics() const;

  const CellCandidateCache* cell_cache() const { return cache_.get(); }
  const ServicePolicy* policy() const { return policy_.get(); }
  const FaultInjector* fault_injector() const { return injector_.get(); }
  /// Null when tracing is disabled (sample_rate == 0).
  const obs::Tracer* tracer() const { return tracer_.get(); }

 private:
  void WorkerLoop(InferenceSession* session);
  /// Classifies one delivered response into the outcome counters, records
  /// latency histograms for successes, and feeds the ladder its outcome
  /// signal.
  void RecordCompletion(const RecoveryResponse& resp, double total_ms);
  /// Stamps the outcome summary onto a sampled request's trace, closes its
  /// remaining spans, retains it in the tracer's ring and attaches it to
  /// the response. No-op for untraced requests.
  void FinishTrace(QueuedRequest& q, RecoveryResponse& resp);
  /// Resolves one deadline-evicted request (from the batcher's dequeue
  /// eviction) with an immediate deadline-exceeded response.
  void ResolveExpired(QueuedRequest&& q);
  /// Builds an immediate shed response and counts it.
  RecoveryResponse ShedResponse(const char* why);

  /// The current model generation, copied once per batch / RecoverNow call.
  std::shared_ptr<const ModelHandle> AcquireModel() const;

  RecoveryModel* model_;
  RecoveryServiceConfig cfg_;
  /// True for models whose Recover is not re-entrant: sessions are clamped
  /// to one, and RecoverNow (caller thread) serializes against that session
  /// through exclusive_mu_.
  bool exclusive_model_ = false;
  std::mutex exclusive_mu_;
  NetworkDistance* netdist_ = nullptr;  ///< Set iff we capped its row cache.
  int prev_max_dijkstra_rows_ = 0;
  std::unique_ptr<CellCandidateCache> cache_;
  /// Hot-swap state. Declared after cache_: handles (and the swapped-in
  /// models they own) must be destroyed before the query cache they were
  /// pointed at. handle_mu_ guards the handle_ pointer only — workers take
  /// it for one shared_ptr copy per batch; the flip in SwapModel is one
  /// store under the same lock.
  mutable std::mutex handle_mu_;
  std::shared_ptr<const ModelHandle> handle_;
  /// Every model ever swapped in (kept until destruction so the dtor can
  /// uninstall the shared query source from each — an old generation may
  /// still be running a batch when a swap retires it).
  std::vector<std::shared_ptr<RecoveryModel>> swapped_models_;
  std::unique_ptr<ServicePolicy> policy_;
  std::unique_ptr<FaultInjector> injector_;
  /// The degraded rung's recoverer (Linear+HMM two-stage baseline); only
  /// built when the ladder is enabled. Stateless per call and re-entrant.
  std::unique_ptr<RecoveryModel> fallback_;
  MicroBatcher batcher_;
  std::vector<std::unique_ptr<InferenceSession>> sessions_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shut_down_{false};

  /// Request-id allocator (ids double as the deterministic sampling and
  /// fault-injection keys, so they must be unique and dense).
  std::atomic<uint64_t> next_id_{0};
  /// Whether the stage profiler was enabled before this service turned it
  /// on (restored at shutdown).
  bool prev_profile_enabled_ = false;

  /// The telemetry plane. Counters/histograms are resolved by name once
  /// here and incremented lock-free on the hot path — this replaced the
  /// PR 6 mutex-guarded counter block and stored-sample latency ring.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  obs::Counter* c_submitted_;
  obs::Counter* c_shed_;
  obs::Counter* c_completed_;
  obs::Counter* c_ok_;
  obs::Counter* c_degraded_;
  obs::Counter* c_validation_error_;
  obs::Counter* c_deadline_missed_;
  obs::Counter* c_internal_error_;
  obs::Counter* c_swaps_;        ///< Successful SwapModel flips.
  obs::Gauge* g_model_version_;  ///< Generation answering new dispatches.
  obs::LatencyHistogram* h_latency_ms_;  ///< Successes, submit -> response.
  obs::LatencyHistogram* h_queue_ms_;    ///< All completed, enqueue -> batch.
  obs::LatencyHistogram* h_infer_ms_;    ///< Successes, forward share.
};

}  // namespace serve
}  // namespace rntraj

#endif  // RNTRAJ_SERVE_RECOVERY_SERVICE_H_
